package repro

// Exactly-once chaos: drive non-idempotent writes (KV incr) through
// session-stamped invocations while crashing primaries, promoting
// successors, rebalancing shards, and restarting incarnations on top of
// durable logs. The invariants are the ones DESIGN.md promises for the
// session layer: an acknowledged write applies exactly once no matter
// how many times its (sid, seq) identity is retransmitted or where the
// retransmission lands (old primary, promoted successor, reassumed
// incarnation, new shard owner); a retry that outlived the dedup window
// is refused with CodeSessionExpired instead of silently re-applied;
// and the write-ahead log never records the same identity twice.
// Seeded like the rest of the suite: CHAOS_SEED=<n> replays a failing
// schedule exactly.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/persist"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/session"
	"repro/internal/shard"
	"repro/internal/wire"
)

// sessionRepWorld is a chaos cluster running a replicated KV whose
// runtimes mint sessions (core.WithSessions), with per-node WAL stores
// captured for the duplicate audit.
type sessionRepWorld struct {
	c       *chaosCluster
	factory *replica.Factory
	ref     codec.Ref

	storeMu sync.Mutex
	stores  map[wire.Addr]*persist.MemStore
}

func newSessionRepWorld(t *testing.T, n int) *sessionRepWorld {
	t.Helper()
	w := &sessionRepWorld{stores: make(map[wire.Addr]*persist.MemStore)}
	w.c = newChaosCluster(t, n,
		[]rpc.ClientOption{rpc.WithRetryInterval(5 * time.Millisecond), rpc.WithMaxAttempts(60)},
		core.WithSessions())
	w.factory = replica.NewFactory(bench.KVReads(),
		func() replica.StateMachine { return bench.NewKV() },
		replica.WithDeliverTimeout(80*time.Millisecond),
		replica.WithSyncInterval(25*time.Millisecond),
		replica.WithSnapshotEvery(8),
		replica.WithName("sess-kv"),
		replica.WithWALStore(func(node wire.Addr) persist.LogStore {
			w.storeMu.Lock()
			defer w.storeMu.Unlock()
			if s, ok := w.stores[node]; ok {
				return s
			}
			s := persist.NewMemStore(nil)
			w.stores[node] = s
			return s
		}))
	for _, rt := range w.c.rts {
		rt.RegisterProxyType("SessChaosKV", w.factory)
	}
	ref, err := w.c.rts[0].Export(bench.NewKV(), "SessChaosKV")
	if err != nil {
		t.Fatal(err)
	}
	w.ref = ref
	return w
}

func (w *sessionRepWorld) proxy(t *testing.T, i int) *replica.Proxy {
	t.Helper()
	p, err := w.c.rts[i].Import(w.ref)
	if err != nil {
		t.Fatal(err)
	}
	return p.(*replica.Proxy)
}

// TestChaosSessionExactlyOncePromotion crashes the primary mid-load and
// asserts the exactly-once story across the failover: every write is an
// incr of its own key (so any duplicate apply is visible as a value of
// 2), pre-crash identities replayed on the promoted successor are
// answered from the inherited dedup table without re-execution, writes
// issued during the outage ride the session retry loop through the
// promotion under one identity, and the new primary's WAL never logs an
// identity twice.
func TestChaosSessionExactlyOncePromotion(t *testing.T) {
	leakCheck(t)
	seed := chaosSeed()
	w := newSessionRepWorld(t, 4)
	ctx := context.Background()
	p2 := w.proxy(t, 1) // first joiner: the deterministic successor
	p3 := w.proxy(t, 2)
	proxies := []*replica.Proxy{p2, p3}

	// One session per logical write: sid encodes the write number, so a
	// write's identity is stable across every test-level retry while the
	// reply window can never push it out.
	const sidBase = uint64(0x5E55) << 32
	acked := make(map[string]bool)
	var n uint64
	write := func(p *replica.Proxy, minted bool) bool {
		n++
		key := fmt.Sprintf("w%d", n)
		wctx := ctx
		if !minted {
			wctx = core.ContextWithSession(ctx, sidBase+n, 1)
		}
		res, err := p.Invoke(wctx, "incr", key)
		if err != nil {
			return false
		}
		if res[0] != int64(1) {
			t.Fatalf("first ack of %s = %v, want 1 (duplicate apply)", key, res[0])
		}
		acked[key] = true
		return true
	}

	// Seeded pre-crash load; every write must succeed while the group is
	// whole.
	preWrites := uint64(12 + seed%8)
	for i := uint64(0); i < preWrites; i++ {
		if !write(proxies[i%2], false) {
			t.Fatalf("pre-crash write %d failed", i)
		}
	}
	// A client retransmission against the healthy primary: same identity,
	// cached reply, no second apply.
	res, err := p2.Invoke(core.ContextWithSession(ctx, sidBase+3, 1), "incr", "w3")
	if err != nil {
		t.Fatalf("healthy retransmission: %v", err)
	}
	if res[0] != int64(1) {
		t.Fatalf("healthy retransmission reply = %v, want cached 1", res[0])
	}

	w.c.net.Crash(1)

	// Keep minted-session writes running through the outage: each Invoke
	// allocates one identity and retries it internally until the
	// successor promotes and the retransmission lands on the new primary.
	chaosWaitFor(t, 20*time.Second, "successor to promote and accept writes", func() bool {
		write(p2, true)
		return p2.IsPrimary()
	})
	if got := p2.Epoch(); got < 2 {
		t.Fatalf("promoted epoch = %d, want >= 2", got)
	}
	chaosWaitFor(t, 10*time.Second, "survivor to adopt the new primary", func() bool {
		return p3.Epoch() >= 2 && !p3.IsPrimary()
	})

	// Pre-crash identities retransmitted after the promotion: the
	// successor inherited the dedup state, so both the in-process path
	// (p2 is the primary now) and the remote path (p3) answer from cache.
	for i, p := range proxies {
		key := fmt.Sprintf("w%d", i+1)
		res, err := p.Invoke(core.ContextWithSession(ctx, sidBase+uint64(i)+1, 1), "incr", key)
		if err != nil {
			t.Fatalf("post-promotion retransmission of %s: %v", key, err)
		}
		if res[0] != int64(1) {
			t.Fatalf("post-promotion retransmission of %s = %v, want cached 1", key, res[0])
		}
	}

	// Post-failover load through both survivors, alternating minted and
	// explicit identities; all must ack.
	for i := 0; i < 8; i++ {
		if !write(proxies[i%2], i%2 == 0) {
			t.Fatalf("post-failover write failed")
		}
	}

	// Zero duplicate applies, zero lost acked writes: every attempted key
	// is at most 1 everywhere, every acked key exactly 1.
	for _, p := range proxies {
		kv := p.Local().(*bench.KV)
		chaosWaitFor(t, 5*time.Second, "survivor to hold every acked write", func() bool {
			for key := range acked {
				if kv.Get(key) != 1 {
					return false
				}
			}
			return true
		})
		for i := uint64(1); i <= n; i++ {
			key := fmt.Sprintf("w%d", i)
			if got := kv.Get(key); got > 1 {
				t.Fatalf("key %s = %d on a survivor: duplicate apply", key, got)
			} else if acked[key] && got != 1 {
				t.Fatalf("acked key %s = %d on a survivor, want 1", key, got)
			}
		}
	}

	// The new primary's WAL audit: the promotion baseline snapshot plus
	// the logged suffix reconstructs every acked write at exactly 1, no
	// identity is logged twice (neither across the snapshot boundary nor
	// within the suffix), and the dedup record stream is duplicate-free.
	w.storeMu.Lock()
	store := w.stores[w.c.rts[1].Addr()]
	w.storeMu.Unlock()
	if store == nil {
		t.Fatal("promoted primary opened no WAL store")
	}
	wal, err := persist.OpenWAL(store)
	if err != nil {
		t.Fatalf("open wal for audit: %v", err)
	}
	audit := bench.NewKV()
	tab := session.NewTable(session.Config{})
	if _, _, state, ok := wal.LastSnapshot(); ok {
		dedup, svcState := replica.SplitSnapshotState(state)
		if dedup != nil {
			if err := tab.Restore(dedup); err != nil {
				t.Fatalf("restore wal dedup snapshot: %v", err)
			}
		}
		if err := audit.Restore(svcState); err != nil {
			t.Fatalf("restore wal snapshot: %v", err)
		}
	}
	for _, r := range wal.Records() {
		if sid, cseq, ok := wire.PeekSession(r.Payload); ok {
			if v, _ := tab.Peek(sid, cseq); v == session.Replay {
				t.Fatalf("identity (%#x, %d) logged twice in the new primary's WAL", sid, cseq)
			}
			tab.Commit(sid, cseq, wire.KindReply, false, nil)
		}
		_, method, args, err := core.DecodeRequest(w.c.rts[1].Decoder(), r.Payload)
		if err != nil {
			t.Fatalf("wal record %d undecodable: %v", r.Seq, err)
		}
		if _, err := audit.Invoke(ctx, method, args); err != nil {
			t.Fatalf("wal replay of %q: %v", method, err)
		}
	}
	seenDedup := make(map[[2]uint64]bool)
	for _, d := range wal.DedupRecords() {
		id := [2]uint64{d.SID, d.CSeq}
		if seenDedup[id] {
			t.Fatalf("dedup record (%#x, %d) appears twice", d.SID, d.CSeq)
		}
		seenDedup[id] = true
	}
	for key := range acked {
		if got := audit.Get(key); got != 1 {
			t.Fatalf("acked key %s = %d in WAL reconstruction, want 1", key, got)
		}
	}
	t.Logf("seed %d: %d writes attempted, %d acked, promotion epoch %d", seed, n, len(acked), p2.Epoch())
}

// TestChaosSessionExpiredRetry pins the bounded-window contract at the
// kernel layer: a node whose dedup table keeps one reply per session
// answers the latest identity from cache, but a retry that slid below
// the raised floor is refused with CodeSessionExpired — never silently
// re-applied.
func TestChaosSessionExpiredRetry(t *testing.T) {
	leakCheck(t)
	net := netsim.New(netsim.WithSeed(chaosSeed()))
	t.Cleanup(net.Close)

	tab := session.NewTable(session.Config{RepliesPerSession: 1})
	ep1, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	node1 := kernel.NewNode(ep1, kernel.WithSessions(tab))
	t.Cleanup(func() { node1.Close() })
	ktx1, err := node1.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	srv := core.NewRuntime(ktx1)

	ep2, err := net.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	ktx2, err := kernelNodeForTest(t, ep2).NewContext()
	if err != nil {
		t.Fatal(err)
	}
	cli := core.NewRuntime(ktx2)
	t.Cleanup(cli.CloseProxies)

	kv := bench.NewKV()
	ref, err := srv.Export(kv, "KV")
	if err != nil {
		t.Fatal(err)
	}
	p, err := cli.Import(ref)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	const sid = uint64(0xBEEF)
	incr := func(seq uint64) ([]any, error) {
		return p.Invoke(core.ContextWithSession(ctx, sid, seq), "incr", "k")
	}
	if res, err := incr(1); err != nil || res[0] != int64(1) {
		t.Fatalf("seq 1 = %v, %v", res, err)
	}
	if res, err := incr(2); err != nil || res[0] != int64(2) {
		t.Fatalf("seq 2 = %v, %v", res, err)
	}
	// Retry of the latest identity: cached reply, no handler dispatch.
	if res, err := incr(2); err != nil || res[0] != int64(2) {
		t.Fatalf("retry of seq 2 = %v, %v, want cached 2", res, err)
	}
	if got := kv.Get("k"); got != 2 {
		t.Fatalf("k = %d after cached replay, want 2 (replay re-dispatched)", got)
	}
	// Retry of the identity the one-reply window dropped: the floor rose
	// past it, and the only honest answer is "outcome unknown".
	_, err = incr(1)
	var ie *core.InvokeError
	if !errors.As(err, &ie) || ie.Code != core.CodeSessionExpired {
		t.Fatalf("retry below floor = %v, want CodeSessionExpired", err)
	}
	if got := kv.Get("k"); got != 2 {
		t.Fatalf("k = %d after expired retry, want 2 (expired retry applied)", got)
	}
	if st := tab.Stats(); st.Hits < 1 || st.Expired < 1 {
		t.Fatalf("table stats = %+v, want hits and expired recorded", st)
	}
}

// TestChaosSessionShardHandoff rebalances a sharded keyspace between two
// plain guards while a session's identities are retransmitted: dedup
// entries travel with their keys' handoff, so a retry of a moved key's
// identity is answered from cache by the NEW owner, and no retry — moved
// or not — ever applies twice.
func TestChaosSessionShardHandoff(t *testing.T) {
	leakCheck(t)
	seed := chaosSeed()
	c := newChaosCluster(t, 4,
		[]rpc.ClientOption{rpc.WithRetryInterval(5 * time.Millisecond), rpc.WithMaxAttempts(20)})
	spec := bench.KVShardSpec()
	sf := shard.NewFactory(spec, shard.WithName("sess-chaos"))
	router := shard.NewRouter(c.rts[0], sf)
	ctx := context.Background()

	kva, kvb := bench.NewKV(), bench.NewKV()
	refA, err := c.rts[1].Export(shard.NewGuard("a", spec, kva), "SessShardGuard")
	if err != nil {
		t.Fatal(err)
	}
	actx, cancel := context.WithTimeout(ctx, 20*time.Second)
	err = router.AddMember(actx, "a", refA)
	cancel()
	if err != nil {
		t.Fatalf("admit a: %v", err)
	}
	ref, err := c.rts[0].ExportVia(sf, router, "SessShardedKV")
	if err != nil {
		t.Fatal(err)
	}
	c.rts[3].RegisterProxyType("SessShardedKV", shard.NewFactory(shard.Spec{}))
	pp, err := c.rts[3].Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	p := pp.(*shard.Proxy)

	// One session, one seq per key: every identity maps to exactly one
	// incr of one key.
	const sid = uint64(0xC0FFEE)
	n := uint64(12 + seed%6)
	for i := uint64(1); i <= n; i++ {
		res, err := p.Invoke(core.ContextWithSession(ctx, sid, i), "incr", fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatalf("write k%d: %v", i, err)
		}
		if res[0] != int64(1) {
			t.Fatalf("write k%d = %v, want 1", i, res[0])
		}
	}

	// Admit the second guard: the rebalance hands a slice of the keyspace
	// — values AND their dedup entries — from a to b.
	refB, err := c.rts[2].Export(shard.NewGuard("b", spec, kvb), "SessShardGuard")
	if err != nil {
		t.Fatal(err)
	}
	actx, cancel = context.WithTimeout(ctx, 20*time.Second)
	err = router.AddMember(actx, "b", refB)
	cancel()
	if err != nil {
		t.Fatalf("admit b: %v", err)
	}
	moved := len(kvb.Keys())
	if moved == 0 {
		t.Fatal("no keys moved to b; ring distribution degenerate")
	}

	// Retransmit every identity through the sharded proxy: moved keys
	// route to b (whose imported dedup entries answer), unmoved keys to a.
	// Every reply must be the cached 1; every value must stay 1.
	for i := uint64(1); i <= n; i++ {
		key := fmt.Sprintf("k%d", i)
		res, err := p.Invoke(core.ContextWithSession(ctx, sid, i), "incr", key)
		if err != nil {
			t.Fatalf("retry %s after rebalance: %v", key, err)
		}
		if res[0] != int64(1) {
			t.Fatalf("retry %s = %v, want cached 1 (duplicate apply)", key, res[0])
		}
		rctx := context.Background()
		got, err := p.Invoke(rctx, "get", key)
		if err != nil {
			t.Fatalf("read %s: %v", key, err)
		}
		if got[0] != int64(1) {
			t.Fatalf("%s = %v after retry, want 1", key, got[0])
		}
	}
	// Each key lives on exactly one member, at exactly 1.
	if total := len(kva.Keys()) + len(kvb.Keys()); total != int(n) {
		t.Fatalf("keys across members = %d, want %d", total, n)
	}
	t.Logf("seed %d: %d keys written, %d handed off, all retries cached", seed, n, moved)
}

// TestChaosSessionWALReassumption crashes an incarnation and re-exports
// on top of its surviving log store: the dedup table is rebuilt from the
// WAL (the snapshot's baseline plus per-record identities), so a client
// retransmission that outlived the crash is answered from cache by the
// next incarnation instead of re-applied.
func TestChaosSessionWALReassumption(t *testing.T) {
	leakCheck(t)
	seed := chaosSeed()
	store := persist.NewMemStore(nil)
	factory := replica.NewFactory(bench.KVReads(),
		func() replica.StateMachine { return bench.NewKV() },
		replica.WithSnapshotEvery(3),
		replica.WithName("sess-wal"),
		replica.WithWALStore(func(wire.Addr) persist.LogStore { return store }))

	mkWorld := func() (server, client *core.Runtime, stop func()) {
		net := netsim.New(netsim.WithSeed(seed))
		var closers []func()
		mk := func(id wire.NodeID) *core.Runtime {
			ep, err := net.Attach(id)
			if err != nil {
				t.Fatal(err)
			}
			node := kernel.NewNode(ep)
			closers = append(closers, func() { node.Close() })
			ktx, err := node.NewContext()
			if err != nil {
				t.Fatal(err)
			}
			rt := core.NewRuntime(ktx)
			rt.RegisterProxyType("SessWalKV", factory)
			return rt
		}
		server, client = mk(1), mk(2)
		rts := []*core.Runtime{server, client}
		return server, client, func() {
			for _, rt := range rts {
				rt.CloseProxies()
			}
			for _, c := range closers {
				c()
			}
			net.Close()
		}
	}

	ctx := context.Background()
	const sid = uint64(7)
	server1, client1, stop1 := mkWorld()
	svc1 := bench.NewKV()
	ref1, err := server1.Export(svc1, "SessWalKV")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := client1.Import(ref1)
	if err != nil {
		t.Fatal(err)
	}
	// Five session-stamped incrs: the snapshot at write 3 carries the
	// dedup baseline; writes 4-5 survive as records plus dedup records.
	for i := uint64(1); i <= 5; i++ {
		res, err := p1.Invoke(core.ContextWithSession(ctx, sid, i), "incr", fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if res[0] != int64(1) {
			t.Fatalf("write %d = %v, want 1", i, res[0])
		}
	}
	stop1() // crash the incarnation; only the log store survives

	server2, client2, stop2 := mkWorld()
	defer stop2()
	svc2 := bench.NewKV()
	ref2, err := server2.Export(svc2, "SessWalKV")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := client2.Import(ref2)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.(*replica.Proxy).Epoch(); got != 2 {
		t.Errorf("reassumed epoch = %d, want 2", got)
	}
	// Retransmissions that outlived the crash: one identity from inside
	// the snapshot baseline, one rebuilt from the logged suffix. Both are
	// recognized — cached reply, no re-apply.
	for _, seq := range []uint64{2, 5} {
		key := fmt.Sprintf("k%d", seq)
		res, err := p2.Invoke(core.ContextWithSession(ctx, sid, seq), "incr", key)
		if err != nil {
			t.Fatalf("retry of seq %d across restart: %v", seq, err)
		}
		if res[0] != int64(1) {
			t.Fatalf("retry of seq %d = %v, want cached 1", seq, res[0])
		}
		if got := svc2.Get(key); got != 1 {
			t.Fatalf("%s = %d after cross-restart retry, want 1 (duplicate apply)", key, got)
		}
	}
	// A fresh identity keeps the session going in the new incarnation.
	res, err := p2.Invoke(core.ContextWithSession(ctx, sid, 6), "incr", "k6")
	if err != nil || res[0] != int64(1) {
		t.Fatalf("fresh write after restart = %v, %v", res, err)
	}
	t.Logf("seed %d: 5 writes survived the crash, retries of seq 2 and 5 answered from rebuilt dedup state", seed)
}
