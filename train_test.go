package repro

// End-to-end tests for frame trains: transparent per-destination
// coalescing under the full stack (runtime, rpc, kernel, netsim), the
// legacy-peer fallback, and the batching proxy's flusher lifecycle.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// stageAlways forces the coalescer's load detector to latch on the first
// send: tests that assert trains actually form must not depend on the
// adaptive detector's timing, which -race instrumentation distorts.
func stageAlways() wire.CoalescerConfig {
	return wire.CoalescerConfig{BurstGap: time.Hour, EnterBurst: 1}
}

// TestTrainsCrossContextFanIn drives 8 concurrent callers through one
// coalescing endpoint at a same-node, cross-context KV and checks the two
// things the trains must not change and the one thing they must: every
// increment lands exactly once, every reply reaches its caller, and the
// traffic actually rode in multi-member trains.
func TestTrainsCrossContextFanIn(t *testing.T) {
	leakCheck(t)
	net := netsim.New()
	t.Cleanup(net.Close)
	ep, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	ce := netsim.Coalesce(ep, stageAlways())
	node := kernelNodeForTest(t, ce)
	srvCtx, err := node.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	srv := core.NewRuntime(srvCtx)
	kv := bench.NewKV()
	ref, err := srv.Export(kv, "KV")
	if err != nil {
		t.Fatal(err)
	}
	cliCtx, err := node.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	client := core.NewRuntime(cliCtx)

	const workers, opsPer = 8, 50
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		p, err := client.Import(ref)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p core.Proxy) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				if _, err := p.Invoke(ctx, "incr", "hits"); err != nil {
					errs <- err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := kv.Get("hits"); got != workers*opsPer {
		t.Errorf("hits = %d, want %d (lost or duplicated members)", got, workers*opsPer)
	}
	st := ce.Coalescer().Stats()
	if st.TrainsSent == 0 {
		t.Errorf("no trains formed under fan-in %d: stats %+v", workers, st)
	}
	if st.SendErrors != 0 {
		t.Errorf("coalescer recorded %d send errors", st.SendErrors)
	}
}

// TestTrainsRemoteFanIn moves the callers to another node so both halves
// of the exchange cross the simulated network: requests coalesce on the
// client node, replies coalesce on the server node, and the capability to
// do either is learned from frame flags, not configured.
func TestTrainsRemoteFanIn(t *testing.T) {
	leakCheck(t)
	net := netsim.New()
	t.Cleanup(net.Close)
	epS, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	ceS := netsim.Coalesce(epS, stageAlways())
	nodeS := kernelNodeForTest(t, ceS)
	epC, err := net.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	ceC := netsim.Coalesce(epC, stageAlways())
	nodeC := kernelNodeForTest(t, ceC)

	srvCtx, err := nodeS.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	srv := core.NewRuntime(srvCtx)
	kv := bench.NewKV()
	ref, err := srv.Export(kv, "KV")
	if err != nil {
		t.Fatal(err)
	}
	cliCtx, err := nodeC.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	client := core.NewRuntime(cliCtx)

	const workers, opsPer = 8, 50
	ctx := context.Background()
	proxies := make([]core.Proxy, workers)
	for i := range proxies {
		if proxies[i], err = client.Import(ref); err != nil {
			t.Fatal(err)
		}
	}
	// One call per proxy first: the initial request/reply exchange teaches
	// each side the other speaks trains, so the measured burst below
	// coalesces in both directions.
	for _, p := range proxies {
		if _, err := p.Invoke(ctx, "noop"); err != nil {
			t.Fatal(err)
		}
	}
	if !ceC.Coalescer().Capable(1) || !ceS.Coalescer().Capable(2) {
		t.Fatalf("capability not learned: client-knows-server=%v server-knows-client=%v",
			ceC.Coalescer().Capable(1), ceS.Coalescer().Capable(2))
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w, p := range proxies {
		wg.Add(1)
		go func(w int, p core.Proxy) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				if _, err := p.Invoke(ctx, "incr", fmt.Sprintf("w%d", w)); err != nil {
					errs <- err
					return
				}
			}
		}(w, p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for w := 0; w < workers; w++ {
		if got := kv.Get(fmt.Sprintf("w%d", w)); got != opsPer {
			t.Errorf("worker %d count = %d, want %d", w, got, opsPer)
		}
	}
	if st := ceC.Coalescer().Stats(); st.TrainsSent == 0 {
		t.Errorf("client sent no request trains: stats %+v", st)
	}
	if st := ceS.Coalescer().Stats(); st.TrainsSent == 0 {
		t.Errorf("server sent no reply trains: stats %+v", st)
	}
}

// TestTrainsMixedClusterFallback pairs a coalescing node with a legacy
// node that has never heard of trains. Calls flow both ways; the
// coalescing side must fall back to frame-at-a-time toward the peer it
// never saw FlagTrains from, and nothing the legacy node receives may be
// a container frame (the kernel would reply, but a real legacy stack
// would drop it — the capability gate is what keeps the wire honest).
func TestTrainsMixedClusterFallback(t *testing.T) {
	leakCheck(t)
	net := netsim.New()
	t.Cleanup(net.Close)
	epNew, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	ceNew := netsim.Coalesce(epNew, stageAlways())
	nodeNew := kernelNodeForTest(t, ceNew)
	epOld, err := net.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	nodeOld := kernelNodeForTest(t, epOld) // plain endpoint: a pre-train peer

	ctxNew, err := nodeNew.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	rtNew := core.NewRuntime(ctxNew)
	ctxOld, err := nodeOld.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	rtOld := core.NewRuntime(ctxOld)

	kvOld := bench.NewKV()
	refOld, err := rtOld.Export(kvOld, "KV")
	if err != nil {
		t.Fatal(err)
	}
	kvNew := bench.NewKV()
	refNew, err := rtNew.Export(kvNew, "KV")
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	const workers, opsPer = 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, 2*workers)
	for w := 0; w < workers; w++ {
		pToOld, err := rtNew.Import(refOld)
		if err != nil {
			t.Fatal(err)
		}
		pToNew, err := rtOld.Import(refNew)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(2)
		go func(p core.Proxy) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				if _, err := p.Invoke(ctx, "incr", "from-new"); err != nil {
					errs <- err
					return
				}
			}
		}(pToOld)
		go func(p core.Proxy) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				if _, err := p.Invoke(ctx, "incr", "from-old"); err != nil {
					errs <- err
					return
				}
			}
		}(pToNew)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := kvOld.Get("from-new"); got != workers*opsPer {
		t.Errorf("legacy node saw %d increments, want %d", got, workers*opsPer)
	}
	if got := kvNew.Get("from-old"); got != workers*opsPer {
		t.Errorf("coalescing node saw %d increments, want %d", got, workers*opsPer)
	}
	st := ceNew.Coalescer().Stats()
	if ceNew.Coalescer().Capable(2) {
		t.Error("legacy peer marked train-capable")
	}
	if st.TrainsSent != 0 {
		t.Errorf("sent %d trains to a cluster whose only peer is legacy", st.TrainsSent)
	}
	if st.DirectSends == 0 {
		t.Error("no direct sends recorded on the fallback path")
	}
}

// TestBatchProxyCloseStopsFlusher pins the BatchProxy lifecycle fix: an
// interval flush stuck behind a wedged server must not block Close or
// outlive it. leakCheck (via the root helper) is the real assertion — the
// timer-armed flusher goroutine has to be gone after Close returns.
func TestBatchProxyCloseStopsFlusher(t *testing.T) {
	leakCheck(t)
	c, err := bench.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	release := make(chan struct{})
	t.Cleanup(func() { close(release) }) // runs before leakCheck's cleanup
	wedged := core.ServiceFunc(func(ctx context.Context, method string, args []any) ([]any, error) {
		<-release // hold every batch flush until teardown
		return nil, nil
	})

	factory := core.NewBatchFactory([]string{"append"},
		core.WithBatchSize(100), core.WithBatchInterval(time.Millisecond))
	c.RT(1).RegisterProxyType("Log", factory)
	ref, err := c.RT(0).Export(wedged, "Log")
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.RT(1).Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	bp := p.(*core.BatchProxy)

	if _, err := bp.Invoke(context.Background(), "append", "x"); err != nil {
		t.Fatal(err)
	}
	// Let the interval timer fire and the background flush wedge on the
	// blocked server.
	time.Sleep(20 * time.Millisecond)

	start := time.Now()
	_ = bp.Close() // the wedged flush surfaces as a cancelled call; fine
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("Close took %v; the cancelled background flush should return promptly", d)
	}
	if _, err := bp.Invoke(context.Background(), "append", "x"); err != core.ErrProxyClosed {
		t.Errorf("Invoke after Close = %v, want ErrProxyClosed", err)
	}
}
