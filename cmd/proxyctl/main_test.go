package main

import (
	"reflect"
	"testing"

	"repro/internal/wire"
)

func TestParseRef(t *testing.T) {
	tests := []struct {
		in      string
		node    wire.NodeID
		ctx     wire.ContextID
		obj     wire.ObjectID
		typ     string
		wantErr bool
	}{
		{in: "1.1/1:naming.Directory", node: 1, ctx: 1, obj: 1, typ: "naming.Directory"},
		{in: "42.7/99:KV", node: 42, ctx: 7, obj: 99, typ: "KV"},
		{in: "noType", wantErr: true},
		{in: "1.1:T", wantErr: true},   // missing /object
		{in: "11/5:T", wantErr: true},  // missing .ctx
		{in: "a.b/c:T", wantErr: true}, // non-numeric
		{in: "1.1/x:T", wantErr: true}, // non-numeric object
		{in: "", wantErr: true},
	}
	for _, tt := range tests {
		ref, err := parseRef(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parseRef(%q) succeeded: %+v", tt.in, ref)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseRef(%q): %v", tt.in, err)
			continue
		}
		if ref.Target.Addr.Node != tt.node || ref.Target.Addr.Context != tt.ctx ||
			ref.Target.Object != tt.obj || ref.Type != tt.typ {
			t.Errorf("parseRef(%q) = %+v", tt.in, ref)
		}
	}
}

func TestParseArgs(t *testing.T) {
	got := parseArgs([]string{"hello", "42", "-7", "3.5", "9999999999999999999999"})
	want := []any{"hello", int64(42), int64(-7), "3.5", "9999999999999999999999"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseArgs = %#v, want %#v", got, want)
	}
	if len(parseArgs(nil)) != 0 {
		t.Error("parseArgs(nil) non-empty")
	}
}

func TestStatusVerbs(t *testing.T) {
	tests := []struct {
		verb   string
		name   string
		method string
	}{
		{verb: "health", name: "services/health", method: "nodes"},
		{verb: "overload", name: "services/overload", method: "status"},
		{verb: "group", name: "services/replica", method: "groups"},
		{verb: "sessions", name: "services/session", method: "sessions"},
	}
	for _, tt := range tests {
		sv, ok := statusVerbs[tt.verb]
		if !ok {
			t.Errorf("statusVerbs[%q] missing", tt.verb)
			continue
		}
		if sv.name != tt.name || sv.method != tt.method {
			t.Errorf("statusVerbs[%q] = %+v, want {%s %s}", tt.verb, sv, tt.name, tt.method)
		}
	}
	if len(statusVerbs) != len(tests) {
		t.Errorf("statusVerbs has %d entries, tests cover %d", len(statusVerbs), len(tests))
	}
}

func TestParsePeers(t *testing.T) {
	got, err := parsePeers("1=a:1, 2=b:2")
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != "a:1" || got[2] != "b:2" || len(got) != 2 {
		t.Errorf("peers = %v", got)
	}
	if _, err := parsePeers("junk"); err == nil {
		t.Error("parsePeers(junk) succeeded")
	}
	if _, err := parsePeers("x=addr"); err == nil {
		t.Error("parsePeers(non-numeric id) succeeded")
	}
	empty, err := parsePeers("")
	if err != nil || len(empty) != 0 {
		t.Errorf("parsePeers(\"\") = %v, %v", empty, err)
	}
}
