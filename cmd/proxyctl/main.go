// Proxyctl is the CLI client for a proxyd deployment: it bootstraps from a
// directory node's well-known reference, resolves names, and invokes
// methods through ordinary stub proxies.
//
// Usage:
//
//	proxyctl -node 99 -listen :0 -peers 1=host:7001 -dir 1 <command>
//
// Commands:
//
//	list [prefix]                 list bound names
//	lookup <name>                 resolve a name to a reference
//	bind <name> <ref>             bind name to "node.ctx/obj:Type"
//	unbind <name>                 remove a binding
//	invoke <name> <method> [args] resolve and invoke; integer-looking args
//	                              are passed as int64, the rest as strings
//	stats                         dump the daemon's metrics registry
//	traces                        list the daemon's recent traces
//	trace <id>                    render one trace tree (hex id from traces)
//	health                        print the daemon's failure-detector view
//	                              of its peers (alive/degraded/suspect/
//	                              dead, with RTT, gray-failure score, and
//	                              degradation direction)
//	overload                      print the daemon's admission-controller
//	                              status: learned limit, inflight, queue
//	                              depth, shed counters
//	group                         print the daemon's replica groups:
//	                              role, epoch, primary, and per-member
//	                              applied sequence numbers
//	sessions                      print the daemon's exactly-once dedup
//	                              table: live sessions, cached replies,
//	                              replay/expired/eviction counters
//	shard status                  print the daemon's sharded deployments:
//	                              table epoch, members, keys per shard
//	shard add <shard> <member> <ref>
//	                              admit an exported member to a sharded
//	                              deployment and rebalance onto it
//	shard remove <shard> <member> [force]
//	                              retire a member, draining its key
//	                              ranges ("force" accepts data loss when
//	                              the member is unreachable)
//
// With -trace, invoke runs under a fresh trace and prints the resulting
// tree, merging this client's spans with the spans the daemon recorded —
// the causal chain of one cross-context invocation, reassembled.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/wire"
)

func main() {
	log.SetFlags(0)
	nodeID := flag.Uint("node", 99, "this client's node id")
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address (for replies)")
	peersFlag := flag.String("peers", "", "peer table: id=host:port,...")
	dirNode := flag.Uint("dir", 1, "node id hosting the root directory")
	timeout := flag.Duration("timeout", 5*time.Second, "per-operation timeout")
	traceInvoke := flag.Bool("trace", false, "trace the invoke command and print the merged trace tree")
	trains := flag.Bool("trains", true, "advertise train capability so daemons may coalesce replies to this client")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	peers, err := parsePeers(*peersFlag)
	if err != nil {
		log.Fatalf("bad -peers: %v", err)
	}
	ep, err := netsim.ListenTCP(wire.NodeID(*nodeID), *listen, peers)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	// Advertise train capability so daemons may coalesce replies to this
	// client; a one-shot CLI generates no fan-in of its own, so the
	// wrapper's send side stays in its inline mode throughout.
	var kernelEP netsim.Endpoint = ep
	if *trains {
		kernelEP = netsim.Coalesce(ep, wire.CoalescerConfig{})
	}
	node := kernel.NewNode(kernelEP)
	defer node.Close()
	ktx, err := node.NewContext()
	if err != nil {
		log.Fatal(err)
	}
	observer := obs.NewObserver()
	rt := core.NewRuntime(ktx, core.WithObserver(observer))
	// Deployments that export their KV through the caching factory (proxyd
	// -cached-kv) hand out references of type "CachedKV"; registering the
	// factory here lets this client cache reads locally. Unknown types
	// still fall back to plain stubs.
	rt.RegisterProxyType("CachedKV", cache.NewFactory(nil))
	// Sharded deployments (proxyd -sharded-kv) hand out "ShardedKV" refs;
	// with the factory registered this client routes each key straight to
	// its owning shard (the keyspace spec travels in the reference hint,
	// so a zero-spec factory suffices).
	rt.RegisterProxyType("ShardedKV", shard.NewFactory(shard.Spec{}))

	dirRef := codec.Ref{
		Target: wire.ObjAddr{
			Addr:   wire.Addr{Node: wire.NodeID(*dirNode), Context: 1},
			Object: naming.WellKnownObject,
		},
		Type: naming.TypeName,
	}
	dirProxy, err := rt.Import(dirRef)
	if err != nil {
		log.Fatalf("import directory: %v", err)
	}
	client := naming.NewClient(dirProxy)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch cmd := args[0]; cmd {
	case "list":
		prefix := ""
		if len(args) > 1 {
			prefix = args[1]
		}
		names, err := client.List(ctx, prefix)
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
	case "lookup":
		requireArgs(args, 2, "lookup <name>")
		ref, err := client.Lookup(ctx, args[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s/%d:%s\n", ref.Target.Addr, ref.Target.Object, ref.Type)
	case "bind":
		requireArgs(args, 3, "bind <name> <node.ctx/obj:Type>")
		ref, err := parseRef(args[2])
		if err != nil {
			log.Fatal(err)
		}
		if err := client.Bind(ctx, args[1], ref, 0); err != nil {
			log.Fatal(err)
		}
	case "unbind":
		requireArgs(args, 2, "unbind <name>")
		if err := client.Unbind(ctx, args[1]); err != nil {
			log.Fatal(err)
		}
	case "invoke":
		requireArgs(args, 3, "invoke <name> <method> [args...]")
		p, err := client.Resolve(ctx, rt, args[1])
		if err != nil {
			log.Fatal(err)
		}
		ictx := ctx
		var root obs.SpanContext
		if *traceInvoke {
			// Mint the root span here so the whole invocation (including
			// the stub's own span) parents under one known trace id.
			var finishRoot func(error)
			ictx, finishRoot = observer.Tracer.StartSpan(ctx, "proxyctl:"+args[2], "proxyctl")
			root, _ = obs.SpanFromContext(ictx)
			defer finishRoot(nil)
		}
		results, err := p.Invoke(ictx, args[2], parseArgs(args[3:])...)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			fmt.Printf("%v\n", r)
		}
		if *traceInvoke {
			printMergedTrace(ctx, rt, client, observer, root)
		}
	case "health", "overload", "group", "sessions":
		sv := statusVerbs[cmd]
		p, err := client.Resolve(ctx, rt, sv.name)
		if err != nil {
			log.Fatalf("resolve %s (daemon too old?): %v", sv.name, err)
		}
		text, err := core.Call1[string](ctx, p, sv.method)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(text)
	case "shard":
		requireArgs(args, 2, "shard status | shard add <shard> <member> <ref> | shard remove <shard> <member> [force]")
		p, err := client.Resolve(ctx, rt, "services/shard")
		if err != nil {
			log.Fatalf("resolve services/shard (daemon too old?): %v", err)
		}
		switch sub := args[1]; sub {
		case "status":
			text, err := core.Call1[string](ctx, p, "status")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(text)
		case "add":
			requireArgs(args, 5, "shard add <shard> <member> <node.ctx/obj:Type>")
			ref, err := parseRef(args[4])
			if err != nil {
				log.Fatal(err)
			}
			text, err := core.Call1[string](ctx, p, "add", args[2], args[3], ref)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(text)
		case "remove":
			requireArgs(args, 4, "shard remove <shard> <member> [force]")
			callArgs := []any{args[2], args[3]}
			if len(args) > 4 && args[4] == "force" {
				callArgs = append(callArgs, true)
			}
			text, err := core.Call1[string](ctx, p, "remove", callArgs...)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(text)
		default:
			log.Fatalf("unknown shard subcommand %q", sub)
		}
	case "stats":
		text, err := obsCall[string](ctx, rt, client, "metrics")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(text)
	case "traces":
		text, err := obsCall[string](ctx, rt, client, "traces")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(text)
	case "trace":
		requireArgs(args, 2, "trace <id>")
		raw, err := obsCall[[]byte](ctx, rt, client, "trace", args[1])
		if err != nil {
			log.Fatal(err)
		}
		spans, err := obs.DecodeSpans(raw)
		if err != nil {
			log.Fatal(err)
		}
		obs.FormatTrace(os.Stdout, spans)
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

// statusVerbs maps the plain status commands onto the daemon service each
// renders: the directory name the service is bound at, and the method
// returning its formatted status text. The verbs share one code path in
// main; keeping the mapping as data keeps it testable without a cluster.
var statusVerbs = map[string]struct{ name, method string }{
	"health":   {name: "services/health", method: "nodes"},
	"overload": {name: "services/overload", method: "status"},
	"group":    {name: "services/replica", method: "groups"},
	"sessions": {name: "services/session", method: "sessions"},
}

// obsCall resolves the daemon's observability service from the directory
// and invokes one method on it.
func obsCall[T any](ctx context.Context, rt *core.Runtime, client *naming.Client, method string, args ...any) (T, error) {
	var zero T
	p, err := client.Resolve(ctx, rt, "services/obs")
	if err != nil {
		return zero, fmt.Errorf("resolve services/obs (daemon too old?): %w", err)
	}
	return core.Call1[T](ctx, p, method, args...)
}

// printMergedTrace pulls the daemon's spans for the given trace, merges
// them with the spans this process recorded, and renders the tree. Spans
// recorded by contexts other than the directory daemon (multi-node
// chains) are merged in by whichever daemon their hops crossed — this
// fetches from the bootstrap daemon only.
func printMergedTrace(ctx context.Context, rt *core.Runtime, client *naming.Client, observer *obs.Observer, root obs.SpanContext) {
	spans := observer.Tracer.Spans(root.Trace)
	if raw, err := obsCall[[]byte](ctx, rt, client, "trace", root.Trace.String()); err == nil {
		if remote, err := obs.DecodeSpans(raw); err == nil {
			have := make(map[obs.SpanID]bool, len(spans))
			for _, sp := range spans {
				have[sp.ID] = true
			}
			for _, sp := range remote {
				if !have[sp.ID] {
					spans = append(spans, sp)
				}
			}
		}
	}
	// The root span has not finished yet (it closes when main returns);
	// synthesize it so the tree hangs together.
	spans = append(spans, obs.Span{Trace: root.Trace, ID: root.Span, Name: "proxyctl", Where: "proxyctl"})
	fmt.Fprintf(os.Stderr, "\n")
	obs.FormatTrace(os.Stderr, spans)
}

func requireArgs(args []string, n int, usage string) {
	if len(args) < n {
		log.Fatalf("usage: proxyctl %s", usage)
	}
}

// parseArgs converts CLI strings into invocation arguments: integers
// become int64, everything else stays a string.
func parseArgs(raw []string) []any {
	out := make([]any, len(raw))
	for i, s := range raw {
		out[i] = parseArg(s)
	}
	return out
}

// parseArg converts one CLI string: an integer, a JSON list (the key
// vectors multi-key shard methods take, e.g. '["k",7]'), or a string.
func parseArg(s string) any {
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return v
	}
	if strings.HasPrefix(s, "[") {
		var list []any
		if err := json.Unmarshal([]byte(s), &list); err == nil {
			for i, e := range list {
				// JSON numbers decode as float64; invocation payloads
				// want integers where the value is integral.
				if f, ok := e.(float64); ok && f == float64(int64(f)) {
					list[i] = int64(f)
				}
			}
			return list
		}
	}
	return s
}

// parseRef parses "node.ctx/obj:Type".
func parseRef(s string) (codec.Ref, error) {
	addrPart, typ, ok := strings.Cut(s, ":")
	if !ok {
		return codec.Ref{}, fmt.Errorf("ref %q: missing :Type", s)
	}
	loc, objPart, ok := strings.Cut(addrPart, "/")
	if !ok {
		return codec.Ref{}, fmt.Errorf("ref %q: missing /object", s)
	}
	nodePart, ctxPart, ok := strings.Cut(loc, ".")
	if !ok {
		return codec.Ref{}, fmt.Errorf("ref %q: address must be node.ctx", s)
	}
	node, err := strconv.ParseUint(nodePart, 10, 32)
	if err != nil {
		return codec.Ref{}, fmt.Errorf("ref %q: %w", s, err)
	}
	ctxID, err := strconv.ParseUint(ctxPart, 10, 32)
	if err != nil {
		return codec.Ref{}, fmt.Errorf("ref %q: %w", s, err)
	}
	obj, err := strconv.ParseUint(objPart, 10, 64)
	if err != nil {
		return codec.Ref{}, fmt.Errorf("ref %q: %w", s, err)
	}
	return codec.Ref{
		Target: wire.ObjAddr{
			Addr:   wire.Addr{Node: wire.NodeID(node), Context: wire.ContextID(ctxID)},
			Object: wire.ObjectID(obj),
		},
		Type: typ,
	}, nil
}

func parsePeers(s string) (map[wire.NodeID]string, error) {
	peers := make(map[wire.NodeID]string)
	if s == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("entry %q is not id=addr", part)
		}
		n, err := strconv.ParseUint(id, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("entry %q: %w", part, err)
		}
		peers[wire.NodeID(n)] = addr
	}
	return peers, nil
}
