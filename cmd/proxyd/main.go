// Proxyd hosts a node of the system over real TCP: a kernel context, a
// proxy runtime, and a root name directory exported at the well-known
// object id, so other processes can bootstrap from nothing but this
// node's id and address.
//
// Usage:
//
//	proxyd -node 1 -listen :7001 [-peers 2=host:7002,3=host:7003] [-with-kv]
//
// The root directory of node N is importable as the reference
// "N.1/1:naming.Directory" — which is exactly what cmd/proxyctl
// constructs. With -with-kv the daemon also exports a demo KV service and
// binds it at "services/kv".
//
// Every daemon runs a failure detector over its -peers table: kernel-level
// pings every -health-interval grade each peer alive/suspect/dead, the
// verdicts feed the runtime's circuit breakers, and the detector itself is
// exported as a service bound at "services/health" (inspect it with
// proxyctl health). -health-interval 0 disables active probing; the
// detector then learns passively from invocation outcomes only. The
// detector also scores gray failures — peers that answer but slowly or
// lossily — from EWMA RTT/loss evidence (-gray-outlier, -gray-degrade),
// and disambiguates one-way partitions from death by asking other peers
// to probe a suspect on its behalf (-gray-indirect).
//
// With -replicated-kv the demo KV is exported through the replica smart
// proxy instead: importing peers with the factory registered become group
// members with local reads and self-healing failover. -wal-dir makes the
// primary's write-ahead log file-backed, so a restarted daemon reassumes
// its groups (next epoch, state replayed from the log) instead of losing
// them. Every daemon also exports a replica status service bound at
// "services/replica" (inspect it with proxyctl group).
//
// Outbound frames to the same destination coalesce into train frames
// under fan-in (-trains, on by default; -train-frames/-train-bytes bound
// each train). The capability is learned per peer from frame flags, so a
// mixed deployment with pre-train daemons degrades to frame-at-a-time
// toward them with no configuration.
//
// With -sharded-kv the demo KV is exported through the sharding smart
// proxy: its keyspace is consistent-hashed across -shard-members local
// member shards, clients with the factory registered route each key
// straight to its owner, and membership grows or shrinks at runtime via
// `proxyctl shard add/remove` (the shard control service is bound at
// "services/shard" on every daemon).
//
// With -session-dedup the daemon enforces exactly-once invocation for
// session-stamped requests: a bounded per-session dedup table answers
// retransmitted writes from cached replies below the object layer
// instead of re-executing them (-session-max/-session-ttl bound it; a
// retry arriving after eviction fails loudly with session-expired). The
// table's status service is bound at "services/session" (proxyctl
// sessions).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	"time"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/persist"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/session"
	"repro/internal/shard"
	"repro/internal/wire"
)

func main() {
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	nodeID := flag.Uint("node", 1, "this node's id")
	listen := flag.String("listen", ":7001", "TCP listen address")
	peersFlag := flag.String("peers", "", "peer table: id=host:port,id=host:port")
	withKV := flag.Bool("with-kv", false, "export a demo KV service bound at services/kv")
	cachedKV := flag.Bool("cached-kv", false, "export the demo KV through the caching smart proxy (clients with the factory registered cache reads locally)")
	replicatedKV := flag.Bool("replicated-kv", false, "export the demo KV through the replicating smart proxy (importing peers become self-healing group members)")
	shardedKV := flag.Bool("sharded-kv", false, "export the demo KV through the sharding smart proxy: the keyspace is consistent-hashed across member shards")
	shardMembers := flag.Int("shard-members", 2, "initial local member count of the -sharded-kv deployment (grow it with proxyctl shard add)")
	walDir := flag.String("wal-dir", "", "directory for replica write-ahead logs (empty = in-memory; set it and a restarted daemon reassumes its groups)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file: state is loaded from it at boot and saved to it at shutdown")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "peer liveness probe interval (0 = passive detection only)")
	grayOutlier := flag.Float64("gray-outlier", 3.0, "gray-failure RTT outlier factor: a peer's EWMA RTT at this multiple of the population median scores 1.0 (<=1 disables RTT scoring)")
	grayDegrade := flag.Float64("gray-degrade", 0.5, "gray-failure score at or above which a peer is graded degraded (with hysteresis at half this value)")
	grayIndirectK := flag.Int("gray-indirect", 2, "peers asked to ping a suspect on this node's behalf, disambiguating one-way partitions from death (0 = off)")
	dispatchLimit := flag.Int("dispatch-limit", kernel.DefaultDispatchLimit, "max concurrent request handlers per node before the kernel pump applies backpressure")
	overloadOn := flag.Bool("overload", false, "adaptive admission control: learned concurrency limit + queue-deadline shedding, status bound at services/overload (proxyctl overload)")
	overloadQueue := flag.Duration("overload-queue", 0, "admission queue deadline — queued requests older than this are shed (0 = overload package default)")
	retryBudget := flag.Float64("retry-budget", 0, "per-destination retry-token ratio for this daemon's outbound calls (0.1 caps retries near 10% of fresh calls; 0 = unlimited retransmission)")
	sessionDedup := flag.Bool("session-dedup", false, "exactly-once invocation: dedup retried non-idempotent writes by client session, status bound at services/session (proxyctl sessions)")
	sessionMax := flag.Int("session-max", 0, "max live client sessions in the dedup table, LRU-evicted beyond it (0 = session package default)")
	sessionTTL := flag.Duration("session-ttl", session.DefaultTTL, "evict client sessions idle longer than this; a retry after eviction fails with session-expired (0 = never)")
	hedgeDelay := flag.Duration("hedge", 0, "hedge idempotent reads: race a second attempt to an alternate binding after this delay floor, adapting up to observed p95 (0 = off)")
	trains := flag.Bool("trains", true, "coalesce same-destination frames into trains under fan-in (peers fall back automatically if they don't speak trains)")
	trainFrames := flag.Int("train-frames", 0, "max members per train (0 = wire package default)")
	trainBytes := flag.Int("train-bytes", 0, "max member payload bytes per train (0 = wire package default)")
	traceFrames := flag.Bool("trace", false, "log every frame sent and received")
	httpAddr := flag.String("http", "", "optional HTTP listen address serving /metrics and /traces text dumps")
	flag.Parse()

	peers, err := parsePeers(*peersFlag)
	if err != nil {
		log.Fatalf("bad -peers: %v", err)
	}
	ep, err := netsim.ListenTCP(wire.NodeID(*nodeID), *listen, peers)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	// Train coalescing wraps the endpoint below the kernel: outbound
	// same-destination frames pack into container frames under fan-in,
	// and the kernel pump learns which peers can unpack them from the
	// capability bit on their frames. The node owns the wrapper — its
	// Close drains the flushers before the TCP endpoint goes away.
	var kernelEP netsim.Endpoint = ep
	var coalescer *wire.Coalescer
	if *trains {
		ce := netsim.Coalesce(ep, wire.CoalescerConfig{
			MaxFrames: *trainFrames,
			MaxBytes:  *trainBytes,
		})
		coalescer = ce.Coalescer()
		kernelEP = ce
	}
	observer := obs.NewObserver()
	var nodeOpts []kernel.NodeOption
	if *dispatchLimit != kernel.DefaultDispatchLimit {
		nodeOpts = append(nodeOpts, kernel.WithDispatchLimit(*dispatchLimit))
	}
	var adm *overload.Controller
	if *overloadOn {
		adm = overload.NewController(overload.Config{QueueDeadline: *overloadQueue}, observer.Registry, "")
		nodeOpts = append(nodeOpts, kernel.WithAdmission(adm))
	}
	// The kernel-level dedup table answers session-stamped retransmissions
	// from cache below the object layer; core.WithSessions (added to the
	// runtime options below) makes this daemon's own outbound writes mint
	// session headers so peers can dedup them in turn.
	var sessTab *session.Table
	if *sessionDedup {
		sessTab = session.NewTable(session.Config{MaxSessions: *sessionMax, TTL: *sessionTTL})
		nodeOpts = append(nodeOpts, kernel.WithSessions(sessTab))
	}
	if *traceFrames {
		nodeOpts = append(nodeOpts, kernel.WithTrace(func(dir kernel.TraceDirection, f *wire.Frame) {
			log.Printf("%s %s", dir, f)
		}))
	}
	node := kernel.NewNode(kernelEP, nodeOpts...)
	defer node.Close()
	ktx, err := node.NewContext()
	if err != nil {
		log.Fatalf("context: %v", err)
	}

	// The failure detector watches every configured peer and shares its
	// evidence with the runtime: probe verdicts and invocation outcomes
	// both drive the same per-node state machine.
	monitor := health.NewMonitor(ktx,
		health.WithInterval(*healthInterval),
		health.WithObserver(observer),
		health.WithOutlierFactor(*grayOutlier),
		health.WithDegradeScore(*grayDegrade),
		health.WithIndirectProbes(*grayIndirectK))
	defer monitor.Close()
	for id := range peers {
		monitor.Watch(id)
	}

	rtOpts := []core.RuntimeOption{core.WithObserver(observer), core.WithHealth(monitor)}
	if *sessionDedup {
		rtOpts = append(rtOpts, core.WithSessions())
	}
	if *retryBudget > 0 {
		rtOpts = append(rtOpts, core.WithClient(rpc.NewClient(ktx,
			rpc.WithObserver(observer), rpc.WithRetryBudget(*retryBudget, 0))))
	}
	if *hedgeDelay > 0 {
		rtOpts = append(rtOpts, core.WithHedging(core.HedgeConfig{MinDelay: *hedgeDelay}))
	}
	rt := core.NewRuntime(ktx, rtOpts...)
	// Fast-path health gauges: pool hit rates and allocs/op show up in
	// `proxyctl stats` next to the service counters.
	obs.RegisterFastPathMetrics(observer.Registry, rt.InvokeCount)
	// Train gauges: fill, inline/staged split, and the unpack counters
	// (send-side ones only when -trains is on; coalescer may be nil).
	obs.RegisterTrainMetrics(observer.Registry, coalescer)

	// The directory must land at the well-known object id, so it is the
	// first export in this context.
	dir := naming.NewDirectory()
	dirRef, err := rt.Export(dir, naming.TypeName)
	if err != nil {
		log.Fatalf("export directory: %v", err)
	}
	if dirRef.Target.Object != naming.WellKnownObject {
		log.Fatalf("directory landed at object %d, want %d", dirRef.Target.Object, naming.WellKnownObject)
	}
	log.Printf("node %d listening on %s; root directory at %s", *nodeID, ep.ListenAddr(), dirRef)

	// Every daemon exposes its observer: metrics and trace trees are
	// retrievable over the ordinary invocation path (proxyctl stats/trace)
	// from any context that can reach the directory.
	obsRef, err := rt.Export(obs.NewService(observer), obs.TypeName)
	if err != nil {
		log.Fatalf("export obs: %v", err)
	}
	dir.Bind("services/obs", obsRef, 0)

	// The failure detector too: any peer can ask this node who it thinks
	// is alive (proxyctl health).
	healthRef, err := rt.Export(health.NewService(monitor), health.TypeName)
	if err != nil {
		log.Fatalf("export health: %v", err)
	}
	dir.Bind("services/health", healthRef, 0)

	// And the replica-group status view: membership, primary, epoch, and
	// per-member applied sequence for every group this node hosts or has
	// joined (proxyctl group).
	replicaRef, err := rt.Export(replica.NewService(rt), replica.TypeName)
	if err != nil {
		log.Fatalf("export replica status: %v", err)
	}
	dir.Bind("services/replica", replicaRef, 0)

	// Likewise the shard control view: routing tables, epochs, and
	// membership operations for every sharded deployment this node routes
	// (proxyctl shard status/add/remove).
	shardRef, err := rt.Export(shard.NewService(rt), shard.TypeName)
	if err != nil {
		log.Fatalf("export shard status: %v", err)
	}
	dir.Bind("services/shard", shardRef, 0)

	// And the admission-controller view: limit, inflight, queue depth and
	// shed counters (proxyctl overload). Exported even with -overload off,
	// so the verb reports "disabled" instead of failing to resolve.
	overloadRef, err := rt.Export(overload.NewService(adm), overload.TypeName)
	if err != nil {
		log.Fatalf("export overload status: %v", err)
	}
	dir.Bind("services/overload", overloadRef, 0)

	// And the session-dedup view: live sessions, cached replies, replay
	// and eviction counters (proxyctl sessions). Like overload, exported
	// even with -session-dedup off so the verb reports "disabled".
	sessionRef, err := rt.Export(session.NewService(sessTab), session.TypeName)
	if err != nil {
		log.Fatalf("export session status: %v", err)
	}
	dir.Bind("services/session", sessionRef, 0)
	if sessTab != nil {
		registerSessionMetrics(observer.Registry, sessTab)
	}

	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			observer.Registry.Dump(w)
		})
		mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if id := r.URL.Query().Get("id"); id != "" {
				tid, err := obs.ParseTraceID(id)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				obs.FormatTrace(w, observer.Tracer.Spans(tid))
				return
			}
			for _, ts := range observer.Tracer.Recent(50) {
				fmt.Fprintf(w, "%s %3d spans  %s\n", ts.Trace, ts.Spans, ts.Root)
			}
		})
		go func() {
			log.Printf("observability HTTP on %s (/metrics, /traces, /traces?id=<trace>)", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				log.Printf("http: %v", err)
			}
		}()
	}

	var kv *bench.KV
	if *withKV || *cachedKV || *replicatedKV {
		kv = bench.NewKV()
		var kvRef codec.Ref
		switch {
		case *cachedKV:
			// The service chooses its distribution strategy: reads served
			// from client-side caches kept coherent by callback
			// invalidation. Clients that never register the factory fall
			// back to plain stubs and still interoperate.
			kvRef, err = rt.ExportVia(cache.NewFactory(bench.KVReads()), kv, "CachedKV")
		case *replicatedKV:
			// Or full replication: importers join a totally-ordered group,
			// every acknowledged write is logged before the ack, and the
			// group heals itself around crashes. Plain-stub clients still
			// interoperate (their invokes run on the primary).
			kvRef, err = rt.ExportVia(replica.NewFactory(bench.KVReads(),
				func() replica.StateMachine { return bench.NewKV() },
				replica.WithName("kv"),
				replica.WithWALStore(walStoreFor(*walDir))), kv, "ReplicatedKV")
		default:
			kvRef, err = rt.Export(kv, "KV")
		}
		if err != nil {
			log.Fatalf("export kv: %v", err)
		}
		dir.Bind("services/kv", kvRef, 0)
		log.Printf("demo KV exported as %s, bound at services/kv", kvRef)
	}

	// Or partitioning: the keyspace is consistent-hashed across member
	// shards, each an ordinary export the router hands off key ranges to.
	// The initial members live in this daemon; grow the deployment with
	// `proxyctl shard add kv <member> <ref>` pointing at guards exported
	// on other nodes.
	if *shardedKV {
		spec := bench.KVShardSpec()
		sf := shard.NewFactory(spec, shard.WithName("kv"))
		router := shard.NewRouter(rt, sf)
		ctx := context.Background()
		for i := 0; i < *shardMembers; i++ {
			name := fmt.Sprintf("local%d", i)
			memberRef, err := rt.Export(shard.NewGuard(name, spec, bench.NewKV()), "KVShard")
			if err != nil {
				log.Fatalf("export shard member %s: %v", name, err)
			}
			if err := router.AddMember(ctx, name, memberRef); err != nil {
				log.Fatalf("admit shard member %s: %v", name, err)
			}
		}
		kvRef, err := rt.ExportVia(sf, router, "ShardedKV")
		if err != nil {
			log.Fatalf("export sharded kv: %v", err)
		}
		dir.Bind("services/kv", kvRef, 0)
		log.Printf("sharded KV exported as %s (%d members), bound at services/kv", kvRef, *shardMembers)
	}

	// A replicated KV's durable state is its write-ahead log; only the
	// other flavors ride the checkpoint file.
	ckKV := kv
	if *replicatedKV {
		ckKV = nil
	}
	if *checkpoint != "" {
		if err := loadCheckpoint(*checkpoint, dir, ckKV); err != nil {
			log.Fatalf("load checkpoint: %v", err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	if *checkpoint != "" {
		if err := saveCheckpoint(*checkpoint, dir, ckKV); err != nil {
			log.Printf("save checkpoint: %v", err)
		} else {
			log.Printf("checkpoint saved to %s", *checkpoint)
		}
	}
	log.Printf("shutting down")
}

// loadCheckpoint restores the directory (and KV, when exported) from a
// prior incarnation's state. A missing file is a clean first boot.
func loadCheckpoint(path string, dir *naming.Directory, kv *bench.KV) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	ck, err := persist.ReadCheckpoint(f)
	if err != nil {
		return err
	}
	if err := ck.RestoreInto("directory", dir); err != nil && !errors.Is(err, persist.ErrUnknownEntry) {
		return err
	}
	if kv != nil {
		if err := ck.RestoreInto("services/kv", kv); err != nil && !errors.Is(err, persist.ErrUnknownEntry) {
			return err
		}
	}
	log.Printf("restored checkpoint %s (%v)", path, ck.Names())
	return nil
}

// saveCheckpoint writes the node's durable state atomically (write to a
// temp file, then rename).
func saveCheckpoint(path string, dir *naming.Directory, kv *bench.KV) error {
	ck := persist.NewCheckpoint()
	if err := ck.Add("directory", dir); err != nil {
		return err
	}
	if kv != nil {
		if err := ck.Add("services/kv", kv); err != nil {
			return err
		}
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := ck.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// registerSessionMetrics surfaces the dedup table's occupancy and
// counters as computed gauges: the table already owns the numbers, the
// registry reads them at snapshot time (proxyctl stats, /metrics).
func registerSessionMetrics(r *obs.Registry, tab *session.Table) {
	stat := func(f func(session.Stats) string) obs.GaugeFunc {
		return func() string { return f(tab.Stats()) }
	}
	r.GaugeFunc("session.sessions", stat(func(s session.Stats) string { return strconv.Itoa(s.Sessions) }))
	r.GaugeFunc("session.replies", stat(func(s session.Stats) string { return strconv.Itoa(s.Replies) }))
	r.GaugeFunc("session.tombstones", stat(func(s session.Stats) string { return strconv.Itoa(s.Tombstones) }))
	r.GaugeFunc("session.hits", stat(func(s session.Stats) string { return strconv.FormatUint(s.Hits, 10) }))
	r.GaugeFunc("session.expired", stat(func(s session.Stats) string { return strconv.FormatUint(s.Expired, 10) }))
	r.GaugeFunc("session.evictions", stat(func(s session.Stats) string { return strconv.FormatUint(s.Evictions, 10) }))
}

func parsePeers(s string) (map[wire.NodeID]string, error) {
	peers := make(map[wire.NodeID]string)
	if s == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("entry %q is not id=addr", part)
		}
		n, err := strconv.ParseUint(id, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("entry %q: %w", part, err)
		}
		peers[wire.NodeID(n)] = addr
	}
	return peers, nil
}

// walStoreFor resolves the durability substrate for replica write-ahead
// logs: file-backed under dir when set (a restarted daemon finds its log
// and reassumes the group), in-memory otherwise.
func walStoreFor(dir string) func(wire.Addr) persist.LogStore {
	return func(addr wire.Addr) persist.LogStore {
		if dir == "" {
			return persist.NewMemStore(nil)
		}
		path := filepath.Join(dir, fmt.Sprintf("wal-%d.%d.log", addr.Node, addr.Context))
		s, err := persist.OpenFileStore(path)
		if err != nil {
			// A primary that cannot log durably must not ack writes.
			log.Fatalf("open wal store %s: %v", path, err)
		}
		return s
	}
}
