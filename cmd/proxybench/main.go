// Proxybench runs the reproduction suite E1–E18 (see EXPERIMENTS.md) and
// prints each experiment's table or series.
//
// Usage:
//
//	proxybench [-only E2,E5] [-latency 500us] [-ops 400] [-seed 1] [-json]
//	proxybench -gate [-gate-threshold 0.10]
//
// With -json, instead of the experiment tables it measures the invocation
// fast path (the E1 ladder and E2's cache cells) with latency quantiles
// and allocs/op, and writes BENCH_<date>.json in the current directory —
// the machine-readable before/after record for the fast-path work. The
// console summary compares each row against the embedded pre-optimization
// baseline AND against the newest committed BENCH_*.json, so deltas chain
// report-over-report rather than always measuring from the original
// baseline.
//
// With -gate, it measures the same rows, compares them against the newest
// committed BENCH_*.json only, writes nothing, and exits nonzero if any
// row's ns/op regressed by more than -gate-threshold (default 10%) — the
// CI hook that keeps fast-path budgets from eroding one "small" PR at a
// time.
//
// Absolute numbers depend on the host; the *shapes* (who wins, where
// crossovers fall) are what the suite reproduces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	latency := flag.Duration("latency", 500*time.Microsecond, "one-way simulated link latency")
	ops := flag.Int("ops", 400, "operations per measurement")
	seed := flag.Int64("seed", 1, "workload and network seed")
	jsonOut := flag.Bool("json", false, "measure the fast path and write BENCH_<date>.json instead of running the experiment tables")
	gate := flag.Bool("gate", false, "measure the fast path and fail (exit 1) on regression against the newest committed BENCH_*.json; writes nothing")
	gateThreshold := flag.Float64("gate-threshold", 0.10, "fractional ns/op regression tolerated per row before -gate fails")
	flag.Parse()

	if *gate {
		if err := runGate(*ops, *seed, *gateThreshold); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *jsonOut {
		// The embedded baseline was recorded at zero link latency (the
		// root benchmarks' configuration); measure the same way unless
		// the user explicitly asks for a latency.
		reportLatency := time.Duration(0)
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "latency" {
				reportLatency = *latency
			}
		})
		if err := writeJSONReport(reportLatency, *ops, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Config{Latency: *latency, Ops: *ops, Seed: *seed}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	fmt.Printf("proxybench: link latency %v, %d ops, seed %d\n", cfg.Latency, cfg.Ops, cfg.Seed)
	start := time.Now()
	ran := 0
	for _, e := range experiments.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		if err := e.Run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched -only=%s\n", *only)
		os.Exit(2)
	}
	fmt.Printf("\n%d experiments in %v\n", ran, time.Since(start).Round(time.Millisecond))
}

// runGate measures the fast path rows and fails if any regressed past the
// threshold against the newest committed report. It writes no file: the
// gate is a check, not a record, so a red run leaves nothing behind that a
// later -json run would chain against.
func runGate(ops int, seed int64, threshold float64) error {
	prev, prevName, err := newestPriorReport("")
	if err != nil {
		return err
	}
	if prev == nil {
		// Nothing committed yet: the gate passes vacuously but says so,
		// because a silently green gate with no reference would hide the
		// misconfiguration.
		fmt.Println("proxybench -gate: no committed BENCH_*.json to gate against; passing")
		return nil
	}
	rep, err := bench.BuildReport("gate", 0, ops, seed)
	if err != nil {
		return fmt.Errorf("proxybench -gate: %w", err)
	}
	ref := map[string]bench.ReportRow{}
	for _, b := range prev.Rows {
		ref[b.Experiment+"/"+b.Case] = b
	}
	fmt.Printf("proxybench -gate: vs %s, threshold %.0f%%\n", prevName, threshold*100)
	failed := 0
	for _, r := range rep.Rows {
		b, ok := ref[r.Experiment+"/"+r.Case]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		delta := (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		verdict := "ok"
		if delta > threshold {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("  %-18s %8.1f ns/op (was %8.1f, %+6.1f%%)  %s\n",
			r.Experiment+"/"+r.Case, r.NsPerOp, b.NsPerOp, delta*100, verdict)
	}
	if failed > 0 {
		return fmt.Errorf("proxybench -gate: %d row(s) regressed more than %.0f%% vs %s",
			failed, threshold*100, prevName)
	}
	fmt.Println("proxybench -gate: pass")
	return nil
}

// writeJSONReport measures the fast path and writes the dated report.
func writeJSONReport(latency time.Duration, ops int, seed int64) error {
	date := time.Now().Format("2006-01-02")
	rep, err := bench.BuildReport(date, latency, ops, seed)
	if err != nil {
		return fmt.Errorf("proxybench -json: %w", err)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	name := "BENCH_" + date + ".json"
	if err := os.WriteFile(name, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("proxybench: wrote %s\n", name)
	// A console summary of the headline comparison: each measured row
	// against its embedded pre-optimization baseline.
	fmt.Println("vs pre-optimization baseline:")
	printComparison(rep.Rows, rep.Baseline)
	// And against the newest previously committed report, so deltas
	// chain report-over-report instead of always measuring from the
	// original baseline.
	prev, prevName, err := newestPriorReport(name)
	if err != nil {
		return err
	}
	if prev == nil {
		fmt.Println("no prior BENCH_*.json to chain against")
		return nil
	}
	fmt.Printf("vs %s (previous report):\n", prevName)
	printComparison(rep.Rows, prev.Rows)
	return nil
}

// printComparison lines each measured row up against the matching row of
// a reference report.
func printComparison(rows, against []bench.ReportRow) {
	ref := map[string]bench.ReportRow{}
	for _, b := range against {
		ref[b.Experiment+"/"+b.Case] = b
	}
	for _, r := range rows {
		b, ok := ref[r.Experiment+"/"+r.Case]
		if !ok {
			continue
		}
		fmt.Printf("  %-18s %8.1f ns/op (was %8.1f)  %5.1f allocs/op (was %4.1f)\n",
			r.Experiment+"/"+r.Case, r.NsPerOp, b.NsPerOp, r.AllocsPerOp, b.AllocsPerOp)
	}
}

// newestPriorReport loads the lexically newest BENCH_*.json in the
// current directory other than the one just written (the date-stamped
// names sort chronologically). Returns nil when this is the first.
func newestPriorReport(exclude string) (*bench.Report, string, error) {
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return nil, "", err
	}
	sort.Strings(matches)
	for i := len(matches) - 1; i >= 0; i-- {
		if matches[i] == exclude {
			continue
		}
		data, err := os.ReadFile(matches[i])
		if err != nil {
			return nil, "", err
		}
		var rep bench.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, "", fmt.Errorf("parse %s: %w", matches[i], err)
		}
		return &rep, matches[i], nil
	}
	return nil, "", nil
}
