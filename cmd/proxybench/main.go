// Proxybench runs the reproduction suite E1–E13 (see EXPERIMENTS.md) and
// prints each experiment's table or series.
//
// Usage:
//
//	proxybench [-only E2,E5] [-latency 500us] [-ops 400] [-seed 1]
//
// Absolute numbers depend on the host; the *shapes* (who wins, where
// crossovers fall) are what the suite reproduces.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	latency := flag.Duration("latency", 500*time.Microsecond, "one-way simulated link latency")
	ops := flag.Int("ops", 400, "operations per measurement")
	seed := flag.Int64("seed", 1, "workload and network seed")
	flag.Parse()

	cfg := experiments.Config{Latency: *latency, Ops: *ops, Seed: *seed}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	fmt.Printf("proxybench: link latency %v, %d ops, seed %d\n", cfg.Latency, cfg.Ops, cfg.Seed)
	start := time.Now()
	ran := 0
	for _, e := range experiments.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		if err := e.Run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched -only=%s\n", *only)
		os.Exit(2)
	}
	fmt.Printf("\n%d experiments in %v\n", ran, time.Since(start).Round(time.Millisecond))
}
