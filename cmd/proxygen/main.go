// Proxygen is the stub compiler: it reads a Go source file containing
// interfaces annotated with //proxygen:service and writes a companion
// file with a typed client wrapper and a core.Service dispatcher for each
// — the 1986 lineage's stub generator, driven by Go interfaces instead of
// an IDL.
//
// Usage:
//
//	proxygen -in service.go [-out service_gen.go] [-static]
//
// It is also suitable as a go:generate directive:
//
//	//go:generate go run repro/cmd/proxygen -in calc.go
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/gen"
)

func main() {
	log.SetFlags(0)
	in := flag.String("in", "", "input Go file with annotated interfaces")
	out := flag.String("out", "", "output file (default <in>_gen.go)")
	static := flag.Bool("static", false, "emit static marshalers: native wire types (bool, string, []byte, int64, uint64, float64, time.Time, codec.Ref) bypass reflection on both sides")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	target := *out
	if target == "" {
		target = strings.TrimSuffix(*in, ".go") + "_gen.go"
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	generate := gen.Generate
	if *static {
		generate = gen.GenerateStatic
	}
	code, err := generate(*in, src)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(target, code, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proxygen: wrote %s (%d bytes)\n", target, len(code))
}
