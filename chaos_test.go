package repro

// Chaos tests: seeded fault schedules run against live deployments while a
// workload drives them, asserting end-to-end fault-tolerance invariants —
// idempotent invocations survive crashes via stub failover, acknowledged
// writes are never lost, circuit breakers close again after the fault
// heals, and traces show the failover hop. The schedule for a given seed
// is byte-reproducible, so a failing run can be replayed exactly with
// CHAOS_SEED=<n> go test -run TestChaos .
//
// `make chaos` runs this suite under -race for several seeds.

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// chaosSeed returns the schedule seed: CHAOS_SEED from the environment, or
// 1. Every randomized choice in these tests flows from this one value.
func chaosSeed() int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 1
}

// chaosCluster is n runtimes (nodes 1..n) on one simulated network,
// sharing a single observer so metrics and traces from every node land in
// one place — the same shape proxyd deployments have.
type chaosCluster struct {
	net *netsim.Network
	obs *obs.Observer
	rts []*core.Runtime
}

func newChaosCluster(t *testing.T, n int, cliOpts []rpc.ClientOption, rtOpts ...core.RuntimeOption) *chaosCluster {
	t.Helper()
	c := &chaosCluster{
		net: netsim.New(netsim.WithSeed(chaosSeed())),
		obs: obs.NewObserver(),
	}
	t.Cleanup(c.net.Close)
	for i := 1; i <= n; i++ {
		ep, err := c.net.Attach(wire.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		node := kernelNodeForTest(t, ep)
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		opts := append([]core.RuntimeOption{
			core.WithObserver(c.obs),
			core.WithClient(rpc.NewClient(ktx, append(cliOpts, rpc.WithObserver(c.obs))...)),
		}, rtOpts...)
		c.rts = append(c.rts, core.NewRuntime(ktx, opts...))
	}
	// Shut proxies down before their nodes close (cleanups run LIFO):
	// replica repair loops and other proxy background work stop on Close
	// instead of outliving the test — leakCheck holds the suite to it.
	t.Cleanup(func() {
		for _, rt := range c.rts {
			rt.CloseProxies()
		}
	})
	return c
}

// TestChaosFailoverUnderCrash crashes and restarts the serving node on a
// seeded schedule while a client hammers an idempotent workload through a
// failover-aware stub. The invariant: at least 99% of invocations complete
// with no client-visible error (in practice 100% — the alternate node
// never fails).
func TestChaosFailoverUnderCrash(t *testing.T) {
	leakCheck(t)
	c := newChaosCluster(t, 3,
		[]rpc.ClientOption{rpc.WithRetryInterval(2 * time.Millisecond), rpc.WithMaxAttempts(3)},
		core.WithBreakerConfig(health.BreakerConfig{Threshold: 1, Cooldown: 25 * time.Millisecond}))
	primary, backup, client := c.rts[0], c.rts[1], c.rts[2]

	ref1, err := primary.Export(bench.NewKV(), "KV")
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := backup.Export(bench.NewKV(), "KV")
	if err != nil {
		t.Fatal(err)
	}
	client.RegisterIdempotent("KV", "put", "get", "sum")

	p, err := client.Import(ref1)
	if err != nil {
		t.Fatal(err)
	}
	stub := p.(*core.Stub)
	stub.SetAlternates([]codec.Ref{ref1, ref2})

	const runFor = 400 * time.Millisecond
	sched := netsim.GenSchedule(chaosSeed(), netsim.ChaosConfig{
		Nodes:    []wire.NodeID{1}, // only the primary crashes; the backup stays up
		Duration: runFor,
		Crashes:  3,
		MinDown:  30 * time.Millisecond,
		MaxDown:  80 * time.Millisecond,
	})
	t.Logf("schedule (seed %d):\n%s", chaosSeed(), sched)
	run := sched.Run(c.net)

	var total, failed int
	deadline := time.Now().Add(runFor)
	for time.Now().Before(deadline) {
		key := fmt.Sprintf("k%d", total%8)
		if _, err := stub.Invoke(context.Background(), "put", key, int64(total)); err != nil {
			failed++
			t.Logf("invocation %d failed: %v", total, err)
		}
		total++
	}
	run.Wait()

	if total < 50 {
		t.Fatalf("workload only issued %d invocations — too few to judge", total)
	}
	if ratio := float64(total-failed) / float64(total); ratio < 0.99 {
		t.Errorf("success ratio %.4f (%d/%d), want >= 0.99", ratio, total-failed, total)
	}
	if stub.Failovers() == 0 {
		t.Error("workload rode out crashes without a single failover — schedule never bit")
	}
	t.Logf("%d invocations, %d failed, %d failovers", total, failed, stub.Failovers())
}

// TestChaosTracedFailover pins the deterministic half of the invariant: a
// traced invocation that fails over records a "failover:" span naming the
// binding it redirected to.
func TestChaosTracedFailover(t *testing.T) {
	leakCheck(t)
	c := newChaosCluster(t, 3,
		[]rpc.ClientOption{rpc.WithRetryInterval(2 * time.Millisecond), rpc.WithMaxAttempts(2)},
		core.WithBreakerConfig(health.BreakerConfig{Threshold: 1, Cooldown: time.Minute}))
	primary, backup, client := c.rts[0], c.rts[1], c.rts[2]

	ref1, err := primary.Export(bench.NewKV(), "KV")
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := backup.Export(bench.NewKV(), "KV")
	if err != nil {
		t.Fatal(err)
	}
	client.RegisterIdempotent("KV", "get")
	p, err := client.Import(ref1)
	if err != nil {
		t.Fatal(err)
	}
	stub := p.(*core.Stub)
	stub.SetAlternates([]codec.Ref{ref1, ref2})

	c.net.Crash(1)

	ctx, finish := client.Tracer().StartSpan(context.Background(), "chaos:get", client.Where())
	sc, _ := obs.SpanFromContext(ctx)
	_, err = stub.Invoke(ctx, "get", "k")
	finish(err)
	if err != nil {
		t.Fatalf("failover invoke: %v", err)
	}

	var sawFailover bool
	for _, sp := range client.Tracer().Spans(sc.Trace) {
		if strings.HasPrefix(sp.Name, "failover:") {
			sawFailover = true
			if !strings.Contains(sp.Name, ref2.Target.String()) {
				t.Errorf("failover span %q does not name the alternate %s", sp.Name, ref2.Target)
			}
		}
	}
	if !sawFailover {
		t.Errorf("trace %s has no failover: span", sc.Trace)
	}
}

// TestChaosNoLostAcknowledgedWrites crashes the only serving node on a
// seeded schedule while a client writes through with a deep retransmit
// budget (no failover target — the call must ride out the downtime). The
// invariant: every acknowledged write is visible afterwards.
func TestChaosNoLostAcknowledgedWrites(t *testing.T) {
	leakCheck(t)
	// A huge breaker threshold keeps the circuit closed so calls ride
	// retransmits through the crash windows instead of fast-failing.
	c := newChaosCluster(t, 2,
		[]rpc.ClientOption{rpc.WithRetryInterval(3 * time.Millisecond), rpc.WithMaxAttempts(600)},
		core.WithBreakerConfig(health.BreakerConfig{Threshold: 1 << 30, Cooldown: time.Second}))
	server, client := c.rts[0], c.rts[1]

	ref, err := server.Export(bench.NewKV(), "KV")
	if err != nil {
		t.Fatal(err)
	}
	p, err := client.Import(ref)
	if err != nil {
		t.Fatal(err)
	}

	const runFor = 300 * time.Millisecond
	sched := netsim.GenSchedule(chaosSeed(), netsim.ChaosConfig{
		Nodes:    []wire.NodeID{1},
		Duration: runFor,
		Crashes:  3,
		MinDown:  20 * time.Millisecond,
		MaxDown:  50 * time.Millisecond,
	})
	t.Logf("schedule (seed %d):\n%s", chaosSeed(), sched)
	run := sched.Run(c.net)

	acked := make(map[string]int64)
	var seq int64
	deadline := time.Now().Add(runFor)
	for time.Now().Before(deadline) {
		key := fmt.Sprintf("w%d", seq%5)
		if _, err := p.Invoke(context.Background(), "put", key, seq); err != nil {
			t.Fatalf("write %d failed despite deep retry budget: %v", seq, err)
		}
		acked[key] = seq // the server acknowledged this value
		seq++
	}
	run.Wait()

	// Heal is complete (schedule pairs every crash with a restart): every
	// acknowledged write must read back exactly.
	for key, want := range acked {
		res, err := p.Invoke(context.Background(), "get", key)
		if err != nil {
			t.Fatalf("read-back of %q: %v", key, err)
		}
		if got := res[0].(int64); got != want {
			t.Errorf("key %q = %d, want last acknowledged value %d", key, got, want)
		}
	}
	t.Logf("%d writes acknowledged across %d keys, all read back", seq, len(acked))
}

// TestChaosBreakerRecovery runs a crash/restart schedule against a node
// with no failover target and asserts the client-side breaker opens while
// the node is down, fast-fails callers, and closes again after the heal.
func TestChaosBreakerRecovery(t *testing.T) {
	leakCheck(t)
	c := newChaosCluster(t, 2,
		[]rpc.ClientOption{rpc.WithRetryInterval(2 * time.Millisecond), rpc.WithMaxAttempts(3)},
		core.WithBreakerConfig(health.BreakerConfig{Threshold: 1, Cooldown: 20 * time.Millisecond}))
	server, client := c.rts[0], c.rts[1]

	ref, err := server.Export(bench.NewKV(), "KV")
	if err != nil {
		t.Fatal(err)
	}
	p, err := client.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(context.Background(), "get", "k"); err != nil {
		t.Fatal(err)
	}

	sched := &netsim.FaultSchedule{Events: []netsim.FaultEvent{
		{At: 0, Kind: netsim.FaultCrash, A: 1},
		{At: 60 * time.Millisecond, Kind: netsim.FaultRestart, A: 1},
	}}
	run := sched.Run(c.net)
	for end := time.Now().Add(time.Second); !c.net.Crashed(1); {
		if time.Now().After(end) {
			t.Fatal("schedule never crashed node 1")
		}
		time.Sleep(time.Millisecond)
	}

	// While down: the first call burns its retry budget, trips the
	// breaker; the next is rejected locally before any retransmit.
	if _, err := p.Invoke(context.Background(), "get", "k"); err == nil {
		t.Fatal("call to crashed node succeeded")
	}
	br := client.Breakers().For(ref.Target.Addr.Node)
	if br.State() != health.BreakerOpen {
		t.Fatalf("breaker after failed call = %v, want open", br.State())
	}
	start := time.Now()
	_, err = p.Invoke(context.Background(), "get", "k")
	if err == nil || !strings.Contains(err.Error(), "circuit open") {
		t.Fatalf("open breaker: err = %v, want circuit open", err)
	}
	if d := time.Since(start); d > 15*time.Millisecond {
		t.Errorf("open-breaker rejection took %v, want local fast-fail", d)
	}

	run.Wait() // node is restarted now

	recovered := false
	for end := time.Now().Add(2 * time.Second); time.Now().Before(end); {
		if _, err := p.Invoke(context.Background(), "get", "k"); err == nil {
			recovered = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("breaker never let traffic through after the heal")
	}
	if br.State() != health.BreakerClosed {
		t.Errorf("breaker after heal = %v, want closed", br.State())
	}
}

// TestChaosScheduleReproducible asserts the property that makes every test
// above replayable: a schedule is a pure function of (seed, config), byte
// for byte.
func TestChaosScheduleReproducible(t *testing.T) {
	leakCheck(t)
	cfg := netsim.ChaosConfig{
		Nodes:      []wire.NodeID{1, 2, 3, 4},
		Duration:   2 * time.Second,
		Crashes:    5,
		MinDown:    10 * time.Millisecond,
		MaxDown:    200 * time.Millisecond,
		Partitions: 3,
		MinCut:     20 * time.Millisecond,
		MaxCut:     100 * time.Millisecond,
		Flaps:      2,
		FlapLink:   netsim.LinkConfig{Latency: 10 * time.Millisecond, LossRate: 0.3},
		MinFlap:    10 * time.Millisecond,
		MaxFlap:    50 * time.Millisecond,
	}
	seed := chaosSeed()
	a := netsim.GenSchedule(seed, cfg).String()
	if a == "" {
		t.Fatal("empty schedule")
	}
	for i := 0; i < 3; i++ {
		if b := netsim.GenSchedule(seed, cfg).String(); b != a {
			t.Fatalf("run %d: same seed produced a different schedule:\n%s\nvs\n%s", i, a, b)
		}
	}
	if b := netsim.GenSchedule(seed+1, cfg).String(); b == a {
		t.Error("adjacent seeds produced identical schedules")
	}
}
