package repro

// Overload chaos tests: a seeded deployment is driven past its capacity
// (or through a partition) while the overload machinery — adaptive
// admission control, pushback, retry budgets, hedged reads — keeps the
// node doing useful work. Invariants are asserted from registry metrics,
// not sleeps: goodput stays ≥ 70% of measured capacity at 2× offered
// load, shed requests fail fast with CodeOverload instead of piling into
// deadline timeouts, the retransmit ratio stays inside the retry budget
// through a 3s partition, and hedged reads cut tail latency against a
// sporadically-slow primary.
//
// Named TestStress* (not TestChaos*) so `make chaos` and `make stress`
// select disjoint suites; both run under -race.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// stressWorld is a deployment whose node 1 runs behind an adaptive
// admission controller; all runtimes share one observer so every metric
// lands in one registry.
type stressWorld struct {
	net *netsim.Network
	obs *obs.Observer
	adm *overload.Controller
	rts []*core.Runtime // rts[0] serves behind admission
}

func newStressWorld(t *testing.T, n int, admCfg *overload.Config, cliOpts []rpc.ClientOption, rtOpts ...core.RuntimeOption) *stressWorld {
	t.Helper()
	w := &stressWorld{
		net: netsim.New(netsim.WithSeed(chaosSeed())),
		obs: obs.NewObserver(),
	}
	t.Cleanup(w.net.Close)
	for i := 1; i <= n; i++ {
		ep, err := w.net.Attach(wire.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		var nodeOpts []kernel.NodeOption
		if i == 1 && admCfg != nil {
			w.adm = overload.NewController(*admCfg, w.obs.Registry, "server.")
			nodeOpts = append(nodeOpts, kernel.WithAdmission(w.adm))
		}
		node := kernel.NewNode(ep, nodeOpts...)
		t.Cleanup(func() { node.Close() })
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		opts := append([]core.RuntimeOption{
			core.WithObserver(w.obs),
			core.WithClient(rpc.NewClient(ktx, append(cliOpts, rpc.WithObserver(w.obs))...)),
		}, rtOpts...)
		w.rts = append(w.rts, core.NewRuntime(ktx, opts...))
	}
	return w
}

// busySvc burns a fixed service time per call — the capacity anchor.
type busySvc struct{ d time.Duration }

func (s *busySvc) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	select {
	case <-time.After(s.d):
		return []any{true}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func TestStressOverloadShedsAtTwiceOfferedLoad(t *testing.T) {
	leakCheck(t)
	const limit = 4
	const serviceTime = 5 * time.Millisecond
	w := newStressWorld(t, 2, &overload.Config{
		MinLimit: limit, MaxLimit: limit, InitialLimit: limit,
		QueueLimit: 2 * limit, QueueDeadline: 10 * time.Millisecond,
	}, []rpc.ClientOption{rpc.WithRetryInterval(100 * time.Millisecond)})
	ref, err := w.rts[0].Export(&busySvc{d: serviceTime}, "Busy")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.rts[1].Import(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Closed loop at ~4× the slot count: with limit slots of serviceTime
	// each, this offers at least 2× the node's capacity.
	const workers = 4 * limit
	var successes, overloads, timeouts, others atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				_, err := p.Invoke(ctx, "work")
				cancel()
				switch {
				case err == nil:
					successes.Add(1)
				case core.IsOverload(err):
					overloads.Add(1)
					time.Sleep(time.Millisecond) // token nod to the hint
				case errors.Is(err, context.DeadlineExceeded):
					timeouts.Add(1)
				default:
					others.Add(1)
				}
			}
		}()
	}
	start := time.Now()
	time.Sleep(1500 * time.Millisecond)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	// The node shed rather than queueing everyone into timeouts.
	if overloads.Load() == 0 || w.adm.Shed() == 0 {
		t.Fatalf("no sheds at 2x load: client saw %d, controller counted %d", overloads.Load(), w.adm.Shed())
	}
	if timeouts.Load() > 0 {
		t.Errorf("deadline-timeout pileup: %d calls timed out (want 0; sheds must fail fast)", timeouts.Load())
	}
	if n := others.Load(); n > 0 {
		t.Errorf("%d calls failed with non-overload errors", n)
	}

	// Goodput ≥ 70% of capacity, both sides measured from the registry:
	// capacity = limit / mean handler latency (the controller's own
	// latency histogram, so sleep overshoot cancels out).
	mean := w.obs.Registry.Histogram("server.overload.latency").Snapshot().Mean
	if mean <= 0 {
		t.Fatal("no handler latency recorded")
	}
	capacity := float64(limit) / mean.Seconds()              // calls/sec the slots can do
	goodput := float64(successes.Load()) / elapsed.Seconds() // calls/sec that succeeded
	t.Logf("goodput %.0f/s vs capacity %.0f/s (%.0f%%), %d ok / %d shed / mean %s",
		goodput, capacity, 100*goodput/capacity, successes.Load(), overloads.Load(), mean)
	if goodput < 0.7*capacity {
		t.Errorf("goodput %.0f/s is below 70%% of capacity %.0f/s: shedding is eating useful work", goodput, capacity)
	}
}

func TestStressRetryRatioBoundedUnderPartition(t *testing.T) {
	leakCheck(t)
	const ratio, burst = 0.1, 10
	w := newStressWorld(t, 2, nil, []rpc.ClientOption{
		rpc.WithRetryInterval(5 * time.Millisecond), rpc.WithMaxAttempts(10),
		rpc.WithRetryBudget(ratio, burst),
	}, core.WithBreakerConfig(health.BreakerConfig{Threshold: 3, Cooldown: 100 * time.Millisecond}))
	ref, err := w.rts[0].Export(&busySvc{d: 0}, "Busy")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.rts[1].Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	client := w.rts[1].Client()

	var healthyOK, healedOK atomic.Uint64
	phase := make(chan int, 1) // 0 healthy, 1 partitioned, 2 healed
	phase <- 0
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
				_, err := p.Invoke(ctx, "work")
				cancel()
				if err == nil {
					select {
					case ph := <-phase:
						if ph == 0 {
							healthyOK.Add(1)
						} else if ph == 2 {
							healedOK.Add(1)
						}
						phase <- ph
					default:
					}
				}
			}
		}()
	}

	time.Sleep(500 * time.Millisecond) // healthy warm-up earns budget
	<-phase
	phase <- 1
	w.net.Partition(1, 2)
	time.Sleep(3 * time.Second) // the 3s partition the budget must ride out
	w.net.Heal(1, 2)
	<-phase
	phase <- 2
	time.Sleep(time.Second) // breaker cooldown + probe + steady traffic
	close(stop)
	wg.Wait()

	st := client.Stats()
	if healthyOK.Load() == 0 || healedOK.Load() == 0 {
		t.Fatalf("workload did not run on both sides of the partition (%d before, %d after)",
			healthyOK.Load(), healedOK.Load())
	}
	// The contract: retransmissions stay within 1.1× of what the budget
	// ratio licenses (plus the burst the bucket started with).
	allowed := 1.1 * (ratio*float64(st.Calls) + burst)
	t.Logf("calls %d, retransmits %d (allowed %.0f)", st.Calls, st.Retransmits, allowed)
	if float64(st.Retransmits) > allowed {
		t.Errorf("retry storm: %d retransmits on %d calls exceeds budget allowance %.0f",
			st.Retransmits, st.Calls, allowed)
	}
}

// tailSvc answers instantly except every slowEvery-th call, which takes
// slowFor — the classic sporadic-tail server hedging exists for.
type tailSvc struct {
	n         atomic.Uint64
	slowEvery uint64
	slowFor   time.Duration
}

func (s *tailSvc) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	if s.n.Add(1)%s.slowEvery == 0 {
		select {
		case <-time.After(s.slowFor):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return []any{int64(1)}, nil
}

func TestStressHedgedReadsCutTailLatency(t *testing.T) {
	leakCheck(t)
	const calls = 150
	const slowFor = 80 * time.Millisecond
	w := newStressWorld(t, 4, nil,
		[]rpc.ClientOption{rpc.WithRetryInterval(200 * time.Millisecond), rpc.WithMaxAttempts(5)},
		core.WithHedging(core.HedgeConfig{MinDelay: 5 * time.Millisecond, MaxDelay: 10 * time.Millisecond}))
	primary, alternate := w.rts[0], w.rts[1]
	plainClient, hedgedClient := w.rts[2], w.rts[3]

	ref1, err := primary.Export(&tailSvc{slowEvery: 10, slowFor: slowFor}, "Tail")
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := alternate.Export(&tailSvc{slowEvery: 1 << 62}, "Tail")
	if err != nil {
		t.Fatal(err)
	}

	run := func(rt *core.Runtime, hedged bool, hist *obs.Histogram) {
		t.Helper()
		p, err := rt.Import(ref1)
		if err != nil {
			t.Fatal(err)
		}
		if hedged {
			rt.RegisterIdempotent("Tail", "get")
			p.(*core.Stub).SetAlternates([]codec.Ref{ref1, ref2})
		}
		for i := 0; i < calls; i++ {
			start := time.Now()
			if _, err := p.Invoke(context.Background(), "get"); err != nil {
				t.Fatalf("call %d (hedged=%v): %v", i, hedged, err)
			}
			hist.Observe(time.Since(start))
		}
	}
	reg := w.obs.Registry
	run(plainClient, false, reg.Histogram("e15.plain.latency"))
	run(hedgedClient, true, reg.Histogram("e15.hedged.latency"))

	plain := reg.Histogram("e15.plain.latency").Snapshot()
	hedged := reg.Histogram("e15.hedged.latency").Snapshot()
	scope := "core[" + hedgedClient.Addr().String() + "]."
	launches := reg.Counter(scope + "hedge.launches").Load()
	wins := reg.Counter(scope + "hedge.wins").Load()
	t.Logf("p99 plain %s vs hedged %s; %d hedges launched, %d won", plain.P99, hedged.P99, launches, wins)

	if launches == 0 || wins == 0 {
		t.Fatalf("hedging never engaged: %d launches, %d wins", launches, wins)
	}
	// Every 10th call stalls 80ms: the plain client's p99 must sit at the
	// stall, the hedged client's well under half of it.
	if plain.P99 < slowFor/2 {
		t.Fatalf("plain p99 %s does not show the tail; fixture broken", plain.P99)
	}
	if hedged.P99 >= plain.P99/2 {
		t.Errorf("hedged p99 %s is not under half the plain p99 %s", hedged.P99, plain.P99)
	}
}

// TestStressPriorityTrafficSurvivesOverload drives the server past
// capacity with normal traffic while a trickle of high-priority calls —
// the class replica sync and rebalance traffic ride — must never be
// shed.
func TestStressPriorityTrafficSurvivesOverload(t *testing.T) {
	leakCheck(t)
	const limit = 2
	w := newStressWorld(t, 2, &overload.Config{
		MinLimit: limit, MaxLimit: limit, InitialLimit: limit,
		QueueLimit: 4, QueueDeadline: 5 * time.Millisecond,
	}, []rpc.ClientOption{rpc.WithRetryInterval(100 * time.Millisecond)})
	srvKtx := w.rts[0].Kernel()
	obj := srvKtx.Register(kernel.HandlerFunc(func(ktx *kernel.Context, f *wire.Frame) {
		time.Sleep(2 * time.Millisecond)
		_ = ktx.Respond(f, wire.KindReply, f.Payload)
	}))
	dst := wire.ObjAddr{Addr: srvKtx.Addr(), Object: obj}
	cliKtx := w.rts[1].Kernel()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4*limit; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
				_, _ = cliKtx.Call(ctx, dst.Addr, dst.Object, wire.KindRequest, 0, []byte("n"))
				cancel()
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()

	time.Sleep(100 * time.Millisecond) // saturate first
	payload := append(wire.AppendPriorityHeader(nil, wire.PriorityHigh), []byte("sync")...)
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		resp, err := cliKtx.Call(ctx, dst.Addr, dst.Object, wire.KindRequest, 0, payload)
		cancel()
		if err != nil {
			t.Fatalf("high-priority call %d failed under overload: %v", i, err)
		}
		if resp.Flags&wire.FlagPushback != 0 {
			t.Fatalf("high-priority call %d was shed", i)
		}
	}
	if w.adm.Shed() == 0 {
		t.Error("fixture never overloaded: no normal-priority sheds recorded")
	}
	if fmt.Sprint(w.adm.Status().Bypass) == "0" {
		t.Error("no high-priority bypass recorded")
	}
}
