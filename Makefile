# Standard developer entry points. Everything is stdlib-only Go.

GO ?= go

# make cover fails if internal/obs coverage drops below this (percent).
OBS_COVER_MIN ?= 80

.PHONY: all build test race vet bench cover experiments examples clean

all: vet test race build

cover:
	$(GO) test -coverprofile=cover.profile ./internal/obs
	@total=$$($(GO) tool cover -func=cover.profile | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/obs coverage: $$total% (minimum $(OBS_COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(OBS_COVER_MIN)" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' || \
		{ echo "FAIL: internal/obs coverage $$total% is below $(OBS_COVER_MIN)%"; exit 1; }

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem .

experiments:
	$(GO) run ./cmd/proxybench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/filecache
	$(GO) run ./examples/directory
	$(GO) run ./examples/migration
	$(GO) run ./examples/bank
	$(GO) run ./examples/typedcalc
	$(GO) run ./examples/newsfeed

clean:
	$(GO) clean ./...
