# Standard developer entry points. Everything is stdlib-only Go.

GO ?= go

.PHONY: all build test race vet bench experiments examples clean

all: vet test build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem .

experiments:
	$(GO) run ./cmd/proxybench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/filecache
	$(GO) run ./examples/directory
	$(GO) run ./examples/migration
	$(GO) run ./examples/bank
	$(GO) run ./examples/typedcalc
	$(GO) run ./examples/newsfeed

clean:
	$(GO) clean ./...
