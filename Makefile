# Standard developer entry points. Everything is stdlib-only Go.

GO ?= go

# make cover fails if any of these packages drop below this (percent).
COVER_MIN ?= 80
COVER_PKGS ?= ./internal/obs ./internal/health ./internal/replica ./internal/group ./internal/codec ./internal/shard ./internal/overload ./internal/netsim ./internal/session

# Seeds make chaos replays; override to explore: make chaos CHAOS_SEEDS="7 8 9"
CHAOS_SEEDS ?= 1 2 3

# Seeds make stress replays; the overload suite is cheaper than chaos so it
# runs more seeds by default.
STRESS_SEEDS ?= 1 2

.PHONY: all build test race vet lint bench bench-short bench-gate chaos stress cover fuzz-short experiments examples clean

all: vet lint test race chaos stress bench-short fuzz-short build

# Fuzz regression gate: replays every committed corpus entry (and the
# in-test seeds) through the fuzz targets without generating new inputs —
# `-run '^Fuzz'` without `-fuzz` is Go's corpus-regression mode. Cheap
# enough to ride in `make all`; grow the corpora with e.g.
# go test -fuzz=FuzzPayloadHeaders -fuzztime=30s ./internal/wire
FUZZ_PKGS ?= ./internal/wire ./internal/obs
fuzz-short:
	$(GO) test -count=1 -run '^Fuzz' $(FUZZ_PKGS)

# Fast-path gate: the allocation-budget tests (bypass must be 0 allocs/op,
# stub and cache at or under their enforced ceilings) plus a one-iteration
# proxybench smoke run. Cheap enough to ride in `make all`.
bench-short:
	$(GO) test -count=1 -run 'TestAllocBudget' .
	$(GO) run ./cmd/proxybench -only E1 -ops 25

# Regression gate: measures the fast-path rows and fails if any ns/op
# regressed >10% against the newest committed BENCH_*.json. Deliberately
# not part of `make all` — wall-clock noise on shared machines makes it
# advisory locally; run it (or CI runs it) before cutting a perf-sensitive
# change. Tune with: make bench-gate GATE_THRESHOLD=0.15
GATE_THRESHOLD ?= 0.10
bench-gate:
	$(GO) run ./cmd/proxybench -gate -gate-threshold $(GATE_THRESHOLD)

cover:
	@for pkg in $(COVER_PKGS); do \
		$(GO) test -coverprofile=cover.profile $$pkg || exit 1; \
		total=$$($(GO) tool cover -func=cover.profile | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		echo "$$pkg coverage: $$total% (minimum $(COVER_MIN)%)"; \
		awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' || \
			{ echo "FAIL: $$pkg coverage $$total% is below $(COVER_MIN)%"; exit 1; }; \
	done

# Seeded fault-injection suite: crash/restart/partition schedules against
# live deployments, under the race detector. A failing seed replays
# exactly: CHAOS_SEED=<n> go test -race -run TestChaos .
chaos:
	@for seed in $(CHAOS_SEEDS); do \
		echo "chaos seed $$seed"; \
		CHAOS_SEED=$$seed $(GO) test -race -count=1 -run 'TestChaos' . || exit 1; \
	done

# Seeded overload suite: drives deployments past capacity and through
# partitions, asserting shedding, retry-budget, and hedging invariants from
# registry metrics. Replay a failing seed: CHAOS_SEED=<n> go test -race -run TestStress .
stress:
	@for seed in $(STRESS_SEEDS); do \
		echo "stress seed $$seed"; \
		CHAOS_SEED=$$seed $(GO) test -race -count=1 -run 'TestStress' . || exit 1; \
	done

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis. The gate runs a PINNED staticcheck via `go run`, so CI
# and every dev machine apply the exact same check set instead of whatever
# version happens to be on PATH. The -version probe distinguishes "cannot
# fetch the tool" (offline checkout: fall back, loudly) from "the tool ran
# and found problems" (fail the build — never swallowed by a fallback).
STATICCHECK_VERSION ?= 2025.1.1
STATICCHECK_PKG = honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
lint:
	@if $(GO) run $(STATICCHECK_PKG) -version >/dev/null 2>&1; then \
		$(GO) run $(STATICCHECK_PKG) ./...; \
	elif command -v staticcheck >/dev/null 2>&1; then \
		echo "lint: cannot fetch staticcheck@$(STATICCHECK_VERSION) (offline?); using staticcheck from PATH"; \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck unavailable (no module fetch, none on PATH); falling back to go vet"; \
		$(GO) vet ./...; \
	fi

bench:
	$(GO) test -bench . -benchmem .

experiments:
	$(GO) run ./cmd/proxybench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/filecache
	$(GO) run ./examples/directory
	$(GO) run ./examples/migration
	$(GO) run ./examples/bank
	$(GO) run ./examples/typedcalc
	$(GO) run ./examples/newsfeed

clean:
	$(GO) clean ./...
