// Package repro is a from-scratch Go reproduction of Marc Shapiro's
// "Structure and Encapsulation in Distributed Systems: The Proxy
// Principle" (6th ICDCS, 1986) — the paper that introduced the proxy as
// the structuring unit of distributed systems and originated the RPC
// stub/proxy pattern.
//
// The implementation lives under internal/: the kernel substrate
// (wire, codec, netsim, kernel, rpc, naming, group, vclock), the proxy
// runtime itself (core), the smart proxies (cache, replica, migrate,
// shard), the comparators (rpc stubs, dsm), and the observability layer
// (obs: cross-context invocation tracing plus the shared metrics
// registry).
// See README.md for the tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the measured reproduction of every claim. The
// benchmarks in this directory (bench_test.go) expose one testing.B
// target per experiment.
//
// # Constructor options
//
// Every constructor with optional knobs follows the same functional
// options convention: the constructor takes a variadic trailing
// parameter of a package-local option type, and each knob is a With*
// function returning that type. For example:
//
//	rpc.NewClient(ktx, rpc.WithMaxAttempts(8), rpc.WithObserver(o))
//	core.NewRuntime(ktx, core.WithObserver(o))
//	cache.NewFactory(reads, cache.WithLeaseTTL(ttl))
//	pubsub.NewTopic("news", pubsub.WithQueueDepth(64))
//	shard.NewFactory(spec, shard.WithVirtualNodes(64))
//
// Option types are named after what they configure: rpc.ClientOption,
// core.RuntimeOption, naming.ClientOption, core.ExportOption,
// pubsub.TopicOption; the proxy factories take cache.FactoryOption,
// replica.FactoryOption, migrate.FactoryOption and shard.FactoryOption,
// with migrate.HostOption for the migration host and replica.ServiceOption
// / shard.ServiceOption for the proxyctl-facing admin services. Zero
// options always yields a working default; options are applied in order,
// later options winning. New knobs are added as new With* functions, so
// call sites never break.
//
// Proxy factories themselves share one contract, core.ProxyFactory:
// New builds the client-side proxy from an imported reference, Export
// wraps (or registers) the service side and contributes the reference
// hint. Runtime.ExportVia(factory, svc, typeName) registers and exports
// in one step. Factories with no server-side behavior embed
// core.NopExport.
//
// # Observability
//
// internal/obs provides the single metrics registry (obs.Registry:
// lock-free counters, gauges and latency histograms under dotted names)
// and causal tracing across contexts (obs.Tracer: span contexts ride an
// optional header on request payloads, so one client invocation through
// any chain of smart-proxy hops reconstructs as a single trace tree).
// Wire runtimes that should share a view with core.WithObserver; inspect
// with proxyctl stats / proxyctl traces, or proxyd's -http endpoints
// /metrics and /traces.
package repro
