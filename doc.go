// Package repro is a from-scratch Go reproduction of Marc Shapiro's
// "Structure and Encapsulation in Distributed Systems: The Proxy
// Principle" (6th ICDCS, 1986) — the paper that introduced the proxy as
// the structuring unit of distributed systems and originated the RPC
// stub/proxy pattern.
//
// The implementation lives under internal/: the kernel substrate
// (wire, codec, netsim, kernel, rpc, naming, group, vclock), the proxy
// runtime itself (core), the smart proxies (cache, replica, migrate), and
// the comparators (rpc stubs, dsm). See README.md for the tour,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// measured reproduction of every claim. The benchmarks in this directory
// (bench_test.go) expose one testing.B target per experiment.
package repro
