// Package pubsub implements the observer pattern on top of the proxy
// runtime, with no machinery of its own below core: a subscriber passes a
// *reference* to its callback object when subscribing, the topic's
// argument decoding turns that reference into a proxy, and publishing is
// the topic invoking "notify" through each subscriber proxy. Events are
// ordinary invocation values — including references, so an event can
// carry live capabilities to its consumers.
//
// Delivery is per-subscriber ordered (one goroutine drains each
// subscriber's queue in sequence) and at-most-once per event; a subscriber
// whose notify fails repeatedly is dropped (fail-stop suspicion), which
// keeps dead subscribers from wedging the topic.
package pubsub

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// TypeName is the conventional proxy type for topics.
const TypeName = "pubsub.Topic"

// SubscriberType is the conventional proxy type for callback objects.
const SubscriberType = "pubsub.Subscriber"

// TopicOption configures a Topic.
type TopicOption func(*Topic)

// WithQueueDepth bounds each subscriber's pending-event queue (default
// 128); when a slow subscriber's queue fills, its oldest events are
// dropped and counted.
func WithQueueDepth(n int) TopicOption {
	return func(t *Topic) {
		if n > 0 {
			t.queueDepth = n
		}
	}
}

// WithMaxFailures sets how many consecutive notify failures evict a
// subscriber (default 3).
func WithMaxFailures(n int) TopicOption {
	return func(t *Topic) {
		if n > 0 {
			t.maxFailures = n
		}
	}
}

// WithNotifyTimeout bounds one notify invocation (default 5s).
func WithNotifyTimeout(d time.Duration) TopicOption {
	return func(t *Topic) {
		if d > 0 {
			t.notifyTimeout = d
		}
	}
}

// WithObserver routes the topic's counters into a shared observability
// sink (by default each topic gets a private one).
func WithObserver(o *obs.Observer) TopicOption {
	return func(t *Topic) {
		if o != nil {
			t.obs = o
		}
	}
}

// Stats counts topic activity. It is a snapshot of the topic's counters
// in the obs registry, kept as a struct so existing callers read it
// unchanged.
type Stats struct {
	Published   uint64
	Delivered   uint64
	Dropped     uint64 // queue overflows
	Evicted     uint64 // subscribers removed for failing
	Subscribers int
}

// Topic is the publish/subscribe hub. It implements core.Service with:
//
//	subscribe(cb Ref) -> (id int64)
//	unsubscribe(id int64) -> ()
//	publish(event any) -> ()       // returns after enqueuing, not delivery
//	count() -> (int64)
type Topic struct {
	queueDepth    int
	maxFailures   int
	notifyTimeout time.Duration
	name          string

	obs       *obs.Observer
	published *obs.Counter
	delivered *obs.Counter
	dropped   *obs.Counter
	evicted   *obs.Counter
	subGauge  *obs.Gauge

	mu     sync.Mutex
	nextID int64
	subs   map[int64]*subscription
	closed bool
}

type subscription struct {
	id    int64
	proxy core.Proxy
	queue chan any
	stop  chan struct{}
}

// NewTopic creates a topic named name (the name travels with every
// notify, so one callback object can serve several topics).
func NewTopic(name string, opts ...TopicOption) *Topic {
	t := &Topic{
		queueDepth:    128,
		maxFailures:   3,
		notifyTimeout: 5 * time.Second,
		name:          name,
		subs:          make(map[int64]*subscription),
	}
	for _, o := range opts {
		o(t)
	}
	if t.obs == nil {
		t.obs = obs.NewObserver()
	}
	scope := "pubsub.topic[" + name + "]."
	reg := t.obs.Registry
	t.published = reg.Counter(scope + "published")
	t.delivered = reg.Counter(scope + "delivered")
	t.dropped = reg.Counter(scope + "dropped")
	t.evicted = reg.Counter(scope + "evicted")
	t.subGauge = reg.Gauge(scope + "subscribers")
	return t
}

// Invoke implements core.Service.
func (t *Topic) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	switch method {
	case "subscribe":
		if len(args) != 1 {
			return nil, core.BadArgs(method, "want (callbackRef)")
		}
		cb, ok := args[0].(core.Proxy)
		if !ok {
			return nil, core.BadArgs(method, fmt.Sprintf("callback must be a reference, got %T", args[0]))
		}
		id, err := t.Subscribe(cb)
		if err != nil {
			return nil, core.Errorf(core.CodeApp, method, "%s", err)
		}
		return []any{id}, nil
	case "unsubscribe":
		if len(args) != 1 {
			return nil, core.BadArgs(method, "want (id)")
		}
		id, ok := args[0].(int64)
		if !ok {
			return nil, core.BadArgs(method, fmt.Sprintf("id must be int64, got %T", args[0]))
		}
		t.Unsubscribe(id)
		return nil, nil
	case "publish":
		if len(args) != 1 {
			return nil, core.BadArgs(method, "want (event)")
		}
		t.Publish(args[0])
		return nil, nil
	case "count":
		return []any{int64(t.Stats().Subscribers)}, nil
	default:
		return nil, core.NoSuchMethod(method)
	}
}

// Subscribe adds a callback proxy and starts its delivery drain.
func (t *Topic) Subscribe(cb core.Proxy) (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return 0, fmt.Errorf("pubsub: topic closed")
	}
	t.nextID++
	sub := &subscription{
		id:    t.nextID,
		proxy: cb,
		queue: make(chan any, t.queueDepth),
		stop:  make(chan struct{}),
	}
	t.subs[sub.id] = sub
	t.subGauge.Set(int64(len(t.subs)))
	go t.drain(sub)
	return sub.id, nil
}

// Unsubscribe removes a subscription (idempotent).
func (t *Topic) Unsubscribe(id int64) {
	t.mu.Lock()
	sub, ok := t.subs[id]
	if ok {
		delete(t.subs, id)
		t.subGauge.Set(int64(len(t.subs)))
	}
	t.mu.Unlock()
	if ok {
		close(sub.stop)
	}
}

// Publish enqueues the event for every subscriber and returns. A full
// subscriber queue drops the event for that subscriber only.
func (t *Topic) Publish(event any) {
	t.published.Inc()
	t.mu.Lock()
	subs := make([]*subscription, 0, len(t.subs))
	for _, s := range t.subs {
		subs = append(subs, s)
	}
	t.mu.Unlock()
	for _, s := range subs {
		select {
		case s.queue <- event:
		default:
			t.dropped.Inc()
		}
	}
}

// drain delivers one subscriber's events in order.
func (t *Topic) drain(sub *subscription) {
	failures := 0
	for {
		select {
		case <-sub.stop:
			return
		case event := <-sub.queue:
			ctx, cancel := context.WithTimeout(context.Background(), t.notifyTimeout)
			_, err := sub.proxy.Invoke(ctx, "notify", t.name, event)
			cancel()
			if err != nil {
				failures++
				if failures >= t.maxFailures {
					t.mu.Lock()
					if _, ok := t.subs[sub.id]; ok {
						delete(t.subs, sub.id)
						t.subGauge.Set(int64(len(t.subs)))
						t.evicted.Inc()
					}
					t.mu.Unlock()
					return
				}
				continue
			}
			failures = 0
			t.delivered.Inc()
		}
	}
}

// Stats snapshots the counters.
func (t *Topic) Stats() Stats {
	t.mu.Lock()
	subs := len(t.subs)
	t.mu.Unlock()
	return Stats{
		Published:   t.published.Load(),
		Delivered:   t.delivered.Load(),
		Dropped:     t.dropped.Load(),
		Evicted:     t.evicted.Load(),
		Subscribers: subs,
	}
}

// Close stops every drain; pending events are discarded.
func (t *Topic) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	subs := t.subs
	t.subs = make(map[int64]*subscription)
	t.subGauge.Set(0)
	t.mu.Unlock()
	for _, s := range subs {
		close(s.stop)
	}
}

// Callback wraps a function as an Exportable service answering "notify":
// the subscriber side of the protocol. Export it (or pass it directly in
// arguments — it auto-exports) and hand its reference to subscribe.
type Callback struct {
	fn func(topic string, event any)
}

// NewCallback builds a callback service around fn. fn runs on the
// delivery path and must not block for long.
func NewCallback(fn func(topic string, event any)) *Callback {
	return &Callback{fn: fn}
}

// Invoke implements core.Service.
func (c *Callback) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	if method != "notify" {
		return nil, core.NoSuchMethod(method)
	}
	if len(args) != 2 {
		return nil, core.BadArgs(method, "want (topic, event)")
	}
	topic, _ := args[0].(string)
	c.fn(topic, args[1])
	return nil, nil
}

// ProxyType implements core.Exportable, so a Callback passed in arguments
// auto-exports.
func (c *Callback) ProxyType() string { return SubscriberType }

// Client is the typed wrapper for a topic proxy.
type Client struct {
	p core.Proxy
}

// NewClient wraps a topic proxy.
func NewClient(p core.Proxy) *Client { return &Client{p: p} }

// Proxy exposes the wrapped proxy.
func (c *Client) Proxy() core.Proxy { return c.p }

// Subscribe registers cb (any proxy/exportable whose "notify" is the
// delivery method) and returns the subscription id.
func (c *Client) Subscribe(ctx context.Context, cb any) (int64, error) {
	return core.Call1[int64](ctx, c.p, "subscribe", cb)
}

// Unsubscribe removes a subscription.
func (c *Client) Unsubscribe(ctx context.Context, id int64) error {
	return core.Call0(ctx, c.p, "unsubscribe", id)
}

// Publish sends an event to every subscriber.
func (c *Client) Publish(ctx context.Context, event any) error {
	return core.Call0(ctx, c.p, "publish", event)
}

// Count reports the current subscriber count.
func (c *Client) Count(ctx context.Context) (int64, error) {
	return core.Call1[int64](ctx, c.p, "count")
}
