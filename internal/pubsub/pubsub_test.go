package pubsub

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// psWorld: a topic on node 1, n subscriber runtimes on nodes 2..n+1.
type psWorld struct {
	topic    *Topic
	client   *Client
	runtimes []*core.Runtime
}

func newPSWorld(t *testing.T, nClients int, opts ...TopicOption) *psWorld {
	t.Helper()
	net := netsim.New()
	t.Cleanup(net.Close)
	mk := func(id wire.NodeID) *core.Runtime {
		ep, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		node := kernel.NewNode(ep)
		t.Cleanup(func() { node.Close() })
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		return core.NewRuntime(ktx)
	}
	w := &psWorld{topic: NewTopic("events", opts...)}
	t.Cleanup(w.topic.Close)
	server := mk(1)
	ref, err := server.Export(w.topic, TypeName)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nClients; i++ {
		w.runtimes = append(w.runtimes, mk(wire.NodeID(i+2)))
	}
	p, err := w.runtimes[0].Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	w.client = NewClient(p)
	return w
}

// recorder collects notified events.
type recorder struct {
	mu     sync.Mutex
	topics []string
	events []any
}

func (r *recorder) cb(topic string, event any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.topics = append(r.topics, topic)
	r.events = append(r.events, event)
}

func (r *recorder) snapshot() []any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]any(nil), r.events...)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestPublishReachesSubscribers(t *testing.T) {
	w := newPSWorld(t, 1)
	ctx := context.Background()
	rec := &recorder{}
	id, err := w.client.Subscribe(ctx, NewCallback(rec.cb))
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Error("zero subscription id")
	}
	for i := 0; i < 5; i++ {
		if err := w.client.Publish(ctx, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(rec.snapshot()) == 5 })
	events := rec.snapshot()
	for i, e := range events {
		if e != int64(i) {
			t.Errorf("event %d = %v (order violated?)", i, e)
		}
	}
	rec.mu.Lock()
	topic := rec.topics[0]
	rec.mu.Unlock()
	if topic != "events" {
		t.Errorf("topic = %q", topic)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	w := newPSWorld(t, 1)
	ctx := context.Background()
	rec := &recorder{}
	id, err := w.client.Subscribe(ctx, NewCallback(rec.cb))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.client.Publish(ctx, "before"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(rec.snapshot()) == 1 })
	if err := w.client.Unsubscribe(ctx, id); err != nil {
		t.Fatal(err)
	}
	if err := w.client.Publish(ctx, "after"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got := rec.snapshot(); len(got) != 1 {
		t.Errorf("events after unsubscribe = %v", got)
	}
	if n, _ := w.client.Count(ctx); n != 0 {
		t.Errorf("Count = %d", n)
	}
}

func TestMultipleSubscribersAcrossNodes(t *testing.T) {
	const subs = 3
	w := newPSWorld(t, subs)
	ctx := context.Background()
	recs := make([]*recorder, subs)
	for i := 0; i < subs; i++ {
		recs[i] = &recorder{}
		// Each subscriber registers from its own runtime: export the
		// callback there and pass its proxy to subscribe.
		cbRef, err := w.runtimes[i].Export(NewCallback(recs[i].cb), SubscriberType)
		if err != nil {
			t.Fatal(err)
		}
		cbProxy, err := w.runtimes[i].Import(cbRef)
		if err != nil {
			t.Fatal(err)
		}
		// Subscribe through runtime 0's topic client; the callback proxy
		// lowers to its ref and the topic installs its own proxy for it.
		if _, err := w.client.Subscribe(ctx, cbProxy); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.client.Publish(ctx, "fanout"); err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		rec := rec
		waitFor(t, func() bool { return len(rec.snapshot()) == 1 })
		if got := rec.snapshot()[0]; got != "fanout" {
			t.Errorf("subscriber %d got %v", i, got)
		}
	}
	// Delivered increments after the notify round trip completes, which
	// can lag the subscriber-side callback; poll for it.
	waitFor(t, func() bool { return w.topic.Stats().Delivered == uint64(subs) })
	if st := w.topic.Stats(); st.Published != 1 || st.Subscribers != subs {
		t.Errorf("stats = %+v", st)
	}
}

func TestEventsCanCarryReferences(t *testing.T) {
	// Publish an event containing a service reference; subscribers get a
	// live proxy they can invoke — capabilities travel through events.
	w := newPSWorld(t, 1)
	ctx := context.Background()

	got := make(chan any, 1)
	if _, err := w.client.Subscribe(ctx, NewCallback(func(topic string, event any) {
		got <- event
	})); err != nil {
		t.Fatal(err)
	}
	kvLike := core.ServiceFunc(func(ctx context.Context, method string, args []any) ([]any, error) {
		return []any{"pong"}, nil
	})
	ref, err := w.runtimes[0].Export(kvLike, "Pinger")
	if err != nil {
		t.Fatal(err)
	}
	pinger, err := w.runtimes[0].Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.client.Publish(ctx, pinger); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-got:
		p, ok := ev.(core.Proxy)
		if !ok {
			t.Fatalf("event is %T, want Proxy", ev)
		}
		res, err := p.Invoke(ctx, "ping")
		if err != nil {
			t.Fatal(err)
		}
		if res[0] != "pong" {
			t.Errorf("res = %v", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("event never arrived")
	}
}

func TestDeadSubscriberEvicted(t *testing.T) {
	w := newPSWorld(t, 1, WithMaxFailures(2), WithNotifyTimeout(100*time.Millisecond))
	ctx := context.Background()
	rec := &recorder{}
	if _, err := w.client.Subscribe(ctx, NewCallback(rec.cb)); err != nil {
		t.Fatal(err)
	}
	// A subscriber whose callback object vanishes (unregistered) starts
	// failing; after maxFailures events it is evicted.
	dead := NewCallback(func(string, any) {})
	deadRef, err := w.runtimes[0].Export(dead, SubscriberType)
	if err != nil {
		t.Fatal(err)
	}
	deadProxy, err := w.runtimes[0].Import(deadRef)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.client.Subscribe(ctx, deadProxy); err != nil {
		t.Fatal(err)
	}
	if err := w.runtimes[0].Unexport(dead); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		if err := w.client.Publish(ctx, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return w.topic.Stats().Evicted == 1 })
	if n, _ := w.client.Count(ctx); n != 1 {
		t.Errorf("Count after eviction = %d", n)
	}
	// The healthy subscriber saw everything.
	waitFor(t, func() bool { return len(rec.snapshot()) == 3 })
}

func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	w := newPSWorld(t, 1, WithQueueDepth(2))
	ctx := context.Background()
	block := make(chan struct{})
	var mu sync.Mutex
	var got []any
	if _, err := w.client.Subscribe(ctx, NewCallback(func(_ string, e any) {
		<-block
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	})); err != nil {
		t.Fatal(err)
	}
	// Publish far more than the queue holds while the subscriber is stuck.
	for i := 0; i < 10; i++ {
		if err := w.client.Publish(ctx, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return w.topic.Stats().Dropped > 0 })
	close(block)
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 1
	})
	st := w.topic.Stats()
	if st.Dropped+st.Delivered > 10+1 { // one event may be mid-delivery
		t.Errorf("dropped %d + delivered %d exceeds published", st.Dropped, st.Delivered)
	}
}

func TestTopicCloseAndErrors(t *testing.T) {
	w := newPSWorld(t, 1)
	ctx := context.Background()
	var ie *core.InvokeError
	if _, err := w.client.Proxy().Invoke(ctx, "subscribe", "not-a-ref"); !asInvoke(err, &ie) || ie.Code != core.CodeBadArgs {
		t.Errorf("bad subscribe = %v", err)
	}
	if _, err := w.client.Proxy().Invoke(ctx, "zorp"); !asInvoke(err, &ie) || ie.Code != core.CodeNoSuchMethod {
		t.Errorf("unknown method = %v", err)
	}
	w.topic.Close()
	w.topic.Close() // idempotent
	if _, err := w.topic.Subscribe(nil); err == nil {
		t.Error("subscribe after close succeeded")
	}
}

func asInvoke(err error, out **core.InvokeError) bool {
	if err == nil {
		return false
	}
	ie, ok := err.(*core.InvokeError)
	if !ok {
		return false
	}
	*out = ie
	return true
}
