// Package migrate implements object migration and the migratory smart
// proxy. A migratable object can be moved between contexts at run time:
// its state is captured, shipped to a receiving Host, and re-exported
// there; a forwarding tombstone is installed at the old location so every
// outstanding reference keeps working (stubs follow KindForward responses
// and rebind — location transparency across migration, experiment E9).
//
// The migratory proxy (Factory) is the smart-proxy form: it counts the
// invocations it forwards and, past a threshold, asks the object's home to
// migrate the object *to the caller's own context* — after which
// invocations are direct calls. This reproduces the paper's claim that a
// proxy may re-locate the object it represents as an optimisation
// (experiment E3).
package migrate

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/wire"
)

// Migratable is a service whose state can be captured and restored. The
// Snapshot/Restore pair defines the object's own serialization (most
// implementations use codec.Marshal/Unmarshal on a state struct).
// Snapshot must synchronize with in-flight invocations: by the time it
// returns, the state it captured must not change again (the usual
// implementation simply takes the service's own mutex).
type Migratable interface {
	core.Service
	Snapshot() ([]byte, error)
	Restore(data []byte) error
}

// Errors returned by the migration layer.
var (
	// ErrNotMigratable reports a move of a service that does not implement
	// Migratable or is not exported.
	ErrNotMigratable = errors.New("migrate: service not migratable here")
	// ErrUnknownType reports arrival of an object whose type has no
	// registered constructor at the receiving host.
	ErrUnknownType = errors.New("migrate: no constructor for type")
)

// moveTimeout bounds one migration round trip.
const moveTimeout = 10 * time.Second

// Move migrates svc (currently exported from rt) to the Host at destHost.
// typeName keys the constructor at the destination; proxyType is the
// proxy type name the destination re-exports under (normally the same
// name the object was exported with). It returns the object's new
// reference. The old reference remains valid: a forwarding tombstone
// answers it with the new location.
func Move(ctx context.Context, rt *core.Runtime, svc Migratable, typeName, proxyType string, destHost wire.ObjAddr) (codec.Ref, error) {
	oldRef, ok := rt.RefFor(svc)
	if !ok {
		return codec.Ref{}, fmt.Errorf("%w: not exported", ErrNotMigratable)
	}

	// 1. Stop new invocations from reaching the object: park a pending
	// tombstone at its id. Callers block (briefly) rather than erroring.
	tomb := newTombstone()
	if _, err := rt.Kernel().Replace(oldRef.Target.Object, tomb); err != nil {
		return codec.Ref{}, fmt.Errorf("migrate: install tombstone: %w", err)
	}
	rt.DetachExport(svc)

	fail := func(err error) (codec.Ref, error) {
		// Migration failed: put the object back in service. The export
		// machinery assigns it a fresh id, so the tombstone at the old id
		// forwards to the re-export and stale references stay valid.
		reExported, reErr := rt.Export(svc, oldRef.Type)
		if reErr != nil {
			tomb.abort()
			return codec.Ref{}, errors.Join(err, reErr)
		}
		tomb.resolve(reExported)
		return codec.Ref{}, err
	}

	// 2. Capture state. Snapshot synchronizes with in-flight invocations.
	state, err := svc.Snapshot()
	if err != nil {
		return fail(fmt.Errorf("migrate: snapshot: %w", err))
	}

	// 3. Ship it. The destination constructs, restores, exports, and
	// answers with the new reference.
	payload, err := codec.Append(nil, []any{typeName, proxyType, state})
	if err != nil {
		return fail(fmt.Errorf("migrate: encode move: %w", err))
	}
	mctx, cancel := context.WithTimeout(ctx, moveTimeout)
	defer cancel()
	reply, err := rt.Client().Call(mctx, destHost, wire.KindMove, payload)
	if err != nil {
		return fail(fmt.Errorf("migrate: move call: %w", err))
	}
	newRef, _, err := codec.DecodeRef(reply)
	if err != nil {
		return fail(fmt.Errorf("migrate: decode new ref: %w", err))
	}

	// 4. Light up the tombstone: parked and future callers get forwarded.
	tomb.resolve(newRef)
	return newRef, nil
}

// tombstone is the handler left at a migrated object's old id. While the
// move is in progress it parks arriving frames; once resolved it answers
// everything with KindForward to the new location. Tombstones are
// permanent: reference chains through k homes keep working (and compress,
// because stubs rebind on first contact — E9 measures both).
type tombstone struct {
	resolved chan struct{} // closed on resolve/abort
	parked   chan parkedFrame

	ref     codec.Ref
	aborted bool
}

type parkedFrame struct {
	ktx *kernel.Context
	f   *wire.Frame
}

func newTombstone() *tombstone {
	return &tombstone{
		resolved: make(chan struct{}),
		parked:   make(chan parkedFrame, 128),
	}
}

// HandleFrame implements kernel.Handler.
func (t *tombstone) HandleFrame(ktx *kernel.Context, f *wire.Frame) {
	select {
	case <-t.resolved:
		t.answer(ktx, f)
	default:
		select {
		case t.parked <- parkedFrame{ktx: ktx, f: f}:
			// If resolution raced the park, the resolver's drain may have
			// already run; drain again ourselves (drain is concurrent-safe,
			// each parked frame is answered exactly once).
			select {
			case <-t.resolved:
				t.drain()
			default:
			}
		case <-t.resolved:
			t.answer(ktx, f)
		}
	}
}

func (t *tombstone) answer(ktx *kernel.Context, f *wire.Frame) {
	if t.aborted {
		// The object never left; it was re-registered at this id and this
		// handler instance is obsolete. Requests that raced the abort are
		// answered with a retryable error.
		_ = ktx.RespondError(f, core.EncodeInvokeError("", core.Errorf(core.CodeUnavailable, "", "object was busy migrating; retry")))
		return
	}
	_ = ktx.Respond(f, wire.KindForward, core.ForwardPayload(t.ref))
}

// resolve publishes the new location and drains parked frames.
func (t *tombstone) resolve(ref codec.Ref) {
	t.ref = ref
	close(t.resolved)
	t.drain()
}

// abort marks the migration as failed (object restored at origin).
func (t *tombstone) abort() {
	t.aborted = true
	close(t.resolved)
	t.drain()
}

func (t *tombstone) drain() {
	for {
		select {
		case p := <-t.parked:
			t.answer(p.ktx, p.f)
		default:
			return
		}
	}
}
