package migrate

import (
	"sync"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// Host receives migrating objects into a runtime's context. It registers
// one control object handling KindMove frames; its address is what senders
// pass to Move as the destination. Constructors must be registered for
// every type the host is willing to accept — an unknown type is refused,
// which doubles as the host's admission policy.
type Host struct {
	rt *core.Runtime

	mu    sync.Mutex
	ctors map[string]func() Migratable

	addr     wire.ObjAddr
	received uint64
}

// HostOption configures a Host. None are defined yet; the parameter
// exists so future knobs (admission quotas, arrival hooks) never break
// call sites — see doc.go, constructor options.
type HostOption func(*Host)

// NewHost installs a migration host in rt's context.
func NewHost(rt *core.Runtime, opts ...HostOption) *Host {
	h := &Host{
		rt:    rt,
		ctors: make(map[string]func() Migratable),
	}
	for _, o := range opts {
		o(h)
	}
	srv := rpc.NewServer(rpc.HandlerFunc(h.handleMove))
	id := rt.Kernel().Register(srv)
	h.addr = wire.ObjAddr{Addr: rt.Addr(), Object: id}
	return h
}

// Addr is the control address senders target with Move.
func (h *Host) Addr() wire.ObjAddr { return h.addr }

// Runtime exposes the hosting runtime.
func (h *Host) Runtime() *core.Runtime { return h.rt }

// RegisterType declares that this host accepts objects of the given type,
// constructed by ctor before Restore is applied.
func (h *Host) RegisterType(typeName string, ctor func() Migratable) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ctors[typeName] = ctor
}

// Received reports how many objects have arrived (tests/metrics).
func (h *Host) Received() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.received
}

// handleMove processes one arriving object: construct, restore, export,
// reply with the new reference.
func (h *Host) handleMove(req *rpc.Request) (wire.Kind, []byte, []byte) {
	vals, err := codec.DecodeArgs(req.Frame.Payload)
	if err != nil || len(vals) != 3 {
		return 0, nil, core.EncodeInvokeError("move", core.Errorf(core.CodeBadArgs, "move", "malformed move payload"))
	}
	typeName, ok1 := vals[0].(string)
	proxyType, ok2 := vals[1].(string)
	state, ok3 := vals[2].([]byte)
	if !ok1 || !ok2 || !ok3 {
		return 0, nil, core.EncodeInvokeError("move", core.Errorf(core.CodeBadArgs, "move", "malformed move payload"))
	}

	h.mu.Lock()
	ctor, ok := h.ctors[typeName]
	h.mu.Unlock()
	if !ok {
		return 0, nil, core.EncodeInvokeError("move", core.Errorf(core.CodeApp, "move", "%s: %q", ErrUnknownType, typeName))
	}
	obj := ctor()
	if err := obj.Restore(state); err != nil {
		return 0, nil, core.EncodeInvokeError("move", core.Errorf(core.CodeApp, "move", "restore %q: %s", typeName, err))
	}
	ref, err := h.rt.Export(obj, proxyType)
	if err != nil {
		return 0, nil, core.EncodeInvokeError("move", core.Errorf(core.CodeInternal, "move", "export: %s", err))
	}
	h.mu.Lock()
	h.received++
	h.mu.Unlock()
	return wire.KindMove, codec.AppendRef(nil, ref), nil
}
