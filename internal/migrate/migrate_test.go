package migrate

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// migCounter is a migratable counter whose snapshot/restore uses the codec.
type migCounter struct {
	mu       sync.Mutex
	N        int64
	snapGate chan struct{} // when non-nil, Snapshot blocks until closed
}

func (c *migCounter) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch method {
	case "add":
		d, _ := args[0].(int64)
		c.N += d
		return []any{c.N}, nil
	case "get":
		return []any{c.N}, nil
	default:
		return nil, core.NoSuchMethod(method)
	}
}

func (c *migCounter) Snapshot() ([]byte, error) {
	if c.snapGate != nil {
		<-c.snapGate
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return codec.EncodeArgs(c.N)
}

func (c *migCounter) Restore(data []byte) error {
	vals, err := codec.DecodeArgs(data)
	if err != nil {
		return err
	}
	n, ok := vals[0].(int64)
	if !ok {
		return fmt.Errorf("bad state %T", vals[0])
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.N = n
	return nil
}

// migWorld is n runtimes, each with a Host and the type registered.
type migWorld struct {
	runtimes []*core.Runtime
	hosts    []*Host
	factory  *Factory
}

func newMigWorld(t *testing.T, n int, opts ...FactoryOption) *migWorld {
	t.Helper()
	net := netsim.New()
	t.Cleanup(net.Close)
	w := &migWorld{factory: NewFactory("Counter", opts...)}
	for i := 0; i < n; i++ {
		ep, err := net.Attach(wire.NodeID(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		node := kernel.NewNode(ep)
		t.Cleanup(func() { node.Close() })
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		rt := core.NewRuntime(ktx)
		rt.RegisterProxyType("Counter", w.factory)
		host := NewHost(rt)
		host.RegisterType("Counter", func() Migratable { return &migCounter{} })
		w.factory.AttachHost(rt, host)
		w.runtimes = append(w.runtimes, rt)
		w.hosts = append(w.hosts, host)
	}
	return w
}

func TestMoveBasic(t *testing.T) {
	w := newMigWorld(t, 3)
	rtA, rtB, rtC := w.runtimes[0], w.runtimes[1], w.runtimes[2]
	ctx := context.Background()

	svc := &migCounter{N: 100}
	ref, err := rtA.Export(svc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	// A client on C warms up against the original location.
	p, err := rtC.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := p.Invoke(ctx, "add", int64(1)); err != nil || res[0] != int64(101) {
		t.Fatalf("pre-move add = %v, %v", res, err)
	}

	newRef, err := Move(ctx, rtA, svc, "Counter", "Counter", w.hosts[1].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if newRef.Target.Addr != rtB.Addr() {
		t.Errorf("object landed at %v, want %v", newRef.Target.Addr, rtB.Addr())
	}
	if w.hosts[1].Received() != 1 {
		t.Errorf("host received = %d", w.hosts[1].Received())
	}

	// The client's old proxy keeps working: forward → rebind → answer,
	// with state carried across.
	res, err := p.Invoke(ctx, "add", int64(1))
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != int64(102) {
		t.Errorf("post-move add = %v, want 102 (state lost?)", res[0])
	}

	// A brand-new import of the *old* reference also works.
	p2, err := rtC.Import(codec.Ref{Target: ref.Target, Type: ref.Type, Hint: ref.Hint})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := p2.Invoke(ctx, "get"); err != nil || res[0] != int64(102) {
		t.Fatalf("old-ref import get = %v, %v", res, err)
	}
}

func TestMoveUnknownTypeRestoresService(t *testing.T) {
	w := newMigWorld(t, 2)
	rtA := w.runtimes[0]
	ctx := context.Background()

	svc := &migCounter{N: 5}
	ref, err := rtA.Export(svc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.runtimes[1].Import(ref)
	if err != nil {
		t.Fatal(err)
	}

	_, err = Move(ctx, rtA, svc, "UnregisteredType", "Counter", w.hosts[1].Addr())
	if err == nil {
		t.Fatal("Move with unknown type succeeded")
	}
	// The object must still be reachable (re-exported; tombstone forwards).
	res, err := p.Invoke(ctx, "get")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != int64(5) {
		t.Errorf("get after failed move = %v", res[0])
	}
}

func TestMoveNotExported(t *testing.T) {
	w := newMigWorld(t, 2)
	svc := &migCounter{}
	_, err := Move(context.Background(), w.runtimes[0], svc, "Counter", "Counter", w.hosts[1].Addr())
	if !errors.Is(err, ErrNotMigratable) {
		t.Errorf("Move of unexported = %v", err)
	}
}

func TestInvocationsDuringMoveAreParked(t *testing.T) {
	w := newMigWorld(t, 3)
	rtA, rtC := w.runtimes[0], w.runtimes[2]
	ctx := context.Background()

	gate := make(chan struct{})
	svc := &migCounter{N: 1, snapGate: gate}
	ref, err := rtA.Export(svc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	p, err := rtC.Import(ref)
	if err != nil {
		t.Fatal(err)
	}

	moveDone := make(chan error, 1)
	go func() {
		_, err := Move(ctx, rtA, svc, "Counter", "Counter", w.hosts[1].Addr())
		moveDone <- err
	}()
	// Wait until the tombstone is installed (snapshot is gated, so the
	// move is parked between those two steps).
	time.Sleep(30 * time.Millisecond)

	invokeDone := make(chan error, 1)
	go func() {
		res, err := p.Invoke(ctx, "get")
		if err == nil && res[0] != int64(1) {
			err = fmt.Errorf("got %v", res[0])
		}
		invokeDone <- err
	}()
	// The invocation must be parked, not failed.
	select {
	case err := <-invokeDone:
		t.Fatalf("invocation finished mid-move: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	if err := <-moveDone; err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-invokeDone:
		if err != nil {
			t.Fatalf("parked invocation failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked invocation never completed")
	}
}

func TestMoveChainCompresses(t *testing.T) {
	w := newMigWorld(t, 4)
	rtA, rtClient := w.runtimes[0], w.runtimes[3]
	ctx := context.Background()

	svc := &migCounter{N: 0}
	ref, err := rtA.Export(svc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	p, err := rtClient.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(ctx, "get"); err != nil {
		t.Fatal(err)
	}

	// Hop A → B → C. Each Move needs the *current* instance: the host
	// constructs a fresh object at each stop, so re-resolve it.
	cur := svc
	curRT := rtA
	for hop := 1; hop <= 2; hop++ {
		newRef, err := Move(ctx, curRT, cur, "Counter", "Counter", w.hosts[hop].Addr())
		if err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
		nsvc, ok := w.runtimes[hop].LocalService(newRef)
		if !ok {
			t.Fatalf("hop %d: new instance not found", hop)
		}
		cur = nsvc.(*migCounter)
		curRT = w.runtimes[hop]
	}

	// First post-chain invocation walks both forwards and rebinds.
	if _, err := p.Invoke(ctx, "add", int64(1)); err != nil {
		t.Fatal(err)
	}
	mp, ok := p.(*Proxy)
	if !ok {
		t.Fatalf("proxy is %T", p)
	}
	if mp.Ref().Target.Addr != w.runtimes[2].Addr() {
		t.Errorf("proxy bound to %v, want final home %v", mp.Ref().Target.Addr, w.runtimes[2].Addr())
	}
}

func TestMigratoryProxyPullsAfterThreshold(t *testing.T) {
	const threshold = 3
	w := newMigWorld(t, 2, WithThreshold(threshold))
	rtServer, rtClient := w.runtimes[0], w.runtimes[1]
	ctx := context.Background()

	svc := &migCounter{N: 0}
	ref, err := rtServer.Export(svc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	p, err := rtClient.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	mp := p.(*Proxy)

	for i := 1; i <= 10; i++ {
		res, err := p.Invoke(ctx, "add", int64(1))
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
		if res[0] != int64(i) {
			t.Fatalf("invoke %d = %v", i, res[0])
		}
	}
	if !mp.IsLocal() {
		t.Fatal("object never migrated to the caller")
	}
	pulls, directs := mp.Stats()
	if pulls != 1 {
		t.Errorf("pulls = %d, want 1", pulls)
	}
	if directs < 10-threshold-1 {
		t.Errorf("directs = %d, want most invocations after pull", directs)
	}
	if w.hosts[1].Received() != 1 {
		t.Errorf("client host received = %d", w.hosts[1].Received())
	}
}

func TestMigratoryProxyWithoutHostStaysRemote(t *testing.T) {
	w := newMigWorld(t, 2, WithThreshold(2))
	rtServer := w.runtimes[0]
	ctx := context.Background()

	// Build an extra runtime with the factory registered but NO host.
	net2 := netsim.New()
	t.Cleanup(net2.Close)
	svc := &migCounter{}
	ref, err := rtServer.Export(svc, "Counter")
	if err != nil {
		t.Fatal(err)
	}

	// Use the second runtime but detach its host mapping by using a fresh
	// factory-less registration: simplest is a new runtime sharing the
	// same network via a second context on node 2's kernel.
	ktx2, err := w.runtimes[1].Kernel().Node().NewContext()
	if err != nil {
		t.Fatal(err)
	}
	rtNoHost := core.NewRuntime(ktx2)
	rtNoHost.RegisterProxyType("Counter", w.factory)

	p, err := rtNoHost.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if _, err := p.Invoke(ctx, "add", int64(1)); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	mp := p.(*Proxy)
	if mp.IsLocal() {
		t.Error("object migrated into a runtime with no host")
	}
	// And the origin still owns it.
	if _, ok := rtServer.RefFor(svc); !ok {
		t.Error("origin lost the export")
	}
}

func TestSecondClientAfterPullFollowsForward(t *testing.T) {
	w := newMigWorld(t, 3, WithThreshold(2))
	rtServer, rtPuller, rtOther := w.runtimes[0], w.runtimes[1], w.runtimes[2]
	ctx := context.Background()

	svc := &migCounter{}
	ref, err := rtServer.Export(svc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	puller, err := rtPuller.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	other, err := rtOther.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the second client before the move.
	if _, err := other.Invoke(ctx, "get"); err != nil {
		t.Fatal(err)
	}
	// Drive the puller until migration happens.
	for i := 0; i < 5; i++ {
		if _, err := puller.Invoke(ctx, "add", int64(1)); err != nil {
			t.Fatal(err)
		}
	}
	if !puller.(*Proxy).IsLocal() {
		t.Fatal("pull did not happen")
	}
	// The other client's invocations keep working via forwarding.
	res, err := other.Invoke(ctx, "get")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != int64(5) {
		t.Errorf("other client read %v, want 5", res[0])
	}
}

func TestMigHintRoundTrip(t *testing.T) {
	in := migHint{Mover: 77, Threshold: 12}
	out, err := decodeMigHint(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round-trip = %+v", out)
	}
	if _, err := decodeMigHint(nil); err == nil {
		t.Error("decodeMigHint(nil) succeeded")
	}
}
