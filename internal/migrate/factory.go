package migrate

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// kindPull is the private protocol kind a migratory proxy uses to ask the
// object's home to migrate it to the caller's host.
const kindPull = wire.KindCustom + 20

// FactoryOption configures a Factory.
type FactoryOption func(*Factory)

// WithThreshold sets how many consecutive remote invocations a proxy
// forwards before it pulls the object to its own context (default 4).
func WithThreshold(n int) FactoryOption {
	return func(f *Factory) {
		if n > 0 {
			f.threshold = n
		}
	}
}

// Factory is the migratory proxy factory: exported objects can be pulled
// by their callers. The service side constructs it with the constructor
// type name; every runtime that may send, receive, or call the object
// registers the same factory. Implements core.ProxyFactory.
type Factory struct {
	typeName  string
	threshold int

	mu    sync.Mutex
	hosts map[*core.Runtime]*Host
}

var _ core.ProxyFactory = (*Factory)(nil)

// NewFactory builds a migratory factory for objects constructed (at
// receiving hosts) under typeName.
func NewFactory(typeName string, opts ...FactoryOption) *Factory {
	f := &Factory{
		typeName:  typeName,
		threshold: 4,
		hosts:     make(map[*core.Runtime]*Host),
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// AttachHost tells the factory which migration host serves a runtime:
// proxies created in that runtime will pull objects into it. Runtimes
// without an attached host never pull (their proxies stay pure stubs).
func (f *Factory) AttachHost(rt *core.Runtime, h *Host) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hosts[rt] = h
}

func (f *Factory) hostFor(rt *core.Runtime) (*Host, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	h, ok := f.hosts[rt]
	return h, ok
}

// migHint is the private bootstrap blob: where the mover lives and the
// pull threshold.
type migHint struct {
	Mover     wire.ObjectID
	Threshold int
}

func (h migHint) encode() []byte {
	buf := wire.AppendUvarint(nil, uint64(h.Mover))
	return wire.AppendUvarint(buf, uint64(h.Threshold))
}

func decodeMigHint(src []byte) (migHint, error) {
	mover, n, err := wire.Uvarint(src)
	if err != nil {
		return migHint{}, err
	}
	thr, _, err := wire.Uvarint(src[n:])
	if err != nil {
		return migHint{}, err
	}
	return migHint{Mover: wire.ObjectID(mover), Threshold: int(thr)}, nil
}

// Export implements the server half of core.ProxyFactory: it registers
// the mover control object
// serving pull requests for this export.
func (f *Factory) Export(rt *core.Runtime, svc core.Service, ref codec.Ref) (core.Service, []byte, error) {
	mig, ok := svc.(Migratable)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %T does not implement Migratable", ErrNotMigratable, svc)
	}
	m := &mover{rt: rt, svc: mig, factory: f, proxyType: f.typeName}
	srv := rpc.NewServer(rpc.HandlerFunc(m.handlePull))
	m.id = rt.Kernel().Register(srv)
	h := migHint{Mover: m.id, Threshold: f.threshold}
	return nil, h.encode(), nil
}

// New implements core.ProxyFactory.
func (f *Factory) New(rt *core.Runtime, ref codec.Ref) (core.Proxy, error) {
	h, err := decodeMigHint(ref.Hint)
	if err != nil {
		return nil, fmt.Errorf("migrate: bad hint in %s: %w", ref, err)
	}
	return &proxy{
		rt:      rt,
		factory: f,
		stub:    core.NewStub(rt, ref),
		hint:    h,
	}, nil
}

// mover serves pull requests for one exported object.
type mover struct {
	rt        *core.Runtime
	svc       Migratable
	factory   *Factory
	proxyType string
	id        wire.ObjectID

	mu    sync.Mutex
	moved bool
}

func (m *mover) handlePull(req *rpc.Request) (wire.Kind, []byte, []byte) {
	dest, _, err := wire.DecodeObjAddr(req.Frame.Payload)
	if err != nil {
		return 0, nil, core.EncodeInvokeError("pull", core.Errorf(core.CodeBadArgs, "pull", "malformed pull payload"))
	}
	m.mu.Lock()
	if m.moved {
		m.mu.Unlock()
		return 0, nil, core.EncodeInvokeError("pull", core.Errorf(core.CodeUnavailable, "pull", "object already migrated"))
	}
	m.moved = true
	m.mu.Unlock()

	// The ref.Type the object was exported under equals the type the
	// factory is registered for at the destination; the destination's
	// Export will mint a fresh mover there.
	ctx, cancel := context.WithTimeout(context.Background(), moveTimeout)
	defer cancel()
	newRef, err := Move(ctx, m.rt, m.svc, m.factory.typeName, m.proxyType, dest)
	if err != nil {
		m.mu.Lock()
		m.moved = false
		m.mu.Unlock()
		return 0, nil, core.EncodeInvokeError("pull", err)
	}
	// This mover is done; its object id stays registered to answer any
	// straggler pulls with "already migrated".
	return kindPull, codec.AppendRef(nil, newRef), nil
}

// proxy is the migratory smart proxy: a stub that counts the invocations
// it forwards and pulls the object home past the threshold.
type proxy struct {
	rt      *core.Runtime
	factory *Factory
	stub    *core.Stub
	hint    migHint

	mu      sync.Mutex
	count   int
	local   core.Service // non-nil once the object lives in our context
	pulled  bool
	pulls   uint64
	directs uint64
}

// Invoke implements core.Proxy.
func (p *proxy) Invoke(ctx context.Context, method string, args ...any) ([]any, error) {
	p.mu.Lock()
	if p.local != nil {
		svc := p.local
		p.directs++
		p.mu.Unlock()
		return svc.Invoke(ctx, method, args)
	}
	p.count++
	shouldPull := !p.pulled && p.count >= p.hint.Threshold
	if shouldPull {
		p.pulled = true // one attempt; reset on failure below
	}
	p.mu.Unlock()

	if shouldPull {
		if err := p.pull(ctx); err != nil {
			// Pull failed (no local host, contention, policy): degrade to
			// plain forwarding and try again after another threshold run.
			p.mu.Lock()
			p.pulled = false
			p.count = 0
			p.mu.Unlock()
		} else {
			p.mu.Lock()
			if p.local != nil {
				svc := p.local
				p.directs++
				p.mu.Unlock()
				return svc.Invoke(ctx, method, args)
			}
			p.mu.Unlock()
		}
	}
	return p.stub.Invoke(ctx, method, args...)
}

// pull asks the mover to migrate the object into our context's host.
func (p *proxy) pull(ctx context.Context) error {
	host, ok := p.factory.hostFor(p.rt)
	if !ok {
		return fmt.Errorf("migrate: no host attached to this runtime")
	}
	ref := p.stub.Ref()
	moverAddr := wire.ObjAddr{Addr: ref.Target.Addr, Object: p.hint.Mover}
	pctx, cancel := context.WithTimeout(ctx, moveTimeout)
	defer cancel()
	reply, err := p.rt.Client().Call(pctx, moverAddr, kindPull, wire.AppendObjAddr(nil, host.Addr()))
	if err != nil {
		return err
	}
	newRef, _, err := codec.DecodeRef(reply)
	if err != nil {
		return err
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	p.pulls++
	if svc, ok := p.rt.LocalService(newRef); ok {
		p.local = svc
		p.stub.Rebind(newRef)
		return nil
	}
	// Landed elsewhere (another host raced us); adopt the new location.
	if h, err := decodeMigHint(newRef.Hint); err == nil {
		p.hint = h
		p.pulled = false
		p.count = 0
	}
	p.stub.Rebind(newRef)
	return nil
}

// Ref implements core.Proxy.
func (p *proxy) Ref() codec.Ref { return p.stub.Ref() }

// Stats reports (pulls performed, direct local invocations served).
func (p *proxy) Stats() (pulls, directs uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pulls, p.directs
}

// IsLocal reports whether the object now lives in this proxy's context.
func (p *proxy) IsLocal() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.local != nil
}

// Close implements core.Proxy.
func (p *proxy) Close() error {
	return p.stub.Close()
}

// Proxy is the exported view of the migratory proxy for tests and
// benches that need its stats.
type Proxy = proxy
