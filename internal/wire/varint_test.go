package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestUvarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 255, 256, 16383, 16384, 1 << 32, math.MaxUint64}
	for _, v := range cases {
		buf := AppendUvarint(nil, v)
		got, n, err := Uvarint(buf)
		if err != nil {
			t.Fatalf("Uvarint(%d): %v", v, err)
		}
		if got != v {
			t.Errorf("Uvarint(%d) = %d", v, got)
		}
		if n != len(buf) {
			t.Errorf("Uvarint(%d) consumed %d of %d bytes", v, n, len(buf))
		}
		if n != UvarintLen(v) {
			t.Errorf("UvarintLen(%d) = %d, encoded %d", v, UvarintLen(v), n)
		}
	}
}

func TestUvarintProperty(t *testing.T) {
	roundTrip := func(v uint64) bool {
		buf := AppendUvarint(nil, v)
		got, n, err := Uvarint(buf)
		return err == nil && got == v && n == len(buf)
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Error(err)
	}
}

func TestVarintProperty(t *testing.T) {
	roundTrip := func(v int64) bool {
		buf := AppendVarint(nil, v)
		got, n, err := Varint(buf)
		return err == nil && got == v && n == len(buf)
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Error(err)
	}
}

func TestZigZagProperty(t *testing.T) {
	inv := func(v int64) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(inv, nil); err != nil {
		t.Error(err)
	}
	// Small magnitudes must stay small on the wire.
	for _, v := range []int64{-64, -1, 0, 1, 63} {
		if ZigZag(v) > 127 {
			t.Errorf("ZigZag(%d) = %d, want single byte", v, ZigZag(v))
		}
	}
}

func TestUvarintShortBuffer(t *testing.T) {
	buf := AppendUvarint(nil, math.MaxUint64)
	for i := 0; i < len(buf); i++ {
		if _, _, err := Uvarint(buf[:i]); err == nil {
			t.Errorf("Uvarint on %d-byte prefix: want error", i)
		}
	}
}

func TestUvarintOverflow(t *testing.T) {
	// Eleven continuation bytes cannot encode a uint64.
	buf := bytes.Repeat([]byte{0xff}, 11)
	if _, _, err := Uvarint(buf); err != ErrOverflow {
		t.Errorf("Uvarint(overlong) = %v, want ErrOverflow", err)
	}
	// A 10-byte encoding whose top byte sets bits beyond 64 is also invalid.
	buf = append(bytes.Repeat([]byte{0x80}, 9), 0x02)
	if _, _, err := Uvarint(buf); err != ErrOverflow {
		t.Errorf("Uvarint(2^65) = %v, want ErrOverflow", err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	cases := [][]byte{nil, {}, {0}, []byte("hello"), bytes.Repeat([]byte{0xab}, 1000)}
	for _, b := range cases {
		buf := AppendBytes(nil, b)
		got, n, err := Bytes(buf)
		if err != nil {
			t.Fatalf("Bytes(%q): %v", b, err)
		}
		if !bytes.Equal(got, b) {
			t.Errorf("Bytes round-trip: got %q want %q", got, b)
		}
		if n != len(buf) {
			t.Errorf("Bytes consumed %d of %d", n, len(buf))
		}
	}
}

func TestBytesTruncated(t *testing.T) {
	buf := AppendBytes(nil, []byte("hello world"))
	if _, _, err := Bytes(buf[:3]); err == nil {
		t.Error("Bytes(truncated) succeeded, want error")
	}
	// Length claims more than available.
	bad := AppendUvarint(nil, 1<<40)
	if _, _, err := Bytes(bad); err != ErrShortBuffer {
		t.Errorf("Bytes(huge length) = %v, want ErrShortBuffer", err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	roundTrip := func(s string) bool {
		buf := AppendString(nil, s)
		got, n, err := String(buf)
		return err == nil && got == s && n == len(buf)
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrRoundTrip(t *testing.T) {
	roundTrip := func(node uint32, ctx uint32) bool {
		a := Addr{Node: NodeID(node), Context: ContextID(ctx)}
		buf := AppendAddr(nil, a)
		got, n, err := DecodeAddr(buf)
		return err == nil && got == a && n == len(buf)
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Error(err)
	}
}

func TestObjAddrRoundTrip(t *testing.T) {
	roundTrip := func(node, ctx uint32, obj uint64) bool {
		o := ObjAddr{Addr: Addr{Node: NodeID(node), Context: ContextID(ctx)}, Object: ObjectID(obj)}
		buf := AppendObjAddr(nil, o)
		got, n, err := DecodeObjAddr(buf)
		return err == nil && got == o && n == len(buf)
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{Node: 3, Context: 1}
	if got := a.String(); got != "3.1" {
		t.Errorf("Addr.String() = %q, want %q", got, "3.1")
	}
	o := ObjAddr{Addr: a, Object: 42}
	if got := o.String(); got != "3.1/42" {
		t.Errorf("ObjAddr.String() = %q, want %q", got, "3.1/42")
	}
	if !(Addr{}).IsZero() {
		t.Error("zero Addr.IsZero() = false")
	}
	if a.IsZero() {
		t.Error("nonzero Addr.IsZero() = true")
	}
}

func BenchmarkAppendUvarint(b *testing.B) {
	buf := make([]byte, 0, 16)
	for i := 0; i < b.N; i++ {
		buf = AppendUvarint(buf[:0], uint64(i)*2654435761)
	}
}

func BenchmarkUvarint(b *testing.B) {
	buf := AppendUvarint(nil, 1<<56)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Uvarint(buf); err != nil {
			b.Fatal(err)
		}
	}
}
