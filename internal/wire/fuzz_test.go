package wire

import (
	"bytes"
	"testing"
)

// Fuzz entry point for the frame decoder — the one parser every byte
// from the network passes through. The contract under corruption is
// strict: Decode must never panic, and must never silently accept a
// damaged frame — a flipped bit anywhere in the encoding surfaces as an
// error (usually ErrBadCRC; flips in the first bytes land on
// ErrBadMagic/ErrBadVersion, flips in the length field on
// ErrShortBuffer/ErrTooLarge). Run with e.g.
//
//	go test -fuzz=FuzzDecodeFrame -fuzztime=30s ./internal/wire
//
// Seed corpus: a valid encoding plus characteristic corruptions, both
// as f.Add seeds below and as committed files under testdata/fuzz.

func frameSeed(t testing.TB) []byte {
	f := Frame{
		Kind:    KindRequest,
		Flags:   FlagUrgent,
		ReqID:   42,
		Src:     Addr{Node: 1, Context: 2},
		Dst:     Addr{Node: 3, Context: 4},
		Object:  ObjectID(0xBEEF),
		Payload: []byte("gray-failure payload"),
	}
	buf, err := f.Encode(make([]byte, 0, f.EncodedLen()))
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func FuzzDecodeFrame(f *testing.F) {
	good := frameSeed(f)
	f.Add(good)
	f.Add(good[:len(good)/2]) // truncated mid-payload
	flipped := append([]byte(nil), good...)
	flipped[headerLen+3] ^= 0x10 // payload corruption → ErrBadCRC
	f.Add(flipped)
	length := append([]byte(nil), good...)
	length[38] ^= 0xFF // payload length field blown up
	f.Add(length)
	f.Add([]byte{})
	f.Add([]byte{0x50, 0x59, 0x01}) // magic + version, nothing else

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted input must be self-consistent: the decoder consumed a
		// whole frame, and re-encoding it reproduces those bytes exactly
		// (the CRC leaves no slack for a second valid encoding).
		if n < headerLen+trailerLen || n > len(data) {
			t.Fatalf("accepted frame with bogus length %d of %d", n, len(data))
		}
		out, err := fr.Encode(make([]byte, 0, fr.EncodedLen()))
		if err != nil {
			t.Fatalf("re-encode accepted frame: %v", err)
		}
		if !bytes.Equal(out, data[:n]) {
			t.Fatalf("round trip changed bytes:\n got %x\nwant %x", out, data[:n])
		}
	})
}

// TestDecodeFrameBitFlips is the exhaustive deterministic form of the
// fuzz property: EVERY single-bit flip of a valid encoding must be
// rejected. This is the guarantee netsim's corruption injection and the
// TestChaosGrayCorruptionHealed end-to-end test lean on — a corrupted
// frame is dropped at the wire layer and healed by retransmission, never
// delivered.
func TestDecodeFrameBitFlips(t *testing.T) {
	good := frameSeed(t)
	if _, _, err := Decode(good); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
	for i := range good {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), good...)
			mut[i] ^= 1 << bit
			if _, _, err := Decode(mut); err == nil {
				t.Errorf("flip byte %d bit %d: corrupted frame accepted", i, bit)
			}
		}
	}
}
