package wire

import (
	"bytes"
	"testing"
)

// Fuzz entry point for the frame decoder — the one parser every byte
// from the network passes through. The contract under corruption is
// strict: Decode must never panic, and must never silently accept a
// damaged frame — a flipped bit anywhere in the encoding surfaces as an
// error (usually ErrBadCRC; flips in the first bytes land on
// ErrBadMagic/ErrBadVersion, flips in the length field on
// ErrShortBuffer/ErrTooLarge). Run with e.g.
//
//	go test -fuzz=FuzzDecodeFrame -fuzztime=30s ./internal/wire
//
// Seed corpus: a valid encoding plus characteristic corruptions, both
// as f.Add seeds below and as committed files under testdata/fuzz.

func frameSeed(t testing.TB) []byte {
	f := Frame{
		Kind:    KindRequest,
		Flags:   FlagUrgent,
		ReqID:   42,
		Src:     Addr{Node: 1, Context: 2},
		Dst:     Addr{Node: 3, Context: 4},
		Object:  ObjectID(0xBEEF),
		Payload: []byte("gray-failure payload"),
	}
	buf, err := f.Encode(make([]byte, 0, f.EncodedLen()))
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func FuzzDecodeFrame(f *testing.F) {
	good := frameSeed(f)
	f.Add(good)
	f.Add(good[:len(good)/2]) // truncated mid-payload
	flipped := append([]byte(nil), good...)
	flipped[headerLen+3] ^= 0x10 // payload corruption → ErrBadCRC
	f.Add(flipped)
	length := append([]byte(nil), good...)
	length[38] ^= 0xFF // payload length field blown up
	f.Add(length)
	f.Add([]byte{})
	f.Add([]byte{0x50, 0x59, 0x01}) // magic + version, nothing else

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted input must be self-consistent: the decoder consumed a
		// whole frame, and re-encoding it reproduces those bytes exactly
		// (the CRC leaves no slack for a second valid encoding).
		if n < headerLen+trailerLen || n > len(data) {
			t.Fatalf("accepted frame with bogus length %d of %d", n, len(data))
		}
		out, err := fr.Encode(make([]byte, 0, fr.EncodedLen()))
		if err != nil {
			t.Fatalf("re-encode accepted frame: %v", err)
		}
		if !bytes.Equal(out, data[:n]) {
			t.Fatalf("round trip changed bytes:\n got %x\nwant %x", out, data[:n])
		}
	})
}

// FuzzDecodeTrain drives the train-payload walker with arbitrary bytes.
// The walker sits directly on the network path (the kernel feeds it every
// inbound KindTrain payload), so its contract under hostile input is the
// same as Decode's: never panic, never deliver a member that is not a
// fully valid frame, and account for every byte either as a delivered
// member, a rejected member, or a framing loss that ends the walk. Run
// with e.g.
//
//	go test -fuzz=FuzzDecodeTrain -fuzztime=30s ./internal/wire
func FuzzDecodeTrain(f *testing.F) {
	// A valid 3-member train.
	member := func(i int) Frame {
		return Frame{
			Kind:    KindRequest,
			ReqID:   uint64(i),
			Src:     Addr{Node: 1, Context: 2},
			Dst:     Addr{Node: 3, Context: 4},
			Object:  ObjectID(i),
			Payload: []byte("member payload"),
		}
	}
	var good []byte
	for i := 0; i < 3; i++ {
		m := member(i)
		var err error
		if good, err = AppendTrainMember(good, &m); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(good)
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x20 // damage somewhere in the middle member
	f.Add(flipped)
	prefix := append([]byte(nil), good...)
	prefix[0] = 0xff // first length prefix becomes a continuation byte
	f.Add(prefix)
	f.Add(good[:len(good)-5]) // truncated final member
	nested := Frame{Kind: KindTrain, Dst: Addr{Node: 3}, Payload: good}
	forged := AppendUvarint(nil, uint64(nested.EncodedLen()))
	var err error
	if forged, err = nested.Encode(forged); err != nil {
		f.Fatal(err)
	}
	f.Add(forged)
	f.Add([]byte{})
	f.Add([]byte{0x00}) // zero-length member

	f.Fuzz(func(t *testing.T, data []byte) {
		var delivered int
		members, rejected, err := ForEachTrainMember(data, func(m *Frame) {
			delivered++
			if m.Kind == KindTrain {
				t.Fatal("nested train delivered")
			}
			// A delivered member must be a complete valid frame: it
			// re-encodes without error to its own exact length.
			out, eerr := m.Encode(make([]byte, 0, m.EncodedLen()))
			if eerr != nil {
				t.Fatalf("delivered member does not re-encode: %v", eerr)
			}
			if len(out) != m.EncodedLen() || len(out) > len(data) {
				t.Fatalf("delivered member has bogus size %d (train is %d)", len(out), len(data))
			}
		})
		if members != delivered {
			t.Fatalf("reported %d members, delivered %d", members, delivered)
		}
		if err != nil && err != ErrTrainCorrupt {
			t.Fatalf("unexpected walk error: %v", err)
		}
		if err == ErrTrainCorrupt && rejected == 0 {
			t.Fatal("framing loss reported without a rejected count")
		}
	})
}

// TestDecodeFrameBitFlips is the exhaustive deterministic form of the
// fuzz property: EVERY single-bit flip of a valid encoding must be
// rejected. This is the guarantee netsim's corruption injection and the
// TestChaosGrayCorruptionHealed end-to-end test lean on — a corrupted
// frame is dropped at the wire layer and healed by retransmission, never
// delivered.
func TestDecodeFrameBitFlips(t *testing.T) {
	good := frameSeed(t)
	if _, _, err := Decode(good); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
	for i := range good {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), good...)
			mut[i] ^= 1 << bit
			if _, _, err := Decode(mut); err == nil {
				t.Errorf("flip byte %d bit %d: corrupted frame accepted", i, bit)
			}
		}
	}
}
