package wire

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// alwaysStage forces staged mode from the first send: every gap counts as
// a burst and a burst of one is enough to enter.
func alwaysStage() CoalescerConfig {
	return CoalescerConfig{BurstGap: time.Hour, EnterBurst: 1}
}

// gateSend is a send func whose first call blocks until released, so a
// test can pin the flusher mid-send and pile frames up behind it
// deterministically.
type gateSend struct {
	mu      sync.Mutex
	sent    []Frame
	block   chan struct{}
	blocked chan struct{}
	once    sync.Once
}

func newGateSend() *gateSend {
	return &gateSend{block: make(chan struct{}), blocked: make(chan struct{})}
}

func (g *gateSend) send(f *Frame) error {
	first := false
	g.once.Do(func() { first = true })
	if first {
		close(g.blocked)
		<-g.block
	}
	g.mu.Lock()
	g.sent = append(g.sent, f.Clone())
	g.mu.Unlock()
	return nil
}

func (g *gateSend) frames() []Frame {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]Frame(nil), g.sent...)
}

func TestCoalescerPassthroughWhenNotCapable(t *testing.T) {
	var sent []Frame
	co := NewCoalescer(1, func(f *Frame) error {
		sent = append(sent, f.Clone())
		return nil
	}, CoalescerConfig{})
	defer co.Close()
	f := trainMember(0)
	if err := co.Send(&f); err != nil {
		t.Fatal(err)
	}
	if len(sent) != 1 || sent[0].Kind != KindRequest {
		t.Fatalf("expected 1 untouched frame, got %v", sent)
	}
	st := co.Stats()
	if st.DirectSends != 1 || st.TrainsSent != 0 || st.StagedFrames != 0 {
		t.Fatalf("stats = %+v, want pure passthrough", st)
	}
}

func TestCoalescerInlineWhenIdle(t *testing.T) {
	sendErr := errors.New("transport down")
	var sent []Frame
	fail := false
	co := NewCoalescer(1, func(f *Frame) error {
		if fail {
			return sendErr
		}
		sent = append(sent, f.Clone())
		return nil
	}, CoalescerConfig{})
	defer co.Close()
	co.MarkCapable(3)
	if !co.Capable(3) {
		t.Fatal("MarkCapable did not stick")
	}

	// Sends spaced wider than the burst gap never build a burst: every
	// one goes inline, immediately, and the transport's error surfaces
	// to the caller.
	for i := 0; i < 5; i++ {
		f := trainMember(i)
		if err := co.Send(&f); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Microsecond)
	}
	fail = true
	f := trainMember(9)
	if err := co.Send(&f); !errors.Is(err, sendErr) {
		t.Fatalf("inline send error = %v, want %v", err, sendErr)
	}
	for _, g := range sent {
		if g.Kind == KindTrain {
			t.Fatalf("idle sender produced a train: %+v", g)
		}
	}
	st := co.Stats()
	if st.InlineSends != 6 || st.StagedFrames != 0 || st.TrainsSent != 0 {
		t.Fatalf("stats = %+v, want 6 inline sends and nothing staged", st)
	}
}

func TestCoalescerStagesBehindFlusher(t *testing.T) {
	gate := newGateSend()
	co := NewCoalescer(1, gate.send, alwaysStage())
	co.MarkCapable(3)

	// First staged frame wakes the flusher, which drains it alone — an
	// unwrapped solo send — and sticks in the gated transport.
	first := trainMember(0)
	if err := co.Send(&first); err != nil {
		t.Fatal(err)
	}
	<-gate.blocked

	// These pile up behind the pinned flusher; they must stage and
	// return without waiting for the transport.
	const staged = 6
	for i := 1; i <= staged; i++ {
		f := trainMember(i)
		if err := co.Send(&f); err != nil {
			t.Fatalf("staged send %d: %v", i, err)
		}
	}
	close(gate.block)
	co.Close() // waits for the flusher's final drain

	frames := gate.frames()
	if len(frames) != 2 {
		t.Fatalf("transport saw %d frames, want 2 (solo + one train): %v", len(frames), frames)
	}
	if frames[0].Kind != KindRequest || frames[0].ReqID != first.ReqID {
		t.Fatalf("first frame is not the unwrapped solo member: %+v", frames[0])
	}
	tf := frames[1]
	if tf.Kind != KindTrain || tf.Dst.Node != 3 || tf.Src.Node != 1 || tf.Object != KernelObject {
		t.Fatalf("second frame is not a well-addressed train: %+v", tf)
	}
	if tf.Flags&FlagTrains == 0 || tf.Flags&FlagOneWay == 0 {
		t.Fatalf("train flags = %04x, want FlagOneWay|FlagTrains set", tf.Flags)
	}
	var ids []uint64
	members, rejected, err := ForEachTrainMember(tf.Payload, func(m *Frame) {
		ids = append(ids, m.ReqID)
	})
	if err != nil || rejected != 0 || members != staged {
		t.Fatalf("train unpack: members=%d rejected=%d err=%v", members, rejected, err)
	}
	for i, id := range ids {
		if want := uint64(100 + i + 1); id != want {
			t.Fatalf("member %d reqID = %d, want %d (staging order preserved)", i, id, want)
		}
	}
	st := co.Stats()
	if st.StagedFrames != staged+1 || st.SoloFlushes != 1 || st.TrainsSent != 1 ||
		st.TrainFrames != staged || st.FlushDrain != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.AvgFill(); got != float64(staged) {
		t.Fatalf("AvgFill = %v, want %d", got, staged)
	}
}

func TestCoalescerSplitsAtMaxFrames(t *testing.T) {
	gate := newGateSend()
	cfg := alwaysStage()
	cfg.MaxFrames = 3
	co := NewCoalescer(1, gate.send, cfg)
	co.MarkCapable(3)

	first := trainMember(0)
	if err := co.Send(&first); err != nil {
		t.Fatal(err)
	}
	<-gate.blocked
	for i := 1; i <= 7; i++ {
		f := trainMember(i)
		if err := co.Send(&f); err != nil {
			t.Fatal(err)
		}
	}
	close(gate.block)
	co.Close()

	// 7 members at cap 3 chunk as 3+3+1; the final single-member chunk is
	// unwrapped, so the transport sees solo, train(3), train(3), solo.
	var trains, carried, solos int
	for i, f := range gate.frames() {
		if i == 0 {
			continue // the pinned solo
		}
		switch f.Kind {
		case KindTrain:
			members, rejected, err := ForEachTrainMember(f.Payload, func(m *Frame) {})
			if err != nil || rejected != 0 {
				t.Fatalf("unpack: rejected=%d err=%v", rejected, err)
			}
			if members > 3 {
				t.Fatalf("train carries %d members, cap is 3", members)
			}
			trains++
			carried += members
		case KindRequest:
			solos++
		default:
			t.Fatalf("unexpected frame kind %v", f.Kind)
		}
	}
	if trains != 2 || carried != 6 || solos != 1 {
		t.Fatalf("got %d trains carrying %d + %d solos, want 2 trains carrying 6 + 1 solo", trains, carried, solos)
	}
	if st := co.Stats(); st.FlushFull != 2 || st.FlushDrain != 0 || st.SoloFlushes != 2 {
		t.Fatalf("flush reasons = full:%d drain:%d solo:%d, want 2/0/2", st.FlushFull, st.FlushDrain, st.SoloFlushes)
	}
}

func TestCoalescerAdaptiveModeSwitch(t *testing.T) {
	var mu sync.Mutex
	var sent []Frame
	co := NewCoalescer(1, func(f *Frame) error {
		mu.Lock()
		sent = append(sent, f.Clone())
		mu.Unlock()
		return nil
	}, CoalescerConfig{})
	co.MarkCapable(3)

	// A tight send loop is one long burst: after EnterBurst back-to-back
	// sends the destination must flip to staged mode and start handing
	// frames to the flusher.
	const total = 400
	for i := 0; i < total; i++ {
		f := trainMember(i)
		if err := co.Send(&f); err != nil {
			t.Fatal(err)
		}
	}
	co.Close()

	st := co.Stats()
	if st.StagedFrames == 0 {
		t.Fatalf("stats = %+v: tight loop never tripped staged mode", st)
	}
	if st.InlineSends == 0 {
		t.Fatalf("stats = %+v: first sends should have been inline", st)
	}
	// Every frame must come out exactly once: inline, solo, or in a train.
	mu.Lock()
	defer mu.Unlock()
	delivered := 0
	for i := range sent {
		if sent[i].Kind == KindTrain {
			members, rejected, err := ForEachTrainMember(sent[i].Payload, func(*Frame) {})
			if err != nil || rejected != 0 {
				t.Fatalf("unpack: rejected=%d err=%v", rejected, err)
			}
			delivered += members
		} else {
			delivered++
		}
	}
	if delivered != total {
		t.Fatalf("delivered %d frames, want %d", delivered, total)
	}
	if st.InlineSends+st.StagedFrames != total {
		t.Fatalf("stats = %+v: inline+staged != %d", st, total)
	}
}

func TestCoalescerUrgentAndOversizedBypass(t *testing.T) {
	var sent []Frame
	co := NewCoalescer(1, func(f *Frame) error {
		sent = append(sent, f.Clone())
		return nil
	}, CoalescerConfig{MaxBytes: 128})
	defer co.Close()
	co.MarkCapable(3)

	urgent := trainMember(0)
	urgent.Flags |= FlagUrgent
	if err := co.Send(&urgent); err != nil {
		t.Fatal(err)
	}
	big := trainMember(1)
	big.Payload = make([]byte, 256)
	if err := co.Send(&big); err != nil {
		t.Fatal(err)
	}
	for _, f := range sent {
		if f.Kind == KindTrain {
			t.Fatalf("urgent/oversized frame rode a train: %+v", f)
		}
	}
	if st := co.Stats(); st.DirectSends != 2 {
		t.Fatalf("DirectSends = %d, want 2", st.DirectSends)
	}
}

func TestCoalescerCloseIsIdempotentAndSendsPassThrough(t *testing.T) {
	var sent []Frame
	co := NewCoalescer(1, func(f *Frame) error {
		sent = append(sent, f.Clone())
		return nil
	}, alwaysStage())
	co.MarkCapable(3)
	co.Close()
	co.Close()
	f := trainMember(0)
	if err := co.Send(&f); err != nil {
		t.Fatal(err)
	}
	if len(sent) != 1 || sent[0].Kind != KindRequest {
		t.Fatalf("post-Close send not inline: %v", sent)
	}
	if st := co.Stats(); st.DirectSends != 1 || st.StagedFrames != 0 {
		t.Fatalf("stats = %+v, want direct passthrough after Close", st)
	}
}
