package wire

import (
	"bytes"
	"testing"
	"time"
)

// Fuzz entry point for the optional payload-header parsers: priority
// (0xF7), session (0xF8), and deadline (0xF6) — the headers every
// request payload may open with, parsed below the codec by the kernel
// and rpc layers (the 0xF5 trace header lives in internal/obs and has
// its own target there). The contract under hostile input mirrors the
// frame decoder's: never panic, never consume bytes for a malformed
// header (the splitters hand the payload through untouched and the
// codec layer reports it), and every accepted header must re-encode to
// something that parses back to the same values. Run with e.g.
//
//	go test -fuzz=FuzzPayloadHeaders -fuzztime=30s ./internal/wire
//
// Seed corpus: a fully-stamped payload (priority → session → deadline →
// trace, the canonical order), each header alone, truncated uvarints,
// and a garbage 0xF4 prefix — as f.Add seeds below and as committed
// files under testdata/fuzz/FuzzPayloadHeaders.
func FuzzPayloadHeaders(f *testing.F) {
	full := AppendPriorityHeader(nil, PriorityHigh)
	full = AppendSessionHeader(full, 5, 2)
	full = AppendDeadlineHeader(full, time.Microsecond)
	full = append(full, 0xF5, 0x01, 0x02) // trace header, opaque at this layer
	full = append(full, "body"...)
	f.Add(full)
	f.Add(AppendSessionHeader([]byte(nil), 5, 2))
	f.Add(AppendDeadlineHeader([]byte(nil), time.Millisecond))
	f.Add([]byte{SessionMagic, 0x85})          // truncated session uvarint
	f.Add([]byte{DeadlineMagic})               // deadline magic, no budget
	f.Add([]byte{PriorityMagic})               // priority magic, no class
	f.Add([]byte{0xF4, 'j', 'u', 'n', 'k'})    // unassigned header magic
	f.Add(full[:len(full)-6])                  // truncated mid-chain
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Each splitter must return a tail of its input: same bytes,
		// never grown, never rewritten in place.
		checkTail := func(name string, rest []byte) {
			if len(rest) > len(data) || (len(rest) > 0 && !bytes.HasSuffix(data, rest)) {
				t.Fatalf("%s returned a non-suffix rest (%d of %d bytes)", name, len(rest), len(data))
			}
		}

		prio, prest := SplitPriorityHeader(data)
		checkTail("SplitPriorityHeader", prest)
		if len(prest) != len(data) && prio != PriorityNormal {
			// Consumed non-normal headers round-trip exactly: the priority
			// header is a fixed two-byte form with no redundancy. (An
			// explicit normal-class header is legal on the wire but
			// re-encodes to nothing — normal is the headerless default.)
			re := AppendPriorityHeader(nil, prio)
			if !bytes.Equal(re, data[:2]) {
				t.Fatalf("priority round trip changed bytes: %x != %x", re, data[:2])
			}
		}

		sid, seq, srest := SplitSessionHeader(data)
		checkTail("SplitSessionHeader", srest)
		if len(srest) != len(data) {
			// Uvarint fields admit non-minimal encodings, so compare the
			// re-parse, not the bytes: re-encoding the parsed identity and
			// re-parsing it must yield the identity back.
			if sid == 0 {
				// A parsed sid of zero cannot re-encode (zero means "no
				// session"), but the splitter may still consume it.
				return
			}
			s2, q2, r2 := SplitSessionHeader(append(AppendSessionHeader(nil, sid, seq), srest...))
			if s2 != sid || q2 != seq || !bytes.Equal(r2, srest) {
				t.Fatalf("session round trip: got (%d,%d), want (%d,%d)", s2, q2, sid, seq)
			}
		}

		// PeekSession must agree with the splitters: what it reports is
		// exactly what splitting priority-then-session finds.
		if psid, pseq, ok := PeekSession(data); ok {
			wsid, wseq, wrest := SplitSessionHeader(prest)
			if wsid == 0 && len(wrest) == len(prest) {
				t.Fatal("PeekSession ok but split found no session header")
			}
			if psid != wsid || pseq != wseq {
				t.Fatalf("PeekSession (%d,%d) disagrees with split (%d,%d)", psid, pseq, wsid, wseq)
			}
		}

		budget, drest := SplitDeadlineHeader(data)
		checkTail("SplitDeadlineHeader", drest)
		if len(drest) != len(data) && budget > 0 {
			b2, r2 := SplitDeadlineHeader(append(AppendDeadlineHeader(nil, budget), drest...))
			if b2 != budget || !bytes.Equal(r2, drest) {
				t.Fatalf("deadline round trip: got %v, want %v", b2, budget)
			}
		}

		// Rewriting the deadline must preserve everything in front of it
		// (the session identity in particular) and install the new budget;
		// payloads without a deadline header pass through untouched.
		out := RewriteDeadlineHeader(data, time.Second)
		if !HasDeadlineHeader(data) {
			if !bytes.Equal(out, data) {
				t.Fatal("rewrite modified a payload with no deadline header")
			}
			return
		}
		osid, oseq, ook := PeekSession(data)
		rsid, rseq, rok := PeekSession(out)
		if rok != ook {
			t.Fatal("rewrite changed session header presence")
		}
		if ook && (rsid != osid || rseq != oseq) {
			t.Fatalf("rewrite changed session identity: (%d,%d) != (%d,%d)", rsid, rseq, osid, oseq)
		}
		if PeekPriority(out) != PeekPriority(data) {
			t.Fatal("rewrite changed priority class")
		}
	})
}
