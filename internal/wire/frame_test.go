package wire

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func sampleFrame() Frame {
	return Frame{
		Kind:    KindRequest,
		Flags:   FlagRetransmit,
		ReqID:   0xdeadbeef,
		Src:     Addr{Node: 1, Context: 2},
		Dst:     Addr{Node: 3, Context: 4},
		Object:  99,
		Payload: []byte("the payload"),
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := sampleFrame()
	buf, err := f.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != f.EncodedLen() {
		t.Errorf("EncodedLen = %d, wrote %d", f.EncodedLen(), len(buf))
	}
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("Decode consumed %d of %d", n, len(buf))
	}
	if got.Kind != f.Kind || got.Flags != f.Flags || got.ReqID != f.ReqID ||
		got.Src != f.Src || got.Dst != f.Dst || got.Object != f.Object ||
		!bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, f)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	roundTrip := func(kind uint8, flags uint16, reqID uint64, sn, sc, dn, dc uint32, obj uint64, payload []byte) bool {
		f := Frame{
			Kind:  Kind(kind),
			Flags: flags,
			ReqID: reqID,
			Src:   Addr{Node: NodeID(sn), Context: ContextID(sc)},
			Dst:   Addr{Node: NodeID(dn), Context: ContextID(dc)},

			Object:  ObjectID(obj),
			Payload: payload,
		}
		buf, err := f.Encode(nil)
		if err != nil {
			return false
		}
		got, n, err := Decode(buf)
		return err == nil && n == len(buf) &&
			got.Kind == f.Kind && got.Flags == f.Flags && got.ReqID == f.ReqID &&
			got.Src == f.Src && got.Dst == f.Dst && got.Object == f.Object &&
			bytes.Equal(got.Payload, f.Payload)
	}
	if err := quick.Check(roundTrip, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFrameCorruption(t *testing.T) {
	f := sampleFrame()
	buf, err := f.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Flipping any single byte must be detected (magic, version, or CRC error).
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x01
		if _, _, err := Decode(mut); err == nil {
			// A flipped payload-length byte may shorten the frame below
			// its real size; that also must fail, so reaching here is a bug.
			t.Errorf("Decode accepted frame with byte %d flipped", i)
		}
	}
}

func TestFrameDecodeShort(t *testing.T) {
	f := sampleFrame()
	buf, err := f.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(buf); i++ {
		if _, _, err := Decode(buf[:i]); err == nil {
			t.Errorf("Decode accepted %d-byte prefix of %d-byte frame", i, len(buf))
		}
	}
}

func TestFrameBadMagicAndVersion(t *testing.T) {
	f := sampleFrame()
	buf, _ := f.Encode(nil)
	bad := append([]byte(nil), buf...)
	bad[0] = 0x00
	if _, _, err := Decode(bad); err != ErrBadMagic {
		t.Errorf("bad magic: got %v, want ErrBadMagic", err)
	}
	bad = append([]byte(nil), buf...)
	bad[2] = 99
	if _, _, err := Decode(bad); err != ErrBadVersion {
		t.Errorf("bad version: got %v, want ErrBadVersion", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	f := Frame{Kind: KindRequest, Payload: make([]byte, MaxPayload+1)}
	if _, err := f.Encode(nil); err != ErrTooLarge {
		t.Errorf("Encode(oversize) = %v, want ErrTooLarge", err)
	}
}

func TestFrameStreamReadWrite(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{
		sampleFrame(),
		{Kind: KindReply, ReqID: 7, Payload: nil},
		{Kind: KindCustom + 3, ReqID: 8, Payload: bytes.Repeat([]byte{0x55}, 4096)},
	}
	for i := range frames {
		if err := WriteFrame(&buf, &frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != frames[i].Kind || got.ReqID != frames[i].ReqID ||
			!bytes.Equal(got.Payload, frames[i].Payload) {
			t.Errorf("frame %d mismatch", i)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("ReadFrame on empty stream = %v, want io.EOF", err)
	}
}

func TestFrameClone(t *testing.T) {
	f := sampleFrame()
	c := f.Clone()
	f.Payload[0] = 'X'
	if c.Payload[0] == 'X' {
		t.Error("Clone shares payload storage with original")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindRequest:    "request",
		KindInvalidate: "invalidate",
		KindCustom:     "custom+0",
		KindCustom + 5: "custom+5",
		Kind(40):       "kind(40)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", uint8(k), got, want)
		}
	}
}

func BenchmarkFrameEncode(b *testing.B) {
	f := sampleFrame()
	f.Payload = bytes.Repeat([]byte{0xaa}, 1024)
	buf := make([]byte, 0, f.EncodedLen())
	b.SetBytes(int64(f.EncodedLen()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = f.Encode(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameDecode(b *testing.B) {
	f := sampleFrame()
	f.Payload = bytes.Repeat([]byte{0xaa}, 1024)
	buf, _ := f.Encode(nil)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	// Hostile input of any shape must produce an error, never a panic or
	// an out-of-range read.
	check := func(data []byte) bool {
		f, n, err := Decode(data)
		if err != nil {
			return n == 0
		}
		return n > 0 && len(f.Payload) <= len(data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// And near-valid input: corrupt a real frame at random offsets with
	// random values (quick only generates short slices by default).
	f := sampleFrame()
	buf, _ := f.Encode(nil)
	mut := func(off uint16, val byte) bool {
		b := append([]byte(nil), buf...)
		b[int(off)%len(b)] = val
		_, _, _ = Decode(b)
		return true
	}
	if err := quick.Check(mut, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
