package wire

import (
	"bytes"
	"testing"
	"time"
)

func TestPriorityHeaderRoundTrip(t *testing.T) {
	body := []byte("payload")
	for _, pri := range []Priority{PriorityHigh, PriorityLow} {
		p := append(AppendPriorityHeader(nil, pri), body...)
		got, rest := SplitPriorityHeader(p)
		if got != pri || !bytes.Equal(rest, body) {
			t.Errorf("split(%s) = (%s, %q)", pri, got, rest)
		}
		if peeked := PeekPriority(p); peeked != pri {
			t.Errorf("peek(%s) = %s", pri, peeked)
		}
	}
	// Normal priority is the default and writes nothing on the wire.
	if got := AppendPriorityHeader(nil, PriorityNormal); len(got) != 0 {
		t.Errorf("normal priority encoded %d bytes", len(got))
	}
}

// TestPriorityHeaderlessPeers pins the compatibility contract: payloads
// from peers that predate the priority header — including ones that look
// almost like a header — classify as PriorityNormal and pass through
// SplitPriorityHeader untouched.
func TestPriorityHeaderlessPeers(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"codec body", []byte{0x01, 0x02, 0x03}},
		{"deadline header first", append(AppendDeadlineHeader(nil, time.Second), 0x01)},
		{"bare magic, truncated", []byte{PriorityMagic}},
		{"magic mid-payload", []byte{0x05, PriorityMagic, 0x01}},
	}
	for _, tc := range cases {
		if got := PeekPriority(tc.payload); got != PriorityNormal {
			t.Errorf("%s: peek = %s, want normal", tc.name, got)
		}
		pri, rest := SplitPriorityHeader(tc.payload)
		if pri != PriorityNormal || !bytes.Equal(rest, tc.payload) {
			t.Errorf("%s: split = (%s, %q), want untouched", tc.name, pri, rest)
		}
	}
}

func TestPriorityString(t *testing.T) {
	for pri, want := range map[Priority]string{
		PriorityNormal: "normal",
		PriorityHigh:   "high",
		PriorityLow:    "low",
		Priority(9):    "priority(?)",
	} {
		if got := pri.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", pri, got, want)
		}
	}
}

// TestDeadlineBehindPriority covers the header ordering contract: the
// priority header travels first, and the deadline helpers must see
// through it.
func TestDeadlineBehindPriority(t *testing.T) {
	body := []byte("body")
	p := AppendPriorityHeader(nil, PriorityHigh)
	p = AppendDeadlineHeader(p, time.Second)
	p = append(p, body...)

	if !HasDeadlineHeader(p) {
		t.Fatal("deadline header behind priority header not detected")
	}
	if HasDeadlineHeader(AppendPriorityHeader(nil, PriorityLow)) {
		t.Error("priority-only payload claims a deadline header")
	}

	out := RewriteDeadlineHeader(p, 100*time.Millisecond)
	pri, rest := SplitPriorityHeader(out)
	if pri != PriorityHigh {
		t.Fatalf("rewrite dropped the priority header: %s", pri)
	}
	budget, rest := SplitDeadlineHeader(rest)
	if budget != 100*time.Millisecond || !bytes.Equal(rest, body) {
		t.Fatalf("rewrite behind priority = (%v, %q)", budget, rest)
	}
}

func TestPushbackRoundTrip(t *testing.T) {
	p := AppendPushback(nil, 25*time.Millisecond)
	if got := DecodePushback(p); got != 25*time.Millisecond {
		t.Errorf("decode = %s, want 25ms", got)
	}
	// Negative hints clamp to zero; malformed and empty payloads read as
	// "no hint" rather than failing.
	if got := DecodePushback(AppendPushback(nil, -time.Second)); got != 0 {
		t.Errorf("negative hint decoded as %s", got)
	}
	if got := DecodePushback(nil); got != 0 {
		t.Errorf("empty payload decoded as %s", got)
	}
	if got := DecodePushback([]byte{0x80}); got != 0 {
		t.Errorf("truncated varint decoded as %s", got)
	}
}
