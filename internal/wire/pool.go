// Frame and payload-buffer pooling for the invocation fast path.
//
// Ownership rules (see DESIGN.md "Performance"):
//
//   - Only *sender-side* frames are pooled. Both transports copy a frame
//     out of the caller's hands before Send returns (netsim clones at
//     enqueue time, the TCP transport encodes into its write buffer), so
//     a sender may Release a frame as soon as Send has returned.
//   - Inbound frames are never pooled: the kernel's Handler contract
//     gives the receiving handler ownership for as long as it likes, and
//     layers above (rpc reply cache, RemoteError) retain response
//     payloads past the call.
//   - Pending-response channels are never pooled: a late reply delivered
//     into a recycled channel that a different call now owns would
//     mis-correlate request and response. Channels stay one-per-call.
//   - A released frame or buffer must not be touched again; the payload
//     slice handed to a pooled frame is owned by whoever allocated it
//     and is not recycled by Frame.Release.
package wire

import (
	"sync"
	"sync/atomic"
)

var (
	frameGets   atomic.Uint64
	frameMisses atomic.Uint64
	bufGets     atomic.Uint64
	bufMisses   atomic.Uint64
)

var framePool = sync.Pool{New: func() any {
	frameMisses.Add(1)
	return new(Frame)
}}

// GetFrame returns a zeroed frame from the pool. Callers that cannot
// prove the frame is dead after handoff must simply not Release it —
// an un-released frame is ordinary garbage, never a correctness bug.
func GetFrame() *Frame {
	frameGets.Add(1)
	return framePool.Get().(*Frame)
}

// Release zeroes the frame and returns it to the pool. The payload
// slice is dropped, not recycled (it may still be referenced by a
// payload buffer with its own lifecycle).
func (f *Frame) Release() {
	*f = Frame{}
	framePool.Put(f)
}

// PayloadBuf is a pooled append buffer for building frame payloads.
// Use pattern:
//
//	pb := wire.GetBuf()
//	pb.B = append(pb.B[:0], ...)   // or any encoder that appends
//	... send; transports copy before Send returns ...
//	pb.Release()
type PayloadBuf struct{ B []byte }

// Oversized buffers are dropped rather than pooled so one giant payload
// doesn't pin memory for the lifetime of the pool.
const maxPooledBuf = 64 << 10

var bufPool = sync.Pool{New: func() any {
	bufMisses.Add(1)
	return &PayloadBuf{B: make([]byte, 0, 1024)}
}}

// GetBuf returns a length-zero payload buffer from the pool.
func GetBuf() *PayloadBuf {
	bufGets.Add(1)
	return bufPool.Get().(*PayloadBuf)
}

// Release returns the buffer to the pool. Safe on nil.
func (p *PayloadBuf) Release() {
	if p == nil || cap(p.B) > maxPooledBuf {
		return
	}
	p.B = p.B[:0]
	bufPool.Put(p)
}

// PoolStats is a snapshot of pool traffic. A get that the pool could
// not serve from a recycled object counts as a miss (the pool's New
// ran); hit rate = 1 - misses/gets once the pools are warm.
type PoolStats struct {
	FrameGets   uint64
	FrameMisses uint64
	BufGets     uint64
	BufMisses   uint64
}

// ReadPoolStats snapshots the global pool counters.
func ReadPoolStats() PoolStats {
	return PoolStats{
		FrameGets:   frameGets.Load(),
		FrameMisses: frameMisses.Load(),
		BufGets:     bufGets.Load(),
		BufMisses:   bufMisses.Load(),
	}
}

// FrameHitRate reports the fraction of frame gets served from the pool
// (0 when no gets have happened).
func (s PoolStats) FrameHitRate() float64 { return hitRate(s.FrameGets, s.FrameMisses) }

// BufHitRate reports the fraction of buffer gets served from the pool.
func (s PoolStats) BufHitRate() float64 { return hitRate(s.BufGets, s.BufMisses) }

func hitRate(gets, misses uint64) float64 {
	if gets == 0 {
		return 0
	}
	if misses > gets {
		misses = gets
	}
	return float64(gets-misses) / float64(gets)
}
