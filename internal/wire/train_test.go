package wire

import (
	"bytes"
	"testing"
)

func trainMember(i int) Frame {
	return Frame{
		Kind:    KindRequest,
		ReqID:   uint64(100 + i),
		Src:     Addr{Node: 1, Context: ContextID(i)},
		Dst:     Addr{Node: 3, Context: 4},
		Object:  ObjectID(7 + i),
		Payload: []byte{byte(i), byte(i + 1), byte(i + 2)},
	}
}

func buildTrain(t *testing.T, n int) ([]byte, []Frame) {
	t.Helper()
	var payload []byte
	var members []Frame
	for i := 0; i < n; i++ {
		m := trainMember(i)
		var err error
		payload, err = AppendTrainMember(payload, &m)
		if err != nil {
			t.Fatalf("AppendTrainMember(%d): %v", i, err)
		}
		members = append(members, m)
	}
	return payload, members
}

func TestTrainRoundTrip(t *testing.T) {
	payload, want := buildTrain(t, 5)
	var got []Frame
	members, rejected, err := ForEachTrainMember(payload, func(m *Frame) {
		got = append(got, m.Clone())
	})
	if err != nil || rejected != 0 {
		t.Fatalf("walk: members=%d rejected=%d err=%v", members, rejected, err)
	}
	if members != len(want) || len(got) != len(want) {
		t.Fatalf("delivered %d members, want %d", members, len(want))
	}
	for i := range want {
		if got[i].ReqID != want[i].ReqID || got[i].Object != want[i].Object ||
			!bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Errorf("member %d mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestTrainFrameRoundTrip(t *testing.T) {
	// A train rides inside an ordinary frame whose CRC covers the header
	// only; the container must round-trip through Encode/Decode.
	payload, _ := buildTrain(t, 3)
	tf := Frame{
		Kind:    KindTrain,
		Flags:   FlagOneWay | FlagTrains,
		Src:     Addr{Node: 1},
		Dst:     Addr{Node: 3},
		Object:  KernelObject,
		Payload: payload,
	}
	buf, err := tf.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := Decode(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("Decode: n=%d err=%v", n, err)
	}
	if got.Kind != KindTrain || !bytes.Equal(got.Payload, payload) {
		t.Fatalf("container mismatch: %+v", &got)
	}
}

// memberOffsets returns the byte range of each member's encoded frame
// (excluding its length prefix) within the train payload.
func memberOffsets(t *testing.T, payload []byte) [][2]int {
	t.Helper()
	var offs [][2]int
	pos := 0
	for pos < len(payload) {
		mlen, n, err := Uvarint(payload[pos:])
		if err != nil {
			t.Fatalf("framing at %d: %v", pos, err)
		}
		offs = append(offs, [2]int{pos + n, pos + n + int(mlen)})
		pos += n + int(mlen)
	}
	return offs
}

func TestTrainCorruptMemberRejectsOnlyMember(t *testing.T) {
	const total = 5
	base, want := buildTrain(t, total)
	offs := memberOffsets(t, base)

	cases := []struct {
		name   string
		victim int
		mutate func(member []byte) // member is the victim's encoded bytes
	}{
		{"payload bit flip", 1, func(m []byte) { m[headerLen] ^= 0x40 }},
		{"crc bit flip", 2, func(m []byte) { m[len(m)-1] ^= 0x01 }},
		{"header reqid flip", 3, func(m []byte) { m[6] ^= 0x80 }},
		{"bad magic", 0, func(m []byte) { m[0] ^= 0xff }},
		{"bad version", 4, func(m []byte) { m[2] ^= 0x02 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			payload := append([]byte(nil), base...)
			tc.mutate(payload[offs[tc.victim][0]:offs[tc.victim][1]])

			var got []uint64
			members, rejected, err := ForEachTrainMember(payload, func(m *Frame) {
				got = append(got, m.ReqID)
			})
			if err != nil {
				t.Fatalf("framing must survive member corruption, got %v", err)
			}
			if rejected != 1 || members != total-1 {
				t.Fatalf("members=%d rejected=%d, want %d/1", members, rejected, total-1)
			}
			for i, w := range want {
				if i == tc.victim {
					continue
				}
				found := false
				for _, id := range got {
					if id == w.ReqID {
						found = true
					}
				}
				if !found {
					t.Errorf("surviving member %d (reqID %d) was not delivered", i, w.ReqID)
				}
			}
		})
	}
}

func TestTrainDamagedFramingLosesTail(t *testing.T) {
	payload, _ := buildTrain(t, 4)
	offs := memberOffsets(t, payload)
	// Blow up the third member's length prefix: members 0 and 1 deliver,
	// framing is lost from member 2 on.
	payload[offs[2][0]-1] = 0xff // length prefix is the byte(s) before the member

	members, _, err := ForEachTrainMember(payload, func(m *Frame) {})
	if err != ErrTrainCorrupt {
		t.Fatalf("err = %v, want ErrTrainCorrupt", err)
	}
	if members != 2 {
		t.Fatalf("delivered %d members before framing loss, want 2", members)
	}
}

func TestTrainRejectsNestedTrain(t *testing.T) {
	inner, _ := buildTrain(t, 1)
	nested := Frame{Kind: KindTrain, Dst: Addr{Node: 3}, Payload: inner}
	if _, err := AppendTrainMember(nil, &nested); err != ErrTrainNested {
		t.Fatalf("AppendTrainMember(train) err = %v, want ErrTrainNested", err)
	}

	// A hand-forged nested train on the wire must be rejected at unpack.
	var payload []byte
	payload = AppendUvarint(payload, uint64(nested.EncodedLen()))
	var err error
	payload, err = nested.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	m := trainMember(0)
	payload, err = AppendTrainMember(payload, &m)
	if err != nil {
		t.Fatal(err)
	}
	members, rejected, err := ForEachTrainMember(payload, func(m *Frame) {
		if m.Kind == KindTrain {
			t.Error("nested train delivered")
		}
	})
	if err != nil || members != 1 || rejected != 1 {
		t.Fatalf("members=%d rejected=%d err=%v, want 1/1/nil", members, rejected, err)
	}
}

func TestTrainTruncatedPayload(t *testing.T) {
	payload, _ := buildTrain(t, 3)
	for cut := 1; cut < 12; cut++ {
		trunc := payload[:len(payload)-cut]
		if _, _, err := ForEachTrainMember(trunc, func(m *Frame) {}); err != ErrTrainCorrupt {
			t.Fatalf("cut %d: err = %v, want ErrTrainCorrupt", cut, err)
		}
	}
	// Empty payload is a legal (if pointless) train.
	if members, rejected, err := ForEachTrainMember(nil, func(m *Frame) {}); err != nil || members != 0 || rejected != 0 {
		t.Fatalf("empty train: members=%d rejected=%d err=%v", members, rejected, err)
	}
}

func TestTrainMemberLen(t *testing.T) {
	m := trainMember(0)
	payload, err := AppendTrainMember(nil, &m)
	if err != nil {
		t.Fatal(err)
	}
	if got := TrainMemberLen(&m); got != len(payload) {
		t.Fatalf("TrainMemberLen = %d, appended %d bytes", got, len(payload))
	}
}
