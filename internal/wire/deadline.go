package wire

import "time"

// Deadline budget header. A request payload may be prefixed with
// [DeadlineMagic, uvarint nanoseconds]: the caller's remaining deadline
// budget, relative so it is immune to clock skew. The primitives live
// here (not in core, which owns the policy) so the rpc layer below core
// can re-encode the shrinking budget on each retransmission without
// understanding the rest of the payload.
//
// DeadlineMagic follows the convention set by the obs trace header: codec
// tags occupy 1..13, so any leading byte ≥ 0xF0 is unambiguously a
// header. Headerless payloads from pre-deadline peers decode unchanged.
const DeadlineMagic = 0xF6

// AppendDeadlineHeader prefixes dst with the wire form of a remaining
// budget: [magic, uvarint nanoseconds]. Non-positive budgets append
// nothing (an already-expired call fails client-side anyway).
func AppendDeadlineHeader(dst []byte, budget time.Duration) []byte {
	if budget <= 0 {
		return dst
	}
	dst = append(dst, DeadlineMagic)
	return AppendUvarint(dst, uint64(budget))
}

// SplitDeadlineHeader strips a leading deadline header, returning the
// budget it carried (zero if absent) and the rest of the payload.
func SplitDeadlineHeader(payload []byte) (time.Duration, []byte) {
	if len(payload) == 0 || payload[0] != DeadlineMagic {
		return 0, payload
	}
	ns, n, err := Uvarint(payload[1:])
	if err != nil {
		return 0, payload
	}
	return time.Duration(ns), payload[1+n:]
}

// HasDeadlineHeader reports whether the payload opens with a deadline
// header — directly, or behind the priority and/or session headers that
// precede it (senders write priority first so the kernel can peek it,
// then the session identity, then the deadline).
func HasDeadlineHeader(payload []byte) bool {
	if len(payload) >= 2 && payload[0] == PriorityMagic {
		payload = payload[2:]
	}
	payload = skipSessionHeader(payload)
	return len(payload) > 0 && payload[0] == DeadlineMagic
}

// RewriteDeadlineHeader replaces a leading deadline header with one
// carrying budget, leaving everything around it untouched (priority and
// session headers in front of it are preserved byte-for-byte — the
// session identity in particular MUST survive every retransmission, or
// the server-side dedup it exists for stops recognizing the retry).
// Payloads without a leading deadline header come back unchanged. A
// non-positive budget is clamped to one nanosecond rather than dropped:
// a headerless payload would read as "no deadline", the opposite of an
// expired one.
func RewriteDeadlineHeader(payload []byte, budget time.Duration) []byte {
	var prefix []byte
	body := payload
	if len(body) >= 2 && body[0] == PriorityMagic {
		prefix, body = body[:2], body[2:]
	}
	if rest := skipSessionHeader(body); len(rest) != len(body) {
		prefix, body = payload[:len(payload)-len(rest)], rest
	}
	if len(body) == 0 || body[0] != DeadlineMagic {
		return payload
	}
	_, rest := SplitDeadlineHeader(body)
	if len(rest) == len(body) {
		return payload // malformed header: leave it alone
	}
	if budget <= 0 {
		budget = time.Nanosecond
	}
	out := append(make([]byte, 0, len(payload)), prefix...)
	out = AppendDeadlineHeader(out, budget)
	return append(out, rest...)
}
