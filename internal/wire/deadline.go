package wire

import "time"

// Deadline budget header. A request payload may be prefixed with
// [DeadlineMagic, uvarint nanoseconds]: the caller's remaining deadline
// budget, relative so it is immune to clock skew. The primitives live
// here (not in core, which owns the policy) so the rpc layer below core
// can re-encode the shrinking budget on each retransmission without
// understanding the rest of the payload.
//
// DeadlineMagic follows the convention set by the obs trace header: codec
// tags occupy 1..13, so any leading byte ≥ 0xF0 is unambiguously a
// header. Headerless payloads from pre-deadline peers decode unchanged.
const DeadlineMagic = 0xF6

// AppendDeadlineHeader prefixes dst with the wire form of a remaining
// budget: [magic, uvarint nanoseconds]. Non-positive budgets append
// nothing (an already-expired call fails client-side anyway).
func AppendDeadlineHeader(dst []byte, budget time.Duration) []byte {
	if budget <= 0 {
		return dst
	}
	dst = append(dst, DeadlineMagic)
	return AppendUvarint(dst, uint64(budget))
}

// SplitDeadlineHeader strips a leading deadline header, returning the
// budget it carried (zero if absent) and the rest of the payload.
func SplitDeadlineHeader(payload []byte) (time.Duration, []byte) {
	if len(payload) == 0 || payload[0] != DeadlineMagic {
		return 0, payload
	}
	ns, n, err := Uvarint(payload[1:])
	if err != nil {
		return 0, payload
	}
	return time.Duration(ns), payload[1+n:]
}

// RewriteDeadlineHeader replaces a leading deadline header with one
// carrying budget, leaving everything after it untouched. Payloads that
// do not start with a deadline header come back unchanged. A non-positive
// budget is clamped to one nanosecond rather than dropped: a headerless
// payload would read as "no deadline", the opposite of an expired one.
func RewriteDeadlineHeader(payload []byte, budget time.Duration) []byte {
	if len(payload) == 0 || payload[0] != DeadlineMagic {
		return payload
	}
	_, rest := SplitDeadlineHeader(payload)
	if len(rest) == len(payload) {
		return payload // malformed header: leave it alone
	}
	if budget <= 0 {
		budget = time.Nanosecond
	}
	out := AppendDeadlineHeader(make([]byte, 0, len(payload)), budget)
	return append(out, rest...)
}
