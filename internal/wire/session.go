package wire

// Session header. A request payload may carry [SessionMagic, uvarint
// session id, uvarint sequence]: the caller's exactly-once identity for
// this invocation. Servers that keep a session dedup table use it to
// recognize a retransmission — or a failover replay of the same logical
// call against an alternate binding — and answer from the cached reply
// instead of re-executing. The primitives live here (like the priority
// and deadline headers) because layers below core must read the identity
// without understanding the rest of the payload.
//
// SessionMagic follows the optional-header convention: codec tags occupy
// 1..13, so any leading byte ≥ 0xF0 is unambiguously a header, and
// headerless payloads from session-less peers decode unchanged.
//
// Header order on the wire is priority → session → deadline → trace:
// the kernel classifies by peeking payload[0] (priority must lead), and
// the rpc layer rewrites the deadline header on each retransmission, so
// the variable-length session header sits between them where neither
// rewrite disturbs it.
const SessionMagic = 0xF8

// AppendSessionHeader prefixes dst with a session header. A zero session
// id appends nothing — zero means "no session", so unstamped calls cost
// no bytes on the wire.
func AppendSessionHeader(dst []byte, sid, seq uint64) []byte {
	if sid == 0 {
		return dst
	}
	dst = append(dst, SessionMagic)
	dst = AppendUvarint(dst, sid)
	return AppendUvarint(dst, seq)
}

// SplitSessionHeader strips a leading session header, returning the
// identity it carried (zero if absent) and the rest of the payload.
// Malformed headers are left in place, like the other header splitters.
func SplitSessionHeader(payload []byte) (sid, seq uint64, rest []byte) {
	if len(payload) == 0 || payload[0] != SessionMagic {
		return 0, 0, payload
	}
	s, n, err := Uvarint(payload[1:])
	if err != nil {
		return 0, 0, payload
	}
	q, m, err := Uvarint(payload[1+n:])
	if err != nil {
		return 0, 0, payload
	}
	return s, q, payload[1+n+m:]
}

// PeekSession reads a request's session identity without consuming
// anything, skipping an optional leading priority header (which senders
// write first so the kernel can classify by payload[0]). ok is false for
// unstamped or malformed payloads.
func PeekSession(payload []byte) (sid, seq uint64, ok bool) {
	if len(payload) >= 2 && payload[0] == PriorityMagic {
		payload = payload[2:]
	}
	if len(payload) == 0 || payload[0] != SessionMagic {
		return 0, 0, false
	}
	s, n, err := Uvarint(payload[1:])
	if err != nil {
		return 0, 0, false
	}
	q, _, err := Uvarint(payload[1+n:])
	if err != nil {
		return 0, 0, false
	}
	return s, q, true
}

// skipSessionHeader returns the payload past a well-formed leading
// session header, or the payload unchanged when none leads it. The
// deadline-header primitives use it to look through the session header
// the same way they look through the priority header.
func skipSessionHeader(payload []byte) []byte {
	if len(payload) == 0 || payload[0] != SessionMagic {
		return payload
	}
	_, n, err := Uvarint(payload[1:])
	if err != nil {
		return payload
	}
	_, m, err := Uvarint(payload[1+n:])
	if err != nil {
		return payload
	}
	return payload[1+n+m:]
}
