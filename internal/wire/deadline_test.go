package wire

import (
	"bytes"
	"testing"
	"time"
)

func TestDeadlineHeaderRoundTrip(t *testing.T) {
	body := []byte("payload")
	p := append(AppendDeadlineHeader(nil, 250*time.Millisecond), body...)
	budget, rest := SplitDeadlineHeader(p)
	if budget != 250*time.Millisecond || !bytes.Equal(rest, body) {
		t.Fatalf("split = (%v, %q)", budget, rest)
	}
	// Non-positive budgets encode nothing.
	if got := AppendDeadlineHeader(nil, 0); len(got) != 0 {
		t.Errorf("zero budget encoded %d bytes", len(got))
	}
	if b, rest := SplitDeadlineHeader(body); b != 0 || !bytes.Equal(rest, body) {
		t.Errorf("headerless split = (%v, %q)", b, rest)
	}
}

func TestRewriteDeadlineHeader(t *testing.T) {
	body := []byte("body")
	p := append(AppendDeadlineHeader(nil, time.Second), body...)

	out := RewriteDeadlineHeader(p, 100*time.Millisecond)
	budget, rest := SplitDeadlineHeader(out)
	if budget != 100*time.Millisecond || !bytes.Equal(rest, body) {
		t.Fatalf("rewritten = (%v, %q)", budget, rest)
	}

	// Headerless payloads come back unchanged (same backing array).
	if got := RewriteDeadlineHeader(body, time.Second); !bytes.Equal(got, body) {
		t.Errorf("headerless rewrite = %q", got)
	}

	// An expired budget is clamped, not dropped: dropping the header would
	// read as "no deadline".
	out = RewriteDeadlineHeader(p, -time.Second)
	budget, rest = SplitDeadlineHeader(out)
	if budget != time.Nanosecond || !bytes.Equal(rest, body) {
		t.Errorf("expired rewrite = (%v, %q), want clamp to 1ns", budget, rest)
	}

	// A truncated header (magic byte, no varint) is left alone.
	junk := []byte{DeadlineMagic}
	if got := RewriteDeadlineHeader(junk, time.Second); !bytes.Equal(got, junk) {
		t.Errorf("malformed rewrite = %v", got)
	}
}
