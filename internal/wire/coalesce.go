// Per-destination outbound coalescer: the sender side of frame trains.
//
// The flush policy is adaptive, Nagle-style, with no timers on the hot
// path. Each destination runs in one of two modes:
//
//   - Inline (the default): Send transmits the frame immediately,
//     frame-at-a-time, exactly as an unwrapped transport would. A lone
//     frame is never delayed at all and its send error propagates to the
//     caller.
//   - Staged (under load): Send appends the already-encoded frame to the
//     destination's train buffer and wakes that destination's flusher
//     goroutine. The flusher drains whatever has accumulated by the time
//     it is scheduled into KindTrain container frames — one header/CRC/
//     transport-send amortized across every member — and keeps draining
//     until the buffer runs dry. The delay a staged frame can see is one
//     flusher wakeup, the same scheduling latency any channel handoff
//     pays, so coalescing trades no unbounded latency for its batching.
//
// Mode selection keys on burstiness, not rate: when concurrent callers
// fan in on one destination, reply completions wake several of them
// together and their next sends land back-to-back, under a couple of
// microseconds apart, so sub-BurstGap gaps dominate the gap stream. A
// lone caller's cadence alternates one short gap (its request, then the
// handler's reply moments later) with the long gap of its full
// request/reply pipeline, so short gaps stay a minority. (A rate average
// cannot tell these apart: on a saturated machine the mean send rate is
// the same either way.) Each destination runs a leaky-bucket counter —
// +1 on a burst gap, -1 otherwise, floored at zero — which drifts down
// under a lone caller and climbs under fan-in; crossing EnterBurst flips
// the queue to staged mode. It leaves staged mode when draining stops
// paying: two consecutive single-member drains prove there is no
// concurrency left to coalesce and the queue reverts to inline, so a
// caller that ends up alone sheds the staging detour within a couple of
// operations.
//
// Trains are only built for destinations that have advertised FlagTrains
// (MarkCapable); everything else passes through untouched, which is the
// whole legacy-compatibility story. Staged sends are best-effort — a
// train that fails to send is counted in SendErrors, and the
// retransmission layer recovers the members — matching the asynchronous
// best-effort contract the transports already give.
package wire

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// CoalescerConfig sizes train assembly. Zero values take the defaults.
type CoalescerConfig struct {
	// MaxFrames caps members per emitted train (default DefaultTrainFrames).
	MaxFrames int
	// MaxBytes caps an emitted train's payload bytes (default
	// DefaultTrainBytes). A frame too large to fit a train alone is sent
	// frame-at-a-time.
	MaxBytes int
	// BurstGap is the inter-send gap at or below which a send counts as
	// bursty (default 2µs — just above the cost of one inline send, so
	// wakeup-driven back-to-back sends register while pipeline-spaced
	// sends do not). EnterBurst is the leaky-bucket level (+1 bursty,
	// -1 otherwise) at which a destination flips to staged mode (default
	// 8: a lone caller's alternating cadence keeps the bucket near zero,
	// while fan-in's bursty majority climbs it within a few operations).
	BurstGap   time.Duration
	EnterBurst int
}

func (c *CoalescerConfig) fill() {
	if c.MaxFrames <= 0 {
		c.MaxFrames = DefaultTrainFrames
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = DefaultTrainBytes
	}
	if c.BurstGap <= 0 {
		c.BurstGap = 2 * time.Microsecond
	}
	if c.EnterBurst <= 0 {
		c.EnterBurst = 8
	}
}

// maxStagedBytes bounds how much traffic may pile up behind one flusher;
// past it, new senders bypass staging and go frame-at-a-time rather than
// grow the buffer without limit.
const maxStagedBytes = 1 << 20

// soloExit is how many consecutive single-member drains send a
// destination back to inline mode.
const soloExit = 2

// destQueue is one destination's train under assembly plus its mode state.
type destQueue struct {
	mu         sync.Mutex
	buf        []byte // staged members, length-prefixed, ready to be a train payload
	spare      []byte // recycled buffer for the next round, swapped in by the flusher
	count      int
	staged     bool  // true: Sends stage to the flusher; false: Sends go inline
	last       int64 // monotonic ns of the previous Send
	burst      int   // leaky-bucket burstiness level
	soloStreak int   // consecutive drains that found a single member
	inlineCnt  uint8 // inline sends since the last send-cost sample
	started    bool  // flusher goroutine running
	wake       chan struct{}
}

// Coalescer packs concurrent same-destination frames into trains. One
// Coalescer fronts one transport endpoint; it is safe for concurrent use.
type Coalescer struct {
	local NodeID
	send  func(*Frame) error
	cfg   CoalescerConfig
	epoch time.Time

	dests   sync.Map // NodeID -> *destQueue
	capable sync.Map // NodeID -> struct{}

	stop    chan struct{}
	closed  atomic.Bool
	flushWG sync.WaitGroup

	// ewmaSend tracks the cost of one inline send (ns). The burst-gap
	// threshold scales with it, so a machine running slow (or a race-
	// instrumented build) moves the whole yardstick instead of pushing
	// every gap past a fixed cutoff.
	ewmaSend atomic.Int64

	directSends  atomic.Uint64 // ineligible for trains: incapable dest, urgent, oversized, or train
	inlineSends  atomic.Uint64 // eligible frames sent immediately (queue in inline mode)
	stagedFrames atomic.Uint64
	overflow     atomic.Uint64 // bypassed staging because the buffer hit maxStagedBytes
	soloFlushes  atomic.Uint64 // staged frames that drained alone and went out unwrapped
	trainsSent   atomic.Uint64
	trainFrames  atomic.Uint64
	trainBytes   atomic.Uint64
	flushFull    atomic.Uint64 // train closed because it hit MaxFrames/MaxBytes
	flushDrain   atomic.Uint64 // train closed because the staging buffer ran dry
	sendErrors   atomic.Uint64 // failed staged sends (members recovered by retransmission)
}

// NewCoalescer returns a coalescer that emits frames — member or train —
// through send. local stamps the Src.Node of emitted train frames. Close
// the coalescer to stop its flusher goroutines.
func NewCoalescer(local NodeID, send func(*Frame) error, cfg CoalescerConfig) *Coalescer {
	cfg.fill()
	return &Coalescer{
		local: local,
		send:  send,
		cfg:   cfg,
		epoch: time.Now(),
		stop:  make(chan struct{}),
	}
}

// Close drains and stops every destination flusher. Staged frames still in
// a buffer are flushed through send before their flusher exits. Safe to
// call twice; Sends after Close pass through inline.
func (c *Coalescer) Close() {
	if c.closed.CompareAndSwap(false, true) {
		close(c.stop)
	}
	c.flushWG.Wait()
}

// MarkCapable records that node's transport unpacks trains. Typically
// called when an inbound frame from node carries FlagTrains; the
// load-before-store keeps repeated marking cheap enough to sit on the
// per-frame receive path.
func (c *Coalescer) MarkCapable(node NodeID) {
	if _, ok := c.capable.Load(node); !ok {
		c.capable.Store(node, struct{}{})
	}
}

// Capable reports whether node has been marked train-capable.
func (c *Coalescer) Capable(node NodeID) bool {
	_, ok := c.capable.Load(node)
	return ok
}

// Send transmits f, staging it into a train when the destination is
// train-capable and under fan-in load. f's bytes are copied before Send
// returns, so the caller may release or reuse f immediately — the same
// ownership rule the transports give. Staged sends are best-effort and
// return nil; inline sends propagate the transport's error.
func (c *Coalescer) Send(f *Frame) error {
	if f.Kind == KindTrain || f.Flags&FlagUrgent != 0 ||
		TrainMemberLen(f) > c.cfg.MaxBytes || !c.Capable(f.Dst.Node) || c.closed.Load() {
		c.directSends.Add(1)
		return c.send(f)
	}
	dq := c.queue(f.Dst.Node)

	var now int64
	dq.mu.Lock()
	if !dq.staged {
		// Burst detection only matters in inline mode; once staged, the
		// clock reads are skipped and exit is the flusher's job. The
		// burst-gap yardstick self-calibrates to ~3 inline sends so the
		// detector keeps discriminating when the whole machine slows.
		now = int64(time.Since(c.epoch))
		gap := now - dq.last
		dq.last = now
		th := 3 * c.ewmaSend.Load()
		if min := int64(c.cfg.BurstGap); th < min {
			th = min
		} else if max := 4 * int64(c.cfg.BurstGap); th > max {
			th = max
		}
		if gap <= th {
			dq.burst++
		} else if dq.burst > 0 {
			dq.burst--
		}
		if dq.burst >= c.cfg.EnterBurst {
			dq.staged = true
			dq.burst = 0
			dq.soloStreak = 0
			if !dq.started {
				dq.started = true
				dq.wake = make(chan struct{}, 1)
				c.flushWG.Add(1)
				go c.flusher(f.Dst.Node, dq)
			}
		}
	}
	if !dq.staged {
		sample := dq.inlineCnt&7 == 0
		dq.inlineCnt++
		dq.mu.Unlock()
		c.inlineSends.Add(1)
		if !sample {
			return c.send(f)
		}
		// Every 8th inline send is timed to keep the send-cost EWMA
		// current without putting a second clock read on every send.
		err := c.send(f)
		dur := int64(time.Since(c.epoch)) - now
		ewma := c.ewmaSend.Load()
		c.ewmaSend.Store(ewma + (dur-ewma)/8)
		return err
	}
	if len(dq.buf) >= maxStagedBytes {
		dq.mu.Unlock()
		c.overflow.Add(1)
		return c.send(f)
	}
	// Nested trains and oversized members were excluded above, so this
	// append cannot fail.
	dq.buf, _ = AppendTrainMember(dq.buf, f)
	dq.count++
	first := dq.count == 1
	wake := dq.wake
	dq.mu.Unlock()
	c.stagedFrames.Add(1)
	// Only the frame that starts a fresh buffer needs to wake the
	// flusher: it drains until dry, so everything staged after the wake
	// rides along without its own signal.
	if first {
		select {
		case wake <- struct{}{}:
		default: // a wakeup is already pending
		}
	}
	return nil
}

func (c *Coalescer) queue(node NodeID) *destQueue {
	if q, ok := c.dests.Load(node); ok {
		return q.(*destQueue)
	}
	q, _ := c.dests.LoadOrStore(node, &destQueue{})
	return q.(*destQueue)
}

// flusher is one destination's drain loop: woken by stagers, it ships
// everything accumulated and goes back to sleep. On Close it performs a
// final drain so no staged frame is stranded.
func (c *Coalescer) flusher(node NodeID, dq *destQueue) {
	defer c.flushWG.Done()
	for {
		select {
		case <-dq.wake:
			// The wakeup put this goroutine right behind the sender that
			// signaled it; yielding lets every other runnable sender
			// stage its frame first, so the drain picks up the whole
			// burst instead of one solo member. When the staging sender
			// is alone nothing else is runnable and the yield is free —
			// this is the "bounded linger" of the flush policy, priced
			// in scheduler turns rather than timer ticks.
			runtime.Gosched()
			c.drain(node, dq)
		case <-c.stop:
			c.drain(node, dq)
			return
		}
	}
}

// drain emits everything staged for node as trains, looping until the
// staging buffer stays empty.
func (c *Coalescer) drain(node NodeID, dq *destQueue) {
	for {
		dq.mu.Lock()
		if dq.count == 0 {
			dq.mu.Unlock()
			return
		}
		pending, n := dq.buf, dq.count
		dq.buf, dq.spare = dq.spare, nil
		dq.count = 0
		// Exit detection: a drain that finds a single member proves the
		// wakeup bought no batching. Two in a row and the destination
		// goes back to inline mode — a lone caller sheds the staging
		// detour within a couple of operations.
		if n == 1 {
			if dq.soloStreak++; dq.soloStreak >= soloExit {
				dq.staged = false
				dq.burst = 0
				dq.soloStreak = 0
			}
		} else {
			dq.soloStreak = 0
		}
		dq.mu.Unlock()

		c.emitTrains(node, pending, n)

		if cap(pending) <= maxStagedBytes {
			dq.mu.Lock()
			if dq.spare == nil {
				dq.spare = pending[:0]
			}
			dq.mu.Unlock()
		}
		// Senders that ran while the train was being emitted have staged
		// more; yield once so the rest of the burst lands before the next
		// round, building a full train instead of a fragment. When the
		// buffer is already dry the loop exits above without yielding.
		runtime.Gosched()
	}
}

// emitTrains walks the staged member boundaries and sends contiguous
// chunks as train frames, splitting at the configured caps. Chunks slice
// the staged buffer directly — no member is re-copied. A chunk that holds
// a single member is unwrapped and sent as itself: a train of one would
// cost container overhead and buy nothing.
func (c *Coalescer) emitTrains(node NodeID, pending []byte, total int) {
	chunkStart, chunkCount := 0, 0
	pos := 0
	for i := 0; i < total; i++ {
		mlen, n, err := Uvarint(pending[pos:])
		if err != nil || uint64(len(pending)-pos-n) < mlen {
			// Impossible unless staging itself is broken; drop the
			// remainder rather than send garbage.
			c.sendErrors.Add(1)
			return
		}
		next := pos + n + int(mlen)
		if chunkCount > 0 && (chunkCount == c.cfg.MaxFrames || next-chunkStart > c.cfg.MaxBytes) {
			if c.sendChunk(node, pending[chunkStart:pos], chunkCount) {
				c.flushFull.Add(1)
			}
			chunkStart, chunkCount = pos, 0
		}
		pos = next
		chunkCount++
	}
	if chunkCount > 0 {
		if c.sendChunk(node, pending[chunkStart:pos], chunkCount) {
			c.flushDrain.Add(1)
		}
	}
}

// sendChunk ships one contiguous chunk of staged members and reports
// whether it went out as a train (false for the unwrapped solo case).
func (c *Coalescer) sendChunk(node NodeID, payload []byte, members int) bool {
	if members == 1 {
		// Unwrap the lone member and send it as an ordinary frame.
		_, n, err := Uvarint(payload)
		if err == nil {
			var m Frame
			if m, _, err = Decode(payload[n:]); err == nil {
				if serr := c.send(&m); serr != nil {
					c.sendErrors.Add(1)
				} else {
					c.soloFlushes.Add(1)
				}
				return false
			}
		}
		c.sendErrors.Add(1)
		return false
	}
	tf := GetFrame()
	tf.Kind = KindTrain
	tf.Flags = FlagOneWay | FlagTrains
	tf.Src = Addr{Node: c.local}
	tf.Dst = Addr{Node: node}
	tf.Object = KernelObject
	tf.Payload = payload
	err := c.send(tf)
	tf.Release()
	if err != nil {
		c.sendErrors.Add(1)
		return false
	}
	c.trainsSent.Add(1)
	c.trainFrames.Add(uint64(members))
	c.trainBytes.Add(uint64(len(payload)))
	return true
}

// CoalescerStats is a snapshot of one coalescer's counters.
type CoalescerStats struct {
	DirectSends  uint64 // ineligible frame-at-a-time (legacy dest, urgent, oversized)
	InlineSends  uint64 // eligible frames sent immediately (inline mode)
	StagedFrames uint64 // frames handed to a flusher
	Overflow     uint64 // staging bypassed at the buffer bound
	SoloFlushes  uint64 // staged frames that drained alone and went out unwrapped
	TrainsSent   uint64
	TrainFrames  uint64 // members carried by sent trains
	TrainBytes   uint64 // payload bytes carried by sent trains
	FlushFull    uint64 // trains closed at the frames/bytes cap
	FlushDrain   uint64 // trains closed because staging ran dry
	SendErrors   uint64
}

// AvgFill reports mean members per sent train (0 when none were sent).
func (s CoalescerStats) AvgFill() float64 {
	if s.TrainsSent == 0 {
		return 0
	}
	return float64(s.TrainFrames) / float64(s.TrainsSent)
}

// Stats snapshots the coalescer's counters.
func (c *Coalescer) Stats() CoalescerStats {
	return CoalescerStats{
		DirectSends:  c.directSends.Load(),
		InlineSends:  c.inlineSends.Load(),
		StagedFrames: c.stagedFrames.Load(),
		Overflow:     c.overflow.Load(),
		SoloFlushes:  c.soloFlushes.Load(),
		TrainsSent:   c.trainsSent.Load(),
		TrainFrames:  c.trainFrames.Load(),
		TrainBytes:   c.trainBytes.Load(),
		FlushFull:    c.flushFull.Load(),
		FlushDrain:   c.flushDrain.Load(),
		SendErrors:   c.sendErrors.Load(),
	}
}
