// Package wire defines the on-the-wire vocabulary shared by every layer of
// the system: node/context/object identity, the binary frame format carried
// by transports, and low-level varint encoding primitives.
//
// The frame format is deliberately dumb: a fixed header plus an opaque
// payload. Everything above it — including the private protocols spoken
// between a smart proxy and its server — is encoded inside the payload, so
// intermediate layers cannot (and need not) interpret it. This is the
// transport-level half of the proxy principle's encapsulation guarantee.
package wire

import (
	"fmt"
	"strconv"
)

// NodeID identifies a machine in the distributed system.
type NodeID uint32

// ContextID identifies an address space (protection domain) within a node.
// A node may host several contexts; context 0 is the node's kernel context.
type ContextID uint32

// ObjectID identifies an object within a context. Object 0 is reserved for
// the context's kernel dispatcher.
type ObjectID uint64

// KernelObject is the distinguished object ID addressed when a frame is
// meant for the context's kernel itself rather than a hosted object.
const KernelObject ObjectID = 0

// Addr names a context: the pair (node, context). All frames carry a source
// and destination Addr.
type Addr struct {
	Node    NodeID
	Context ContextID
}

// String renders the address as "node.context", e.g. "3.1".
func (a Addr) String() string {
	return strconv.FormatUint(uint64(a.Node), 10) + "." + strconv.FormatUint(uint64(a.Context), 10)
}

// IsZero reports whether the address is the zero value, which is never a
// valid routable address.
func (a Addr) IsZero() bool { return a.Node == 0 && a.Context == 0 }

// ObjAddr names one object globally: an address plus an object ID.
type ObjAddr struct {
	Addr   Addr
	Object ObjectID
}

// String renders the object address as "node.context/object".
func (o ObjAddr) String() string {
	return fmt.Sprintf("%s/%d", o.Addr, o.Object)
}

// IsZero reports whether the object address is entirely unset.
func (o ObjAddr) IsZero() bool { return o.Addr.IsZero() && o.Object == 0 }
