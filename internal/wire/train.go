// Frame trains: one container frame carrying many member frames bound for
// the same destination node.
//
// A train's payload is a repeated sequence of
//
//	[uvarint memberLen][memberLen bytes: one fully-encoded member frame]
//
// Each member is a complete frame — header, payload, and its own CRC — so
// unpacking is plain Decode and a corrupt member invalidates only itself.
// The outer train frame's CRC covers its header only (see frame.go); the
// length prefixes let the receiver resynchronize past a member whose bytes
// were damaged in flight.
//
// Trains never nest: a member must not itself be KindTrain. That keeps
// unpacking non-recursive and bounds the work a single inbound frame can
// demand.
package wire

import (
	"errors"
	"sync/atomic"
)

// Train sizing defaults. A train flushes (and a new one starts) when it
// reaches either limit; both are small enough that a train never strays
// near MaxPayload and a stalled flush never holds more than a socket
// buffer's worth of traffic.
const (
	// DefaultTrainFrames caps how many member frames ride in one train.
	DefaultTrainFrames = 32
	// DefaultTrainBytes caps a train's payload size.
	DefaultTrainBytes = 64 << 10
)

// Train errors.
var (
	// ErrTrainNested rejects a KindTrain member inside a train.
	ErrTrainNested = errors.New("wire: train member must not be a train")
	// ErrTrainCorrupt reports a train payload whose framing (the length
	// prefixes) is damaged, so the remaining members cannot be recovered.
	ErrTrainCorrupt = errors.New("wire: train payload framing corrupt")
)

// AppendTrainMember appends one length-prefixed encoded member frame to a
// train payload under construction and returns the extended slice. The
// frame's bytes are fully copied into dst, so the caller may release or
// reuse f as soon as this returns.
func AppendTrainMember(dst []byte, f *Frame) ([]byte, error) {
	if f.Kind == KindTrain {
		return dst, ErrTrainNested
	}
	dst = AppendUvarint(dst, uint64(f.EncodedLen()))
	return f.Encode(dst)
}

// TrainMemberLen reports how many payload bytes AppendTrainMember will add
// for f: the encoded frame plus its length prefix.
func TrainMemberLen(f *Frame) int {
	n := f.EncodedLen()
	return UvarintLen(uint64(n)) + n
}

var (
	trainsUnpacked  atomic.Uint64
	membersUnpacked atomic.Uint64
	membersRejected atomic.Uint64
)

// ForEachTrainMember walks a train payload, invoking fn once per member
// frame that decodes cleanly. The *Frame passed to fn is reused across
// members (the walk costs one frame header however long the train), and
// its Payload aliases the train payload; fn must copy anything it retains
// past its own return.
//
// A member that fails its own CRC (or otherwise fails to decode) is skipped
// using its length prefix and counted in rejected — the rest of the train
// still delivers. A damaged length prefix loses framing for everything that
// follows; that aborts the walk with ErrTrainCorrupt. The return reports
// members delivered and members rejected.
func ForEachTrainMember(payload []byte, fn func(m *Frame)) (members, rejected int, err error) {
	var m Frame
	for len(payload) > 0 {
		mlen, n, uerr := Uvarint(payload)
		if uerr != nil {
			membersRejected.Add(1)
			return members, rejected + 1, ErrTrainCorrupt
		}
		payload = payload[n:]
		if mlen == 0 || mlen > uint64(len(payload)) {
			membersRejected.Add(1)
			return members, rejected + 1, ErrTrainCorrupt
		}
		chunk := payload[:mlen]
		payload = payload[mlen:]
		var consumed int
		var derr error
		m, consumed, derr = Decode(chunk)
		if derr != nil || consumed != int(mlen) || m.Kind == KindTrain {
			rejected++
			membersRejected.Add(1)
			continue
		}
		members++
		membersUnpacked.Add(1)
		fn(&m)
	}
	trainsUnpacked.Add(1)
	return members, rejected, nil
}

// TrainStats is a snapshot of the process-wide train unpack counters.
type TrainStats struct {
	// TrainsUnpacked counts train payloads walked to completion.
	TrainsUnpacked uint64
	// MembersUnpacked counts member frames delivered from trains.
	MembersUnpacked uint64
	// MembersRejected counts members dropped for a bad CRC, a decode
	// error, nesting, or damaged framing.
	MembersRejected uint64
}

// ReadTrainStats snapshots the global train unpack counters.
func ReadTrainStats() TrainStats {
	return TrainStats{
		TrainsUnpacked:  trainsUnpacked.Load(),
		MembersUnpacked: membersUnpacked.Load(),
		MembersRejected: membersRejected.Load(),
	}
}
