package wire

import (
	"errors"
	"math/bits"
)

// Varint primitives used by the codec layer. These mirror the classic
// LEB128 scheme (as in encoding/binary) but are written against byte
// slices with explicit error reporting, because payload decoding must never
// panic on hostile input.

// ErrShortBuffer reports that a decode ran off the end of its input.
var ErrShortBuffer = errors.New("wire: short buffer")

// ErrOverflow reports a varint wider than 64 bits.
var ErrOverflow = errors.New("wire: varint overflows 64 bits")

// MaxVarintLen is the maximum number of bytes a 64-bit varint occupies.
const MaxVarintLen = 10

// AppendUvarint appends v to dst in LEB128 form and returns the extended
// slice.
func AppendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// Uvarint decodes an unsigned varint from src, returning the value and the
// number of bytes consumed.
func Uvarint(src []byte) (uint64, int, error) {
	var v uint64
	var shift uint
	for i, b := range src {
		if i == MaxVarintLen {
			return 0, 0, ErrOverflow
		}
		if b < 0x80 {
			if i == MaxVarintLen-1 && b > 1 {
				return 0, 0, ErrOverflow
			}
			return v | uint64(b)<<shift, i + 1, nil
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0, ErrShortBuffer
}

// AppendVarint appends v in zigzag form, so small negative numbers stay
// small on the wire.
func AppendVarint(dst []byte, v int64) []byte {
	return AppendUvarint(dst, ZigZag(v))
}

// Varint decodes a zigzag-encoded signed varint.
func Varint(src []byte) (int64, int, error) {
	u, n, err := Uvarint(src)
	if err != nil {
		return 0, 0, err
	}
	return UnZigZag(u), n, nil
}

// ZigZag maps signed to unsigned so the sign bit lands in bit 0.
func ZigZag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// UvarintLen reports how many bytes AppendUvarint would emit for v.
func UvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// AppendBytes appends a length-prefixed byte string.
func AppendBytes(dst, b []byte) []byte {
	dst = AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// Bytes decodes a length-prefixed byte string. The returned slice aliases
// src; callers that retain it across buffer reuse must copy.
func Bytes(src []byte) ([]byte, int, error) {
	l, n, err := Uvarint(src)
	if err != nil {
		return nil, 0, err
	}
	if l > uint64(len(src)-n) {
		return nil, 0, ErrShortBuffer
	}
	return src[n : n+int(l)], n + int(l), nil
}

// AppendString appends a length-prefixed UTF-8 string.
func AppendString(dst []byte, s string) []byte {
	dst = AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// String decodes a length-prefixed string (copies out of src).
func String(src []byte) (string, int, error) {
	b, n, err := Bytes(src)
	if err != nil {
		return "", 0, err
	}
	return string(b), n, nil
}

// AppendAddr appends an Addr as two uvarints.
func AppendAddr(dst []byte, a Addr) []byte {
	dst = AppendUvarint(dst, uint64(a.Node))
	return AppendUvarint(dst, uint64(a.Context))
}

// DecodeAddr decodes an Addr encoded by AppendAddr.
func DecodeAddr(src []byte) (Addr, int, error) {
	node, n1, err := Uvarint(src)
	if err != nil {
		return Addr{}, 0, err
	}
	ctx, n2, err := Uvarint(src[n1:])
	if err != nil {
		return Addr{}, 0, err
	}
	return Addr{Node: NodeID(node), Context: ContextID(ctx)}, n1 + n2, nil
}

// AppendObjAddr appends an ObjAddr (addr + object id).
func AppendObjAddr(dst []byte, o ObjAddr) []byte {
	dst = AppendAddr(dst, o.Addr)
	return AppendUvarint(dst, uint64(o.Object))
}

// DecodeObjAddr decodes an ObjAddr encoded by AppendObjAddr.
func DecodeObjAddr(src []byte) (ObjAddr, int, error) {
	a, n1, err := DecodeAddr(src)
	if err != nil {
		return ObjAddr{}, 0, err
	}
	obj, n2, err := Uvarint(src[n1:])
	if err != nil {
		return ObjAddr{}, 0, err
	}
	return ObjAddr{Addr: a, Object: ObjectID(obj)}, n1 + n2, nil
}
