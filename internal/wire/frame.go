package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Kind discriminates the purpose of a frame. Kinds below KindCustom belong
// to the system layers; KindCustom and above are reserved for the private
// proxy↔server protocols of individual services, which the system carries
// but never interprets.
type Kind uint8

// System frame kinds.
const (
	// KindInvalid is the zero Kind and never appears on the wire.
	KindInvalid Kind = iota
	// KindRequest carries an invocation request to an object.
	KindRequest
	// KindReply carries a successful invocation result.
	KindReply
	// KindError carries a failed invocation's error.
	KindError
	// KindAck acknowledges receipt without carrying data.
	KindAck
	// KindPing probes liveness.
	KindPing
	// KindInstall asks a context to install a proxy for an exported ref.
	KindInstall
	// KindMove carries migration traffic (state capture and transfer).
	KindMove
	// KindForward tells a sender the object it addressed has moved.
	KindForward
	// KindInvalidate carries cache-coherence invalidations.
	KindInvalidate
	// KindLease carries cache lease grants and renewals.
	KindLease
	// KindName carries name-service operations.
	KindName
	// KindGroup carries membership/broadcast traffic.
	KindGroup
	// KindPage carries DSM page traffic.
	KindPage
	// KindTrain is a container frame: its payload is a sequence of
	// length-prefixed member frames bound for the same destination node,
	// coalesced by the sender's transport so one header/CRC/send covers
	// the whole train (see train.go). The receiving kernel unpacks it
	// below the object layer; it is only ever sent to nodes that have
	// advertised FlagTrains.
	KindTrain

	// KindCustom is the first kind available to service-private protocols.
	// A service may use KindCustom+i for its own message types; the system
	// routes these by destination only and never inspects the payload.
	KindCustom Kind = 64
)

var kindNames = map[Kind]string{
	KindInvalid:    "invalid",
	KindRequest:    "request",
	KindReply:      "reply",
	KindError:      "error",
	KindAck:        "ack",
	KindPing:       "ping",
	KindInstall:    "install",
	KindMove:       "move",
	KindForward:    "forward",
	KindInvalidate: "invalidate",
	KindLease:      "lease",
	KindName:       "name",
	KindGroup:      "group",
	KindPage:       "page",
	KindTrain:      "train",
}

// String names the kind; custom kinds render as "custom+N".
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	if k >= KindCustom {
		return fmt.Sprintf("custom+%d", uint8(k-KindCustom))
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Flag bits carried in the frame header.
const (
	// FlagOneWay marks a request that expects no reply.
	FlagOneWay uint16 = 1 << iota
	// FlagRetransmit marks a retransmitted request (duplicate-suppression hint).
	FlagRetransmit
	// FlagUrgent asks transports to bypass queuing where possible.
	FlagUrgent
	// FlagResponse marks a frame that answers an earlier request: its
	// ReqID correlates with a pending call in the destination context
	// rather than naming a fresh request. Any Kind may carry it, which is
	// what lets service-private protocols reuse the kernel's call
	// machinery without the kernel understanding their messages.
	FlagResponse
	// FlagNoRoute marks a KindError response emitted by the receiving
	// kernel itself because the addressed context or object does not
	// exist: the request provably never reached a service. Failover logic
	// keys on this flag — not on the error text — to decide that
	// redirecting the call cannot double-execute anything. Only kernels
	// set it; application error responses must not.
	FlagNoRoute
	// FlagPushback marks a KindError response emitted by the receiving
	// kernel's admission controller: the node is overloaded and shed the
	// request before it reached a service, so the invocation provably
	// never executed. The payload carries a retry-after hint (see
	// AppendPushback). Like FlagNoRoute, only kernels set it.
	FlagPushback
	// FlagTrains advertises that the sending node's transport coalesces
	// and unpacks frame trains (KindTrain). A train-capable transport
	// sets it on every outbound frame — pings and their acks included —
	// and caches it per source node on receipt; trains are only ever
	// sent to destinations that have advertised it, so legacy peers keep
	// today's frame-at-a-time exchange.
	FlagTrains
)

// Frame is the unit of transmission. Payload is opaque to every layer
// except the final consumer addressed by (Dst, Object).
type Frame struct {
	Kind    Kind
	Flags   uint16
	ReqID   uint64 // request/reply correlation; unique per source context
	Src     Addr
	Dst     Addr
	Object  ObjectID // destination object within Dst; KernelObject for kernel traffic
	Payload []byte
}

// Frame wire layout (fixed header, big-endian):
//
//	magic(2) version(1) kind(1) flags(2) reqID(8)
//	srcNode(4) srcCtx(4) dstNode(4) dstCtx(4) object(8)
//	payloadLen(4) payload(…) crc32(4)
//
// The CRC covers header and payload — except for KindTrain, where it
// covers the header only: a train's payload is a sequence of fully-encoded
// member frames that each carry their own CRC, so double-checksumming would
// cost a second pass over the bytes and, worse, make one corrupt member
// reject the entire train instead of just that member.
const (
	frameMagic   uint16 = 0x5059 // "PY"
	frameVersion byte   = 1
	headerLen           = 2 + 1 + 1 + 2 + 8 + 4 + 4 + 4 + 4 + 8 + 4
	trailerLen          = 4
)

// MaxPayload bounds a single frame's payload; larger application payloads
// must be chunked by the layer that produces them.
const MaxPayload = 16 << 20

// Frame decode errors.
var (
	ErrBadMagic   = errors.New("wire: bad frame magic")
	ErrBadVersion = errors.New("wire: unsupported frame version")
	ErrBadCRC     = errors.New("wire: frame checksum mismatch")
	ErrTooLarge   = fmt.Errorf("wire: payload exceeds %d bytes", MaxPayload)
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EncodedLen reports the total encoded size of the frame.
func (f *Frame) EncodedLen() int { return headerLen + len(f.Payload) + trailerLen }

// Encode appends the encoded frame to dst and returns the extended slice.
func (f *Frame) Encode(dst []byte) ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return dst, ErrTooLarge
	}
	start := len(dst)
	var hdr [headerLen]byte
	binary.BigEndian.PutUint16(hdr[0:], frameMagic)
	hdr[2] = frameVersion
	hdr[3] = byte(f.Kind)
	binary.BigEndian.PutUint16(hdr[4:], f.Flags)
	binary.BigEndian.PutUint64(hdr[6:], f.ReqID)
	binary.BigEndian.PutUint32(hdr[14:], uint32(f.Src.Node))
	binary.BigEndian.PutUint32(hdr[18:], uint32(f.Src.Context))
	binary.BigEndian.PutUint32(hdr[22:], uint32(f.Dst.Node))
	binary.BigEndian.PutUint32(hdr[26:], uint32(f.Dst.Context))
	binary.BigEndian.PutUint64(hdr[30:], uint64(f.Object))
	binary.BigEndian.PutUint32(hdr[38:], uint32(len(f.Payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, f.Payload...)
	crcEnd := len(dst)
	if f.Kind == KindTrain {
		crcEnd = start + headerLen
	}
	crc := crc32.Checksum(dst[start:crcEnd], crcTable)
	var tr [trailerLen]byte
	binary.BigEndian.PutUint32(tr[:], crc)
	return append(dst, tr[:]...), nil
}

// Decode parses one frame from src, returning the frame and bytes consumed.
// The returned frame's Payload aliases src.
func Decode(src []byte) (Frame, int, error) {
	if len(src) < headerLen+trailerLen {
		return Frame{}, 0, ErrShortBuffer
	}
	if binary.BigEndian.Uint16(src[0:]) != frameMagic {
		return Frame{}, 0, ErrBadMagic
	}
	if src[2] != frameVersion {
		return Frame{}, 0, ErrBadVersion
	}
	plen := int(binary.BigEndian.Uint32(src[38:]))
	if plen > MaxPayload {
		return Frame{}, 0, ErrTooLarge
	}
	total := headerLen + plen + trailerLen
	if len(src) < total {
		return Frame{}, 0, ErrShortBuffer
	}
	want := binary.BigEndian.Uint32(src[headerLen+plen:])
	crcEnd := headerLen + plen
	if Kind(src[3]) == KindTrain {
		crcEnd = headerLen
	}
	if crc32.Checksum(src[:crcEnd], crcTable) != want {
		return Frame{}, 0, ErrBadCRC
	}
	f := Frame{
		Kind:  Kind(src[3]),
		Flags: binary.BigEndian.Uint16(src[4:]),
		ReqID: binary.BigEndian.Uint64(src[6:]),
		Src: Addr{
			Node:    NodeID(binary.BigEndian.Uint32(src[14:])),
			Context: ContextID(binary.BigEndian.Uint32(src[18:])),
		},
		Dst: Addr{
			Node:    NodeID(binary.BigEndian.Uint32(src[22:])),
			Context: ContextID(binary.BigEndian.Uint32(src[26:])),
		},
		Object:  ObjectID(binary.BigEndian.Uint64(src[30:])),
		Payload: src[headerLen : headerLen+plen],
	}
	return f, total, nil
}

// WriteFrame encodes f and writes it to w in one call.
func WriteFrame(w io.Writer, f *Frame) error {
	buf, err := f.Encode(make([]byte, 0, f.EncodedLen()))
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads exactly one frame from r. It allocates the payload, so
// the result does not alias any shared buffer.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	plen := int(binary.BigEndian.Uint32(hdr[38:]))
	if plen > MaxPayload {
		return Frame{}, ErrTooLarge
	}
	rest := make([]byte, plen+trailerLen)
	if _, err := io.ReadFull(r, rest); err != nil {
		return Frame{}, err
	}
	full := make([]byte, 0, headerLen+plen+trailerLen)
	full = append(full, hdr[:]...)
	full = append(full, rest...)
	f, _, err := Decode(full)
	return f, err
}

// Clone returns a deep copy of the frame (payload included), safe to retain
// after the source buffer is reused.
func (f *Frame) Clone() Frame {
	c := *f
	if f.Payload != nil {
		c.Payload = append([]byte(nil), f.Payload...)
	}
	return c
}

// String renders a concise human-readable summary for logs.
func (f *Frame) String() string {
	return fmt.Sprintf("%s#%d %s→%s/%d (%dB)", f.Kind, f.ReqID, f.Src, f.Dst, f.Object, len(f.Payload))
}
