package wire

import "time"

// Priority header and pushback payload. Both belong to the overload
// machinery: the priority header lets a sender declare which class its
// request travels in, and the pushback payload is what an overloaded
// kernel answers shed requests with. The primitives live here (like the
// deadline header in deadline.go) because the kernel below core must
// read the one and write the other without understanding payloads.

// Priority classifies a request for admission control. The zero value is
// PriorityNormal, so headerless payloads from pre-priority peers are
// admitted exactly like before.
type Priority uint8

// Priority classes.
const (
	// PriorityNormal is ordinary user traffic: admitted up to the
	// adaptive concurrency limit, queued briefly, shed under overload.
	PriorityNormal Priority = 0
	// PriorityHigh is system traffic the mesh cannot live without —
	// rebalance steps, replica syncs — which is never shed behind user
	// calls (health pings are answered below admission entirely).
	PriorityHigh Priority = 1
	// PriorityLow is best-effort traffic (bulk scans, prefetch): first
	// to be shed, evicted from the queue to make room for normal calls.
	PriorityLow Priority = 2
)

// String names the priority class.
func (p Priority) String() string {
	switch p {
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	case PriorityLow:
		return "low"
	default:
		return "priority(?)"
	}
}

// PriorityMagic introduces the optional priority header: [magic, class
// byte]. It follows the convention of the trace (0xF5) and deadline
// (0xF6) headers — codec tags occupy 1..13, so any leading byte ≥ 0xF0
// is unambiguously a header, and headerless payloads decode unchanged.
//
// Senders that stamp a priority write this header FIRST (before the
// deadline and trace headers): the receiving kernel classifies a frame
// by peeking only at payload[0], without knowing the other headers'
// shapes. A payload whose priority header is buried deeper still decodes
// correctly above the kernel but is admitted as PriorityNormal.
const PriorityMagic = 0xF7

// AppendPriorityHeader prefixes dst with a priority header. Normal
// priority appends nothing — the default needs no bytes on the wire.
func AppendPriorityHeader(dst []byte, p Priority) []byte {
	if p == PriorityNormal {
		return dst
	}
	return append(dst, PriorityMagic, byte(p))
}

// SplitPriorityHeader strips a leading priority header, returning the
// class it carried (PriorityNormal if absent) and the rest of the
// payload.
func SplitPriorityHeader(payload []byte) (Priority, []byte) {
	if len(payload) < 2 || payload[0] != PriorityMagic {
		return PriorityNormal, payload
	}
	return Priority(payload[1]), payload[2:]
}

// PeekPriority classifies a request payload for admission without
// consuming anything: the class of a leading priority header, or
// PriorityNormal for headerless (or differently-headed) payloads.
func PeekPriority(payload []byte) Priority {
	if len(payload) >= 2 && payload[0] == PriorityMagic {
		return Priority(payload[1])
	}
	return PriorityNormal
}

// AppendPushback builds the payload of a FlagPushback error response:
// [uvarint retry-after nanoseconds]. The hint is advisory — a client in
// a hurry may fail over instead of waiting — but a cooperating client
// that waits at least this long gives the queue time to drain.
func AppendPushback(dst []byte, retryAfter time.Duration) []byte {
	if retryAfter < 0 {
		retryAfter = 0
	}
	return AppendUvarint(dst, uint64(retryAfter))
}

// DecodePushback parses a FlagPushback payload's retry-after hint.
// Malformed or empty payloads yield zero (no hint).
func DecodePushback(payload []byte) time.Duration {
	ns, _, err := Uvarint(payload)
	if err != nil {
		return 0
	}
	return time.Duration(ns)
}
