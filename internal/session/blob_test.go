package session

import (
	"bytes"
	"testing"

	"repro/internal/wire"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	tab := NewTable(Config{RepliesPerSession: 2})
	// A session with a raised floor (seq 1 dropped from the window).
	for seq := uint64(1); seq <= 3; seq++ {
		tab.Begin(7, seq)
		tab.CommitKeyed(7, seq, "key", wire.KindReply, false, []byte{byte(seq)})
	}
	// An error entry in a second session.
	tab.Begin(8, 1)
	tab.Commit(8, 1, wire.KindError, true, []byte("boom"))
	// A tombstoned session.
	tab.Begin(9, 4)
	tab.Commit(9, 4, wire.KindReply, false, []byte("gone"))

	blob := tab.Snapshot()

	into := NewTable(Config{RepliesPerSession: 2})
	if err := into.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if v, _ := into.Begin(7, 1); v != Expired {
		t.Fatal("restored floor lost: dropped seq must stay expired")
	}
	v, e := into.Begin(7, 3)
	if v != Replay || !bytes.Equal(e.Payload, []byte{3}) || e.Key != "key" {
		t.Fatalf("restored entry = %v, %+v", v, e)
	}
	if v, e := into.Begin(8, 1); v != Replay || !e.IsErr {
		t.Fatalf("restored error entry = %v, %+v", v, e)
	}
	if v, _ := into.Begin(9, 5); v != Fresh {
		t.Fatal("new seq in restored session must be fresh")
	}
	// Restore replaces wholesale: prior contents vanish.
	other := NewTable(Config{})
	other.Commit(42, 1, wire.KindReply, false, []byte("old"))
	if err := other.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if v, _ := other.Peek(42, 1); v != Fresh {
		t.Fatal("restore did not clear prior contents")
	}
}

func TestRestoreTombstones(t *testing.T) {
	tab := NewTable(Config{MaxSessions: 1})
	tab.Begin(1, 6)
	tab.Commit(1, 6, wire.KindReply, false, []byte("a"))
	tab.Begin(2, 1) // evicts session 1, leaving a tombstone at high=6

	into := NewTable(Config{})
	if err := into.Restore(tab.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if v, _ := into.Begin(1, 6); v != Expired {
		t.Fatal("restored tombstone must expire retries at or below high")
	}
	if v, _ := into.Begin(1, 7); v != Fresh {
		t.Fatal("seq past restored tombstone must be fresh")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	tab := NewTable(Config{})
	for _, blob := range [][]byte{nil, {}, {blobEntries}, {blobSnapshot, 0x85}, {0x42}} {
		if err := tab.Restore(blob); err == nil {
			t.Errorf("Restore(%x) accepted", blob)
		}
	}
	// Truncated mid-entry.
	good := func() []byte {
		t2 := NewTable(Config{})
		t2.Commit(7, 1, wire.KindReply, false, []byte("payload"))
		return t2.Snapshot()
	}()
	if err := tab.Restore(good[:len(good)-3]); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func TestExportImportKeys(t *testing.T) {
	tab := NewTable(Config{})
	tab.CommitKeyed(7, 1, "a", wire.KindReply, false, []byte("ra"))
	tab.CommitKeyed(7, 2, "b", wire.KindReply, false, []byte("rb"))
	tab.Commit(7, 3, wire.KindReply, false, []byte("unkeyed"))

	if blob := tab.ExportKeys([]string{"zzz"}); blob != nil {
		t.Fatal("export of unmatched keys must be nil")
	}
	blob := tab.ExportKeys([]string{"a"})
	if blob == nil {
		t.Fatal("export of matched key returned nil")
	}

	dst := NewTable(Config{})
	if err := dst.ImportBlob(blob); err != nil {
		t.Fatal(err)
	}
	v, e := dst.Peek(7, 1)
	if v != Replay || string(e.Payload) != "ra" || e.Key != "a" {
		t.Fatalf("imported entry = %v, %+v", v, e)
	}
	// Only key "a" traveled.
	if v, _ := dst.Peek(7, 2); v != Fresh {
		t.Fatal("unexported key leaked into the blob")
	}
	// Idempotent: pushes are retried.
	if err := dst.ImportBlob(blob); err != nil {
		t.Fatal(err)
	}
	if st := dst.Stats(); st.Replies != 1 {
		t.Fatalf("re-import duplicated entries: %+v", st)
	}
	// No-ops and garbage.
	if err := dst.ImportBlob(nil); err != nil {
		t.Fatal("nil blob must be a no-op")
	}
	if err := dst.ImportBlob([]byte{blobSnapshot}); err == nil {
		t.Fatal("snapshot blob accepted by ImportBlob")
	}
	if err := dst.ImportBlob(blob[:len(blob)-2]); err == nil {
		t.Fatal("truncated entries blob accepted")
	}
}

func TestFilterKeys(t *testing.T) {
	tab := NewTable(Config{})
	tab.CommitKeyed(7, 1, "a", wire.KindReply, false, []byte("ra"))
	tab.CommitKeyed(8, 1, "c", wire.KindReply, false, []byte("rc"))
	got := tab.FilterKeys([]string{"a", "b", "c"})
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("FilterKeys = %v", got)
	}
	if len(tab.FilterKeys([]string{"b"})) != 0 {
		t.Fatal("FilterKeys invented a key")
	}
}

func TestExpiredPayload(t *testing.T) {
	p := ExpiredPayload()
	if len(p) == 0 {
		t.Fatal("expired payload empty")
	}
	if !bytes.Equal(p, ExpiredPayload()) {
		t.Fatal("expired payload not stable")
	}
	// The code value (10 = core.CodeSessionExpired) is pinned by a test in
	// core, which can decode it; here we only check it is well-formed
	// enough to carry the message.
	if !bytes.Contains(p, []byte("session expired")) {
		t.Fatal("expired payload missing message")
	}
}
