package session

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"sync/atomic"
)

// Minter is the client half: one unforgeable session id per runtime and
// a monotonically increasing sequence per invocation. The same (sid,
// seq) pair is reused across every retransmission and failover attempt
// of one logical invocation — that reuse is the whole mechanism.
type Minter struct {
	sid uint64
	seq atomic.Uint64
}

// NewMinter draws a random nonzero session id.
func NewMinter() *Minter {
	var b [8]byte
	for {
		if _, err := cryptorand.Read(b[:]); err != nil {
			panic("session: cannot read random source: " + err.Error())
		}
		if v := binary.BigEndian.Uint64(b[:]); v != 0 {
			return &Minter{sid: v}
		}
	}
}

// SID reports the minter's session id.
func (m *Minter) SID() uint64 { return m.sid }

// Next allocates the identity for one logical invocation. Sequences
// start at 1 (0 means "unsequenced").
func (m *Minter) Next() (sid, seq uint64) { return m.sid, m.seq.Add(1) }
