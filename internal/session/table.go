// Package session implements exactly-once invocation: clients mint a
// session id plus a per-session sequence number that rides the 0xF8
// payload header (wire.SessionMagic), and servers keep a bounded dedup
// table mapping (session, seq) to the cached encoded reply. A
// retransmission — or a failover replay of the same logical call against
// an alternate binding — presents the same identity and is answered from
// the cache instead of re-executed, which is what makes non-idempotent
// methods safe to retry (Birrell–Nelson at-most-once semantics, held
// below the object layer so every proxy kind inherits them).
//
// The table is bounded two ways: whole sessions are evicted LRU/TTL, and
// each session keeps only its most recent replies. Evicting a session
// leaves a tombstone recording the highest sequence it had reached, so a
// retry that arrives after eviction fails loudly (Expired → the caller
// sees CodeSessionExpired) instead of silently re-applying — the
// standard bounded-at-most-once trade-off, made explicit.
//
// The package depends only on wire and codec, so the kernel, the replica
// layer, and the shard guard can all consult one implementation.
package session

import (
	"container/list"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Verdict classifies one (session, seq) presentation.
type Verdict int

// Verdicts returned by Begin.
const (
	// Fresh means this invocation has not been seen: execute it. Begin
	// has marked it in flight; the executor must Commit or Abort it.
	Fresh Verdict = iota
	// Replay means the invocation already executed; answer from the
	// returned Entry without dispatching.
	Replay
	// InFlight means the original execution is still running. Kernel
	// dispatch drops the duplicate (the original will answer); callers
	// that cannot wait refuse with a retryable error.
	InFlight
	// Expired means the table once knew this session but evicted it (or
	// the sequence fell below the session's reply window): whether the
	// invocation executed is unknowable, so it must fail loudly rather
	// than re-apply.
	Expired
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Fresh:
		return "fresh"
	case Replay:
		return "replay"
	case InFlight:
		return "in-flight"
	case Expired:
		return "expired"
	default:
		return "verdict(?)"
	}
}

// Entry is one cached reply.
type Entry struct {
	Kind    wire.Kind // response kind (KindReply, or KindError for app errors)
	IsErr   bool      // true when Payload is an encoded InvokeError
	Payload []byte    // encoded reply, exactly as first sent
	Key     string    // shard key tag ("" outside sharded stores)
	Digest  uint32    // crc32c of Payload (WAL dedup records, audits)
}

// Config bounds a Table. Zero fields select the defaults.
type Config struct {
	// MaxSessions caps live sessions (LRU-evicted beyond it). Default 1024.
	MaxSessions int
	// RepliesPerSession caps cached replies per session; older replies
	// are dropped and the session's floor rises, so a retry of a dropped
	// seq reports Expired. Must exceed the client's in-flight concurrency.
	// Default 64.
	RepliesPerSession int
	// TTL evicts sessions idle longer than this (checked on access and
	// by Sweep). Zero means no TTL.
	TTL time.Duration
	// MaxTombstones caps eviction tombstones (FIFO beyond it). Default 4096.
	MaxTombstones int

	// now overrides the clock (tests).
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.RepliesPerSession <= 0 {
		c.RepliesPerSession = 64
	}
	if c.MaxTombstones <= 0 {
		c.MaxTombstones = 4096
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Digest is the reply digest recorded in WAL dedup records: crc32c of
// the encoded reply.
func Digest(payload []byte) uint32 { return crc32.Checksum(payload, crcTable) }

// sess is one session's dedup state.
type sess struct {
	sid        uint64
	lruEl      *list.Element
	lastActive time.Time
	// high is the highest seq ever presented (begun or committed).
	high uint64
	// floor: every seq ≤ floor was once committed but its reply has been
	// dropped; retrying one is Expired.
	floor    uint64
	inflight map[uint64]bool
	done     map[uint64]*Entry
	order    *list.List // commit order of done seqs (front = newest)
}

// Table is a bounded per-session dedup table. Safe for concurrent use.
type Table struct {
	cfg Config

	mu       sync.Mutex
	sessions map[uint64]*sess
	lru      *list.List // *sess, front = most recent
	tombs    map[uint64]uint64
	tombOrd  *list.List // sid FIFO
	replies  int        // total cached replies across sessions

	hits      atomic.Uint64 // replays answered from cache
	expired   atomic.Uint64 // Expired verdicts
	inflightD atomic.Uint64 // InFlight verdicts
	evictions atomic.Uint64 // sessions evicted (LRU or TTL)
}

// NewTable builds a dedup table.
func NewTable(cfg Config) *Table {
	cfg = cfg.withDefaults()
	return &Table{
		cfg:      cfg,
		sessions: make(map[uint64]*sess),
		lru:      list.New(),
		tombs:    make(map[uint64]uint64),
		tombOrd:  list.New(),
	}
}

// Begin presents (sid, seq) for execution. Fresh marks it in flight —
// the caller must Commit or Abort it. Replay returns the cached entry.
func (t *Table) Begin(sid, seq uint64) (Verdict, *Entry) {
	if sid == 0 {
		return Fresh, nil
	}
	now := t.cfg.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked(now)
	s, ok := t.sessions[sid]
	if !ok {
		if high, dead := t.tombs[sid]; dead && seq <= high {
			t.expired.Add(1)
			return Expired, nil
		}
		s = t.reviveLocked(sid, now)
	}
	s.lastActive = now
	t.lru.MoveToFront(s.lruEl)
	if e, ok := s.done[seq]; ok {
		t.hits.Add(1)
		return Replay, e
	}
	if s.inflight[seq] {
		t.inflightD.Add(1)
		return InFlight, nil
	}
	if seq <= s.floor {
		t.expired.Add(1)
		return Expired, nil
	}
	s.inflight[seq] = true
	if seq > s.high {
		s.high = seq
	}
	return Fresh, nil
}

// Peek reports the verdict for (sid, seq) without marking anything in
// flight — the read-only half of Begin, for layers that dedup before
// delegating execution elsewhere.
func (t *Table) Peek(sid, seq uint64) (Verdict, *Entry) {
	if sid == 0 {
		return Fresh, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[sid]
	if !ok {
		if high, dead := t.tombs[sid]; dead && seq <= high {
			return Expired, nil
		}
		return Fresh, nil
	}
	if e, ok := s.done[seq]; ok {
		return Replay, e
	}
	if s.inflight[seq] {
		return InFlight, nil
	}
	if seq <= s.floor {
		return Expired, nil
	}
	return Fresh, nil
}

// Commit records the reply for (sid, seq), clearing its in-flight mark.
// The payload is copied. Committing an already-committed seq overwrites
// idempotently (the rpc reply cache may answer the same identity).
func (t *Table) Commit(sid, seq uint64, kind wire.Kind, isErr bool, payload []byte) {
	t.CommitKeyed(sid, seq, "", kind, isErr, payload)
}

// CommitKeyed is Commit with a shard-key tag, so a guard can carry the
// entry along when the key is handed to a new owner.
func (t *Table) CommitKeyed(sid, seq uint64, key string, kind wire.Kind, isErr bool, payload []byte) {
	if sid == 0 {
		return
	}
	e := &Entry{
		Kind:    kind,
		IsErr:   isErr,
		Payload: append([]byte(nil), payload...),
		Key:     key,
		Digest:  Digest(payload),
	}
	now := t.cfg.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[sid]
	if !ok {
		s = t.reviveLocked(sid, now)
	}
	s.lastActive = now
	t.lru.MoveToFront(s.lruEl)
	delete(s.inflight, seq)
	t.storeLocked(s, seq, e)
}

// storeLocked installs one committed entry, trimming the session's reply
// window. Caller holds t.mu.
func (t *Table) storeLocked(s *sess, seq uint64, e *Entry) {
	if _, ok := s.done[seq]; ok {
		s.done[seq] = e
		return
	}
	s.done[seq] = e
	s.order.PushFront(seq)
	t.replies++
	if seq > s.high {
		s.high = seq
	}
	for len(s.done) > t.cfg.RepliesPerSession {
		oldest := s.order.Back()
		if oldest == nil {
			break
		}
		s.order.Remove(oldest)
		old := oldest.Value.(uint64)
		delete(s.done, old)
		t.replies--
		if old > s.floor {
			s.floor = old
		}
	}
}

// Abort clears an in-flight mark without recording a reply — the
// execution was shed or failed before producing one, so a retry of the
// same identity must be allowed to run.
func (t *Table) Abort(sid, seq uint64) {
	if sid == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.sessions[sid]; ok {
		delete(s.inflight, seq)
	}
}

// reviveLocked creates (or recreates) a session, evicting LRU beyond the
// cap. Caller holds t.mu.
func (t *Table) reviveLocked(sid uint64, now time.Time) *sess {
	s := &sess{
		sid:        sid,
		lastActive: now,
		inflight:   make(map[uint64]bool),
		done:       make(map[uint64]*Entry),
		order:      list.New(),
	}
	// A tombstoned session coming back (a seq past its tombstone) keeps
	// its floor: seqs at or below the tombstone stay Expired.
	if high, ok := t.tombs[sid]; ok {
		s.floor, s.high = high, high
		delete(t.tombs, sid)
		for el := t.tombOrd.Front(); el != nil; el = el.Next() {
			if el.Value.(uint64) == sid {
				t.tombOrd.Remove(el)
				break
			}
		}
	}
	s.lruEl = t.lru.PushFront(s)
	t.sessions[sid] = s
	for len(t.sessions) > t.cfg.MaxSessions {
		coldest := t.lru.Back()
		if coldest == nil {
			break
		}
		t.evictLocked(coldest.Value.(*sess))
	}
	return s
}

// evictLocked removes one session, leaving a tombstone at its high mark.
// Caller holds t.mu.
func (t *Table) evictLocked(s *sess) {
	t.lru.Remove(s.lruEl)
	delete(t.sessions, s.sid)
	t.replies -= len(s.done)
	t.evictions.Add(1)
	if _, ok := t.tombs[s.sid]; !ok {
		t.tombOrd.PushBack(s.sid)
	}
	t.tombs[s.sid] = s.high
	for len(t.tombs) > t.cfg.MaxTombstones {
		oldest := t.tombOrd.Front()
		if oldest == nil {
			break
		}
		t.tombOrd.Remove(oldest)
		delete(t.tombs, oldest.Value.(uint64))
	}
}

// sweepLocked evicts TTL-expired sessions. Caller holds t.mu.
func (t *Table) sweepLocked(now time.Time) {
	if t.cfg.TTL <= 0 {
		return
	}
	for {
		coldest := t.lru.Back()
		if coldest == nil {
			return
		}
		s := coldest.Value.(*sess)
		if now.Sub(s.lastActive) < t.cfg.TTL {
			return
		}
		t.evictLocked(s)
	}
}

// Sweep runs one TTL pass explicitly (timers live with the owner; the
// table itself starts no goroutines).
func (t *Table) Sweep() {
	now := t.cfg.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked(now)
}

// Stats is a point-in-time summary of the table.
type Stats struct {
	Sessions   int    // live sessions
	Replies    int    // cached replies across all sessions
	Tombstones int    // evicted-session tombstones
	Hits       uint64 // replays answered from cache
	Expired    uint64 // Expired verdicts returned
	InFlight   uint64 // duplicate-while-running verdicts returned
	Evictions  uint64 // sessions evicted (LRU or TTL)
}

// Stats snapshots the table's counters and occupancy.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	sessions, replies, tombs := len(t.sessions), t.replies, len(t.tombs)
	t.mu.Unlock()
	return Stats{
		Sessions:   sessions,
		Replies:    replies,
		Tombstones: tombs,
		Hits:       t.hits.Load(),
		Expired:    t.expired.Load(),
		InFlight:   t.inflightD.Load(),
		Evictions:  t.evictions.Load(),
	}
}

// Info describes one live session (proxyctl sessions).
type Info struct {
	SID      uint64
	High     uint64
	Cached   int
	InFlight int
}

// Sessions lists the live sessions, most recently used first.
func (t *Table) Sessions() []Info {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Info, 0, len(t.sessions))
	for el := t.lru.Front(); el != nil; el = el.Next() {
		s := el.Value.(*sess)
		out = append(out, Info{SID: s.sid, High: s.high, Cached: len(s.done), InFlight: len(s.inflight)})
	}
	return out
}
