package session

import (
	"errors"
	"time"

	"repro/internal/codec"
	"repro/internal/wire"
)

// Blob encodings. Two shapes share one entry format:
//
//   - Snapshot/Restore (version 1): the whole table — every live session
//     with its floor and reply window, plus the tombstones. A replica
//     group embeds this in its state snapshot so promotion at a new
//     epoch inherits dedup state.
//   - ExportKeys/ImportBlob (version 2): a flat set of key-tagged
//     entries, carried alongside a shard rebalance handoff so the new
//     owner of a key can keep recognizing retries of writes the old
//     owner already applied.
//
// One entry: uvarint sid, uvarint seq, kind byte, flag byte (bit0 =
// IsErr), key bytes, payload bytes. Digests are recomputed on decode.

const (
	blobSnapshot byte = 1
	blobEntries  byte = 2
)

// ErrBadBlob reports a blob the decoder cannot parse.
var ErrBadBlob = errors.New("session: malformed dedup blob")

func appendEntry(dst []byte, sid, seq uint64, e *Entry) []byte {
	dst = wire.AppendUvarint(dst, sid)
	dst = wire.AppendUvarint(dst, seq)
	dst = append(dst, byte(e.Kind))
	var flags byte
	if e.IsErr {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = wire.AppendBytes(dst, []byte(e.Key))
	return wire.AppendBytes(dst, e.Payload)
}

func decodeEntry(src []byte) (sid, seq uint64, e *Entry, rest []byte, err error) {
	sid, n, err := wire.Uvarint(src)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	src = src[n:]
	seq, n, err = wire.Uvarint(src)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	src = src[n:]
	if len(src) < 2 {
		return 0, 0, nil, nil, ErrBadBlob
	}
	kind, flags := wire.Kind(src[0]), src[1]
	src = src[2:]
	key, n, err := wire.Bytes(src)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	src = src[n:]
	payload, n, err := wire.Bytes(src)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	e = &Entry{
		Kind:    kind,
		IsErr:   flags&1 != 0,
		Payload: append([]byte(nil), payload...),
		Key:     string(key),
		Digest:  Digest(payload),
	}
	return sid, seq, e, src[n:], nil
}

// Snapshot encodes the whole table (sessions, reply windows, floors,
// tombstones) for embedding in a replicated object's state snapshot.
func (t *Table) Snapshot() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	dst := []byte{blobSnapshot}
	dst = wire.AppendUvarint(dst, uint64(len(t.sessions)))
	// LRU order back-to-front, so restoring (which pushes front) rebuilds
	// the same recency order.
	for el := t.lru.Back(); el != nil; el = el.Prev() {
		s := el.Value.(*sess)
		dst = wire.AppendUvarint(dst, s.sid)
		dst = wire.AppendUvarint(dst, s.high)
		dst = wire.AppendUvarint(dst, s.floor)
		dst = wire.AppendUvarint(dst, uint64(len(s.done)))
		// Commit order oldest-to-newest for the same reason.
		for oe := s.order.Back(); oe != nil; oe = oe.Prev() {
			seq := oe.Value.(uint64)
			dst = appendEntry(dst, s.sid, seq, s.done[seq])
		}
	}
	dst = wire.AppendUvarint(dst, uint64(t.tombOrd.Len()))
	for el := t.tombOrd.Front(); el != nil; el = el.Next() {
		sid := el.Value.(uint64)
		dst = wire.AppendUvarint(dst, sid)
		dst = wire.AppendUvarint(dst, t.tombs[sid])
	}
	return dst
}

// Restore replaces the table's contents from a Snapshot blob. In-flight
// marks are not part of snapshots (an in-flight invocation at snapshot
// time either commits later or is retried and re-executes).
func (t *Table) Restore(blob []byte) error {
	if len(blob) == 0 || blob[0] != blobSnapshot {
		return ErrBadBlob
	}
	src := blob[1:]
	nSess, n, err := wire.Uvarint(src)
	if err != nil {
		return err
	}
	src = src[n:]
	now := t.cfg.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sessions = make(map[uint64]*sess)
	t.lru.Init()
	t.tombs = make(map[uint64]uint64)
	t.tombOrd.Init()
	t.replies = 0
	for i := uint64(0); i < nSess; i++ {
		var sid, high, floor, nDone uint64
		if sid, n, err = wire.Uvarint(src); err != nil {
			return err
		}
		src = src[n:]
		if high, n, err = wire.Uvarint(src); err != nil {
			return err
		}
		src = src[n:]
		if floor, n, err = wire.Uvarint(src); err != nil {
			return err
		}
		src = src[n:]
		if nDone, n, err = wire.Uvarint(src); err != nil {
			return err
		}
		src = src[n:]
		s := t.reviveLocked(sid, now)
		s.high, s.floor = high, floor
		for j := uint64(0); j < nDone; j++ {
			var seq uint64
			var e *Entry
			if _, seq, e, src, err = decodeEntry(src); err != nil {
				return err
			}
			t.storeLocked(s, seq, e)
		}
		if s.high < high {
			s.high = high
		}
	}
	nTombs, n, err := wire.Uvarint(src)
	if err != nil {
		return err
	}
	src = src[n:]
	for i := uint64(0); i < nTombs; i++ {
		var sid, high uint64
		if sid, n, err = wire.Uvarint(src); err != nil {
			return err
		}
		src = src[n:]
		if high, n, err = wire.Uvarint(src); err != nil {
			return err
		}
		src = src[n:]
		if _, ok := t.sessions[sid]; ok {
			continue // revived by a restored entry; the floor already covers it
		}
		if _, ok := t.tombs[sid]; !ok {
			t.tombOrd.PushBack(sid)
		}
		t.tombs[sid] = high
	}
	return nil
}

// ExportKeys encodes every cached entry whose shard key is in keys, for
// carrying alongside a key handoff. Nil when nothing matches, so callers
// can skip the extra argument entirely.
func (t *Table) ExportKeys(keys []string) []byte {
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		want[k] = true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var body []byte
	count := uint64(0)
	for el := t.lru.Back(); el != nil; el = el.Prev() {
		s := el.Value.(*sess)
		for oe := s.order.Back(); oe != nil; oe = oe.Prev() {
			seq := oe.Value.(uint64)
			e := s.done[seq]
			if e.Key == "" || !want[e.Key] {
				continue
			}
			body = appendEntry(body, s.sid, seq, e)
			count++
		}
	}
	if count == 0 {
		return nil
	}
	dst := []byte{blobEntries}
	dst = wire.AppendUvarint(dst, count)
	return append(dst, body...)
}

// ImportBlob merges an ExportKeys blob into the table (new owner of the
// moved keys). Idempotent: pushes are retried. Nil and empty blobs are
// no-ops.
func (t *Table) ImportBlob(blob []byte) error {
	if len(blob) == 0 {
		return nil
	}
	if blob[0] != blobEntries {
		return ErrBadBlob
	}
	src := blob[1:]
	count, n, err := wire.Uvarint(src)
	if err != nil {
		return err
	}
	src = src[n:]
	now := t.cfg.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := uint64(0); i < count; i++ {
		var sid, seq uint64
		var e *Entry
		if sid, seq, e, src, err = decodeEntry(src); err != nil {
			return err
		}
		s, ok := t.sessions[sid]
		if !ok {
			s = t.reviveLocked(sid, now)
		}
		delete(s.inflight, seq)
		t.storeLocked(s, seq, e)
	}
	return nil
}

// FilterKeys returns the subset of keys that tag at least one cached
// entry (routers use it to avoid shipping empty blobs).
func (t *Table) FilterKeys(keys []string) []string {
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		want[k] = true
	}
	hit := make(map[string]bool)
	t.mu.Lock()
	for _, s := range t.sessions {
		for _, e := range s.done {
			if e.Key != "" && want[e.Key] {
				hit[e.Key] = true
			}
		}
	}
	t.mu.Unlock()
	out := make([]string, 0, len(hit))
	for _, k := range keys {
		if hit[k] {
			out = append(out, k)
		}
	}
	return out
}

// expiredPayload is built once: the preencoded InvokeError a server
// answers an Expired verdict with. The struct shape mirrors
// core.EncodeInvokeError, and the code value is core.CodeSessionExpired
// — pinned by a test in core, since this package cannot import core
// (core imports it).
var expiredPayload = func() []byte {
	s := codec.Struct{Name: "InvokeError", Fields: []codec.Field{
		{Name: "Code", Value: int64(10)}, // core.CodeSessionExpired
		{Name: "Method", Value: ""},
		{Name: "Msg", Value: "session expired: retry outlived the dedup window; outcome unknown"},
	}}
	buf, err := codec.Append(nil, s)
	if err != nil {
		panic(err)
	}
	return buf
}()

// ExpiredPayload returns the encoded InvokeError (CodeSessionExpired)
// answering a retry whose session was evicted: whether the original
// executed is unknowable, so the caller must fail loudly, not replay.
// Callers must not mutate the returned slice.
func ExpiredPayload() []byte { return expiredPayload }

// DefaultTTL is the default idle-session lifetime proxyd configures.
const DefaultTTL = 10 * time.Minute
