package session

import (
	"context"
	"fmt"
	"strings"
)

// TypeName is the proxy type the status service is exported under.
const TypeName = "session.Service"

// Service exposes a node's dedup table over the ordinary invocation
// surface: proxyd exports it as services/session, and proxyctl's
// sessions verb renders it. It implements core.Service structurally
// (this package cannot import core; core imports it).
type Service struct{ tab *Table }

// NewService wraps a table for export. A nil table serves a disabled
// notice, mirroring the overload service's shape.
func NewService(tab *Table) *Service { return &Service{tab: tab} }

// Invoke dispatches the session methods.
func (s *Service) Invoke(_ context.Context, method string, _ []any) ([]any, error) {
	switch method {
	case "sessions":
		if s.tab == nil {
			return []any{"session: dedup disabled (-session-dedup to enable)\n"}, nil
		}
		return []any{FormatStatus(s.tab.Stats(), s.tab.Sessions())}, nil
	default:
		return nil, fmt.Errorf("session: unknown method %q", method)
	}
}

// maxListed bounds the per-session lines in the status rendering; the
// summary always covers the whole table.
const maxListed = 32

// FormatStatus renders a table summary plus its busiest sessions (split
// out from Invoke so proxyctl's output is unit-testable without a
// cluster).
func FormatStatus(st Stats, infos []Info) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sessions   %d live, %d tombstones, %d evicted\n", st.Sessions, st.Tombstones, st.Evictions)
	fmt.Fprintf(&b, "replies    %d cached\n", st.Replies)
	fmt.Fprintf(&b, "dedup      %d replays answered, %d in-flight dups, %d expired\n", st.Hits, st.InFlight, st.Expired)
	for i, info := range infos {
		if i >= maxListed {
			fmt.Fprintf(&b, "… and %d more\n", len(infos)-maxListed)
			break
		}
		fmt.Fprintf(&b, "  %016x seq=%d cached=%d inflight=%d\n", info.SID, info.High, info.Cached, info.InFlight)
	}
	return b.String()
}
