package session

import (
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

// fakeClock is a manually-advanced clock for TTL tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newClockTable(cfg Config) (*Table, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	cfg.now = clk.now
	return NewTable(cfg), clk
}

func TestBeginCommitReplay(t *testing.T) {
	tab := NewTable(Config{})
	v, _ := tab.Begin(7, 1)
	if v != Fresh {
		t.Fatalf("first presentation = %v, want fresh", v)
	}
	// Duplicate while running.
	if v, _ := tab.Begin(7, 1); v != InFlight {
		t.Fatalf("dup while running = %v, want in-flight", v)
	}
	tab.Commit(7, 1, wire.KindReply, false, []byte("reply-1"))
	v, e := tab.Begin(7, 1)
	if v != Replay {
		t.Fatalf("retry after commit = %v, want replay", v)
	}
	if string(e.Payload) != "reply-1" || e.Kind != wire.KindReply || e.IsErr {
		t.Fatalf("cached entry = %+v", e)
	}
	if e.Digest != Digest([]byte("reply-1")) {
		t.Fatal("entry digest mismatch")
	}
	// The next sequence is fresh.
	if v, _ := tab.Begin(7, 2); v != Fresh {
		t.Fatalf("next seq = %v, want fresh", v)
	}
	st := tab.Stats()
	if st.Hits != 1 || st.InFlight != 1 || st.Sessions != 1 || st.Replies != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSessionZeroIsUnsequenced(t *testing.T) {
	tab := NewTable(Config{})
	if v, _ := tab.Begin(0, 5); v != Fresh {
		t.Fatal("sid 0 must always be fresh")
	}
	if v, _ := tab.Peek(0, 5); v != Fresh {
		t.Fatal("peek sid 0 must be fresh")
	}
	tab.Commit(0, 5, wire.KindReply, false, []byte("x"))
	tab.Abort(0, 5)
	if st := tab.Stats(); st.Sessions != 0 || st.Replies != 0 {
		t.Fatalf("sid 0 left state behind: %+v", st)
	}
}

func TestAbortAllowsRetry(t *testing.T) {
	tab := NewTable(Config{})
	tab.Begin(7, 1)
	tab.Abort(7, 1)
	if v, _ := tab.Begin(7, 1); v != Fresh {
		t.Fatalf("retry after abort = %v, want fresh", v)
	}
	tab.Abort(99, 1) // unknown session: no-op
}

func TestCommitErrorEntry(t *testing.T) {
	tab := NewTable(Config{})
	tab.Begin(7, 1)
	tab.Commit(7, 1, wire.KindError, true, []byte("boom"))
	v, e := tab.Begin(7, 1)
	if v != Replay || !e.IsErr || e.Kind != wire.KindError {
		t.Fatalf("error replay = %v, %+v", v, e)
	}
}

func TestCommitWithoutBeginCreatesSession(t *testing.T) {
	// Replica members commit applied writes they never Began.
	tab := NewTable(Config{})
	tab.Commit(7, 3, wire.KindReply, false, []byte("r"))
	if v, _ := tab.Peek(7, 3); v != Replay {
		t.Fatal("member-side commit not visible")
	}
}

func TestReplyWindowRaisesFloor(t *testing.T) {
	tab := NewTable(Config{RepliesPerSession: 2})
	for seq := uint64(1); seq <= 4; seq++ {
		tab.Begin(7, seq)
		tab.Commit(7, seq, wire.KindReply, false, []byte{byte(seq)})
	}
	// Window holds {3,4}; 1 and 2 were dropped, raising the floor.
	if v, _ := tab.Begin(7, 1); v != Expired {
		t.Fatalf("retry below floor = %v, want expired", v)
	}
	if v, _ := tab.Peek(7, 2); v != Expired {
		t.Fatalf("peek below floor = %v, want expired", v)
	}
	if v, _ := tab.Begin(7, 3); v != Replay {
		t.Fatalf("retry inside window = %v, want replay", v)
	}
	if st := tab.Stats(); st.Replies != 2 {
		t.Fatalf("replies = %d, want 2", st.Replies)
	}
}

func TestCommitOverwriteIsIdempotent(t *testing.T) {
	tab := NewTable(Config{})
	tab.Commit(7, 1, wire.KindReply, false, []byte("a"))
	tab.Commit(7, 1, wire.KindReply, false, []byte("a"))
	if st := tab.Stats(); st.Replies != 1 {
		t.Fatalf("double commit counted twice: %+v", st)
	}
}

func TestLRUEvictionTombstones(t *testing.T) {
	tab := NewTable(Config{MaxSessions: 2})
	for sid := uint64(1); sid <= 3; sid++ {
		tab.Begin(sid, 1)
		tab.Commit(sid, 1, wire.KindReply, false, []byte("r"))
	}
	// Session 1 was coldest and is gone; its committed seq is Expired,
	// but a seq past the tombstone revives the session fresh.
	if v, _ := tab.Begin(1, 1); v != Expired {
		t.Fatal("retry into tombstone must be expired")
	}
	if v, _ := tab.Begin(1, 2); v != Fresh {
		t.Fatal("new seq past tombstone must be fresh")
	}
	// The revived session keeps its floor: seq 1 stays expired.
	if v, _ := tab.Begin(1, 1); v != Expired {
		t.Fatal("revived session must keep its floor")
	}
	st := tab.Stats()
	if st.Evictions < 2 || st.Expired != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTombstoneCapFIFO(t *testing.T) {
	tab := NewTable(Config{MaxSessions: 1, MaxTombstones: 2})
	for sid := uint64(1); sid <= 4; sid++ {
		tab.Begin(sid, 1)
		tab.Commit(sid, 1, wire.KindReply, false, []byte("r"))
	}
	if st := tab.Stats(); st.Tombstones != 2 {
		t.Fatalf("tombstones = %d, want 2", st.Tombstones)
	}
	// Session 1's tombstone fell off the FIFO: its retry is (unavoidably)
	// fresh again — the documented bounded-at-most-once trade-off.
	if v, _ := tab.Peek(1, 1); v != Fresh {
		t.Fatal("dropped tombstone should read fresh")
	}
}

func TestTTLSweep(t *testing.T) {
	tab, clk := newClockTable(Config{TTL: time.Minute})
	tab.Begin(7, 1)
	tab.Commit(7, 1, wire.KindReply, false, []byte("r"))
	clk.advance(30 * time.Second)
	tab.Begin(8, 1) // touches 8, not 7
	clk.advance(45 * time.Second)
	tab.Sweep()
	// 7 idled past the TTL; 8 is 45s idle and survives.
	if v, _ := tab.Peek(7, 1); v != Expired {
		t.Fatal("TTL-evicted session must be expired")
	}
	if v, _ := tab.Peek(8, 1); v != InFlight {
		t.Fatal("recently-active session must survive the sweep")
	}
	if st := tab.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestPeekDoesNotMarkInflight(t *testing.T) {
	tab := NewTable(Config{})
	if v, _ := tab.Peek(7, 1); v != Fresh {
		t.Fatal("peek unknown = fresh")
	}
	if v, _ := tab.Begin(7, 1); v != Fresh {
		t.Fatal("begin after peek must still be fresh")
	}
	if v, _ := tab.Peek(7, 1); v != InFlight {
		t.Fatal("peek of running invocation = in-flight")
	}
}

func TestSessionsListing(t *testing.T) {
	tab := NewTable(Config{})
	tab.Begin(1, 1)
	tab.Commit(1, 1, wire.KindReply, false, []byte("r"))
	tab.Begin(2, 5)
	infos := tab.Sessions()
	if len(infos) != 2 {
		t.Fatalf("sessions = %d, want 2", len(infos))
	}
	// Most recently used first.
	if infos[0].SID != 2 || infos[0].High != 5 || infos[0].InFlight != 1 {
		t.Fatalf("infos[0] = %+v", infos[0])
	}
	if infos[1].SID != 1 || infos[1].Cached != 1 {
		t.Fatalf("infos[1] = %+v", infos[1])
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		Fresh: "fresh", Replay: "replay", InFlight: "in-flight",
		Expired: "expired", Verdict(99): "verdict(?)",
	} {
		if got := v.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", v, got, want)
		}
	}
}

func TestMinter(t *testing.T) {
	m := NewMinter()
	if m.SID() == 0 {
		t.Fatal("minted sid must be nonzero")
	}
	sid1, seq1 := m.Next()
	sid2, seq2 := m.Next()
	if sid1 != m.SID() || sid2 != sid1 {
		t.Fatal("sid must be stable across Next calls")
	}
	if seq1 != 1 || seq2 != 2 {
		t.Fatalf("sequences = %d, %d; want 1, 2", seq1, seq2)
	}
	if NewMinter().SID() == m.SID() {
		t.Fatal("two minters drew the same sid")
	}
}

func TestServiceAndFormatStatus(t *testing.T) {
	disabled := NewService(nil)
	out, err := disabled.Invoke(nil, "sessions", nil)
	if err != nil || !strings.Contains(out[0].(string), "disabled") {
		t.Fatalf("disabled service: %v, %v", out, err)
	}
	if _, err := disabled.Invoke(nil, "nope", nil); err == nil {
		t.Fatal("unknown method must error")
	}

	tab := NewTable(Config{})
	tab.Begin(0xAB, 1)
	tab.Commit(0xAB, 1, wire.KindReply, false, []byte("r"))
	tab.Begin(0xAB, 1) // a replay hit
	svc := NewService(tab)
	out, err = svc.Invoke(nil, "sessions", nil)
	if err != nil {
		t.Fatal(err)
	}
	text := out[0].(string)
	for _, want := range []string{"1 live", "1 cached", "1 replays answered", "00000000000000ab"} {
		if !strings.Contains(text, want) {
			t.Errorf("status output missing %q:\n%s", want, text)
		}
	}
	// The listing truncates past maxListed sessions.
	big := NewTable(Config{})
	for sid := uint64(1); sid <= maxListed+5; sid++ {
		big.Begin(sid, 1)
	}
	if text := FormatStatus(big.Stats(), big.Sessions()); !strings.Contains(text, "and 5 more") {
		t.Errorf("truncation notice missing:\n%s", text)
	}
}
