// Package kernel implements the node/context runtime the proxy principle
// assumes: nodes host contexts (address spaces), contexts host objects, and
// the kernel's only job is to move frames between objects. It provides
// request/reply correlation but deliberately does not interpret payloads —
// invocation semantics live in the layers above (rpc, core), and
// service-private protocols pass through unexamined.
package kernel

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/overload"
	"repro/internal/session"
	"repro/internal/wire"
)

// Handler receives the frames addressed to one object. Implementations are
// invoked concurrently and must do their own locking. The frame is owned by
// the handler (it will not be reused by the kernel).
type Handler interface {
	HandleFrame(ktx *Context, f *wire.Frame)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ktx *Context, f *wire.Frame)

// HandleFrame implements Handler.
func (fn HandlerFunc) HandleFrame(ktx *Context, f *wire.Frame) { fn(ktx, f) }

// Errors returned by kernel operations.
var (
	ErrClosed       = errors.New("kernel: closed")
	ErrNoContext    = errors.New("kernel: no such context")
	ErrNoObject     = errors.New("kernel: no such object")
	ErrObjectExists = errors.New("kernel: object id already registered")
)

// RemoteError is the error a Call returns when the far side answered with a
// KindError frame. Payload carries the codec-encoded error description.
type RemoteError struct {
	From    wire.Addr
	Payload []byte
	// NoRoute reports that the answering kernel found no such context or
	// object at the destination (the response carried wire.FlagNoRoute):
	// the request provably never executed, so callers may safely redirect
	// it to an alternate binding.
	NoRoute bool
	// Pushback reports that the answering kernel's admission controller
	// shed the request before it reached a service (the response carried
	// wire.FlagPushback): the request provably never executed, and the
	// sender should wait RetryAfter (a hint; zero when the payload
	// carried none) before offering more load.
	Pushback bool
	// RetryAfter is the overloaded node's retry-after hint (only
	// meaningful when Pushback is set).
	RetryAfter time.Duration
}

// Error implements error.
func (e *RemoteError) Error() string {
	if e.Pushback {
		return fmt.Sprintf("kernel: overload pushback from %s (retry after %s)", e.From, e.RetryAfter)
	}
	return fmt.Sprintf("kernel: remote error from %s (%d bytes)", e.From, len(e.Payload))
}

// RemoteErrorFrom builds the RemoteError for a KindError response frame,
// decoding the kernel-level flags it carried (FlagNoRoute, FlagPushback
// and its retry-after payload). The rpc layer shares it so both call
// paths classify kernel-level responses identically.
func RemoteErrorFrom(resp *wire.Frame) *RemoteError {
	re := &RemoteError{
		From:    resp.Src,
		Payload: resp.Payload,
		NoRoute: resp.Flags&wire.FlagNoRoute != 0,
	}
	if resp.Flags&wire.FlagPushback != 0 {
		re.Pushback = true
		re.RetryAfter = wire.DecodePushback(resp.Payload)
	}
	return re
}

// NodeOption configures a Node.
type NodeOption func(*Node)

// DefaultDispatchLimit is the default bound on concurrently-running
// handlers per node (see WithDispatchLimit).
const DefaultDispatchLimit = 512

// WithDispatchLimit bounds concurrently-running handlers (default
// DefaultDispatchLimit). When the limit saturates, the node's receive
// pump blocks before spawning the next handler: inbound frames queue in
// the endpoint's receive buffer, then in the transport, so overload
// turns into backpressure on senders (and eventually rpc timeouts)
// instead of unbounded goroutine growth. Responses are exempt — they
// complete pending calls directly and never consume a slot, so a
// saturated node can still drain the calls it has in flight.
func WithDispatchLimit(n int) NodeOption {
	return func(nd *Node) {
		if n > 0 {
			nd.sem = make(chan struct{}, n)
		}
	}
}

// WithAdmission replaces the fixed dispatch semaphore with an adaptive
// admission controller (internal/overload): sheddable inbound requests
// — KindRequest and service-private custom kinds — are admitted up to a
// concurrency limit learned from observed handler latency, queued
// briefly when the limit saturates, and shed with a pushback response
// (KindError + wire.FlagPushback carrying a retry-after hint) when they
// would wait past the queue deadline. Shed requests therefore fail fast
// at the sender instead of timing out. Priority classes ride an optional
// payload header (wire.PriorityMagic): high-priority traffic (replica
// syncs, rebalance steps) bypasses shedding, low-priority traffic sheds
// first. System kinds below KindCustom (membership, invalidations,
// leases, migration) are always treated as high priority — shedding
// coordination traffic would break coherence to save microseconds — and
// responses complete pending calls directly, exempt as ever. Pings are
// answered below admission entirely.
func WithAdmission(c *overload.Controller) NodeOption {
	return func(nd *Node) { nd.adm = c }
}

// TraceDirection labels a traced frame's direction relative to this node.
type TraceDirection uint8

// Trace directions.
const (
	// TraceSend is an outbound frame leaving any of the node's contexts.
	TraceSend TraceDirection = iota + 1
	// TraceRecv is an inbound frame about to be routed.
	TraceRecv
)

// String names the direction.
func (d TraceDirection) String() string {
	switch d {
	case TraceSend:
		return "send"
	case TraceRecv:
		return "recv"
	default:
		return fmt.Sprintf("dir(%d)", uint8(d))
	}
}

// WithTrace installs an observability hook called for every frame the node
// sends or receives. The hook runs on the hot path and must be fast; the
// frame must not be retained or mutated. Payloads are visible to the hook,
// so deployments that trace must trust the tracer with service-private
// protocol contents.
func WithTrace(fn func(dir TraceDirection, f *wire.Frame)) NodeOption {
	return func(nd *Node) { nd.trace = fn }
}

// WithSessions installs a per-session dedup table consulted below the
// object layer: a session-stamped request (the 0xF8 payload header)
// whose (session, seq) already executed is answered from the cached
// reply without dispatching a handler; one still executing is dropped
// (the original will answer the retransmitting client); one whose
// session the table evicted is refused with the session-expired error.
// Requests without the header pass through untouched, so the table
// costs unstamped traffic one nil check. Replies sent through
// Context.Respond/RespondError are recorded automatically; kernel-level
// no-route and pushback responses bypass recording by construction
// (they prove the invocation never ran — a retry SHOULD execute).
func WithSessions(tab *session.Table) NodeOption {
	return func(nd *Node) { nd.sessions = tab }
}

// trainCapMarker is implemented by endpoints that coalesce outbound
// frames into trains (netsim.CoalescedEndpoint) and need to learn which
// peers can unpack them. The kernel feeds it from the receive pump: any
// inbound frame advertising wire.FlagTrains proves its sender decodes
// trains too (the capability bit rides on every frame a coalescing peer
// sends, pings and acks included).
type trainCapMarker interface {
	MarkTrainCapable(wire.NodeID)
}

// Node hosts contexts on one endpoint and pumps inbound frames to them.
type Node struct {
	ep       netsim.Endpoint
	capMark  trainCapMarker
	sem      chan struct{}
	adm      *overload.Controller
	trace    func(TraceDirection, *wire.Frame)
	sessions *session.Table

	// inboundObs, when set, is called with the source node of every
	// inbound frame (see SetInboundObserver).
	inboundObs atomic.Pointer[func(src wire.NodeID)]

	mu       sync.Mutex
	contexts map[wire.ContextID]*Context
	nextCtx  wire.ContextID
	closed   bool
	done     chan struct{}
}

// NewNode wraps an endpoint. The node starts its receive pump immediately;
// call Close to stop it (closing the endpoint as well).
func NewNode(ep netsim.Endpoint, opts ...NodeOption) *Node {
	n := &Node{
		ep:       ep,
		sem:      make(chan struct{}, DefaultDispatchLimit),
		contexts: make(map[wire.ContextID]*Context),
		nextCtx:  1,
		done:     make(chan struct{}),
	}
	for _, o := range opts {
		o(n)
	}
	n.capMark, _ = ep.(trainCapMarker)
	go n.pump()
	return n
}

// ID reports the node's identity.
func (n *Node) ID() wire.NodeID { return n.ep.LocalNode() }

// SessionTable exposes the node's exactly-once dedup table; nil without
// WithSessions. Shared with layers that own their own dedup scope (the
// replicated-object primary, the shard guard) and with the stats service
// that reports occupancy.
func (n *Node) SessionTable() *session.Table { return n.sessions }

// SetInboundObserver installs (nil removes) a hook called with the source
// node of every inbound frame from another node — including the liveness
// pings the kernel answers below the object layer, which otherwise leave
// no trace above it. The health monitor uses this as passive "we can
// still hear this node" evidence when classifying asymmetric partitions.
// The hook runs on the receive pump and must be fast and non-blocking.
func (n *Node) SetInboundObserver(fn func(src wire.NodeID)) {
	if fn == nil {
		n.inboundObs.Store(nil)
		return
	}
	n.inboundObs.Store(&fn)
}

// NewContext creates a fresh context (address space) on this node.
func (n *Node) NewContext() (*Context, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	id := n.nextCtx
	n.nextCtx++
	c := &Context{
		node:    n,
		addr:    wire.Addr{Node: n.ID(), Context: id},
		objects: make(map[wire.ObjectID]Handler),
		nextObj: 1,
	}
	for i := range c.pending {
		c.pending[i].m = make(map[uint64]chan *wire.Frame)
	}
	// Request ids must be unique across restarts of a context at the same
	// address: remote reply caches key on (source address, request id), so
	// a process that restarts and counts from 1 again would be answered
	// with a previous incarnation's cached replies. A random origin makes
	// collisions vanishingly unlikely (the Birrell–Nelson conversation-id
	// fix).
	var seed [8]byte
	if _, err := cryptorand.Read(seed[:]); err == nil {
		c.reqID.Store(binary.BigEndian.Uint64(seed[:]) >> 1)
	}
	n.contexts[id] = c
	return c, nil
}

// Context returns the context with the given id, if it exists.
func (n *Node) Context(id wire.ContextID) (*Context, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	c, ok := n.contexts[id]
	return c, ok
}

// Close stops the node: the endpoint closes, the pump drains, and every
// pending call fails.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	ctxs := make([]*Context, 0, len(n.contexts))
	for _, c := range n.contexts {
		ctxs = append(ctxs, c)
	}
	n.mu.Unlock()
	err := n.ep.Close()
	<-n.done
	for _, c := range ctxs {
		c.failPending(ErrClosed)
	}
	return err
}

func (n *Node) pump() {
	defer close(n.done)
	local := n.ID()
	for f := range n.ep.Recv() {
		if n.trace != nil {
			n.trace(TraceRecv, f)
		}
		if f.Src.Node != 0 && f.Src.Node != local {
			if p := n.inboundObs.Load(); p != nil {
				(*p)(f.Src.Node)
			}
			if n.capMark != nil && f.Flags&wire.FlagTrains != 0 {
				n.capMark.MarkTrainCapable(f.Src.Node)
			}
		}
		n.route(f)
	}
}

func (n *Node) route(f *wire.Frame) {
	// Frame trains are unpacked here, below the object layer: each member
	// is routed as if it had arrived alone, so member requests fan out
	// onto the ordinary dispatch machinery (parallel handler goroutines)
	// and member responses complete the sharded pending table directly.
	// Members alias the train's payload, which is safe because inbound
	// frames are never pooled; a member that fails its own CRC is dropped
	// by the walk (counted in wire.ReadTrainStats) without affecting its
	// neighbors, and a train with damaged framing loses only its tail.
	if f.Kind == wire.KindTrain {
		_, _, _ = wire.ForEachTrainMember(f.Payload, func(m *wire.Frame) {
			g := *m
			if n.trace != nil {
				n.trace(TraceRecv, &g)
			}
			n.route(&g)
		})
		return
	}
	// Liveness probes are answered by the kernel itself, whatever context
	// they name: a ping asks "is this node up", not "is this object up".
	// The health monitor (internal/health) relies on this.
	if f.Kind == wire.KindPing && f.Flags&wire.FlagResponse == 0 {
		if f.Flags&wire.FlagOneWay == 0 && !f.Src.IsZero() {
			ack := wire.GetFrame()
			ack.Kind = wire.KindAck
			ack.Flags = wire.FlagResponse
			ack.ReqID = f.ReqID
			ack.Src = f.Dst
			ack.Dst = f.Src
			ack.Object = wire.KernelObject
			_ = n.ep.Send(ack)
			ack.Release()
		}
		return
	}
	n.mu.Lock()
	c, ok := n.contexts[f.Dst.Context]
	n.mu.Unlock()
	if !ok {
		// Frame for a context that does not exist (it may have been
		// destroyed). Answer requests with an error so callers fail fast
		// instead of timing out; drop everything else.
		if f.Flags&wire.FlagResponse == 0 && f.Flags&wire.FlagOneWay == 0 && !f.Src.IsZero() {
			n.replyNoRoute(f)
		}
		return
	}
	c.dispatch(f)
}

var noSuchContext = []byte("no such context")

func (n *Node) replyNoRoute(f *wire.Frame) {
	resp := wire.GetFrame()
	resp.Kind = wire.KindError
	resp.Flags = wire.FlagResponse | wire.FlagNoRoute
	resp.ReqID = f.ReqID
	resp.Src = f.Dst
	resp.Dst = f.Src
	resp.Object = wire.KernelObject
	resp.Payload = noSuchContext
	_ = n.ep.Send(resp)
	resp.Release()
}

// pendingShards splits the per-context pending-call table so concurrent
// callers registering and completing calls don't contend on one mutex.
// Request ids are sequential, so id%pendingShards spreads neighbors
// across shards.
const pendingShards = 16

type pendingShard struct {
	mu sync.Mutex
	m  map[uint64]chan *wire.Frame
}

// Context is one address space: a registry of objects plus the machinery
// for correlated calls out of this context.
type Context struct {
	node *Node
	addr wire.Addr

	mu      sync.Mutex
	objects map[wire.ObjectID]Handler
	nextObj wire.ObjectID

	// closed is checked under each shard's lock when registering a
	// pending call: failPending stores true before draining the shards,
	// so no registration can slip in after its shard was drained.
	closed  atomic.Bool
	pending [pendingShards]pendingShard

	reqID atomic.Uint64
}

func (c *Context) shard(id uint64) *pendingShard {
	return &c.pending[id%pendingShards]
}

// Addr reports the context's address.
func (c *Context) Addr() wire.Addr { return c.addr }

// Node returns the hosting node.
func (c *Context) Node() *Node { return c.node }

// Register adds an object and returns its fresh id. Ids are allocated
// densely from 1, stepping over any id a RegisterAt claimed — so a
// well-known object at a high id (the health prober, say) never shifts
// where sequential exports land (the directory must stay at object 1).
func (c *Context) Register(h Handler) wire.ObjectID {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextObj
	for {
		if _, ok := c.objects[id]; !ok {
			break
		}
		id++
	}
	c.nextObj = id + 1
	c.objects[id] = h
	return id
}

// RegisterAt adds an object at a fixed id (well-known services). The
// sequential allocator is left alone: Register skips occupied ids.
func (c *Context) RegisterAt(id wire.ObjectID, h Handler) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.objects[id]; ok {
		return fmt.Errorf("%w: %d", ErrObjectExists, id)
	}
	c.objects[id] = h
	return nil
}

// Replace atomically swaps the handler registered at id, returning the
// previous handler. Migration uses this to install a forwarding tombstone
// at an object's old id without a window where callers see "no such
// object".
func (c *Context) Replace(id wire.ObjectID, h Handler) (Handler, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	old, ok := c.objects[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoObject, id)
	}
	c.objects[id] = h
	return old, nil
}

// Unregister removes an object. Frames already in flight to it will get
// "no such object" errors.
func (c *Context) Unregister(id wire.ObjectID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.objects, id)
}

// Lookup finds a registered object.
func (c *Context) Lookup(id wire.ObjectID) (Handler, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.objects[id]
	return h, ok
}

// ObjectCount reports how many objects are registered (for tests/metrics).
func (c *Context) ObjectCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.objects)
}

func (c *Context) dispatch(f *wire.Frame) {
	if f.Flags&wire.FlagResponse != 0 {
		s := c.shard(f.ReqID)
		s.mu.Lock()
		ch, ok := s.m[f.ReqID]
		if ok {
			delete(s.m, f.ReqID)
		}
		s.mu.Unlock()
		if ok {
			ch <- f // buffered, never blocks
		}
		// Unmatched responses (late replies after timeout) are dropped.
		return
	}
	c.mu.Lock()
	h, ok := c.objects[f.Object]
	c.mu.Unlock()
	if !ok {
		if f.Flags&wire.FlagOneWay == 0 && !f.Src.IsZero() {
			resp := wire.GetFrame()
			resp.Kind = wire.KindError
			resp.Flags = wire.FlagResponse | wire.FlagNoRoute
			resp.ReqID = f.ReqID
			resp.Dst = f.Src
			resp.Object = wire.KernelObject
			resp.Payload = []byte(fmt.Sprintf("no such object %d", f.Object))
			_ = c.Send(resp)
			resp.Release()
		}
		return
	}
	// Exactly-once dedup (WithSessions): consulted after the object
	// lookup — a missing object must answer no-route so failover knows
	// the request never ran — and before admission, so a replay is
	// answered from cache even on a saturated node. Only session-stamped
	// requests take this path; the common unstamped case costs one nil
	// check and one leading-byte peek.
	var sessSID, sessSeq uint64
	sessionBegun := false
	if tab := c.node.sessions; tab != nil && f.Flags&wire.FlagOneWay == 0 &&
		(f.Kind == wire.KindRequest || f.Kind >= wire.KindCustom) {
		if sid, seq, ok := wire.PeekSession(f.Payload); ok {
			switch verdict, ent := tab.Begin(sid, seq); verdict {
			case session.Replay:
				c.replayCached(f, ent)
				return
			case session.InFlight:
				// The original execution will answer; the client keeps
				// retransmitting under the same identity until it does.
				return
			case session.Expired:
				c.replyExpired(f)
				return
			default: // Fresh: marked in flight; Respond/RespondError commit it.
				sessSID, sessSeq, sessionBegun = sid, seq, true
			}
		}
	}
	if ac := c.node.adm; ac != nil {
		// Adaptive admission (WithAdmission): the controller decides —
		// run now, queue briefly, or shed with pushback. The pump never
		// blocks; overload turns into fast failures instead of
		// backpressure-then-timeout.
		shed := func(retryAfter time.Duration) { c.replyOverload(f, retryAfter) }
		if sessionBegun {
			// A shed request never executed: release the in-flight mark so
			// the client's retry is Fresh, not stuck behind a ghost.
			tab := c.node.sessions
			shed = func(retryAfter time.Duration) {
				tab.Abort(sessSID, sessSeq)
				c.replyOverload(f, retryAfter)
			}
		}
		ac.Submit(admissionClass(f),
			func() { h.HandleFrame(c, f) },
			shed)
		return
	}
	select {
	case c.node.sem <- struct{}{}:
	case <-c.node.done:
		return
	}
	// Plain method-value goroutine launch: unlike a closure this does not
	// allocate a capture environment per dispatched frame.
	go c.runHandler(h, f)
}

// replayCached answers a deduplicated retransmission from the session
// table's cached reply, correlated to the NEW request's id — failover
// issues a fresh ReqID per attempt; (session, seq) is the stable
// identity across them.
func (c *Context) replayCached(f *wire.Frame, ent *session.Entry) {
	if f.Src.IsZero() {
		return
	}
	resp := wire.GetFrame()
	resp.Kind = ent.Kind
	if ent.IsErr {
		resp.Kind = wire.KindError
	}
	resp.Flags = wire.FlagResponse
	resp.ReqID = f.ReqID
	resp.Dst = f.Src
	resp.Object = wire.KernelObject
	resp.Payload = ent.Payload
	_ = c.Send(resp)
	resp.Release()
}

// replyExpired refuses a retry whose session the dedup table evicted.
// Deliberately NOT FlagNoRoute: the refusal must decode as a
// CodeSessionExpired InvokeError and surface to the caller — a no-route
// flag would license failover, and an alternate binding knows even less
// about whether the original executed.
func (c *Context) replyExpired(f *wire.Frame) {
	if f.Src.IsZero() {
		return
	}
	resp := wire.GetFrame()
	resp.Kind = wire.KindError
	resp.Flags = wire.FlagResponse
	resp.ReqID = f.ReqID
	resp.Dst = f.Src
	resp.Object = wire.KernelObject
	resp.Payload = session.ExpiredPayload()
	_ = c.Send(resp)
	resp.Release()
}

// recordSession commits an object-layer reply into the dedup table when
// the request it answers was session-stamped. Kernel-level no-route,
// pushback, and expired responses are built with raw sends, so they are
// never recorded — correctly: they prove the invocation did not run.
func (c *Context) recordSession(req *wire.Frame, kind wire.Kind, payload []byte) {
	tab := c.node.sessions
	if tab == nil || req.Flags&wire.FlagOneWay != 0 {
		return
	}
	if req.Kind != wire.KindRequest && req.Kind < wire.KindCustom {
		return
	}
	if sid, seq, ok := wire.PeekSession(req.Payload); ok {
		tab.Commit(sid, seq, kind, kind == wire.KindError, payload)
	}
}

func (c *Context) runHandler(h Handler, f *wire.Frame) {
	defer func() { <-c.node.sem }()
	h.HandleFrame(c, f)
}

// admissionClass grades an inbound request for the admission controller.
// Invocations (KindRequest) and service-private custom kinds carry their
// class in an optional leading priority header; headerless payloads are
// normal. System kinds below KindCustom are coordination traffic —
// invalidations, leases, membership, migration — and are never shed.
func admissionClass(f *wire.Frame) wire.Priority {
	if f.Kind == wire.KindRequest || f.Kind >= wire.KindCustom {
		return wire.PeekPriority(f.Payload)
	}
	return wire.PriorityHigh
}

// replyOverload answers a shed request with a pushback error so the
// sender fails fast; the payload carries the retry-after hint. One-way
// and unsourced frames are dropped silently — nobody awaits them.
func (c *Context) replyOverload(f *wire.Frame, retryAfter time.Duration) {
	if f.Flags&wire.FlagOneWay != 0 || f.Src.IsZero() {
		return
	}
	resp := wire.GetFrame()
	resp.Kind = wire.KindError
	resp.Flags = wire.FlagResponse | wire.FlagPushback
	resp.ReqID = f.ReqID
	resp.Dst = f.Src
	resp.Object = wire.KernelObject
	resp.Payload = wire.AppendPushback(resp.Payload[:0], retryAfter)
	_ = c.Send(resp)
	resp.Release()
}

// NextReqID allocates a request id unique within this context.
func (c *Context) NextReqID() uint64 { return c.reqID.Add(1) }

// NewPending allocates a request id and registers a response channel for
// it. The caller owns retransmission and must call CancelPending when done
// (a delivered response cancels implicitly). A nil frame on the channel
// means the context shut down. This is the hook the rpc layer uses to
// retransmit one logical request under a single id.
func (c *Context) NewPending() (uint64, <-chan *wire.Frame, error) {
	id := c.NextReqID()
	// Response channels are deliberately not pooled: a late reply
	// delivered into a recycled channel owned by a newer call would
	// mis-correlate the two requests.
	ch := make(chan *wire.Frame, 1)
	s := c.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.closed.Load() {
		return 0, nil, ErrClosed
	}
	s.m[id] = ch
	return id, ch, nil
}

// CancelPending abandons a pending request registered with NewPending.
// Safe to call after the response arrived.
func (c *Context) CancelPending(id uint64) { c.dropPending(id) }

// Send transmits a frame from this context. The frame's Src is stamped
// with the context's address.
func (c *Context) Send(f *wire.Frame) error {
	f.Src = c.addr
	if c.node.trace != nil {
		c.node.trace(TraceSend, f)
	}
	return c.node.ep.Send(f)
}

// Call sends a correlated request and waits for its response frame. The
// response is matched purely by ReqID + FlagResponse, so this works for
// system kinds and for service-private protocols alike. Cancellation and
// deadlines come from ctx. A KindError response is surfaced as *RemoteError.
func (c *Context) Call(ctx context.Context, dst wire.Addr, obj wire.ObjectID, kind wire.Kind, flags uint16, payload []byte) (*wire.Frame, error) {
	id := c.NextReqID()
	ch := make(chan *wire.Frame, 1)

	s := c.shard(id)
	s.mu.Lock()
	if c.closed.Load() {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.m[id] = ch
	s.mu.Unlock()

	f := wire.GetFrame()
	f.Kind = kind
	f.Flags = flags &^ wire.FlagResponse
	f.ReqID = id
	f.Dst = dst
	f.Object = obj
	f.Payload = payload
	err := c.Send(f)
	f.Release() // transports copy before Send returns
	if err != nil {
		c.dropPending(id)
		return nil, err
	}
	select {
	case resp := <-ch:
		if resp == nil {
			return nil, ErrClosed
		}
		if resp.Kind == wire.KindError {
			return nil, RemoteErrorFrom(resp)
		}
		return resp, nil
	case <-ctx.Done():
		c.dropPending(id)
		return nil, ctx.Err()
	}
}

func (c *Context) dropPending(id uint64) {
	s := c.shard(id)
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}

func (c *Context) failPending(err error) {
	// Mark closed first: any NewPending/Call that has not yet taken its
	// shard lock will observe closed and refuse; any that already
	// registered is drained below.
	c.closed.Store(true)
	var chans []chan *wire.Frame
	for i := range c.pending {
		s := &c.pending[i]
		s.mu.Lock()
		for id, ch := range s.m {
			chans = append(chans, ch)
			delete(s.m, id)
		}
		s.mu.Unlock()
	}
	for _, ch := range chans {
		ch <- nil // nil frame signals closure to waiting Call
	}
}

// Respond answers a request frame with the given kind and payload. The
// response frame is pooled: both transports copy it before Send
// returns, so it is recycled immediately after the send.
func (c *Context) Respond(req *wire.Frame, kind wire.Kind, payload []byte) error {
	c.recordSession(req, kind, payload)
	resp := wire.GetFrame()
	resp.Kind = kind
	resp.Flags = wire.FlagResponse
	resp.ReqID = req.ReqID
	resp.Dst = req.Src
	resp.Object = wire.KernelObject
	resp.Payload = payload
	err := c.Send(resp)
	resp.Release()
	return err
}

// RespondError answers a request with a KindError response.
func (c *Context) RespondError(req *wire.Frame, payload []byte) error {
	return c.Respond(req, wire.KindError, payload)
}
