package kernel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// twoNodes builds two nodes on a fresh simulated network.
func twoNodes(t *testing.T, opts ...netsim.NetworkOption) (*Node, *Node) {
	t.Helper()
	net := netsim.New(opts...)
	t.Cleanup(net.Close)
	ep1, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := net.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	n1, n2 := NewNode(ep1), NewNode(ep2)
	t.Cleanup(func() { n1.Close(); n2.Close() })
	return n1, n2
}

// echoHandler answers every request with a KindReply echoing the payload.
type echoHandler struct{}

func (echoHandler) HandleFrame(ktx *Context, f *wire.Frame) {
	_ = ktx.Respond(f, wire.KindReply, f.Payload)
}

func TestCallReply(t *testing.T) {
	n1, n2 := twoNodes(t)
	c1, err := n1.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := n2.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	obj := c2.Register(echoHandler{})

	resp, err := c1.Call(context.Background(), c2.Addr(), obj, wire.KindRequest, 0, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "ping" {
		t.Errorf("payload = %q", resp.Payload)
	}
	if resp.Kind != wire.KindReply {
		t.Errorf("kind = %v", resp.Kind)
	}
}

func TestCallSameNodeCrossContext(t *testing.T) {
	n1, _ := twoNodes(t)
	c1, _ := n1.NewContext()
	c2, _ := n1.NewContext()
	obj := c2.Register(echoHandler{})
	resp, err := c1.Call(context.Background(), c2.Addr(), obj, wire.KindRequest, 0, []byte("local"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "local" {
		t.Errorf("payload = %q", resp.Payload)
	}
}

func TestCallErrorResponse(t *testing.T) {
	n1, n2 := twoNodes(t)
	c1, _ := n1.NewContext()
	c2, _ := n2.NewContext()
	obj := c2.Register(HandlerFunc(func(ktx *Context, f *wire.Frame) {
		_ = ktx.RespondError(f, []byte("denied"))
	}))
	_, err := c1.Call(context.Background(), c2.Addr(), obj, wire.KindRequest, 0, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if string(re.Payload) != "denied" {
		t.Errorf("remote payload = %q", re.Payload)
	}
	if re.NoRoute {
		t.Error("application error marked NoRoute")
	}
	if re.Error() == "" {
		t.Error("empty error string")
	}
}

func TestApplicationNoSuchTextIsNotNoRoute(t *testing.T) {
	// An application error whose text mimics the kernel's must not be
	// mistaken for "addressee missing": NoRoute keys on the wire flag,
	// which only kernels set.
	n1, n2 := twoNodes(t)
	c1, _ := n1.NewContext()
	c2, _ := n2.NewContext()
	obj := c2.Register(HandlerFunc(func(ktx *Context, f *wire.Frame) {
		_ = ktx.RespondError(f, []byte("no such entry"))
	}))
	_, err := c1.Call(context.Background(), c2.Addr(), obj, wire.KindRequest, 0, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.NoRoute {
		t.Error(`application "no such entry" error classified as NoRoute`)
	}
}

func TestCallNoSuchObject(t *testing.T) {
	n1, n2 := twoNodes(t)
	c1, _ := n1.NewContext()
	c2, _ := n2.NewContext()
	_, err := c1.Call(context.Background(), c2.Addr(), 999, wire.KindRequest, 0, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError for missing object", err)
	}
	if !re.NoRoute {
		t.Error("missing-object error not marked NoRoute")
	}
}

func TestCallNoSuchContext(t *testing.T) {
	n1, n2 := twoNodes(t)
	c1, _ := n1.NewContext()
	dst := wire.Addr{Node: n2.ID(), Context: 42}
	_, err := c1.Call(context.Background(), dst, 1, wire.KindRequest, 0, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError for missing context", err)
	}
	if !re.NoRoute {
		t.Error("missing-context error not marked NoRoute")
	}
}

func TestCallTimeout(t *testing.T) {
	n1, n2 := twoNodes(t)
	c1, _ := n1.NewContext()
	c2, _ := n2.NewContext()
	obj := c2.Register(HandlerFunc(func(ktx *Context, f *wire.Frame) {
		// Never responds.
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c1.Call(ctx, c2.Addr(), obj, wire.KindRequest, 0, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

func TestLateReplyDropped(t *testing.T) {
	n1, n2 := twoNodes(t)
	c1, _ := n1.NewContext()
	c2, _ := n2.NewContext()
	release := make(chan struct{})
	obj := c2.Register(HandlerFunc(func(ktx *Context, f *wire.Frame) {
		<-release
		_ = ktx.Respond(f, wire.KindReply, []byte("late"))
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c1.Call(ctx, c2.Addr(), obj, wire.KindRequest, 0, nil); err == nil {
		t.Fatal("want timeout")
	}
	close(release)
	// The late reply must not disturb a subsequent call.
	obj2 := c2.Register(echoHandler{})
	resp, err := c1.Call(context.Background(), c2.Addr(), obj2, wire.KindRequest, 0, []byte("fresh"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "fresh" {
		t.Errorf("payload = %q", resp.Payload)
	}
}

func TestCustomKindPassThrough(t *testing.T) {
	// A service-private protocol: custom kind both ways; the kernel must
	// route it without interpretation.
	n1, n2 := twoNodes(t)
	c1, _ := n1.NewContext()
	c2, _ := n2.NewContext()
	private := wire.KindCustom + 7
	obj := c2.Register(HandlerFunc(func(ktx *Context, f *wire.Frame) {
		if f.Kind != private {
			_ = ktx.RespondError(f, []byte("wrong kind"))
			return
		}
		_ = ktx.Respond(f, private, append([]byte("ack:"), f.Payload...))
	}))
	resp, err := c1.Call(context.Background(), c2.Addr(), obj, private, 0, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != private || string(resp.Payload) != "ack:secret" {
		t.Errorf("resp = %v %q", resp.Kind, resp.Payload)
	}
}

func TestOneWayNoResponse(t *testing.T) {
	n1, n2 := twoNodes(t)
	c1, _ := n1.NewContext()
	c2, _ := n2.NewContext()
	got := make(chan []byte, 1)
	obj := c2.Register(HandlerFunc(func(ktx *Context, f *wire.Frame) {
		got <- append([]byte(nil), f.Payload...)
	}))
	err := c1.Send(&wire.Frame{
		Kind: wire.KindRequest, Flags: wire.FlagOneWay,
		ReqID: c1.NextReqID(), Dst: c2.Addr(), Object: obj, Payload: []byte("fire"),
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if string(p) != "fire" {
			t.Errorf("payload = %q", p)
		}
	case <-time.After(time.Second):
		t.Fatal("one-way frame never arrived")
	}
}

func TestRegisterAtAndUnregister(t *testing.T) {
	n1, _ := twoNodes(t)
	c1, _ := n1.NewContext()
	if err := c1.RegisterAt(100, echoHandler{}); err != nil {
		t.Fatal(err)
	}
	if err := c1.RegisterAt(100, echoHandler{}); !errors.Is(err, ErrObjectExists) {
		t.Errorf("duplicate RegisterAt = %v", err)
	}
	// Fresh ids must not collide with fixed ones, and a high fixed id
	// must not shift where sequential allocation lands: well-known
	// registrations (the health prober at 0x48454C50) would otherwise
	// push the directory off its well-known object 1.
	if id := c1.Register(echoHandler{}); id == 100 {
		t.Errorf("Register collided with RegisterAt(100)")
	} else if id != 1 {
		t.Errorf("first Register after RegisterAt(100) = %d, want 1", id)
	}
	// And when the allocator walks into the fixed id, it steps over it.
	for i := 0; i < 101; i++ {
		if id := c1.Register(echoHandler{}); id == 100 {
			t.Fatalf("Register handed out the fixed id 100")
		}
	}
	if _, ok := c1.Lookup(100); !ok {
		t.Error("Lookup(100) failed")
	}
	c1.Unregister(100)
	if _, ok := c1.Lookup(100); ok {
		t.Error("Lookup(100) found unregistered object")
	}
}

func TestConcurrentCalls(t *testing.T) {
	n1, n2 := twoNodes(t)
	c1, _ := n1.NewContext()
	c2, _ := n2.NewContext()
	obj := c2.Register(echoHandler{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("msg-%d", i))
			resp, err := c1.Call(context.Background(), c2.Addr(), obj, wire.KindRequest, 0, payload)
			if err != nil {
				errs <- err
				return
			}
			if string(resp.Payload) != string(payload) {
				errs <- fmt.Errorf("mismatched reply %q for %q", resp.Payload, payload)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestNestedCallFromHandler(t *testing.T) {
	// Object A's handler calls object B before replying — must not deadlock.
	n1, n2 := twoNodes(t)
	c1, _ := n1.NewContext()
	c2, _ := n2.NewContext()
	inner := c2.Register(echoHandler{})
	outer := c2.Register(HandlerFunc(func(ktx *Context, f *wire.Frame) {
		resp, err := ktx.Call(context.Background(), ktx.Addr(), inner, wire.KindRequest, 0, f.Payload)
		if err != nil {
			_ = ktx.RespondError(f, []byte(err.Error()))
			return
		}
		_ = ktx.Respond(f, wire.KindReply, append([]byte("outer:"), resp.Payload...))
	}))
	resp, err := c1.Call(context.Background(), c2.Addr(), outer, wire.KindRequest, 0, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "outer:x" {
		t.Errorf("payload = %q", resp.Payload)
	}
}

func TestNodeCloseFailsPendingCalls(t *testing.T) {
	n1, n2 := twoNodes(t)
	c1, _ := n1.NewContext()
	c2, _ := n2.NewContext()
	obj := c2.Register(HandlerFunc(func(ktx *Context, f *wire.Frame) {
		// Never responds; caller is stuck until its node closes.
	}))
	done := make(chan error, 1)
	go func() {
		_, err := c1.Call(context.Background(), c2.Addr(), obj, wire.KindRequest, 0, nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	n1.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("pending call survived node close")
	}
	if _, err := n1.NewContext(); !errors.Is(err, ErrClosed) {
		t.Errorf("NewContext after Close = %v", err)
	}
}

func TestCallAfterClose(t *testing.T) {
	n1, n2 := twoNodes(t)
	c1, _ := n1.NewContext()
	c2, _ := n2.NewContext()
	n1.Close()
	_, err := c1.Call(context.Background(), c2.Addr(), 1, wire.KindRequest, 0, nil)
	if !errors.Is(err, ErrClosed) && err == nil {
		t.Errorf("Call after close = %v, want error", err)
	}
}

func TestContextLookupByNode(t *testing.T) {
	n1, _ := twoNodes(t)
	c1, _ := n1.NewContext()
	got, ok := n1.Context(c1.Addr().Context)
	if !ok || got != c1 {
		t.Error("Node.Context lookup failed")
	}
	if _, ok := n1.Context(999); ok {
		t.Error("found nonexistent context")
	}
}

func TestObjectCount(t *testing.T) {
	n1, _ := twoNodes(t)
	c1, _ := n1.NewContext()
	if c1.ObjectCount() != 0 {
		t.Errorf("fresh context has %d objects", c1.ObjectCount())
	}
	c1.Register(echoHandler{})
	c1.Register(echoHandler{})
	if c1.ObjectCount() != 2 {
		t.Errorf("ObjectCount = %d, want 2", c1.ObjectCount())
	}
}

func BenchmarkKernelCallRemote(b *testing.B) {
	net := netsim.New()
	defer net.Close()
	ep1, _ := net.Attach(1)
	ep2, _ := net.Attach(2)
	n1, n2 := NewNode(ep1), NewNode(ep2)
	defer n1.Close()
	defer n2.Close()
	c1, _ := n1.NewContext()
	c2, _ := n2.NewContext()
	obj := c2.Register(echoHandler{})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c1.Call(ctx, c2.Addr(), obj, wire.KindRequest, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestReplaceHandler(t *testing.T) {
	n1, n2 := twoNodes(t)
	c1, _ := n1.NewContext()
	c2, _ := n2.NewContext()
	obj := c2.Register(echoHandler{})

	// Swap in a handler with different behaviour; callers must see it
	// with no window of "no such object".
	old, err := c2.Replace(obj, HandlerFunc(func(ktx *Context, f *wire.Frame) {
		_ = ktx.Respond(f, wire.KindReply, []byte("replaced"))
	}))
	if err != nil {
		t.Fatal(err)
	}
	if old == nil {
		t.Fatal("Replace returned nil old handler")
	}
	resp, err := c1.Call(context.Background(), c2.Addr(), obj, wire.KindRequest, 0, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "replaced" {
		t.Errorf("payload = %q", resp.Payload)
	}
	if _, err := c2.Replace(999, echoHandler{}); !errors.Is(err, ErrNoObject) {
		t.Errorf("Replace(missing) = %v, want ErrNoObject", err)
	}
}

func TestReqIDOriginsDiffer(t *testing.T) {
	// Two contexts (think: two incarnations of a restarted process) must
	// not mint colliding request-id sequences — remote reply caches key
	// on (address, id).
	n1, _ := twoNodes(t)
	c1, _ := n1.NewContext()
	c2, _ := n1.NewContext()
	if c1.NextReqID() == c2.NextReqID() {
		t.Error("two fresh contexts minted identical first request ids")
	}
}

func TestTraceHookSeesTraffic(t *testing.T) {
	net := netsim.New()
	t.Cleanup(net.Close)
	ep1, _ := net.Attach(1)
	ep2, _ := net.Attach(2)
	var mu sync.Mutex
	var events []string
	trace := func(dir TraceDirection, f *wire.Frame) {
		mu.Lock()
		events = append(events, dir.String()+":"+f.Kind.String())
		mu.Unlock()
	}
	n1 := NewNode(ep1, WithTrace(trace))
	n2 := NewNode(ep2, WithTrace(trace))
	t.Cleanup(func() { n1.Close(); n2.Close() })
	c1, _ := n1.NewContext()
	c2, _ := n2.NewContext()
	obj := c2.Register(echoHandler{})
	if _, err := c1.Call(context.Background(), c2.Addr(), obj, wire.KindRequest, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := map[string]bool{"send:request": false, "recv:request": false, "send:reply": false, "recv:reply": false}
	for _, e := range events {
		if _, ok := want[e]; ok {
			want[e] = true
		}
	}
	for e, seen := range want {
		if !seen {
			t.Errorf("trace missing %s (saw %v)", e, events)
		}
	}
	if TraceSend.String() != "send" || TraceRecv.String() != "recv" || TraceDirection(9).String() != "dir(9)" {
		t.Error("TraceDirection.String mismatch")
	}
}

func TestDispatchLimitBoundsConcurrency(t *testing.T) {
	net := netsim.New()
	t.Cleanup(net.Close)
	ep1, _ := net.Attach(1)
	ep2, _ := net.Attach(2)
	n1 := NewNode(ep1)
	n2 := NewNode(ep2, WithDispatchLimit(2))
	t.Cleanup(func() { n1.Close(); n2.Close() })
	c1, _ := n1.NewContext()
	c2, _ := n2.NewContext()

	var mu sync.Mutex
	running, peak := 0, 0
	release := make(chan struct{})
	obj := c2.Register(HandlerFunc(func(ktx *Context, f *wire.Frame) {
		mu.Lock()
		running++
		if running > peak {
			peak = running
		}
		mu.Unlock()
		<-release
		mu.Lock()
		running--
		mu.Unlock()
		_ = ktx.Respond(f, wire.KindReply, nil)
	}))

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = c1.Call(context.Background(), c2.Addr(), obj, wire.KindRequest, 0, nil)
		}()
	}
	// Give dispatch time to admit as many handlers as it will.
	time.Sleep(100 * time.Millisecond)
	mu.Lock()
	got := peak
	mu.Unlock()
	close(release)
	wg.Wait()
	if got > 2 {
		t.Errorf("peak concurrent handlers = %d, limit was 2", got)
	}
	if got == 0 {
		t.Error("no handler ever ran")
	}
}

func TestKernelAnswersPing(t *testing.T) {
	// Liveness probes are answered by the kernel itself, even for a
	// context that does not exist: a ping asks about the node, not an
	// object. This is the primitive internal/health probes with.
	n1, _ := twoNodes(t)
	c1, err := n1.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c1.Call(context.Background(),
		wire.Addr{Node: 2, Context: 999}, wire.KernelObject, wire.KindPing, 0, nil)
	if err != nil {
		t.Fatalf("ping: %v", err)
	}
	if resp.Kind != wire.KindAck {
		t.Errorf("response kind = %v, want KindAck", resp.Kind)
	}
}

func TestOneWayPingUnanswered(t *testing.T) {
	n1, _ := twoNodes(t)
	c1, err := n1.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = c1.Call(ctx, wire.Addr{Node: 2, Context: 1}, wire.KernelObject,
		wire.KindPing, wire.FlagOneWay, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("one-way ping: err = %v, want deadline exceeded (no answer)", err)
	}
}
