package kernel

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/overload"
	"repro/internal/wire"
)

// saturatedPair builds a client and a server whose admission controller
// has one slot and a one-deep queue, plus a handler that parks until
// released. Submitting one call and waiting for started leaves the
// server saturated.
func saturatedPair(t *testing.T, cfg overload.Config, trace func(TraceDirection, *wire.Frame)) (c1, c2 *Context, obj wire.ObjectID, started, release chan struct{}) {
	t.Helper()
	net := netsim.New()
	t.Cleanup(net.Close)
	ep1, _ := net.Attach(1)
	ep2, _ := net.Attach(2)
	n1 := NewNode(ep1)
	opts := []NodeOption{WithAdmission(overload.NewController(cfg, nil, ""))}
	if trace != nil {
		opts = append(opts, WithTrace(trace))
	}
	n2 := NewNode(ep2, opts...)
	t.Cleanup(func() { n1.Close(); n2.Close() })
	c1, _ = n1.NewContext()
	c2, _ = n2.NewContext()
	started = make(chan struct{}, 8)
	release = make(chan struct{})
	obj = c2.Register(HandlerFunc(func(ktx *Context, f *wire.Frame) {
		started <- struct{}{}
		<-release
		_ = ktx.Respond(f, wire.KindReply, f.Payload)
	}))
	return c1, c2, obj, started, release
}

func TestAdmissionShedsWithPushback(t *testing.T) {
	c1, c2, obj, started, release := saturatedPair(t, overload.Config{
		MinLimit: 1, MaxLimit: 1, InitialLimit: 1,
		QueueLimit: 1, QueueDeadline: time.Minute,
	}, nil)
	defer close(release)

	errc := make(chan error, 2)
	call := func() {
		_, err := c1.Call(context.Background(), c2.Addr(), obj, wire.KindRequest, 0, []byte("x"))
		errc <- err
	}
	go call() // occupies the slot
	<-started
	go call() // fills the queue

	// Overflowing the queue must come back as a pushback error carrying
	// a retry-after hint. The second call races with us for the queue
	// slot — if we lose the race our call is the queued one (it times
	// out) and the next attempt finds the queue full.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		_, err := c1.Call(ctx, c2.Addr(), obj, wire.KindRequest, 0, []byte("x"))
		cancel()
		var re *RemoteError
		if !errors.As(err, &re) {
			if time.Now().After(deadline) {
				t.Fatalf("overflow call never shed: %v", err)
			}
			continue
		}
		if !re.Pushback {
			t.Fatalf("overflow error not marked Pushback: %v", re)
		}
		if re.RetryAfter <= 0 {
			t.Errorf("pushback carried no retry-after hint: %v", re)
		}
		if re.NoRoute {
			t.Error("pushback error also marked NoRoute")
		}
		break
	}
}

func TestAdmissionHighPriorityBypassesSaturation(t *testing.T) {
	c1, c2, obj, started, release := saturatedPair(t, overload.Config{
		MinLimit: 1, MaxLimit: 1, InitialLimit: 1,
		QueueLimit: 1, QueueDeadline: time.Minute,
	}, nil)

	blocked := make(chan error, 1)
	go func() {
		_, err := c1.Call(context.Background(), c2.Addr(), obj, wire.KindRequest, 0, []byte("x"))
		blocked <- err
	}()
	<-started

	// With the only slot held, a high-priority request must still be
	// dispatched immediately (it bypasses the limit) — the handler
	// starts even though the first call still blocks.
	payload := append(wire.AppendPriorityHeader(nil, wire.PriorityHigh), []byte("sync")...)
	go func() {
		_, _ = c1.Call(context.Background(), c2.Addr(), obj, wire.KindRequest, 0, payload)
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("high-priority request did not bypass the saturated limit")
	}
	close(release)
	if err := <-blocked; err != nil {
		t.Errorf("blocked call failed after release: %v", err)
	}
}

func TestAdmissionOneWayShedDroppedSilently(t *testing.T) {
	var mu sync.Mutex
	var pushbacks int
	trace := func(dir TraceDirection, f *wire.Frame) {
		if dir == TraceSend && f.Flags&wire.FlagPushback != 0 {
			mu.Lock()
			pushbacks++
			mu.Unlock()
		}
	}
	c1, c2, obj, started, release := saturatedPair(t, overload.Config{
		MinLimit: 1, MaxLimit: 1, InitialLimit: 1,
		QueueLimit: 1, QueueDeadline: time.Minute,
	}, trace)

	done := make(chan error, 1)
	go func() {
		_, err := c1.Call(context.Background(), c2.Addr(), obj, wire.KindRequest, 0, []byte("x"))
		done <- err
	}()
	<-started
	// Fill the queue, then overflow it with one-way frames: they are
	// shed, but nobody awaits them, so no pushback frame may be sent.
	queued := make(chan error, 1)
	go func() {
		_, err := c1.Call(context.Background(), c2.Addr(), obj, wire.KindRequest, 0, []byte("q"))
		queued <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the queued call enqueue
	for i := 0; i < 3; i++ {
		err := c1.Send(&wire.Frame{
			Kind: wire.KindRequest, Flags: wire.FlagOneWay,
			ReqID: c1.NextReqID(), Dst: c2.Addr(), Object: obj, Payload: []byte("fire"),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond) // let the sheds happen
	close(release)
	if err := <-done; err != nil {
		t.Errorf("admitted call failed: %v", err)
	}
	if err := <-queued; err != nil {
		t.Errorf("queued call failed: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if pushbacks != 0 {
		t.Errorf("shed one-way frames produced %d pushback responses, want 0", pushbacks)
	}
}

func TestAdmissionAdmitsNormallyUnderCapacity(t *testing.T) {
	// With admission on but the node idle, ordinary traffic flows exactly
	// as without it — headerless payloads, custom kinds, concurrency.
	net := netsim.New()
	t.Cleanup(net.Close)
	ep1, _ := net.Attach(1)
	ep2, _ := net.Attach(2)
	n1 := NewNode(ep1)
	n2 := NewNode(ep2, WithAdmission(overload.NewController(overload.Config{}, nil, "")))
	t.Cleanup(func() { n1.Close(); n2.Close() })
	c1, _ := n1.NewContext()
	c2, _ := n2.NewContext()
	obj := c2.Register(echoHandler{})

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c1.Call(context.Background(), c2.Addr(), obj, wire.KindRequest, 0, []byte("ok"))
			if err != nil {
				errs <- err
				return
			}
			if string(resp.Payload) != "ok" {
				errs <- errors.New("bad echo")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
