package kernel

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// TestRouteTrainDispatchesMembers feeds the kernel a hand-built train and
// checks that each member request is dispatched as if it had arrived alone,
// with a corrupt member dropped without taking down its neighbors.
func TestRouteTrainDispatchesMembers(t *testing.T) {
	net := netsim.New()
	t.Cleanup(net.Close)
	ep1, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	n1 := NewNode(ep1)
	t.Cleanup(func() { n1.Close() })
	srv, err := n1.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	obj := srv.Register(echoHandler{})

	// A raw endpoint plays a train-capable sender: no kernel on node 3,
	// so replies land directly on its Recv channel.
	ep3, err := net.Attach(3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep3.Close() })

	member := func(id uint64, payload string) *wire.Frame {
		return &wire.Frame{
			Kind:    wire.KindRequest,
			ReqID:   id,
			Src:     wire.Addr{Node: 3, Context: 9},
			Dst:     srv.Addr(),
			Object:  obj,
			Payload: []byte(payload),
		}
	}
	var payload []byte
	for i, text := range []string{"first", "second", "third"} {
		payload, err = wire.AppendTrainMember(payload, member(uint64(i+1), text))
		if err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the middle member's payload bytes: its own CRC rejects it at
	// unpack, and only it.
	len1, p1, _ := wire.Uvarint(payload)
	rest := payload[p1+int(len1):] // second member's length prefix
	len2, p2, _ := wire.Uvarint(rest)
	secondMember := rest[p2 : p2+int(len2)]
	secondMember[len(secondMember)-6] ^= 0x40 // inside "second", ahead of the CRC

	train := &wire.Frame{
		Kind:    wire.KindTrain,
		Flags:   wire.FlagOneWay | wire.FlagTrains,
		Src:     wire.Addr{Node: 3},
		Dst:     wire.Addr{Node: 1},
		Object:  wire.KernelObject,
		Payload: payload,
	}
	if err := ep3.Send(train); err != nil {
		t.Fatal(err)
	}

	got := map[uint64]string{}
	deadline := time.After(5 * time.Second)
	for len(got) < 2 {
		select {
		case f, ok := <-ep3.Recv():
			if !ok {
				t.Fatal("endpoint closed early")
			}
			if f.Kind != wire.KindReply {
				t.Fatalf("unexpected %v", f)
			}
			got[f.ReqID] = string(f.Payload)
		case <-deadline:
			t.Fatalf("timed out with replies %v", got)
		}
	}
	if got[1] != "first" || got[3] != "third" {
		t.Fatalf("replies = %v, want echoes for members 1 and 3", got)
	}
	// The corrupt middle member must never produce a reply.
	select {
	case f := <-ep3.Recv():
		t.Fatalf("corrupt member answered: %v", f)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestPumpLearnsTrainCapability checks the kernel half of the capability
// exchange: a node with a coalescing endpoint marks a peer train-capable
// when any inbound frame from it advertises FlagTrains — here the ack a
// kernel sends back for a liveness ping — and learns nothing from frames
// that don't carry the bit.
func TestPumpLearnsTrainCapability(t *testing.T) {
	net := netsim.New()
	t.Cleanup(net.Close)
	ep1, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	ce1 := netsim.Coalesce(ep1, wire.CoalescerConfig{})
	n1 := NewNode(ce1)
	t.Cleanup(func() { n1.Close() })
	ep2, err := net.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	ce2 := netsim.Coalesce(ep2, wire.CoalescerConfig{})
	n2 := NewNode(ce2)
	t.Cleanup(func() { n2.Close() })
	ctx1, err := n1.NewContext()
	if err != nil {
		t.Fatal(err)
	}

	if ce1.Coalescer().Capable(2) || ce2.Coalescer().Capable(1) {
		t.Fatal("peers marked capable before any exchange")
	}

	// Node 1 pings node 2: the ping advertises FlagTrains, so node 2's
	// pump learns about node 1; the kernel ack comes back through node
	// 2's coalescing endpoint, advertises the bit too, and node 1's pump
	// learns about node 2. One liveness exchange, both directions learned.
	ping := &wire.Frame{Kind: wire.KindPing, ReqID: 77, Dst: wire.Addr{Node: 2}}
	if err := ctx1.Send(ping); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !(ce1.Coalescer().Capable(2) && ce2.Coalescer().Capable(1)) {
		if time.Now().After(deadline) {
			t.Fatalf("capability not learned: 1-knows-2=%v 2-knows-1=%v",
				ce1.Coalescer().Capable(2), ce2.Coalescer().Capable(1))
		}
		time.Sleep(time.Millisecond)
	}
}
