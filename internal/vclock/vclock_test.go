package vclock

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/wire"
)

var (
	addrA = wire.Addr{Node: 1, Context: 1}
	addrB = wire.Addr{Node: 2, Context: 1}
	addrC = wire.Addr{Node: 3, Context: 1}
)

func TestLamportMonotonic(t *testing.T) {
	var l Lamport
	prev := l.Now()
	for i := 0; i < 100; i++ {
		now := l.Tick()
		if now <= prev {
			t.Fatalf("Tick not monotonic: %d after %d", now, prev)
		}
		prev = now
	}
}

func TestLamportObserve(t *testing.T) {
	var l Lamport
	l.Tick() // 1
	if got := l.Observe(10); got != 11 {
		t.Errorf("Observe(10) = %d, want 11", got)
	}
	if got := l.Observe(3); got != 12 {
		t.Errorf("Observe(3) = %d, want 12 (max+1)", got)
	}
}

func TestLamportConcurrent(t *testing.T) {
	var l Lamport
	var wg sync.WaitGroup
	const workers, ticks = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < ticks; j++ {
				l.Tick()
			}
		}()
	}
	wg.Wait()
	if got := l.Now(); got != workers*ticks {
		t.Errorf("after %d ticks Now() = %d", workers*ticks, got)
	}
}

func TestVectorCompare(t *testing.T) {
	tests := []struct {
		name string
		a, b Vector
		want Ordering
	}{
		{"both empty", New(), New(), Equal},
		{"equal", Vector{addrA: 1}, Vector{addrA: 1}, Equal},
		{"before", Vector{addrA: 1}, Vector{addrA: 2}, Before},
		{"after", Vector{addrA: 3}, Vector{addrA: 2}, After},
		{"before missing key", Vector{addrA: 1}, Vector{addrA: 1, addrB: 1}, Before},
		{"after missing key", Vector{addrA: 1, addrB: 1}, Vector{addrA: 1}, After},
		{"concurrent", Vector{addrA: 2, addrB: 1}, Vector{addrA: 1, addrB: 2}, Concurrent},
		{"concurrent disjoint", Vector{addrA: 1}, Vector{addrB: 1}, Concurrent},
		{"zero component ignored", Vector{addrA: 1, addrB: 0}, Vector{addrA: 1}, Equal},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Compare(tt.b); got != tt.want {
				t.Errorf("%v.Compare(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestVectorCompareAntisymmetry(t *testing.T) {
	inverse := map[Ordering]Ordering{Equal: Equal, Before: After, After: Before, Concurrent: Concurrent}
	gen := func(a1, a2, b1, b2, c1, c2 uint8) bool {
		a := Vector{addrA: uint64(a1), addrB: uint64(b1), addrC: uint64(c1)}
		b := Vector{addrA: uint64(a2), addrB: uint64(b2), addrC: uint64(c2)}
		return b.Compare(a) == inverse[a.Compare(b)]
	}
	if err := quick.Check(gen, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorMergeDominates(t *testing.T) {
	gen := func(a1, b1, a2, b2 uint8) bool {
		a := Vector{addrA: uint64(a1), addrB: uint64(b1)}
		b := Vector{addrA: uint64(a2), addrB: uint64(b2)}
		m := a.Clone()
		m.Merge(b)
		return m.Dominates(a) && m.Dominates(b)
	}
	if err := quick.Check(gen, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorTickAfter(t *testing.T) {
	a := Vector{addrA: 1, addrB: 2}
	b := a.Clone()
	b.Tick(addrA)
	if got := a.Compare(b); got != Before {
		t.Errorf("a.Compare(ticked clone) = %v, want Before", got)
	}
}

func TestVectorCloneIndependent(t *testing.T) {
	a := Vector{addrA: 1}
	b := a.Clone()
	b.Tick(addrA)
	if a[addrA] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestVectorEncodeRoundTrip(t *testing.T) {
	gen := func(a1, b1, c1 uint16) bool {
		v := Vector{addrA: uint64(a1), addrB: uint64(b1), addrC: uint64(c1)}
		buf := v.Encode(nil)
		got, n, err := DecodeVector(buf)
		return err == nil && n == len(buf) && got.Compare(v) == Equal && len(got) == len(v)
	}
	if err := quick.Check(gen, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorEncodeCanonical(t *testing.T) {
	v := Vector{addrC: 3, addrA: 1, addrB: 2}
	first := v.Encode(nil)
	for i := 0; i < 10; i++ {
		if got := v.Encode(nil); string(got) != string(first) {
			t.Fatal("Encode is not deterministic across map iteration orders")
		}
	}
}

func TestDecodeVectorErrors(t *testing.T) {
	v := Vector{addrA: 5, addrB: 7}
	buf := v.Encode(nil)
	for i := 0; i < len(buf); i++ {
		if _, _, err := DecodeVector(buf[:i]); err == nil {
			t.Errorf("DecodeVector accepted %d-byte prefix", i)
		}
	}
}

func TestVectorString(t *testing.T) {
	v := Vector{addrB: 5, addrA: 3}
	if got := v.String(); got != "{1.1:3 2.1:5}" {
		t.Errorf("String() = %q", got)
	}
}

func TestOrderingString(t *testing.T) {
	for o, want := range map[Ordering]string{Equal: "equal", Before: "before", After: "after", Concurrent: "concurrent"} {
		if got := o.String(); got != want {
			t.Errorf("Ordering(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}

func BenchmarkVectorCompare(b *testing.B) {
	v1 := Vector{addrA: 1, addrB: 2, addrC: 3}
	v2 := Vector{addrA: 3, addrB: 2, addrC: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v1.Compare(v2)
	}
}

func BenchmarkVectorEncode(b *testing.B) {
	v := Vector{addrA: 1, addrB: 2, addrC: 3}
	buf := make([]byte, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = v.Encode(buf[:0])
	}
}
