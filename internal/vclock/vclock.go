// Package vclock implements Lamport and vector clocks. The cache and
// replication layers use them to order coherence events: a caching proxy
// stamps its copies with the version it observed, and invalidations carry
// the writer's clock so stale updates are recognised regardless of message
// reordering in the (simulated) network.
package vclock

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/wire"
)

// Lamport is a thread-safe Lamport logical clock. The zero value is ready
// to use.
type Lamport struct {
	mu  sync.Mutex
	now uint64
}

// Tick advances the clock for a local event and returns the new time.
func (l *Lamport) Tick() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now++
	return l.now
}

// Observe merges a timestamp received in a message and returns the clock's
// new time (max(local, remote)+1).
func (l *Lamport) Observe(remote uint64) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if remote > l.now {
		l.now = remote
	}
	l.now++
	return l.now
}

// Now reads the clock without advancing it.
func (l *Lamport) Now() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.now
}

// Ordering is the result of comparing two vector clocks.
type Ordering int

// Possible orderings of two vector clocks.
const (
	// Equal means the clocks are identical.
	Equal Ordering = iota
	// Before means the receiver causally precedes the argument.
	Before
	// After means the receiver causally follows the argument.
	After
	// Concurrent means neither precedes the other.
	Concurrent
)

// String names the ordering.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("ordering(%d)", int(o))
	}
}

// Vector is a vector clock keyed by context address. Vectors are not
// thread-safe; guard them with the owning structure's lock. A nil Vector
// behaves as the zero (empty) clock for reads.
type Vector map[wire.Addr]uint64

// New returns an empty vector clock.
func New() Vector { return make(Vector) }

// Clone returns an independent copy.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	for k, t := range v {
		c[k] = t
	}
	return c
}

// Tick advances the component for addr and returns the new value.
func (v Vector) Tick(addr wire.Addr) uint64 {
	v[addr]++
	return v[addr]
}

// Merge folds another clock into v, taking the component-wise maximum.
func (v Vector) Merge(other Vector) {
	for k, t := range other {
		if t > v[k] {
			v[k] = t
		}
	}
}

// Compare reports the causal relationship between v and other.
func (v Vector) Compare(other Vector) Ordering {
	var less, greater bool
	for k, t := range v {
		switch o := other[k]; {
		case t < o:
			less = true
		case t > o:
			greater = true
		}
	}
	for k, o := range other {
		if _, ok := v[k]; !ok && o > 0 {
			less = true
		}
	}
	switch {
	case less && greater:
		return Concurrent
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// Dominates reports whether v ≥ other component-wise (v is Equal or After).
func (v Vector) Dominates(other Vector) bool {
	o := v.Compare(other)
	return o == Equal || o == After
}

// Encode appends the clock to dst in a canonical (sorted) order.
func (v Vector) Encode(dst []byte) []byte {
	keys := make([]wire.Addr, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Node != keys[j].Node {
			return keys[i].Node < keys[j].Node
		}
		return keys[i].Context < keys[j].Context
	})
	dst = wire.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = wire.AppendAddr(dst, k)
		dst = wire.AppendUvarint(dst, v[k])
	}
	return dst
}

// DecodeVector parses a clock encoded by Encode, returning it and the
// number of bytes consumed.
func DecodeVector(src []byte) (Vector, int, error) {
	n, used, err := wire.Uvarint(src)
	if err != nil {
		return nil, 0, fmt.Errorf("vclock: decode count: %w", err)
	}
	v := make(Vector, n)
	for i := uint64(0); i < n; i++ {
		addr, an, err := wire.DecodeAddr(src[used:])
		if err != nil {
			return nil, 0, fmt.Errorf("vclock: decode key %d: %w", i, err)
		}
		used += an
		t, tn, err := wire.Uvarint(src[used:])
		if err != nil {
			return nil, 0, fmt.Errorf("vclock: decode value %d: %w", i, err)
		}
		used += tn
		v[addr] = t
	}
	return v, used, nil
}

// String renders the clock canonically, e.g. "{1.1:3 2.1:5}".
func (v Vector) String() string {
	keys := make([]wire.Addr, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Node != keys[j].Node {
			return keys[i].Node < keys[j].Node
		}
		return keys[i].Context < keys[j].Context
	})
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", k, v[k])
	}
	b.WriteByte('}')
	return b.String()
}
