// Package netsim provides the message transports the system runs on: a
// simulated network with configurable per-link latency, bandwidth, jitter,
// loss and partitions (used by tests and benchmarks so every experiment's
// shape is reproducible on one machine), and a real TCP transport
// (tcp.go) for multi-process deployment.
//
// This substitutes for the 1986 paper's assumed LAN hardware: experiments
// sweep the link parameters instead of being pinned to a 10 Mb/s Ethernet.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/wire"
)

// Endpoint is a node's attachment to a network. Implementations route
// outbound frames by their destination node and surface inbound frames on
// Recv. Endpoints are safe for concurrent use.
type Endpoint interface {
	// Send transmits the frame toward f.Dst.Node. Delivery is best-effort
	// and asynchronous; an error means the frame was definitely not sent
	// (closed endpoint, unknown destination), not that it arrived.
	Send(f *wire.Frame) error
	// Recv returns the channel of inbound frames. The channel closes when
	// the endpoint is closed.
	Recv() <-chan *wire.Frame
	// LocalNode reports the node this endpoint belongs to.
	LocalNode() wire.NodeID
	// Close detaches the endpoint. Safe to call twice.
	Close() error
}

// Errors returned by network operations.
var (
	ErrClosed      = errors.New("netsim: endpoint closed")
	ErrUnknownNode = errors.New("netsim: unknown destination node")
	ErrDuplicate   = errors.New("netsim: node already attached")
	ErrNodeCrashed = errors.New("netsim: node crashed")
)

// LinkConfig describes one directed link's behaviour.
type LinkConfig struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// BytesPerSecond throttles serialization; zero means infinite.
	BytesPerSecond int64
	// LossRate drops frames with this probability in [0, 1).
	LossRate float64
}

func (lc LinkConfig) delay(size int, rng func(int64) int64, rfloat func() float64) (time.Duration, bool) {
	if lc.LossRate > 0 && rfloat() < lc.LossRate {
		return 0, false
	}
	d := lc.Latency
	if lc.Jitter > 0 {
		d += time.Duration(rng(int64(lc.Jitter)))
	}
	if lc.BytesPerSecond > 0 {
		d += time.Duration(int64(size) * int64(time.Second) / lc.BytesPerSecond)
	}
	return d, true
}

// LinkCond is a gray-failure condition layered ON TOP of a link's base
// LinkConfig: extra delay, extra loss, and byte corruption added to an
// otherwise-healthy link. Unlike SetLink, degradation composes with the
// base link and is removed with Restore, so a "slow but alive" node is
// scripted without knowing (or clobbering) the underlying link settings.
type LinkCond struct {
	// ExtraLatency is added to every frame's one-way delay.
	ExtraLatency time.Duration
	// ExtraJitter adds a further uniform random delay in [0, ExtraJitter).
	ExtraJitter time.Duration
	// LossRate drops frames with this additional probability in [0, 1).
	LossRate float64
	// CorruptRate garbles one byte of the frame's encoding with this
	// probability in [0, 1). A garbled frame travels the wire but fails
	// the receiver's CRC check and is discarded there (Stats.Corrupted),
	// so to the sender corruption looks exactly like loss.
	CorruptRate float64
}

// IsZero reports whether the condition degrades nothing.
func (c LinkCond) IsZero() bool {
	return c.ExtraLatency == 0 && c.ExtraJitter == 0 && c.LossRate == 0 && c.CorruptRate == 0
}

// Stats counts network activity. All counters are cumulative.
type Stats struct {
	Sent       uint64 // frames accepted by Send
	Delivered  uint64 // frames handed to a receiver
	Lost       uint64 // frames dropped by the loss model
	Partition  uint64 // frames dropped by a partition
	Overrun    uint64 // frames dropped because the receiver queue was full
	Crashed    uint64 // frames dropped because the destination node was down
	Corrupted  uint64 // frames garbled in flight and rejected by the receiver's CRC
	BytesMoved uint64 // payload+header bytes of delivered frames
}

// NetworkOption configures a Network.
type NetworkOption func(*Network)

// WithDefaultLink sets the link configuration used for every pair of nodes
// that has no explicit override.
func WithDefaultLink(lc LinkConfig) NetworkOption {
	return func(n *Network) { n.defaultLink = lc }
}

// WithLocalLink sets the link configuration for same-node traffic
// (context-to-context on one machine). Default: zero latency, no loss.
func WithLocalLink(lc LinkConfig) NetworkOption {
	return func(n *Network) { n.localLink = lc }
}

// WithSeed seeds the loss/jitter RNG, making drop decisions reproducible.
func WithSeed(seed int64) NetworkOption {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithQueueDepth sets each endpoint's inbound buffer (default 1024 frames).
func WithQueueDepth(d int) NetworkOption {
	return func(n *Network) {
		if d > 0 {
			n.queueDepth = d
		}
	}
}

// Network is an in-process simulated network. Create with New, attach one
// endpoint per node, and exchange frames between them.
type Network struct {
	defaultLink LinkConfig
	localLink   LinkConfig
	queueDepth  int

	mu           sync.Mutex
	rng          *rand.Rand
	endpoints    map[wire.NodeID]*simEndpoint
	links        map[[2]wire.NodeID]LinkConfig
	partitioned  map[[2]wire.NodeID]bool
	degraded     map[[2]wire.NodeID]LinkCond
	nodeCond     map[wire.NodeID]LinkCond
	crashed      map[wire.NodeID]bool
	incarnations map[wire.NodeID]uint64
	queues       map[[2]wire.NodeID]*linkQueue
	stats        Stats
	closed       bool
}

// New creates a network with the given options. Without options the network
// is perfect: zero latency, infinite bandwidth, no loss.
func New(opts ...NetworkOption) *Network {
	n := &Network{
		queueDepth:   1024,
		rng:          rand.New(rand.NewSource(1)),
		endpoints:    make(map[wire.NodeID]*simEndpoint),
		links:        make(map[[2]wire.NodeID]LinkConfig),
		partitioned:  make(map[[2]wire.NodeID]bool),
		degraded:     make(map[[2]wire.NodeID]LinkCond),
		nodeCond:     make(map[wire.NodeID]LinkCond),
		crashed:      make(map[wire.NodeID]bool),
		incarnations: make(map[wire.NodeID]uint64),
		queues:       make(map[[2]wire.NodeID]*linkQueue),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Attach joins a node to the network and returns its endpoint.
func (n *Network) Attach(node wire.NodeID) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.endpoints[node]; ok {
		return nil, fmt.Errorf("%w: %d", ErrDuplicate, node)
	}
	ep := &simEndpoint{
		net:  n,
		node: node,
		recv: make(chan *wire.Frame, n.queueDepth),
	}
	n.endpoints[node] = ep
	if n.incarnations[node] == 0 {
		n.incarnations[node] = 1
	}
	return ep, nil
}

// Crash takes a node down. The node's endpoint stops receiving (already
// queued inbound frames drop) and every Send from it fails with
// ErrNodeCrashed; frames addressed to it are silently dropped, exactly as a
// powered-off machine looks to its peers. The endpoint itself stays
// attached so Restart can bring the node back (fail-recover model: the
// simulation approximates a reboot that keeps durable state).
func (n *Network) Crash(node wire.NodeID) {
	n.mu.Lock()
	if n.crashed[node] {
		n.mu.Unlock()
		return
	}
	n.crashed[node] = true
	ep := n.endpoints[node]
	n.mu.Unlock()
	if ep == nil {
		return
	}
	// Drop frames that arrived before the crash but were never consumed:
	// they are the "queued frames" a real crash loses.
	for {
		select {
		case _, ok := <-ep.recv:
			if !ok {
				return
			}
		default:
			return
		}
	}
}

// Restart brings a crashed node back with a new incarnation number. Frames
// sent to it after Restart deliver normally again.
func (n *Network) Restart(node wire.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.crashed[node] {
		return
	}
	delete(n.crashed, node)
	n.incarnations[node]++
}

// Crashed reports whether the node is currently down.
func (n *Network) Crashed(node wire.NodeID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[node]
}

// Incarnation reports how many times the node has come up: 1 after Attach,
// incremented by every Restart. Zero means the node was never attached.
func (n *Network) Incarnation(node wire.NodeID) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.incarnations[node]
}

// SetLink overrides the directed link from a to b. Use twice for symmetry.
func (n *Network) SetLink(from, to wire.NodeID, lc LinkConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]wire.NodeID{from, to}] = lc
}

// Partition blocks all traffic between a and b (both directions) until
// Heal is called.
func (n *Network) Partition(a, b wire.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned[[2]wire.NodeID{a, b}] = true
	n.partitioned[[2]wire.NodeID{b, a}] = true
}

// PartitionOneWay blocks traffic from→to only: frames the other way still
// deliver. This is the asymmetric (gray) partition — from's calls to to
// all time out while to can keep talking to from — until Heal(from, to)
// removes it. A one-way cut on top of an existing two-way partition
// narrows nothing; Heal always clears both directions.
func (n *Network) PartitionOneWay(from, to wire.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned[[2]wire.NodeID{from, to}] = true
}

// Heal removes a partition between a and b (either or both directions).
func (n *Network) Heal(a, b wire.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitioned, [2]wire.NodeID{a, b})
	delete(n.partitioned, [2]wire.NodeID{b, a})
}

// Degrade layers a gray-failure condition on the a↔b link, both
// directions, on top of whatever the base link config is. Calling it
// again replaces the previous condition; Restore removes it.
func (n *Network) Degrade(a, b wire.NodeID, cond LinkCond) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.degraded[[2]wire.NodeID{a, b}] = cond
	n.degraded[[2]wire.NodeID{b, a}] = cond
}

// DegradeOneWay layers a condition on the directed from→to link only —
// the asymmetric half of the gray-failure model (slow or lossy in one
// direction, clean in the other).
func (n *Network) DegradeOneWay(from, to wire.NodeID, cond LinkCond) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.degraded[[2]wire.NodeID{from, to}] = cond
}

// Restore clears any degradation on the a↔b link (both directions).
func (n *Network) Restore(a, b wire.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.degraded, [2]wire.NodeID{a, b})
	delete(n.degraded, [2]wire.NodeID{b, a})
}

// DegradeNode layers a condition on every link touching the node, in
// both directions — the "one slow machine" scenario: every peer sees the
// node's traffic degrade without any per-pair scripting.
func (n *Network) DegradeNode(node wire.NodeID, cond LinkCond) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodeCond[node] = cond
}

// RestoreNode clears a node-wide degradation.
func (n *Network) RestoreNode(node wire.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodeCond, node)
}

// Snapshot returns the current counters.
func (n *Network) Snapshot() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Close shuts the whole network down, closing every endpoint.
func (n *Network) Close() {
	n.mu.Lock()
	eps := make([]*simEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.closed = true
	n.mu.Unlock()
	for _, ep := range eps {
		_ = ep.Close()
	}
}

func (n *Network) linkFor(from, to wire.NodeID) LinkConfig {
	if from == to {
		return n.localLink
	}
	if lc, ok := n.links[[2]wire.NodeID{from, to}]; ok {
		return lc
	}
	return n.defaultLink
}

// send routes one frame. The caller still owns f; the network clones it
// only once the frame survives the drop models, so lost frames cost no
// copy and senders may recycle their frame as soon as Send returns.
func (n *Network) send(from wire.NodeID, f *wire.Frame) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if n.crashed[from] {
		n.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrNodeCrashed, from)
	}
	dst, ok := n.endpoints[f.Dst.Node]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownNode, f.Dst.Node)
	}
	n.stats.Sent++
	if n.partitioned[[2]wire.NodeID{from, f.Dst.Node}] {
		n.stats.Partition++
		n.mu.Unlock()
		return nil // silently dropped: partitions look like loss to senders
	}
	if n.crashed[f.Dst.Node] {
		n.stats.Crashed++
		n.mu.Unlock()
		return nil // like a partition: the sender cannot tell
	}
	lc := n.linkFor(from, f.Dst.Node)
	delay, delivered := lc.delay(f.EncodedLen(),
		func(m int64) int64 { return n.rng.Int63n(m) },
		n.rng.Float64)
	if !delivered {
		n.stats.Lost++
		n.mu.Unlock()
		return nil
	}
	// Layer gray-failure conditions on top of the base link: the directed
	// pair's degradation plus any node-wide condition at either end. Each
	// applies its own loss/corruption draw and delay penalty.
	corrupt := false
	for _, cond := range [3]LinkCond{
		n.degraded[[2]wire.NodeID{from, f.Dst.Node}],
		n.nodeCond[from],
		n.nodeCond[f.Dst.Node],
	} {
		if cond.IsZero() {
			continue
		}
		if cond.LossRate > 0 && n.rng.Float64() < cond.LossRate {
			n.stats.Lost++
			n.mu.Unlock()
			return nil
		}
		if cond.CorruptRate > 0 && n.rng.Float64() < cond.CorruptRate {
			corrupt = true
		}
		delay += cond.ExtraLatency
		if cond.ExtraJitter > 0 {
			delay += time.Duration(n.rng.Int63n(int64(cond.ExtraJitter)))
		}
	}
	var flipByte, flipBit int
	if corrupt {
		flipByte = n.rng.Intn(f.EncodedLen())
		flipBit = n.rng.Intn(8)
	}
	q := n.queueFor(from, f.Dst.Node)
	n.mu.Unlock()

	if corrupt {
		// Garble the frame exactly as a receiver would see it: encode,
		// flip one bit in flight, re-parse. The CRC trailer rejects the
		// damage (any single-bit error is detected), so the frame is
		// counted and dropped here — to the sender this is loss, and the
		// rpc layer's retransmission is what heals it. Decode is still
		// attempted so a framing bug that silently accepted a garbled
		// frame would surface as a delivery, not stay hidden.
		buf, err := f.Encode(make([]byte, 0, f.EncodedLen()))
		if err == nil {
			buf[flipByte] ^= 1 << flipBit
			g, _, err := wire.Decode(buf)
			if err != nil {
				n.mu.Lock()
				n.stats.Corrupted++
				n.mu.Unlock()
				return nil
			}
			q.enqueue(dst, &g, delay)
			return nil
		}
	}

	// The frame survived the drop models: clone now so the network owns
	// its copy and the sender's (possibly pooled) frame is free again.
	c := f.Clone()

	// Lock order is q.mu → dst.mu → n.mu; send holds none of them here.
	q.enqueue(dst, &c, delay)
	return nil
}

// queueFor returns the FIFO queue for the directed link; n.mu must be held.
func (n *Network) queueFor(from, to wire.NodeID) *linkQueue {
	key := [2]wire.NodeID{from, to}
	q, ok := n.queues[key]
	if !ok {
		q = &linkQueue{net: n}
		n.queues[key] = q
	}
	return q
}

func (n *Network) deliver(dst *simEndpoint, f *wire.Frame) {
	n.mu.Lock()
	if n.crashed[dst.node] {
		n.stats.Crashed++
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	dst.mu.Lock()
	if dst.closed {
		dst.mu.Unlock()
		return
	}
	select {
	case dst.recv <- f:
		dst.mu.Unlock()
		n.mu.Lock()
		n.stats.Delivered++
		n.stats.BytesMoved += uint64(f.EncodedLen())
		n.mu.Unlock()
	default:
		dst.mu.Unlock()
		n.mu.Lock()
		n.stats.Overrun++
		n.mu.Unlock()
	}
}

// deliverBatch hands one scheduler tick's worth of due frames for one
// link to their shared endpoint, folding the per-frame stats updates
// into a single locked update instead of two lock round-trips per
// frame. All frames in a batch target the same endpoint.
func (n *Network) deliverBatch(dst *simEndpoint, frames []*wire.Frame) {
	n.mu.Lock()
	if n.crashed[dst.node] {
		n.stats.Crashed += uint64(len(frames))
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	var delivered, overrun, bytes uint64
	dst.mu.Lock()
	if dst.closed {
		dst.mu.Unlock()
		return
	}
	for _, f := range frames {
		select {
		case dst.recv <- f:
			delivered++
			bytes += uint64(f.EncodedLen())
		default:
			overrun++
		}
	}
	dst.mu.Unlock()
	n.mu.Lock()
	n.stats.Delivered += delivered
	n.stats.BytesMoved += bytes
	n.stats.Overrun += overrun
	n.mu.Unlock()
}

// linkQueue serializes deliveries on one directed link. Each frame's delay
// decides its due time, but a frame never overtakes the one ahead of it:
// due times are clamped to be monotonic (FIFO with head-of-line blocking),
// matching how a real point-to-point link behaves. Without this, two frames
// with independent jitter each riding a private timer could arrive
// reversed.
type linkQueue struct {
	net *Network

	mu      sync.Mutex
	items   []queuedFrame
	scratch []*wire.Frame // reused batch buffer for pop's tick flush
	lastDue time.Time
	armed   bool
	timer   *time.Timer
}

type queuedFrame struct {
	dst *simEndpoint
	f   *wire.Frame
	due time.Time
}

func (q *linkQueue) enqueue(dst *simEndpoint, f *wire.Frame, delay time.Duration) {
	q.mu.Lock()
	now := time.Now()
	due := now.Add(delay)
	if due.Before(q.lastDue) {
		due = q.lastDue
	}
	q.lastDue = due
	if !q.armed && len(q.items) == 0 && !due.After(now) {
		// Fast path: link idle and the frame is already due. Delivering
		// under q.mu keeps it ordered against a concurrent enqueue.
		q.net.deliver(dst, f)
		q.mu.Unlock()
		return
	}
	q.items = append(q.items, queuedFrame{dst: dst, f: f, due: due})
	if !q.armed {
		q.armed = true
		q.arm(time.Until(due))
	}
	q.mu.Unlock()
}

// arm schedules pop; q.mu must be held.
func (q *linkQueue) arm(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if q.timer == nil {
		q.timer = time.AfterFunc(d, q.pop)
	} else {
		q.timer.Reset(d)
	}
}

// pop delivers every due frame in order, then re-arms for the next one.
// Delivery happens under q.mu: that is what serializes the link. Frames
// that are due together are coalesced into one batch per tick (sharing
// one endpoint push and one stats update) rather than delivered one
// lock round-trip at a time.
func (q *linkQueue) pop() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) > 0 {
		if wait := time.Until(q.items[0].due); wait > 0 {
			q.arm(wait)
			return
		}
		// Batch the contiguous run of frames that are already due and
		// share the head's endpoint. (After a crash–reattach cycle a
		// queue can hold frames for an old endpoint incarnation; runs
		// split at the boundary so each batch has one destination.)
		dst := q.items[0].dst
		n := 1
		for n < len(q.items) && q.items[n].dst == dst && !q.items[n].due.After(time.Now()) {
			n++
		}
		q.scratch = q.scratch[:0]
		for i := 0; i < n; i++ {
			q.scratch = append(q.scratch, q.items[i].f)
		}
		q.items = q.items[n:]
		if n == 1 {
			q.net.deliver(dst, q.scratch[0])
		} else {
			q.net.deliverBatch(dst, q.scratch)
		}
	}
	q.items = nil
	q.armed = false
}

type simEndpoint struct {
	net  *Network
	node wire.NodeID

	mu     sync.Mutex
	closed bool
	recv   chan *wire.Frame
}

func (e *simEndpoint) Send(f *wire.Frame) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.mu.Unlock()
	// send clones once the frame survives the drop models; the caller's
	// frame and payload may be recycled as soon as this returns.
	return e.net.send(e.node, f)
}

func (e *simEndpoint) Recv() <-chan *wire.Frame { return e.recv }

func (e *simEndpoint) LocalNode() wire.NodeID { return e.node }

func (e *simEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.recv)
	e.mu.Unlock()

	e.net.mu.Lock()
	delete(e.net.endpoints, e.node)
	e.net.mu.Unlock()
	return nil
}
