package netsim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/wire"
)

// tcpPair starts two TCP endpoints that know each other's addresses.
func tcpPair(t *testing.T) (*TCPEndpoint, *TCPEndpoint) {
	t.Helper()
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenTCP(2, "127.0.0.1:0", map[wire.NodeID]string{1: a.ListenAddr()})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	// a learns b's address after the fact via a fresh endpoint table; for
	// tests we rebuild a with the full table instead.
	a.Close()
	a2, err := ListenTCP(1, "127.0.0.1:0", map[wire.NodeID]string{2: b.ListenAddr()})
	if err != nil {
		b.Close()
		t.Fatal(err)
	}
	// b must know a2's new address.
	b.mu.Lock()
	b.peers[1] = a2.ListenAddr()
	b.mu.Unlock()
	t.Cleanup(func() { a2.Close(); b.Close() })
	return a2, b
}

func TestTCPRoundTrip(t *testing.T) {
	a, b := tcpPair(t)
	if err := a.Send(frameTo(1, 2, "over tcp")); err != nil {
		t.Fatal(err)
	}
	got := recvWithin(t, b, 2*time.Second)
	if string(got.Payload) != "over tcp" {
		t.Errorf("payload = %q", got.Payload)
	}
	// And the reverse direction (separate dialed connection).
	if err := b.Send(frameTo(2, 1, "reply")); err != nil {
		t.Fatal(err)
	}
	got = recvWithin(t, a, 2*time.Second)
	if string(got.Payload) != "reply" {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestTCPLoopback(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	f := frameTo(1, 1, "loop")
	f.Dst.Context = 2
	if err := a.Send(f); err != nil {
		t.Fatal(err)
	}
	got := recvWithin(t, a, time.Second)
	if string(got.Payload) != "loop" {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(frameTo(1, 9, "x")); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Send = %v, want ErrUnknownNode", err)
	}
}

func TestTCPManyFrames(t *testing.T) {
	a, b := tcpPair(t)
	const count = 200
	for i := 0; i < count; i++ {
		f := frameTo(1, 2, "bulk")
		f.ReqID = uint64(i)
		if err := a.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[uint64]bool)
	for i := 0; i < count; i++ {
		f := recvWithin(t, b, 2*time.Second)
		seen[f.ReqID] = true
	}
	if len(seen) != count {
		t.Errorf("received %d distinct frames, want %d", len(seen), count)
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
	if err := a.Send(frameTo(1, 1, "x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after Close = %v", err)
	}
}

func TestTCPRedialAfterPeerRestart(t *testing.T) {
	a, b := tcpPair(t)
	if err := a.Send(frameTo(1, 2, "first")); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b, 2*time.Second)

	// Restart the peer on the same address: every connection a cached is
	// now dead, so a must redial.
	addr := b.ListenAddr()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := ListenTCP(2, addr, map[wire.NodeID]string{1: a.ListenAddr()})
	if err != nil {
		t.Fatalf("restart listener on %s: %v", addr, err)
	}
	defer b2.Close()

	// a's cached connection is broken. A send into the dead socket can
	// even "succeed" locally (TCP buffering) before the breakage is
	// detected, so — like the rpc layer above this transport — we must
	// retransmit until the frame actually arrives.
	deadline := time.Now().Add(4 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("frame never arrived after peer restart")
		}
		_ = a.Send(frameTo(1, 2, "second")) // errors trigger the redial path
		select {
		case f, ok := <-b2.Recv():
			if ok && string(f.Payload) == "second" {
				return
			}
		case <-time.After(50 * time.Millisecond):
		}
	}
}
