// Fault injection for the simulated network: a FaultSchedule is a
// deterministic script of crashes, restarts, partitions, heals, and link
// flaps, applied at fixed offsets from the moment Run is called. Schedules
// are either hand-written or generated from a seed (GenSchedule), so a
// chaos run reproduces exactly: same seed, same script, byte-identical
// String() rendering.
package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/wire"
)

// FaultKind identifies one kind of injected fault.
type FaultKind uint8

// The fault kinds a schedule can script.
const (
	FaultCrash           FaultKind = iota + 1 // take node A down
	FaultRestart                              // bring node A back (new incarnation)
	FaultPartition                            // cut A↔B both ways
	FaultHeal                                 // undo a partition of A↔B (any direction)
	FaultLink                                 // replace the A↔B link config (both directions)
	FaultPartitionOneWay                      // cut A→B only (gray: asymmetric partition)
	FaultDegrade                              // layer Cond on the A↔B link (gray: slow/lossy/corrupting)
	FaultRestore                              // clear degradation on A↔B
	FaultDegradeNode                          // layer Cond on every link touching A (gray: one slow machine)
	FaultRestoreNode                          // clear node-wide degradation of A
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultRestart:
		return "restart"
	case FaultPartition:
		return "partition"
	case FaultHeal:
		return "heal"
	case FaultLink:
		return "link"
	case FaultPartitionOneWay:
		return "partition-oneway"
	case FaultDegrade:
		return "degrade"
	case FaultRestore:
		return "restore"
	case FaultDegradeNode:
		return "degrade-node"
	case FaultRestoreNode:
		return "restore-node"
	default:
		return fmt.Sprintf("fault(%d)", uint8(k))
	}
}

// FaultEvent is one scripted fault. At is the virtual offset from the start
// of the run. B is unused for crash/restart and the node-wide kinds; Link
// is used only by FaultLink; Cond only by FaultDegrade/FaultDegradeNode.
type FaultEvent struct {
	At   time.Duration
	Kind FaultKind
	A, B wire.NodeID
	Link LinkConfig
	Cond LinkCond
}

func (e FaultEvent) String() string {
	switch e.Kind {
	case FaultCrash, FaultRestart, FaultRestoreNode:
		return fmt.Sprintf("%8s %s node=%d", e.At, e.Kind, e.A)
	case FaultLink:
		return fmt.Sprintf("%8s %s %d<->%d lat=%s jit=%s loss=%.3f",
			e.At, e.Kind, e.A, e.B, e.Link.Latency, e.Link.Jitter, e.Link.LossRate)
	case FaultPartitionOneWay:
		return fmt.Sprintf("%8s %s %d->%d", e.At, e.Kind, e.A, e.B)
	case FaultDegrade:
		return fmt.Sprintf("%8s %s %d<->%d +lat=%s +jit=%s loss=%.3f corrupt=%.3f",
			e.At, e.Kind, e.A, e.B, e.Cond.ExtraLatency, e.Cond.ExtraJitter, e.Cond.LossRate, e.Cond.CorruptRate)
	case FaultDegradeNode:
		return fmt.Sprintf("%8s %s node=%d +lat=%s +jit=%s loss=%.3f corrupt=%.3f",
			e.At, e.Kind, e.A, e.Cond.ExtraLatency, e.Cond.ExtraJitter, e.Cond.LossRate, e.Cond.CorruptRate)
	default:
		return fmt.Sprintf("%8s %s %d<->%d", e.At, e.Kind, e.A, e.B)
	}
}

// FaultSchedule is an ordered script of fault events.
type FaultSchedule struct {
	Events []FaultEvent
}

// sorted returns the events ordered by offset; ties keep insertion order so
// a generated crash always precedes the restart paired with it.
func (s *FaultSchedule) sorted() []FaultEvent {
	evs := append([]FaultEvent(nil), s.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// String renders the schedule one event per line, in firing order. The
// rendering is deterministic: it is how tests assert a seed reproduces.
func (s *FaultSchedule) String() string {
	var b strings.Builder
	for _, e := range s.sorted() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Apply executes a single fault against the network immediately.
func (e FaultEvent) Apply(n *Network) {
	switch e.Kind {
	case FaultCrash:
		n.Crash(e.A)
	case FaultRestart:
		n.Restart(e.A)
	case FaultPartition:
		n.Partition(e.A, e.B)
	case FaultHeal:
		n.Heal(e.A, e.B)
	case FaultLink:
		n.SetLink(e.A, e.B, e.Link)
		n.SetLink(e.B, e.A, e.Link)
	case FaultPartitionOneWay:
		n.PartitionOneWay(e.A, e.B)
	case FaultDegrade:
		n.Degrade(e.A, e.B, e.Cond)
	case FaultRestore:
		n.Restore(e.A, e.B)
	case FaultDegradeNode:
		n.DegradeNode(e.A, e.Cond)
	case FaultRestoreNode:
		n.RestoreNode(e.A)
	}
}

// Run starts applying the schedule against n in a background goroutine,
// each event at its offset from now. Stop cancels the remainder; Wait
// blocks until the script has finished or been stopped.
func (s *FaultSchedule) Run(n *Network) *FaultRun {
	r := &FaultRun{stop: make(chan struct{}), done: make(chan struct{})}
	evs := s.sorted()
	start := time.Now()
	go func() {
		defer close(r.done)
		for _, ev := range evs {
			if d := time.Until(start.Add(ev.At)); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-t.C:
				case <-r.stop:
					t.Stop()
					return
				}
			} else {
				select {
				case <-r.stop:
					return
				default:
				}
			}
			ev.Apply(n)
		}
	}()
	return r
}

// FaultRun is a schedule in progress.
type FaultRun struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// Stop cancels events that have not fired yet. Safe to call twice.
func (r *FaultRun) Stop() { r.once.Do(func() { close(r.stop) }) }

// Wait blocks until the schedule has fully played out or was stopped.
func (r *FaultRun) Wait() { <-r.done }

// ChaosConfig parameterizes GenSchedule.
type ChaosConfig struct {
	// Nodes are the candidates for crashes and partition endpoints.
	Nodes []wire.NodeID
	// Duration is the window fault start times are drawn from.
	Duration time.Duration
	// Crashes is how many crash+restart pairs to script; each downtime is
	// drawn uniformly from [MinDown, MaxDown].
	Crashes          int
	MinDown, MaxDown time.Duration
	// Partitions is how many partition+heal pairs to script; each cut lasts
	// uniformly [MinCut, MaxCut].
	Partitions     int
	MinCut, MaxCut time.Duration
	// Flaps is how many link degradations to script: the link flips to
	// FlapLink for uniformly [MinFlap, MaxFlap], then back to RestoreLink.
	Flaps            int
	FlapLink         LinkConfig
	RestoreLink      LinkConfig
	MinFlap, MaxFlap time.Duration
	// OneWayCuts is how many asymmetric partition+heal pairs to script:
	// traffic A→B drops (B→A stays clean) for uniformly [MinCut, MaxCut].
	OneWayCuts int
	// Degrades is how many gray degradation+restore pairs to script: the
	// pair's link gains DegradeCond for uniformly [MinDegrade, MaxDegrade].
	Degrades               int
	DegradeCond            LinkCond
	MinDegrade, MaxDegrade time.Duration
	// SlowNodes is how many node-wide degradation+restore pairs to
	// script: one node's every link gains SlowCond for uniformly
	// [MinSlow, MaxSlow] — the classic gray "one slow machine".
	SlowNodes        int
	SlowCond         LinkCond
	MinSlow, MaxSlow time.Duration
}

// GenSchedule derives a fault schedule from a seed. The same seed and
// config always produce the same schedule (its own rand.Source; nothing
// shared), which is what makes chaos runs reproducible.
func GenSchedule(seed int64, cfg ChaosConfig) *FaultSchedule {
	rng := rand.New(rand.NewSource(seed))
	dur := func(min, max time.Duration) time.Duration {
		if max <= min {
			return min
		}
		return min + time.Duration(rng.Int63n(int64(max-min)))
	}
	node := func() wire.NodeID {
		return cfg.Nodes[rng.Intn(len(cfg.Nodes))]
	}
	pair := func() (wire.NodeID, wire.NodeID) {
		a := node()
		b := node()
		for len(cfg.Nodes) > 1 && b == a {
			b = node()
		}
		return a, b
	}
	s := &FaultSchedule{}
	if len(cfg.Nodes) == 0 {
		return s
	}
	for i := 0; i < cfg.Crashes; i++ {
		at := dur(0, cfg.Duration)
		down := dur(cfg.MinDown, cfg.MaxDown)
		a := node()
		s.Events = append(s.Events,
			FaultEvent{At: at, Kind: FaultCrash, A: a},
			FaultEvent{At: at + down, Kind: FaultRestart, A: a})
	}
	for i := 0; i < cfg.Partitions; i++ {
		at := dur(0, cfg.Duration)
		cut := dur(cfg.MinCut, cfg.MaxCut)
		a, b := pair()
		s.Events = append(s.Events,
			FaultEvent{At: at, Kind: FaultPartition, A: a, B: b},
			FaultEvent{At: at + cut, Kind: FaultHeal, A: a, B: b})
	}
	for i := 0; i < cfg.Flaps; i++ {
		at := dur(0, cfg.Duration)
		flap := dur(cfg.MinFlap, cfg.MaxFlap)
		a, b := pair()
		s.Events = append(s.Events,
			FaultEvent{At: at, Kind: FaultLink, A: a, B: b, Link: cfg.FlapLink},
			FaultEvent{At: at + flap, Kind: FaultLink, A: a, B: b, Link: cfg.RestoreLink})
	}
	// Gray fault kinds draw after the crash/partition/flap loops, so a
	// config without them generates byte-identical schedules to before.
	for i := 0; i < cfg.OneWayCuts; i++ {
		at := dur(0, cfg.Duration)
		cut := dur(cfg.MinCut, cfg.MaxCut)
		a, b := pair()
		s.Events = append(s.Events,
			FaultEvent{At: at, Kind: FaultPartitionOneWay, A: a, B: b},
			FaultEvent{At: at + cut, Kind: FaultHeal, A: a, B: b})
	}
	for i := 0; i < cfg.Degrades; i++ {
		at := dur(0, cfg.Duration)
		span := dur(cfg.MinDegrade, cfg.MaxDegrade)
		a, b := pair()
		s.Events = append(s.Events,
			FaultEvent{At: at, Kind: FaultDegrade, A: a, B: b, Cond: cfg.DegradeCond},
			FaultEvent{At: at + span, Kind: FaultRestore, A: a, B: b})
	}
	for i := 0; i < cfg.SlowNodes; i++ {
		at := dur(0, cfg.Duration)
		span := dur(cfg.MinSlow, cfg.MaxSlow)
		a := node()
		s.Events = append(s.Events,
			FaultEvent{At: at, Kind: FaultDegradeNode, A: a, Cond: cfg.SlowCond},
			FaultEvent{At: at + span, Kind: FaultRestoreNode, A: a})
	}
	return s
}
