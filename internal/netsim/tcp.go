package netsim

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/wire"
)

// TCPEndpoint is an Endpoint over real TCP connections, for multi-process
// deployment (cmd/proxyd, cmd/proxyctl). Outbound routes come from a
// static peer table (dialed lazily and reused) and from *learned* return
// routes: when a frame arrives on an accepted connection, that connection
// becomes the route back to the frame's source node — so a client behind
// an unknown address (e.g. proxyctl listening on :0) can still receive
// replies.
type TCPEndpoint struct {
	node wire.NodeID
	ln   net.Listener
	recv chan *wire.Frame

	mu     sync.Mutex
	peers  map[wire.NodeID]string
	conns  map[wire.NodeID]*tcpConn
	closed bool
	wg     sync.WaitGroup
}

// tcpConn serializes writes: concurrent frame sends must not interleave
// partial writes on one socket. Writes are coalesced group-commit
// style: each sender encodes its frame into the staging buffer under
// the lock, and whichever sender finds no flusher active becomes the
// flusher, draining the buffer to the socket in one Write per batch.
// Senders that arrive while a flush is in progress stage their bytes
// and return immediately — the active flusher carries them out on its
// next drain pass. One syscall then covers every frame that arrived
// during the previous syscall, amortizing per-send overhead under
// concurrency without adding latency when the link is idle.
type tcpConn struct {
	c net.Conn
	// learned marks routes discovered from accepted connections; they are
	// evicted when their connection dies, while dialed routes redial.
	learned bool

	mu       sync.Mutex
	buf      []byte // staged encoded frames awaiting flush
	spare    []byte // recycled second buffer (rotates with buf)
	flushing bool
	err      error // sticky: once a write fails the conn is dead
}

// maxStagedBuf bounds how large a recycled staging buffer may stay; a
// one-off giant batch is released to the GC instead of pinned forever.
const maxStagedBuf = 1 << 20

func (tc *tcpConn) writeFrame(f *wire.Frame) error {
	tc.mu.Lock()
	if tc.err != nil {
		err := tc.err
		tc.mu.Unlock()
		return err
	}
	buf, err := f.Encode(tc.buf)
	if err != nil {
		tc.mu.Unlock()
		return err
	}
	tc.buf = buf
	if tc.flushing {
		// An active flusher will pick these bytes up; returning now is
		// within Endpoint.Send's best-effort contract (a later write
		// failure surfaces as a sticky error on the next send).
		tc.mu.Unlock()
		return nil
	}
	tc.flushing = true
	for err == nil && len(tc.buf) > 0 {
		out := tc.buf
		tc.buf = tc.spare[:0]
		tc.spare = nil
		tc.mu.Unlock()
		_, err = tc.c.Write(out)
		tc.mu.Lock()
		if cap(out) <= maxStagedBuf {
			tc.spare = out[:0]
		}
		if err != nil {
			tc.err = err
		}
	}
	tc.flushing = false
	tc.mu.Unlock()
	return err
}

// ListenTCP starts an endpoint for node listening on listenAddr. peers
// maps statically-known nodes to their addresses; other nodes become
// reachable once they send us a frame. The caller should defer Close.
func ListenTCP(node wire.NodeID, listenAddr string, peers map[wire.NodeID]string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("netsim: listen %s: %w", listenAddr, err)
	}
	p := make(map[wire.NodeID]string, len(peers))
	for k, v := range peers {
		p[k] = v
	}
	e := &TCPEndpoint{
		node:  node,
		ln:    ln,
		peers: p,
		recv:  make(chan *wire.Frame, 1024),
		conns: make(map[wire.NodeID]*tcpConn),
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// ListenAddr reports the bound listen address (useful with ":0").
func (e *TCPEndpoint) ListenAddr() string { return e.ln.Addr().String() }

// AddPeer inserts or replaces a static peer route.
func (e *TCPEndpoint) AddPeer(node wire.NodeID, addr string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.peers[node] = addr
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.wg.Add(1)
		go e.readLoop(conn, true)
	}
}

// readLoop pumps frames from one connection. accepted connections teach
// us return routes.
func (e *TCPEndpoint) readLoop(conn net.Conn, accepted bool) {
	defer e.wg.Done()
	defer conn.Close()
	var tc *tcpConn
	for {
		f, err := wire.ReadFrame(conn)
		if err != nil {
			break
		}
		if accepted && tc == nil && f.Src.Node != 0 && f.Src.Node != e.node {
			tc = e.learnRoute(f.Src.Node, conn)
		}
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			break
		}
		select {
		case e.recv <- &f:
		default:
			// Queue overrun: drop, as a congested switch would.
		}
	}
	if tc != nil {
		e.forgetConn(tc)
	}
}

// learnRoute records conn as the way back to node, unless a route exists.
func (e *TCPEndpoint) learnRoute(node wire.NodeID, conn net.Conn) *tcpConn {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	if _, ok := e.conns[node]; ok {
		return nil
	}
	tc := &tcpConn{c: conn, learned: true}
	e.conns[node] = tc
	return tc
}

func (e *TCPEndpoint) forgetConn(tc *tcpConn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for node, cur := range e.conns {
		if cur == tc {
			delete(e.conns, node)
		}
	}
}

// Send implements Endpoint. Frames to the local node loop back without
// touching the network.
func (e *TCPEndpoint) Send(f *wire.Frame) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if f.Dst.Node == e.node {
		// Loopback under the lock, so Close cannot close recv mid-push.
		c := f.Clone()
		select {
		case e.recv <- &c:
		default:
		}
		e.mu.Unlock()
		return nil
	}
	e.mu.Unlock()
	tc, err := e.connTo(f.Dst.Node)
	if err != nil {
		return err
	}
	if err := tc.writeFrame(f); err != nil {
		// Connection is broken; forget it so the next send redials (or
		// waits for the peer to reconnect, for learned routes).
		e.mu.Lock()
		if e.conns[f.Dst.Node] == tc {
			delete(e.conns, f.Dst.Node)
		}
		e.mu.Unlock()
		tc.c.Close()
		return fmt.Errorf("netsim: send to node %d: %w", f.Dst.Node, err)
	}
	return nil
}

func (e *TCPEndpoint) connTo(node wire.NodeID) (*tcpConn, error) {
	e.mu.Lock()
	if tc, ok := e.conns[node]; ok {
		e.mu.Unlock()
		return tc, nil
	}
	addr, ok := e.peers[node]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, node)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsim: dial node %d at %s: %w", node, addr, err)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	if existing, ok := e.conns[node]; ok {
		// Lost a dial race; keep the first connection.
		e.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	tc := &tcpConn{c: conn}
	e.conns[node] = tc
	e.mu.Unlock()
	// Dialed connections also carry inbound traffic (the peer replies on
	// the same socket).
	e.wg.Add(1)
	go e.readLoop(conn, false)
	return tc, nil
}

// Recv implements Endpoint.
func (e *TCPEndpoint) Recv() <-chan *wire.Frame { return e.recv }

// LocalNode implements Endpoint.
func (e *TCPEndpoint) LocalNode() wire.NodeID { return e.node }

// Close implements Endpoint, closing the listener and all connections.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := make([]*tcpConn, 0, len(e.conns))
	for _, c := range e.conns {
		conns = append(conns, c)
	}
	e.conns = map[wire.NodeID]*tcpConn{}
	e.mu.Unlock()

	err := e.ln.Close()
	for _, c := range conns {
		c.c.Close()
	}
	e.wg.Wait()
	close(e.recv)
	return err
}
