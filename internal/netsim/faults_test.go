package netsim

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestCrashDropsTrafficAndRestartRecovers(t *testing.T) {
	n := New()
	defer n.Close()
	ep1, err := n.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := n.Attach(2)
	if err != nil {
		t.Fatal(err)
	}

	// Park a frame in node 2's queue, then crash it: the queued frame must
	// drop — a crash loses undelivered input.
	if err := ep1.Send(frameTo(1, 2, "queued")); err != nil {
		t.Fatal(err)
	}
	n.Crash(2)
	if !n.Crashed(2) {
		t.Fatal("Crashed(2) = false after Crash")
	}
	select {
	case f := <-ep2.Recv():
		t.Fatalf("crashed node received %q", f.Payload)
	default:
	}

	// Traffic to the crashed node disappears silently, like a partition.
	if err := ep1.Send(frameTo(1, 2, "into the void")); err != nil {
		t.Fatalf("send to crashed node should drop silently, got %v", err)
	}
	time.Sleep(5 * time.Millisecond)
	select {
	case f := <-ep2.Recv():
		t.Fatalf("crashed node received %q", f.Payload)
	default:
	}
	if st := n.Snapshot(); st.Crashed == 0 {
		t.Errorf("Stats.Crashed = 0, want >0")
	}

	// Sends from the crashed node fail loudly: local code notices.
	if err := ep2.Send(frameTo(2, 1, "from the grave")); !errors.Is(err, ErrNodeCrashed) {
		t.Errorf("send from crashed node: err = %v, want ErrNodeCrashed", err)
	}

	// Restart: a new incarnation, traffic flows again.
	if inc := n.Incarnation(2); inc != 1 {
		t.Errorf("incarnation before restart = %d, want 1", inc)
	}
	n.Restart(2)
	if n.Crashed(2) {
		t.Error("Crashed(2) = true after Restart")
	}
	if inc := n.Incarnation(2); inc != 2 {
		t.Errorf("incarnation after restart = %d, want 2", inc)
	}
	if err := ep1.Send(frameTo(1, 2, "welcome back")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-ep2.Recv():
		if string(f.Payload) != "welcome back" {
			t.Errorf("payload = %q", f.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery after restart")
	}
}

func TestLinkFIFOUnderJitter(t *testing.T) {
	// High jitter relative to latency used to reorder frames (each rode a
	// private timer). Per-link FIFO must deliver them in send order.
	n := New(WithSeed(7), WithDefaultLink(LinkConfig{
		Latency: 200 * time.Microsecond,
		Jitter:  3 * time.Millisecond,
	}))
	defer n.Close()
	ep1, err := n.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := n.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	const frames = 200
	for i := 0; i < frames; i++ {
		if err := ep1.Send(frameTo(1, 2, fmt.Sprintf("%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < frames; i++ {
		select {
		case f := <-ep2.Recv():
			if want := fmt.Sprintf("%04d", i); string(f.Payload) != want {
				t.Fatalf("frame %d arrived as %q (out of order)", i, f.Payload)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("frame %d never arrived", i)
		}
	}
}

func TestGenScheduleReproducible(t *testing.T) {
	cfg := ChaosConfig{
		Nodes:      []wire.NodeID{1, 2, 3},
		Duration:   100 * time.Millisecond,
		Crashes:    3,
		MinDown:    10 * time.Millisecond,
		MaxDown:    40 * time.Millisecond,
		Partitions: 2,
		MinCut:     5 * time.Millisecond,
		MaxCut:     20 * time.Millisecond,
		Flaps:      1,
		FlapLink:   LinkConfig{Latency: 5 * time.Millisecond, LossRate: 0.5},
		MinFlap:    5 * time.Millisecond,
		MaxFlap:    15 * time.Millisecond,
	}
	a := GenSchedule(42, cfg).String()
	b := GenSchedule(42, cfg).String()
	if a != b {
		t.Errorf("same seed, different schedules:\n%s\nvs\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty schedule")
	}
	if c := GenSchedule(43, cfg).String(); c == a {
		t.Error("different seeds produced identical schedules")
	}
}

func TestFaultScheduleRunApplies(t *testing.T) {
	n := New()
	defer n.Close()
	if _, err := n.Attach(1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(2); err != nil {
		t.Fatal(err)
	}
	s := &FaultSchedule{Events: []FaultEvent{
		{At: 0, Kind: FaultCrash, A: 1},
		{At: 10 * time.Millisecond, Kind: FaultPartition, A: 1, B: 2},
		{At: 20 * time.Millisecond, Kind: FaultHeal, A: 1, B: 2},
		{At: 30 * time.Millisecond, Kind: FaultRestart, A: 1},
	}}
	run := s.Run(n)
	// Crash at offset 0 applies before the first sleep completes.
	deadline := time.After(time.Second)
	for !n.Crashed(1) {
		select {
		case <-deadline:
			t.Fatal("node 1 never crashed")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	run.Wait()
	if n.Crashed(1) {
		t.Error("node 1 still crashed after the schedule's restart")
	}
	if inc := n.Incarnation(1); inc != 2 {
		t.Errorf("incarnation = %d, want 2 after one restart", inc)
	}
}

func TestFaultRunStop(t *testing.T) {
	n := New()
	defer n.Close()
	if _, err := n.Attach(1); err != nil {
		t.Fatal(err)
	}
	s := &FaultSchedule{Events: []FaultEvent{
		{At: time.Hour, Kind: FaultCrash, A: 1},
	}}
	run := s.Run(n)
	run.Stop()
	done := make(chan struct{})
	go func() { run.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Wait did not return after Stop")
	}
	if n.Crashed(1) {
		t.Error("stopped schedule still applied its event")
	}
}
