package netsim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestCrashDropsTrafficAndRestartRecovers(t *testing.T) {
	n := New()
	defer n.Close()
	ep1, err := n.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := n.Attach(2)
	if err != nil {
		t.Fatal(err)
	}

	// Park a frame in node 2's queue, then crash it: the queued frame must
	// drop — a crash loses undelivered input.
	if err := ep1.Send(frameTo(1, 2, "queued")); err != nil {
		t.Fatal(err)
	}
	n.Crash(2)
	if !n.Crashed(2) {
		t.Fatal("Crashed(2) = false after Crash")
	}
	select {
	case f := <-ep2.Recv():
		t.Fatalf("crashed node received %q", f.Payload)
	default:
	}

	// Traffic to the crashed node disappears silently, like a partition.
	if err := ep1.Send(frameTo(1, 2, "into the void")); err != nil {
		t.Fatalf("send to crashed node should drop silently, got %v", err)
	}
	time.Sleep(5 * time.Millisecond)
	select {
	case f := <-ep2.Recv():
		t.Fatalf("crashed node received %q", f.Payload)
	default:
	}
	if st := n.Snapshot(); st.Crashed == 0 {
		t.Errorf("Stats.Crashed = 0, want >0")
	}

	// Sends from the crashed node fail loudly: local code notices.
	if err := ep2.Send(frameTo(2, 1, "from the grave")); !errors.Is(err, ErrNodeCrashed) {
		t.Errorf("send from crashed node: err = %v, want ErrNodeCrashed", err)
	}

	// Restart: a new incarnation, traffic flows again.
	if inc := n.Incarnation(2); inc != 1 {
		t.Errorf("incarnation before restart = %d, want 1", inc)
	}
	n.Restart(2)
	if n.Crashed(2) {
		t.Error("Crashed(2) = true after Restart")
	}
	if inc := n.Incarnation(2); inc != 2 {
		t.Errorf("incarnation after restart = %d, want 2", inc)
	}
	if err := ep1.Send(frameTo(1, 2, "welcome back")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-ep2.Recv():
		if string(f.Payload) != "welcome back" {
			t.Errorf("payload = %q", f.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery after restart")
	}
}

func TestLinkFIFOUnderJitter(t *testing.T) {
	// High jitter relative to latency used to reorder frames (each rode a
	// private timer). Per-link FIFO must deliver them in send order.
	n := New(WithSeed(7), WithDefaultLink(LinkConfig{
		Latency: 200 * time.Microsecond,
		Jitter:  3 * time.Millisecond,
	}))
	defer n.Close()
	ep1, err := n.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := n.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	const frames = 200
	for i := 0; i < frames; i++ {
		if err := ep1.Send(frameTo(1, 2, fmt.Sprintf("%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < frames; i++ {
		select {
		case f := <-ep2.Recv():
			if want := fmt.Sprintf("%04d", i); string(f.Payload) != want {
				t.Fatalf("frame %d arrived as %q (out of order)", i, f.Payload)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("frame %d never arrived", i)
		}
	}
}

func TestGenScheduleReproducible(t *testing.T) {
	cfg := ChaosConfig{
		Nodes:      []wire.NodeID{1, 2, 3},
		Duration:   100 * time.Millisecond,
		Crashes:    3,
		MinDown:    10 * time.Millisecond,
		MaxDown:    40 * time.Millisecond,
		Partitions: 2,
		MinCut:     5 * time.Millisecond,
		MaxCut:     20 * time.Millisecond,
		Flaps:      1,
		FlapLink:   LinkConfig{Latency: 5 * time.Millisecond, LossRate: 0.5},
		MinFlap:    5 * time.Millisecond,
		MaxFlap:    15 * time.Millisecond,
	}
	a := GenSchedule(42, cfg).String()
	b := GenSchedule(42, cfg).String()
	if a != b {
		t.Errorf("same seed, different schedules:\n%s\nvs\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty schedule")
	}
	if c := GenSchedule(43, cfg).String(); c == a {
		t.Error("different seeds produced identical schedules")
	}
}

func TestFaultScheduleRunApplies(t *testing.T) {
	n := New()
	defer n.Close()
	if _, err := n.Attach(1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(2); err != nil {
		t.Fatal(err)
	}
	s := &FaultSchedule{Events: []FaultEvent{
		{At: 0, Kind: FaultCrash, A: 1},
		{At: 10 * time.Millisecond, Kind: FaultPartition, A: 1, B: 2},
		{At: 20 * time.Millisecond, Kind: FaultHeal, A: 1, B: 2},
		{At: 30 * time.Millisecond, Kind: FaultRestart, A: 1},
	}}
	run := s.Run(n)
	// Crash at offset 0 applies before the first sleep completes.
	deadline := time.After(time.Second)
	for !n.Crashed(1) {
		select {
		case <-deadline:
			t.Fatal("node 1 never crashed")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	run.Wait()
	if n.Crashed(1) {
		t.Error("node 1 still crashed after the schedule's restart")
	}
	if inc := n.Incarnation(1); inc != 2 {
		t.Errorf("incarnation = %d, want 2 after one restart", inc)
	}
}

func TestFaultRunStop(t *testing.T) {
	n := New()
	defer n.Close()
	if _, err := n.Attach(1); err != nil {
		t.Fatal(err)
	}
	s := &FaultSchedule{Events: []FaultEvent{
		{At: time.Hour, Kind: FaultCrash, A: 1},
	}}
	run := s.Run(n)
	run.Stop()
	done := make(chan struct{})
	go func() { run.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Wait did not return after Stop")
	}
	if n.Crashed(1) {
		t.Error("stopped schedule still applied its event")
	}
}

// TestFaultKindsApplyThroughSchedule drives EVERY FaultKind through
// FaultSchedule.Run against a live two-node network and asserts each
// one's observable effect — delivery blocked or restored in the right
// direction(s), and the matching Stats counter moving. This is the
// contract chaos suites script against; a kind that Run forgot to
// dispatch would silently turn its chaos test into a no-fault run.
func TestFaultKindsApplyThroughSchedule(t *testing.T) {
	drop := LinkCond{LossRate: 1}

	// arrives sends one probe frame and reports whether it is delivered.
	// The network is zero-latency, so a delivered frame shows up almost
	// immediately; 100ms of silence is a confident verdict of "blocked".
	arrives := func(t *testing.T, from Endpoint, src, dst wire.NodeID, to Endpoint) bool {
		t.Helper()
		if err := from.Send(frameTo(src, dst, "probe")); err != nil {
			return false
		}
		select {
		case <-to.Recv():
			return true
		case <-time.After(100 * time.Millisecond):
			return false
		}
	}

	cases := []struct {
		name   string
		events []FaultEvent
		check  func(t *testing.T, n *Network, ep1, ep2 Endpoint)
	}{
		{"crash", []FaultEvent{
			{Kind: FaultCrash, A: 2},
		}, func(t *testing.T, n *Network, ep1, ep2 Endpoint) {
			if !n.Crashed(2) {
				t.Fatal("node 2 not crashed")
			}
			if arrives(t, ep1, 1, 2, ep2) {
				t.Error("frame delivered to crashed node")
			}
			if n.Snapshot().Crashed == 0 {
				t.Error("Stats.Crashed did not move")
			}
		}},
		{"restart", []FaultEvent{
			{Kind: FaultCrash, A: 2},
			{Kind: FaultRestart, A: 2},
		}, func(t *testing.T, n *Network, ep1, ep2 Endpoint) {
			if n.Crashed(2) {
				t.Fatal("node 2 still crashed after restart")
			}
			if inc := n.Incarnation(2); inc != 2 {
				t.Errorf("incarnation = %d, want 2", inc)
			}
			if !arrives(t, ep1, 1, 2, ep2) {
				t.Error("no delivery after restart")
			}
		}},
		{"partition", []FaultEvent{
			{Kind: FaultPartition, A: 1, B: 2},
		}, func(t *testing.T, n *Network, ep1, ep2 Endpoint) {
			if arrives(t, ep1, 1, 2, ep2) {
				t.Error("1->2 delivered across partition")
			}
			if arrives(t, ep2, 2, 1, ep1) {
				t.Error("2->1 delivered across partition")
			}
			if n.Snapshot().Partition == 0 {
				t.Error("Stats.Partition did not move")
			}
		}},
		{"heal", []FaultEvent{
			{Kind: FaultPartition, A: 1, B: 2},
			{Kind: FaultHeal, A: 1, B: 2},
		}, func(t *testing.T, n *Network, ep1, ep2 Endpoint) {
			if !arrives(t, ep1, 1, 2, ep2) {
				t.Error("1->2 blocked after heal")
			}
			if !arrives(t, ep2, 2, 1, ep1) {
				t.Error("2->1 blocked after heal")
			}
		}},
		{"link", []FaultEvent{
			{Kind: FaultLink, A: 1, B: 2, Link: LinkConfig{LossRate: 1}},
		}, func(t *testing.T, n *Network, ep1, ep2 Endpoint) {
			if arrives(t, ep1, 1, 2, ep2) {
				t.Error("1->2 delivered on a 100%-loss link")
			}
			if arrives(t, ep2, 2, 1, ep1) {
				t.Error("2->1 delivered on a 100%-loss link")
			}
			if n.Snapshot().Lost == 0 {
				t.Error("Stats.Lost did not move")
			}
		}},
		{"partition-oneway", []FaultEvent{
			{Kind: FaultPartitionOneWay, A: 1, B: 2},
		}, func(t *testing.T, n *Network, ep1, ep2 Endpoint) {
			if arrives(t, ep1, 1, 2, ep2) {
				t.Error("1->2 delivered across one-way cut")
			}
			if !arrives(t, ep2, 2, 1, ep1) {
				t.Error("2->1 blocked — the cut was supposed to be asymmetric")
			}
		}},
		{"degrade", []FaultEvent{
			{Kind: FaultDegrade, A: 1, B: 2, Cond: drop},
		}, func(t *testing.T, n *Network, ep1, ep2 Endpoint) {
			if arrives(t, ep1, 1, 2, ep2) {
				t.Error("1->2 delivered through 100%-loss degradation")
			}
			if arrives(t, ep2, 2, 1, ep1) {
				t.Error("2->1 delivered through 100%-loss degradation")
			}
			if n.Snapshot().Lost == 0 {
				t.Error("Stats.Lost did not move")
			}
		}},
		{"degrade-corrupt", []FaultEvent{
			{Kind: FaultDegrade, A: 1, B: 2, Cond: LinkCond{CorruptRate: 1}},
		}, func(t *testing.T, n *Network, ep1, ep2 Endpoint) {
			if arrives(t, ep1, 1, 2, ep2) {
				t.Error("corrupted frame delivered — CRC should have rejected it")
			}
			if n.Snapshot().Corrupted == 0 {
				t.Error("Stats.Corrupted did not move")
			}
		}},
		{"restore", []FaultEvent{
			{Kind: FaultDegrade, A: 1, B: 2, Cond: drop},
			{Kind: FaultRestore, A: 1, B: 2},
		}, func(t *testing.T, n *Network, ep1, ep2 Endpoint) {
			if !arrives(t, ep1, 1, 2, ep2) {
				t.Error("1->2 blocked after restore")
			}
			if !arrives(t, ep2, 2, 1, ep1) {
				t.Error("2->1 blocked after restore")
			}
		}},
		{"degrade-node", []FaultEvent{
			{Kind: FaultDegradeNode, A: 2, Cond: drop},
		}, func(t *testing.T, n *Network, ep1, ep2 Endpoint) {
			// A node-wide condition rides every link the node touches, as
			// source or destination.
			if arrives(t, ep1, 1, 2, ep2) {
				t.Error("1->2 delivered to the slow node")
			}
			if arrives(t, ep2, 2, 1, ep1) {
				t.Error("2->1 delivered from the slow node")
			}
		}},
		{"restore-node", []FaultEvent{
			{Kind: FaultDegradeNode, A: 2, Cond: drop},
			{Kind: FaultRestoreNode, A: 2},
		}, func(t *testing.T, n *Network, ep1, ep2 Endpoint) {
			if !arrives(t, ep1, 1, 2, ep2) {
				t.Error("1->2 blocked after restore-node")
			}
			if !arrives(t, ep2, 2, 1, ep1) {
				t.Error("2->1 blocked after restore-node")
			}
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := New()
			defer n.Close()
			ep1, err := n.Attach(1)
			if err != nil {
				t.Fatal(err)
			}
			ep2, err := n.Attach(2)
			if err != nil {
				t.Fatal(err)
			}
			run := (&FaultSchedule{Events: tc.events}).Run(n)
			run.Wait()
			tc.check(t, n, ep1, ep2)
		})
	}
}

// TestGenScheduleGrayReproducible extends the reproducibility contract
// to the gray fault kinds: a config that scripts one-way cuts, link
// degradations, and slow nodes renders byte-identically for the same
// seed, differs across seeds, and actually contains every gray kind.
// It also pins the byte-compatibility rule: adding zero gray counts to
// a legacy config must not change the generated schedule (the gray
// loops draw from the RNG strictly after the original loops).
func TestGenScheduleGrayReproducible(t *testing.T) {
	legacy := ChaosConfig{
		Nodes:      []wire.NodeID{1, 2, 3},
		Duration:   100 * time.Millisecond,
		Crashes:    2,
		MinDown:    10 * time.Millisecond,
		MaxDown:    40 * time.Millisecond,
		Partitions: 1,
		MinCut:     5 * time.Millisecond,
		MaxCut:     20 * time.Millisecond,
	}
	gray := legacy
	gray.OneWayCuts = 2
	gray.Degrades = 2
	gray.DegradeCond = LinkCond{ExtraLatency: 2 * time.Millisecond, LossRate: 0.1}
	gray.MinDegrade, gray.MaxDegrade = 5*time.Millisecond, 25*time.Millisecond
	gray.SlowNodes = 1
	gray.SlowCond = LinkCond{ExtraLatency: 10 * time.Millisecond}
	gray.MinSlow, gray.MaxSlow = 10*time.Millisecond, 30*time.Millisecond

	a := GenSchedule(42, gray).String()
	if b := GenSchedule(42, gray).String(); a != b {
		t.Errorf("same seed, different gray schedules:\n%s\nvs\n%s", a, b)
	}
	if c := GenSchedule(43, gray).String(); c == a {
		t.Error("different seeds produced identical gray schedules")
	}
	for _, kind := range []string{"partition-oneway", "degrade ", "degrade-node", "restore ", "restore-node"} {
		if !strings.Contains(a, kind) {
			t.Errorf("generated schedule missing %q events:\n%s", kind, a)
		}
	}
	// Byte compatibility: the gray loops must not perturb the draws the
	// legacy kinds make, so a gray-free config generates exactly what it
	// did before the gray kinds existed.
	if la, ga := GenSchedule(42, legacy).String(), a; strings.HasPrefix(ga, la) == false {
		// Events render sorted by offset, so prefix equality is not
		// guaranteed; compare against a gray config with zero counts
		// instead, which must be byte-identical.
		_ = la
	}
	zeroGray := legacy
	zeroGray.DegradeCond = gray.DegradeCond // condition fields without counts draw nothing
	zeroGray.SlowCond = gray.SlowCond
	if la, za := GenSchedule(42, legacy).String(), GenSchedule(42, zeroGray).String(); la != za {
		t.Errorf("zero gray counts changed the schedule:\n%s\nvs\n%s", la, za)
	}
}
