package netsim

import (
	"repro/internal/wire"
)

// CoalescedEndpoint wraps an Endpoint with a per-destination frame-train
// coalescer (wire.Coalescer). Outbound frames advertise FlagTrains and,
// once a destination has advertised it back, concurrent frames to that
// destination ride in KindTrain container frames. Inbound frames pass
// through untouched — the kernel, not the transport, unpacks trains and
// learns peer capability from the FlagTrains bit (via MarkTrainCapable),
// so the receive path costs nothing extra here.
type CoalescedEndpoint struct {
	inner Endpoint
	co    *wire.Coalescer
}

// Coalesce wraps ep with train coalescing. The wrapper marks its own node
// train-capable immediately (loopback and cross-context traffic never
// needs a capability exchange); remote destinations are learned by the
// kernel from the first inbound frame carrying wire.FlagTrains — in a
// healthy cluster that's the first ping/ack exchange.
func Coalesce(ep Endpoint, cfg wire.CoalescerConfig) *CoalescedEndpoint {
	ce := &CoalescedEndpoint{
		inner: ep,
		co:    wire.NewCoalescer(ep.LocalNode(), ep.Send, cfg),
	}
	ce.co.MarkCapable(ep.LocalNode())
	return ce
}

// Send advertises the train capability on f and hands it to the coalescer,
// which either forwards it frame-at-a-time or packs it into a train. The
// frame's bytes are copied before Send returns, preserving the transports'
// ownership contract.
func (ce *CoalescedEndpoint) Send(f *wire.Frame) error {
	f.Flags |= wire.FlagTrains
	return ce.co.Send(f)
}

// Recv returns the wrapped endpoint's inbound channel unchanged.
func (ce *CoalescedEndpoint) Recv() <-chan *wire.Frame { return ce.inner.Recv() }

// LocalNode reports the wrapped endpoint's node.
func (ce *CoalescedEndpoint) LocalNode() wire.NodeID { return ce.inner.LocalNode() }

// MarkTrainCapable records that node unpacks trains. The kernel calls this
// when an inbound frame from node advertises wire.FlagTrains.
func (ce *CoalescedEndpoint) MarkTrainCapable(node wire.NodeID) {
	ce.co.MarkCapable(node)
}

// Close flushes and stops the coalescer's flushers, then closes the
// wrapped endpoint.
func (ce *CoalescedEndpoint) Close() error {
	ce.co.Close()
	return ce.inner.Close()
}

// Coalescer exposes the underlying coalescer for stats and capability
// control (tests, obs registration, proxyd knobs).
func (ce *CoalescedEndpoint) Coalescer() *wire.Coalescer { return ce.co }
