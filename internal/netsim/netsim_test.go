package netsim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/wire"
)

func frameTo(src, dst wire.NodeID, payload string) *wire.Frame {
	return &wire.Frame{
		Kind:    wire.KindRequest,
		ReqID:   1,
		Src:     wire.Addr{Node: src, Context: 1},
		Dst:     wire.Addr{Node: dst, Context: 1},
		Object:  1,
		Payload: []byte(payload),
	}
}

func recvWithin(t *testing.T, ep Endpoint, d time.Duration) *wire.Frame {
	t.Helper()
	select {
	case f, ok := <-ep.Recv():
		if !ok {
			t.Fatal("recv channel closed")
		}
		return f
	case <-time.After(d):
		t.Fatal("timed out waiting for frame")
		return nil
	}
}

func TestPerfectDelivery(t *testing.T) {
	n := New()
	defer n.Close()
	a, err := n.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(frameTo(1, 2, "hello")); err != nil {
		t.Fatal(err)
	}
	got := recvWithin(t, b, time.Second)
	if string(got.Payload) != "hello" {
		t.Errorf("payload = %q", got.Payload)
	}
	if got.Src.Node != 1 {
		t.Errorf("src node = %d", got.Src.Node)
	}
}

func TestSendClonesFrame(t *testing.T) {
	n := New(WithDefaultLink(LinkConfig{Latency: 5 * time.Millisecond}))
	defer n.Close()
	a, _ := n.Attach(1)
	b, _ := n.Attach(2)
	f := frameTo(1, 2, "immutable")
	if err := a.Send(f); err != nil {
		t.Fatal(err)
	}
	f.Payload[0] = 'X' // mutate after send; receiver must not see it
	got := recvWithin(t, b, time.Second)
	if string(got.Payload) != "immutable" {
		t.Errorf("payload = %q, want %q", got.Payload, "immutable")
	}
}

func TestUnknownDestination(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Attach(1)
	if err := a.Send(frameTo(1, 99, "x")); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Send = %v, want ErrUnknownNode", err)
	}
}

func TestDuplicateAttach(t *testing.T) {
	n := New()
	defer n.Close()
	if _, err := n.Attach(1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(1); !errors.Is(err, ErrDuplicate) {
		t.Errorf("second Attach = %v, want ErrDuplicate", err)
	}
}

func TestLatencyApplied(t *testing.T) {
	const lat = 30 * time.Millisecond
	n := New(WithDefaultLink(LinkConfig{Latency: lat}))
	defer n.Close()
	a, _ := n.Attach(1)
	b, _ := n.Attach(2)
	start := time.Now()
	if err := a.Send(frameTo(1, 2, "x")); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b, time.Second)
	if got := time.Since(start); got < lat {
		t.Errorf("delivered after %v, want >= %v", got, lat)
	}
}

func TestBandwidthDelaysLargeFrames(t *testing.T) {
	// 1 MiB/s: a 100 KiB payload should take ~100 ms.
	n := New(WithDefaultLink(LinkConfig{BytesPerSecond: 1 << 20}))
	defer n.Close()
	a, _ := n.Attach(1)
	b, _ := n.Attach(2)
	big := frameTo(1, 2, string(make([]byte, 100<<10)))
	start := time.Now()
	if err := a.Send(big); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b, 2*time.Second)
	if got := time.Since(start); got < 50*time.Millisecond {
		t.Errorf("100KiB over 1MiB/s delivered in %v, want >= 50ms", got)
	}
}

func TestTotalLossDropsEverything(t *testing.T) {
	n := New(WithDefaultLink(LinkConfig{LossRate: 0.9999999}), WithSeed(7))
	defer n.Close()
	a, _ := n.Attach(1)
	b, _ := n.Attach(2)
	for i := 0; i < 50; i++ {
		if err := a.Send(frameTo(1, 2, "x")); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-b.Recv():
		t.Error("frame survived a ~100% loss link")
	case <-time.After(50 * time.Millisecond):
	}
	st := n.Snapshot()
	if st.Lost != 50 {
		t.Errorf("Lost = %d, want 50", st.Lost)
	}
}

func TestLossRateRoughlyHonored(t *testing.T) {
	n := New(WithDefaultLink(LinkConfig{LossRate: 0.5}), WithSeed(42))
	defer n.Close()
	a, _ := n.Attach(1)
	_, _ = n.Attach(2)
	const total = 2000
	for i := 0; i < total; i++ {
		if err := a.Send(frameTo(1, 2, "x")); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Snapshot()
	if st.Lost < total/3 || st.Lost > 2*total/3 {
		t.Errorf("Lost = %d of %d at p=0.5", st.Lost, total)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Attach(1)
	b, _ := n.Attach(2)
	n.Partition(1, 2)
	if err := a.Send(frameTo(1, 2, "lost")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
		t.Fatal("frame crossed a partition")
	case <-time.After(30 * time.Millisecond):
	}
	if st := n.Snapshot(); st.Partition != 1 {
		t.Errorf("Partition drops = %d, want 1", st.Partition)
	}
	n.Heal(1, 2)
	if err := a.Send(frameTo(1, 2, "through")); err != nil {
		t.Fatal(err)
	}
	got := recvWithin(t, b, time.Second)
	if string(got.Payload) != "through" {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestPartitionIsBidirectional(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Attach(1)
	b, _ := n.Attach(2)
	n.Partition(1, 2)
	_ = b.Send(frameTo(2, 1, "reverse"))
	select {
	case <-a.Recv():
		t.Error("reverse direction crossed the partition")
	case <-time.After(30 * time.Millisecond):
	}
}

func TestPerLinkOverride(t *testing.T) {
	n := New(WithDefaultLink(LinkConfig{Latency: 200 * time.Millisecond}))
	defer n.Close()
	a, _ := n.Attach(1)
	b, _ := n.Attach(2)
	n.SetLink(1, 2, LinkConfig{}) // fast path override
	start := time.Now()
	if err := a.Send(frameTo(1, 2, "x")); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b, time.Second)
	if got := time.Since(start); got > 100*time.Millisecond {
		t.Errorf("override link took %v, want fast", got)
	}
}

func TestLocalLinkIsSeparate(t *testing.T) {
	n := New(WithDefaultLink(LinkConfig{Latency: 200 * time.Millisecond}))
	defer n.Close()
	a, _ := n.Attach(1)
	start := time.Now()
	// Same-node traffic (context to context) uses the local link: fast.
	f := frameTo(1, 1, "local")
	f.Dst.Context = 2
	if err := a.Send(f); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, a, time.Second)
	if got := time.Since(start); got > 100*time.Millisecond {
		t.Errorf("local delivery took %v", got)
	}
}

func TestCloseEndpoint(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Attach(1)
	b, _ := n.Attach(2)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("double Close = %v", err)
	}
	if _, ok := <-b.Recv(); ok {
		t.Error("recv channel still open after Close")
	}
	// Node 2 is gone; sends to it now fail.
	if err := a.Send(frameTo(1, 2, "x")); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Send to closed = %v, want ErrUnknownNode", err)
	}
	if err := b.Send(frameTo(2, 1, "x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Send from closed = %v, want ErrClosed", err)
	}
}

func TestNetworkClose(t *testing.T) {
	n := New()
	a, _ := n.Attach(1)
	n.Close()
	if err := a.Send(frameTo(1, 1, "x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after network Close = %v", err)
	}
	if _, err := n.Attach(3); !errors.Is(err, ErrClosed) {
		t.Errorf("Attach after Close = %v", err)
	}
}

func TestQueueOverrun(t *testing.T) {
	n := New(WithQueueDepth(4))
	defer n.Close()
	a, _ := n.Attach(1)
	_, _ = n.Attach(2)
	for i := 0; i < 20; i++ {
		if err := a.Send(frameTo(1, 2, "x")); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Snapshot()
	if st.Overrun == 0 {
		t.Error("no overruns recorded with tiny queue")
	}
	if st.Delivered+st.Overrun != 20 {
		t.Errorf("delivered %d + overrun %d != 20", st.Delivered, st.Overrun)
	}
}

func TestStatsBytesMoved(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Attach(1)
	b, _ := n.Attach(2)
	f := frameTo(1, 2, "12345")
	want := uint64(f.EncodedLen())
	_ = a.Send(f)
	recvWithin(t, b, time.Second)
	if st := n.Snapshot(); st.BytesMoved != want {
		t.Errorf("BytesMoved = %d, want %d", st.BytesMoved, want)
	}
}

func TestSeedReproducible(t *testing.T) {
	run := func() uint64 {
		n := New(WithDefaultLink(LinkConfig{LossRate: 0.3}), WithSeed(99))
		defer n.Close()
		a, _ := n.Attach(1)
		_, _ = n.Attach(2)
		for i := 0; i < 500; i++ {
			_ = a.Send(frameTo(1, 2, "x"))
		}
		return n.Snapshot().Lost
	}
	if first, second := run(), run(); first != second {
		t.Errorf("same seed produced %d then %d losses", first, second)
	}
}

func BenchmarkSimSendRecv(b *testing.B) {
	n := New()
	defer n.Close()
	a, _ := n.Attach(1)
	bb, _ := n.Attach(2)
	f := frameTo(1, 2, "payload")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(f); err != nil {
			b.Fatal(err)
		}
		<-bb.Recv()
	}
}

func TestJitterBoundsDelay(t *testing.T) {
	const lat, jit = 10 * time.Millisecond, 20 * time.Millisecond
	n := New(WithDefaultLink(LinkConfig{Latency: lat, Jitter: jit}), WithSeed(5))
	defer n.Close()
	a, _ := n.Attach(1)
	b, _ := n.Attach(2)
	var min, max time.Duration
	for i := 0; i < 20; i++ {
		start := time.Now()
		if err := a.Send(frameTo(1, 2, "j")); err != nil {
			t.Fatal(err)
		}
		recvWithin(t, b, time.Second)
		d := time.Since(start)
		if i == 0 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min < lat {
		t.Errorf("min delay %v below base latency %v", min, lat)
	}
	// With 20 samples over a 20ms jitter window, the spread should be
	// clearly visible (well over the scheduler noise floor).
	if max-min < 2*time.Millisecond {
		t.Errorf("jitter produced no spread: min=%v max=%v", min, max)
	}
}
