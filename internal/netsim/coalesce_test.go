package netsim

import (
	"testing"
	"time"

	"repro/internal/wire"
)

func recvOne(t *testing.T, ch <-chan *wire.Frame) *wire.Frame {
	t.Helper()
	select {
	case f, ok := <-ch:
		if !ok {
			t.Fatal("recv channel closed")
		}
		return f
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for frame")
	}
	return nil
}

func TestCoalescedEndpointAdvertisesAndMarksCapability(t *testing.T) {
	net := New()
	defer net.Close()
	epA, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := net.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	ceA := Coalesce(epA, wire.CoalescerConfig{})
	ceB := Coalesce(epB, wire.CoalescerConfig{})
	defer ceB.Close()

	// A node is born knowing its own transport unpacks trains (loopback
	// and cross-context traffic needs no handshake)…
	if !ceA.Coalescer().Capable(1) {
		t.Error("local node not marked capable at construction")
	}
	// …but must not assume anything about a peer it has never heard from.
	if ceA.Coalescer().Capable(2) {
		t.Error("peer marked capable before any exchange")
	}

	// Every outbound frame advertises FlagTrains; the kernel on the far
	// side feeds MarkTrainCapable from it. The transport itself forwards
	// inbound frames untouched.
	ping := &wire.Frame{Kind: wire.KindPing, ReqID: 1, Src: wire.Addr{Node: 1}, Dst: wire.Addr{Node: 2}}
	if err := ceA.Send(ping); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, ceB.Recv())
	if got.Kind != wire.KindPing || got.Flags&wire.FlagTrains == 0 {
		t.Fatalf("B received %v flags=%04x, want ping advertising FlagTrains", got.Kind, got.Flags)
	}

	// MarkTrainCapable is the kernel's hook; after it, A is fair game for
	// trains from B.
	ceB.MarkTrainCapable(1)
	if !ceB.Coalescer().Capable(1) {
		t.Error("MarkTrainCapable did not stick")
	}

	// Close must stop the coalescer and close the endpoint's channel.
	ceA.Close()
	select {
	case _, ok := <-ceA.Recv():
		if ok {
			t.Error("frame after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recv channel did not close")
	}
}

func TestCoalescedEndpointLegacyPeerStaysFrameAtATime(t *testing.T) {
	net := New()
	defer net.Close()
	epA, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	epLegacy, err := net.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	defer epLegacy.Close()
	ceA := Coalesce(epA, wire.CoalescerConfig{})
	defer ceA.Close()

	// The legacy peer answers without FlagTrains — A must never mark it
	// capable, and everything A sends it stays an ordinary frame.
	for i := 0; i < 3; i++ {
		f := &wire.Frame{Kind: wire.KindRequest, ReqID: uint64(i), Src: wire.Addr{Node: 1, Context: 1}, Dst: wire.Addr{Node: 2, Context: 1}, Object: 5}
		if err := ceA.Send(f); err != nil {
			t.Fatal(err)
		}
		got := recvOne(t, epLegacy.Recv())
		if got.Kind == wire.KindTrain {
			t.Fatal("legacy peer received a train")
		}
		reply := &wire.Frame{Kind: wire.KindReply, Flags: wire.FlagResponse, ReqID: got.ReqID, Src: got.Dst, Dst: got.Src}
		if err := epLegacy.Send(reply); err != nil {
			t.Fatal(err)
		}
		recvOne(t, ceA.Recv())
	}
	if ceA.Coalescer().Capable(2) {
		t.Error("legacy peer marked train-capable")
	}
	if st := ceA.Coalescer().Stats(); st.TrainsSent != 0 || st.DirectSends != 3 {
		t.Errorf("stats = %+v, want 3 direct sends and no trains", st)
	}
}
