package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/wire"
)

// Write-ahead log. A replica-group primary appends every ordered write
// here *before* acknowledging it, so a crash between ack and fan-out can
// never lose an acknowledged write: the log survives the crash and the
// restarted node (or its successor, via state transfer) replays it.
//
// The log is a flat stream of CRC-framed blocks:
//
//	snapshot block: 'S' epoch(uvarint) seq(uvarint) state(bytes) crc32(4)
//	record block:   'R' epoch(uvarint) seq(uvarint) payload(bytes) crc32(4)
//	dedup block:    'D' epoch(uvarint) seq(uvarint) entry(bytes) crc32(4)
//	  entry = sid(uvarint) cseq(uvarint) digest(uvarint)
//
// The CRC (Castagnoli, as in checkpoints) covers the block from the kind
// byte through the body. A snapshot block resets the baseline: replay
// state = last snapshot + records after it, and Compact rewrites the log
// to exactly that. A dedup block rides next to the record it annotates:
// it binds a logged write to the (session, sequence) identity the client
// stamped it with, plus a digest of the reply, so a successor replaying
// the log rebuilds not just the state but the exactly-once dedup table —
// a retransmit landing after promotion is recognized, not re-applied.
// Dedup blocks are subsumed by snapshots exactly like records (the
// snapshot state embeds the dedup table) and are dropped by compaction.
// A torn final block — the artifact of dying mid-append —
// is silently dropped on open (and truncated away, so later appends stay
// parseable); a complete block whose CRC mismatches is ErrBadLog, because
// that is corruption, not a crash.

// ErrBadLog reports a corrupted (not merely torn) write-ahead log.
var ErrBadLog = errors.New("persist: bad log")

// ErrCompacted reports a log suffix request older than the last snapshot:
// the records needed were discarded by compaction.
var ErrCompacted = errors.New("persist: suffix compacted away")

const (
	blockSnapshot = 'S'
	blockRecord   = 'R'
	blockDedup    = 'D'
)

// Record is one ordered write as logged by the primary: the epoch it was
// sequenced under, its global sequence number, and the raw request payload.
type Record struct {
	Epoch   uint64
	Seq     uint64
	Payload []byte
}

// DedupRecord binds a logged write to the exactly-once identity its client
// stamped it with: write (Epoch, Seq) was invocation (SID, CSeq), and the
// reply it produced hashed to Digest. Replaying these alongside the record
// stream reconstructs the primary's dedup table after a crash.
type DedupRecord struct {
	Epoch  uint64
	Seq    uint64
	SID    uint64
	CSeq   uint64
	Digest uint32
}

// LogStore is the durability substrate a WAL writes through. Append must
// not return before the bytes are durable; Rewrite must be atomic (a crash
// mid-rewrite leaves either the old or the new contents).
type LogStore interface {
	// ReadAll returns the current contents.
	ReadAll() ([]byte, error)
	// Append durably appends data.
	Append(data []byte) error
	// Rewrite atomically replaces the contents.
	Rewrite(data []byte) error
}

// MemStore is an in-memory LogStore for tests and the simulated network,
// where netsim's Restart models durable state surviving a crash.
type MemStore struct {
	mu  sync.Mutex
	buf []byte
}

// NewMemStore returns a MemStore seeded with initial contents (may be nil).
func NewMemStore(initial []byte) *MemStore {
	return &MemStore{buf: append([]byte(nil), initial...)}
}

// ReadAll implements LogStore.
func (s *MemStore) ReadAll() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf...), nil
}

// Append implements LogStore.
func (s *MemStore) Append(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = append(s.buf, data...)
	return nil
}

// Rewrite implements LogStore.
func (s *MemStore) Rewrite(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = append(s.buf[:0:0], data...)
	return nil
}

// FileStore is a file-backed LogStore: Append writes and syncs, Rewrite
// goes through a temp file + rename (the same atomicity discipline as
// proxyd's checkpoint save).
type FileStore struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

// OpenFileStore opens (creating if absent) the log file at path.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open log: %w", err)
	}
	return &FileStore{path: path, f: f}, nil
}

// ReadAll implements LogStore.
func (s *FileStore) ReadAll() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.ReadFile(s.path)
}

// Append implements LogStore.
func (s *FileStore) Append(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
		return err
	}
	if _, err := s.f.Write(data); err != nil {
		return err
	}
	return s.f.Sync()
}

// Rewrite implements LogStore.
func (s *FileStore) Rewrite(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir, base := filepath.Split(s.path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	old := s.f
	f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	s.f = f
	return old.Close()
}

// Close closes the underlying file.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// WAL is a write-ahead log over a LogStore. It mirrors the live suffix in
// memory (bounded by compaction) so state transfer can serve log suffixes
// without re-reading the store. Safe for concurrent use.
type WAL struct {
	mu    sync.Mutex
	store LogStore

	snapEpoch uint64
	snapSeq   uint64
	snapshot  []byte
	hasSnap   bool
	records   []Record
	dedups    []DedupRecord
}

// OpenWAL replays the store's contents. A torn final block is dropped and
// truncated away; any other malformation is ErrBadLog.
func OpenWAL(store LogStore) (*WAL, error) {
	raw, err := store.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("persist: read log: %w", err)
	}
	w := &WAL{store: store}
	clean, err := w.replay(raw)
	if err != nil {
		return nil, err
	}
	if clean < len(raw) {
		// Torn tail: truncate so future appends follow a parseable prefix.
		if err := store.Rewrite(raw[:clean]); err != nil {
			return nil, fmt.Errorf("persist: truncate torn log: %w", err)
		}
	}
	return w, nil
}

// replay parses raw, populating w, and returns the length of the clean
// prefix (everything before a torn final block).
func (w *WAL) replay(raw []byte) (int, error) {
	off := 0
	for off < len(raw) {
		kind := raw[off]
		if kind != blockSnapshot && kind != blockRecord && kind != blockDedup {
			return 0, fmt.Errorf("%w: unknown block kind 0x%02x at %d", ErrBadLog, kind, off)
		}
		body := raw[off+1:]
		epoch, n1, err := wire.Uvarint(body)
		if err != nil {
			return off, nil // torn
		}
		body = body[n1:]
		seq, n2, err := wire.Uvarint(body)
		if err != nil {
			return off, nil // torn
		}
		body = body[n2:]
		data, n3, err := wire.Bytes(body)
		if err != nil {
			return off, nil // torn
		}
		body = body[n3:]
		if len(body) < 4 {
			return off, nil // torn
		}
		blockLen := 1 + n1 + n2 + n3
		want := binary.BigEndian.Uint32(body)
		if crc32.Checksum(raw[off:off+blockLen], crcTable) != want {
			return 0, fmt.Errorf("%w: crc mismatch at %d", ErrBadLog, off)
		}
		switch kind {
		case blockSnapshot:
			if w.hasSnap && (epoch < w.snapEpoch || (epoch == w.snapEpoch && seq < w.snapSeq)) {
				return 0, fmt.Errorf("%w: snapshot goes backwards at %d", ErrBadLog, off)
			}
			w.snapEpoch, w.snapSeq = epoch, seq
			w.snapshot = append([]byte(nil), data...)
			w.hasSnap = true
			w.records = w.records[:0]
			w.dedups = w.dedups[:0]
		case blockRecord:
			le, ls := w.lastLocked()
			if epoch < le || seq <= ls {
				return 0, fmt.Errorf("%w: record order violation at %d (epoch %d seq %d after epoch %d seq %d)", ErrBadLog, off, epoch, seq, le, ls)
			}
			w.records = append(w.records, Record{Epoch: epoch, Seq: seq, Payload: append([]byte(nil), data...)})
		case blockDedup:
			dr, err := decodeDedupEntry(epoch, seq, data)
			if err != nil {
				return 0, fmt.Errorf("%w: bad dedup entry at %d: %v", ErrBadLog, off, err)
			}
			w.dedups = append(w.dedups, dr)
		}
		off += blockLen + 4
	}
	return off, nil
}

func decodeDedupEntry(epoch, seq uint64, data []byte) (DedupRecord, error) {
	sid, n1, err := wire.Uvarint(data)
	if err != nil {
		return DedupRecord{}, err
	}
	cseq, n2, err := wire.Uvarint(data[n1:])
	if err != nil {
		return DedupRecord{}, err
	}
	digest, _, err := wire.Uvarint(data[n1+n2:])
	if err != nil {
		return DedupRecord{}, err
	}
	return DedupRecord{Epoch: epoch, Seq: seq, SID: sid, CSeq: cseq, Digest: uint32(digest)}, nil
}

func appendBlock(dst []byte, kind byte, epoch, seq uint64, data []byte) []byte {
	start := len(dst)
	dst = append(dst, kind)
	dst = wire.AppendUvarint(dst, epoch)
	dst = wire.AppendUvarint(dst, seq)
	dst = wire.AppendBytes(dst, data)
	var crcBuf [4]byte
	binary.BigEndian.PutUint32(crcBuf[:], crc32.Checksum(dst[start:], crcTable))
	return append(dst, crcBuf[:]...)
}

// lastLocked returns the epoch/seq position after the newest entry.
func (w *WAL) lastLocked() (epoch, seq uint64) {
	if n := len(w.records); n > 0 {
		return w.records[n-1].Epoch, w.records[n-1].Seq
	}
	return w.snapEpoch, w.snapSeq
}

// Last returns the epoch and sequence number of the newest entry (record
// or snapshot baseline); zero values for an empty log.
func (w *WAL) Last() (epoch, seq uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastLocked()
}

// Append durably logs one ordered write. It must be called before the
// write is acknowledged; order violations (non-increasing seq, decreasing
// epoch) are rejected.
func (w *WAL) Append(epoch, seq uint64, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	le, ls := w.lastLocked()
	if epoch < le || seq <= ls {
		return fmt.Errorf("%w: append epoch %d seq %d after epoch %d seq %d", ErrBadLog, epoch, seq, le, ls)
	}
	if err := w.store.Append(appendBlock(nil, blockRecord, epoch, seq, payload)); err != nil {
		return err
	}
	w.records = append(w.records, Record{Epoch: epoch, Seq: seq, Payload: append([]byte(nil), payload...)})
	return nil
}

// AppendDedup durably logs the exactly-once identity of the write at
// (epoch, seq): client session sid committed its cseq-th invocation and
// received a reply hashing to digest. Called right after Append for the
// same (epoch, seq), before the ack — so the ack implies the dedup entry
// is durable, and a successor that replays the log can refuse to
// re-apply a retransmission of this invocation.
func (w *WAL) AppendDedup(epoch, seq, sid, cseq uint64, digest uint32) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	entry := wire.AppendUvarint(nil, sid)
	entry = wire.AppendUvarint(entry, cseq)
	entry = wire.AppendUvarint(entry, uint64(digest))
	if err := w.store.Append(appendBlock(nil, blockDedup, epoch, seq, entry)); err != nil {
		return err
	}
	w.dedups = append(w.dedups, DedupRecord{Epoch: epoch, Seq: seq, SID: sid, CSeq: cseq, Digest: digest})
	return nil
}

// DedupRecords returns every dedup record after the snapshot baseline,
// in append order. Chaos tests use this to audit that every acked
// session-stamped write left a durable dedup trace.
func (w *WAL) DedupRecords() []DedupRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]DedupRecord, len(w.dedups))
	copy(out, w.dedups)
	return out
}

// Snapshot records a full-state snapshot as of (epoch, seq) and compacts:
// the log is atomically rewritten to just the snapshot block, discarding
// the records it subsumes.
func (w *WAL) Snapshot(epoch, seq uint64, state []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if le, ls := w.lastLocked(); epoch < le || seq < ls {
		return fmt.Errorf("%w: snapshot epoch %d seq %d before epoch %d seq %d", ErrBadLog, epoch, seq, le, ls)
	}
	if err := w.store.Rewrite(appendBlock(nil, blockSnapshot, epoch, seq, state)); err != nil {
		return err
	}
	w.snapEpoch, w.snapSeq = epoch, seq
	w.snapshot = append([]byte(nil), state...)
	w.hasSnap = true
	w.records = w.records[:0]
	w.dedups = w.dedups[:0]
	return nil
}

// LastSnapshot returns the newest snapshot, if any.
func (w *WAL) LastSnapshot() (epoch, seq uint64, state []byte, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.hasSnap {
		return 0, 0, nil, false
	}
	return w.snapEpoch, w.snapSeq, append([]byte(nil), w.snapshot...), true
}

// Suffix returns the records with Seq > afterSeq. ErrCompacted means the
// caller is behind the snapshot baseline and needs full state transfer.
func (w *WAL) Suffix(afterSeq uint64) ([]Record, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if afterSeq < w.snapSeq {
		return nil, ErrCompacted
	}
	var out []Record
	for _, r := range w.records {
		if r.Seq > afterSeq {
			out = append(out, Record{Epoch: r.Epoch, Seq: r.Seq, Payload: append([]byte(nil), r.Payload...)})
		}
	}
	return out, nil
}

// Records returns every record after the snapshot baseline (the live
// suffix). Chaos tests use this to audit that acknowledged writes were
// logged before their acks.
func (w *WAL) Records() []Record {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Record, 0, len(w.records))
	for _, r := range w.records {
		out = append(out, Record{Epoch: r.Epoch, Seq: r.Seq, Payload: append([]byte(nil), r.Payload...)})
	}
	return out
}

// Len reports the number of live (post-snapshot) records.
func (w *WAL) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.records)
}
