// Package persist implements checkpoint/restore of service state — the
// paper's lineage treats persistence as migration to stable storage (the
// idea Shapiro's later SOS system built out): the same Snapshot/Restore
// contract that moves an object between contexts (migrate.Migratable)
// also moves it across process lifetimes.
//
// A Checkpoint is a named set of object snapshots with a format header
// and per-entry integrity hashes. cmd/proxyd can save one at shutdown and
// reload it at boot, so a node restart preserves its services' state.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"

	"repro/internal/wire"
)

// Snapshotter is the state-capture half of migrate.Migratable /
// replica.StateMachine, which is all persistence needs at save time.
type Snapshotter interface {
	Snapshot() ([]byte, error)
}

// Restorer is the restore half, needed at load time.
type Restorer interface {
	Restore(data []byte) error
}

// Errors returned by the persistence layer.
var (
	// ErrBadCheckpoint reports a malformed or corrupted checkpoint stream.
	ErrBadCheckpoint = errors.New("persist: bad checkpoint")
	// ErrDuplicateName reports two entries saved under one name.
	ErrDuplicateName = errors.New("persist: duplicate entry name")
	// ErrUnknownEntry reports a restore of a name the checkpoint lacks.
	ErrUnknownEntry = errors.New("persist: no such entry")
)

const (
	checkpointMagic   = 0x434b5054 // "CKPT"
	checkpointVersion = 1
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checkpoint is an in-memory set of named snapshots. The zero value is
// empty and ready to use. Safe for concurrent use.
type Checkpoint struct {
	mu      sync.Mutex
	entries map[string][]byte
}

// NewCheckpoint returns an empty checkpoint.
func NewCheckpoint() *Checkpoint {
	return &Checkpoint{entries: make(map[string][]byte)}
}

// Add captures svc's state under name.
func (c *Checkpoint) Add(name string, svc Snapshotter) error {
	if name == "" {
		return fmt.Errorf("%w: empty name", ErrBadCheckpoint)
	}
	data, err := svc.Snapshot()
	if err != nil {
		return fmt.Errorf("persist: snapshot %q: %w", name, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[string][]byte)
	}
	if _, ok := c.entries[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	c.entries[name] = data
	return nil
}

// AddRaw stores pre-serialized state (used when the object is already a
// byte blob, e.g. relayed from another node).
func (c *Checkpoint) AddRaw(name string, data []byte) error {
	if name == "" {
		return fmt.Errorf("%w: empty name", ErrBadCheckpoint)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[string][]byte)
	}
	if _, ok := c.entries[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateName, name)
	}
	c.entries[name] = append([]byte(nil), data...)
	return nil
}

// Names lists the entries, sorted.
func (c *Checkpoint) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.entries))
	for n := range c.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RestoreInto loads the named entry into svc.
func (c *Checkpoint) RestoreInto(name string, svc Restorer) error {
	c.mu.Lock()
	data, ok := c.entries[name]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEntry, name)
	}
	if err := svc.Restore(data); err != nil {
		return fmt.Errorf("persist: restore %q: %w", name, err)
	}
	return nil
}

// WriteTo serializes the checkpoint:
//
//	magic(4) version(1) count(varint)
//	per entry: name(string) len(varint) data crc32(4 over name+data)
//
// Entries are written in sorted order, so equal checkpoints serialize
// identically. Implements io.WriterTo.
func (c *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	c.mu.Lock()
	names := make([]string, 0, len(c.entries))
	for n := range c.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	buf := make([]byte, 0, 256)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], checkpointMagic)
	buf = append(buf, hdr[:]...)
	buf = append(buf, checkpointVersion)
	buf = wire.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		entryStart := len(buf)
		buf = wire.AppendString(buf, name)
		buf = wire.AppendBytes(buf, c.entries[name])
		crc := crc32.Checksum(buf[entryStart:], crcTable)
		var crcBuf [4]byte
		binary.BigEndian.PutUint32(crcBuf[:], crc)
		buf = append(buf, crcBuf[:]...)
	}
	c.mu.Unlock()
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadCheckpoint parses a checkpoint stream written by WriteTo, verifying
// every entry's integrity hash.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("persist: read: %w", err)
	}
	if len(raw) < 5 {
		return nil, fmt.Errorf("%w: truncated header", ErrBadCheckpoint)
	}
	if binary.BigEndian.Uint32(raw) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	if raw[4] != checkpointVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadCheckpoint, raw[4])
	}
	raw = raw[5:]
	count, n, err := wire.Uvarint(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: count: %s", ErrBadCheckpoint, err)
	}
	raw = raw[n:]
	if count > uint64(len(raw)) {
		return nil, fmt.Errorf("%w: impossible entry count %d", ErrBadCheckpoint, count)
	}
	c := NewCheckpoint()
	for i := uint64(0); i < count; i++ {
		entry := raw
		name, n1, err := wire.String(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: entry %d name: %s", ErrBadCheckpoint, i, err)
		}
		raw = raw[n1:]
		data, n2, err := wire.Bytes(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: entry %q data: %s", ErrBadCheckpoint, name, err)
		}
		raw = raw[n2:]
		if len(raw) < 4 {
			return nil, fmt.Errorf("%w: entry %q missing crc", ErrBadCheckpoint, name)
		}
		want := binary.BigEndian.Uint32(raw)
		if crc32.Checksum(entry[:n1+n2], crcTable) != want {
			return nil, fmt.Errorf("%w: entry %q corrupted", ErrBadCheckpoint, name)
		}
		raw = raw[4:]
		if err := c.AddRaw(name, data); err != nil {
			return nil, err
		}
	}
	if len(raw) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadCheckpoint, len(raw))
	}
	return c, nil
}
