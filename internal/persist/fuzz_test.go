package persist

import (
	"bytes"
	"reflect"
	"testing"
)

// Fuzz entry points for the two decoders that parse attacker-shaped (or
// disk-rotted) bytes: the checkpoint reader and the WAL replayer. Run
// with e.g.
//
//	go test -fuzz=FuzzReadCheckpoint -fuzztime=30s ./internal/persist
//
// Seed corpus: valid encodings plus characteristic corruptions, both as
// f.Add seeds below and as committed files under testdata/fuzz.

func checkpointSeed(t testing.TB) []byte {
	c := NewCheckpoint()
	if err := c.AddRaw("services/kv", []byte("\x01\x02payload")); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRaw("services/other", nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzReadCheckpoint(f *testing.F) {
	good := checkpointSeed(f)
	f.Add(good)
	f.Add(good[:len(good)/2])
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0x43, 0x4b, 0x50, 0x54, 0x01, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must round-trip to an equivalent checkpoint.
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			t.Fatalf("re-encode accepted checkpoint: %v", err)
		}
		c2, err := ReadCheckpoint(&buf)
		if err != nil {
			t.Fatalf("re-decode own encoding: %v", err)
		}
		if !reflect.DeepEqual(c.Names(), c2.Names()) {
			t.Fatalf("round trip changed names: %v vs %v", c.Names(), c2.Names())
		}
	})
}

func walSeed(t testing.TB) []byte {
	store := NewMemStore(nil)
	w, err := OpenWAL(store)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, 1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := w.Snapshot(1, 1, []byte("state")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, 2, []byte("two")); err != nil {
		t.Fatal(err)
	}
	raw, _ := store.ReadAll()
	return raw
}

func FuzzWALReplay(f *testing.F) {
	good := walSeed(f)
	f.Add(good)
	f.Add(good[:len(good)-3]) // torn tail
	flipped := append([]byte(nil), good...)
	flipped[2] ^= 0x01
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{'R', 0x01})
	f.Add([]byte{'S', 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		store := NewMemStore(data)
		w, err := OpenWAL(store)
		if err != nil {
			return
		}
		// Whatever survived replay (open may have truncated a torn tail)
		// must be a stable fixed point: re-opening yields the same state.
		raw, _ := store.ReadAll()
		w2, err := OpenWAL(NewMemStore(raw))
		if err != nil {
			t.Fatalf("re-open of accepted log: %v", err)
		}
		if !reflect.DeepEqual(w.Records(), w2.Records()) {
			t.Fatal("re-open changed records")
		}
		e1, s1 := w.Last()
		e2, s2 := w2.Last()
		if e1 != e2 || s1 != s2 {
			t.Fatalf("re-open changed position: %d/%d vs %d/%d", e1, s1, e2, s2)
		}
	})
}
