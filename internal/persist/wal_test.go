package persist

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

func mustAppend(t *testing.T, w *WAL, epoch, seq uint64, payload string) {
	t.Helper()
	if err := w.Append(epoch, seq, []byte(payload)); err != nil {
		t.Fatalf("append %d/%d: %v", epoch, seq, err)
	}
}

func TestWALRoundTrip(t *testing.T) {
	store := NewMemStore(nil)
	w, err := OpenWAL(store)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, 1, 1, "a")
	mustAppend(t, w, 1, 2, "b")
	mustAppend(t, w, 2, 3, "c")

	raw, _ := store.ReadAll()
	re, err := OpenWAL(NewMemStore(raw))
	if err != nil {
		t.Fatal(err)
	}
	recs := re.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	if recs[2].Epoch != 2 || recs[2].Seq != 3 || string(recs[2].Payload) != "c" {
		t.Errorf("last record = %+v", recs[2])
	}
	if e, s := re.Last(); e != 2 || s != 3 {
		t.Errorf("Last = %d/%d", e, s)
	}
}

func TestWALOrderViolations(t *testing.T) {
	w, _ := OpenWAL(NewMemStore(nil))
	mustAppend(t, w, 2, 5, "x")
	if err := w.Append(2, 5, []byte("dup")); !errors.Is(err, ErrBadLog) {
		t.Errorf("duplicate seq = %v", err)
	}
	if err := w.Append(2, 4, []byte("back")); !errors.Is(err, ErrBadLog) {
		t.Errorf("seq going backwards = %v", err)
	}
	if err := w.Append(1, 6, []byte("old")); !errors.Is(err, ErrBadLog) {
		t.Errorf("epoch going backwards = %v", err)
	}
	if err := w.Snapshot(1, 1, nil); !errors.Is(err, ErrBadLog) {
		t.Errorf("snapshot going backwards = %v", err)
	}
}

func TestWALSnapshotCompacts(t *testing.T) {
	store := NewMemStore(nil)
	w, _ := OpenWAL(store)
	for i := uint64(1); i <= 5; i++ {
		mustAppend(t, w, 1, i, "w")
	}
	before, _ := store.ReadAll()
	if err := w.Snapshot(1, 5, []byte("state@5")); err != nil {
		t.Fatal(err)
	}
	after, _ := store.ReadAll()
	if len(after) >= len(before) {
		t.Errorf("compaction did not shrink the log: %d -> %d", len(before), len(after))
	}
	if w.Len() != 0 {
		t.Errorf("live records after snapshot = %d", w.Len())
	}
	mustAppend(t, w, 1, 6, "post")

	raw, _ := store.ReadAll()
	re, err := OpenWAL(NewMemStore(raw))
	if err != nil {
		t.Fatal(err)
	}
	epoch, seq, state, ok := re.LastSnapshot()
	if !ok || epoch != 1 || seq != 5 || string(state) != "state@5" {
		t.Errorf("snapshot = %d/%d %q ok=%v", epoch, seq, state, ok)
	}
	recs := re.Records()
	if len(recs) != 1 || recs[0].Seq != 6 {
		t.Errorf("post-snapshot records = %+v", recs)
	}
}

func TestWALSuffix(t *testing.T) {
	w, _ := OpenWAL(NewMemStore(nil))
	for i := uint64(1); i <= 4; i++ {
		mustAppend(t, w, 1, i, "w")
	}
	if err := w.Snapshot(1, 4, []byte("s")); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, 1, 5, "e")
	mustAppend(t, w, 1, 6, "f")

	if recs, err := w.Suffix(4); err != nil || len(recs) != 2 {
		t.Errorf("Suffix(4) = %v, %v", recs, err)
	}
	if recs, err := w.Suffix(5); err != nil || len(recs) != 1 || recs[0].Seq != 6 {
		t.Errorf("Suffix(5) = %v, %v", recs, err)
	}
	if recs, err := w.Suffix(6); err != nil || len(recs) != 0 {
		t.Errorf("Suffix(6) = %v, %v", recs, err)
	}
	// Behind the compaction baseline: needs full state transfer.
	if _, err := w.Suffix(2); !errors.Is(err, ErrCompacted) {
		t.Errorf("Suffix(2) err = %v", err)
	}
}

// TestWALTornTail simulates dying mid-append: every strict prefix of the
// final block must replay to the first two records, and the torn bytes
// must be truncated so subsequent appends parse.
func TestWALTornTail(t *testing.T) {
	store := NewMemStore(nil)
	w, _ := OpenWAL(store)
	mustAppend(t, w, 1, 1, "keep-1")
	mustAppend(t, w, 1, 2, "keep-2")
	clean, _ := store.ReadAll()
	cleanLen := len(clean)
	mustAppend(t, w, 1, 3, "torn")
	full, _ := store.ReadAll()

	for cut := cleanLen + 1; cut < len(full); cut++ {
		store := NewMemStore(full[:cut])
		re, err := OpenWAL(store)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got := len(re.Records()); got != 2 {
			t.Fatalf("cut %d: %d records, want 2", cut, got)
		}
		// The torn bytes must be gone: a fresh append then a re-open
		// must see exactly records 1, 2, 3.
		mustAppend(t, re, 1, 3, "retry")
		raw, _ := store.ReadAll()
		re2, err := OpenWAL(NewMemStore(raw))
		if err != nil {
			t.Fatalf("cut %d reopen: %v", cut, err)
		}
		if got := len(re2.Records()); got != 3 {
			t.Fatalf("cut %d reopen: %d records, want 3", cut, got)
		}
	}
}

// TestWALCorruption flips each byte of a complete log: every flip that
// lands in a complete block must surface ErrBadLog, never silently alter
// a record. (Flips that make the stream look torn are allowed to replay
// a shorter prefix — but only ever a prefix.)
func TestWALCorruption(t *testing.T) {
	store := NewMemStore(nil)
	w, _ := OpenWAL(store)
	mustAppend(t, w, 1, 1, "alpha")
	mustAppend(t, w, 1, 2, "beta")
	good, _ := store.ReadAll()

	for i := range good {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0xff
		re, err := OpenWAL(NewMemStore(mut))
		if err != nil {
			if !errors.Is(err, ErrBadLog) {
				t.Errorf("byte %d: unexpected error class %v", i, err)
			}
			continue
		}
		// Accepted: every surviving record must be byte-identical to an
		// original one (a prefix replay after an apparent tear).
		for _, r := range re.Records() {
			want := map[uint64]string{1: "alpha", 2: "beta"}[r.Seq]
			if want == "" || string(r.Payload) != want || r.Epoch != 1 {
				t.Errorf("byte %d: corrupted record %+v accepted", i, r)
			}
		}
	}
}

func TestWALFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "group.wal")
	store, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(store)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, 1, 1, "a")
	mustAppend(t, w, 1, 2, "b")
	if err := w.Snapshot(1, 2, []byte("st")); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, 1, 3, "c")
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	re, err := OpenWAL(store2)
	if err != nil {
		t.Fatal(err)
	}
	if _, seq, state, ok := re.LastSnapshot(); !ok || seq != 2 || string(state) != "st" {
		t.Errorf("snapshot = %d %q ok=%v", seq, state, ok)
	}
	recs := re.Records()
	if len(recs) != 1 || recs[0].Seq != 3 || string(recs[0].Payload) != "c" {
		t.Errorf("records = %+v", recs)
	}
}

func TestWALEmpty(t *testing.T) {
	w, err := OpenWAL(NewMemStore(nil))
	if err != nil {
		t.Fatal(err)
	}
	if e, s := w.Last(); e != 0 || s != 0 {
		t.Errorf("Last = %d/%d", e, s)
	}
	if _, _, _, ok := w.LastSnapshot(); ok {
		t.Error("empty log has a snapshot")
	}
	if recs, err := w.Suffix(0); err != nil || len(recs) != 0 {
		t.Errorf("Suffix(0) = %v, %v", recs, err)
	}
}

func TestWALRecordsAreCopies(t *testing.T) {
	w, _ := OpenWAL(NewMemStore(nil))
	payload := []byte("orig")
	mustAppend(t, w, 1, 1, string(payload))
	recs := w.Records()
	recs[0].Payload[0] = 'X'
	if got := w.Records(); !bytes.Equal(got[0].Payload, []byte("orig")) {
		t.Errorf("caller mutation leaked into the log: %q", got[0].Payload)
	}
}
