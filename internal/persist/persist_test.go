package persist

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bench"
)

func seededKV(t *testing.T, pairs map[string]int64) *bench.KV {
	t.Helper()
	kv := bench.NewKV()
	for k, v := range pairs {
		if _, err := kv.Invoke(context.Background(), "put", []any{k, v}); err != nil {
			t.Fatal(err)
		}
	}
	return kv
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := NewCheckpoint()
	kv1 := seededKV(t, map[string]int64{"a": 1, "b": 2})
	kv2 := seededKV(t, map[string]int64{"x": 9})
	if err := c.Add("services/kv1", kv1); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("services/kv2", kv2); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Names(), []string{"services/kv1", "services/kv2"}) {
		t.Fatalf("names = %v", loaded.Names())
	}
	fresh1, fresh2 := bench.NewKV(), bench.NewKV()
	if err := loaded.RestoreInto("services/kv1", fresh1); err != nil {
		t.Fatal(err)
	}
	if err := loaded.RestoreInto("services/kv2", fresh2); err != nil {
		t.Fatal(err)
	}
	if fresh1.Get("a") != 1 || fresh1.Get("b") != 2 {
		t.Errorf("kv1 restored wrong: a=%d b=%d", fresh1.Get("a"), fresh1.Get("b"))
	}
	if fresh2.Get("x") != 9 {
		t.Errorf("kv2 restored wrong: x=%d", fresh2.Get("x"))
	}
}

func TestCheckpointDeterministic(t *testing.T) {
	build := func() []byte {
		c := NewCheckpoint()
		_ = c.AddRaw("zeta", []byte{1, 2})
		_ = c.AddRaw("alpha", []byte{3})
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Error("identical checkpoints serialized differently")
	}
}

func TestCheckpointErrors(t *testing.T) {
	c := NewCheckpoint()
	if err := c.AddRaw("", nil); !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("empty name = %v", err)
	}
	if err := c.AddRaw("dup", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRaw("dup", []byte{2}); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate = %v", err)
	}
	if err := c.RestoreInto("missing", bench.NewKV()); !errors.Is(err, ErrUnknownEntry) {
		t.Errorf("missing = %v", err)
	}
}

func TestReadCheckpointCorruption(t *testing.T) {
	c := NewCheckpoint()
	kv := seededKV(t, map[string]int64{"k": 5})
	if err := c.Add("svc", kv); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Any single-byte corruption must be detected.
	for i := range good {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0xff
		if _, err := ReadCheckpoint(bytes.NewReader(mut)); err == nil {
			t.Errorf("accepted checkpoint with byte %d corrupted", i)
		}
	}
	// And truncation at every point.
	for i := 0; i < len(good); i++ {
		if _, err := ReadCheckpoint(bytes.NewReader(good[:i])); err == nil {
			t.Errorf("accepted %d-byte prefix", i)
		}
	}
	// Trailing garbage.
	if _, err := ReadCheckpoint(bytes.NewReader(append(append([]byte(nil), good...), 0x00))); err == nil {
		t.Error("accepted trailing garbage")
	}
}

func TestCheckpointEmpty(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewCheckpoint().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Names()) != 0 {
		t.Errorf("names = %v", loaded.Names())
	}
}

func TestCheckpointProperty(t *testing.T) {
	gen := func(names []string, blobs [][]byte) bool {
		c := NewCheckpoint()
		want := map[string][]byte{}
		n := len(names)
		if len(blobs) < n {
			n = len(blobs)
		}
		for i := 0; i < n; i++ {
			if names[i] == "" {
				continue
			}
			if _, dup := want[names[i]]; dup {
				continue
			}
			if err := c.AddRaw(names[i], blobs[i]); err != nil {
				return false
			}
			want[names[i]] = blobs[i]
		}
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			return false
		}
		loaded, err := ReadCheckpoint(&buf)
		if err != nil {
			return false
		}
		if len(loaded.Names()) != len(want) {
			return false
		}
		for name, blob := range want {
			var sink rawSink
			if err := loaded.RestoreInto(name, &sink); err != nil {
				return false
			}
			if !bytes.Equal(sink.data, blob) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// rawSink captures restore bytes verbatim.
type rawSink struct{ data []byte }

func (r *rawSink) Restore(data []byte) error {
	r.data = append([]byte(nil), data...)
	return nil
}
