package naming

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
)

// Mount support: a directory can graft another directory (held as a
// proxy!) under a path prefix, building a federated namespace. Every
// operation on a name below a mount point is delegated through the
// mounted directory's proxy — which may itself be a stub, a replica, or
// anything else its service chose. This is the proxy principle composing
// with itself: the name service's own state contains references.
//
// Mount-aware resolution happens on the Invoke path (which carries a
// context for the delegated calls). The plain Go methods (Lookup, Bind,
// …) remain local-only primitives, and mounts are runtime grafts: they do
// not travel in Snapshot/Restore (a restored directory starts with no
// mounts, like a rebooted Unix host before its fstab runs).

// mountEntry is one graft point.
type mountEntry struct {
	prefix string // no trailing slash
	proxy  core.Proxy
	ref    codec.Ref
}

// delegateTimeout bounds one hop of mount delegation.
const delegateTimeout = 10 * time.Second

// Mount grafts the directory behind proxy under prefix. Existing local
// bindings beneath the prefix become unreachable through Invoke until the
// mount is removed (standard union-mount shadowing).
func (d *Directory) Mount(prefix string, proxy core.Proxy) error {
	prefix = strings.TrimSuffix(prefix, "/")
	if prefix == "" {
		return fmt.Errorf("naming: cannot mount at the root")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, m := range d.mounts {
		if m.prefix == prefix {
			return fmt.Errorf("naming: %q is already a mount point", prefix)
		}
	}
	d.mounts = append(d.mounts, mountEntry{prefix: prefix, proxy: proxy, ref: proxy.Ref()})
	// Longest prefix first, so nested mounts resolve to the deepest graft.
	sort.Slice(d.mounts, func(i, j int) bool {
		return len(d.mounts[i].prefix) > len(d.mounts[j].prefix)
	})
	return nil
}

// Unmount removes a graft point.
func (d *Directory) Unmount(prefix string) error {
	prefix = strings.TrimSuffix(prefix, "/")
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, m := range d.mounts {
		if m.prefix == prefix {
			d.mounts = append(d.mounts[:i], d.mounts[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("naming: %q is not a mount point", prefix)
}

// Mounts lists the current mount prefixes, longest first.
func (d *Directory) Mounts() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.mounts))
	for i, m := range d.mounts {
		out[i] = m.prefix
	}
	return out
}

// mountFor finds the graft covering name, returning the mount and the
// remainder of the name below it ("" if name names the mount point).
func (d *Directory) mountFor(name string) (mountEntry, string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, m := range d.mounts {
		if name == m.prefix {
			return m, "", true
		}
		if strings.HasPrefix(name, m.prefix+"/") {
			return m, name[len(m.prefix)+1:], true
		}
	}
	return mountEntry{}, "", false
}

// delegate forwards one directory operation below a mount point.
func delegate(ctx context.Context, m mountEntry, method string, args ...any) ([]any, error) {
	dctx, cancel := context.WithTimeout(ctx, delegateTimeout)
	defer cancel()
	res, err := m.proxy.Invoke(dctx, method, args...)
	if err != nil {
		return nil, fmt.Errorf("naming: mount %q: %w", m.prefix, err)
	}
	return res, nil
}

// invokeMounted routes one Invoke-path operation, delegating when the name
// lies below a mount. Returns handled=false when the operation is local.
func (d *Directory) invokeMounted(ctx context.Context, method string, args []any) (results []any, handled bool, err error) {
	switch method {
	case "bind", "rebind", "lookup", "unbind":
		if len(args) == 0 {
			return nil, false, nil
		}
		name, ok := args[0].(string)
		if !ok {
			return nil, false, nil
		}
		m, rest, mounted := d.mountFor(name)
		if !mounted {
			return nil, false, nil
		}
		if rest == "" {
			return nil, true, core.Errorf(core.CodeBadArgs, method, "%q is a mount point", name)
		}
		rewritten := append([]any{rest}, args[1:]...)
		res, err := delegate(ctx, m, method, rewritten...)
		return res, true, err
	case "list":
		// Lists merge: local names plus every mount's contribution, with
		// the mount prefix re-applied. Malformed arguments fall through to
		// the local path's validation.
		if len(args) != 1 {
			return nil, false, nil
		}
		prefix, ok := args[0].(string)
		if !ok {
			return nil, false, nil
		}
		names, err := d.listMounted(ctx, prefix)
		if err != nil {
			return nil, true, err
		}
		out := make([]any, len(names))
		for i, n := range names {
			out[i] = n
		}
		return []any{out}, true, nil
	case "mount":
		if len(args) != 2 {
			return nil, true, core.BadArgs(method, "want (prefix, ref)")
		}
		prefix, _ := args[0].(string)
		p, ok := args[1].(core.Proxy)
		if !ok {
			return nil, true, core.BadArgs(method, fmt.Sprintf("ref must be a reference, got %T", args[1]))
		}
		if err := d.Mount(prefix, p); err != nil {
			return nil, true, core.Errorf(core.CodeApp, method, "%s", err)
		}
		return nil, true, nil
	case "unmount":
		if len(args) != 1 {
			return nil, true, core.BadArgs(method, "want (prefix)")
		}
		prefix, _ := args[0].(string)
		if err := d.Unmount(prefix); err != nil {
			return nil, true, core.Errorf(core.CodeApp, method, "%s", err)
		}
		return nil, true, nil
	default:
		return nil, false, nil
	}
}

// listMounted merges the local listing with delegated listings from every
// mount whose subtree intersects the requested prefix.
func (d *Directory) listMounted(ctx context.Context, prefix string) ([]string, error) {
	names := d.List(prefix)

	d.mu.Lock()
	mounts := append([]mountEntry(nil), d.mounts...)
	d.mu.Unlock()

	for _, m := range mounts {
		var sub string
		switch {
		case prefix == "" || m.prefix == prefix || strings.HasPrefix(m.prefix, prefix+"/"):
			sub = "" // the whole mounted tree is within the asked prefix
		case strings.HasPrefix(prefix, m.prefix+"/"):
			sub = prefix[len(m.prefix)+1:] // asking inside the mount
		default:
			continue
		}
		res, err := delegate(ctx, m, "list", sub)
		if err != nil {
			return nil, err
		}
		if len(res) != 1 {
			return nil, fmt.Errorf("naming: mount %q: list returned %d values", m.prefix, len(res))
		}
		raw, ok := res[0].([]any)
		if !ok {
			return nil, fmt.Errorf("naming: mount %q: list returned %T", m.prefix, res[0])
		}
		for _, v := range raw {
			if s, ok := v.(string); ok {
				names = append(names, m.prefix+"/"+s)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}
