package naming

import (
	"context"
	"sync"
	"time"

	"repro/internal/codec"
)

// CacheOption configures a Cache.
type CacheOption func(*Cache)

// WithCacheTTL bounds how long a cached resolution is trusted (default 1s).
func WithCacheTTL(ttl time.Duration) CacheOption {
	return func(c *Cache) {
		if ttl > 0 {
			c.ttl = ttl
		}
	}
}

// WithCacheClock substitutes the time source (tests).
func WithCacheClock(now func() time.Time) CacheOption {
	return func(c *Cache) { c.now = now }
}

// CacheStats counts cache behaviour.
type CacheStats struct {
	Hits   uint64
	Misses uint64
}

// Cache is a client-side name-resolution cache: the piece of smartness a
// naming proxy carries. Hits avoid a round trip to the directory entirely;
// entries expire on a TTL and are dropped eagerly on Invalidate (callers
// invalidate when a cached reference turns out to be dead).
type Cache struct {
	client *Client
	ttl    time.Duration
	now    func() time.Time

	mu      sync.Mutex
	entries map[string]cachedRef
	stats   CacheStats
}

type cachedRef struct {
	ref     codec.Ref
	expires time.Time
}

// NewCache wraps a directory client with resolution caching.
func NewCache(client *Client, opts ...CacheOption) *Cache {
	c := &Cache{
		client:  client,
		ttl:     time.Second,
		now:     time.Now,
		entries: make(map[string]cachedRef),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Lookup resolves a name, serving from cache when fresh.
func (c *Cache) Lookup(ctx context.Context, name string) (codec.Ref, error) {
	c.mu.Lock()
	if e, ok := c.entries[name]; ok && c.now().Before(e.expires) {
		c.stats.Hits++
		c.mu.Unlock()
		return e.ref, nil
	}
	c.stats.Misses++
	c.mu.Unlock()

	ref, err := c.client.Lookup(ctx, name)
	if err != nil {
		return codec.Ref{}, err
	}
	c.mu.Lock()
	c.entries[name] = cachedRef{ref: ref, expires: c.now().Add(c.ttl)}
	c.mu.Unlock()
	return ref, nil
}

// Invalidate drops one cached resolution (or all, with name "").
func (c *Cache) Invalidate(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if name == "" {
		c.entries = make(map[string]cachedRef)
		return
	}
	delete(c.entries, name)
}

// Stats returns hit/miss counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
