package naming

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	d := NewDirectory()
	d.Bind("a", refFor(1), 0)
	d.Bind("b/c", refFor(2), 0)
	d.Bind("b/d", refFor(3), time.Hour)

	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	d2 := NewDirectory()
	if err := d2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 3 {
		t.Fatalf("restored Len = %d", d2.Len())
	}
	got, ok := d2.Lookup("b/c")
	if !ok || got.Target.Object != 2 {
		t.Errorf("Lookup(b/c) = %v, %v", got, ok)
	}
	// The TTL'd entry carried its absolute expiry.
	if _, ok := d2.Lookup("b/d"); !ok {
		t.Error("TTL entry lost in restore")
	}
}

func TestSnapshotSkipsExpired(t *testing.T) {
	now := time.Unix(1000, 0)
	d := NewDirectory(WithClock(func() time.Time { return now }))
	d.Bind("live", refFor(1), 0)
	d.Bind("dead", refFor(2), time.Second)
	now = now.Add(time.Minute)

	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	d2 := NewDirectory()
	if err := d2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 1 {
		t.Errorf("restored Len = %d, want 1 (expired entry must not travel)", d2.Len())
	}
}

func TestRestoreReplacesContents(t *testing.T) {
	d := NewDirectory()
	d.Bind("old", refFor(1), 0)
	snap, err := NewDirectory().Snapshot() // empty snapshot
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Errorf("Len after restoring empty snapshot = %d", d.Len())
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	d := NewDirectory()
	for _, bad := range [][]byte{nil, {0xff}, {0x01, 0x02, 0x03}} {
		if err := d.Restore(bad); err == nil {
			t.Errorf("Restore(%x) succeeded", bad)
		}
	}
}

func TestSnapshotRestoreProperty(t *testing.T) {
	// Any set of bindings survives a snapshot/restore cycle intact.
	gen := func(names []string, objs []uint64) bool {
		d := NewDirectory()
		n := len(names)
		if len(objs) < n {
			n = len(objs)
		}
		want := make(map[string]uint64, n)
		for i := 0; i < n; i++ {
			if names[i] == "" {
				continue
			}
			d.Bind(names[i], refFor(objs[i]), 0)
			want[names[i]] = objs[i]
		}
		snap, err := d.Snapshot()
		if err != nil {
			return false
		}
		d2 := NewDirectory()
		if err := d2.Restore(snap); err != nil {
			return false
		}
		if d2.Len() != len(want) {
			return false
		}
		for name, obj := range want {
			got, ok := d2.Lookup(name)
			if !ok || uint64(got.Target.Object) != obj {
				return false
			}
		}
		return true
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
