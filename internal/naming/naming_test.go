package naming

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/wire"
)

func refFor(obj uint64) codec.Ref {
	return codec.Ref{
		Target: wire.ObjAddr{Addr: wire.Addr{Node: 9, Context: 1}, Object: wire.ObjectID(obj)},
		Type:   "T",
	}
}

func TestDirectoryBindLookup(t *testing.T) {
	d := NewDirectory()
	d.Bind("services/a", refFor(1), 0)
	got, ok := d.Lookup("services/a")
	if !ok || got.Target.Object != 1 {
		t.Fatalf("Lookup = %v, %v", got, ok)
	}
	if _, ok := d.Lookup("services/b"); ok {
		t.Error("Lookup found unbound name")
	}
	d.Unbind("services/a")
	if _, ok := d.Lookup("services/a"); ok {
		t.Error("Lookup found unbound name after Unbind")
	}
}

func TestDirectoryRebind(t *testing.T) {
	d := NewDirectory()
	if err := d.Rebind("x", refFor(1), 0); err == nil {
		t.Error("Rebind of unbound name succeeded")
	}
	d.Bind("x", refFor(1), 0)
	if err := d.Rebind("x", refFor(2), 0); err != nil {
		t.Fatal(err)
	}
	got, _ := d.Lookup("x")
	if got.Target.Object != 2 {
		t.Errorf("after rebind object = %d", got.Target.Object)
	}
}

func TestDirectoryTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	d := NewDirectory(WithClock(func() time.Time { return now }))
	d.Bind("ephemeral", refFor(1), time.Second)
	d.Bind("forever", refFor(2), 0)
	if _, ok := d.Lookup("ephemeral"); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(2 * time.Second)
	if _, ok := d.Lookup("ephemeral"); ok {
		t.Error("expired entry still resolvable")
	}
	if _, ok := d.Lookup("forever"); !ok {
		t.Error("permanent entry expired")
	}
	if got := d.Len(); got != 1 {
		t.Errorf("Len = %d, want 1", got)
	}
}

func TestDirectoryList(t *testing.T) {
	d := NewDirectory()
	for _, name := range []string{"a/b", "a/b/c", "a/bc", "z"} {
		d.Bind(name, refFor(1), 0)
	}
	tests := []struct {
		prefix string
		want   []string
	}{
		{"", []string{"a/b", "a/b/c", "a/bc", "z"}},
		{"a/b", []string{"a/b", "a/b/c"}},
		{"a/bc", []string{"a/bc"}},
		{"nope", nil},
	}
	for _, tt := range tests {
		if got := d.List(tt.prefix); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("List(%q) = %v, want %v", tt.prefix, got, tt.want)
		}
	}
}

func TestMatchesPrefixProperty(t *testing.T) {
	// A name always matches itself and the empty prefix.
	gen := func(name string) bool {
		return matchesPrefix(name, "") && matchesPrefix(name, name)
	}
	if err := quick.Check(gen, nil); err != nil {
		t.Error(err)
	}
	// Segment semantics: child matches, sibling with shared prefix doesn't.
	gen2 := func(a, b string) bool {
		if a == "" || b == "" {
			return true
		}
		return matchesPrefix(a+"/"+b, a)
	}
	if err := quick.Check(gen2, nil); err != nil {
		t.Error(err)
	}
}

func TestDirectoryConcurrent(t *testing.T) {
	d := NewDirectory()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			for j := 0; j < 200; j++ {
				d.Bind(name, refFor(uint64(j)), 0)
				d.Lookup(name)
				d.List("")
			}
		}(i)
	}
	wg.Wait()
	if d.Len() != 8 {
		t.Errorf("Len = %d", d.Len())
	}
}

// remoteRig exports a directory from one runtime and returns a typed
// client built on a second runtime's proxy for it.
func remoteRig(t *testing.T) (*Directory, *Client, *core.Runtime) {
	t.Helper()
	net := netsim.New()
	t.Cleanup(net.Close)
	var runtimes []*core.Runtime
	for i := 1; i <= 2; i++ {
		ep, err := net.Attach(wire.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		node := kernel.NewNode(ep)
		t.Cleanup(func() { node.Close() })
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		runtimes = append(runtimes, core.NewRuntime(ktx))
	}
	dir := NewDirectory()
	ref, err := runtimes[0].Export(dir, TypeName)
	if err != nil {
		t.Fatal(err)
	}
	p, err := runtimes[1].Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	return dir, NewClient(p), runtimes[1]
}

func TestRemoteDirectory(t *testing.T) {
	dir, client, _ := remoteRig(t)
	ctx := context.Background()

	want := refFor(7)
	if err := client.Bind(ctx, "svc/x", want, 0); err != nil {
		t.Fatal(err)
	}
	got, err := client.Lookup(ctx, "svc/x")
	if err != nil {
		t.Fatal(err)
	}
	if got.Target != want.Target || got.Type != want.Type {
		t.Errorf("Lookup = %+v, want %+v", got, want)
	}
	names, err := client.List(ctx, "svc")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"svc/x"}) {
		t.Errorf("List = %v", names)
	}
	if err := client.Unbind(ctx, "svc/x"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Lookup(ctx, "svc/x"); err == nil {
		t.Error("Lookup after Unbind succeeded")
	}
	if dir.Len() != 0 {
		t.Errorf("server directory Len = %d", dir.Len())
	}
}

func TestRemoteLookupError(t *testing.T) {
	_, client, _ := remoteRig(t)
	_, err := client.Lookup(context.Background(), "missing")
	var ie *core.InvokeError
	if !errors.As(err, &ie) || ie.Code != core.CodeApp {
		t.Errorf("err = %v, want app-level InvokeError", err)
	}
}

func TestRemoteBadArgs(t *testing.T) {
	_, client, _ := remoteRig(t)
	// Drive the raw proxy with a malformed bind.
	_, err := client.Proxy().Invoke(context.Background(), "bind", "only-name")
	var ie *core.InvokeError
	if !errors.As(err, &ie) || ie.Code != core.CodeBadArgs {
		t.Errorf("err = %v", err)
	}
	_, err = client.Proxy().Invoke(context.Background(), "zorp")
	if !errors.As(err, &ie) || ie.Code != core.CodeNoSuchMethod {
		t.Errorf("err = %v", err)
	}
}

func TestResolveReturnsLiveProxy(t *testing.T) {
	// Bind a real service in the directory, resolve it by name, invoke it.
	_, client, rtClient := remoteRig(t)
	ctx := context.Background()

	// Export an extra service from the client runtime itself and bind it.
	echo := core.ServiceFunc(func(ctx context.Context, method string, args []any) ([]any, error) {
		return []any{"echo:" + method}, nil
	})
	ref, err := rtClient.Export(echo, "Echo")
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Bind(ctx, "svc/echo", ref, 0); err != nil {
		t.Fatal(err)
	}
	p, err := client.Resolve(ctx, rtClient, "svc/echo")
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Invoke(ctx, "ping")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "echo:ping" {
		t.Errorf("res = %v", res)
	}
}

func TestCacheHitsAvoidDirectory(t *testing.T) {
	now := time.Unix(0, 0)
	dir, client, _ := remoteRig(t)
	cache := NewCache(client, WithCacheTTL(time.Minute), WithCacheClock(func() time.Time { return now }))
	ctx := context.Background()
	dir.Bind("n", refFor(3), 0)

	for i := 0; i < 10; i++ {
		if _, err := cache.Lookup(ctx, "n"); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 9 {
		t.Errorf("stats = %+v, want 1 miss 9 hits", st)
	}

	// After expiry the next lookup misses again.
	now = now.Add(2 * time.Minute)
	if _, err := cache.Lookup(ctx, "n"); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != 2 {
		t.Errorf("post-expiry stats = %+v", st)
	}
}

func TestCacheServesStaleUntilInvalidated(t *testing.T) {
	dir, client, _ := remoteRig(t)
	cache := NewCache(client, WithCacheTTL(time.Hour))
	ctx := context.Background()
	dir.Bind("n", refFor(1), 0)
	if _, err := cache.Lookup(ctx, "n"); err != nil {
		t.Fatal(err)
	}
	// The binding moves; the cache still answers with the old target.
	dir.Bind("n", refFor(2), 0)
	got, err := cache.Lookup(ctx, "n")
	if err != nil {
		t.Fatal(err)
	}
	if got.Target.Object != 1 {
		t.Errorf("cache returned %d, expected stale 1", got.Target.Object)
	}
	cache.Invalidate("n")
	got, err = cache.Lookup(ctx, "n")
	if err != nil {
		t.Fatal(err)
	}
	if got.Target.Object != 2 {
		t.Errorf("after invalidate got %d, want 2", got.Target.Object)
	}
	cache.Invalidate("") // full flush must not panic and must empty stats path
	if _, err := cache.Lookup(ctx, "n"); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDirectoryLookupLocal(b *testing.B) {
	d := NewDirectory()
	d.Bind("a/b/c", refFor(1), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := d.Lookup("a/b/c"); !ok {
			b.Fatal("missing")
		}
	}
}
