package naming

import (
	"context"
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
)

// Client is the typed wrapper around a directory proxy — the equivalent of
// generated stub code in a classical RPC system, written once by hand here
// because invocation is dynamic.
type Client struct {
	p core.Proxy
}

// ClientOption configures a Client. None are defined yet; the parameter
// exists so future knobs (default TTLs, resolve caches) never break call
// sites — see doc.go, constructor options.
type ClientOption func(*Client)

// NewClient wraps a proxy for a Directory.
func NewClient(p core.Proxy, opts ...ClientOption) *Client {
	c := &Client{p: p}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Proxy exposes the wrapped proxy.
func (c *Client) Proxy() core.Proxy { return c.p }

// Bind binds name to ref with an optional TTL (0 = forever).
func (c *Client) Bind(ctx context.Context, name string, ref codec.Ref, ttl time.Duration) error {
	_, err := c.p.Invoke(ctx, "bind", name, ref, int64(ttl))
	return err
}

// Rebind replaces an existing binding.
func (c *Client) Rebind(ctx context.Context, name string, ref codec.Ref, ttl time.Duration) error {
	_, err := c.p.Invoke(ctx, "rebind", name, ref, int64(ttl))
	return err
}

// Lookup resolves name to a reference.
func (c *Client) Lookup(ctx context.Context, name string) (codec.Ref, error) {
	res, err := c.p.Invoke(ctx, "lookup", name)
	if err != nil {
		return codec.Ref{}, err
	}
	if len(res) != 1 {
		return codec.Ref{}, fmt.Errorf("naming: lookup returned %d values", len(res))
	}
	switch r := res[0].(type) {
	case codec.Ref:
		return r, nil
	case core.Proxy:
		// The runtime installed a proxy for the resolved reference; its
		// underlying ref is what the caller asked for.
		return r.Ref(), nil
	default:
		return codec.Ref{}, fmt.Errorf("naming: lookup returned %T", res[0])
	}
}

// Resolve is Lookup followed by Import on the caller's runtime: the one
// call that takes a client from a name to a live proxy. A resolved stub
// learns to re-resolve itself: when every binding it knows has failed, it
// looks the name up again (the service may have re-registered elsewhere
// after a crash) — failover through naming, invisible to the caller.
func (c *Client) Resolve(ctx context.Context, rt *core.Runtime, name string) (core.Proxy, error) {
	ref, err := c.Lookup(ctx, name)
	if err != nil {
		return nil, err
	}
	p, err := rt.Import(ref)
	if err != nil {
		return nil, err
	}
	if s, ok := p.(*core.Stub); ok {
		s.SetRebinder(func(rctx context.Context) (codec.Ref, bool) {
			fresh, err := c.Lookup(rctx, name)
			if err != nil {
				return codec.Ref{}, false
			}
			return fresh, true
		})
	}
	return p, nil
}

// Unbind removes a binding.
func (c *Client) Unbind(ctx context.Context, name string) error {
	_, err := c.p.Invoke(ctx, "unbind", name)
	return err
}

// List returns the names bound under prefix.
func (c *Client) List(ctx context.Context, prefix string) ([]string, error) {
	res, err := c.p.Invoke(ctx, "list", prefix)
	if err != nil {
		return nil, err
	}
	if len(res) != 1 {
		return nil, fmt.Errorf("naming: list returned %d values", len(res))
	}
	raw, ok := res[0].([]any)
	if !ok {
		return nil, fmt.Errorf("naming: list returned %T", res[0])
	}
	names := make([]string, 0, len(raw))
	for _, v := range raw {
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("naming: list element is %T", v)
		}
		names = append(names, s)
	}
	return names, nil
}
