// Package naming implements the name service: a hierarchical directory
// mapping path-shaped names to object references. The directory is itself
// an ordinary core.Service — clients reach it through a proxy like any
// other object, which is the proxy principle's own bootstrap story: the
// only well-known thing in the system is the name service's reference.
//
// The package also provides a typed client wrapper (Client) and a
// client-side resolution cache (Cache) with TTL-based expiry, the pattern
// a smart naming proxy would embed.
package naming

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
)

// TypeName is the proxy type the directory exports under.
const TypeName = "naming.Directory"

// WellKnownObject is the conventional object id at which deployments
// register their root directory (see cmd/proxyd).
const WellKnownObject = 1

// Entry is one binding in the directory.
type Entry struct {
	Name    string
	Ref     codec.Ref
	Expires time.Time // zero = never
}

// DirectoryOption configures a Directory.
type DirectoryOption func(*Directory)

// WithClock substitutes the time source (tests).
func WithClock(now func() time.Time) DirectoryOption {
	return func(d *Directory) { d.now = now }
}

// Directory is the name service implementation. It is safe for concurrent
// use and implements core.Service with the methods:
//
//	bind(name string, ref Ref, ttlNanos int64) -> ()
//	lookup(name string) -> (ref Ref)
//	unbind(name string) -> ()
//	list(prefix string) -> (names []string)
//	rebind(name string, ref Ref) -> ()        // like bind but must exist
type Directory struct {
	now func() time.Time

	mu      sync.Mutex
	entries map[string]Entry
	mounts  []mountEntry // longest prefix first; see mount.go
}

// NewDirectory creates an empty directory.
func NewDirectory(opts ...DirectoryOption) *Directory {
	d := &Directory{
		now:     time.Now,
		entries: make(map[string]Entry),
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Invoke implements core.Service. Names below a mount point are delegated
// through the mounted directory's proxy (see mount.go); the "mount" and
// "unmount" methods manage graft points.
func (d *Directory) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	if res, handled, err := d.invokeMounted(ctx, method, args); handled {
		return res, err
	}
	switch method {
	case "bind":
		name, ref, ttl, err := bindArgs(method, args)
		if err != nil {
			return nil, err
		}
		d.Bind(name, ref, ttl)
		return nil, nil
	case "rebind":
		name, ref, ttl, err := bindArgs(method, args)
		if err != nil {
			return nil, err
		}
		if err := d.Rebind(name, ref, ttl); err != nil {
			return nil, core.Errorf(core.CodeApp, method, "%s", err)
		}
		return nil, nil
	case "lookup":
		name, err := oneString(method, args)
		if err != nil {
			return nil, err
		}
		ref, ok := d.Lookup(name)
		if !ok {
			return nil, core.Errorf(core.CodeApp, method, "name not bound: %s", name)
		}
		return []any{ref}, nil
	case "unbind":
		name, err := oneString(method, args)
		if err != nil {
			return nil, err
		}
		d.Unbind(name)
		return nil, nil
	case "list":
		prefix, err := oneString(method, args)
		if err != nil {
			return nil, err
		}
		names := d.List(prefix)
		out := make([]any, len(names))
		for i, n := range names {
			out[i] = n
		}
		return []any{out}, nil
	default:
		return nil, core.NoSuchMethod(method)
	}
}

func bindArgs(method string, args []any) (string, codec.Ref, time.Duration, error) {
	if len(args) != 3 {
		return "", codec.Ref{}, 0, core.BadArgs(method, "want (name, ref, ttlNanos)")
	}
	name, ok := args[0].(string)
	if !ok || name == "" {
		return "", codec.Ref{}, 0, core.BadArgs(method, "name must be a non-empty string")
	}
	var ref codec.Ref
	switch r := args[1].(type) {
	case codec.Ref:
		ref = r
	case core.Proxy:
		// The argument arrived as an installed proxy (normal when a client
		// passes a proxy value); store its underlying reference.
		ref = r.Ref()
	default:
		return "", codec.Ref{}, 0, core.BadArgs(method, fmt.Sprintf("ref must be a reference, got %T", args[1]))
	}
	ttl, ok := args[2].(int64)
	if !ok || ttl < 0 {
		return "", codec.Ref{}, 0, core.BadArgs(method, "ttlNanos must be a non-negative int64")
	}
	return name, ref, time.Duration(ttl), nil
}

func oneString(method string, args []any) (string, error) {
	if len(args) != 1 {
		return "", core.BadArgs(method, "want 1 string arg")
	}
	s, ok := args[0].(string)
	if !ok {
		return "", core.BadArgs(method, fmt.Sprintf("want string, got %T", args[0]))
	}
	return s, nil
}

// Bind creates or replaces a binding. ttl of zero means no expiry.
func (d *Directory) Bind(name string, ref codec.Ref, ttl time.Duration) {
	e := Entry{Name: name, Ref: ref}
	if ttl > 0 {
		e.Expires = d.now().Add(ttl)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.entries[name] = e
}

// Rebind replaces an existing binding; it fails if the name is not bound
// (migration uses this so a typo cannot silently create a new name).
func (d *Directory) Rebind(name string, ref codec.Ref, ttl time.Duration) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	old, ok := d.entries[name]
	if !ok || d.expired(old) {
		return fmt.Errorf("naming: rebind of unbound name %q", name)
	}
	e := Entry{Name: name, Ref: ref}
	if ttl > 0 {
		e.Expires = d.now().Add(ttl)
	}
	d.entries[name] = e
	return nil
}

// Lookup resolves a name, honouring expiry.
func (d *Directory) Lookup(name string) (codec.Ref, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[name]
	if !ok || d.expired(e) {
		if ok {
			delete(d.entries, name)
		}
		return codec.Ref{}, false
	}
	return e.Ref, true
}

// Unbind removes a binding (idempotent).
func (d *Directory) Unbind(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.entries, name)
}

// List returns the bound names under a prefix, sorted. A prefix of ""
// lists everything; otherwise matching is by path segment ("a/b" matches
// "a/b" and "a/b/c" but not "a/bc").
func (d *Directory) List(prefix string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for name, e := range d.entries {
		if d.expired(e) {
			continue
		}
		if matchesPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Len reports the number of live bindings.
func (d *Directory) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, e := range d.entries {
		if !d.expired(e) {
			n++
		}
	}
	return n
}

// Snapshot serializes the directory's live bindings, making the directory
// itself migratable and replicable (it satisfies migrate.Migratable and
// replica.StateMachine). Expiry times are carried as absolute instants.
func (d *Directory) Snapshot() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]any, 0, len(d.entries))
	for _, e := range d.entries {
		if d.expired(e) {
			continue
		}
		var exp int64
		if !e.Expires.IsZero() {
			exp = e.Expires.UnixNano()
		}
		out = append(out, []any{e.Name, e.Ref, exp})
	}
	return codec.Append(nil, out)
}

// Restore replaces the directory's contents with a Snapshot's.
func (d *Directory) Restore(data []byte) error {
	vals, err := codec.DecodeArgs(data)
	if err != nil {
		return fmt.Errorf("naming: restore: %w", err)
	}
	entries := make(map[string]Entry, len(vals))
	for _, v := range vals {
		tuple, ok := v.([]any)
		if !ok || len(tuple) != 3 {
			return fmt.Errorf("naming: restore: malformed entry %T", v)
		}
		name, _ := tuple[0].(string)
		ref, _ := tuple[1].(codec.Ref)
		exp, _ := tuple[2].(int64)
		e := Entry{Name: name, Ref: ref}
		if exp != 0 {
			e.Expires = time.Unix(0, exp)
		}
		entries[name] = e
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.entries = entries
	return nil
}

func (d *Directory) expired(e Entry) bool {
	return !e.Expires.IsZero() && d.now().After(e.Expires)
}

func matchesPrefix(name, prefix string) bool {
	if prefix == "" {
		return true
	}
	if !strings.HasPrefix(name, prefix) {
		return false
	}
	return len(name) == len(prefix) || name[len(prefix)] == '/'
}
