package naming

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// mountWorld: a root directory on node 1, a department directory on node
// 2, a client on node 3; the department is mounted at "dept" in the root.
type mountWorld struct {
	root, dept *Directory
	client     *Client
	clientRT   *core.Runtime
}

func newMountWorld(t *testing.T) *mountWorld {
	t.Helper()
	net := netsim.New()
	t.Cleanup(net.Close)
	mk := func(id wire.NodeID) *core.Runtime {
		ep, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		node := kernel.NewNode(ep)
		t.Cleanup(func() { node.Close() })
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		return core.NewRuntime(ktx)
	}
	rtRoot, rtDept, rtClient := mk(1), mk(2), mk(3)

	w := &mountWorld{root: NewDirectory(), dept: NewDirectory()}
	rootRef, err := rtRoot.Export(w.root, TypeName)
	if err != nil {
		t.Fatal(err)
	}
	deptRef, err := rtDept.Export(w.dept, TypeName)
	if err != nil {
		t.Fatal(err)
	}
	// The root mounts the department directory through a proxy of its own.
	deptProxy, err := rtRoot.Import(deptRef)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.root.Mount("dept", deptProxy); err != nil {
		t.Fatal(err)
	}
	rootProxy, err := rtClient.Import(rootRef)
	if err != nil {
		t.Fatal(err)
	}
	w.client = NewClient(rootProxy)
	w.clientRT = rtClient
	return w
}

func TestMountDelegatesBindAndLookup(t *testing.T) {
	w := newMountWorld(t)
	ctx := context.Background()

	want := refFor(9)
	if err := w.client.Bind(ctx, "dept/printers/laser", want, 0); err != nil {
		t.Fatal(err)
	}
	// The binding landed in the department directory, not the root.
	if _, ok := w.dept.Lookup("printers/laser"); !ok {
		t.Error("binding did not reach the mounted directory")
	}
	if _, ok := w.root.Lookup("dept/printers/laser"); ok {
		t.Error("binding leaked into the root's local entries")
	}
	got, err := w.client.Lookup(ctx, "dept/printers/laser")
	if err != nil {
		t.Fatal(err)
	}
	if got.Target != want.Target {
		t.Errorf("lookup = %v, want %v", got.Target, want.Target)
	}
	// Unbind through the mount.
	if err := w.client.Unbind(ctx, "dept/printers/laser"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.client.Lookup(ctx, "dept/printers/laser"); err == nil {
		t.Error("lookup after unbind succeeded")
	}
}

func TestMountListMerges(t *testing.T) {
	w := newMountWorld(t)
	ctx := context.Background()
	w.root.Bind("local/svc", refFor(1), 0)
	w.dept.Bind("room/a", refFor(2), 0)
	w.dept.Bind("room/b", refFor(3), 0)

	names, err := w.client.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"dept/room/a", "dept/room/b", "local/svc"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("List = %v, want %v", names, want)
	}
	// Listing inside the mount.
	names, err = w.client.List(ctx, "dept/room")
	if err != nil {
		t.Fatal(err)
	}
	want = []string{"dept/room/a", "dept/room/b"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("List(dept/room) = %v, want %v", names, want)
	}
	// Listing elsewhere excludes the mount.
	names, err = w.client.List(ctx, "local")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"local/svc"}) {
		t.Errorf("List(local) = %v", names)
	}
}

func TestMountPointItselfRejected(t *testing.T) {
	w := newMountWorld(t)
	err := w.client.Bind(context.Background(), "dept", refFor(1), 0)
	var ie *core.InvokeError
	if !errors.As(err, &ie) || ie.Code != core.CodeBadArgs {
		t.Errorf("bind at mount point = %v", err)
	}
}

func TestMountManagementOverWire(t *testing.T) {
	// mount/unmount are themselves invocable: a remote admin grafts a new
	// directory by passing its reference.
	w := newMountWorld(t)
	ctx := context.Background()
	extra := NewDirectory()
	extra.Bind("x", refFor(5), 0)
	// Export the extra directory from the client runtime itself.
	extraRef, err := w.clientRT.Export(extra, TypeName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.client.Proxy().Invoke(ctx, "mount", "extra", extraRef); err != nil {
		t.Fatal(err)
	}
	got, err := w.client.Lookup(ctx, "extra/x")
	if err != nil {
		t.Fatal(err)
	}
	if got.Target.Object != 5 {
		t.Errorf("lookup through remote-managed mount = %v", got)
	}
	if _, err := w.client.Proxy().Invoke(ctx, "unmount", "extra"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.client.Lookup(ctx, "extra/x"); err == nil {
		t.Error("lookup after unmount succeeded")
	}
	if _, err := w.client.Proxy().Invoke(ctx, "unmount", "extra"); err == nil {
		t.Error("double unmount succeeded")
	}
}

func TestNestedMountsLongestPrefixWins(t *testing.T) {
	w := newMountWorld(t)
	inner := NewDirectory()
	inner.Bind("leaf", refFor(7), 0)
	// Mount inner beneath the department's own prefix in the ROOT: the
	// longer prefix must win over the "dept" mount.
	innerProxy := localProxy(t, inner)
	if err := w.root.Mount("dept/inner", innerProxy); err != nil {
		t.Fatal(err)
	}
	got, err := w.client.Lookup(context.Background(), "dept/inner/leaf")
	if err != nil {
		t.Fatal(err)
	}
	if got.Target.Object != 7 {
		t.Errorf("nested mount lookup = %v", got)
	}
	// The shorter mount still serves its subtree.
	w.dept.Bind("other", refFor(8), 0)
	got, err = w.client.Lookup(context.Background(), "dept/other")
	if err != nil {
		t.Fatal(err)
	}
	if got.Target.Object != 8 {
		t.Errorf("outer mount lookup = %v", got)
	}
}

func TestMountValidation(t *testing.T) {
	d := NewDirectory()
	p := localProxy(t, NewDirectory())
	if err := d.Mount("", p); err == nil {
		t.Error("root mount accepted")
	}
	if err := d.Mount("a", p); err != nil {
		t.Fatal(err)
	}
	if err := d.Mount("a", p); err == nil {
		t.Error("duplicate mount accepted")
	}
	if got := d.Mounts(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Mounts = %v", got)
	}
	if err := d.Unmount("missing"); err == nil {
		t.Error("unmount of non-mount accepted")
	}
}

// localProxy wraps a service in a single-runtime bypass proxy.
func localProxy(t *testing.T, svc core.Service) core.Proxy {
	t.Helper()
	net := netsim.New()
	t.Cleanup(net.Close)
	ep, err := net.Attach(77)
	if err != nil {
		t.Fatal(err)
	}
	node := kernel.NewNode(ep)
	t.Cleanup(func() { node.Close() })
	ktx, err := node.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	rt := core.NewRuntime(ktx)
	ref, err := rt.Export(svc, TypeName)
	if err != nil {
		t.Fatal(err)
	}
	p, err := rt.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
