package codec

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/wire"
)

func mustAppend(t *testing.T, v any) []byte {
	t.Helper()
	buf, err := Append(nil, v)
	if err != nil {
		t.Fatalf("Append(%v): %v", v, err)
	}
	return buf
}

func roundTrip(t *testing.T, v any) any {
	t.Helper()
	buf := mustAppend(t, v)
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode(%v): %v", v, err)
	}
	if n != len(buf) {
		t.Fatalf("Decode(%v) consumed %d of %d", v, n, len(buf))
	}
	return got
}

func TestScalarRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		in   any
		want any
	}{
		{"nil", nil, nil},
		{"true", true, true},
		{"false", false, false},
		{"int", 42, int64(42)},
		{"negative int", -17, int64(-17)},
		{"int8", int8(-8), int64(-8)},
		{"int64 min", int64(math.MinInt64), int64(math.MinInt64)},
		{"uint", uint(7), uint64(7)},
		{"uint64 max", uint64(math.MaxUint64), uint64(math.MaxUint64)},
		{"float", 3.25, 3.25},
		{"float32", float32(1.5), 1.5},
		{"NaN-free inf", math.Inf(-1), math.Inf(-1)},
		{"string", "héllo", "héllo"},
		{"empty string", "", ""},
		{"bytes", []byte{1, 2, 3}, []byte{1, 2, 3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := roundTrip(t, tt.in)
			if b, ok := tt.want.([]byte); ok {
				if !bytes.Equal(got.([]byte), b) {
					t.Errorf("got %v, want %v", got, tt.want)
				}
				return
			}
			if got != tt.want {
				t.Errorf("got %#v (%T), want %#v (%T)", got, got, tt.want, tt.want)
			}
		})
	}
}

func TestFloatNaN(t *testing.T) {
	got := roundTrip(t, math.NaN())
	if f, ok := got.(float64); !ok || !math.IsNaN(f) {
		t.Errorf("NaN round-trip = %v", got)
	}
}

func TestTimeRoundTrip(t *testing.T) {
	in := time.Date(2026, 7, 5, 12, 30, 0, 123456789, time.UTC)
	got := roundTrip(t, in)
	if !got.(time.Time).Equal(in) {
		t.Errorf("time round-trip = %v, want %v", got, in)
	}
}

func TestListRoundTrip(t *testing.T) {
	in := []any{int64(1), "two", []any{true, nil}, 4.5}
	got := roundTrip(t, in)
	if !reflect.DeepEqual(got, in) {
		t.Errorf("got %#v, want %#v", got, in)
	}
}

func TestMapRoundTrip(t *testing.T) {
	in := map[string]any{"a": int64(1), "b": "two", "nested": map[string]any{"x": false}}
	got := roundTrip(t, in)
	if !reflect.DeepEqual(got, in) {
		t.Errorf("got %#v, want %#v", got, in)
	}
}

func TestMapCanonicalEncoding(t *testing.T) {
	in := map[string]any{"z": int64(1), "a": int64(2), "m": int64(3)}
	first := mustAppend(t, in)
	for i := 0; i < 20; i++ {
		if !bytes.Equal(mustAppend(t, in), first) {
			t.Fatal("map encoding not canonical across iterations")
		}
	}
}

func TestStructRoundTrip(t *testing.T) {
	in := Struct{Name: "Account", Fields: []Field{
		{Name: "Owner", Value: "alice"},
		{Name: "Balance", Value: int64(100)},
	}}
	got := roundTrip(t, in).(*Struct)
	if got.Name != in.Name || len(got.Fields) != 2 {
		t.Fatalf("struct round-trip = %+v", got)
	}
	if v, ok := got.Get("Owner"); !ok || v != "alice" {
		t.Errorf("Get(Owner) = %v, %v", v, ok)
	}
	if _, ok := got.Get("Missing"); ok {
		t.Error("Get(Missing) found a field")
	}
}

func TestRefRoundTrip(t *testing.T) {
	in := Ref{
		Target: wire.ObjAddr{Addr: wire.Addr{Node: 2, Context: 1}, Object: 77},
		Type:   "FileService",
		Hint:   []byte("private-lease-token"),
		Cap:    0xdeadbeefcafe,
	}
	got := roundTrip(t, in).(Ref)
	if got.Target != in.Target || got.Type != in.Type || !bytes.Equal(got.Hint, in.Hint) || got.Cap != in.Cap {
		t.Errorf("ref round-trip = %+v, want %+v", got, in)
	}
}

func TestRefHookSubstitutes(t *testing.T) {
	ref := Ref{Target: wire.ObjAddr{Addr: wire.Addr{Node: 1, Context: 1}, Object: 5}, Type: "T"}
	buf := mustAppend(t, []any{"before", ref, "after"})
	d := Decoder{RefHook: func(r Ref) (any, error) {
		return "proxy:" + r.Type, nil
	}}
	got, _, err := d.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []any{"before", "proxy:T", "after"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %#v, want %#v", got, want)
	}
}

func TestRefHookError(t *testing.T) {
	boom := errors.New("no factory")
	buf := mustAppend(t, Ref{Type: "T"})
	d := Decoder{RefHook: func(Ref) (any, error) { return nil, boom }}
	if _, _, err := d.Decode(buf); !errors.Is(err, boom) {
		t.Errorf("Decode = %v, want wrapped %v", err, boom)
	}
}

func TestRefsWalk(t *testing.T) {
	r1 := Ref{Type: "A", Target: wire.ObjAddr{Object: 1}}
	r2 := Ref{Type: "B", Target: wire.ObjAddr{Object: 2}}
	v := []any{r1, map[string]any{"k": r2}, &Struct{Fields: []Field{{Name: "f", Value: r1}}}}
	refs := Refs(v)
	if len(refs) != 3 {
		t.Fatalf("Refs found %d, want 3", len(refs))
	}
	if refs[0].Type != r1.Type || refs[0].Target != r1.Target {
		t.Errorf("refs[0] = %v", refs[0])
	}
}

func TestEncodeDecodeArgs(t *testing.T) {
	buf, err := EncodeArgs("read", int64(0), int64(4096))
	if err != nil {
		t.Fatal(err)
	}
	args, err := DecodeArgs(buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []any{"read", int64(0), int64(4096)}
	if !reflect.DeepEqual(args, want) {
		t.Errorf("args = %#v, want %#v", args, want)
	}
}

func TestEncodeArgsEmpty(t *testing.T) {
	buf, err := EncodeArgs()
	if err != nil {
		t.Fatal(err)
	}
	args, err := DecodeArgs(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 0 {
		t.Errorf("empty args decoded to %v", args)
	}
}

func TestDecodeArgsTrailing(t *testing.T) {
	buf, _ := EncodeArgs(int64(1))
	buf = append(buf, 0xff)
	if _, err := DecodeArgs(buf); err == nil {
		t.Error("DecodeArgs accepted trailing garbage")
	}
}

func TestUnsupportedType(t *testing.T) {
	type odd struct{ C chan int }
	if _, err := Append(nil, odd{}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("Append(struct) = %v, want ErrUnsupported (use Marshal)", err)
	}
	if _, err := Marshal(odd{}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("Marshal(chan field) = %v, want ErrUnsupported", err)
	}
}

func TestDecodeHostileInput(t *testing.T) {
	tests := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"unknown tag", []byte{0xee}},
		{"truncated string", append([]byte{byte(TagString)}, wire.AppendUvarint(nil, 100)...)},
		{"truncated float", []byte{byte(TagFloat), 1, 2, 3}},
		{"huge list count", append([]byte{byte(TagList)}, wire.AppendUvarint(nil, 1<<40)...)},
		{"huge map count", append([]byte{byte(TagMap)}, wire.AppendUvarint(nil, 1<<40)...)},
		{"list missing elems", append([]byte{byte(TagList)}, 5)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := Decode(tt.in); err == nil {
				t.Errorf("Decode(%x) succeeded", tt.in)
			}
		})
	}
}

func TestDecodeDeepNesting(t *testing.T) {
	// Build input nested beyond MaxDepth: list-of-list-of-...
	buf := []byte{byte(TagNil)}
	for i := 0; i < MaxDepth+10; i++ {
		inner := buf
		buf = append([]byte{byte(TagList)}, wire.AppendUvarint(nil, 1)...)
		buf = append(buf, inner...)
	}
	if _, _, err := Decode(buf); !errors.Is(err, ErrTooDeep) {
		t.Errorf("Decode(deep) = %v, want ErrTooDeep", err)
	}
}

func TestAppendDeepNesting(t *testing.T) {
	v := any(nil)
	for i := 0; i < MaxDepth+10; i++ {
		v = []any{v}
	}
	if _, err := Append(nil, v); !errors.Is(err, ErrTooDeep) {
		t.Errorf("Append(deep) = %v, want ErrTooDeep", err)
	}
}

func TestValueRoundTripProperty(t *testing.T) {
	gen := func(i int64, u uint64, f float64, s string, b []byte, flag bool) bool {
		in := []any{i, u, f, s, b, flag, nil}
		buf, err := Append(nil, in)
		if err != nil {
			return false
		}
		got, n, err := Decode(buf)
		if err != nil || n != len(buf) {
			return false
		}
		out := got.([]any)
		if len(out) != len(in) {
			return false
		}
		// NaN and byte-slice need special comparison.
		if out[0] != i || out[1] != u || out[3] != s || out[5] != flag || out[6] != nil {
			return false
		}
		if g := out[2].(float64); g != f && !(math.IsNaN(g) && math.IsNaN(f)) {
			return false
		}
		gb, ok := out[4].([]byte)
		if b == nil {
			return out[4] == nil || (ok && len(gb) == 0)
		}
		return ok && bytes.Equal(gb, b)
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeArgs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := EncodeArgs("method", int64(i), "payload", true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeArgs(b *testing.B) {
	buf, _ := EncodeArgs("method", int64(1), "payload", true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeArgs(buf); err != nil {
			b.Fatal(err)
		}
	}
}
