package codec

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/wire"
)

type mailbox struct {
	Owner    string
	Messages []message
	Tags     map[string]int64
	Created  time.Time
	Backing  Ref
	Size     uint32
	secret   string `codec:"-"` // unexported: never marshalled
	Skipped  string `codec:"-"`
}

type message struct {
	From string
	Body []byte
	Read bool
}

func TestMarshalUnmarshalStruct(t *testing.T) {
	in := mailbox{
		Owner: "alice",
		Messages: []message{
			{From: "bob", Body: []byte("hi"), Read: true},
			{From: "carol", Body: []byte("yo")},
		},
		Tags:    map[string]int64{"inbox": 2},
		Created: time.Unix(1000, 42).UTC(),
		Backing: Ref{Target: wire.ObjAddr{Addr: wire.Addr{Node: 1, Context: 2}, Object: 3}, Type: "Store"},
		Size:    4096,
		secret:  "hidden",
		Skipped: "also hidden",
	}
	buf, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out mailbox
	if err := Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.Owner != in.Owner || out.Size != in.Size || !out.Created.Equal(in.Created) {
		t.Errorf("scalars: got %+v", out)
	}
	if out.Backing.Target != in.Backing.Target || out.Backing.Type != in.Backing.Type {
		t.Errorf("ref: got %+v, want %+v", out.Backing, in.Backing)
	}
	if len(out.Messages) != 2 || out.Messages[0].From != "bob" ||
		!bytes.Equal(out.Messages[1].Body, []byte("yo")) || !out.Messages[0].Read {
		t.Errorf("messages: got %+v", out.Messages)
	}
	if out.Tags["inbox"] != 2 {
		t.Errorf("tags: got %+v", out.Tags)
	}
	if out.secret != "" || out.Skipped != "" {
		t.Errorf("skipped fields leaked: %q %q", out.secret, out.Skipped)
	}
}

func TestMarshalPointerAndNil(t *testing.T) {
	type holder struct {
		P *message
		Q *message
	}
	in := holder{P: &message{From: "x"}}
	buf, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out holder
	if err := Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.P == nil || out.P.From != "x" {
		t.Errorf("P = %+v", out.P)
	}
	if out.Q != nil {
		t.Errorf("Q = %+v, want nil", out.Q)
	}
}

func TestMarshalArray(t *testing.T) {
	type fixed struct{ V [3]int32 }
	in := fixed{V: [3]int32{7, 8, 9}}
	buf, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out fixed
	if err := Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.V != in.V {
		t.Errorf("got %v, want %v", out.V, in.V)
	}
}

func TestUnmarshalUnknownFieldSkipped(t *testing.T) {
	// Encode a struct with an extra field; decoding into a narrower struct
	// must succeed (forward compatibility).
	s := Struct{Name: "message", Fields: []Field{
		{Name: "From", Value: "bob"},
		{Name: "Extra", Value: int64(99)},
	}}
	buf := mustAppend(t, s)
	var out message
	if err := Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.From != "bob" {
		t.Errorf("From = %q", out.From)
	}
}

func TestUnmarshalNumericWidths(t *testing.T) {
	type wide struct{ V int64 }
	type narrow struct{ V int8 }
	buf, err := Marshal(wide{V: 300})
	if err != nil {
		t.Fatal(err)
	}
	var n narrow
	if err := Unmarshal(buf, &n); err == nil {
		t.Error("Unmarshal(300 into int8) succeeded, want overflow error")
	}
	buf, err = Marshal(wide{V: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := Unmarshal(buf, &n); err != nil {
		t.Fatal(err)
	}
	if n.V != 100 {
		t.Errorf("V = %d", n.V)
	}
}

func TestUnmarshalIntoFloat(t *testing.T) {
	type f struct{ V float64 }
	s := Struct{Name: "f", Fields: []Field{{Name: "V", Value: int64(5)}}}
	buf := mustAppend(t, s)
	var out f
	if err := Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.V != 5.0 {
		t.Errorf("V = %v", out.V)
	}
}

func TestUnmarshalTargetErrors(t *testing.T) {
	buf := mustAppend(t, int64(5))
	if err := Unmarshal(buf, nil); err == nil {
		t.Error("Unmarshal(nil) succeeded")
	}
	var v int64
	if err := Unmarshal(buf, v); err == nil {
		t.Error("Unmarshal(non-pointer) succeeded")
	}
	var s string
	if err := Unmarshal(buf, &s); err == nil {
		t.Error("Unmarshal(int into string) succeeded")
	}
}

func TestAssignIntoInterface(t *testing.T) {
	buf := mustAppend(t, "hello")
	var out any
	if err := Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	if out != "hello" {
		t.Errorf("out = %v", out)
	}
}

func TestMarshalUnsupportedMapKey(t *testing.T) {
	type bad struct{ M map[int]string }
	if _, err := Marshal(bad{M: map[int]string{1: "x"}}); err == nil {
		t.Error("Marshal(int-keyed map) succeeded")
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	type sample struct {
		A int64
		B string
		C []uint16
		D bool
		E float64
	}
	gen := func(a int64, b string, c []uint16, d bool, e float64) bool {
		in := sample{A: a, B: b, C: c, D: d, E: e}
		buf, err := Marshal(in)
		if err != nil {
			return false
		}
		var out sample
		if err := Unmarshal(buf, &out); err != nil {
			return false
		}
		if in.C == nil {
			// nil slices decode as nil
			return out.A == in.A && out.B == in.B && out.C == nil && out.D == in.D && out.E == in.E
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMarshalStruct(b *testing.B) {
	in := mailbox{
		Owner:    "alice",
		Messages: []message{{From: "bob", Body: bytes.Repeat([]byte{1}, 128)}},
		Tags:     map[string]int64{"a": 1, "b": 2},
		Size:     10,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalStruct(b *testing.B) {
	in := mailbox{Owner: "alice", Tags: map[string]int64{"a": 1}, Size: 10}
	buf, _ := Marshal(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out mailbox
		if err := Unmarshal(buf, &out); err != nil {
			b.Fatal(err)
		}
	}
}
