package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// Types exercising every corner the plan compiler must keep
// byte-identical with the reflect reference path.

type planPoint struct {
	X, Y int64
}

type (
	planNamedBytes  []byte
	planNamedString string
	planNamedInt    int32
	planNamedFloat  float32
	planNamedBool   bool
	planNamedSlice  []int64
	planKeyMap      map[planNamedString]int64
)

type PlanBase struct {
	X int64
}

type planEmbed struct {
	PlanBase
	Z int64
}

type planRecursive struct {
	V    int64
	Next *planRecursive
}

type planNested struct {
	Name   string
	Tags   map[string]any
	Points []planPoint
	Raw    []byte
	NB     planNamedBytes
	Skip   int64 `codec:"-"`
	hidden int64
	PtrP   *planPoint
	Iface  any
	When   time.Time
	R      Ref
	Arr    [3]byte
	F32    float32
	U      uint16
}

func planParityCases() []any {
	deep := any(int64(1))
	for i := 0; i < MaxDepth+5; i++ {
		deep = []any{deep}
	}
	p := &planPoint{X: -7, Y: 9}
	return []any{
		nil,
		true,
		false,
		int(-42),
		int8(-8),
		int16(300),
		int32(-70000),
		int64(1) << 60,
		uint(99),
		uint8(255),
		uint16(65535),
		uint32(1 << 30),
		uint64(1) << 63,
		float32(3.5),
		float64(math.Pi),
		math.NaN(),
		math.Inf(-1),
		"",
		"hello, 世界",
		[]byte(nil),           // exact []byte: TagBytes len 0, NOT TagNil
		[]byte{},              // same bytes as above
		[]byte{1, 2, 3},       //
		planNamedBytes(nil),   // named byte slice: TagNil
		planNamedBytes{4, 5},  //
		planNamedString("ns"), //
		planNamedInt(-3),      //
		planNamedFloat(1.25),  //
		planNamedBool(true),   //
		planNamedSlice{1, 2},  //
		planNamedSlice(nil),   //
		[]any{},               //
		[]any{nil, int64(1), "x", []byte{9}},
		[]string{"b", "a"},
		[][]int64{{1}, {2, 3}},
		[3]byte{1, 2, 3}, // array of bytes is TagList of TagUint
		[0]int64{},
		map[string]any(nil),
		map[string]any{},
		map[string]any{"b": int64(2), "a": "one", "c": nil},
		map[string]int64{"z": 1, "a": 2, "m": 3},
		planKeyMap{"k2": 2, "k1": 1}, // named string key type
		planPoint{X: 1, Y: -2},
		p,
		(*planPoint)(nil),
		planEmbed{PlanBase: PlanBase{X: 5}, Z: 6},
		planRecursive{V: 1, Next: &planRecursive{V: 2}},
		planNested{
			Name:   "n",
			Tags:   map[string]any{"t": int64(1)},
			Points: []planPoint{{1, 2}, {3, 4}},
			Raw:    []byte{1},
			NB:     planNamedBytes{2},
			Skip:   999,
			hidden: 7,
			PtrP:   &planPoint{X: 10},
			Iface:  "dyn",
			When:   time.Unix(12345, 6789),
			R:      Ref{Target: wire.ObjAddr{Addr: wire.Addr{Node: 1, Context: 2}, Object: 3}, Type: "kv", Hint: []byte{9}, Cap: 77},
			Arr:    [3]byte{7, 8, 9},
			F32:    0.5,
			U:      12,
		},
		time.Time{},
		time.Unix(0, 1),
		Ref{},
		Ref{Type: "t"},
		Struct{Name: "S", Fields: []Field{{Name: "A", Value: int64(1)}}},
		&Struct{Name: "S2"},
		// Unsupported shapes: both paths must fail identically.
		make(chan int),
		func() {},
		complex(1, 2),
		uintptr(7),
		map[int]string{1: "x"},
		map[int]string(nil), // key check precedes nil check
		[]any{int64(1), make(chan int)},
		planPoint{}, // and too-deep nesting:
		deep,
	}
}

// TestPlanParity pins the compiled-plan encoder to the reflect
// reference byte-for-byte, including error behavior.
func TestPlanParity(t *testing.T) {
	for i, v := range planParityCases() {
		got, errGot := MarshalAppend(nil, v)
		want, errWant := marshalAppendReflect(nil, v)
		if (errGot != nil) != (errWant != nil) {
			t.Fatalf("case %d (%T): plan err %v, reflect err %v", i, v, errGot, errWant)
		}
		if errGot != nil {
			if errors.Is(errWant, ErrUnsupported) != errors.Is(errGot, ErrUnsupported) ||
				errors.Is(errWant, ErrTooDeep) != errors.Is(errGot, ErrTooDeep) {
				t.Fatalf("case %d (%T): error identities differ: plan %v, reflect %v", i, v, errGot, errWant)
			}
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("case %d (%T): plan bytes %x != reflect bytes %x", i, v, got, want)
		}
	}
}

// TestPlanParityRepeated re-runs a case after the plan is cached: the
// second (cache-hit) encode must match the first.
func TestPlanParityRepeated(t *testing.T) {
	v := planNested{Name: "again", Points: []planPoint{{1, 1}}}
	first, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cached plan produced different bytes")
	}
}

// TestPlanConcurrentCompile exercises the lazy-compile path under
// parallel first use, including a recursive type.
func TestPlanConcurrentCompile(t *testing.T) {
	type fresh struct {
		A    int64
		Next *planRecursive
	}
	v := fresh{A: 1, Next: &planRecursive{V: 2, Next: &planRecursive{V: 3}}}
	want, err := marshalAppendReflect(nil, v)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := Marshal(v)
			if err != nil || !bytes.Equal(got, want) {
				t.Errorf("concurrent plan encode: err=%v match=%v", err, bytes.Equal(got, want))
			}
		}()
	}
	wg.Wait()
}

// TestPlanRoundTrip checks Marshal → Unmarshal → Marshal is stable for
// typed values (field caches on the unmarshal side included).
func TestPlanRoundTrip(t *testing.T) {
	orig := planNested{
		Name:   "rt",
		Tags:   map[string]any{"a": int64(1)},
		Points: []planPoint{{5, 6}},
		Raw:    []byte{1, 2},
		PtrP:   &planPoint{X: -1, Y: 2},
		Iface:  int64(42),
		When:   time.Unix(99, 100),
		R:      Ref{Type: "x", Cap: 5},
		Arr:    [3]byte{1, 2, 3},
		F32:    2.5,
		U:      7,
	}
	enc, err := Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back planNested
	if err := Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	re, err := Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatalf("round trip changed bytes:\n  %x\n  %x", enc, re)
	}
}

// TestFieldCachePromotion verifies the memoized field lookup preserves
// FieldByName's embedded-promotion semantics.
func TestFieldCachePromotion(t *testing.T) {
	src := &Struct{Name: "planEmbed", Fields: []Field{
		{Name: "X", Value: int64(11)}, // promoted from PlanBase
		{Name: "Z", Value: int64(22)},
		{Name: "Nope", Value: int64(1)}, // unknown: skipped
	}}
	for i := 0; i < 2; i++ { // second pass hits the cache
		var dst planEmbed
		if err := Assign(src, &dst); err != nil {
			t.Fatal(err)
		}
		if dst.X != 11 || dst.Z != 22 {
			t.Fatalf("pass %d: got %+v", i, dst)
		}
	}
}

// buildValue deterministically interprets fuzz bytes as a nested Go
// value drawn from the codec's full supported (and a few unsupported)
// shapes, so the fuzzer explores the plan compiler's whole surface.
type valueBuilder struct {
	data  []byte
	pos   int
	nodes int
}

func (b *valueBuilder) next() byte {
	if b.pos >= len(b.data) {
		return 0
	}
	c := b.data[b.pos]
	b.pos++
	return c
}

func (b *valueBuilder) u64() uint64 {
	var raw [8]byte
	for i := range raw {
		raw[i] = b.next()
	}
	return binary.LittleEndian.Uint64(raw[:])
}

func (b *valueBuilder) str() string {
	n := int(b.next() % 8)
	s := make([]byte, n)
	for i := range s {
		s[i] = b.next()
	}
	return string(s)
}

func (b *valueBuilder) build(depth int) any {
	b.nodes++
	if depth > 5 || b.nodes > 48 {
		return int64(b.next())
	}
	switch b.next() % 22 {
	case 0:
		return nil
	case 1:
		return b.next()%2 == 0
	case 2:
		return int64(b.u64())
	case 3:
		return int32(b.u64())
	case 4:
		return uint64(b.u64())
	case 5:
		return uint8(b.next())
	case 6:
		return math.Float64frombits(b.u64())
	case 7:
		return b.str()
	case 8:
		n := int(b.next() % 5)
		raw := make([]byte, n)
		for i := range raw {
			raw[i] = b.next()
		}
		if b.next()%2 == 0 {
			return raw // exact []byte
		}
		return planNamedBytes(raw)
	case 9:
		n := int(b.next() % 4)
		xs := make([]any, n)
		for i := range xs {
			xs[i] = b.build(depth + 1)
		}
		return xs
	case 10:
		n := int(b.next() % 4)
		m := make(map[string]any, n)
		for i := 0; i < n; i++ {
			m[b.str()] = b.build(depth + 1)
		}
		return m
	case 11:
		return planPoint{X: int64(b.u64()), Y: int64(b.u64())}
	case 12:
		v := planNested{
			Name: b.str(),
			Raw:  []byte(b.str()),
			F32:  planFloat32(b),
			U:    uint16(b.u64()),
		}
		if b.next()%2 == 0 {
			v.Tags = map[string]any{b.str(): b.build(depth + 1)}
		}
		if b.next()%2 == 0 {
			v.PtrP = &planPoint{X: int64(b.next())}
		}
		v.Iface = b.build(depth + 1)
		v.When = time.Unix(0, int64(b.u64()))
		return v
	case 13:
		return Ref{
			Target: wire.ObjAddr{
				Addr:   wire.Addr{Node: wire.NodeID(b.next()), Context: wire.ContextID(b.next())},
				Object: wire.ObjectID(b.next()),
			},
			Type: b.str(),
			Hint: []byte(b.str()),
			Cap:  b.u64(),
		}
	case 14:
		return time.Unix(int64(b.next()), int64(b.u64()))
	case 15:
		if b.next()%2 == 0 {
			return (*planPoint)(nil)
		}
		x := int64(b.u64())
		return &x
	case 16:
		n := int(b.next() % 4)
		xs := make(planNamedSlice, n)
		for i := range xs {
			xs[i] = int64(b.next())
		}
		return xs
	case 17:
		n := int(b.next() % 3)
		m := make(planKeyMap, n)
		for i := 0; i < n; i++ {
			m[planNamedString(b.str())] = int64(b.next())
		}
		return m
	case 18:
		var arr [3]byte
		for i := range arr {
			arr[i] = b.next()
		}
		return arr
	case 19:
		return planEmbed{PlanBase: PlanBase{X: int64(b.next())}, Z: int64(b.next())}
	case 20:
		r := &planRecursive{V: int64(b.next())}
		if b.next()%2 == 0 {
			r.Next = &planRecursive{V: int64(b.next())}
		}
		return *r
	default:
		// Unsupported on purpose: parity includes matching failures.
		if b.next()%2 == 0 {
			return map[int]string{int(b.next()): b.str()}
		}
		return complex(1, 2)
	}
}

func planFloat32(b *valueBuilder) float32 {
	return math.Float32frombits(uint32(b.u64()))
}

// FuzzMarshalParity asserts the compiled-plan encoder and the reflect
// reference produce identical bytes (or identical failure) for every
// value the builder can express, and that successful encodings decode
// cleanly and re-encode to the same bytes.
func FuzzMarshalParity(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{9, 3, 0, 1, 1, 2, 255, 7, 2, 104, 105})
	f.Add([]byte{12, 4, 97, 98, 99, 100, 3, 120, 0, 0, 1, 0, 1, 5})
	f.Add([]byte{10, 2, 1, 97, 11, 9, 1, 13, 2, 97, 98})
	f.Add([]byte{21, 0, 1, 2, 3})
	f.Add([]byte{8, 3, 9, 9, 9, 1, 8, 2, 7, 7, 0})
	f.Add([]byte{20, 5, 0, 6, 19, 1, 2, 18, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := &valueBuilder{data: data}
		v := b.build(0)
		got, errGot := MarshalAppend(nil, v)
		want, errWant := marshalAppendReflect(nil, v)
		if (errGot != nil) != (errWant != nil) {
			t.Fatalf("plan err %v, reflect err %v (value %T)", errGot, errWant, v)
		}
		if errGot != nil {
			return
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("plan bytes differ from reflect path\n plan:    %x\n reflect: %x\n value: %#v", got, want, v)
		}
		// Round trip: the generic decode of a plan encoding re-encodes
		// to the same bytes.
		dec, n, err := (&Decoder{}).Decode(got)
		if err != nil {
			t.Fatalf("decode of plan output failed: %v (bytes %x)", err, got)
		}
		if n != len(got) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(got))
		}
		re, err := Append(nil, dec)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(re, got) {
			t.Fatalf("re-encode changed bytes\n first:  %x\n second: %x", got, re)
		}
	})
}
