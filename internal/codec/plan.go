package codec

import (
	"fmt"
	"reflect"
	"sync"
	"time"

	"repro/internal/wire"
)

// Compiled marshal plans.
//
// Marshal's original pipeline lowers a typed value into the codec's
// generic shapes with a fresh reflect.Value walk per call, then encodes
// the lowered form — two traversals and a pile of intermediate []any /
// Struct allocations every time. A plan resolves everything that is
// per-*type* — which fields to encode, their pre-encoded name bytes,
// the struct header, the element encoder — exactly once, caches it in
// a sync.Map, and encodes straight from the typed value to bytes.
//
// Plans must be byte-identical to the lower+Append reference path
// (marshalAppendReflect); FuzzMarshalParity enforces this on a
// committed corpus. The parity subtleties worth knowing:
//
//   - an exact []byte encodes as TagBytes even when nil, but a *named*
//     byte-slice type encodes nil as TagNil (lower's exact-type check
//     precedes its Kind switch);
//   - [N]byte arrays are TagList of TagUint, not TagBytes;
//   - maps with non-string keys are ErrUnsupported even when nil;
//   - pointer and interface indirection does not consume depth budget,
//     container nesting (struct/list/map) does.

// encFunc encodes rv onto dst; depth counts container nesting with the
// same accounting as the lower/Append pair.
type encFunc func(dst []byte, rv reflect.Value, depth int) ([]byte, error)

// plan is one type's compiled encoder. Compilation is deferred to first
// use (sync.Once) so mutually-recursive types can reference each
// other's plans while compiling without cycling.
type plan struct {
	t    reflect.Type
	once sync.Once
	fn   encFunc
}

var plans sync.Map // reflect.Type → *plan

func planFor(t reflect.Type) *plan {
	if v, ok := plans.Load(t); ok {
		return v.(*plan)
	}
	p := &plan{t: t}
	if prior, loaded := plans.LoadOrStore(t, p); loaded {
		return prior.(*plan)
	}
	return p
}

func (p *plan) encode(dst []byte, rv reflect.Value, depth int) ([]byte, error) {
	if depth > MaxDepth {
		return dst, ErrTooDeep
	}
	p.once.Do(p.compile)
	return p.fn(dst, rv, depth)
}

func (p *plan) compile() { p.fn = compilePlan(p.t) }

var stringType = reflect.TypeOf("")

func compilePlan(t reflect.Type) encFunc {
	switch t {
	case refType:
		return encodePlanRef
	case timeType:
		return encodePlanTime
	case bytesType:
		// Exact []byte: TagBytes even when nil, matching lower's
		// exact-type check running before any nil handling.
		return encodePlanRawBytes
	}
	switch t.Kind() {
	case reflect.Bool:
		return encodePlanBool
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return encodePlanInt
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return encodePlanUint
	case reflect.Float32, reflect.Float64:
		return encodePlanFloat
	case reflect.String:
		return encodePlanString
	case reflect.Interface:
		return encodePlanIface
	case reflect.Pointer:
		elem := planFor(t.Elem())
		return func(dst []byte, rv reflect.Value, depth int) ([]byte, error) {
			if rv.IsNil() {
				return append(dst, byte(TagNil)), nil
			}
			return elem.encode(dst, rv.Elem(), depth)
		}
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			// Named byte-slice type: nil is TagNil (unlike exact []byte).
			return func(dst []byte, rv reflect.Value, depth int) ([]byte, error) {
				if rv.IsNil() {
					return append(dst, byte(TagNil)), nil
				}
				dst = append(dst, byte(TagBytes))
				return wire.AppendBytes(dst, rv.Bytes()), nil
			}
		}
		elem := planFor(t.Elem())
		return func(dst []byte, rv reflect.Value, depth int) ([]byte, error) {
			if rv.IsNil() {
				return append(dst, byte(TagNil)), nil
			}
			return encodePlanSeq(dst, rv, depth, elem)
		}
	case reflect.Array:
		elem := planFor(t.Elem())
		return func(dst []byte, rv reflect.Value, depth int) ([]byte, error) {
			return encodePlanSeq(dst, rv, depth, elem)
		}
	case reflect.Map:
		if t.Key().Kind() != reflect.String {
			err := fmt.Errorf("%w: map key %s (want string)", ErrUnsupported, t.Key())
			return failEncoder(err)
		}
		elem := planFor(t.Elem())
		convertKey := t.Key() != stringType
		keyType := t.Key()
		return func(dst []byte, rv reflect.Value, depth int) ([]byte, error) {
			if rv.IsNil() {
				return append(dst, byte(TagNil)), nil
			}
			dst = append(dst, byte(TagMap))
			dst = wire.AppendUvarint(dst, uint64(rv.Len()))
			// Canonical order: sorted keys, same as appendStringMap.
			keys := make([]string, 0, rv.Len())
			iter := rv.MapRange()
			for iter.Next() {
				keys = append(keys, iter.Key().String())
			}
			sortStrings(keys)
			var err error
			for _, k := range keys {
				dst = wire.AppendString(dst, k)
				kv := reflect.ValueOf(k)
				if convertKey {
					kv = kv.Convert(keyType)
				}
				if dst, err = elem.encode(dst, rv.MapIndex(kv), depth+1); err != nil {
					return dst, err
				}
			}
			return dst, nil
		}
	case reflect.Struct:
		return compileStructPlan(t)
	default:
		return failEncoder(fmt.Errorf("%w: %s", ErrUnsupported, t))
	}
}

// fieldPlan is one struct field's slot in a compiled struct encoder.
type fieldPlan struct {
	index   int
	nameEnc []byte // pre-encoded field name (string header + bytes)
	p       *plan
	errName string // "Type.Field", for lower-compatible error context
}

func compileStructPlan(t reflect.Type) encFunc {
	var fields []fieldPlan
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Tag.Get("codec") == "-" {
			continue
		}
		fields = append(fields, fieldPlan{
			index:   i,
			nameEnc: wire.AppendString(nil, f.Name),
			p:       planFor(f.Type),
			errName: t.Name() + "." + f.Name,
		})
	}
	// The header — tag, type name, field count — is invariant per type.
	hdr := append([]byte{byte(TagStruct)}, wire.AppendString(nil, t.Name())...)
	hdr = wire.AppendUvarint(hdr, uint64(len(fields)))
	return func(dst []byte, rv reflect.Value, depth int) ([]byte, error) {
		dst = append(dst, hdr...)
		var err error
		for i := range fields {
			f := &fields[i]
			dst = append(dst, f.nameEnc...)
			if dst, err = f.p.encode(dst, rv.Field(f.index), depth+1); err != nil {
				return dst, fmt.Errorf("field %s: %w", f.errName, err)
			}
		}
		return dst, nil
	}
}

func encodePlanSeq(dst []byte, rv reflect.Value, depth int, elem *plan) ([]byte, error) {
	n := rv.Len()
	dst = append(dst, byte(TagList))
	dst = wire.AppendUvarint(dst, uint64(n))
	var err error
	for i := 0; i < n; i++ {
		if dst, err = elem.encode(dst, rv.Index(i), depth+1); err != nil {
			return dst, fmt.Errorf("elem %d: %w", i, err)
		}
	}
	return dst, nil
}

func encodePlanIface(dst []byte, rv reflect.Value, depth int) ([]byte, error) {
	if rv.IsNil() {
		return append(dst, byte(TagNil)), nil
	}
	e := rv.Elem()
	// Indirection costs no depth, matching lower.
	return planFor(e.Type()).encode(dst, e, depth)
}

func encodePlanBool(dst []byte, rv reflect.Value, _ int) ([]byte, error) {
	if rv.Bool() {
		return append(dst, byte(TagTrue)), nil
	}
	return append(dst, byte(TagFalse)), nil
}

func encodePlanInt(dst []byte, rv reflect.Value, _ int) ([]byte, error) {
	return appendInt(dst, rv.Int()), nil
}

func encodePlanUint(dst []byte, rv reflect.Value, _ int) ([]byte, error) {
	return appendUint(dst, rv.Uint()), nil
}

func encodePlanFloat(dst []byte, rv reflect.Value, _ int) ([]byte, error) {
	return appendFloat(dst, rv.Float()), nil
}

func encodePlanString(dst []byte, rv reflect.Value, _ int) ([]byte, error) {
	dst = append(dst, byte(TagString))
	return wire.AppendString(dst, rv.String()), nil
}

func encodePlanRawBytes(dst []byte, rv reflect.Value, _ int) ([]byte, error) {
	dst = append(dst, byte(TagBytes))
	return wire.AppendBytes(dst, rv.Bytes()), nil
}

func encodePlanRef(dst []byte, rv reflect.Value, _ int) ([]byte, error) {
	return AppendRef(dst, rv.Interface().(Ref)), nil
}

func encodePlanTime(dst []byte, rv reflect.Value, _ int) ([]byte, error) {
	dst = append(dst, byte(TagTime))
	return wire.AppendVarint(dst, rv.Interface().(time.Time).UnixNano()), nil
}

func failEncoder(err error) encFunc {
	return func(dst []byte, _ reflect.Value, _ int) ([]byte, error) {
		return dst, err
	}
}

// Unmarshal-side plan: assignStruct resolves destination fields by name
// through reflect's FieldByName, which performs a promoted-field search
// per field per call. The cache memoizes each (type, name) resolution
// once, preserving FieldByName's exact semantics (including embedded
// promotion and its ambiguity rules) because it is the function that
// fills the cache.

type structFieldCache struct {
	mu sync.RWMutex
	m  map[string]cachedField
}

type cachedField struct {
	index []int
	ok    bool
}

var fieldCaches sync.Map // reflect.Type → *structFieldCache

func lookupField(t reflect.Type, name string) ([]int, bool) {
	cv, ok := fieldCaches.Load(t)
	if !ok {
		cv, _ = fieldCaches.LoadOrStore(t, &structFieldCache{m: make(map[string]cachedField)})
	}
	c := cv.(*structFieldCache)
	c.mu.RLock()
	f, hit := c.m[name]
	c.mu.RUnlock()
	if hit {
		return f.index, f.ok
	}
	sf, found := t.FieldByName(name)
	f = cachedField{ok: found && sf.IsExported()}
	if f.ok {
		f.index = sf.Index
	}
	c.mu.Lock()
	c.m[name] = f
	c.mu.Unlock()
	return f.index, f.ok
}
