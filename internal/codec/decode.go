package codec

import (
	"fmt"
	"math"
	"time"

	"repro/internal/wire"
)

// Decoder decodes tagged values. The zero value decodes with no hooks.
// Decoders are stateless and safe for concurrent use.
type Decoder struct {
	// RefHook, when non-nil, is called for every decoded Ref; its return
	// value replaces the Ref in the decoded result. The runtime uses this
	// to substitute a live proxy for each imported reference.
	RefHook func(Ref) (any, error)
}

// Decode parses one value from src, returning the value and bytes consumed.
// Decoded dynamic types: nil, bool, int64, uint64, float64, string, []byte
// (copied), []any, map[string]any, *Struct, Ref (or the RefHook's result),
// time.Time.
func (d *Decoder) Decode(src []byte) (any, int, error) {
	return d.decodeValue(src, 0)
}

func (d *Decoder) decodeValue(src []byte, depth int) (any, int, error) {
	if depth > MaxDepth {
		return nil, 0, ErrTooDeep
	}
	if len(src) == 0 {
		return nil, 0, wire.ErrShortBuffer
	}
	tag, rest := Tag(src[0]), src[1:]
	switch tag {
	case TagNil:
		return nil, 1, nil
	case TagFalse:
		return false, 1, nil
	case TagTrue:
		return true, 1, nil
	case TagInt:
		v, n, err := wire.Varint(rest)
		return v, 1 + n, err
	case TagUint:
		v, n, err := wire.Uvarint(rest)
		return v, 1 + n, err
	case TagFloat:
		if len(rest) < 8 {
			return nil, 0, wire.ErrShortBuffer
		}
		bits := uint64(rest[0])<<56 | uint64(rest[1])<<48 | uint64(rest[2])<<40 | uint64(rest[3])<<32 |
			uint64(rest[4])<<24 | uint64(rest[5])<<16 | uint64(rest[6])<<8 | uint64(rest[7])
		return math.Float64frombits(bits), 9, nil
	case TagString:
		s, n, err := wire.String(rest)
		return s, 1 + n, err
	case TagBytes:
		b, n, err := wire.Bytes(rest)
		if err != nil {
			return nil, 0, err
		}
		return append([]byte(nil), b...), 1 + n, nil
	case TagList:
		return d.decodeList(rest, depth)
	case TagMap:
		return d.decodeMap(rest, depth)
	case TagStruct:
		return d.decodeStruct(rest, depth)
	case TagRef:
		r, n, err := DecodeRef(src)
		if err != nil {
			return nil, 0, err
		}
		if d.RefHook != nil {
			v, err := d.RefHook(r)
			if err != nil {
				return nil, 0, fmt.Errorf("codec: ref hook for %s: %w", r, err)
			}
			return v, n, nil
		}
		return r, n, nil
	case TagTime:
		ns, n, err := wire.Varint(rest)
		if err != nil {
			return nil, 0, err
		}
		return time.Unix(0, ns).UTC(), 1 + n, nil
	default:
		return nil, 0, fmt.Errorf("%w: %d", ErrBadTag, tag)
	}
}

func (d *Decoder) decodeList(src []byte, depth int) (any, int, error) {
	count, used, err := wire.Uvarint(src)
	if err != nil {
		return nil, 0, err
	}
	if count > uint64(len(src)) {
		return nil, 0, ErrElementCount
	}
	out := make([]any, 0, count)
	for i := uint64(0); i < count; i++ {
		v, n, err := d.decodeValue(src[used:], depth+1)
		if err != nil {
			return nil, 0, fmt.Errorf("codec: list elem %d: %w", i, err)
		}
		used += n
		out = append(out, v)
	}
	return out, 1 + used, nil
}

func (d *Decoder) decodeMap(src []byte, depth int) (any, int, error) {
	count, used, err := wire.Uvarint(src)
	if err != nil {
		return nil, 0, err
	}
	if count > uint64(len(src)) {
		return nil, 0, ErrElementCount
	}
	out := make(map[string]any, count)
	for i := uint64(0); i < count; i++ {
		k, n, err := wire.String(src[used:])
		if err != nil {
			return nil, 0, fmt.Errorf("codec: map key %d: %w", i, err)
		}
		used += n
		v, n, err := d.decodeValue(src[used:], depth+1)
		if err != nil {
			return nil, 0, fmt.Errorf("codec: map value %q: %w", k, err)
		}
		used += n
		out[k] = v
	}
	return out, 1 + used, nil
}

func (d *Decoder) decodeStruct(src []byte, depth int) (any, int, error) {
	name, used, err := wire.String(src)
	if err != nil {
		return nil, 0, err
	}
	count, n, err := wire.Uvarint(src[used:])
	if err != nil {
		return nil, 0, err
	}
	used += n
	if count > uint64(len(src)) {
		return nil, 0, ErrElementCount
	}
	s := &Struct{Name: name, Fields: make([]Field, 0, count)}
	for i := uint64(0); i < count; i++ {
		fname, n, err := wire.String(src[used:])
		if err != nil {
			return nil, 0, fmt.Errorf("codec: struct %s field %d name: %w", name, i, err)
		}
		used += n
		v, n, err := d.decodeValue(src[used:], depth+1)
		if err != nil {
			return nil, 0, fmt.Errorf("codec: struct %s field %q: %w", name, fname, err)
		}
		used += n
		s.Fields = append(s.Fields, Field{Name: fname, Value: v})
	}
	return s, 1 + used, nil
}

// DecodeRef parses a TagRef value from src (tag byte included).
func DecodeRef(src []byte) (Ref, int, error) {
	if len(src) == 0 {
		return Ref{}, 0, wire.ErrShortBuffer
	}
	if Tag(src[0]) != TagRef {
		return Ref{}, 0, fmt.Errorf("%w: want ref, got %d", ErrBadTag, src[0])
	}
	used := 1
	target, n, err := wire.DecodeObjAddr(src[used:])
	if err != nil {
		return Ref{}, 0, err
	}
	used += n
	cap64, n, err := wire.Uvarint(src[used:])
	if err != nil {
		return Ref{}, 0, err
	}
	used += n
	typ, n, err := wire.String(src[used:])
	if err != nil {
		return Ref{}, 0, err
	}
	used += n
	hint, n, err := wire.Bytes(src[used:])
	if err != nil {
		return Ref{}, 0, err
	}
	used += n
	r := Ref{Target: target, Type: typ, Cap: cap64}
	if len(hint) > 0 {
		r.Hint = append([]byte(nil), hint...)
	}
	return r, used, nil
}

// Decode parses one value with no hooks installed.
func Decode(src []byte) (any, int, error) {
	var d Decoder
	return d.Decode(src)
}

// DecodeArgs decodes an argument vector produced by EncodeArgs, applying
// the decoder's hooks to every element.
func (d *Decoder) DecodeArgs(src []byte) ([]any, error) {
	v, n, err := d.Decode(src)
	if err != nil {
		return nil, err
	}
	if n != len(src) {
		return nil, fmt.Errorf("codec: %d trailing bytes after argument vector", len(src)-n)
	}
	args, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("codec: argument vector is %T, want list", v)
	}
	return args, nil
}

// DecodeArgs decodes an argument vector with no hooks installed.
func DecodeArgs(src []byte) ([]any, error) {
	var d Decoder
	return d.DecodeArgs(src)
}

// Refs walks an already-decoded value and collects every Ref it contains,
// in encounter order. Useful for auditing which capabilities a message
// carries.
func Refs(v any) []Ref {
	var out []Ref
	walkRefs(v, &out)
	return out
}

func walkRefs(v any, out *[]Ref) {
	switch x := v.(type) {
	case Ref:
		*out = append(*out, x)
	case []any:
		for _, e := range x {
			walkRefs(e, out)
		}
	case map[string]any:
		for _, e := range x {
			walkRefs(e, out)
		}
	case *Struct:
		for _, f := range x.Fields {
			walkRefs(f.Value, out)
		}
	case Struct:
		for _, f := range x.Fields {
			walkRefs(f.Value, out)
		}
	}
}
