package codec

import (
	"fmt"
	"reflect"
	"time"
)

// Marshal encodes an arbitrary Go value by lowering it to the codec's
// generic shapes with reflection: structs become TagStruct (exported fields
// in declaration order), typed slices/arrays become TagList, typed maps
// with string keys become TagMap, pointers dereference (nil → TagNil).
// Fields tagged `codec:"-"` are skipped. Used for object state capture
// during migration and for typed convenience in examples; hot invocation
// paths use Append directly.
func Marshal(v any) ([]byte, error) {
	return MarshalAppend(nil, v)
}

// MarshalAppend is Marshal appending to dst. It encodes through a
// compiled per-type plan (see plan.go), cached on first use; the plan
// output is byte-identical to the original lower+Append pipeline, which
// marshalAppendReflect preserves as the fuzzed reference.
func MarshalAppend(dst []byte, v any) ([]byte, error) {
	rv := reflect.ValueOf(v)
	if !rv.IsValid() {
		return append(dst, byte(TagNil)), nil
	}
	return planFor(rv.Type()).encode(dst, rv, 0)
}

// marshalAppendReflect is the original two-pass lower+Append pipeline,
// kept as the reference implementation the compiled plans are verified
// against (TestPlanParity, FuzzMarshalParity).
func marshalAppendReflect(dst []byte, v any) ([]byte, error) {
	lowered, err := lower(reflect.ValueOf(v), 0)
	if err != nil {
		return dst, err
	}
	return Append(dst, lowered)
}

// Lower converts an arbitrary Go value into the codec's generic shapes
// (typed slices to []any, structs to Struct, and so on) without encoding
// it. Generated stubs use it so typed arguments of any marshalable shape
// can travel through the dynamic invocation path; Assign is its inverse.
// Values already in generic shape — the common case on the invocation
// fast path — pass through without entering reflection.
func Lower(v any) (any, error) {
	switch x := v.(type) {
	case nil:
		return nil, nil
	case bool, string, int64, uint64, float64, []byte, time.Time, Ref:
		return x, nil
	case int:
		return int64(x), nil
	case int8:
		return int64(x), nil
	case int16:
		return int64(x), nil
	case int32:
		return int64(x), nil
	case uint:
		return uint64(x), nil
	case uint8:
		return uint64(x), nil
	case uint16:
		return uint64(x), nil
	case uint32:
		return uint64(x), nil
	case float32:
		return float64(x), nil
	}
	return lower(reflect.ValueOf(v), 0)
}

var (
	refType   = reflect.TypeOf(Ref{})
	timeType  = reflect.TypeOf(time.Time{})
	bytesType = reflect.TypeOf([]byte(nil))
)

func lower(rv reflect.Value, depth int) (any, error) {
	if depth > MaxDepth {
		return nil, ErrTooDeep
	}
	if !rv.IsValid() {
		return nil, nil
	}
	t := rv.Type()
	switch t {
	case refType:
		return rv.Interface(), nil
	case timeType:
		return rv.Interface(), nil
	case bytesType:
		return rv.Interface(), nil
	}
	switch rv.Kind() {
	case reflect.Bool:
		return rv.Bool(), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return rv.Int(), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return rv.Uint(), nil
	case reflect.Float32, reflect.Float64:
		return rv.Float(), nil
	case reflect.String:
		return rv.String(), nil
	case reflect.Interface:
		if rv.IsNil() {
			return nil, nil
		}
		return lower(rv.Elem(), depth)
	case reflect.Pointer:
		if rv.IsNil() {
			return nil, nil
		}
		return lower(rv.Elem(), depth)
	case reflect.Slice:
		if rv.IsNil() {
			return nil, nil
		}
		if t.Elem().Kind() == reflect.Uint8 {
			return rv.Bytes(), nil
		}
		return lowerSeq(rv, depth)
	case reflect.Array:
		return lowerSeq(rv, depth)
	case reflect.Map:
		if t.Key().Kind() != reflect.String {
			return nil, fmt.Errorf("%w: map key %s (want string)", ErrUnsupported, t.Key())
		}
		if rv.IsNil() {
			return nil, nil
		}
		out := make(map[string]any, rv.Len())
		iter := rv.MapRange()
		for iter.Next() {
			v, err := lower(iter.Value(), depth+1)
			if err != nil {
				return nil, err
			}
			out[iter.Key().String()] = v
		}
		return out, nil
	case reflect.Struct:
		s := Struct{Name: t.Name()}
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() || f.Tag.Get("codec") == "-" {
				continue
			}
			v, err := lower(rv.Field(i), depth+1)
			if err != nil {
				return nil, fmt.Errorf("field %s.%s: %w", t.Name(), f.Name, err)
			}
			s.Fields = append(s.Fields, Field{Name: f.Name, Value: v})
		}
		return s, nil
	default:
		return nil, fmt.Errorf("%w: %s", ErrUnsupported, t)
	}
}

// Unmarshal decodes src into out, which must be a non-nil pointer. It is
// the inverse of Marshal for the supported shapes, with lenient numeric
// conversion (any decoded integer kind assigns to any integer field that
// can represent it).
func Unmarshal(src []byte, out any) error {
	return (&Decoder{}).Unmarshal(src, out)
}

// Unmarshal decodes src into out using the decoder's hooks.
func (d *Decoder) Unmarshal(src []byte, out any) error {
	v, n, err := d.Decode(src)
	if err != nil {
		return err
	}
	if n != len(src) {
		return fmt.Errorf("codec: %d trailing bytes", len(src)-n)
	}
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("codec: Unmarshal target must be a non-nil pointer, got %T", out)
	}
	return assign(rv.Elem(), v)
}

// Assign stores a decoded generic value into the typed destination dst,
// which must be an addressable reflect-able location exposed as a pointer.
func Assign(decoded any, out any) error {
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("codec: Assign target must be a non-nil pointer, got %T", out)
	}
	return assign(rv.Elem(), decoded)
}

func assign(dst reflect.Value, v any) error {
	if !dst.CanSet() {
		return fmt.Errorf("codec: cannot set %s", dst.Type())
	}
	if v == nil {
		dst.SetZero()
		return nil
	}
	t := dst.Type()
	// Exact interface satisfaction first: any destination accepts the raw
	// decoded value.
	if t.Kind() == reflect.Interface && reflect.TypeOf(v).AssignableTo(t) {
		dst.Set(reflect.ValueOf(v))
		return nil
	}
	switch x := v.(type) {
	case bool:
		if t.Kind() != reflect.Bool {
			return convErr(t, v)
		}
		dst.SetBool(x)
		return nil
	case int64:
		return assignInt(dst, x)
	case uint64:
		if x <= 1<<63-1 {
			return assignInt(dst, int64(x))
		}
		if isUintKind(t.Kind()) && !dst.OverflowUint(x) {
			dst.SetUint(x)
			return nil
		}
		return convErr(t, v)
	case float64:
		if t.Kind() != reflect.Float32 && t.Kind() != reflect.Float64 {
			return convErr(t, v)
		}
		dst.SetFloat(x)
		return nil
	case string:
		if t.Kind() != reflect.String {
			return convErr(t, v)
		}
		dst.SetString(x)
		return nil
	case []byte:
		if t == bytesType {
			dst.SetBytes(x)
			return nil
		}
		return convErr(t, v)
	case time.Time:
		if t == timeType {
			dst.Set(reflect.ValueOf(x))
			return nil
		}
		return convErr(t, v)
	case Ref:
		if t == refType {
			dst.Set(reflect.ValueOf(x))
			return nil
		}
		return convErr(t, v)
	case []any:
		return assignList(dst, x)
	case map[string]any:
		return assignMap(dst, x)
	case *Struct:
		return assignStruct(dst, x)
	default:
		return convErr(t, v)
	}
}

func lowerSeq(rv reflect.Value, depth int) (any, error) {
	out := make([]any, rv.Len())
	for i := range out {
		v, err := lower(rv.Index(i), depth+1)
		if err != nil {
			return nil, fmt.Errorf("elem %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

func isUintKind(k reflect.Kind) bool {
	switch k {
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return true
	default:
		return false
	}
}

func assignInt(dst reflect.Value, x int64) error {
	switch dst.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if dst.OverflowInt(x) {
			return fmt.Errorf("codec: %d overflows %s", x, dst.Type())
		}
		dst.SetInt(x)
		return nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if x < 0 || dst.OverflowUint(uint64(x)) {
			return fmt.Errorf("codec: %d overflows %s", x, dst.Type())
		}
		dst.SetUint(uint64(x))
		return nil
	case reflect.Float32, reflect.Float64:
		dst.SetFloat(float64(x))
		return nil
	default:
		return convErr(dst.Type(), x)
	}
}

func assignList(dst reflect.Value, xs []any) error {
	switch dst.Kind() {
	case reflect.Slice:
		out := reflect.MakeSlice(dst.Type(), len(xs), len(xs))
		for i, e := range xs {
			if err := assign(out.Index(i), e); err != nil {
				return fmt.Errorf("elem %d: %w", i, err)
			}
		}
		dst.Set(out)
		return nil
	case reflect.Array:
		if dst.Len() != len(xs) {
			return fmt.Errorf("codec: list of %d into array of %d", len(xs), dst.Len())
		}
		for i, e := range xs {
			if err := assign(dst.Index(i), e); err != nil {
				return fmt.Errorf("elem %d: %w", i, err)
			}
		}
		return nil
	default:
		return convErr(dst.Type(), xs)
	}
}

func assignMap(dst reflect.Value, m map[string]any) error {
	if dst.Kind() != reflect.Map || dst.Type().Key().Kind() != reflect.String {
		return convErr(dst.Type(), m)
	}
	out := reflect.MakeMapWithSize(dst.Type(), len(m))
	elemT := dst.Type().Elem()
	for k, v := range m {
		ev := reflect.New(elemT).Elem()
		if err := assign(ev, v); err != nil {
			return fmt.Errorf("key %q: %w", k, err)
		}
		out.SetMapIndex(reflect.ValueOf(k).Convert(dst.Type().Key()), ev)
	}
	dst.Set(out)
	return nil
}

func assignStruct(dst reflect.Value, s *Struct) error {
	if dst.Kind() == reflect.Pointer {
		if dst.IsNil() {
			dst.Set(reflect.New(dst.Type().Elem()))
		}
		return assignStruct(dst.Elem(), s)
	}
	if dst.Kind() != reflect.Struct {
		return convErr(dst.Type(), s)
	}
	t := dst.Type()
	for _, f := range s.Fields {
		// Field resolution is memoized per (type, name) — see plan.go.
		idx, ok := lookupField(t, f.Name)
		if !ok {
			continue // unknown fields are skipped for forward compatibility
		}
		if err := assign(dst.FieldByIndex(idx), f.Value); err != nil {
			return fmt.Errorf("field %s.%s: %w", t.Name(), f.Name, err)
		}
	}
	return nil
}

func convErr(t reflect.Type, v any) error {
	return fmt.Errorf("codec: cannot assign %T to %s", v, t)
}
