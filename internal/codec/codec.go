// Package codec implements the system's marshalling format: a compact,
// self-describing tagged encoding for Go values, used for invocation
// arguments, results, object state capture (migration), and name-service
// records.
//
// The format's most important feature for the proxy principle is
// *reference marshalling*: a Ref — the capability tuple naming a remote
// object — is a first-class encodable value. When an invocation argument or
// result carries a Ref across a context boundary, the importing side's
// decoder surfaces it via a hook so the runtime can install a proxy for the
// referenced object. The Ref carries an opaque Hint blob chosen by the
// *exporting service*; only that service's proxy factory interprets it
// (private bootstrap data, e.g. a cache lease or replica list).
package codec

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/wire"
)

// Tag identifies the type of an encoded value.
type Tag uint8

// Value tags.
const (
	// TagNil encodes the nil value.
	TagNil Tag = iota + 1
	// TagFalse and TagTrue encode booleans without a payload byte.
	TagFalse
	// TagTrue encodes boolean true.
	TagTrue
	// TagInt encodes a signed integer (zigzag varint).
	TagInt
	// TagUint encodes an unsigned integer (varint).
	TagUint
	// TagFloat encodes a float64 (8 bytes, IEEE 754 big-endian bits).
	TagFloat
	// TagString encodes a UTF-8 string.
	TagString
	// TagBytes encodes a raw byte string.
	TagBytes
	// TagList encodes a count-prefixed sequence of values.
	TagList
	// TagMap encodes a count-prefixed sequence of key/value pairs.
	TagMap
	// TagStruct encodes a named struct: type name, field count, then
	// name/value pairs for each field.
	TagStruct
	// TagRef encodes an object reference (capability tuple).
	TagRef
	// TagTime encodes a time.Time as Unix nanoseconds.
	TagTime
)

// Errors reported by the codec.
var (
	// ErrUnsupported reports a Go value the codec cannot encode.
	ErrUnsupported = errors.New("codec: unsupported value type")
	// ErrBadTag reports an unknown tag in the input.
	ErrBadTag = errors.New("codec: unknown tag")
	// ErrTooDeep reports input nested beyond MaxDepth.
	ErrTooDeep = errors.New("codec: nesting too deep")
	// ErrElementCount reports an element count that exceeds the input size
	// (hostile or corrupt input).
	ErrElementCount = errors.New("codec: element count exceeds input")
)

// MaxDepth bounds value nesting, protecting the decoder against hostile
// deeply-nested input.
const MaxDepth = 64

// Ref is the wire representation of an object reference: the capability a
// context must hold to talk to an object elsewhere. Type selects the proxy
// factory on import; Hint is private data produced by the exporting
// service's proxy factory and consumed only by the importing proxy; Cap is
// the unforgeable token minted by a protected export — the server rejects
// invocations that do not present it, which is what makes a Ref a true
// capability rather than just an address (zero means the export is
// unprotected).
type Ref struct {
	Target wire.ObjAddr
	Type   string
	Hint   []byte
	Cap    uint64
}

// IsZero reports whether the ref is unset.
func (r Ref) IsZero() bool {
	return r.Target.IsZero() && r.Type == "" && len(r.Hint) == 0 && r.Cap == 0
}

// String renders the ref for logs, without exposing the private hint or
// the capability token.
func (r Ref) String() string {
	return fmt.Sprintf("ref<%s@%s>", r.Type, r.Target)
}

// Struct is the generic decoded form of a TagStruct value. Encoding a
// Struct writes its fields in the order given (canonical order is the
// producer's responsibility; the reflect layer sorts by declaration order).
type Struct struct {
	Name   string
	Fields []Field
}

// Field is one named field of a Struct.
type Field struct {
	Name  string
	Value any
}

// Get returns the named field's value and whether it was present.
func (s *Struct) Get(name string) (any, bool) {
	for _, f := range s.Fields {
		if f.Name == name {
			return f.Value, true
		}
	}
	return nil, false
}

// Append encodes v onto dst and returns the extended slice. Supported
// dynamic types: nil, bool, int/int8..64, uint/uint8..64, float32/64,
// string, []byte, []any, map[string]any, Struct/*Struct, Ref, time.Time.
// Anything else (including arbitrary structs) must go through the reflect
// layer (Marshal) which lowers values into these shapes.
func Append(dst []byte, v any) ([]byte, error) {
	return appendValue(dst, v, 0)
}

func appendValue(dst []byte, v any, depth int) ([]byte, error) {
	if depth > MaxDepth {
		return dst, ErrTooDeep
	}
	switch x := v.(type) {
	case nil:
		return append(dst, byte(TagNil)), nil
	case bool:
		if x {
			return append(dst, byte(TagTrue)), nil
		}
		return append(dst, byte(TagFalse)), nil
	case int:
		return appendInt(dst, int64(x)), nil
	case int8:
		return appendInt(dst, int64(x)), nil
	case int16:
		return appendInt(dst, int64(x)), nil
	case int32:
		return appendInt(dst, int64(x)), nil
	case int64:
		return appendInt(dst, x), nil
	case uint:
		return appendUint(dst, uint64(x)), nil
	case uint8:
		return appendUint(dst, uint64(x)), nil
	case uint16:
		return appendUint(dst, uint64(x)), nil
	case uint32:
		return appendUint(dst, uint64(x)), nil
	case uint64:
		return appendUint(dst, x), nil
	case float32:
		return appendFloat(dst, float64(x)), nil
	case float64:
		return appendFloat(dst, x), nil
	case string:
		dst = append(dst, byte(TagString))
		return wire.AppendString(dst, x), nil
	case []byte:
		dst = append(dst, byte(TagBytes))
		return wire.AppendBytes(dst, x), nil
	case []any:
		dst = append(dst, byte(TagList))
		dst = wire.AppendUvarint(dst, uint64(len(x)))
		var err error
		for _, e := range x {
			if dst, err = appendValue(dst, e, depth+1); err != nil {
				return dst, err
			}
		}
		return dst, nil
	case map[string]any:
		return appendStringMap(dst, x, depth)
	case Struct:
		return appendStruct(dst, &x, depth)
	case *Struct:
		return appendStruct(dst, x, depth)
	case Ref:
		return AppendRef(dst, x), nil
	case time.Time:
		dst = append(dst, byte(TagTime))
		return wire.AppendVarint(dst, x.UnixNano()), nil
	default:
		return dst, fmt.Errorf("%w: %T", ErrUnsupported, v)
	}
}

func appendInt(dst []byte, v int64) []byte {
	dst = append(dst, byte(TagInt))
	return wire.AppendVarint(dst, v)
}

func appendUint(dst []byte, v uint64) []byte {
	dst = append(dst, byte(TagUint))
	return wire.AppendUvarint(dst, v)
}

func appendFloat(dst []byte, v float64) []byte {
	dst = append(dst, byte(TagFloat))
	bits := math.Float64bits(v)
	return append(dst,
		byte(bits>>56), byte(bits>>48), byte(bits>>40), byte(bits>>32),
		byte(bits>>24), byte(bits>>16), byte(bits>>8), byte(bits))
}

func appendStringMap(dst []byte, m map[string]any, depth int) ([]byte, error) {
	dst = append(dst, byte(TagMap))
	dst = wire.AppendUvarint(dst, uint64(len(m)))
	// Canonical order: sorted keys, so equal maps encode equally.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	var err error
	for _, k := range keys {
		dst = wire.AppendString(dst, k)
		if dst, err = appendValue(dst, m[k], depth+1); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

func appendStruct(dst []byte, s *Struct, depth int) ([]byte, error) {
	dst = append(dst, byte(TagStruct))
	dst = wire.AppendString(dst, s.Name)
	dst = wire.AppendUvarint(dst, uint64(len(s.Fields)))
	var err error
	for _, f := range s.Fields {
		dst = wire.AppendString(dst, f.Name)
		if dst, err = appendValue(dst, f.Value, depth+1); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// AppendRef encodes a Ref value.
func AppendRef(dst []byte, r Ref) []byte {
	dst = append(dst, byte(TagRef))
	dst = wire.AppendObjAddr(dst, r.Target)
	dst = wire.AppendUvarint(dst, r.Cap)
	dst = wire.AppendString(dst, r.Type)
	return wire.AppendBytes(dst, r.Hint)
}

// insertion sort; key sets are tiny and this avoids importing sort for one
// call site on the hot encode path.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// EncodeArgs encodes an argument vector (a TagList of the given values).
func EncodeArgs(args ...any) ([]byte, error) {
	return Append(nil, anySlice(args))
}

// AppendListHeader opens a TagList of exactly n elements; the caller
// must append n values with AppendElem. It lets hot paths build an
// argument list in place instead of materializing an []any first.
func AppendListHeader(dst []byte, n int) []byte {
	dst = append(dst, byte(TagList))
	return wire.AppendUvarint(dst, uint64(n))
}

// AppendElem appends one element of a list opened with AppendListHeader,
// depth-accounted exactly as Append nests list elements.
func AppendElem(dst []byte, v any) ([]byte, error) {
	return appendValue(dst, v, 1)
}

func anySlice(args []any) []any {
	if args == nil {
		return []any{}
	}
	return args
}
