// Package shard implements the partitioned smart proxy: a service's
// keyspace is consistent-hashed across member shards (each an ordinary
// export — plain or replica-backed), and the proxy routes every
// single-key invocation to the owning shard while fanning multi-key
// operations out in parallel (scatter-gather). The client cannot tell a
// sharded proxy from a stub — identical Invoke interface — which is the
// paper's point: partitioning is the service's private distribution
// strategy, shipped inside its proxy.
//
// Topology: one Router (exported under the shard type) owns the
// authoritative routing table — an epoch-numbered consistent-hash ring
// over the member names. Each member export wraps its store in a Guard
// that enforces the table: invocations for keys the member does not own
// are refused with core.CodeMisroute (the sender's table is stale — it
// refetches and re-routes), and requests carrying an older epoch than
// the guard has seen are refused with core.CodeFenced. Membership
// changes rebalance under a fresh epoch: moved key ranges are frozen at
// the source, pulled, pushed to their new owners, and only then is the
// new table committed to every guard — so a write is either acked under
// the old table (and therefore travels with the moved range) or retried
// by its client against the new owner. Guards reached through a replica
// group get all of this as ordered, WAL-logged writes, which is what
// makes handoff survive a shard-owner crash mid-rebalance.
package shard

import (
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the ring's default virtual-node count per
// member. More virtual nodes smooth the key distribution at the cost of
// a larger table.
const DefaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring: each member contributes
// vnodes points on a 64-bit circle, and a key belongs to the member of
// the first point at or after the key's hash (wrapping around). Rings
// built from the same member set and vnode count are identical
// everywhere — routers, guards, and proxies never exchange the ring
// itself, only (epoch, members, vnodes).
type Ring struct {
	vnodes  int
	members []string
	points  []ringPoint
}

type ringPoint struct {
	h      uint64
	member string
}

// NewRing builds the ring for a member set. Order of members does not
// matter; duplicates are ignored. A nil or empty member set yields a
// ring that owns nothing.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, members: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for _, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{h: hashKey(fmt.Sprintf("%s#%d", m, v)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Owner reports which member owns key; "" when the ring is empty.
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0 // wraparound: past the last point, the first owns it
	}
	return r.points[i].member
}

// Members reports the ring's member set (sorted, deduplicated).
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	return append([]string(nil), r.members...)
}

// VirtualNodes reports the ring's per-member virtual-node count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Has reports whether member is on the ring.
func (r *Ring) Has(member string) bool {
	if r == nil {
		return false
	}
	i := sort.SearchStrings(r.members, member)
	return i < len(r.members) && r.members[i] == member
}

// hashKey is 64-bit FNV-1a with an avalanche finalizer, inlined so the
// ring has no hasher allocation per lookup. Raw FNV mixes the high bits
// poorly for short, similar strings (exactly what member vnode labels
// and sequential keys are), which skews the point distribution; the
// finalizer (the 64-bit murmur fmix) spreads every input bit across the
// whole circle.
func hashKey(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
