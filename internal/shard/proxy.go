package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/wire"
)

// routeAttempts bounds how many times one invocation re-routes after a
// misroute (stale table) or a frozen key (rebalance in flight) before
// surfacing the error.
const routeAttempts = 6

// Proxy is the client-side sharded proxy: it holds a fetched copy of
// the routing table, sends each single-key invocation straight to the
// owning member (through that member's own proxy — stub or replica),
// and fans multi-key operations out in parallel. A core.CodeMisroute
// refusal means the table went stale under it: it refetches from the
// router and re-routes, invisibly to the caller.
type Proxy struct {
	rt     *core.Runtime
	ref    codec.Ref
	ctrl   wire.ObjAddr
	spec   Spec
	single map[string]bool
	limit  int
	closed atomic.Bool

	mu      sync.Mutex
	epoch   uint64
	ring    *Ring
	members map[string]codec.Ref

	routeCalls   *obs.Counter
	misroutes    *obs.Counter
	scatterCalls *obs.Counter
	fanout       *obs.Histogram
}

func newProxy(rt *core.Runtime, ref codec.Ref, h shardHint) *Proxy {
	scope := "shard[" + h.Name + "]."
	reg := rt.Observer().Registry
	limit := h.ScatterLimit
	if limit <= 0 {
		limit = 8
	}
	return &Proxy{
		rt:           rt,
		ref:          ref,
		ctrl:         wire.ObjAddr{Addr: ref.Target.Addr, Object: h.Ctrl},
		spec:         h.Spec,
		single:       h.Spec.singleSet(),
		limit:        limit,
		routeCalls:   reg.Counter(scope + "route.calls"),
		misroutes:    reg.Counter(scope + "route.misroutes"),
		scatterCalls: reg.Counter(scope + "scatter.calls"),
		fanout:       reg.Histogram(scope + "scatter.fanout"),
	}
}

// Epoch reports the table epoch this proxy last fetched (0 before the
// first route).
func (p *Proxy) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// Invoke implements core.Proxy.
func (p *Proxy) Invoke(ctx context.Context, method string, args ...any) ([]any, error) {
	if p.closed.Load() {
		return nil, core.ErrProxyClosed
	}
	if isReserved(method) {
		return nil, core.Errorf(core.CodeDenied, method, "shard: reserved method")
	}
	if single, ok := p.spec.singleFor(method); ok {
		p.scatterCalls.Inc()
		ctx, finish := p.rt.Tracer().StartChild(ctx, "shard:scatter:"+method, p.rt.Where())
		res, err := scatterGather(ctx, method, args, p.limit, p.ownerScore, func(ctx context.Context, key string, subArgs []any) ([]any, error) {
			return p.routeKey(ctx, single, key, subArgs)
		})
		p.fanout.Observe(time.Duration(len(args)))
		finish(err)
		return res, err
	}
	if !p.single[method] {
		return nil, core.NoSuchMethod(method)
	}
	key, err := keyOf(method, args)
	if err != nil {
		return nil, err
	}
	ctx, finish := p.rt.Tracer().StartChild(ctx, "shard:route", p.rt.Where())
	res, err := p.routeKey(ctx, method, key, args)
	finish(err)
	return res, err
}

// routeKey sends one single-key invocation to the key's owner,
// re-fetching the table and re-routing on misroutes and freezes.
func (p *Proxy) routeKey(ctx context.Context, method, key string, args []any) ([]any, error) {
	p.routeCalls.Inc()
	var lastErr error
	for attempt := 0; attempt < routeAttempts; attempt++ {
		if attempt > 0 {
			if err := routeBackoff(ctx, attempt); err != nil {
				return nil, err
			}
			if err := p.refreshTable(ctx); err != nil {
				lastErr = err
				continue
			}
		}
		ring, members, err := p.table(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		owner := ring.Owner(key)
		ref, ok := members[owner]
		if !ok {
			lastErr = fmt.Errorf("%w: owner %q", ErrUnknownMember, owner)
			continue
		}
		mp, err := p.rt.Import(ref)
		if err != nil {
			lastErr = err
			continue
		}
		res, err := mp.Invoke(ctx, method, args...)
		if err == nil || !retryableRoute(err) {
			return res, err
		}
		if isMisroute(err) {
			p.misroutes.Inc()
		}
		lastErr = err
	}
	return nil, lastErr
}

// ownerScore ranks a key for scatter launch order by its owner node's
// gray-failure score (0 when the table is not yet cached — the fetch
// inside routeKey sorts that out).
func (p *Proxy) ownerScore(key string) float64 {
	p.mu.Lock()
	ring, members := p.ring, p.members
	p.mu.Unlock()
	if ring == nil {
		return 0
	}
	ref, ok := members[ring.Owner(key)]
	if !ok {
		return 0
	}
	return p.rt.HealthScore(ref.Target.Addr.Node)
}

// table returns the cached routing table, fetching it on first use.
func (p *Proxy) table(ctx context.Context) (*Ring, map[string]codec.Ref, error) {
	p.mu.Lock()
	if p.ring != nil {
		ring, members := p.ring, p.members
		p.mu.Unlock()
		return ring, members, nil
	}
	p.mu.Unlock()
	if err := p.refreshTable(ctx); err != nil {
		return nil, nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ring == nil {
		return nil, nil, ErrNoMembers
	}
	return p.ring, p.members, nil
}

// refreshTable fetches the current table from the router's control
// object. The fetch travels high-priority: re-routing around a shed
// (or misrouted) key needs the table, so shedding table fetches behind
// the load that caused them would wedge recovery.
func (p *Proxy) refreshTable(ctx context.Context) error {
	f, err := p.rt.GuardedCall(ctx, p.ctrl, kindTable, wire.AppendPriorityHeader(nil, wire.PriorityHigh))
	if err != nil {
		return core.RemoteToInvokeError("shard.table", err)
	}
	epoch, vnodes, names, refs, err := decodeTable(f.Payload)
	if err != nil {
		return core.Errorf(core.CodeInternal, "shard.table", "shard: bad table: %s", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if epoch < p.epoch {
		return nil // raced with a newer fetch
	}
	p.epoch = epoch
	if len(names) == 0 {
		p.ring, p.members = nil, nil
		return nil
	}
	p.ring = NewRing(names, vnodes)
	p.members = refs
	return nil
}

func decodeTable(src []byte) (uint64, int, []string, map[string]codec.Ref, error) {
	epoch, n, err := wire.Uvarint(src)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	src = src[n:]
	vnodes, n, err := wire.Uvarint(src)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	src = src[n:]
	count, n, err := wire.Uvarint(src)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	src = src[n:]
	if count > uint64(len(src)) {
		return 0, 0, nil, nil, codec.ErrElementCount
	}
	names := make([]string, 0, count)
	refs := make(map[string]codec.Ref, count)
	for i := uint64(0); i < count; i++ {
		name, n, err := wire.String(src)
		if err != nil {
			return 0, 0, nil, nil, err
		}
		src = src[n:]
		ref, n, err := codec.DecodeRef(src)
		if err != nil {
			return 0, 0, nil, nil, err
		}
		src = src[n:]
		names = append(names, name)
		refs[name] = ref
	}
	return epoch, int(vnodes), names, refs, nil
}

// Ref implements core.Proxy.
func (p *Proxy) Ref() codec.Ref { return p.ref }

// Close implements core.Proxy. Member proxies are shared through the
// runtime's import cache, so closing the shard proxy leaves them alone.
func (p *Proxy) Close() error {
	if p.closed.CompareAndSwap(false, true) {
		p.rt.ForgetProxy(p.ref.Target)
	}
	return nil
}

// Stats reports route and misroute counts (deployment-wide per runtime,
// since the counters live in the metrics registry).
func (p *Proxy) Stats() (routes, misroutes uint64) {
	return p.routeCalls.Load(), p.misroutes.Load()
}

// routeBackoff pauses between route retries (freezes are short).
func routeBackoff(ctx context.Context, attempt int) error {
	d := time.Duration(attempt) * 20 * time.Millisecond
	if d > 200*time.Millisecond {
		d = 200 * time.Millisecond
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// retryableRoute reports whether a member's refusal means re-routing
// can help: a stale table (misroute), a mid-rebalance freeze
// (unavailable), or a member that never answered at all — it may have
// crashed and been force-removed, so the refreshed table names its
// successor. Answered errors — including fencing — surface: the member
// is alive and meant what it said.
func retryableRoute(err error) bool {
	var ie *core.InvokeError
	if errors.As(err, &ie) {
		return ie.Code == core.CodeMisroute || ie.Code == core.CodeUnavailable
	}
	var re *kernel.RemoteError
	return !errors.As(err, &re)
}

func isMisroute(err error) bool {
	var ie *core.InvokeError
	return errors.As(err, &ie) && ie.Code == core.CodeMisroute
}

// scatterGather fans a multi-key operation out: one sub-invocation per
// argument (a string key, or an []any vector whose first element is the
// key), at most limit in flight. The result vector aligns with the
// arguments; a failed key's slot carries a *KeyError while the others
// still carry their results.
//
// rank (optional) orders the launches: keys are started lowest-rank
// first (stably, so equal ranks keep argument order). Shard layers pass
// the owner node's gray-failure score, so keys owned by degraded
// members launch last — a slow owner's sub-calls cannot occupy every
// concurrency slot and stall the healthy keys queued behind them. The
// result vector still aligns with the arguments regardless of launch
// order.
func scatterGather(ctx context.Context, method string, args []any, limit int, rank func(key string) float64, call func(ctx context.Context, key string, subArgs []any) ([]any, error)) ([]any, error) {
	type entry struct {
		key  string
		args []any
	}
	entries := make([]entry, len(args))
	for i, a := range args {
		switch x := a.(type) {
		case string:
			entries[i] = entry{key: x, args: []any{x}}
		case []any:
			if len(x) == 0 {
				return nil, core.BadArgs(method, "shard: empty key vector")
			}
			k, ok := x[0].(string)
			if !ok {
				return nil, core.BadArgs(method, fmt.Sprintf("shard: key vector must lead with a string key, got %T", x[0]))
			}
			entries[i] = entry{key: k, args: x}
		default:
			return nil, core.BadArgs(method, fmt.Sprintf("shard: multi-key argument must be a key or key vector, got %T", a))
		}
	}
	if limit <= 0 {
		limit = 8
	}
	order := make([]int, len(entries))
	for i := range order {
		order[i] = i
	}
	if rank != nil {
		ranks := make([]float64, len(entries))
		for i, e := range entries {
			ranks[i] = rank(e.key)
		}
		sort.SliceStable(order, func(a, b int) bool { return ranks[order[a]] < ranks[order[b]] })
	}
	out := make([]any, len(entries))
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for _, i := range order {
		e := entries[i]
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, e entry) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := call(ctx, e.key, e.args)
			switch {
			case err != nil:
				out[i] = &KeyError{Key: e.key, Err: err}
			case len(res) > 0:
				out[i] = res[0]
			default:
				out[i] = nil
			}
		}(i, e)
	}
	wg.Wait()
	return out, nil
}
