package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/wire"
)

// kindTable is the private frame kind serving routing-table fetches:
// proxies send their known epoch and get back the current table.
const kindTable = wire.KindCustom + 50

// rebalanceAttempts bounds how many fresh-epoch retries one membership
// change makes before giving up (each retry restarts the whole handoff;
// the steps are idempotent under a new epoch).
const rebalanceAttempts = 5

// ErrUnknownMember reports a membership operation naming no member.
var ErrUnknownMember = errors.New("shard: unknown member")

// ErrNoMembers reports routing with an empty member set.
var ErrNoMembers = errors.New("shard: no members")

// Router owns one sharded service's authoritative routing table and
// runs its rebalances. It also implements core.Service: exported under
// the shard type, it serves plain-stub clients by routing server-side,
// so a client that never registered the shard factory still reaches the
// right member (one extra hop).
type Router struct {
	rt *core.Runtime
	f  *Factory

	mu      sync.Mutex
	epoch   uint64
	ring    *Ring // committed table (nil before the first rebalance)
	members map[string]codec.Ref
	retired map[string]codec.Ref // removed, handoff still pending
	proxies map[string]core.Proxy

	// rebalanceMu serializes rebalances without blocking table reads.
	rebalanceMu sync.Mutex

	rebalances *obs.Counter
	rebalFails *obs.Counter
	keysGauge  func(member string) *obs.Gauge
}

// NewRouter builds the routing home for one sharded service. Add the
// initial members, then export the router itself through the factory:
//
//	r := shard.NewRouter(rt, f)
//	_ = r.AddMember(ctx, "m0", m0Ref)
//	ref, err := rt.ExportVia(f, r, "ShardedKV")
func NewRouter(rt *core.Runtime, f *Factory) *Router {
	scope := "shard[" + f.name + "]."
	reg := rt.Observer().Registry
	return &Router{
		rt:         rt,
		f:          f,
		members:    make(map[string]codec.Ref),
		retired:    make(map[string]codec.Ref),
		proxies:    make(map[string]core.Proxy),
		rebalances: reg.Counter(scope + "rebalance.count"),
		rebalFails: reg.Counter(scope + "rebalance.failures"),
		keysGauge:  func(m string) *obs.Gauge { return reg.Gauge(scope + "keys." + m) },
	}
}

// Name reports the shard deployment's label (the factory's WithName).
func (r *Router) Name() string { return r.f.name }

// Epoch reports the committed table epoch (0 before the first member).
func (r *Router) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Members reports the desired member names, sorted.
func (r *Router) Members() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.members))
	for n := range r.members {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AddMember admits an exported member (plain or replica-backed) as a
// shard and rebalances: key ranges the new ring assigns to it are
// frozen at their old owners, handed off, and only then does the new
// table commit.
func (r *Router) AddMember(ctx context.Context, name string, ref codec.Ref) error {
	r.mu.Lock()
	r.members[name] = ref
	delete(r.retired, name)
	r.mu.Unlock()
	return r.Rebalance(ctx)
}

// RemoveMember retires a member and rebalances its key ranges onto the
// survivors. Without force, an unreachable member aborts the change (no
// table commits, no keys are lost); with force the new table commits
// even if the member's keys could not be pulled — the right call when
// the member's node is dead and its store was not replicated elsewhere.
func (r *Router) RemoveMember(ctx context.Context, name string, force bool) error {
	r.mu.Lock()
	ref, ok := r.members[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownMember, name)
	}
	delete(r.members, name)
	r.retired[name] = ref
	r.mu.Unlock()
	err := r.rebalanceRetries(ctx, force)
	if err != nil && !force {
		// Undo: the member stays until it can be drained.
		r.mu.Lock()
		if _, readded := r.members[name]; !readded {
			r.members[name] = ref
		}
		delete(r.retired, name)
		r.mu.Unlock()
	}
	return err
}

// Rebalance recomputes the ring from the desired member set and moves
// key ranges until the table commits, retrying under fresh epochs.
func (r *Router) Rebalance(ctx context.Context) error {
	return r.rebalanceRetries(ctx, false)
}

func (r *Router) rebalanceRetries(ctx context.Context, force bool) error {
	r.rebalanceMu.Lock()
	defer r.rebalanceMu.Unlock()
	// Handoff steps are what un-hotspots an overloaded member; shedding
	// them behind the very user traffic they relieve would deadlock the
	// rebalance. Every member invocation below rides the high class.
	ctx = core.WithPriority(ctx, wire.PriorityHigh)
	var err error
	var floor uint64
	for attempt := 0; attempt < rebalanceAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Duration(attempt) * 50 * time.Millisecond):
			}
		}
		var target uint64
		if target, err = r.rebalanceOnce(ctx, floor, force); err == nil {
			return nil
		}
		// The failed attempt may have committed its epoch at some members
		// before dying; re-proposing the same epoch would be fenced there
		// forever. The next attempt must go strictly above it.
		floor = target
		r.rebalFails.Inc()
	}
	return fmt.Errorf("shard: rebalance failed after %d attempts: %w", rebalanceAttempts, err)
}

// rebalanceOnce is one epoch-fenced handoff attempt: enumerate, freeze,
// pull, push, commit, drop. A failure before the table commit leaves
// every guard on the old table (moved ranges possibly frozen — the next
// attempt's fresh epoch re-freezes and supersedes them); the commit
// itself is idempotent per guard.
func (r *Router) rebalanceOnce(ctx context.Context, floor uint64, force bool) (uint64, error) {
	r.mu.Lock()
	target := r.epoch + 1
	if target <= floor {
		target = floor + 1
	}
	desired := make(map[string]codec.Ref, len(r.members))
	for n, ref := range r.members {
		desired[n] = ref
	}
	retired := make(map[string]codec.Ref, len(r.retired))
	for n, ref := range r.retired {
		retired[n] = ref
	}
	oldRing := r.ring
	r.mu.Unlock()

	_, finish := r.rt.Tracer().StartSpan(ctx, "shard:rebalance", r.rt.Where())
	err := r.rebalanceAttempt(ctx, target, desired, retired, oldRing, force)
	finish(err)
	if err == nil {
		r.rebalances.Inc()
	}
	return target, err
}

func (r *Router) rebalanceAttempt(ctx context.Context, target uint64, desired, retired map[string]codec.Ref, oldRing *Ring, force bool) error {
	names := make([]string, 0, len(desired))
	for n := range desired {
		names = append(names, n)
	}
	sort.Strings(names)
	newRing := NewRing(names, r.f.vnodes)

	// Sources that may hold keys: every member of the committed ring plus
	// every retired member. Before the first table (no ring), the desired
	// members themselves — bootstrap data loaded at epoch 0 must settle
	// onto its owners.
	sources := make(map[string]codec.Ref)
	if oldRing != nil {
		for _, n := range oldRing.Members() {
			if ref, ok := desired[n]; ok {
				sources[n] = ref
			}
		}
	} else {
		for n, ref := range desired {
			sources[n] = ref
		}
	}
	for n, ref := range retired {
		sources[n] = ref
	}

	counts := make(map[string]int, len(desired))
	for n := range desired {
		counts[n] = 0
	}

	// Enumerate, freeze, pull, push — per source, moved keys only.
	srcNames := make([]string, 0, len(sources))
	for n := range sources {
		srcNames = append(srcNames, n)
	}
	sort.Strings(srcNames)
	for _, src := range srcNames {
		_, isRetired := retired[src]
		err := r.handoffFrom(ctx, target, src, sources[src], newRing, desired, counts)
		if err != nil {
			if isRetired && force {
				continue // accept the loss: the member is gone
			}
			return fmt.Errorf("handoff from %q: %w", src, err)
		}
	}

	// Commit the new table to every desired member; a failure here leaves
	// a mixed-epoch group, which the next attempt's strictly-newer epoch
	// resolves. Retired members get the table best-effort — it fences
	// them if they are still alive.
	for _, n := range names {
		if _, err := r.invokeMember(ctx, n, desired[n], methodTable, tableArgs(target, r.f.vnodes, names)...); err != nil {
			return fmt.Errorf("commit table to %q: %w", n, err)
		}
	}
	for n, ref := range retired {
		_, _ = r.invokeMember(ctx, n, ref, methodTable, tableArgs(target, r.f.vnodes, names)...)
	}

	r.mu.Lock()
	r.epoch = target
	r.ring = newRing
	for n := range retired {
		delete(r.retired, n)
		delete(r.proxies, n)
	}
	r.mu.Unlock()
	for n, c := range counts {
		r.keysGauge(n).Set(int64(c))
	}
	return nil
}

// handoffFrom moves every key src holds that the new ring assigns
// elsewhere. Drops at the source happen only after the commit would be
// safe — but since a failed attempt restarts wholesale, dropping here
// (pre-commit) could lose keys; instead drops are deferred until after
// the source adopts the new table, at which point the moved keys are
// unreachable there anyway (misroute-fenced). The deferred drop rides
// the same epoch as the commit.
func (r *Router) handoffFrom(ctx context.Context, target uint64, src string, srcRef codec.Ref, newRing *Ring, desired map[string]codec.Ref, counts map[string]int) error {
	res, err := r.invokeMember(ctx, src, srcRef, methodKeys, int64(target))
	if err != nil {
		return err
	}
	held, err := resultKeyList(res)
	if err != nil {
		return err
	}
	moved := make([]any, 0)
	kept := 0
	for _, k := range held {
		if newRing.Owner(k) != src {
			moved = append(moved, k)
		} else {
			kept++
		}
	}
	if _, ok := counts[src]; ok {
		counts[src] = kept
	}
	if len(moved) == 0 {
		return nil
	}
	if _, err := r.invokeMember(ctx, src, srcRef, methodFreeze, int64(target), moved); err != nil {
		return err
	}
	res, err = r.invokeMember(ctx, src, srcRef, methodPull, int64(target), moved)
	if err != nil {
		return err
	}
	kvs, err := resultKVMap(res)
	if err != nil {
		return err
	}
	// The source's dedup entries for the moved keys ride along (opaque to
	// the router) so the new owners keep exactly-once semantics across
	// the handoff. Older guards reply without the blob.
	var dedup []byte
	if len(res) > 1 {
		dedup, _ = res[1].([]byte)
	}
	byDst := make(map[string]map[string]any)
	for k, v := range kvs {
		dst := newRing.Owner(k)
		if byDst[dst] == nil {
			byDst[dst] = make(map[string]any)
		}
		byDst[dst][k] = v
	}
	dsts := make([]string, 0, len(byDst))
	for d := range byDst {
		dsts = append(dsts, d)
	}
	sort.Strings(dsts)
	for _, dst := range dsts {
		ref, ok := desired[dst]
		if !ok {
			return fmt.Errorf("key range owner %q is not a member", dst)
		}
		if _, err := r.invokeMember(ctx, dst, ref, methodPush, int64(target), byDst[dst], dedup); err != nil {
			return err
		}
		counts[dst] += len(byDst[dst])
	}
	// Deferred cleanup: drop travels with the commit epoch, so a guard
	// only honors it once it has (at least) the new table.
	go r.dropLater(src, srcRef, target, moved)
	return nil
}

// dropLater discards moved keys at their old owner after the commit.
// Best-effort: a missed drop leaves dead state behind the misroute
// fence, re-collected by the next rebalance's enumeration.
func (r *Router) dropLater(src string, srcRef codec.Ref, target uint64, moved []any) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ctx = core.WithPriority(ctx, wire.PriorityHigh)
	_, _ = r.invokeMember(ctx, src, srcRef, methodDrop, int64(target), moved)
}

func tableArgs(target uint64, vnodes int, names []string) []any {
	ms := make([]any, len(names))
	for i, n := range names {
		ms[i] = n
	}
	return []any{int64(target), int64(vnodes), ms}
}

// invokeMember calls one member through its own proxy factory (stub,
// replica proxy, ...), which is what lets handoff steps ride the
// member's replication and failover machinery.
func (r *Router) invokeMember(ctx context.Context, name string, ref codec.Ref, method string, args ...any) ([]any, error) {
	p, err := r.memberProxy(name, ref)
	if err != nil {
		return nil, err
	}
	return p.Invoke(ctx, method, args...)
}

func (r *Router) memberProxy(name string, ref codec.Ref) (core.Proxy, error) {
	r.mu.Lock()
	if p, ok := r.proxies[name]; ok {
		r.mu.Unlock()
		return p, nil
	}
	r.mu.Unlock()
	p, err := r.rt.Import(ref)
	if err != nil {
		return nil, fmt.Errorf("shard: import member %q: %w", name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prior, ok := r.proxies[name]; ok {
		return prior, nil
	}
	r.proxies[name] = p
	return p, nil
}

func resultKeyList(res []any) ([]string, error) {
	if len(res) == 0 {
		return nil, nil
	}
	raw, ok := res[0].([]any)
	if !ok {
		return nil, fmt.Errorf("shard: malformed key enumeration (%T)", res[0])
	}
	keys := make([]string, 0, len(raw))
	for _, v := range raw {
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("shard: malformed key enumeration element (%T)", v)
		}
		keys = append(keys, s)
	}
	return keys, nil
}

func resultKVMap(res []any) (map[string]any, error) {
	if len(res) == 0 {
		return nil, nil
	}
	m, ok := res[0].(map[string]any)
	if !ok {
		return nil, fmt.Errorf("shard: malformed pulled state (%T)", res[0])
	}
	return m, nil
}

// table snapshots the committed routing table for proxies and the
// status service.
func (r *Router) table() (uint64, *Ring, map[string]codec.Ref) {
	r.mu.Lock()
	defer r.mu.Unlock()
	members := make(map[string]codec.Ref, len(r.members))
	for n, ref := range r.members {
		members[n] = ref
	}
	return r.epoch, r.ring, members
}

// Invoke implements core.Service: the router facade. Plain-stub clients
// invoke the sharded service as if it were one object; the router
// routes server-side, so the shard layout stays invisible to them.
func (r *Router) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	if isReserved(method) {
		return nil, core.Errorf(core.CodeDenied, method, "shard: reserved method")
	}
	if single, ok := r.f.spec.singleFor(method); ok {
		return r.scatterFacade(ctx, method, single, args)
	}
	if !r.f.single[method] {
		return nil, core.NoSuchMethod(method)
	}
	key, err := keyOf(method, args)
	if err != nil {
		return nil, err
	}
	return r.routeKey(ctx, method, key, args)
}

// routeKey routes one single-key invocation from the authoritative
// table. Misroutes and freezes can still happen concurrently with a
// rebalance; both re-read the (possibly advanced) table and retry.
func (r *Router) routeKey(ctx context.Context, method, key string, args []any) ([]any, error) {
	ctx, finish := r.rt.Tracer().StartChild(ctx, "shard:route", r.rt.Where())
	res, err := r.routeKeyLocked(ctx, method, key, args)
	finish(err)
	return res, err
}

func (r *Router) routeKeyLocked(ctx context.Context, method, key string, args []any) ([]any, error) {
	var lastErr error
	for attempt := 0; attempt < routeAttempts; attempt++ {
		if attempt > 0 {
			if err := routeBackoff(ctx, attempt); err != nil {
				return nil, err
			}
		}
		_, ring, members := r.table()
		if ring == nil || len(members) == 0 {
			return nil, ErrNoMembers
		}
		owner := ring.Owner(key)
		ref, ok := members[owner]
		if !ok {
			lastErr = fmt.Errorf("%w: owner %q", ErrUnknownMember, owner)
			continue
		}
		res, err := r.invokeMember(ctx, owner, ref, method, args...)
		if err == nil || !retryableRoute(err) {
			return res, err
		}
		lastErr = err
	}
	return nil, lastErr
}

func (r *Router) scatterFacade(ctx context.Context, method, single string, args []any) ([]any, error) {
	out, err := scatterGather(ctx, method, args, r.f.scatterLimit, r.ownerScore, func(ctx context.Context, key string, subArgs []any) ([]any, error) {
		return r.routeKey(ctx, single, key, subArgs)
	})
	if err != nil {
		return nil, err
	}
	// Crossing back to a stub client: lower per-key errors to their wire
	// form.
	for i, v := range out {
		if ke, ok := v.(*KeyError); ok {
			out[i] = ke.lower()
		}
	}
	return out, nil
}

// ownerScore ranks a key for scatter launch order by its owner node's
// gray-failure score.
func (r *Router) ownerScore(key string) float64 {
	_, ring, members := r.table()
	if ring == nil {
		return 0
	}
	ref, ok := members[ring.Owner(key)]
	if !ok {
		return 0
	}
	return r.rt.HealthScore(ref.Target.Addr.Node)
}

// handleTable serves kindTable fetches from shard proxies.
func (r *Router) handleTable() func(payload []byte) (wire.Kind, []byte, []byte) {
	return func(payload []byte) (wire.Kind, []byte, []byte) {
		epoch, ring, members := r.table()
		names := []string(nil)
		if ring != nil {
			names = ring.Members()
		}
		buf := wire.AppendUvarint(nil, epoch)
		buf = wire.AppendUvarint(buf, uint64(r.f.vnodes))
		buf = wire.AppendUvarint(buf, uint64(len(names)))
		for _, n := range names {
			buf = wire.AppendString(buf, n)
			ref, ok := members[n]
			if !ok {
				return 0, nil, core.EncodeInvokeError("shard.table",
					core.Errorf(core.CodeUnavailable, "shard.table", "shard: member %q mid-change", n))
			}
			buf = codec.AppendRef(buf, ref)
		}
		return kindTable, buf, nil
	}
}

// watchHealth auto-retires members whose node the failure detector
// declares dead (factory option WithAutoRemove). Replica-backed members
// usually should not enable this: their groups fail over on their own,
// and the member ref stays routable through promotion.
func (r *Router) watchHealth() {
	mon := r.rt.Health()
	if mon == nil {
		return
	}
	mon.Subscribe(func(node wire.NodeID, from, to health.State) {
		if to != health.StateDead {
			return
		}
		go r.retireNode(node)
	})
}

func (r *Router) retireNode(node wire.NodeID) {
	r.mu.Lock()
	var victims []string
	for n, ref := range r.members {
		if ref.Target.Addr.Node == node {
			victims = append(victims, n)
		}
	}
	r.mu.Unlock()
	for _, n := range victims {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		_ = r.RemoveMember(ctx, n, true)
		cancel()
	}
}

func isReserved(method string) bool {
	switch method {
	case methodKeys, methodFreeze, methodPull, methodPush, methodTable, methodDrop:
		return true
	}
	return false
}
