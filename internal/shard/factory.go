package shard

import (
	"fmt"
	"sort"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// FactoryOption configures a Factory.
type FactoryOption func(*Factory)

// WithVirtualNodes sets the ring's per-member virtual-node count
// (default DefaultVirtualNodes). Every runtime of a deployment must
// agree — the value travels in the table, so only the router's matters.
func WithVirtualNodes(n int) FactoryOption {
	return func(f *Factory) {
		if n > 0 {
			f.vnodes = n
		}
	}
}

// WithScatterLimit bounds how many per-key sub-invocations a multi-key
// operation has in flight at once (default 8).
func WithScatterLimit(n int) FactoryOption {
	return func(f *Factory) {
		if n > 0 {
			f.scatterLimit = n
		}
	}
}

// WithName labels the deployment in metrics and the shard status
// service (default "shard").
func WithName(name string) FactoryOption {
	return func(f *Factory) { f.name = name }
}

// WithAutoRemove retires members whose node the runtime's health
// monitor (core.WithHealth) declares dead, force-rebalancing their key
// ranges onto the survivors. Meant for plain-export members; leave it
// off for replica-backed members, whose groups fail over by themselves
// and stay routable through a promotion.
func WithAutoRemove() FactoryOption {
	return func(f *Factory) { f.autoRemove = true }
}

// Factory is the sharded proxy factory. The service side constructs it
// with the keyspace Spec; every importing runtime registers the same
// factory (the spec itself travels in the reference hint, so a client
// factory built with a zero Spec still routes correctly).
// Implements core.ProxyFactory.
type Factory struct {
	spec         Spec
	single       map[string]bool
	vnodes       int
	scatterLimit int
	name         string
	autoRemove   bool
}

var _ core.ProxyFactory = (*Factory)(nil)

// NewFactory builds a sharding factory for services with the given
// keyspace spec.
func NewFactory(spec Spec, opts ...FactoryOption) *Factory {
	f := &Factory{
		spec:         spec,
		single:       spec.singleSet(),
		vnodes:       DefaultVirtualNodes,
		scatterLimit: 8,
		name:         "shard",
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// Export implements the server half of core.ProxyFactory: the exported
// service must be this deployment's Router. It registers the table
// control object and embeds the routing bootstrap (control id, spec,
// scatter limit) as the reference's private hint.
func (f *Factory) Export(rt *core.Runtime, svc core.Service, ref codec.Ref) (core.Service, []byte, error) {
	r, ok := svc.(*Router)
	if !ok {
		return nil, nil, fmt.Errorf("shard: exported service must be a *shard.Router, got %T", svc)
	}
	srv := rpc.NewServer(rpc.HandlerFunc(func(req *rpc.Request) (wire.Kind, []byte, []byte) {
		if req.Kind != kindTable {
			return 0, nil, core.EncodeInvokeError("", core.Errorf(core.CodeInternal, "", "shard: unexpected kind %v", req.Kind))
		}
		return r.handleTable()(req.Frame.Payload)
	}))
	ctrl := rt.Kernel().Register(srv)
	registerStatus(rt, r)
	if f.autoRemove {
		r.watchHealth()
	}
	h := shardHint{Ctrl: ctrl, Spec: f.spec, ScatterLimit: f.scatterLimit, Name: f.name}
	return nil, h.encode(), nil
}

// New implements core.ProxyFactory: build the routing proxy from the
// reference's hint. The proxy fetches the routing table lazily and
// refreshes it whenever a member fences a misrouted key.
func (f *Factory) New(rt *core.Runtime, ref codec.Ref) (core.Proxy, error) {
	h, err := decodeShardHint(ref.Hint)
	if err != nil {
		return nil, fmt.Errorf("shard: bad hint in %s: %w", ref, err)
	}
	return newProxy(rt, ref, h), nil
}

// shardHint is the private bootstrap blob in a sharded reference.
type shardHint struct {
	Ctrl         wire.ObjectID
	Spec         Spec
	ScatterLimit int
	Name         string
}

func (h shardHint) encode() []byte {
	buf := wire.AppendUvarint(nil, uint64(h.Ctrl))
	buf = wire.AppendUvarint(buf, uint64(h.ScatterLimit))
	buf = wire.AppendString(buf, h.Name)
	buf = wire.AppendUvarint(buf, uint64(len(h.Spec.SingleKey)))
	for _, m := range h.Spec.SingleKey {
		buf = wire.AppendString(buf, m)
	}
	multi := make([]string, 0, len(h.Spec.MultiKey))
	for m := range h.Spec.MultiKey {
		multi = append(multi, m)
	}
	sort.Strings(multi)
	buf = wire.AppendUvarint(buf, uint64(len(multi)))
	for _, m := range multi {
		buf = wire.AppendString(buf, m)
		buf = wire.AppendString(buf, h.Spec.MultiKey[m])
	}
	return buf
}

func decodeShardHint(src []byte) (shardHint, error) {
	var h shardHint
	ctrl, n, err := wire.Uvarint(src)
	if err != nil {
		return h, err
	}
	src = src[n:]
	h.Ctrl = wire.ObjectID(ctrl)
	limit, n, err := wire.Uvarint(src)
	if err != nil {
		return h, err
	}
	src = src[n:]
	h.ScatterLimit = int(limit)
	h.Name, n, err = wire.String(src)
	if err != nil {
		return h, err
	}
	src = src[n:]
	count, n, err := wire.Uvarint(src)
	if err != nil {
		return h, err
	}
	src = src[n:]
	if count > uint64(len(src)) {
		return h, codec.ErrElementCount
	}
	for i := uint64(0); i < count; i++ {
		s, n, err := wire.String(src)
		if err != nil {
			return h, err
		}
		src = src[n:]
		h.Spec.SingleKey = append(h.Spec.SingleKey, s)
	}
	count, n, err = wire.Uvarint(src)
	if err != nil {
		return h, err
	}
	src = src[n:]
	if count > uint64(len(src)) {
		return h, codec.ErrElementCount
	}
	h.Spec.MultiKey = make(map[string]string, count)
	for i := uint64(0); i < count; i++ {
		k, n, err := wire.String(src)
		if err != nil {
			return h, err
		}
		src = src[n:]
		v, n, err := wire.String(src)
		if err != nil {
			return h, err
		}
		src = src[n:]
		h.Spec.MultiKey[k] = v
	}
	return h, nil
}
