package shard

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// shardWorld is a simulated deployment: one router node, one node per
// member (plain guard exports reached through the default stub), and
// client runtimes that register the shard factory.
type shardWorld struct {
	t       *testing.T
	mk      func(id wire.NodeID) *core.Runtime
	factory *Factory
	router  *Router

	routerRT *core.Runtime
	stores   map[string]*kvStore
	guards   map[string]*Guard
	refs     map[string]codec.Ref
	clients  []*core.Runtime
	ref      codec.Ref

	nextID wire.NodeID
}

func newShardWorld(t *testing.T, members, nClients int, opts ...FactoryOption) *shardWorld {
	t.Helper()
	net := netsim.New()
	t.Cleanup(net.Close)
	w := &shardWorld{
		t:      t,
		stores: make(map[string]*kvStore),
		guards: make(map[string]*Guard),
		refs:   make(map[string]codec.Ref),
		nextID: 1,
	}
	w.factory = NewFactory(testSpec, append([]FactoryOption{WithName("kv")}, opts...)...)
	w.mk = func(id wire.NodeID) *core.Runtime {
		ep, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		node := kernel.NewNode(ep)
		t.Cleanup(func() { node.Close() })
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		return core.NewRuntime(ktx)
	}
	w.routerRT = w.mk(w.nextID)
	w.nextID++
	w.router = NewRouter(w.routerRT, w.factory)
	for i := 0; i < members; i++ {
		w.addMember(fmt.Sprintf("m%d", i))
	}
	ref, err := w.routerRT.ExportVia(w.factory, w.router, "ShardedKV")
	if err != nil {
		t.Fatal(err)
	}
	w.ref = ref
	for i := 0; i < nClients; i++ {
		rt := w.mk(w.nextID)
		w.nextID++
		// A zero-spec client factory: the spec travels in the reference
		// hint, so importing runtimes need no keyspace knowledge.
		rt.RegisterProxyType("ShardedKV", NewFactory(Spec{}))
		w.clients = append(w.clients, rt)
	}
	return w
}

// addMember stands up a new member node (plain guard export) and admits
// it to the deployment.
func (w *shardWorld) addMember(name string) {
	w.t.Helper()
	rt := w.mk(w.nextID)
	w.nextID++
	st := newKVStore()
	g := NewGuard(name, testSpec, st)
	ref, err := rt.Export(g, "KVMember")
	if err != nil {
		w.t.Fatal(err)
	}
	w.stores[name] = st
	w.guards[name] = g
	w.refs[name] = ref
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := w.router.AddMember(ctx, name, ref); err != nil {
		w.t.Fatalf("add member %s: %v", name, err)
	}
}

func (w *shardWorld) proxy(t *testing.T, i int) *Proxy {
	t.Helper()
	p, err := w.clients[i].Import(w.ref)
	if err != nil {
		t.Fatal(err)
	}
	sp, ok := p.(*Proxy)
	if !ok {
		t.Fatalf("import produced %T, want *shard.Proxy", p)
	}
	return sp
}

// waitFor polls until cond holds (the handoff's drop step is async).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestShardRoutesToOwners(t *testing.T) {
	w := newShardWorld(t, 3, 1)
	p := w.proxy(t, 0)
	ctx := context.Background()
	const n = 60
	for i := 0; i < n; i++ {
		if _, err := p.Invoke(ctx, "put", fmt.Sprintf("key-%d", i), int64(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		res, err := p.Invoke(ctx, "get", fmt.Sprintf("key-%d", i))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if res[0] != int64(i) {
			t.Fatalf("get %d = %v", i, res[0])
		}
	}
	// Every key landed at exactly its ring owner: no write ever slipped
	// past a guard onto the wrong member.
	ring := NewRing([]string{"m0", "m1", "m2"}, w.factory.vnodes)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		owner := ring.Owner(k)
		if v, ok := w.stores[owner].get(k); !ok || v != int64(i) {
			t.Errorf("key %q missing at owner %s (got %v, %v)", k, owner, v, ok)
		}
		for name, st := range w.stores {
			if name == owner {
				continue
			}
			if _, ok := st.get(k); ok {
				t.Errorf("key %q leaked onto non-owner %s", k, name)
			}
		}
	}
	routes, misroutes := p.Stats()
	if routes == 0 {
		t.Error("route counter never incremented")
	}
	if misroutes != 0 {
		t.Errorf("misroutes = %d on a stable table", misroutes)
	}
}

func TestShardScatterGatherEndToEnd(t *testing.T) {
	w := newShardWorld(t, 3, 1)
	p := w.proxy(t, 0)
	ctx := context.Background()

	// Multi-key write: key vectors carry the per-key arguments.
	res, err := p.Invoke(ctx, "mput",
		[]any{"a", int64(1)}, []any{"b", int64(2)}, []any{"c", int64(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("mput result length %d", len(res))
	}
	// Multi-key read: bare keys; a missing key reads its zero value.
	res, err = p.Invoke(ctx, "mget", "a", "b", "zzz")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 0}
	for i, v := range res {
		if v != want[i] {
			t.Errorf("mget[%d] = %v, want %d", i, v, want[i])
		}
	}
	// Partial failure: "fail" errors only for bad- keys; the other slots
	// still carry their results.
	res, err = p.Invoke(ctx, "mfail", "a", "bad-x", "b")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != int64(1) || res[2] != int64(2) {
		t.Errorf("healthy slots = %v, %v, want 1, 2", res[0], res[2])
	}
	ke, ok := AsKeyError(res[1])
	if !ok {
		t.Fatalf("res[1] = %T, want a key error", res[1])
	}
	if ke.Key != "bad-x" {
		t.Errorf("key error names %q, want bad-x", ke.Key)
	}
}

func TestShardMisrouteRefreshesTable(t *testing.T) {
	w := newShardWorld(t, 2, 1)
	p := w.proxy(t, 0)
	ctx := context.Background()
	if _, err := p.Invoke(ctx, "put", "warm", int64(1)); err != nil {
		t.Fatal(err)
	}
	before := p.Epoch()
	if before == 0 {
		t.Fatal("proxy never fetched a table")
	}

	// Grow the deployment behind the proxy's back.
	w.addMember("m2")

	// A key the new ring gives to m2 routes (per the stale table) to an
	// old owner, whose guard refuses with a misroute; the proxy must
	// refresh and re-route without surfacing the error.
	ringNew := NewRing([]string{"m0", "m1", "m2"}, w.factory.vnodes)
	k := ownedKey(t, ringNew, "m2")
	if _, err := p.Invoke(ctx, "put", k, int64(9)); err != nil {
		t.Fatalf("put after membership change: %v", err)
	}
	if p.Epoch() <= before {
		t.Errorf("epoch did not advance past %d after misroute", before)
	}
	if _, misroutes := p.Stats(); misroutes == 0 {
		t.Error("misroute counter never incremented")
	}
	if v, ok := w.stores["m2"].get(k); !ok || v != 9 {
		t.Errorf("key %q at new owner = %v, %v", k, v, ok)
	}
}

func TestShardRebalancePreservesData(t *testing.T) {
	w := newShardWorld(t, 2, 1)
	p := w.proxy(t, 0)
	ctx := context.Background()
	const n = 80
	for i := 0; i < n; i++ {
		if _, err := p.Invoke(ctx, "put", fmt.Sprintf("key-%d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.addMember("m2")
	// Every acked write survives the rebalance.
	for i := 0; i < n; i++ {
		res, err := p.Invoke(ctx, "get", fmt.Sprintf("key-%d", i))
		if err != nil {
			t.Fatalf("get key-%d after rebalance: %v", i, err)
		}
		if res[0] != int64(i) {
			t.Fatalf("key-%d = %v after rebalance", i, res[0])
		}
	}
	// Once the async drop completes, each store holds only keys it owns.
	ring := NewRing([]string{"m0", "m1", "m2"}, w.factory.vnodes)
	waitFor(t, "old owners to drop moved keys", func() bool {
		for name, st := range w.stores {
			for _, k := range st.Keys() {
				if ring.Owner(k) != name {
					return false
				}
			}
		}
		return true
	})
	if len(w.stores["m2"].Keys()) == 0 {
		t.Error("new member received no key ranges")
	}
}

func TestShardRemoveMemberDrains(t *testing.T) {
	w := newShardWorld(t, 3, 1)
	p := w.proxy(t, 0)
	ctx := context.Background()
	const n = 60
	for i := 0; i < n; i++ {
		if _, err := p.Invoke(ctx, "put", fmt.Sprintf("key-%d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.router.RemoveMember(ctx, "m2", false); err != nil {
		t.Fatalf("remove m2: %v", err)
	}
	for i := 0; i < n; i++ {
		res, err := p.Invoke(ctx, "get", fmt.Sprintf("key-%d", i))
		if err != nil {
			t.Fatalf("get key-%d after drain: %v", i, err)
		}
		if res[0] != int64(i) {
			t.Fatalf("key-%d = %v after drain", i, res[0])
		}
	}
	waitFor(t, "retired member to drain", func() bool {
		return len(w.stores["m2"].Keys()) == 0
	})
	// The retired member is fenced: even a protocol step at the committed
	// epoch is refused, so a deposed owner cannot re-enter the handoff.
	_, err := w.guards["m2"].Invoke(ctx, methodKeys, []any{int64(w.router.Epoch())})
	invokeCode(t, err, core.CodeFenced)
}

func TestShardFacadeServesPlainStubs(t *testing.T) {
	w := newShardWorld(t, 2, 0)
	ctx := context.Background()
	// This client never registers the shard factory: its import falls to
	// the default stub, and the router routes server-side.
	rt := w.mk(w.nextID)
	w.nextID++
	p, err := rt.Import(w.ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*Proxy); ok {
		t.Fatal("plain client built a shard proxy — the facade path is untested")
	}
	if _, err := p.Invoke(ctx, "put", "fk", int64(5)); err != nil {
		t.Fatalf("facade put: %v", err)
	}
	res, err := p.Invoke(ctx, "get", "fk")
	if err != nil || res[0] != int64(5) {
		t.Fatalf("facade get = %v, %v", res, err)
	}
	ring := NewRing([]string{"m0", "m1"}, w.factory.vnodes)
	if v, ok := w.stores[ring.Owner("fk")].get("fk"); !ok || v != 5 {
		t.Errorf("facade write did not land on the owner (got %v, %v)", v, ok)
	}
	// Scatter-gather through the facade, with a per-key failure crossing
	// the wire in its lowered struct form.
	res, err = p.Invoke(ctx, "mfail", "fk", "bad-y")
	if err != nil {
		t.Fatalf("facade mfail: %v", err)
	}
	if res[0] != int64(5) {
		t.Errorf("facade mfail[0] = %v, want 5", res[0])
	}
	ke, ok := AsKeyError(res[1])
	if !ok {
		t.Fatalf("facade mfail[1] = %T, want a lowered key error", res[1])
	}
	if ke.Key != "bad-y" {
		t.Errorf("lowered key error names %q, want bad-y", ke.Key)
	}
	// Reserved protocol methods never cross the facade.
	_, err = p.Invoke(ctx, methodFreeze, int64(99), []any{"fk"})
	invokeCode(t, err, core.CodeDenied)
}

func TestShardStatusService(t *testing.T) {
	w := newShardWorld(t, 2, 1)
	ctx := context.Background()
	svc := NewService(w.routerRT)
	res, err := svc.Invoke(ctx, "status", nil)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := res[0].(string)
	for _, want := range []string{"kv", "m0", "m1"} {
		if !strings.Contains(out, want) {
			t.Errorf("status output missing %q:\n%s", want, out)
		}
	}

	// Admit a member through the control surface.
	rt := w.mk(w.nextID)
	w.nextID++
	st := newKVStore()
	g := NewGuard("m2", testSpec, st)
	ref, err := rt.Export(g, "KVMember")
	if err != nil {
		t.Fatal(err)
	}
	w.stores["m2"], w.guards["m2"], w.refs["m2"] = st, g, ref
	if _, err := svc.Invoke(ctx, "add", []any{"kv", "m2", ref}); err != nil {
		t.Fatalf("add via service: %v", err)
	}
	if got := w.router.Members(); len(got) != 3 {
		t.Fatalf("members after add = %v", got)
	}
	if _, err := svc.Invoke(ctx, "remove", []any{"kv", "m2"}); err != nil {
		t.Fatalf("remove via service: %v", err)
	}
	if got := w.router.Members(); len(got) != 2 {
		t.Fatalf("members after remove = %v", got)
	}
	// Unknown deployments and malformed refs are refused.
	if _, err := svc.Invoke(ctx, "add", []any{"nope", "m9", ref}); err == nil {
		t.Error("add to unknown shard succeeded")
	}
	if _, err := svc.Invoke(ctx, "add", []any{"kv", "m9", "not-a-ref"}); err == nil {
		t.Error("add with a bogus ref succeeded")
	}
}

func TestShardBootstrapDataSettlesOntoOwners(t *testing.T) {
	// Data loaded into a member before the first table (epoch 0 accepts
	// everything) must settle onto its ring owners at the first rebalance.
	w := newShardWorld(t, 0, 1)
	rt := w.mk(w.nextID)
	w.nextID++
	st := newKVStore()
	g := NewGuard("m0", testSpec, st)
	ctx := context.Background()
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := g.Invoke(ctx, "put", []any{fmt.Sprintf("key-%d", i), int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := rt.Export(g, "KVMember")
	if err != nil {
		t.Fatal(err)
	}
	w.stores["m0"], w.guards["m0"], w.refs["m0"] = st, g, ref
	if err := w.router.AddMember(ctx, "m0", ref); err != nil {
		t.Fatal(err)
	}
	w.addMember("m1")

	p := w.proxy(t, 0)
	for i := 0; i < n; i++ {
		res, err := p.Invoke(ctx, "get", fmt.Sprintf("key-%d", i))
		if err != nil {
			t.Fatalf("get key-%d: %v", i, err)
		}
		if res[0] != int64(i) {
			t.Fatalf("key-%d = %v after bootstrap rebalance", i, res[0])
		}
	}
	if len(w.stores["m1"].Keys()) == 0 {
		t.Error("no bootstrap keys settled onto the second member")
	}
}

// TestShardFactoryOptionsAndProxyLifecycle exercises the factory options
// (virtual-node count and scatter limit travel in the reference hint)
// and the proxy's Ref/Close contract.
func TestShardFactoryOptionsAndProxyLifecycle(t *testing.T) {
	w := newShardWorld(t, 2, 1, WithVirtualNodes(32), WithScatterLimit(3), WithAutoRemove())
	p := w.proxy(t, 0)
	ctx := context.Background()
	if _, err := p.Invoke(ctx, "put", "k", int64(1)); err != nil {
		t.Fatal(err)
	}
	if got := p.Ref(); got.Target != w.ref.Target {
		t.Fatalf("proxy ref targets %v, want %v", got.Target, w.ref.Target)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(ctx, "get", "k"); err != core.ErrProxyClosed {
		t.Fatalf("invoke after close: %v, want ErrProxyClosed", err)
	}
	ke := &KeyError{Key: "k", Err: core.NoSuchMethod("zap")}
	if msg := ke.Error(); !strings.Contains(msg, `"k"`) || !strings.Contains(msg, "zap") {
		t.Fatalf("KeyError.Error() = %q", msg)
	}
}
