package shard

import (
	"errors"
	"fmt"

	"repro/internal/codec"
	"repro/internal/core"
)

// Spec declares how a service's methods relate to its keyspace — the
// routing contract between the sharded proxy and the member guards.
//
// SingleKey methods take the key as their first argument (a string) and
// are routed to the owning shard. MultiKey methods fan out: each
// argument addresses one key — either a bare string key or an []any
// vector whose first element is the key — and is rewritten into one
// invocation of the mapped single-key method ("mget" → "get") on the
// key's owner. Methods in neither set are refused: a sharded service has
// no single context that could answer them.
type Spec struct {
	SingleKey []string
	MultiKey  map[string]string
}

func (s Spec) singleSet() map[string]bool {
	m := make(map[string]bool, len(s.SingleKey))
	for _, k := range s.SingleKey {
		m[k] = true
	}
	return m
}

// singleFor reports the single-key method a multi-key method maps to.
func (s Spec) singleFor(method string) (string, bool) {
	m, ok := s.MultiKey[method]
	return m, ok
}

// keyOf extracts the routing key of a single-key invocation.
func keyOf(method string, args []any) (string, error) {
	if len(args) == 0 {
		return "", core.BadArgs(method, "shard: keyed method needs a string key as first argument")
	}
	k, ok := args[0].(string)
	if !ok {
		return "", core.BadArgs(method, fmt.Sprintf("shard: key must be a string, got %T", args[0]))
	}
	return k, nil
}

// keyErrorStruct is the wire name KeyError values lower to when a
// scatter-gather result crosses a context boundary (the router facade
// serving plain-stub clients).
const keyErrorStruct = "shard.KeyError"

// KeyError is one key's failure inside a scatter-gather result vector:
// the other keys' results are still present at their positions. It
// unwraps to the underlying invocation error.
type KeyError struct {
	Key string
	Err error
}

// Error implements error.
func (e *KeyError) Error() string {
	return fmt.Sprintf("shard: key %q: %v", e.Key, e.Err)
}

// Unwrap exposes the underlying invocation error to errors.As/Is.
func (e *KeyError) Unwrap() error { return e.Err }

// lower converts the KeyError to its wire form.
func (e *KeyError) lower() *codec.Struct {
	code := core.CodeApp
	var ie *core.InvokeError
	if errors.As(e.Err, &ie) {
		code = ie.Code
	}
	return &codec.Struct{Name: keyErrorStruct, Fields: []codec.Field{
		{Name: "key", Value: e.Key},
		{Name: "code", Value: int64(code)},
		{Name: "msg", Value: e.Err.Error()},
	}}
}

// AsKeyError recognizes a per-key failure inside a scatter-gather result
// vector, whether it arrived in-process (*KeyError) or across the wire
// (a codec.Struct named shard.KeyError).
func AsKeyError(v any) (*KeyError, bool) {
	switch x := v.(type) {
	case *KeyError:
		return x, true
	case *codec.Struct:
		if x.Name != keyErrorStruct {
			return nil, false
		}
		ke := &KeyError{}
		code, msg := int64(core.CodeApp), ""
		if k, ok := x.Get("key"); ok {
			ke.Key, _ = k.(string)
		}
		if c, ok := x.Get("code"); ok {
			code, _ = c.(int64)
		}
		if m, ok := x.Get("msg"); ok {
			msg, _ = m.(string)
		}
		ke.Err = &core.InvokeError{Code: core.Code(code), Msg: msg}
		return ke, true
	default:
		return nil, false
	}
}
