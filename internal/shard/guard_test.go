package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
)

// kvStore is the test keyspace: a string→int64 map implementing Store
// and the replica state-machine surface.
type kvStore struct {
	mu sync.Mutex
	m  map[string]int64
}

func newKVStore() *kvStore { return &kvStore{m: make(map[string]int64)} }

func (s *kvStore) Invoke(_ context.Context, method string, args []any) ([]any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch method {
	case "get":
		k, _ := args[0].(string)
		return []any{s.m[k]}, nil
	case "put":
		k, _ := args[0].(string)
		v, _ := args[1].(int64)
		s.m[k] = v
		return []any{v}, nil
	case "fail":
		// Fails only for "bad-" keys, so multi-key tests can exercise
		// partial failure in one fan-out.
		k, _ := args[0].(string)
		if strings.HasPrefix(k, "bad-") {
			return nil, core.Errorf(core.CodeApp, method, "induced failure for %q", k)
		}
		return []any{s.m[k]}, nil
	default:
		return nil, core.NoSuchMethod(method)
	}
}

func (s *kvStore) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (s *kvStore) ExportKeys(keys []string) (map[string][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		if v, ok := s.m[k]; ok {
			b, err := codec.Marshal(v)
			if err != nil {
				return nil, err
			}
			out[k] = b
		}
	}
	return out, nil
}

func (s *kvStore) ImportKeys(kvs map[string][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, b := range kvs {
		var v int64
		if err := codec.Unmarshal(b, &v); err != nil {
			return err
		}
		s.m[k] = v
	}
	return nil
}

func (s *kvStore) DropKeys(keys []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		delete(s.m, k)
	}
	return nil
}

func (s *kvStore) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return codec.Marshal(s.m)
}

func (s *kvStore) Restore(data []byte) error {
	var m map[string]int64
	if err := codec.Unmarshal(data, &m); err != nil {
		return err
	}
	if m == nil {
		m = make(map[string]int64)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = m
	return nil
}

func (s *kvStore) get(k string) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[k]
	return v, ok
}

var testSpec = Spec{
	SingleKey: []string{"get", "put", "fail"},
	MultiKey:  map[string]string{"mget": "get", "mput": "put", "mfail": "fail"},
}

func invokeCode(t *testing.T, err error, want core.Code) {
	t.Helper()
	var ie *core.InvokeError
	if !errors.As(err, &ie) {
		t.Fatalf("error = %v, want InvokeError code %v", err, want)
	}
	if ie.Code != want {
		t.Fatalf("code = %v, want %v (err: %v)", ie.Code, want, ie)
	}
}

// ownedKey finds a key the ring assigns to member.
func ownedKey(t *testing.T, r *Ring, member string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("ok-%d", i)
		if r.Owner(k) == member {
			return k
		}
	}
	t.Fatal("no key found for member")
	return ""
}

// notOwnedKey finds a key the ring assigns to someone else.
func notOwnedKey(t *testing.T, r *Ring, member string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("nk-%d", i)
		if r.Owner(k) != member {
			return k
		}
	}
	t.Fatal("every key belongs to the member")
	return ""
}

func commitTable(t *testing.T, g *Guard, epoch uint64, members ...string) {
	t.Helper()
	ms := make([]any, len(members))
	for i, m := range members {
		ms[i] = m
	}
	if _, err := g.Invoke(context.Background(), methodTable, []any{int64(epoch), int64(16), ms}); err != nil {
		t.Fatalf("commit table: %v", err)
	}
}

func TestGuardEpochZeroAcceptsEverything(t *testing.T) {
	g := NewGuard("m0", testSpec, newKVStore())
	if _, err := g.Invoke(context.Background(), "put", []any{"anything", int64(1)}); err != nil {
		t.Fatalf("pre-table write refused: %v", err)
	}
}

func TestGuardMisrouteAndOwnership(t *testing.T) {
	ctx := context.Background()
	g := NewGuard("m0", testSpec, newKVStore())
	commitTable(t, g, 1, "m0", "m1")
	ring := NewRing([]string{"m0", "m1"}, 16)

	mine := ownedKey(t, ring, "m0")
	if _, err := g.Invoke(ctx, "put", []any{mine, int64(7)}); err != nil {
		t.Fatalf("owned write refused: %v", err)
	}
	theirs := notOwnedKey(t, ring, "m0")
	_, err := g.Invoke(ctx, "put", []any{theirs, int64(7)})
	invokeCode(t, err, core.CodeMisroute)
	_, err = g.Invoke(ctx, "get", []any{theirs})
	invokeCode(t, err, core.CodeMisroute)
}

func TestGuardFreezeBlocksThenTableThaws(t *testing.T) {
	ctx := context.Background()
	g := NewGuard("m0", testSpec, newKVStore())
	commitTable(t, g, 1, "m0")
	ring := NewRing([]string{"m0"}, 16)
	k := ownedKey(t, ring, "m0")
	if _, err := g.Invoke(ctx, "put", []any{k, int64(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Invoke(ctx, methodFreeze, []any{int64(2), []any{k}}); err != nil {
		t.Fatalf("freeze: %v", err)
	}
	_, err := g.Invoke(ctx, "put", []any{k, int64(2)})
	invokeCode(t, err, core.CodeUnavailable)
	// Commit (same member set, new epoch): thawed and owned again.
	commitTable(t, g, 2, "m0")
	if _, err := g.Invoke(ctx, "put", []any{k, int64(3)}); err != nil {
		t.Fatalf("post-thaw write refused: %v", err)
	}
}

func TestGuardEpochFencing(t *testing.T) {
	ctx := context.Background()
	g := NewGuard("m0", testSpec, newKVStore())
	commitTable(t, g, 3, "m0")

	// Stale and same-epoch protocol steps are fenced...
	for _, epoch := range []int64{2, 3} {
		_, err := g.Invoke(ctx, methodFreeze, []any{epoch, []any{"k"}})
		invokeCode(t, err, core.CodeFenced)
		_, err = g.Invoke(ctx, methodPull, []any{epoch, []any{"k"}})
		invokeCode(t, err, core.CodeFenced)
		_, err = g.Invoke(ctx, methodKeys, []any{epoch})
		invokeCode(t, err, core.CodeFenced)
		_, err = g.Invoke(ctx, methodPush, []any{epoch, map[string]any{}})
		invokeCode(t, err, core.CodeFenced)
	}
	// ...a stale table is fenced, but a same-epoch re-commit is not
	// (idempotent), and drop works at the committed epoch.
	ms := []any{"m0"}
	_, err := g.Invoke(ctx, methodTable, []any{int64(2), int64(16), ms})
	invokeCode(t, err, core.CodeFenced)
	if _, err := g.Invoke(ctx, methodTable, []any{int64(3), int64(16), ms}); err != nil {
		t.Fatalf("idempotent re-commit refused: %v", err)
	}
	if _, err := g.Invoke(ctx, methodDrop, []any{int64(3), []any{"gone"}}); err != nil {
		t.Fatalf("same-epoch drop refused: %v", err)
	}
	_, err = g.Invoke(ctx, methodDrop, []any{int64(2), []any{"gone"}})
	invokeCode(t, err, core.CodeFenced)
}

func TestGuardHandoffRoundTrip(t *testing.T) {
	ctx := context.Background()
	src := NewGuard("m0", testSpec, newKVStore())
	dst := NewGuard("m1", testSpec, newKVStore())
	commitTable(t, src, 1, "m0")
	// Load the source at epoch 1 (it owns everything).
	for i := 0; i < 20; i++ {
		if _, err := src.Invoke(ctx, "put", []any{fmt.Sprintf("k%d", i), int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	newRing := NewRing([]string{"m0", "m1"}, 16)
	res, err := src.Invoke(ctx, methodKeys, []any{int64(2)})
	if err != nil {
		t.Fatal(err)
	}
	held, err := resultKeyList(res)
	if err != nil {
		t.Fatal(err)
	}
	moved := make([]any, 0)
	for _, k := range held {
		if newRing.Owner(k) != "m0" {
			moved = append(moved, k)
		}
	}
	if len(moved) == 0 {
		t.Fatal("no keys to move — ring split failed")
	}
	if _, err := src.Invoke(ctx, methodFreeze, []any{int64(2), moved}); err != nil {
		t.Fatal(err)
	}
	res, err = src.Invoke(ctx, methodPull, []any{int64(2), moved})
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := resultKVMap(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != len(moved) {
		t.Fatalf("pulled %d of %d moved keys", len(kvs), len(moved))
	}
	if _, err := dst.Invoke(ctx, methodPush, []any{int64(2), kvs}); err != nil {
		t.Fatal(err)
	}
	commitTable(t, src, 2, "m0", "m1")
	commitTable(t, dst, 2, "m0", "m1")
	if _, err := src.Invoke(ctx, methodDrop, []any{int64(2), moved}); err != nil {
		t.Fatal(err)
	}
	// Every moved key now lives at (only) the destination with its value.
	for _, mk := range moved {
		k := mk.(string)
		res, err := dst.Invoke(ctx, "get", []any{k})
		if err != nil {
			t.Fatalf("get %q at new owner: %v", k, err)
		}
		if _, held := src.Inner().(*kvStore).get(k); held {
			t.Errorf("moved key %q still held at the old owner", k)
		}
		var want int64
		fmt.Sscanf(k, "k%d", &want)
		if res[0] != want {
			t.Errorf("moved key %q = %v, want %d", k, res[0], want)
		}
	}
}

func TestGuardSnapshotRestoreCarriesFencingState(t *testing.T) {
	ctx := context.Background()
	g := NewGuard("m0", testSpec, newKVStore())
	commitTable(t, g, 4, "m0", "m1")
	if _, err := g.Invoke(ctx, methodFreeze, []any{int64(5), []any{"frozen-k"}}); err != nil {
		t.Fatal(err)
	}
	ring := NewRing([]string{"m0", "m1"}, 16)
	k := ownedKey(t, ring, "m0")
	if _, err := g.Invoke(ctx, "put", []any{k, int64(9)}); err != nil {
		t.Fatal(err)
	}

	blob, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	g2 := NewGuard("m0", testSpec, newKVStore())
	if err := g2.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if g2.Epoch() != 4 {
		t.Fatalf("restored epoch = %d, want 4", g2.Epoch())
	}
	// Data survived.
	res, err := g2.Invoke(ctx, "get", []any{k})
	if err != nil || res[0] != int64(9) {
		t.Fatalf("restored get = %v, %v", res, err)
	}
	// Ownership discipline survived.
	_, err = g2.Invoke(ctx, "put", []any{notOwnedKey(t, ring, "m0"), int64(1)})
	invokeCode(t, err, core.CodeMisroute)
	// The freeze survived.
	_, err = g2.Invoke(ctx, "put", []any{"frozen-k", int64(1)})
	invokeCode(t, err, core.CodeUnavailable)
	// Old-epoch protocol steps stay fenced after restore.
	_, err = g2.Invoke(ctx, methodKeys, []any{int64(4)})
	invokeCode(t, err, core.CodeFenced)
}
