package shard

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// evidenceWorld is a deployment whose client runtime has a fast rpc
// client and a tunable breaker, so scatter-gather failure evidence is
// observable without waiting out default retry policies.
type evidenceWorld struct {
	net         *netsim.Network
	router      *Router
	client      *core.Runtime
	ref         codec.Ref
	memberNodes map[string]wire.NodeID
}

func newEvidenceWorld(t *testing.T, stores map[string]Store, cliOpts []rpc.ClientOption, rtOpts ...core.RuntimeOption) *evidenceWorld {
	t.Helper()
	net := netsim.New()
	t.Cleanup(net.Close)
	w := &evidenceWorld{net: net, memberNodes: make(map[string]wire.NodeID)}
	next := wire.NodeID(1)
	mk := func(cli []rpc.ClientOption, opts ...core.RuntimeOption) *core.Runtime {
		ep, err := net.Attach(next)
		if err != nil {
			t.Fatal(err)
		}
		next++
		node := kernel.NewNode(ep)
		t.Cleanup(func() { node.Close() })
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		if cli != nil {
			opts = append([]core.RuntimeOption{core.WithClient(rpc.NewClient(ktx, cli...))}, opts...)
		}
		return core.NewRuntime(ktx, opts...)
	}
	factory := NewFactory(testSpec, WithName("kv"))
	routerRT := mk(nil)
	w.router = NewRouter(routerRT, factory)
	for name, st := range stores {
		rt := mk(nil)
		w.memberNodes[name] = rt.Addr().Node
		ref, err := rt.Export(NewGuard(name, testSpec, st), "KVMember")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := w.router.AddMember(ctx, name, ref); err != nil {
			t.Fatalf("add member %s: %v", name, err)
		}
		cancel()
	}
	ref, err := routerRT.ExportVia(factory, w.router, "ShardedKV")
	if err != nil {
		t.Fatal(err)
	}
	w.ref = ref
	w.client = mk(cliOpts, rtOpts...)
	w.client.RegisterProxyType("ShardedKV", NewFactory(Spec{}))
	return w
}

// keysOwnedBy returns n distinct keys the proxy's fetched ring assigns
// to the named member.
func keysOwnedBy(t *testing.T, p *Proxy, member string, n int) []string {
	t.Helper()
	ring, _, err := p.table(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; len(keys) < n && i < 10000; i++ {
		k := "k" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if ring.Owner(k) == member {
			keys = append(keys, k)
		}
	}
	if len(keys) < n {
		t.Fatalf("found only %d keys owned by %s", len(keys), member)
	}
	return keys
}

// TestScatterFailureFeedsBreakerEvidence pins the satellite contract:
// per-key scatter-gather failures travel through GuardedCall exactly
// like single-key routing, so a dead member's failures trip the shared
// per-node breaker — and the surviving member keeps serving its keys.
func TestScatterFailureFeedsBreakerEvidence(t *testing.T) {
	w := newEvidenceWorld(t,
		map[string]Store{"m0": newKVStore(), "m1": newKVStore()},
		[]rpc.ClientOption{rpc.WithRetryInterval(2 * time.Millisecond), rpc.WithMaxAttempts(3)},
		core.WithBreakerConfig(health.BreakerConfig{Threshold: 2, Cooldown: time.Minute}))
	p, err := w.client.Import(w.ref)
	if err != nil {
		t.Fatal(err)
	}
	sp := p.(*Proxy)
	dead := keysOwnedBy(t, sp, "m0", 3)
	alive := keysOwnedBy(t, sp, "m1", 3)
	for i, k := range append(append([]string{}, dead...), alive...) {
		if _, err := sp.Invoke(context.Background(), "put", k, int64(i)); err != nil {
			t.Fatal(err)
		}
	}

	w.net.Crash(w.memberNodes["m0"])
	args := make([]any, 0, len(dead)+len(alive))
	for _, k := range append(append([]string{}, dead...), alive...) {
		args = append(args, k)
	}
	out, err := sp.Invoke(context.Background(), "mget", args...)
	if err != nil {
		t.Fatalf("scatter: %v", err)
	}
	for i := range dead {
		if _, ok := AsKeyError(out[i]); !ok {
			t.Errorf("dead-member slot %d = %v, want KeyError", i, out[i])
		}
	}
	for i := range alive {
		slot := out[len(dead)+i]
		if v, ok := slot.(int64); !ok || v != int64(len(dead)+i) {
			t.Errorf("alive-member slot = %v, want %d", slot, len(dead)+i)
		}
	}
	// The evidence reached the shared breaker: the dead member's node is
	// tripped, the survivor's untouched.
	if st := w.client.Breakers().For(w.memberNodes["m0"]).State(); st != health.BreakerOpen {
		t.Errorf("dead member breaker = %v, want open (scatter failures must count)", st)
	}
	if st := w.client.Breakers().For(w.memberNodes["m1"]).State(); st != health.BreakerClosed {
		t.Errorf("alive member breaker = %v, want closed", st)
	}
}

// sheddingStore wraps kvStore, answering get("shed-*") with CodeOverload
// the way a brownout-mode member would.
type sheddingStore struct{ *kvStore }

func (s sheddingStore) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	if method == "get" {
		if k, _ := args[0].(string); strings.HasPrefix(k, "shed-") {
			return nil, core.Errorf(core.CodeOverload, method, "shard test: member shedding")
		}
	}
	return s.kvStore.Invoke(ctx, method, args)
}

// TestScatterOverloadSurfacesKeyErrorImmediately pins per-key brownout:
// a member's CodeOverload answer is not a routing problem, so the proxy
// must surface it as that key's KeyError at once — no table refetch, no
// re-route backoff spinning.
func TestScatterOverloadSurfacesKeyErrorImmediately(t *testing.T) {
	w := newEvidenceWorld(t,
		map[string]Store{"m0": sheddingStore{newKVStore()}},
		[]rpc.ClientOption{rpc.WithRetryInterval(5 * time.Millisecond), rpc.WithMaxAttempts(8)})
	p, err := w.client.Import(w.ref)
	if err != nil {
		t.Fatal(err)
	}
	sp := p.(*Proxy)
	if _, err := sp.Invoke(context.Background(), "put", "ok-1", int64(7)); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	out, err := sp.Invoke(context.Background(), "mget", "shed-a", "ok-1", "shed-b")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("scatter: %v", err)
	}
	for _, i := range []int{0, 2} {
		ke, ok := AsKeyError(out[i])
		if !ok {
			t.Fatalf("slot %d = %v, want KeyError", i, out[i])
		}
		var ie *core.InvokeError
		if !errors.As(ke.Err, &ie) || ie.Code != core.CodeOverload {
			t.Errorf("slot %d error = %v, want CodeOverload preserved", i, ke.Err)
		}
	}
	if v, ok := out[1].(int64); !ok || v != 7 {
		t.Errorf("healthy slot = %v, want 7", out[1])
	}
	// An answered overload is final for this invocation: with re-route
	// attempts the fan-out would burn ~300ms of routeBackoff.
	if elapsed > 150*time.Millisecond {
		t.Errorf("overloaded scatter took %v; the proxy re-routed shed keys", elapsed)
	}
	if _, mis := sp.Stats(); mis != 0 {
		t.Errorf("misroutes = %d, want 0", mis)
	}
}
