package shard

import (
	"fmt"
	"sort"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	return keys
}

func TestRingDeterminism(t *testing.T) {
	cases := []struct {
		name    string
		members []string
		vnodes  int
	}{
		{"single", []string{"m0"}, 16},
		{"pair", []string{"m0", "m1"}, 64},
		{"quad", []string{"m0", "m1", "m2", "m3"}, 64},
		{"default-vnodes", []string{"a", "b", "c"}, 0},
		{"unordered input", []string{"m2", "m0", "m1"}, 32},
		{"duplicates", []string{"m0", "m0", "m1"}, 32},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewRing(tc.members, tc.vnodes)
			// Reversed input must yield the identical ring.
			rev := append([]string(nil), tc.members...)
			sort.Sort(sort.Reverse(sort.StringSlice(rev)))
			b := NewRing(rev, tc.vnodes)
			for _, k := range ringKeys(500) {
				if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
					t.Fatalf("owner(%q) differs across identical rings: %q vs %q", k, ao, bo)
				}
			}
			if got, want := len(a.Members()), uniqueCount(tc.members); got != want {
				t.Errorf("member count = %d, want %d", got, want)
			}
		})
	}
}

func uniqueCount(ss []string) int {
	seen := map[string]bool{}
	for _, s := range ss {
		seen[s] = true
	}
	return len(seen)
}

func TestRingEveryKeyOwned(t *testing.T) {
	r := NewRing([]string{"m0", "m1", "m2"}, 64)
	members := map[string]bool{"m0": true, "m1": true, "m2": true}
	counts := map[string]int{}
	for _, k := range ringKeys(3000) {
		o := r.Owner(k)
		if !members[o] {
			t.Fatalf("owner(%q) = %q, not a member", k, o)
		}
		counts[o]++
	}
	// Virtual nodes keep the split roughly even: no member should hold
	// more than half of a 3-way keyspace.
	for m, c := range counts {
		if c == 0 {
			t.Errorf("member %s owns nothing", m)
		}
		if c > 1500 {
			t.Errorf("member %s owns %d of 3000 keys — distribution collapsed", m, c)
		}
	}
}

// TestRingMinimalMovement is the consistent-hashing property: adding or
// removing one member moves only the keys that must move — every key
// that stays put keeps its owner.
func TestRingMinimalMovement(t *testing.T) {
	keys := ringKeys(2000)
	cases := []struct {
		name   string
		before []string
		after  []string
	}{
		{"add m2", []string{"m0", "m1"}, []string{"m0", "m1", "m2"}},
		{"add m3", []string{"m0", "m1", "m2"}, []string{"m0", "m1", "m2", "m3"}},
		{"remove m1", []string{"m0", "m1", "m2"}, []string{"m0", "m2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := NewRing(tc.before, 64)
			after := NewRing(tc.after, 64)
			afterSet := map[string]bool{}
			for _, m := range tc.after {
				afterSet[m] = true
			}
			moved := 0
			for _, k := range keys {
				ob, oa := before.Owner(k), after.Owner(k)
				if ob == oa {
					continue
				}
				moved++
				// A key may only change owner for a structural reason: its
				// old owner left, or it moved to a freshly added member.
				if afterSet[ob] && before.Has(oa) {
					t.Fatalf("key %q moved %q -> %q although both members exist in both rings", k, ob, oa)
				}
			}
			// Expect roughly 1/len(after) of the keyspace to move on add
			// (resp. 1/len(before) on remove); 2x slack for hash variance.
			maxMoved := 2 * len(keys) / len(tc.after)
			if len(tc.before) > len(tc.after) {
				maxMoved = 2 * len(keys) / len(tc.before)
			}
			if moved == 0 {
				t.Error("no keys moved — the membership change had no effect")
			}
			if moved > maxMoved {
				t.Errorf("%d of %d keys moved, want <= %d", moved, len(keys), maxMoved)
			}
		})
	}
}

// TestRingWraparound pins the circle's seam: a key hashing past the
// highest point wraps to the first point.
func TestRingWraparound(t *testing.T) {
	r := NewRing([]string{"m0", "m1"}, 8)
	last := r.points[len(r.points)-1]
	first := r.points[0]
	// Find a key hashing strictly above the last ring point (the seam).
	for i := 0; i < 1_000_000; i++ {
		k := fmt.Sprintf("wrap-%d", i)
		if hashKey(k) > last.h {
			if got := r.Owner(k); got != first.member {
				t.Fatalf("owner of seam key %q = %q, want first point's member %q", k, got, first.member)
			}
			return
		}
	}
	t.Skip("no key found past the last ring point (hash space nearly saturated)")
}

func TestRingEmpty(t *testing.T) {
	if o := NewRing(nil, 8).Owner("k"); o != "" {
		t.Errorf("empty ring owner = %q, want \"\"", o)
	}
	var r *Ring
	if o := r.Owner("k"); o != "" {
		t.Errorf("nil ring owner = %q, want \"\"", o)
	}
	if r.Has("m0") {
		t.Error("nil ring claims membership")
	}
}
