package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func TestScatterGatherPartialFailureMerge(t *testing.T) {
	call := func(_ context.Context, key string, subArgs []any) ([]any, error) {
		if strings.HasPrefix(key, "bad-") {
			return nil, core.Errorf(core.CodeUnavailable, "get", "no luck for %q", key)
		}
		return []any{"val:" + key}, nil
	}
	args := []any{
		"a",
		"bad-1",
		[]any{"b", int64(7)}, // key vector: extra args ride along
		"bad-2",
		"c",
	}
	out, err := scatterGather(context.Background(), "mget", args, 2, nil, call)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(args) {
		t.Fatalf("result length %d, want %d", len(out), len(args))
	}
	// Successful slots align with their arguments.
	for i, want := range map[int]string{0: "val:a", 2: "val:b", 4: "val:c"} {
		if out[i] != want {
			t.Errorf("out[%d] = %v, want %q", i, out[i], want)
		}
	}
	// Failed slots carry KeyErrors naming their key, preserving the code.
	for i, wantKey := range map[int]string{1: "bad-1", 3: "bad-2"} {
		ke, ok := AsKeyError(out[i])
		if !ok {
			t.Fatalf("out[%d] = %T, want *KeyError", i, out[i])
		}
		if ke.Key != wantKey {
			t.Errorf("out[%d].Key = %q, want %q", i, ke.Key, wantKey)
		}
		var ie *core.InvokeError
		if !errors.As(ke, &ie) || ie.Code != core.CodeUnavailable {
			t.Errorf("out[%d] does not unwrap to CodeUnavailable: %v", i, ke)
		}
	}
}

func TestScatterGatherBoundedConcurrency(t *testing.T) {
	const limit = 3
	var inflight, peak atomic.Int64
	call := func(_ context.Context, key string, _ []any) ([]any, error) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inflight.Add(-1)
		return []any{key}, nil
	}
	args := make([]any, 40)
	for i := range args {
		args[i] = fmt.Sprintf("k%d", i)
	}
	if _, err := scatterGather(context.Background(), "mget", args, limit, nil, call); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > limit {
		t.Errorf("peak in-flight sub-invocations = %d, want <= %d", p, limit)
	}
	if p := peak.Load(); p == 0 {
		t.Error("no sub-invocations ran")
	}
}

func TestScatterGatherBadArgs(t *testing.T) {
	call := func(_ context.Context, key string, _ []any) ([]any, error) {
		return []any{key}, nil
	}
	cases := []struct {
		name string
		args []any
	}{
		{"non-key argument", []any{int64(3)}},
		{"empty key vector", []any{[]any{}}},
		{"vector with non-string key", []any{[]any{int64(1), "x"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := scatterGather(context.Background(), "mput", tc.args, 4, nil, call)
			invokeCode(t, err, core.CodeBadArgs)
		})
	}
}

func TestScatterGatherEmptyResultSlot(t *testing.T) {
	call := func(_ context.Context, _ string, _ []any) ([]any, error) {
		return nil, nil
	}
	out, err := scatterGather(context.Background(), "mput", []any{"a", "b"}, 4, nil, call)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != nil {
			t.Errorf("out[%d] = %v, want nil for empty sub-result", i, v)
		}
	}
}
