package shard

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/codec"
	"repro/internal/core"
)

// TypeName is the proxy type the shard status service exports under.
// Like health.Service it has no custom factory: proxyctl reaches it
// through a plain stub.
const TypeName = "shard.Status"

var (
	statusMu  sync.Mutex
	statusReg = map[*core.Runtime][]*Router{}
)

func registerStatus(rt *core.Runtime, r *Router) {
	statusMu.Lock()
	defer statusMu.Unlock()
	for _, e := range statusReg[rt] {
		if e == r {
			return
		}
	}
	statusReg[rt] = append(statusReg[rt], r)
}

// Routers reports every shard router exported from this runtime.
func Routers(rt *core.Runtime) []*Router {
	statusMu.Lock()
	defer statusMu.Unlock()
	return append([]*Router(nil), statusReg[rt]...)
}

func routerByName(rt *core.Runtime, name string) (*Router, bool) {
	for _, r := range Routers(rt) {
		if r.Name() == name {
			return r, true
		}
	}
	return nil, false
}

// ServiceOption configures a Service. None are defined yet; the
// parameter exists so future knobs never break call sites — see doc.go,
// constructor options.
type ServiceOption func(*Service)

// Service exposes a runtime's shard deployments over the ordinary
// invocation conventions, so proxyctl can inspect tables and change
// membership.
//
// Methods:
//
//	status() -> text table of every deployment's epoch and members
//	add(shard, member, ref) -> admit an exported member and rebalance
//	remove(shard, member, force) -> retire a member and rebalance
type Service struct {
	rt *core.Runtime
}

// NewService builds the shard control service for one runtime.
func NewService(rt *core.Runtime, opts ...ServiceOption) *Service {
	s := &Service{rt: rt}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Invoke dispatches the control methods.
func (s *Service) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	switch method {
	case "status":
		routers := Routers(s.rt)
		var b strings.Builder
		fmt.Fprintf(&b, "%-10s %-6s %-8s %s\n", "SHARD", "EPOCH", "MEMBERS", "KEYS")
		for _, r := range routers {
			epoch, ring, members := r.table()
			names := make([]string, 0, len(members))
			for n := range members {
				names = append(names, n)
			}
			sort.Strings(names)
			fmt.Fprintf(&b, "%-10s %-6d %-8d %s\n", r.Name(), epoch, len(members), "")
			for _, n := range names {
				owned := "-"
				if ring != nil && ring.Has(n) {
					owned = "on-ring"
				}
				fmt.Fprintf(&b, "  member %-10s %-8s keys=%d  %s\n", n, owned,
					r.keysGauge(n).Load(), members[n].Target)
			}
		}
		if len(routers) == 0 {
			b.WriteString("(no shard deployments)\n")
		}
		return []any{b.String()}, nil
	case "add":
		if len(args) < 3 {
			return nil, core.BadArgs(method, "want (shard, member, ref)")
		}
		shardName, _ := args[0].(string)
		member, _ := args[1].(string)
		if shardName == "" || member == "" {
			return nil, core.BadArgs(method, "shard and member must be strings")
		}
		ref, err := refArg(method, args[2])
		if err != nil {
			return nil, err
		}
		r, ok := routerByName(s.rt, shardName)
		if !ok {
			return nil, core.Errorf(core.CodeBadArgs, method, "no shard deployment %q", shardName)
		}
		if err := r.AddMember(ctx, member, ref); err != nil {
			return nil, core.Errorf(core.CodeApp, method, "%s", err)
		}
		return []any{fmt.Sprintf("added %s (epoch %d)", member, r.Epoch())}, nil
	case "remove":
		if len(args) < 2 {
			return nil, core.BadArgs(method, "want (shard, member[, force])")
		}
		shardName, _ := args[0].(string)
		member, _ := args[1].(string)
		force := false
		if len(args) > 2 {
			force, _ = args[2].(bool)
		}
		r, ok := routerByName(s.rt, shardName)
		if !ok {
			return nil, core.Errorf(core.CodeBadArgs, method, "no shard deployment %q", shardName)
		}
		if err := r.RemoveMember(ctx, member, force); err != nil {
			return nil, core.Errorf(core.CodeApp, method, "%s", err)
		}
		return []any{fmt.Sprintf("removed %s (epoch %d)", member, r.Epoch())}, nil
	default:
		return nil, core.NoSuchMethod(method)
	}
}

// refArg accepts a member reference however it arrived: as a raw Ref
// (local call) or as the proxy the decoder installed for an inbound Ref.
func refArg(method string, v any) (codec.Ref, error) {
	switch x := v.(type) {
	case codec.Ref:
		return x, nil
	case core.Proxy:
		return x.Ref(), nil
	default:
		return codec.Ref{}, core.BadArgs(method, fmt.Sprintf("member ref must be a reference, got %T", v))
	}
}
