package shard

import (
	"context"
	"errors"
	"sync"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/session"
	"repro/internal/wire"
)

// Reserved invocation methods of the rebalance protocol. They flow
// through the ordinary invocation surface on purpose: a guard reached
// through a replica group gets every handoff step as an ordered,
// WAL-logged write, so a shard-owner crash mid-rebalance cannot lose a
// moved range that was acked.
const (
	methodKeys   = "shard.keys"   // (epoch) -> [keys]           enumerate held keys
	methodFreeze = "shard.freeze" // (epoch, keys) -> []          stop acking writes to moving keys
	methodPull   = "shard.pull"   // (epoch, keys) -> [kv map]    export moving keys
	methodPush   = "shard.push"   // (epoch, kv map) -> []        import moved keys at the new owner
	methodTable  = "shard.table"  // (epoch, vnodes, members...)  commit the new ring, unfreeze
	methodDrop   = "shard.drop"   // (epoch, keys) -> []          discard moved keys at the old owner
)

// Store is the keyspace surface a sharded service must expose so its
// guard can enumerate and hand off key ranges. The per-key blobs are the
// store's own encoding — the shard layer never interprets them.
type Store interface {
	core.Service
	// Keys enumerates every key currently held.
	Keys() []string
	// ExportKeys encodes the named keys' state (missing keys are simply
	// absent from the result).
	ExportKeys(keys []string) (map[string][]byte, error)
	// ImportKeys installs handed-off keys, overwriting existing state
	// (pushes are retried, so this must be idempotent).
	ImportKeys(kvs map[string][]byte) error
	// DropKeys discards the named keys (idempotent).
	DropKeys(keys []string) error
}

// ErrNotStore reports a guarded service that cannot hand off keys.
var ErrNotStore = errors.New("shard: service does not implement shard.Store")

// Guard wraps one member's store with the shard's ownership discipline.
// It sits *below* the member's own proxy factory — for a replica-backed
// member it is the replicated state machine — so its fencing state rides
// the member's replication, WAL, and crash-recovery machinery.
//
// Rules, in table-epoch order:
//
//   - epoch 0 (no table yet): every invocation passes — bootstrap load
//     before the router commits the first table;
//   - single-key methods for keys this member does not own under the
//     current ring are refused with core.CodeMisroute;
//   - keys frozen by an in-flight rebalance refuse writes and reads with
//     core.CodeUnavailable until the new table commits;
//   - reserved shard.* methods carrying an epoch at or below the
//     guard's current epoch are refused with core.CodeFenced (a deposed
//     router attempt, or a replayed handoff step) — except shard.table
//     and shard.drop at the current epoch, which are idempotent.
type Guard struct {
	self string
	spec Spec

	inner  Store
	single map[string]bool

	// tab dedups session-stamped single-key writes, with entries tagged
	// by key so a rebalance carries them to the key's new owner (the
	// shard.pull reply ships the blob; shard.push imports it). Ownership
	// is checked BEFORE the dedup consult, so an entry for a key this
	// member no longer owns can never answer a misrouted retry.
	tab *session.Table

	mu     sync.Mutex
	epoch  uint64
	ring   *Ring
	frozen map[string]bool
}

// NewGuard wraps inner as member self of a sharded service. For
// replica-backed members, construct the guard inside the replica
// factory's constructor so every replica of the member carries the same
// guard; inner must then also implement replica.StateMachine.
func NewGuard(self string, spec Spec, inner Store) *Guard {
	return &Guard{
		self: self, spec: spec, inner: inner, single: spec.singleSet(),
		tab: session.NewTable(session.Config{}),
	}
}

// Inner exposes the wrapped store (tests and audits).
func (g *Guard) Inner() Store { return g.inner }

// Epoch reports the last committed table epoch (0 before the first).
func (g *Guard) Epoch() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// Invoke implements core.Service.
func (g *Guard) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	switch method {
	case methodKeys, methodFreeze, methodPull, methodPush, methodTable, methodDrop:
		return g.invokeReserved(method, args)
	}
	if g.single[method] {
		key, err := keyOf(method, args)
		if err != nil {
			return nil, err
		}
		if err := g.checkOwnership(method, key); err != nil {
			return nil, err
		}
		if sid, seq := core.SessionFromContext(ctx); sid != 0 {
			return g.invokeDeduped(ctx, sid, seq, key, method, args)
		}
	}
	return g.inner.Invoke(ctx, method, args)
}

// invokeDeduped runs one session-stamped single-key invocation through
// the guard's exactly-once table: a replay is answered from the cached
// reply (reconstructed via codec.Marshal, so no runtime machinery is
// needed here), an expired identity is refused loudly, and a fresh one
// executes and commits key-tagged so a rebalance hands the entry to the
// key's next owner.
func (g *Guard) invokeDeduped(ctx context.Context, sid, seq uint64, key, method string, args []any) ([]any, error) {
	switch verdict, ent := g.tab.Begin(sid, seq); verdict {
	case session.Replay:
		if ent.IsErr {
			return nil, core.DecodeInvokeError(ent.Payload)
		}
		var results []any
		if err := codec.Unmarshal(ent.Payload, &results); err != nil {
			return nil, core.Errorf(core.CodeInternal, method, "shard: replay decode: %s", err)
		}
		return results, nil
	case session.InFlight:
		// The guard cannot block on the original execution; refuse
		// retryably and let the client re-present the identity.
		return nil, core.Errorf(core.CodeUnavailable, method, "shard: duplicate of an in-flight invocation")
	case session.Expired:
		return nil, core.Errorf(core.CodeSessionExpired, method, "session expired: retry outlived the dedup window; outcome unknown")
	}
	results, err := g.inner.Invoke(ctx, method, args)
	if err != nil {
		g.tab.CommitKeyed(sid, seq, key, wire.KindError, true, core.EncodeInvokeError(method, err))
		return nil, err
	}
	blob, merr := codec.Marshal(results)
	if merr != nil {
		// Un-cacheable reply: release the mark rather than caching garbage.
		g.tab.Abort(sid, seq)
		return results, nil
	}
	g.tab.CommitKeyed(sid, seq, key, wire.KindReply, false, blob)
	return results, nil
}

// checkOwnership applies the routing table to one key.
func (g *Guard) checkOwnership(method, key string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.epoch == 0 {
		return nil
	}
	if g.frozen[key] {
		return core.Errorf(core.CodeUnavailable, method, "shard: key %q is migrating", key)
	}
	if owner := g.ring.Owner(key); owner != g.self {
		return core.Errorf(core.CodeMisroute, method,
			"shard: key %q belongs to %q, not %q (epoch %d)", key, owner, g.self, g.epoch)
	}
	return nil
}

func (g *Guard) invokeReserved(method string, args []any) ([]any, error) {
	epoch, rest, err := reservedEpoch(method, args)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	switch method {
	case methodTable:
		// Commit: adopt any table at or past the current epoch (idempotent
		// re-commit included) and thaw — the moved ranges are now governed
		// by ownership, not freezing.
		if epoch < g.epoch {
			return nil, g.fenced(method, epoch)
		}
		vnodes, members, err := decodeTableArgs(method, rest)
		if err != nil {
			return nil, err
		}
		g.epoch = epoch
		g.ring = NewRing(members, vnodes)
		g.frozen = nil
		return nil, nil
	case methodDrop:
		// Post-commit cleanup at the old owner: same-epoch by design.
		if epoch < g.epoch {
			return nil, g.fenced(method, epoch)
		}
		keys, err := decodeKeyList(method, rest)
		if err != nil {
			return nil, err
		}
		return nil, g.inner.DropKeys(keys)
	}
	// keys/freeze/pull/push always carry the epoch under construction,
	// which must be strictly newer than anything this guard committed.
	if epoch <= g.epoch {
		return nil, g.fenced(method, epoch)
	}
	switch method {
	case methodKeys:
		held := g.inner.Keys()
		out := make([]any, len(held))
		for i, k := range held {
			out[i] = k
		}
		return []any{out}, nil
	case methodFreeze:
		keys, err := decodeKeyList(method, rest)
		if err != nil {
			return nil, err
		}
		g.frozen = make(map[string]bool, len(keys))
		for _, k := range keys {
			g.frozen[k] = true
		}
		return nil, nil
	case methodPull:
		keys, err := decodeKeyList(method, rest)
		if err != nil {
			return nil, err
		}
		kvs, err := g.inner.ExportKeys(keys)
		if err != nil {
			return nil, core.Errorf(core.CodeInternal, method, "shard: export keys: %s", err)
		}
		m := make(map[string]any, len(kvs))
		for k, v := range kvs {
			m[k] = v
		}
		// The moved keys' dedup entries travel with their state, so the
		// new owner keeps recognizing retries of writes this member
		// already applied. Empty (or absent, from an older guard) blobs
		// decode as no entries.
		return []any{m, g.tab.ExportKeys(keys)}, nil
	case methodPush:
		kvs, err := decodeKVMap(method, rest)
		if err != nil {
			return nil, err
		}
		if err := g.inner.ImportKeys(kvs); err != nil {
			return nil, core.Errorf(core.CodeInternal, method, "shard: import keys: %s", err)
		}
		// Optional trailing dedup blob (see methodPull). The blob may
		// carry entries for keys routed to other destinations too — the
		// router cannot filter an opaque blob — which is benign: ownership
		// is checked before the dedup consult, so a stray entry can never
		// answer a retry of a key this member does not own.
		if len(rest) > 1 {
			if blob, ok := rest[1].([]byte); ok {
				if err := g.tab.ImportBlob(blob); err != nil {
					return nil, core.Errorf(core.CodeInternal, method, "shard: import dedup: %s", err)
				}
			}
		}
		return nil, nil
	}
	return nil, core.NoSuchMethod(method)
}

func (g *Guard) fenced(method string, epoch uint64) error {
	return core.Errorf(core.CodeFenced, method,
		"shard: epoch %d is not newer than committed epoch %d at %q", epoch, g.epoch, g.self)
}

// Snapshot implements replica.StateMachine (by delegation): the guard's
// fencing state is part of the member's replicated state, so a
// crash-rejoined replica restores the table it must enforce, not just
// the data.
func (g *Guard) Snapshot() ([]byte, error) {
	sm, ok := g.inner.(snapshotter)
	if !ok {
		return nil, ErrNotStore
	}
	innerBlob, err := sm.Snapshot()
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	state := map[string]any{
		"epoch": g.epoch,
		"inner": innerBlob,
		"dedup": g.tab.Snapshot(),
	}
	if g.ring != nil {
		state["vnodes"] = int64(g.ring.VirtualNodes())
		members := g.ring.Members()
		ms := make([]any, len(members))
		for i, m := range members {
			ms[i] = m
		}
		state["members"] = ms
	}
	if len(g.frozen) > 0 {
		fs := make([]any, 0, len(g.frozen))
		for k := range g.frozen {
			fs = append(fs, k)
		}
		state["frozen"] = fs
	}
	g.mu.Unlock()
	return codec.Marshal(state)
}

// Restore implements replica.StateMachine (by delegation).
func (g *Guard) Restore(data []byte) error {
	sm, ok := g.inner.(snapshotter)
	if !ok {
		return ErrNotStore
	}
	var state map[string]any
	if err := codec.Unmarshal(data, &state); err != nil {
		return err
	}
	innerBlob, _ := state["inner"].([]byte)
	if err := sm.Restore(innerBlob); err != nil {
		return err
	}
	if dedup, ok := state["dedup"].([]byte); ok {
		_ = g.tab.Restore(dedup)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.epoch = 0
	if e, ok := state["epoch"].(uint64); ok {
		g.epoch = e
	}
	g.ring, g.frozen = nil, nil
	if ms, ok := state["members"].([]any); ok {
		vnodes := 0
		if v, ok := state["vnodes"].(int64); ok {
			vnodes = int(v)
		}
		members := make([]string, 0, len(ms))
		for _, m := range ms {
			if s, ok := m.(string); ok {
				members = append(members, s)
			}
		}
		g.ring = NewRing(members, vnodes)
	}
	if fs, ok := state["frozen"].([]any); ok {
		g.frozen = make(map[string]bool, len(fs))
		for _, f := range fs {
			if s, ok := f.(string); ok {
				g.frozen[s] = true
			}
		}
	}
	return nil
}

// snapshotter matches replica.StateMachine's state half without
// importing the replica package (which would cycle through core).
type snapshotter interface {
	Snapshot() ([]byte, error)
	Restore(data []byte) error
}

// reservedEpoch decodes the leading epoch argument every reserved method
// carries.
func reservedEpoch(method string, args []any) (uint64, []any, error) {
	if len(args) == 0 {
		return 0, nil, core.BadArgs(method, "shard: missing epoch")
	}
	switch e := args[0].(type) {
	case int64:
		if e < 0 {
			return 0, nil, core.BadArgs(method, "shard: negative epoch")
		}
		return uint64(e), args[1:], nil
	case uint64:
		return e, args[1:], nil
	default:
		return 0, nil, core.BadArgs(method, "shard: epoch must be an integer")
	}
}

func decodeKeyList(method string, args []any) ([]string, error) {
	if len(args) == 0 {
		return nil, core.BadArgs(method, "shard: missing key list")
	}
	raw, ok := args[0].([]any)
	if !ok {
		return nil, core.BadArgs(method, "shard: key list must be a vector of strings")
	}
	keys := make([]string, 0, len(raw))
	for _, r := range raw {
		s, ok := r.(string)
		if !ok {
			return nil, core.BadArgs(method, "shard: key list must be a vector of strings")
		}
		keys = append(keys, s)
	}
	return keys, nil
}

func decodeKVMap(method string, args []any) (map[string][]byte, error) {
	if len(args) == 0 {
		return nil, core.BadArgs(method, "shard: missing key-value map")
	}
	raw, ok := args[0].(map[string]any)
	if !ok {
		return nil, core.BadArgs(method, "shard: pushed state must be a string map")
	}
	kvs := make(map[string][]byte, len(raw))
	for k, v := range raw {
		b, ok := v.([]byte)
		if !ok {
			return nil, core.BadArgs(method, "shard: pushed values must be byte blobs")
		}
		kvs[k] = b
	}
	return kvs, nil
}

func decodeTableArgs(method string, args []any) (int, []string, error) {
	if len(args) == 0 {
		return 0, nil, core.BadArgs(method, "shard: missing virtual-node count")
	}
	var vnodes int
	switch v := args[0].(type) {
	case int64:
		vnodes = int(v)
	case uint64:
		vnodes = int(v)
	default:
		return 0, nil, core.BadArgs(method, "shard: virtual-node count must be an integer")
	}
	members, err := decodeKeyList(method, args[1:])
	if err != nil {
		return 0, nil, err
	}
	return vnodes, members, nil
}
