package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// rig is a two-node test fixture: client context on node 1, server on 2.
type rig struct {
	net    *netsim.Network
	client *Client
	srvCtx *kernel.Context
}

func newRig(t *testing.T, netOpts []netsim.NetworkOption, cliOpts ...ClientOption) *rig {
	t.Helper()
	net := netsim.New(netOpts...)
	ep1, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := net.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	n1, n2 := kernel.NewNode(ep1), kernel.NewNode(ep2)
	t.Cleanup(func() { n1.Close(); n2.Close(); net.Close() })
	c1, err := n1.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := n2.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	return &rig{net: net, client: NewClient(c1, cliOpts...), srvCtx: c2}
}

func (r *rig) serve(h Handler, opts ...ServerOption) (wire.ObjAddr, *Server) {
	srv := NewServer(h, opts...)
	id := r.srvCtx.Register(srv)
	return wire.ObjAddr{Addr: r.srvCtx.Addr(), Object: id}, srv
}

func echo(req *Request) (wire.Kind, []byte, []byte) {
	return wire.KindReply, req.Frame.Payload, nil
}

func TestCallBasic(t *testing.T) {
	r := newRig(t, nil)
	dst, _ := r.serve(HandlerFunc(echo))
	got, err := r.client.Call(context.Background(), dst, wire.KindRequest, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("reply = %q", got)
	}
	if st := r.client.Stats(); st.Calls != 1 || st.Retransmits != 0 || st.Failures != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCallErrorPayload(t *testing.T) {
	r := newRig(t, nil)
	dst, _ := r.serve(HandlerFunc(func(req *Request) (wire.Kind, []byte, []byte) {
		return 0, nil, []byte("app failure")
	}))
	_, err := r.client.Call(context.Background(), dst, wire.KindRequest, nil)
	var re *kernel.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
	if string(re.Payload) != "app failure" {
		t.Errorf("payload = %q", re.Payload)
	}
}

func TestRetransmitOnLoss(t *testing.T) {
	// 60% loss: with retransmission every 10 ms and up to 50 attempts, the
	// call must eventually succeed.
	r := newRig(t,
		[]netsim.NetworkOption{netsim.WithDefaultLink(netsim.LinkConfig{LossRate: 0.6}), netsim.WithSeed(3)},
		WithRetryInterval(10*time.Millisecond), WithMaxAttempts(50))
	dst, _ := r.serve(HandlerFunc(echo))
	got, err := r.client.Call(context.Background(), dst, wire.KindRequest, []byte("persist"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "persist" {
		t.Errorf("reply = %q", got)
	}
}

func TestAtMostOnceUnderLoss(t *testing.T) {
	// The handler counts executions; under heavy reply loss the client
	// retransmits, but the server must execute each call exactly once.
	var executions atomic.Int64
	r := newRig(t,
		[]netsim.NetworkOption{netsim.WithSeed(5)},
		WithRetryInterval(5*time.Millisecond), WithMaxAttempts(100))
	// Lossy only on the reply path: server node 2 → client node 1.
	r.net.SetLink(2, 1, netsim.LinkConfig{LossRate: 0.7})
	dst, srv := r.serve(HandlerFunc(func(req *Request) (wire.Kind, []byte, []byte) {
		executions.Add(1)
		return wire.KindReply, []byte("done"), nil
	}))
	const calls = 20
	for i := 0; i < calls; i++ {
		if _, err := r.client.Call(context.Background(), dst, wire.KindRequest, nil); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := executions.Load(); got != calls {
		t.Errorf("executed %d times for %d calls (at-most-once violated)", got, calls)
	}
	st := srv.Stats()
	if st.DupCached == 0 {
		t.Error("no duplicates suppressed despite 70% reply loss")
	}
	if cst := r.client.Stats(); cst.Retransmits == 0 {
		t.Error("client never retransmitted despite loss")
	}
}

func TestAtLeastOnceWithoutReplyCache(t *testing.T) {
	// Ablation: disabling the reply cache (WithReplyCache(0)) lets
	// duplicate executions through — demonstrating why the cache exists.
	var executions atomic.Int64
	r := newRig(t,
		[]netsim.NetworkOption{netsim.WithSeed(11)},
		WithRetryInterval(5*time.Millisecond), WithMaxAttempts(100))
	r.net.SetLink(2, 1, netsim.LinkConfig{LossRate: 0.7})
	dst, _ := r.serve(HandlerFunc(func(req *Request) (wire.Kind, []byte, []byte) {
		executions.Add(1)
		return wire.KindReply, nil, nil
	}), WithReplyCache(0))
	const calls = 20
	for i := 0; i < calls; i++ {
		if _, err := r.client.Call(context.Background(), dst, wire.KindRequest, nil); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := executions.Load(); got <= calls {
		t.Errorf("executed %d times for %d calls; expected duplicates without reply cache", got, calls)
	}
}

func TestInFlightDuplicateDropped(t *testing.T) {
	release := make(chan struct{})
	var executions atomic.Int64
	r := newRig(t, nil, WithRetryInterval(10*time.Millisecond), WithMaxAttempts(20))
	dst, srv := r.serve(HandlerFunc(func(req *Request) (wire.Kind, []byte, []byte) {
		executions.Add(1)
		<-release
		return wire.KindReply, []byte("slow"), nil
	}))
	done := make(chan error, 1)
	go func() {
		_, err := r.client.Call(context.Background(), dst, wire.KindRequest, nil)
		done <- err
	}()
	// Let several retransmits pile up while the handler is blocked.
	time.Sleep(80 * time.Millisecond)
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := executions.Load(); got != 1 {
		t.Errorf("executed %d times, want 1", got)
	}
	if st := srv.Stats(); st.DupInFlight == 0 {
		t.Error("no in-flight duplicates recorded")
	}
}

func TestRetriesExhausted(t *testing.T) {
	r := newRig(t,
		[]netsim.NetworkOption{netsim.WithDefaultLink(netsim.LinkConfig{LossRate: 0.9999999}), netsim.WithSeed(1)},
		WithRetryInterval(time.Millisecond), WithMaxAttempts(3))
	dst, _ := r.serve(HandlerFunc(echo))
	_, err := r.client.Call(context.Background(), dst, wire.KindRequest, nil)
	if !errors.Is(err, ErrTooManyRetries) {
		t.Errorf("err = %v, want ErrTooManyRetries", err)
	}
	if st := r.client.Stats(); st.Retransmits != 2 || st.Failures != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestContextCancellation(t *testing.T) {
	r := newRig(t, nil, WithRetryInterval(time.Hour))
	dst, _ := r.serve(HandlerFunc(func(req *Request) (wire.Kind, []byte, []byte) {
		time.Sleep(10 * time.Second)
		return wire.KindReply, nil, nil
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := r.client.Call(ctx, dst, wire.KindRequest, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v", err)
	}
}

func TestCustomKindRoundTrip(t *testing.T) {
	r := newRig(t, nil)
	private := wire.KindCustom + 9
	dst, _ := r.serve(HandlerFunc(func(req *Request) (wire.Kind, []byte, []byte) {
		if req.Kind != private {
			return 0, nil, []byte("wrong kind")
		}
		return private, []byte("private-reply"), nil
	}))
	f, err := r.client.CallFrame(context.Background(), dst, private, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != private || string(f.Payload) != "private-reply" {
		t.Errorf("frame = %v %q", f.Kind, f.Payload)
	}
}

func TestReplyCacheEviction(t *testing.T) {
	// A tiny reply cache must stay bounded and keep only the newest entries.
	r := newRig(t, nil)
	var executions atomic.Int64
	dst, srv := r.serve(HandlerFunc(func(req *Request) (wire.Kind, []byte, []byte) {
		executions.Add(1)
		return wire.KindReply, []byte(fmt.Sprintf("r%d", req.ReqID)), nil
	}), WithReplyCache(4))
	for i := 0; i < 20; i++ {
		if _, err := r.client.Call(context.Background(), dst, wire.KindRequest, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := executions.Load(); got != 20 {
		t.Errorf("executed %d, want 20", got)
	}
	if size := srv.cacheLen(r.client.Context().Addr()); size > 4 {
		t.Errorf("cache holds %d entries, bound is 4", size)
	}
}

func TestConcurrentClients(t *testing.T) {
	r := newRig(t, nil)
	dst, _ := r.serve(HandlerFunc(echo))
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("p%d", i)
			got, err := r.client.Call(context.Background(), dst, wire.KindRequest, []byte(want))
			if err != nil {
				errs <- err
			} else if string(got) != want {
				errs <- fmt.Errorf("got %q want %q", got, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestOneWayRequestNotCached(t *testing.T) {
	r := newRig(t, nil)
	var executions atomic.Int64
	dst, srv := r.serve(HandlerFunc(func(req *Request) (wire.Kind, []byte, []byte) {
		executions.Add(1)
		return wire.KindReply, nil, nil
	}))
	f := &wire.Frame{
		Kind: wire.KindRequest, Flags: wire.FlagOneWay,
		ReqID: 99, Dst: dst.Addr, Object: dst.Object, Payload: []byte("async"),
	}
	if err := r.client.Context().Send(f); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for executions.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if executions.Load() != 1 {
		t.Fatalf("one-way executed %d times", executions.Load())
	}
	if size := srv.cacheLen(r.client.Context().Addr()); size != 0 {
		t.Errorf("one-way request cached (%d entries)", size)
	}
}

func BenchmarkRPCNullCall(b *testing.B) {
	net := netsim.New()
	defer net.Close()
	ep1, _ := net.Attach(1)
	ep2, _ := net.Attach(2)
	n1, n2 := kernel.NewNode(ep1), kernel.NewNode(ep2)
	defer n1.Close()
	defer n2.Close()
	c1, _ := n1.NewContext()
	c2, _ := n2.NewContext()
	client := NewClient(c1)
	srv := NewServer(HandlerFunc(echo))
	id := c2.Register(srv)
	dst := wire.ObjAddr{Addr: c2.Addr(), Object: id}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(ctx, dst, wire.KindRequest, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBackoffGrowsInterval(t *testing.T) {
	// With backoff 2x from 10ms capped at 40ms, a 5-attempt call waits at
	// least 10+20+40+40 = 110ms before giving up — a deterministic lower
	// bound that holds regardless of scheduler load (comparing two
	// independent wall-time measurements would be flaky).
	r := newRig(t, []netsim.NetworkOption{
		netsim.WithDefaultLink(netsim.LinkConfig{LossRate: 0.9999999}),
		netsim.WithSeed(1),
	}, WithRetryInterval(10*time.Millisecond), WithMaxAttempts(5),
		WithBackoff(2, 40*time.Millisecond), WithJitter(false))
	dst, _ := r.serve(HandlerFunc(echo))
	start := time.Now()
	_, err := r.client.Call(context.Background(), dst, wire.KindRequest, nil)
	backed := time.Since(start)
	if !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("err = %v", err)
	}
	if backed < 105*time.Millisecond {
		t.Errorf("5 attempts with 2x backoff took %v, deterministic floor is ~110ms", backed)
	}
	if st := r.client.Stats(); st.Retransmits != 4 {
		t.Errorf("retransmits = %d, want 4", st.Retransmits)
	}
}

func TestPerClientCacheIsolation(t *testing.T) {
	// One chatty client must not evict another client's
	// duplicate-suppression entries: B's cached reply survives a flood of
	// A-calls even with a tiny per-client bound.
	net := netsim.New()
	t.Cleanup(net.Close)
	mk := func(id wire.NodeID) *kernel.Context {
		ep, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		node := kernel.NewNode(ep)
		t.Cleanup(func() { node.Close() })
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		return ktx
	}
	srvCtx := mk(1)
	var executions atomic.Int64
	srv := NewServer(HandlerFunc(func(req *Request) (wire.Kind, []byte, []byte) {
		executions.Add(1)
		return wire.KindReply, []byte("r"), nil
	}), WithReplyCache(4))
	id := srvCtx.Register(srv)
	dst := wire.ObjAddr{Addr: srvCtx.Addr(), Object: id}

	clientB := NewClient(mk(2))
	clientA := NewClient(mk(3))
	ctx := context.Background()

	// B makes one call; remember its request id by replaying the frame by
	// hand afterwards.
	bReq, bCh, err := clientB.Context().NewPending()
	if err != nil {
		t.Fatal(err)
	}
	frame := &wire.Frame{Kind: wire.KindRequest, ReqID: bReq, Dst: dst.Addr, Object: dst.Object}
	if err := clientB.Context().Send(frame); err != nil {
		t.Fatal(err)
	}
	select {
	case <-bCh:
	case <-time.After(2 * time.Second):
		t.Fatal("no reply for B")
	}
	clientB.Context().CancelPending(bReq)

	// A floods: far more calls than the per-client bound.
	for i := 0; i < 40; i++ {
		if _, err := clientA.Call(ctx, dst, wire.KindRequest, nil); err != nil {
			t.Fatal(err)
		}
	}

	// B retransmits its original request: it must be served from B's own
	// cache (no new execution).
	before := executions.Load()
	bCh2 := make(chan *wire.Frame, 1)
	// Reuse the pending machinery: register the same id again.
	bReq2, ch, err := clientB.Context().NewPending()
	if err != nil {
		t.Fatal(err)
	}
	_ = bReq2
	_ = bCh2
	retrans := &wire.Frame{Kind: wire.KindRequest, Flags: wire.FlagRetransmit, ReqID: bReq, Dst: dst.Addr, Object: dst.Object}
	if err := clientB.Context().Send(retrans); err != nil {
		t.Fatal(err)
	}
	// The reply correlates to bReq, which we no longer await; instead just
	// give the server a moment and assert no re-execution.
	time.Sleep(50 * time.Millisecond)
	_ = ch
	if got := executions.Load(); got != before {
		t.Errorf("retransmission re-executed: %d -> %d (B's cache evicted by A)", before, got)
	}
	if st := srv.Stats(); st.DupCached == 0 {
		t.Error("retransmission was not served from the cache")
	}
}

func TestDefaultPolicyIsJitteredBackoff(t *testing.T) {
	r := newRig(t, nil)
	c := r.client
	if !c.jitter {
		t.Error("default client should jitter its retransmit waits")
	}
	if c.backoffFactor != 2 || c.backoffMax != 2*time.Second {
		t.Errorf("default backoff = (%v, %v), want (2, 2s)", c.backoffFactor, c.backoffMax)
	}
}

func TestRetryIntervalAloneStaysDeterministic(t *testing.T) {
	r := newRig(t, nil, WithRetryInterval(10*time.Millisecond))
	c := r.client
	if c.jitter {
		t.Error("WithRetryInterval alone must keep a deterministic fixed interval")
	}
	if c.backoffFactor != 0 {
		t.Errorf("backoffFactor = %v, want 0 (no growth)", c.backoffFactor)
	}
	if d := c.sleepFor(10 * time.Millisecond); d != 10*time.Millisecond {
		t.Errorf("sleepFor = %v, want exactly 10ms", d)
	}
}

func TestFullJitterDraw(t *testing.T) {
	r := newRig(t, nil, WithBackoff(2, time.Second))
	c := r.client
	if !c.jitter {
		t.Fatal("WithBackoff should imply jitter unless WithJitter(false)")
	}
	seen := make(map[time.Duration]bool)
	for i := 0; i < 200; i++ {
		d := c.sleepFor(50 * time.Millisecond)
		if d <= 0 || d > 50*time.Millisecond {
			t.Fatalf("full-jitter draw %v outside (0, 50ms]", d)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Errorf("200 full-jitter draws produced only %d distinct values", len(seen))
	}
}

func TestPartitionHealCompletesCall(t *testing.T) {
	// A call that starts under a partition must keep retransmitting and
	// complete after Heal, inside its deadline. The fixed 10ms retry
	// interval ties the retransmit counter to the schedule: a ~60ms cut
	// eats the original send plus at least 5 retransmits, and every one
	// of those shows up in the network's partition-drop counter.
	r := newRig(t, []netsim.NetworkOption{netsim.WithSeed(1)},
		WithRetryInterval(10*time.Millisecond), WithMaxAttempts(100))
	dst, _ := r.serve(HandlerFunc(echo))
	const cut = 60 * time.Millisecond
	r.net.Partition(1, 2)
	heal := time.AfterFunc(cut, func() { r.net.Heal(1, 2) })
	defer heal.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	_, err := r.client.Call(ctx, dst, wire.KindRequest, []byte("hi"))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("call across partition+heal: %v", err)
	}
	if elapsed < cut-5*time.Millisecond {
		t.Errorf("call completed in %v, before the %v heal", elapsed, cut)
	}
	st := r.client.Stats()
	if st.Retransmits < 5 {
		t.Errorf("retransmits = %d, want ≥5 (one per 10ms interval under the 60ms cut)", st.Retransmits)
	}
	if st.Failures != 0 {
		t.Errorf("failures = %d, want 0", st.Failures)
	}
	snap := r.net.Snapshot()
	if snap.Partition == 0 {
		t.Error("partition drop counter = 0, want >0")
	}
	// Consistency between the two counters: drops during the cut are the
	// original send plus retransmits sent before the heal.
	if uint64(st.Retransmits)+1 < snap.Partition {
		t.Errorf("retransmits (%d) + original < partition drops (%d)", st.Retransmits, snap.Partition)
	}
}

func TestRetransmitReencodesDeadlineBudget(t *testing.T) {
	// Regression: a payload opening with a deadline-budget header must not
	// present its original budget after riding out retransmissions — the
	// client re-encodes the remaining budget before each retransmit, so
	// the server sees how much time is actually left.
	r := newRig(t, []netsim.NetworkOption{netsim.WithSeed(1)},
		WithRetryInterval(50*time.Millisecond), WithMaxAttempts(40))

	var mu sync.Mutex
	var budgets []time.Duration
	var body []byte
	dst, _ := r.serve(HandlerFunc(func(req *Request) (wire.Kind, []byte, []byte) {
		b, rest := wire.SplitDeadlineHeader(req.Frame.Payload)
		mu.Lock()
		budgets = append(budgets, b)
		body = append([]byte(nil), rest...)
		mu.Unlock()
		return wire.KindReply, nil, nil
	}))

	// Cut the request path so the first few transmissions vanish, then
	// heal: the first frame the server ever sees is a retransmission.
	r.net.Partition(1, 2)
	const cut = 300 * time.Millisecond
	heal := time.AfterFunc(cut, func() { r.net.Heal(1, 2) })
	defer heal.Stop()

	const total = 2 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), total)
	defer cancel()
	payload := append(wire.AppendDeadlineHeader(nil, total), []byte("work")...)
	if _, err := r.client.Call(ctx, dst, wire.KindRequest, payload); err != nil {
		t.Fatalf("call across partition+heal: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(budgets) == 0 {
		t.Fatal("server never saw the request")
	}
	got := budgets[0]
	if got == 0 {
		t.Fatal("retransmitted request lost its deadline header")
	}
	if got > total-cut+100*time.Millisecond {
		t.Errorf("server saw budget %v after a %v cut — stale original budget (%v) survived retransmission", got, cut, total)
	}
	if got <= 0 || got >= total {
		t.Errorf("server saw budget %v, want within (0, %v)", got, total)
	}
	if string(body) != "work" {
		t.Errorf("body after header rewrite = %q, want %q", body, "work")
	}
}
