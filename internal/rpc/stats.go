package rpc

import "sync/atomic"

// atomicStats is the lock-free backing store for ClientStats.
type atomicStats struct {
	calls       atomic.Uint64
	retransmits atomic.Uint64
	failures    atomic.Uint64
}

func (a *atomicStats) snapshot() ClientStats {
	return ClientStats{
		Calls:       a.calls.Load(),
		Retransmits: a.retransmits.Load(),
		Failures:    a.failures.Load(),
	}
}
