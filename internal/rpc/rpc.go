// Package rpc implements the classic remote-procedure-call baseline the
// proxy principle is positioned against, and the reliability machinery
// smart proxies reuse: client-side retransmission under a stable request
// id, and server-side duplicate suppression with a bounded reply cache
// (at-most-once execution semantics in the style of Birrell & Nelson).
//
// The layer is payload-agnostic: it moves opaque bytes. Invocation
// marshalling lives above it (internal/core), and service-private proxy
// protocols can ride the same Client/Server machinery with custom kinds.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/wire"
)

// Errors returned by the rpc layer.
var (
	// ErrTooManyRetries reports that every transmission attempt went
	// unanswered within the caller's deadline budget.
	ErrTooManyRetries = errors.New("rpc: retries exhausted")
	// ErrRetryBudget reports that a retransmission was due but the
	// destination's retry budget (WithRetryBudget) was exhausted: the
	// call fails instead of joining a retry storm. It wraps
	// ErrTooManyRetries so failure classification (breakers, failover)
	// treats both the same way — the request went unanswered and may
	// or may not have executed.
	ErrRetryBudget = fmt.Errorf("%w (retry budget exhausted)", ErrTooManyRetries)
	// ErrDeadlineBudget reports that the next scheduled retransmission
	// would fire after the caller's ctx deadline: there is no point
	// sleeping toward a wait we cannot complete, so the call fails fast
	// with the retry error instead of burning the remaining budget
	// asleep (a failover-capable caller can spend it on an alternate).
	// It wraps ErrTooManyRetries for the same classification reasons.
	ErrDeadlineBudget = fmt.Errorf("%w (backoff exceeds deadline budget)", ErrTooManyRetries)
)

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRetryInterval sets the base retransmission interval (default 50 ms).
// Setting it (without WithBackoff) also selects a fixed, unjittered
// interval, so tests that reason about exact retransmit counts stay
// deterministic.
func WithRetryInterval(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.retryEvery = d
			c.intervalSet = true
		}
	}
}

// WithMaxAttempts bounds total transmissions of one request (default 8;
// minimum 1).
func WithMaxAttempts(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.maxAttempts = n
		}
	}
}

// WithBackoff grows the retransmission interval by factor after every
// attempt, capped at max. Backoff implies full jitter (each wait drawn
// uniformly from (0, interval]) unless WithJitter(false) turns it off: a
// fleet of clients retrying a recovering node in lockstep is itself a
// failure mode.
func WithBackoff(factor float64, max time.Duration) ClientOption {
	return func(c *Client) {
		if factor > 1 {
			c.backoffFactor = factor
		}
		if max > 0 {
			c.backoffMax = max
		}
		c.backoffSet = true
	}
}

// WithJitter forces jitter on or off, overriding what the other options
// imply. With jitter on, every retransmit wait is drawn uniformly from
// (0, interval] — "full jitter", which decorrelates retry storms.
func WithJitter(on bool) ClientOption {
	return func(c *Client) {
		c.jitter = on
		c.jitterSet = true
	}
}

// WithObserver routes the client's counters into a shared observability
// sink and enables per-attempt trace spans. By default each client gets a
// private observer (counters still work, spans go to a private ring).
func WithObserver(o *obs.Observer) ClientOption {
	return func(c *Client) {
		if o != nil {
			c.obs = o
		}
	}
}

// WithRetryBudget caps this client's retransmission ratio per
// destination node: every fresh call deposits ratio tokens, every
// retransmission spends one, and a retransmission due with an empty
// bucket fails the call with ErrRetryBudget instead of transmitting.
// Non-positive arguments select the defaults (ratio 0.1, burst 10).
// Budgets are off by default: protocols that deliberately ride out long
// outages with sustained retransmission (replica repair, chaos
// harnesses) must keep them off, and deployments that want storm
// protection opt in (proxyd -overload does).
func WithRetryBudget(ratio, burst float64) ClientOption {
	return func(c *Client) { c.budget = overload.NewBudget(ratio, burst) }
}

// ClientStats counts client activity (read with Stats). It is a snapshot
// of the client's counters in the obs registry, kept as a struct so
// existing callers and tests read it unchanged.
type ClientStats struct {
	Calls       uint64
	Retransmits uint64
	Failures    uint64
	// BudgetDenied counts calls that failed with ErrRetryBudget: a
	// retransmission was due but the destination's retry budget was dry.
	BudgetDenied uint64
	// DeadlineFast counts calls that failed with ErrDeadlineBudget: the
	// next backoff would have slept past the caller's deadline.
	DeadlineFast uint64
}

// Client issues reliable request/reply calls out of one context. The zero
// value is unusable; construct with NewClient. Safe for concurrent use.
type Client struct {
	ktx           *kernel.Context
	retryEvery    time.Duration
	maxAttempts   int
	backoffFactor float64
	backoffMax    time.Duration
	jitter        bool
	jitterSet     bool
	intervalSet   bool
	backoffSet    bool

	budget *overload.Budget // nil unless WithRetryBudget

	obs   *obs.Observer
	where string
	// Registry-backed counters, resolved once at construction. Names are
	// scoped by the client's context address so clients sharing a cluster
	// registry stay distinguishable.
	calls        *obs.Counter
	retransmits  *obs.Counter
	failures     *obs.Counter
	budgetDenied *obs.Counter
	deadlineFast *obs.Counter
}

// NewClient builds a client over a kernel context. The default retry
// policy is jittered exponential backoff (base 50 ms, factor 2, cap 2 s);
// WithRetryInterval alone selects a fixed deterministic interval instead.
func NewClient(ktx *kernel.Context, opts ...ClientOption) *Client {
	c := &Client{
		ktx:         ktx,
		retryEvery:  50 * time.Millisecond,
		maxAttempts: 8,
	}
	for _, o := range opts {
		o(c)
	}
	switch {
	case !c.intervalSet && !c.backoffSet:
		// Nobody asked for a specific policy: back off with full jitter.
		c.backoffFactor = 2
		c.backoffMax = 2 * time.Second
		if !c.jitterSet {
			c.jitter = true
		}
	case c.backoffSet && !c.jitterSet:
		c.jitter = true
	}
	if c.obs == nil {
		c.obs = obs.NewObserver()
	}
	c.where = ktx.Addr().String()
	scope := "rpc.client[" + c.where + "]."
	c.calls = c.obs.Registry.Counter(scope + "calls")
	c.retransmits = c.obs.Registry.Counter(scope + "retransmits")
	c.failures = c.obs.Registry.Counter(scope + "failures")
	c.budgetDenied = c.obs.Registry.Counter(scope + "budget.denied")
	c.deadlineFast = c.obs.Registry.Counter(scope + "deadline.fastfail")
	if b := c.budget; b != nil {
		// Token levels are computed gauges: the budget already owns the
		// numbers, the registry just reads them at snapshot time. The
		// minimum across destinations is the one to alert on — it is the
		// destination closest to tripping ErrRetryBudget.
		c.obs.Registry.GaugeFunc(scope+"budget.tokens.min", func() string {
			tokens, _ := b.Poorest()
			return strconv.FormatFloat(tokens, 'f', 2, 64)
		})
		c.obs.Registry.GaugeFunc(scope+"budget.dests", func() string {
			_, dests := b.Poorest()
			return strconv.Itoa(dests)
		})
	}
	return c
}

// Context exposes the underlying kernel context (for layers that need to
// send unreliable one-ways alongside reliable calls).
func (c *Client) Context() *kernel.Context { return c.ktx }

// Observer exposes the client's observability sink (never nil).
func (c *Client) Observer() *obs.Observer { return c.obs }

// Stats returns a snapshot of the client counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Calls:        c.calls.Load(),
		Retransmits:  c.retransmits.Load(),
		Failures:     c.failures.Load(),
		BudgetDenied: c.budgetDenied.Load(),
		DeadlineFast: c.deadlineFast.Load(),
	}
}

// attemptRecorder records one trace span per transmission attempt of a
// call. It exists (instead of a closure) so untraced calls — rec == nil,
// every method a no-op — pay no allocation; it is per-call state and not
// safe for concurrent use.
type attemptRecorder struct {
	c     *Client
	sc    obs.SpanContext
	start time.Time
}

// end closes the current attempt's span; attempt is its 1-based ordinal.
func (a *attemptRecorder) end(attempt int, errText string) {
	if a == nil {
		return
	}
	tr := a.c.obs.Tracer
	tr.Record(obs.Span{
		Trace: a.sc.Trace, ID: tr.NewSpanID(), Parent: a.sc.Span,
		Name: fmt.Sprintf("rpc:attempt#%d", attempt), Where: a.c.where,
		Start: a.start, Dur: time.Since(a.start), Err: errText,
	})
	a.start = time.Now()
}

// sleepFor resolves one retransmit wait from the current base interval:
// the interval itself when deterministic, or a full-jitter draw from
// (0, interval] when jitter is on.
func (c *Client) sleepFor(interval time.Duration) time.Duration {
	if !c.jitter || interval <= 0 {
		return interval
	}
	return time.Duration(rand.Int63n(int64(interval))) + 1
}

// Call sends payload to the object at dst and waits for the response,
// retransmitting under the same request id until an answer arrives, the
// ctx expires, or attempts run out. kind is usually wire.KindRequest but
// may be any kind (service-private protocols included). A KindError
// response surfaces as *kernel.RemoteError.
func (c *Client) Call(ctx context.Context, dst wire.ObjAddr, kind wire.Kind, payload []byte) ([]byte, error) {
	f, err := c.CallFrame(ctx, dst, kind, payload)
	if err != nil {
		return nil, err
	}
	return f.Payload, nil
}

// CallFrame is Call returning the whole response frame (needed when the
// response kind itself is meaningful, as in private proxy protocols).
func (c *Client) CallFrame(ctx context.Context, dst wire.ObjAddr, kind wire.Kind, payload []byte) (*wire.Frame, error) {
	c.calls.Inc()
	if c.budget != nil {
		c.budget.Deposit(dst.Addr.Node)
	}
	id, ch, err := c.ktx.NewPending()
	if err != nil {
		return nil, err
	}
	defer c.ktx.CancelPending(id)

	// When the caller's ctx carries a span, every transmission attempt is
	// recorded as its own span under it — a retransmission storm becomes
	// visible as a fan of sibling attempts in the trace tree. The rpc
	// layer stays payload-agnostic: the trace header (if any) is already
	// inside payload, put there by the layer above. Untraced calls keep a
	// nil recorder, so the hot path allocates nothing for tracing.
	attempts := 1
	var rec *attemptRecorder
	if sc, traced := obs.SpanFromContext(ctx); traced {
		rec = &attemptRecorder{c: c, sc: sc, start: time.Now()}
	}

	// The request frame is pooled: transports copy it before Send
	// returns, and the deferred Release runs only after the last
	// (re)transmission, so recycling is safe.
	req := wire.GetFrame()
	defer req.Release()
	req.Kind = kind
	req.ReqID = id
	req.Dst = dst.Addr
	req.Object = dst.Object
	req.Payload = payload
	if err := c.ktx.Send(req); err != nil {
		c.failures.Inc()
		rec.end(attempts, err.Error())
		return nil, err
	}

	interval := c.retryEvery
	timer := getTimer(c.sleepFor(interval))
	defer putTimer(timer)
	for {
		select {
		case resp := <-ch:
			if resp == nil {
				c.failures.Inc()
				rec.end(attempts, kernel.ErrClosed.Error())
				return nil, kernel.ErrClosed
			}
			if resp.Kind == wire.KindError {
				rec.end(attempts, "remote error")
				return nil, kernel.RemoteErrorFrom(resp)
			}
			rec.end(attempts, "")
			return resp, nil
		case <-ctx.Done():
			c.failures.Inc()
			rec.end(attempts, ctx.Err().Error())
			return nil, ctx.Err()
		case <-timer.C:
			if attempts >= c.maxAttempts {
				c.failures.Inc()
				rec.end(attempts, ErrTooManyRetries.Error())
				return nil, ErrTooManyRetries
			}
			// The next wait this retry would schedule (backoff applied).
			next := interval
			if c.backoffFactor > 1 {
				next = time.Duration(float64(next) * c.backoffFactor)
				if c.backoffMax > 0 && next > c.backoffMax {
					next = c.backoffMax
				}
			}
			wait := c.sleepFor(next)
			if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= wait {
				// The retry's backoff delay exceeds the remaining deadline
				// budget: scheduling it means sleeping straight into the
				// deadline. Fail fast with the retry error instead — a
				// failover-capable caller can spend what budget remains on
				// an alternate binding rather than on a doomed sleep.
				c.deadlineFast.Inc()
				c.failures.Inc()
				rec.end(attempts, ErrDeadlineBudget.Error())
				return nil, ErrDeadlineBudget
			}
			if c.budget != nil && !c.budget.Spend(dst.Addr.Node) {
				// Retransmission due, but this destination's retry budget
				// is spent: failing here is what keeps a fleet of clients
				// from amplifying an outage into a retry storm.
				c.budgetDenied.Inc()
				c.failures.Inc()
				rec.end(attempts, ErrRetryBudget.Error())
				return nil, ErrRetryBudget
			}
			rec.end(attempts, "no reply (retransmitting)")
			attempts++
			c.retransmits.Inc()
			req.Flags |= wire.FlagRetransmit
			if wire.HasDeadlineHeader(payload) {
				// The payload opens with a deadline-budget header encoded
				// when the call began; the budget has been shrinking while
				// we waited. Re-encode what actually remains so the server
				// does not trust a stale, over-generous figure.
				if dl, ok := ctx.Deadline(); ok {
					req.Payload = wire.RewriteDeadlineHeader(payload, time.Until(dl))
				}
			}
			if err := c.ktx.Send(req); err != nil {
				c.failures.Inc()
				rec.end(attempts, err.Error())
				return nil, err
			}
			interval = next
			timer.Reset(wait)
		}
	}
}

// timerPool recycles retransmission timers: every call needs one, and a
// timer costs two allocations.
var timerPool = sync.Pool{New: func() any {
	t := time.NewTimer(time.Hour)
	t.Stop()
	return t
}}

// getTimer returns a pooled timer armed for d.
func getTimer(d time.Duration) *time.Timer {
	t := timerPool.Get().(*time.Timer)
	// The pooled timer is stopped with a drained channel (putTimer
	// guarantees it), so Reset is safe.
	t.Reset(d)
	return t
}

// putTimer stops and drains a timer so it can be pooled. Callers must
// no longer be selecting on t.C.
func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}
