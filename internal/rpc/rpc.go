// Package rpc implements the classic remote-procedure-call baseline the
// proxy principle is positioned against, and the reliability machinery
// smart proxies reuse: client-side retransmission under a stable request
// id, and server-side duplicate suppression with a bounded reply cache
// (at-most-once execution semantics in the style of Birrell & Nelson).
//
// The layer is payload-agnostic: it moves opaque bytes. Invocation
// marshalling lives above it (internal/core), and service-private proxy
// protocols can ride the same Client/Server machinery with custom kinds.
package rpc

import (
	"context"
	"errors"
	"time"

	"repro/internal/kernel"
	"repro/internal/wire"
)

// Errors returned by the rpc layer.
var (
	// ErrTooManyRetries reports that every transmission attempt went
	// unanswered within the caller's deadline budget.
	ErrTooManyRetries = errors.New("rpc: retries exhausted")
)

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRetryInterval sets the retransmission interval (default 50 ms).
func WithRetryInterval(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.retryEvery = d
		}
	}
}

// WithMaxAttempts bounds total transmissions of one request (default 8;
// minimum 1).
func WithMaxAttempts(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.maxAttempts = n
		}
	}
}

// WithBackoff grows the retransmission interval by factor after every
// attempt, capped at max. The default is no backoff (a fixed interval),
// which suits simulated LANs; deployments over real, congested networks
// should back off.
func WithBackoff(factor float64, max time.Duration) ClientOption {
	return func(c *Client) {
		if factor > 1 {
			c.backoffFactor = factor
		}
		if max > 0 {
			c.backoffMax = max
		}
	}
}

// ClientStats counts client activity (read with Stats).
type ClientStats struct {
	Calls       uint64
	Retransmits uint64
	Failures    uint64
}

// Client issues reliable request/reply calls out of one context. The zero
// value is unusable; construct with NewClient. Safe for concurrent use.
type Client struct {
	ktx           *kernel.Context
	retryEvery    time.Duration
	maxAttempts   int
	backoffFactor float64
	backoffMax    time.Duration

	stats atomicStats
}

// NewClient builds a client over a kernel context.
func NewClient(ktx *kernel.Context, opts ...ClientOption) *Client {
	c := &Client{
		ktx:         ktx,
		retryEvery:  50 * time.Millisecond,
		maxAttempts: 8,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Context exposes the underlying kernel context (for layers that need to
// send unreliable one-ways alongside reliable calls).
func (c *Client) Context() *kernel.Context { return c.ktx }

// Stats returns a snapshot of the client counters.
func (c *Client) Stats() ClientStats { return c.stats.snapshot() }

// Call sends payload to the object at dst and waits for the response,
// retransmitting under the same request id until an answer arrives, the
// ctx expires, or attempts run out. kind is usually wire.KindRequest but
// may be any kind (service-private protocols included). A KindError
// response surfaces as *kernel.RemoteError.
func (c *Client) Call(ctx context.Context, dst wire.ObjAddr, kind wire.Kind, payload []byte) ([]byte, error) {
	f, err := c.CallFrame(ctx, dst, kind, payload)
	if err != nil {
		return nil, err
	}
	return f.Payload, nil
}

// CallFrame is Call returning the whole response frame (needed when the
// response kind itself is meaningful, as in private proxy protocols).
func (c *Client) CallFrame(ctx context.Context, dst wire.ObjAddr, kind wire.Kind, payload []byte) (*wire.Frame, error) {
	c.stats.calls.Add(1)
	id, ch, err := c.ktx.NewPending()
	if err != nil {
		return nil, err
	}
	defer c.ktx.CancelPending(id)

	req := &wire.Frame{
		Kind:    kind,
		ReqID:   id,
		Dst:     dst.Addr,
		Object:  dst.Object,
		Payload: payload,
	}
	if err := c.ktx.Send(req); err != nil {
		c.stats.failures.Add(1)
		return nil, err
	}

	interval := c.retryEvery
	timer := time.NewTimer(interval)
	defer timer.Stop()
	attempts := 1
	for {
		select {
		case resp := <-ch:
			if resp == nil {
				c.stats.failures.Add(1)
				return nil, kernel.ErrClosed
			}
			if resp.Kind == wire.KindError {
				return nil, &kernel.RemoteError{From: resp.Src, Payload: resp.Payload}
			}
			return resp, nil
		case <-ctx.Done():
			c.stats.failures.Add(1)
			return nil, ctx.Err()
		case <-timer.C:
			if attempts >= c.maxAttempts {
				c.stats.failures.Add(1)
				return nil, ErrTooManyRetries
			}
			attempts++
			c.stats.retransmits.Add(1)
			req.Flags |= wire.FlagRetransmit
			if err := c.ktx.Send(req); err != nil {
				c.stats.failures.Add(1)
				return nil, err
			}
			if c.backoffFactor > 1 {
				interval = time.Duration(float64(interval) * c.backoffFactor)
				if c.backoffMax > 0 && interval > c.backoffMax {
					interval = c.backoffMax
				}
			}
			timer.Reset(interval)
		}
	}
}
