package rpc

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/kernel"
	"repro/internal/wire"
)

// Request is what a server-side Handler receives: the caller's identity
// and the opaque request payload.
type Request struct {
	From  wire.Addr
	ReqID uint64
	Kind  wire.Kind
	Frame *wire.Frame
}

// Handler executes one request and returns the reply payload (sent as
// replyKind) or an error payload (sent as KindError). Handlers run
// concurrently for distinct requests.
type Handler interface {
	Handle(req *Request) (replyKind wire.Kind, reply []byte, errPayload []byte)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(req *Request) (wire.Kind, []byte, []byte)

// Handle implements Handler.
func (fn HandlerFunc) Handle(req *Request) (wire.Kind, []byte, []byte) { return fn(req) }

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithReplyCache bounds the duplicate-suppression reply cache *per
// client* (default 128 entries each). Zero disables at-most-once
// filtering entirely, degrading the server to at-least-once execution —
// kept as an experiment knob (E7).
func WithReplyCache(entries int) ServerOption {
	return func(s *Server) { s.cacheSize = entries }
}

// WithClientLimit bounds how many distinct clients' conversation tables
// the server retains (default 256, LRU-evicted). A client whose table was
// evicted falls back to at-least-once for retransmissions of old
// requests — the standard trade-off of bounded conversation state.
func WithClientLimit(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.clientLimit = n
		}
	}
}

// ServerStats counts server activity.
type ServerStats struct {
	Executed    uint64 // requests actually run
	DupCached   uint64 // duplicates answered from the reply cache
	DupInFlight uint64 // duplicates dropped because the original is still executing
}

// Server wraps an application Handler with at-most-once semantics: each
// (caller, request id) executes once; retransmitted requests are answered
// from a bounded per-client reply cache or ignored while the original is
// in flight. Conversation state is isolated per client, so one chatty
// caller cannot evict another's duplicate-suppression entries. Server
// implements kernel.Handler, so it registers directly as an object.
type Server struct {
	handler     Handler
	cacheSize   int
	clientLimit int

	mu          sync.Mutex
	clients     map[wire.Addr]*clientState
	clientOrder *list.List // LRU of clients: front = most recent

	executed    atomic.Uint64
	dupCached   atomic.Uint64
	dupInFlight atomic.Uint64
}

// clientState is one caller's conversation table.
type clientState struct {
	addr     wire.Addr
	lruEl    *list.Element
	inflight map[uint64]bool
	cache    map[uint64]*list.Element
	order    *list.List // LRU of entries
}

type cacheEntry struct {
	reqID uint64
	kind  wire.Kind
	reply []byte
	isErr bool
}

// NewServer wraps handler with duplicate suppression.
func NewServer(handler Handler, opts ...ServerOption) *Server {
	s := &Server{
		handler:     handler,
		cacheSize:   128,
		clientLimit: 256,
		clients:     make(map[wire.Addr]*clientState),
		clientOrder: list.New(),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Executed:    s.executed.Load(),
		DupCached:   s.dupCached.Load(),
		DupInFlight: s.dupInFlight.Load(),
	}
}

// client returns (creating if needed) the conversation table for addr,
// marking it most-recently-used and evicting the coldest client beyond
// the limit.
func (s *Server) client(addr wire.Addr) *clientState {
	cs, ok := s.clients[addr]
	if ok {
		s.clientOrder.MoveToFront(cs.lruEl)
		return cs
	}
	cs = &clientState{
		addr:     addr,
		inflight: make(map[uint64]bool),
		cache:    make(map[uint64]*list.Element),
		order:    list.New(),
	}
	cs.lruEl = s.clientOrder.PushFront(cs)
	s.clients[addr] = cs
	for len(s.clients) > s.clientLimit {
		coldest := s.clientOrder.Back()
		if coldest == nil {
			break
		}
		s.clientOrder.Remove(coldest)
		delete(s.clients, coldest.Value.(*clientState).addr)
	}
	return cs
}

// HandleFrame implements kernel.Handler.
func (s *Server) HandleFrame(ktx *kernel.Context, f *wire.Frame) {
	oneWay := f.Flags&wire.FlagOneWay != 0

	if s.cacheSize > 0 && !oneWay {
		s.mu.Lock()
		cs := s.client(f.Src)
		if el, ok := cs.cache[f.ReqID]; ok {
			ent := el.Value.(*cacheEntry)
			cs.order.MoveToFront(el)
			s.mu.Unlock()
			s.dupCached.Add(1)
			if ent.isErr {
				_ = ktx.RespondError(f, ent.reply)
			} else {
				_ = ktx.Respond(f, ent.kind, ent.reply)
			}
			return
		}
		if cs.inflight[f.ReqID] {
			s.mu.Unlock()
			s.dupInFlight.Add(1)
			return // original execution will answer; client keeps waiting
		}
		cs.inflight[f.ReqID] = true
		s.mu.Unlock()
	}

	s.executed.Add(1)
	kind, reply, errPayload := s.handler.Handle(&Request{
		From:  f.Src,
		ReqID: f.ReqID,
		Kind:  f.Kind,
		Frame: f,
	})

	if s.cacheSize > 0 && !oneWay {
		s.remember(f.Src, f.ReqID, kind, reply, errPayload)
	}
	if oneWay {
		return
	}
	if errPayload != nil {
		_ = ktx.RespondError(f, errPayload)
		return
	}
	if kind == wire.KindInvalid {
		kind = wire.KindReply
	}
	_ = ktx.Respond(f, kind, reply)
}

func (s *Server) remember(from wire.Addr, reqID uint64, kind wire.Kind, reply, errPayload []byte) {
	ent := &cacheEntry{reqID: reqID, kind: kind, reply: reply}
	if errPayload != nil {
		ent.isErr = true
		ent.reply = errPayload
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cs := s.client(from)
	delete(cs.inflight, reqID)
	if el, ok := cs.cache[reqID]; ok {
		el.Value = ent
		cs.order.MoveToFront(el)
		return
	}
	cs.cache[reqID] = cs.order.PushFront(ent)
	for len(cs.cache) > s.cacheSize {
		oldest := cs.order.Back()
		if oldest == nil {
			break
		}
		cs.order.Remove(oldest)
		delete(cs.cache, oldest.Value.(*cacheEntry).reqID)
	}
}

// cacheLen reports one client's cached-entry count (tests).
func (s *Server) cacheLen(from wire.Addr) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs, ok := s.clients[from]
	if !ok {
		return 0
	}
	return len(cs.cache)
}
