package rpc

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/wire"
)

func TestRetryBudgetExhaustionFailsFast(t *testing.T) {
	r := newRig(t,
		[]netsim.NetworkOption{netsim.WithDefaultLink(netsim.LinkConfig{LossRate: 0.9999999}), netsim.WithSeed(1)},
		WithRetryInterval(time.Millisecond), WithMaxAttempts(100),
		WithRetryBudget(0.1, 2))
	dst, _ := r.serve(HandlerFunc(echo))

	// The bucket starts with 2 tokens: two retransmissions go out, the
	// third is denied — long before the 100-attempt policy would give up.
	_, err := r.client.Call(context.Background(), dst, wire.KindRequest, []byte("x"))
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("err = %v, want ErrRetryBudget", err)
	}
	if !errors.Is(err, ErrTooManyRetries) {
		t.Error("ErrRetryBudget does not wrap ErrTooManyRetries; failure classification will miss it")
	}
	if got := r.client.Stats().Retransmits; got != 2 {
		t.Errorf("retransmits = %d, want exactly the 2 budgeted", got)
	}
}

func TestRetryBudgetRefillsFromFreshCalls(t *testing.T) {
	r := newRig(t, []netsim.NetworkOption{netsim.WithSeed(1)},
		WithRetryInterval(time.Millisecond), WithMaxAttempts(100),
		WithRetryBudget(0.5, 1))
	dst, _ := r.serve(HandlerFunc(echo))

	lossy := netsim.LinkConfig{LossRate: 0.9999999}
	r.net.SetLink(1, 2, lossy)
	if _, err := r.client.Call(context.Background(), dst, wire.KindRequest, []byte("x")); !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("first lossy call: %v, want ErrRetryBudget", err)
	}
	drained := r.client.Stats().Retransmits

	// Fresh successful traffic earns the budget back (0.5/call).
	r.net.SetLink(1, 2, netsim.LinkConfig{})
	for i := 0; i < 4; i++ {
		if _, err := r.client.Call(context.Background(), dst, wire.KindRequest, []byte("ok")); err != nil {
			t.Fatal(err)
		}
	}
	r.net.SetLink(1, 2, lossy)
	if _, err := r.client.Call(context.Background(), dst, wire.KindRequest, []byte("y")); !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("second lossy call: %v, want ErrRetryBudget", err)
	}
	if got := r.client.Stats().Retransmits; got <= drained {
		t.Errorf("retransmits stayed at %d; replenished budget permitted none", got)
	}
}

func TestDeadlineBudgetFastFail(t *testing.T) {
	// The first retransmission would schedule a multi-second backoff wait
	// against a sub-second deadline: the call must fail fast with
	// ErrDeadlineBudget instead of sleeping into the deadline.
	r := newRig(t,
		[]netsim.NetworkOption{netsim.WithDefaultLink(netsim.LinkConfig{LossRate: 0.9999999}), netsim.WithSeed(1)},
		WithRetryInterval(5*time.Millisecond), WithMaxAttempts(10),
		WithBackoff(1000, 10*time.Second), WithJitter(false))
	dst, _ := r.serve(HandlerFunc(echo))

	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := r.client.Call(ctx, dst, wire.KindRequest, []byte("x"))
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineBudget) {
		t.Fatalf("err = %v, want ErrDeadlineBudget", err)
	}
	if !errors.Is(err, ErrTooManyRetries) {
		t.Error("ErrDeadlineBudget does not wrap ErrTooManyRetries")
	}
	if elapsed > 250*time.Millisecond {
		t.Errorf("fast-fail took %v; it slept toward the deadline", elapsed)
	}
}

func TestRetryBudgetOffByDefault(t *testing.T) {
	// Without WithRetryBudget the policy alone decides: all attempts are
	// spent even under total loss.
	r := newRig(t,
		[]netsim.NetworkOption{netsim.WithDefaultLink(netsim.LinkConfig{LossRate: 0.9999999}), netsim.WithSeed(1)},
		WithRetryInterval(time.Millisecond), WithMaxAttempts(5))
	dst, _ := r.serve(HandlerFunc(echo))
	_, err := r.client.Call(context.Background(), dst, wire.KindRequest, []byte("x"))
	if errors.Is(err, ErrRetryBudget) {
		t.Fatalf("budget engaged without opt-in: %v", err)
	}
	if !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("err = %v, want ErrTooManyRetries", err)
	}
	if got := r.client.Stats().Retransmits; got != 4 {
		t.Errorf("retransmits = %d, want all 4 the policy allows", got)
	}
}
