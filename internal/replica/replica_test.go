package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// regService is a deterministic register map (a state machine).
type regService struct {
	mu sync.Mutex
	m  map[string]int64
}

func newReg() *regService { return &regService{m: make(map[string]int64)} }

func (s *regService) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch method {
	case "read":
		k, _ := args[0].(string)
		return []any{s.m[k]}, nil
	case "sum":
		var total int64
		for _, v := range s.m {
			total += v
		}
		return []any{total}, nil
	case "set":
		k, _ := args[0].(string)
		v, _ := args[1].(int64)
		s.m[k] = v
		return []any{v}, nil
	case "incr":
		k, _ := args[0].(string)
		s.m[k]++
		return []any{s.m[k]}, nil
	case "fail":
		return nil, core.Errorf(core.CodeApp, method, "nope")
	default:
		return nil, core.NoSuchMethod(method)
	}
}

func (s *regService) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return codec.Marshal(s.m)
}

func (s *regService) Restore(data []byte) error {
	var m map[string]int64
	if err := codec.Unmarshal(data, &m); err != nil {
		return err
	}
	if m == nil {
		m = make(map[string]int64)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = m
	return nil
}

func (s *regService) get(k string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

var readMethods = []string{"read", "sum", "fail"}

type repWorld struct {
	factory *Factory
	svc     *regService
	ref     codec.Ref
	server  *core.Runtime
	clients []*core.Runtime
}

func newRepWorld(t *testing.T, nClients int) *repWorld {
	t.Helper()
	net := netsim.New()
	t.Cleanup(net.Close)
	w := &repWorld{
		factory: NewFactory(readMethods, func() StateMachine { return newReg() }),
		svc:     newReg(),
	}
	mk := func(id wire.NodeID) *core.Runtime {
		ep, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		node := kernel.NewNode(ep)
		t.Cleanup(func() { node.Close() })
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		rt := core.NewRuntime(ktx)
		rt.RegisterProxyType("Registers", w.factory)
		return rt
	}
	w.server = mk(1)
	for i := 0; i < nClients; i++ {
		w.clients = append(w.clients, mk(wire.NodeID(i+2)))
	}
	ref, err := w.server.Export(w.svc, "Registers")
	if err != nil {
		t.Fatal(err)
	}
	w.ref = ref
	return w
}

func (w *repWorld) proxy(t *testing.T, i int) *Proxy {
	t.Helper()
	p, err := w.clients[i].Import(w.ref)
	if err != nil {
		t.Fatal(err)
	}
	rp, ok := p.(*Proxy)
	if !ok {
		t.Fatalf("import produced %T", p)
	}
	return rp
}

func TestBootstrapCarriesState(t *testing.T) {
	w := newRepWorld(t, 1)
	w.svc.Invoke(context.Background(), "set", []any{"pre", int64(42)})
	p := w.proxy(t, 0)
	res, err := p.Invoke(context.Background(), "read", "pre")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != int64(42) {
		t.Errorf("bootstrap read = %v", res[0])
	}
	// And it really was served locally.
	if reads, _, _ := p.Stats(); reads != 1 {
		t.Errorf("localReads = %d", reads)
	}
}

func TestWritePropagatesToAllReplicas(t *testing.T) {
	w := newRepWorld(t, 3)
	ctx := context.Background()
	proxies := make([]*Proxy, 3)
	for i := range proxies {
		proxies[i] = w.proxy(t, i)
	}
	if _, err := proxies[0].Invoke(ctx, "set", "k", int64(7)); err != nil {
		t.Fatal(err)
	}
	// Synchronous replication: by the time the write returned, every
	// replica (and the primary) has the value.
	if got := w.svc.get("k"); got != 7 {
		t.Errorf("primary = %d", got)
	}
	for i, p := range proxies {
		res, err := p.Invoke(ctx, "read", "k")
		if err != nil {
			t.Fatal(err)
		}
		if res[0] != int64(7) {
			t.Errorf("replica %d read %v", i, res[0])
		}
		if reads, _, applied := p.Stats(); reads != 1 || applied != 1 {
			t.Errorf("replica %d stats: reads=%d applied=%d", i, reads, applied)
		}
	}
}

func TestReadYourWrites(t *testing.T) {
	w := newRepWorld(t, 1)
	p := w.proxy(t, 0)
	ctx := context.Background()
	for i := int64(1); i <= 5; i++ {
		if _, err := p.Invoke(ctx, "set", "x", i); err != nil {
			t.Fatal(err)
		}
		res, err := p.Invoke(ctx, "read", "x")
		if err != nil {
			t.Fatal(err)
		}
		if res[0] != i {
			t.Fatalf("after set %d read %v", i, res[0])
		}
	}
}

func TestConcurrentWritersConverge(t *testing.T) {
	w := newRepWorld(t, 3)
	ctx := context.Background()
	proxies := make([]*Proxy, 3)
	for i := range proxies {
		proxies[i] = w.proxy(t, i)
	}
	var wg sync.WaitGroup
	const perWriter = 20
	for i, p := range proxies {
		wg.Add(1)
		go func(i int, p *Proxy) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				if _, err := p.Invoke(ctx, "incr", "ctr"); err != nil {
					t.Error(err)
					return
				}
			}
		}(i, p)
	}
	wg.Wait()
	want := int64(3 * perWriter)
	if got := w.svc.get("ctr"); got != want {
		t.Fatalf("primary ctr = %d, want %d", got, want)
	}
	for i, p := range proxies {
		if got := p.Local().(*regService).get("ctr"); got != want {
			t.Errorf("replica %d ctr = %d, want %d", i, got, want)
		}
	}
}

func TestStubInterop(t *testing.T) {
	w := newRepWorld(t, 2)
	ctx := context.Background()
	rp := w.proxy(t, 0)
	stub := core.NewStub(w.clients[1], w.ref)

	// Stub write is ordered through the primary and reaches replicas.
	if _, err := stub.Invoke(ctx, "set", "s", int64(3)); err != nil {
		t.Fatal(err)
	}
	res, err := rp.Invoke(ctx, "read", "s")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != int64(3) {
		t.Errorf("replica read after stub write = %v", res[0])
	}
	// Stub read sees replica writes.
	if _, err := rp.Invoke(ctx, "set", "s2", int64(4)); err != nil {
		t.Fatal(err)
	}
	res, err = stub.Invoke(ctx, "read", "s2")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != int64(4) {
		t.Errorf("stub read = %v", res[0])
	}
}

func TestWriteErrorsDoNotReplicate(t *testing.T) {
	w := newRepWorld(t, 1)
	p := w.proxy(t, 0)
	ctx := context.Background()
	_, err := p.Invoke(ctx, "nope")
	var ie *core.InvokeError
	if !errors.As(err, &ie) || ie.Code != core.CodeNoSuchMethod {
		t.Fatalf("err = %v", err)
	}
	// The failing write was not broadcast.
	if _, _, applied := p.Stats(); applied != 0 {
		t.Errorf("applied = %d after failed write", applied)
	}
}

func TestReadErrorsServedLocally(t *testing.T) {
	w := newRepWorld(t, 1)
	p := w.proxy(t, 0)
	_, err := p.Invoke(context.Background(), "fail")
	var ie *core.InvokeError
	if !errors.As(err, &ie) || ie.Code != core.CodeApp {
		t.Errorf("err = %v", err)
	}
}

func TestCloseLeavesGroup(t *testing.T) {
	w := newRepWorld(t, 2)
	ctx := context.Background()
	p0, p1 := w.proxy(t, 0), w.proxy(t, 1)
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	// Writes still work with the remaining replica.
	if _, err := p0.Invoke(ctx, "set", "k", int64(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Invoke(ctx, "read", "k"); !errors.Is(err, core.ErrProxyClosed) {
		t.Errorf("invoke on closed = %v", err)
	}
	if err := p1.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestNonStateMachineExportFails(t *testing.T) {
	w := newRepWorld(t, 0)
	plain := core.ServiceFunc(func(ctx context.Context, method string, args []any) ([]any, error) {
		return nil, nil
	})
	_, err := w.server.Export(plain, "Registers")
	if !errors.Is(err, ErrNotStateMachine) {
		t.Errorf("export of plain service = %v", err)
	}
}

func TestLateJoinerSeesAllWrites(t *testing.T) {
	w := newRepWorld(t, 2)
	ctx := context.Background()
	p0 := w.proxy(t, 0)
	for i := int64(0); i < 10; i++ {
		if _, err := p0.Invoke(ctx, "set", fmt.Sprintf("k%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	late := w.proxy(t, 1)
	res, err := late.Invoke(ctx, "sum")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != int64(45) {
		t.Errorf("late joiner sum = %v, want 45", res[0])
	}
}

func TestRepHintRoundTrip(t *testing.T) {
	in := repHint{Ctrl: 9, Reads: []string{"a", "b"}}
	out, err := decodeRepHint(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Ctrl != in.Ctrl || len(out.Reads) != 2 || out.Reads[1] != "b" {
		t.Errorf("round-trip = %+v", out)
	}
	buf := in.encode()
	for i := 0; i < len(buf); i++ {
		if _, err := decodeRepHint(buf[:i]); err == nil {
			t.Errorf("decodeRepHint accepted %d-byte prefix", i)
		}
	}
}

func TestDeadReplicaEvicted(t *testing.T) {
	// A replica whose node vanishes must not wedge writes forever: the
	// primary's delivery timeout evicts it and later writes are fast.
	net := netsim.New()
	defer net.Close()
	factory := NewFactory(readMethods,
		func() StateMachine { return newReg() },
		WithDeliverTimeout(150*time.Millisecond))

	mk := func(id wire.NodeID) (*core.Runtime, *kernel.Node) {
		ep, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		node := kernel.NewNode(ep)
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		rt := core.NewRuntime(ktx)
		rt.RegisterProxyType("Registers", factory)
		return rt, node
	}
	server, serverNode := mk(1)
	defer serverNode.Close()
	healthy, healthyNode := mk(2)
	defer healthyNode.Close()
	doomed, doomedNode := mk(3)

	svc := newReg()
	ref, err := server.Export(svc, "Registers")
	if err != nil {
		t.Fatal(err)
	}
	pHealthy, err := healthy.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doomed.Import(ref); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := pHealthy.Invoke(ctx, "set", "k", int64(1)); err != nil {
		t.Fatal(err)
	}

	// Crash the doomed replica's whole node.
	doomedNode.Close()

	// The next write pays at most one delivery timeout, then the dead
	// replica is evicted and the write completes.
	start := time.Now()
	if _, err := pHealthy.Invoke(ctx, "set", "k", int64(2)); err != nil {
		t.Fatalf("write with dead replica: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("write took %v with a dead replica", elapsed)
	}
	// Subsequent writes are back to full speed (no dead member left).
	start = time.Now()
	if _, err := pHealthy.Invoke(ctx, "set", "k", int64(3)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("post-eviction write took %v", elapsed)
	}
	res, err := pHealthy.Invoke(ctx, "read", "k")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != int64(3) {
		t.Errorf("read = %v", res[0])
	}
}
