package replica

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/health"
	"repro/internal/netsim"
	"repro/internal/persist"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// The repair loop. Every proxy periodically reports its position to the
// primary (kindSync). The probe doubles as:
//
//   - anti-entropy: an evicted or restarted member is re-admitted and
//     handed the log suffix past its position, or a full snapshot when
//     compaction (or an epoch change) has outrun it;
//   - failure detection: probe failures accumulate as evidence that the
//     primary's node is dead, and conclusive evidence (crashed-node
//     errors, an open breaker, a fencing verdict) triggers election.
//
// Election is deterministic: the primary's join-ordered membership view
// rides every join reply and sync reply, and the first entry of the view
// is the successor. A proxy that is not the successor polls its peers
// (kindWhereIs on their member objects) until one of them announces a
// primary under a higher epoch, then adopts it and resynchronizes. The
// successor promotes itself: its local copy becomes the authoritative
// state, and a new sequencer continues the group's sequence under
// epoch+1, fencing anything the deposed primary still tries to deliver.
//
// A proxy never promotes while its state lags the epoch it follows
// (stateEpoch != epoch): promotion from unsynchronized state could lose
// acknowledged writes.

// electThreshold is how many consecutive inconclusive probe failures are
// treated as primary death.
const electThreshold = 3

// demoteThreshold is how many consecutive successful sync rounds with
// the primary's node graded strongly degraded (score ≥ demoteScore)
// escalate to a demotion election. Syncs succeeding means the primary
// is alive — this is the gray-failure path, where "alive but 10× slow"
// must not hold the group's write latency hostage indefinitely.
const (
	demoteThreshold = 3
	demoteScore     = 0.75
)

// healLoop runs until Close.
func (p *Proxy) healLoop() {
	t := time.NewTicker(p.f.syncInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
		p.healTick()
	}
}

func (p *Proxy) healTick() {
	p.mu.Lock()
	skip := p.closed || p.prim != nil
	p.mu.Unlock()
	if skip {
		return
	}
	err := p.syncOnce()
	if err == nil {
		p.mu.Lock()
		p.failures = 0
		p.mu.Unlock()
		p.checkDegradedPrimary()
		return
	}
	p.mu.Lock()
	p.failures++
	conclusive := deadEvidence(err)
	over := p.failures >= electThreshold
	p.mu.Unlock()
	if conclusive || over {
		p.elect()
	}
}

func (p *Proxy) syncTimeout() time.Duration {
	if d := 4 * p.f.syncInterval; d > 500*time.Millisecond {
		return d
	}
	return 500 * time.Millisecond
}

// syncOnce runs one repair probe against the current primary and applies
// whatever transfer it returns.
func (p *Proxy) syncOnce() error {
	p.mu.Lock()
	ctrl, stateEpoch, member := p.ctrl, p.stateEpoch, p.member
	p.mu.Unlock()
	applied := p.appliedSeq.Load()

	// Sync probes are repair traffic: shedding them under load would turn
	// congestion into spurious elections. The priority header exempts them.
	req := wire.AppendPriorityHeader(nil, wire.PriorityHigh)
	req = wire.AppendObjAddr(req, member.Self())
	req = wire.AppendUvarint(req, stateEpoch)
	req = wire.AppendUvarint(req, applied)

	ctx, cancel := context.WithTimeout(context.Background(), p.syncTimeout())
	defer cancel()
	reply, err := p.rt.GuardedCall(ctx, ctrl, kindSync, req)
	if err != nil {
		return err
	}

	mode, epoch, curSeq, blob, rawView, err := decodeSyncReply(reply.Payload)
	if err != nil {
		return err
	}
	if view, err := decodeView(rawView); err == nil && len(view) > 0 {
		p.mu.Lock()
		p.view = view
		p.mu.Unlock()
	}

	switch mode {
	case syncOK:
		// Current; nothing to transfer.
	case syncRecords:
		// Catch up from the log suffix. The position only moves forward:
		// live deliveries racing this transfer may already have advanced it.
		member.ResumeAt(epoch, curSeq, false, func() {
			for _, r := range blobRecords(blob) {
				if r.Seq <= p.appliedSeq.Load() {
					continue
				}
				p.apply(r.Seq, r.Payload)
			}
		})
	case syncSnapshot:
		// Full state transfer: the restored snapshot IS the state at
		// curSeq, so the position is set exactly (rewinding past any
		// divergent tail applied under a dead epoch). The dedup table
		// travels inside the blob — it is part of the state.
		member.ResumeAt(epoch, curSeq, true, func() {
			dedup, svcState := splitSnapshot(blob)
			if err := p.local.Restore(svcState); err != nil {
				return
			}
			if dedup != nil {
				_ = p.tab.Restore(dedup)
			}
			p.appliedSeq.Store(curSeq)
		})
		p.mu.Lock()
		if epoch > p.epoch {
			p.epoch = epoch
		}
		p.stateEpoch = epoch
		p.mu.Unlock()
	}
	return nil
}

// blobRecords decodes a sync-reply log suffix, tolerating nothing: a
// malformed suffix applies no records (the next probe will fetch a
// snapshot instead, since the position will still lag).
func blobRecords(blob []byte) []persist.Record {
	recs, err := decodeRecords(blob)
	if err != nil {
		return nil
	}
	return recs
}

func decodeSyncReply(payload []byte) (mode byte, epoch, curSeq uint64, blob, view []byte, err error) {
	if len(payload) < 1 {
		return 0, 0, 0, nil, nil, core.Errorf(core.CodeInternal, "sync", "replica: empty sync reply")
	}
	mode = payload[0]
	payload = payload[1:]
	epoch, n, err := wire.Uvarint(payload)
	if err != nil {
		return 0, 0, 0, nil, nil, err
	}
	payload = payload[n:]
	curSeq, n, err = wire.Uvarint(payload)
	if err != nil {
		return 0, 0, 0, nil, nil, err
	}
	payload = payload[n:]
	blob, n, err = wire.Bytes(payload)
	if err != nil {
		return 0, 0, 0, nil, nil, err
	}
	return mode, epoch, curSeq, blob, payload[n:], nil
}

// checkDegradedPrimary escalates a live-but-degraded primary to a
// demotion election. The evidence is the health monitor's gray-failure
// verdict on the primary's node, sustained across demoteThreshold
// consecutive sync rounds; the action is gated on this proxy being the
// synchronized successor (view head, stateEpoch == epoch), so exactly
// the member that can safely promote acts. Safety is the same as for
// crash promotion: the primary acks a write only after delivery reaches
// every member, so the successor's copy holds every acked write, and
// the new sequencer's epoch+1 fences anything the demoted primary still
// tries to deliver.
func (p *Proxy) checkDegradedPrimary() {
	mon := p.rt.Health()
	if mon == nil {
		return
	}
	p.mu.Lock()
	primNode := p.ctrl.Addr.Node
	successor := len(p.view) > 0 && p.view[0] == p.member.Self()
	synced := p.stateEpoch == p.epoch
	p.mu.Unlock()

	st := mon.Status(primNode)
	bad := st.State == health.StateDegraded && st.Score >= demoteScore
	p.mu.Lock()
	if !bad {
		p.degraded = 0
		p.mu.Unlock()
		return
	}
	p.degraded++
	over := p.degraded >= demoteThreshold
	if over {
		p.degraded = 0 // one election per sustained episode
	}
	p.mu.Unlock()
	if over && successor && synced {
		p.elect()
	}
}

// deadEvidence reports whether a probe failure conclusively means the
// primary is gone (dead node, open breaker) or deposed (fencing verdict),
// as opposed to a timeout that might be mere congestion.
func deadEvidence(err error) bool {
	var ie *core.InvokeError
	if errors.As(core.RemoteToInvokeError("sync", err), &ie) && ie.Code == core.CodeFenced {
		return true
	}
	return errors.Is(err, core.ErrCircuitOpen) ||
		errors.Is(err, rpc.ErrTooManyRetries) ||
		errors.Is(err, netsim.ErrNodeCrashed) ||
		errors.Is(err, netsim.ErrUnknownNode)
}

// elect runs one round of successor determination. Peers are polled
// first — if anyone already follows a higher epoch, adopt it (promotion
// may already have happened elsewhere). Otherwise, if this proxy heads
// the membership view, it promotes itself.
func (p *Proxy) elect() {
	p.mu.Lock()
	if p.closed || p.prim != nil {
		p.mu.Unlock()
		return
	}
	view := append([]wire.ObjAddr(nil), p.view...)
	curEpoch := p.epoch
	self := p.member.Self()
	p.mu.Unlock()

	bestEpoch, bestCtrl := curEpoch, wire.ObjAddr{}
	for _, peer := range view {
		if peer == self {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), p.syncTimeout())
		reply, err := p.rt.Client().Call(ctx, peer, kindWhereIs, nil)
		cancel()
		if err != nil {
			continue
		}
		epoch, n, err := wire.Uvarint(reply)
		if err != nil {
			continue
		}
		ctrl, _, err := wire.DecodeObjAddr(reply[n:])
		if err != nil {
			continue
		}
		if epoch > bestEpoch {
			bestEpoch, bestCtrl = epoch, ctrl
		}
	}
	if bestEpoch > curEpoch {
		p.adopt(bestEpoch, bestCtrl)
		return
	}
	if len(view) > 0 && view[0] == self {
		p.promote()
	}
}

// adopt switches this proxy to a newer primary incarnation. The member
// pauses first — deliveries under the new epoch are acknowledged and
// buffered, deliveries from the deposed epoch are fenced — and the
// immediate resync fetches a full snapshot (the primary always snapshots
// across epochs), whose ResumeAt ends the pause.
func (p *Proxy) adopt(epoch uint64, ctrl wire.ObjAddr) {
	p.mu.Lock()
	if epoch <= p.epoch || p.closed || p.prim != nil {
		p.mu.Unlock()
		return
	}
	p.epoch = epoch
	p.ctrl = ctrl
	p.failures = 0
	member := p.member
	p.mu.Unlock()
	member.Pause(epoch)
	_ = p.syncOnce() // retried by the loop on failure
}

// promote makes this proxy the group's primary: its local copy becomes
// the authoritative state under a fresh epoch, logged to a fresh
// write-ahead log, with an initially empty delivery set that survivors
// rejoin through their own repair loops.
func (p *Proxy) promote() {
	p.mu.Lock()
	if p.prim != nil || p.closed || p.stateEpoch != p.epoch {
		p.mu.Unlock()
		return
	}
	newEpoch := p.epoch + 1
	member := p.member
	p.mu.Unlock()

	// Fence the dead epoch before capturing state, so nothing can apply
	// to the local copy mid-snapshot.
	member.Pause(newEpoch)
	var prim *primary
	member.ResumeAt(newEpoch, 0, false, func() {
		applied := p.appliedSeq.Load()
		state, err := p.local.Snapshot()
		if err != nil {
			return
		}
		// The baseline snapshot carries the member's dedup table: every
		// write the dead primary acked was delivered here first, so its
		// identity is in this table, and the new incarnation inherits it —
		// a client retransmitting across the promotion is answered from
		// cache, not re-applied.
		state = combineSnapshot(p.tab.Snapshot(), state)
		wal, err := persist.OpenWAL(p.f.walStore(p.rt.Addr()))
		if err != nil {
			return
		}
		if err := wal.Snapshot(newEpoch, applied, state); err != nil {
			return
		}
		np := &primary{
			rt: p.rt, svc: p.local, isRead: p.isRead, cap: p.ref.Cap,
			wal: wal, tab: p.tab, name: p.f.name, snapEvery: p.f.snapEvery,
		}
		seqOpts := []group.SequencerOption{
			group.WithEpoch(newEpoch),
			group.WithStartSeq(applied),
			group.WithOnEvict(np.onEvict),
		}
		if p.f.deliverTimeout > 0 {
			seqOpts = append(seqOpts, group.WithDeliverTimeout(p.f.deliverTimeout))
		}
		np.seq = group.NewSequencer(p.rt, seqOpts...)
		np.id = p.rt.Kernel().Register(rpc.NewServer(rpc.HandlerFunc(np.handle)))
		prim = np
	})
	if prim == nil {
		return
	}
	p.mu.Lock()
	p.prim = prim
	p.epoch = newEpoch
	p.stateEpoch = newEpoch
	p.ctrl = wire.ObjAddr{Addr: p.rt.Addr(), Object: prim.id}
	p.view = nil
	p.failures = 0
	p.mu.Unlock()
}
