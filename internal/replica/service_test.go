package replica

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestStatusReportsPrimaryAndReplicas(t *testing.T) {
	w := newRepWorld(t, 2)
	ctx := context.Background()
	p := w.proxy(t, 0)
	if _, err := p.Invoke(ctx, "set", "k", int64(3)); err != nil {
		t.Fatal(err)
	}

	// The primary's runtime reports the group it coordinates, with the
	// member's applied sequence.
	groups := Status(w.server)
	if len(groups) != 1 {
		t.Fatalf("server Status = %d groups, want 1", len(groups))
	}
	g := groups[0]
	if g.Role != "primary" || g.Epoch != 1 || g.Seq != 1 {
		t.Fatalf("primary status = %+v", g)
	}
	if len(g.Members) != 1 || g.Members[0].Acked != 1 {
		t.Fatalf("primary members = %+v", g.Members)
	}

	// A replica's runtime reports its own applied position and who it
	// believes the primary is.
	groups = Status(w.clients[0])
	if len(groups) != 1 {
		t.Fatalf("client Status = %d groups, want 1", len(groups))
	}
	g = groups[0]
	if g.Role != "replica" || g.Seq != 1 || g.Primary == "" {
		t.Fatalf("replica status = %+v", g)
	}

	// The status service renders the same view as a text table.
	svc := NewService(w.server)
	vals, err := svc.Invoke(ctx, "groups", nil)
	if err != nil {
		t.Fatal(err)
	}
	text, _ := vals[0].(string)
	if !strings.Contains(text, "primary") || !strings.Contains(text, "acked=1") {
		t.Fatalf("groups table:\n%s", text)
	}

	// Proxy.Ref round-trips the imported reference.
	if got := p.Ref(); got.Type != w.ref.Type || got.Target != w.ref.Target {
		t.Fatalf("Ref = %+v, want %+v", got, w.ref)
	}

	if _, err := svc.Invoke(ctx, "nope", nil); err == nil {
		t.Fatal("unknown method succeeded")
	}
}

func TestStatusEmptyRuntime(t *testing.T) {
	w := newRepWorld(t, 1)
	// The extra client never imported anything: no groups registered.
	if groups := Status(w.clients[0]); len(groups) != 0 {
		t.Fatalf("Status on idle runtime = %+v", groups)
	}
	text, err := core.Call1[string](context.Background(), serviceProxy(t, w), "groups")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "no replica groups") {
		t.Fatalf("empty table = %q", text)
	}
}

// serviceProxy exports the status service from an idle runtime and
// invokes it through a plain stub, the same path proxyctl group uses.
func serviceProxy(t *testing.T, w *repWorld) core.Proxy {
	t.Helper()
	ref, err := w.clients[0].Export(NewService(w.clients[0]), TypeName)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.server.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFactoryNameAppearsInStatus(t *testing.T) {
	if f := NewFactory(nil, nil, WithName("orders")); f.name != "orders" {
		t.Fatalf("name = %q", f.name)
	}
}
