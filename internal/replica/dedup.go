package replica

import (
	"repro/internal/core"
	"repro/internal/session"
	"repro/internal/wire"
)

// Exactly-once dedup in the replicated proxy. The dedup table is part of
// the replicated state machine: the primary consults it before applying
// a session-stamped write, logs a dedup record next to the write's WAL
// record, and every transfer of state (join bootstrap, sync snapshot,
// promotion capture, WAL-snapshot compaction) carries the table along
// with the service state. Members rebuild the cached replies
// deterministically — each delivery re-invokes the write against the
// local copy, and the StateMachine contract (same writes, same order,
// same results) means the locally-encoded reply is byte-equivalent to
// the one the primary acked — so promotion at a new epoch inherits the
// dedup state without any reply shipping, and a retransmission landing
// on the new primary after a crash is recognized, not re-applied.

// snapMagic prefixes a combined [dedup table][service state] snapshot
// blob. It sits in wire's reserved optional-header range (≥ 0xF0, above
// every codec tag), so a legacy plain service snapshot — whose first
// byte is a codec tag or a state-map marshal — can never collide with
// it; splitSnapshot falls back to treating such blobs as bare service
// state, which keeps old WAL snapshots and mixed-version groups
// readable.
const snapMagic = 0xF9

// combineSnapshot wraps service state with the dedup table's snapshot:
// [snapMagic][bytes dedup][svc].
func combineSnapshot(dedup, svc []byte) []byte {
	buf := make([]byte, 0, 1+10+len(dedup)+len(svc))
	buf = append(buf, snapMagic)
	buf = wire.AppendBytes(buf, dedup)
	return append(buf, svc...)
}

// splitSnapshot undoes combineSnapshot. A blob without the magic (an
// older incarnation's snapshot) is all service state, no dedup.
func splitSnapshot(blob []byte) (dedup, svc []byte) {
	if len(blob) == 0 || blob[0] != snapMagic {
		return nil, blob
	}
	d, n, err := wire.Bytes(blob[1:])
	if err != nil {
		return nil, blob
	}
	return d, blob[1+n:]
}

// SplitSnapshotState undoes the combined-snapshot framing for readers
// outside the package — WAL audits that want to restore the service
// state a snapshot carries, or inspect the dedup table it traveled
// with. Returns (nil, blob) for legacy plain service snapshots.
func SplitSnapshotState(blob []byte) (dedup, svc []byte) { return splitSnapshot(blob) }

// commitApplied records the reply for one applied session-stamped write
// in tab, reconstructing its encoded form locally (determinism makes it
// byte-equivalent everywhere). An un-encodable reply aborts the mark
// rather than caching garbage; invocation errors are cached as errors so
// a retransmission sees the same verdict.
func commitApplied(rt *core.Runtime, tab *session.Table, sid, cseq uint64, method string, results []any, invokeErr error) {
	if invokeErr != nil {
		tab.Commit(sid, cseq, wire.KindError, true, core.EncodeInvokeError(method, invokeErr))
		return
	}
	lowered, err := rt.LowerArgs(results)
	if err != nil {
		tab.Abort(sid, cseq)
		return
	}
	reply, err := core.EncodeResults(lowered)
	if err != nil {
		tab.Abort(sid, cseq)
		return
	}
	tab.Commit(sid, cseq, kindWrite, false, reply)
}
