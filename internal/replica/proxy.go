package replica

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/rpc"
	"repro/internal/session"
	"repro/internal/wire"
)

// joinTimeout bounds the bootstrap round when a proxy is created.
const joinTimeout = 10 * time.Second

func contextWithJoinTimeout() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), joinTimeout)
}

// Proxy is the replicated proxy: a full local copy of the object plus
// group membership. Implements core.Proxy.
//
// Beyond serving calls, a proxy is the group's unit of fault tolerance:
// its repair loop (heal.go) keeps it in sync with the primary, and when
// the primary dies the deterministic successor among the proxies promotes
// itself — its local copy becomes the authoritative one, under a new
// epoch that fences the old primary.
type Proxy struct {
	rt     *core.Runtime
	f      *Factory
	ref    codec.Ref
	isRead func(string) bool
	local  StateMachine
	// tab mirrors the primary's exactly-once dedup table: seeded from the
	// bootstrap snapshot, maintained by every delivered write (dedup.go),
	// and handed to the new primary on promotion.
	tab  *session.Table
	stop chan struct{}

	mu     sync.Mutex
	ctrl   wire.ObjAddr
	member *group.Member
	closed bool
	// epoch is the primary incarnation this proxy follows; stateEpoch is
	// the incarnation its local state was last synchronized with. They
	// diverge between adopting a new primary and completing state
	// transfer from it — a window in which this proxy must not promote.
	epoch      uint64
	stateEpoch uint64
	// view is the primary's join-ordered membership view, refreshed on
	// join and on every sync round; its first live entry is the
	// deterministic successor.
	view []wire.ObjAddr
	// prim is non-nil once this proxy has promoted itself to primary.
	prim *primary
	// failures counts consecutive repair-probe failures of any kind;
	// crossing a threshold is treated as primary-death evidence even when
	// no single error is conclusive.
	failures int
	// degraded counts consecutive *successful* sync rounds during which
	// the health monitor graded the primary's node strongly degraded —
	// the gray-failure analogue of failures (see checkDegradedPrimary).
	degraded int

	localReads atomic.Uint64
	writesSent atomic.Uint64
	applied    atomic.Uint64
	appliedSeq atomic.Uint64
}

// apply is the group delivery callback: one ordered write at a time. The
// leading capability token was verified by the primary before broadcast,
// so it is ignored here.
func (p *Proxy) apply(seq uint64, payload []byte) {
	_, method, args, err := core.DecodeRequest(p.rt.Decoder(), payload)
	if err != nil {
		// A malformed broadcast would desynchronize this replica; there is
		// no caller to report to, so count it and keep the copy read-only
		// stale rather than crash.
		return
	}
	// The primary already returned results to the writer; replicas apply
	// for state — and, for session-stamped writes, reconstruct the reply
	// deterministically into the dedup table, so a promoted successor can
	// answer the writer's retransmission from cache.
	results, ierr := p.local.Invoke(context.Background(), method, args)
	if sid, cseq, ok := wire.PeekSession(payload); ok {
		commitApplied(p.rt, p.tab, sid, cseq, method, results, ierr)
	}
	p.applied.Add(1)
	p.appliedSeq.Store(seq)
}

// handleRepair answers repair-protocol queries addressed to this proxy's
// member object. kindWhereIs is how peers discover a promoted primary:
// the reply is this proxy's current belief, epoch-stamped so stale
// beliefs lose.
func (p *Proxy) handleRepair(req *rpc.Request) (wire.Kind, []byte, []byte) {
	switch req.Kind {
	case kindWhereIs:
		p.mu.Lock()
		epoch, ctrl := p.epoch, p.ctrl
		p.mu.Unlock()
		reply := wire.AppendUvarint(nil, epoch)
		reply = wire.AppendObjAddr(reply, ctrl)
		return kindWhereIs, reply, nil
	default:
		return 0, nil, core.EncodeInvokeError("", core.Errorf(core.CodeInternal, "", "replica: unexpected kind %v", req.Kind))
	}
}

// Invoke implements core.Proxy.
func (p *Proxy) Invoke(ctx context.Context, method string, args ...any) ([]any, error) {
	p.mu.Lock()
	closed, prim := p.closed, p.prim
	p.mu.Unlock()
	if closed {
		return nil, core.ErrProxyClosed
	}
	if p.isRead(method) {
		// Local reads stay uninstrumented beyond the counter: they are the
		// ns-scale hot path the replicated proxy exists to provide.
		p.localReads.Add(1)
		return p.local.Invoke(ctx, method, args)
	}
	p.writesSent.Add(1)
	if prim != nil {
		// Promoted: this proxy's copy is the authoritative one; the write
		// path is in-process.
		return invokeOnPrimary(ctx, prim, method, args)
	}
	ctx, finish := p.rt.Tracer().StartChild(ctx, "replica.write:"+method, p.rt.Where())
	results, err := p.writeToPrimary(ctx, method, args)
	finish(err)
	return results, err
}

// maxWriteAttempts caps a sessioned write's cross-promotion retry loop;
// the ctx deadline is the intended bound, this is the backstop.
const maxWriteAttempts = 50

// writeToPrimary funnels one write through the primary's ordered path.
// The request payload carries the span and deadline budget from ctx so
// the primary's apply and broadcast hops land in the same trace and
// abandoned writes cancel server-side. The call goes through the
// runtime's shared circuit breaker, like every other proxy kind's.
//
// With sessions enabled the exactly-once identity is minted ONCE, before
// any attempt, and the loop below retries the SAME (sid, seq) across
// primary death and promotion: each attempt re-reads the control address
// (the heal loop rewrites it when it adopts a successor, and p.prim when
// this proxy promotes itself), so the retransmission lands on the new
// primary — whose inherited dedup table recognizes it if the old primary
// already applied it. Without a session the write stays single-shot:
// re-sending a maybe-applied write would risk double-apply.
func (p *Proxy) writeToPrimary(ctx context.Context, method string, args []any) ([]any, error) {
	sessioned := false
	if sid, _ := core.SessionFromContext(ctx); sid != 0 {
		sessioned = true
	} else if m := p.rt.Sessions(); m != nil && !core.IdempotentFrom(ctx) && !p.rt.IsIdempotent(p.ref.Type, method) {
		sid, seq := m.Next()
		ctx = core.ContextWithSession(ctx, sid, seq)
		sessioned = true
	}
	lowered, err := p.rt.LowerArgs(args)
	if err != nil {
		return nil, core.Errorf(core.CodeInternal, method, "%s", err)
	}
	payload, err := core.EncodeRequestCtx(ctx, p.ref.Cap, method, lowered)
	if err != nil {
		return nil, core.Errorf(core.CodeInternal, method, "%s", err)
	}
	for attempt := 1; ; attempt++ {
		p.mu.Lock()
		ctrl, prim, closed := p.ctrl, p.prim, p.closed
		p.mu.Unlock()
		if closed {
			return nil, core.ErrProxyClosed
		}
		if prim != nil {
			// Promoted locally mid-retry: the in-process path dedups
			// through the shared table under the same identity.
			return invokeOnPrimary(ctx, prim, method, args)
		}
		reply, err := p.rt.GuardedCall(ctx, ctrl, kindWrite, payload)
		if err == nil {
			return core.DecodeResults(p.rt.Decoder(), reply.Payload)
		}
		ierr := core.RemoteToInvokeError(method, err)
		if !sessioned || attempt >= maxWriteAttempts || !retryableWrite(ierr) {
			return nil, ierr
		}
		// Give the heal loop a beat to elect/adopt the successor, then
		// re-present the same identity to whatever primary it found.
		select {
		case <-ctx.Done():
			return nil, ierr
		case <-p.stop:
			return nil, core.ErrProxyClosed
		case <-time.After(p.f.syncInterval):
		}
	}
}

// retryableWrite reports whether a sessioned write may be re-presented:
// the primary is unreachable, fenced, or shedding — conditions failover
// resolves. Everything else (app errors, denial, expiry) is final.
func retryableWrite(err error) bool {
	var ie *core.InvokeError
	if !errors.As(err, &ie) {
		return false
	}
	switch ie.Code {
	case core.CodeUnavailable, core.CodeFenced, core.CodeOverload:
		return true
	default:
		return false
	}
}

// Ref implements core.Proxy.
func (p *Proxy) Ref() codec.Ref { return p.ref }

// Stats reports (reads served locally, writes sent to the primary, writes
// applied by delivery).
func (p *Proxy) Stats() (localReads, writesSent, applied uint64) {
	return p.localReads.Load(), p.writesSent.Load(), p.applied.Load()
}

// AppliedSeq reports the sequence number of the last write applied to the
// local copy (via delivery, log-suffix catch-up, or snapshot transfer).
func (p *Proxy) AppliedSeq() uint64 { return p.appliedSeq.Load() }

// Epoch reports the primary incarnation this proxy currently follows.
func (p *Proxy) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// IsPrimary reports whether this proxy has promoted itself to primary.
func (p *Proxy) IsPrimary() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.prim != nil
}

// Local exposes the local replica (tests verify convergence through it).
func (p *Proxy) Local() StateMachine { return p.local }

// Close implements core.Proxy: leave the group and drop the copy.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	member := p.member
	p.mu.Unlock()

	close(p.stop)
	unregisterStatus(p.rt, p)
	p.rt.ForgetProxy(p.ref.Target)
	if member != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = member.Leave(ctx)
	}
	return nil
}
