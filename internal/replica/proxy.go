package replica

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/wire"
)

// joinTimeout bounds the bootstrap round when a proxy is created.
const joinTimeout = 10 * time.Second

func contextWithJoinTimeout() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), joinTimeout)
}

// Proxy is the replicated proxy: a full local copy of the object plus
// group membership. Implements core.Proxy.
type Proxy struct {
	rt     *core.Runtime
	ref    codec.Ref
	ctrl   wire.ObjAddr
	isRead func(string) bool
	local  StateMachine

	mu     sync.Mutex
	member *group.Member
	closed bool

	localReads atomic.Uint64
	writesSent atomic.Uint64
	applied    atomic.Uint64
}

// apply is the group delivery callback: one ordered write at a time. The
// leading capability token was verified by the primary before broadcast,
// so it is ignored here.
func (p *Proxy) apply(seq uint64, payload []byte) {
	_, method, args, err := core.DecodeRequest(p.rt.Decoder(), payload)
	if err != nil {
		// A malformed broadcast would desynchronize this replica; there is
		// no caller to report to, so count it and keep the copy read-only
		// stale rather than crash.
		return
	}
	// Result and error are discarded: the primary already returned them to
	// the writer; replicas apply purely for state.
	_, _ = p.local.Invoke(context.Background(), method, args)
	p.applied.Add(1)
}

// Invoke implements core.Proxy.
func (p *Proxy) Invoke(ctx context.Context, method string, args ...any) ([]any, error) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return nil, core.ErrProxyClosed
	}
	if p.isRead(method) {
		// Local reads stay uninstrumented beyond the counter: they are the
		// ns-scale hot path the replicated proxy exists to provide.
		p.localReads.Add(1)
		return p.local.Invoke(ctx, method, args)
	}
	p.writesSent.Add(1)
	ctx, finish := p.rt.Tracer().StartChild(ctx, "replica.write:"+method, p.rt.Where())
	results, err := p.writeToPrimary(ctx, method, args)
	finish(err)
	return results, err
}

// writeToPrimary funnels one write through the primary's ordered path.
// The request payload carries the span and deadline budget from ctx so
// the primary's apply and broadcast hops land in the same trace and
// abandoned writes cancel server-side. The call goes through the
// runtime's shared circuit breaker, like every other proxy kind's.
func (p *Proxy) writeToPrimary(ctx context.Context, method string, args []any) ([]any, error) {
	lowered, err := p.rt.LowerArgs(args)
	if err != nil {
		return nil, core.Errorf(core.CodeInternal, method, "%s", err)
	}
	payload, err := core.EncodeRequestCtx(ctx, p.ref.Cap, method, lowered)
	if err != nil {
		return nil, core.Errorf(core.CodeInternal, method, "%s", err)
	}
	reply, err := p.rt.GuardedCall(ctx, p.ctrl, kindWrite, payload)
	if err != nil {
		return nil, core.RemoteToInvokeError(method, err)
	}
	return core.DecodeResults(p.rt.Decoder(), reply.Payload)
}

// Ref implements core.Proxy.
func (p *Proxy) Ref() codec.Ref { return p.ref }

// Stats reports (reads served locally, writes sent to the primary, writes
// applied by delivery).
func (p *Proxy) Stats() (localReads, writesSent, applied uint64) {
	return p.localReads.Load(), p.writesSent.Load(), p.applied.Load()
}

// Local exposes the local replica (tests verify convergence through it).
func (p *Proxy) Local() StateMachine { return p.local }

// Close implements core.Proxy: leave the group and drop the copy.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	member := p.member
	p.mu.Unlock()

	p.rt.ForgetProxy(p.ref.Target)
	if member != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = member.Leave(ctx)
	}
	return nil
}
