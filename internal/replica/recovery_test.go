package replica

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/persist"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// recWorld is a cluster tuned for fast failure detection: short rpc
// retries, short delivery timeout, short repair interval.
type recWorld struct {
	net     *netsim.Network
	factory *Factory
	svc     *regService
	ref     codec.Ref
	server  *core.Runtime
	clients []*core.Runtime
	stores  map[wire.Addr]*persist.MemStore
}

func newRecWorld(t *testing.T, nClients int, opts ...FactoryOption) *recWorld {
	t.Helper()
	w := &recWorld{
		net:    netsim.New(),
		svc:    newReg(),
		stores: make(map[wire.Addr]*persist.MemStore),
	}
	t.Cleanup(w.net.Close)
	base := []FactoryOption{
		WithDeliverTimeout(80 * time.Millisecond),
		WithSyncInterval(25 * time.Millisecond),
		WithWALStore(func(node wire.Addr) persist.LogStore {
			// One durable store per node, shared across incarnations, so
			// tests can audit the log after the fact.
			if s, ok := w.stores[node]; ok {
				return s
			}
			s := persist.NewMemStore(nil)
			w.stores[node] = s
			return s
		}),
	}
	w.factory = NewFactory(readMethods, func() StateMachine { return newReg() }, append(base, opts...)...)
	mk := func(id wire.NodeID) *core.Runtime {
		ep, err := w.net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		node := kernel.NewNode(ep)
		t.Cleanup(func() { node.Close() })
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		// The retry budget (~300ms) must outlive the primary's delivery
		// timeout: a write stalls for one eviction window before it is
		// acknowledged. A dead node still fails conclusively (retries
		// exhausted) well inside the repair probe's timeout.
		rt := core.NewRuntime(ktx,
			core.WithClient(rpc.NewClient(ktx, rpc.WithRetryInterval(5*time.Millisecond), rpc.WithMaxAttempts(60))))
		rt.RegisterProxyType("Registers", w.factory)
		return rt
	}
	w.server = mk(1)
	for i := 0; i < nClients; i++ {
		w.clients = append(w.clients, mk(wire.NodeID(i+2)))
	}
	ref, err := w.server.Export(w.svc, "Registers")
	if err != nil {
		t.Fatal(err)
	}
	w.ref = ref
	return w
}

func (w *recWorld) proxy(t *testing.T, i int) *Proxy {
	t.Helper()
	p, err := w.clients[i].Import(w.ref)
	if err != nil {
		t.Fatal(err)
	}
	return p.(*Proxy)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	end := time.Now().Add(d)
	for time.Now().Before(end) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestEvictedReplicaRejoins(t *testing.T) {
	// Regression for the permanent-eviction bug: a replica evicted for
	// being slow (here: partitioned) but still alive must rejoin through
	// its repair loop and converge, not stay stale forever.
	w := newRecWorld(t, 2)
	ctx := context.Background()
	p2, p3 := w.proxy(t, 0), w.proxy(t, 1)
	if _, err := p2.Invoke(ctx, "set", "k", int64(1)); err != nil {
		t.Fatal(err)
	}

	w.net.Partition(1, 3)
	// These writes evict the partitioned replica (delivery times out) and
	// must still succeed for everyone else.
	for i := int64(2); i <= 4; i++ {
		if _, err := p2.Invoke(ctx, "set", "k", i); err != nil {
			t.Fatalf("write %d with partitioned replica: %v", i, err)
		}
	}
	if got := p3.Local().(*regService).get("k"); got == 4 {
		t.Fatal("partitioned replica saw the write — partition did not bite")
	}

	w.net.Heal(1, 3)
	waitFor(t, 3*time.Second, "evicted replica to rejoin and converge", func() bool {
		return p3.Local().(*regService).get("k") == 4
	})
	// And it is a full member again: the next write reaches it synchronously.
	if _, err := p2.Invoke(ctx, "set", "k", int64(5)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, "rejoined replica to apply new writes", func() bool {
		return p3.Local().(*regService).get("k") == 5
	})
}

func TestCrashedReplicaRejoinsViaSnapshot(t *testing.T) {
	// A replica whose node crashes misses enough writes that the log is
	// compacted past its position: rejoin must fall back to a full
	// snapshot transfer and still converge.
	w := newRecWorld(t, 2, WithSnapshotEvery(4))
	ctx := context.Background()
	p2, p3 := w.proxy(t, 0), w.proxy(t, 1)
	_ = p3

	w.net.Crash(3)
	for i := int64(1); i <= 10; i++ {
		if _, err := p2.Invoke(ctx, "set", fmt.Sprintf("k%d", i), i); err != nil {
			t.Fatalf("write %d with crashed replica: %v", i, err)
		}
	}
	w.net.Restart(3)
	waitFor(t, 3*time.Second, "restarted replica to converge", func() bool {
		res, err := p3.Invoke(ctx, "sum")
		return err == nil && res[0] == int64(55)
	})
	if got := p3.AppliedSeq(); got != p2.AppliedSeq() {
		t.Errorf("applied seq after rejoin: %d vs %d", got, p2.AppliedSeq())
	}
}

func TestPrimaryCrashPromotesSuccessor(t *testing.T) {
	// The tentpole invariant: the primary's node dies mid-group, the
	// deterministic successor (first joiner) promotes itself under a new
	// epoch, survivors adopt it, writes flow again, no acked write is
	// lost, and the deposed primary is fenced.
	w := newRecWorld(t, 2)
	ctx := context.Background()
	p2, p3 := w.proxy(t, 0), w.proxy(t, 1)
	for i := int64(1); i <= 5; i++ {
		if _, err := p3.Invoke(ctx, "set", fmt.Sprintf("k%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	// Let a sync round distribute the two-member view before the crash.
	waitFor(t, 2*time.Second, "views to include both members", func() bool {
		p2.mu.Lock()
		n := len(p2.view)
		p2.mu.Unlock()
		return n == 2
	})

	// Isolate (not kill) the primary so it survives as a zombie for the
	// fencing check below.
	w.net.Partition(1, 2)
	w.net.Partition(1, 3)

	waitFor(t, 5*time.Second, "successor to promote", p2.IsPrimary)
	if got := p2.Epoch(); got != 2 {
		t.Errorf("promoted epoch = %d, want 2", got)
	}
	waitFor(t, 5*time.Second, "survivor to adopt the new primary", func() bool {
		return p3.Epoch() == 2 && !p3.IsPrimary()
	})

	// No acked write was lost across the failover.
	res, err := p3.Invoke(ctx, "sum")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != int64(15) {
		t.Errorf("post-failover sum = %v, want 15", res[0])
	}
	// Writes flow again, through both the promoted proxy and the adopted
	// survivor, and replicate between them.
	if _, err := p2.Invoke(ctx, "set", "k6", int64(6)); err != nil {
		t.Fatalf("write on promoted proxy: %v", err)
	}
	if _, err := p3.Invoke(ctx, "set", "k7", int64(7)); err != nil {
		t.Fatalf("write on adopted survivor: %v", err)
	}
	waitFor(t, 2*time.Second, "post-failover writes to replicate", func() bool {
		return p3.Local().(*regService).get("k6") == 6 &&
			p2.Local().(*regService).get("k7") == 7
	})

	// The new primary's write-ahead log alone reconstructs every acked
	// write (durability before acknowledgement held across promotion).
	wal, err := persist.OpenWAL(w.stores[w.clients[0].Addr()])
	if err != nil {
		t.Fatal(err)
	}
	rec := newReg()
	if _, _, state, ok := wal.LastSnapshot(); ok {
		_, svcState := splitSnapshot(state)
		if err := rec.Restore(svcState); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range wal.Records() {
		_, method, args, err := core.DecodeRequest(w.clients[0].Decoder(), r.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rec.Invoke(ctx, method, args); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(1); i <= 7; i++ {
		if got := rec.get(fmt.Sprintf("k%d", i)); got != i {
			t.Errorf("WAL replay k%d = %d, want %d", i, got, i)
		}
	}

	// Heal the partition: the deposed primary is a zombie. Its next write
	// attempt is fenced by the members and must come back CodeFenced —
	// never acknowledged, never retried onto the new group.
	w.net.Heal(1, 2)
	w.net.Heal(1, 3)
	h, err := decodeRepHint(w.ref.Hint)
	if err != nil {
		t.Fatal(err)
	}
	oldCtrl := wire.ObjAddr{Addr: w.ref.Target.Addr, Object: h.Ctrl}
	raw, err := core.EncodeRequest(w.ref.Cap, "set", []any{"zz", int64(99)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.clients[1].Client().Call(ctx, oldCtrl, kindWrite, raw)
	var ie *core.InvokeError
	if !errors.As(core.RemoteToInvokeError("set", err), &ie) || ie.Code != core.CodeFenced {
		t.Fatalf("write to deposed primary = %v, want CodeFenced", err)
	}
	// Once fenced, the deposed primary refuses everything, joins included.
	_, err = w.clients[1].Client().Call(ctx, oldCtrl, kindSync,
		append(wire.AppendObjAddr(nil, p3.member.Self()), wire.AppendUvarint(wire.AppendUvarint(nil, 1), 0)...))
	if !errors.As(core.RemoteToInvokeError("sync", err), &ie) || ie.Code != core.CodeFenced {
		t.Fatalf("sync to deposed primary = %v, want CodeFenced", err)
	}
	// The fenced write never leaked into the live group.
	if got := p2.Local().(*regService).get("zz"); got != 0 {
		t.Errorf("fenced write visible in new group: %d", got)
	}
}

func TestExportReassumesFromWAL(t *testing.T) {
	// A primary restarted on top of a durable log store reassumes the
	// group: state is rebuilt from snapshot + suffix and the sequencer
	// continues at the next epoch.
	store := persist.NewMemStore(nil)
	factory := NewFactory(readMethods, func() StateMachine { return newReg() },
		WithSnapshotEvery(3),
		WithWALStore(func(wire.Addr) persist.LogStore { return store }))

	// mkWorld builds one incarnation: a server node and one client node.
	mkWorld := func() (server, client *core.Runtime, stop func()) {
		net := netsim.New()
		var closers []func()
		mk := func(id wire.NodeID) *core.Runtime {
			ep, err := net.Attach(id)
			if err != nil {
				t.Fatal(err)
			}
			node := kernel.NewNode(ep)
			closers = append(closers, func() { node.Close() })
			ktx, err := node.NewContext()
			if err != nil {
				t.Fatal(err)
			}
			rt := core.NewRuntime(ktx)
			rt.RegisterProxyType("Registers", factory)
			return rt
		}
		server, client = mk(1), mk(2)
		return server, client, func() {
			for _, c := range closers {
				c()
			}
			net.Close()
		}
	}

	ctx := context.Background()
	server1, client1, stop1 := mkWorld()
	svc1 := newReg()
	ref1, err := server1.Export(svc1, "Registers")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := client1.Import(ref1)
	if err != nil {
		t.Fatal(err)
	}
	// Each write is WAL-appended before acknowledgement.
	for i := int64(1); i <= 7; i++ {
		if _, err := p1.Invoke(ctx, "set", fmt.Sprintf("k%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	stop1() // crash the incarnation; only the log store survives

	server2, client2, stop2 := mkWorld()
	defer stop2()
	svc2 := newReg()
	ref2, err := server2.Export(svc2, "Registers")
	if err != nil {
		t.Fatal(err)
	}
	// The fresh service was rebuilt from the log before the export
	// completed — snapshot (compaction ran at write 3 and 6) plus suffix.
	for i := int64(1); i <= 7; i++ {
		if got := svc2.get(fmt.Sprintf("k%d", i)); got != i {
			t.Errorf("reassumed k%d = %d, want %d", i, got, i)
		}
	}
	// The new incarnation runs at the next epoch and keeps accepting
	// writes that extend the same log.
	p2, err := client2.Import(ref2)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.(*Proxy).Epoch(); got != 2 {
		t.Errorf("reassumed epoch = %d, want 2", got)
	}
	if _, err := p2.Invoke(ctx, "set", "k8", int64(8)); err != nil {
		t.Fatal(err)
	}
	wal, err := persist.OpenWAL(store)
	if err != nil {
		t.Fatal(err)
	}
	if le, ls := wal.Last(); le != 2 || ls != 8 {
		t.Errorf("reassumed WAL position = (epoch %d, seq %d), want (2, 8)", le, ls)
	}
}
