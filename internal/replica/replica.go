// Package replica implements the replicated smart proxy: every proxy
// holds a full copy of the object and serves reads locally, while writes
// funnel through the primary, which applies them and pushes them to every
// copy in a single total order (state-machine replication over
// internal/group's sequenced broadcast).
//
// The client cannot tell a replicated proxy from a stub — identical
// Invoke interface, very different cost profile: reads are local calls
// (experiment E4 measures the scaling), writes pay a broadcast round.
//
// Consistency: writes are linearizable (the primary orders them and a
// write returns only after every replica has applied it); reads are
// served from the local replica, so a read concurrent with a write may
// see either side of it, and read-your-writes holds because the writer's
// own replica is updated before its write returns.
package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// kindWrite is the private kind a replica proxy uses to submit a write to
// the primary.
const kindWrite = wire.KindCustom + 40

// StateMachine is a deterministic service whose full state can be
// snapshotted and restored: applying the same writes in the same order to
// the same starting snapshot must yield the same state everywhere.
// (Structurally identical to migrate.Migratable; the semantic contract —
// determinism — is what this name adds.)
type StateMachine interface {
	core.Service
	Snapshot() ([]byte, error)
	Restore(data []byte) error
}

// ErrNotStateMachine reports an export of a service that cannot be
// replicated.
var ErrNotStateMachine = errors.New("replica: service does not implement StateMachine")

// FactoryOption configures a Factory.
type FactoryOption func(*Factory)

// WithDeliverTimeout bounds how long a write waits for one replica to
// acknowledge before the primary suspects it dead and evicts it (default
// 5s; shrink it to trade write-latency tail for faster failover).
func WithDeliverTimeout(d time.Duration) FactoryOption {
	return func(f *Factory) { f.deliverTimeout = d }
}

// Factory is the replicated proxy factory. The service side constructs it
// with the read-method set and a constructor for fresh replicas; every
// runtime that imports the service registers the same factory.
// Implements core.ProxyFactory and core.Exporter.
type Factory struct {
	reads          []string
	ctor           func() StateMachine
	deliverTimeout time.Duration
}

// NewFactory builds a replicating factory: readMethods are served from the
// local copy; everything else is a write ordered by the primary. ctor
// constructs the empty replica into which the bootstrap snapshot is
// restored.
func NewFactory(readMethods []string, ctor func() StateMachine, opts ...FactoryOption) *Factory {
	f := &Factory{
		reads: append([]string(nil), readMethods...),
		ctor:  ctor,
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// repHint is the private bootstrap blob: the primary control object plus
// the read-method set.
type repHint struct {
	Ctrl  wire.ObjectID
	Reads []string
}

func (h repHint) encode() []byte {
	buf := wire.AppendUvarint(nil, uint64(h.Ctrl))
	buf = wire.AppendUvarint(buf, uint64(len(h.Reads)))
	for _, r := range h.Reads {
		buf = wire.AppendString(buf, r)
	}
	return buf
}

func decodeRepHint(src []byte) (repHint, error) {
	var h repHint
	ctrl, n, err := wire.Uvarint(src)
	if err != nil {
		return h, err
	}
	src = src[n:]
	h.Ctrl = wire.ObjectID(ctrl)
	count, n, err := wire.Uvarint(src)
	if err != nil {
		return h, err
	}
	src = src[n:]
	if count > uint64(len(src)) {
		return h, codec.ErrElementCount
	}
	for i := uint64(0); i < count; i++ {
		s, n, err := wire.String(src)
		if err != nil {
			return h, err
		}
		src = src[n:]
		h.Reads = append(h.Reads, s)
	}
	return h, nil
}

// Export implements core.Exporter: it stands up the primary (sequencer +
// control object) for this service.
func (f *Factory) Export(rt *core.Runtime, svc core.Service, ref codec.Ref) (core.Service, []byte, error) {
	sm, ok := svc.(StateMachine)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %T", ErrNotStateMachine, svc)
	}
	p := &primary{rt: rt, svc: sm, isRead: readSet(f.reads), cap: ref.Cap}
	var seqOpts []group.SequencerOption
	if f.deliverTimeout > 0 {
		seqOpts = append(seqOpts, group.WithDeliverTimeout(f.deliverTimeout))
	}
	p.seq = group.NewSequencer(rt, seqOpts...)
	srv := rpc.NewServer(rpc.HandlerFunc(p.handle))
	p.id = rt.Kernel().Register(srv)
	h := repHint{Ctrl: p.id, Reads: f.reads}
	return &wrapped{p: p}, h.encode(), nil
}

// New implements core.ProxyFactory: build the local replica, join the
// group, restore the snapshot, serve.
func (f *Factory) New(rt *core.Runtime, ref codec.Ref) (core.Proxy, error) {
	h, err := decodeRepHint(ref.Hint)
	if err != nil {
		return nil, fmt.Errorf("replica: bad hint in %s: %w", ref, err)
	}
	if f.ctor == nil {
		return nil, fmt.Errorf("replica: factory has no constructor (importing runtime must register the service's factory)")
	}
	p := &Proxy{
		rt:     rt,
		ref:    ref,
		ctrl:   wire.ObjAddr{Addr: ref.Target.Addr, Object: h.Ctrl},
		isRead: readSet(h.Reads),
		local:  f.ctor(),
	}
	ctx, cancel := contextWithJoinTimeout()
	defer cancel()
	member, boot, err := group.Join(ctx, rt, p.ctrl, p.apply)
	if err != nil {
		return nil, fmt.Errorf("replica: join: %w", err)
	}
	if err := p.local.Restore(boot); err != nil {
		_ = member.Leave(ctx)
		return nil, fmt.Errorf("replica: restore bootstrap: %w", err)
	}
	p.member = member
	return p, nil
}

func readSet(reads []string) func(string) bool {
	m := make(map[string]bool, len(reads))
	for _, r := range reads {
		m[r] = true
	}
	return func(s string) bool { return m[s] }
}

// primary owns the authoritative copy and the write order.
type primary struct {
	rt     *core.Runtime
	svc    StateMachine
	isRead func(string) bool
	seq    *group.Sequencer
	id     wire.ObjectID
	// cap mirrors the export's capability token for the private write path.
	cap uint64

	// mu serializes apply+broadcast for writes and snapshot+join for
	// joins, which is what makes the bootstrap sequence point exact.
	mu     sync.Mutex
	writes uint64
}

func (p *primary) handle(req *rpc.Request) (wire.Kind, []byte, []byte) {
	switch req.Kind {
	case group.KindJoin:
		member, _, err := wire.DecodeObjAddr(req.Frame.Payload)
		if err != nil {
			return 0, nil, core.EncodeInvokeError("join", err)
		}
		p.mu.Lock()
		boot, err := p.svc.Snapshot()
		if err != nil {
			p.mu.Unlock()
			return 0, nil, core.EncodeInvokeError("join", err)
		}
		bootSeq := p.seq.Seq()
		p.seq.AddMember(member)
		p.mu.Unlock()
		reply, err := group.EncodeJoinReply(bootSeq, boot)
		if err != nil {
			return 0, nil, core.EncodeInvokeError("join", err)
		}
		return group.KindJoin, reply, nil
	case group.KindLeave:
		member, _, err := wire.DecodeObjAddr(req.Frame.Payload)
		if err != nil {
			return 0, nil, core.EncodeInvokeError("leave", err)
		}
		p.seq.RemoveMember(member)
		return group.KindLeave, nil, nil
	case kindWrite:
		return p.handleWrite(req)
	default:
		return 0, nil, core.EncodeInvokeError("", core.Errorf(core.CodeInternal, "", "replica: unexpected kind %v", req.Kind))
	}
}

func (p *primary) handleWrite(req *rpc.Request) (wire.Kind, []byte, []byte) {
	sc, budget, cap, method, args, err := core.DecodeRequestFull(p.rt.Decoder(), req.Frame.Payload)
	if err != nil {
		return 0, nil, core.EncodeInvokeError("", core.Errorf(core.CodeInternal, "", "%s", err))
	}
	if p.cap != 0 && cap != p.cap {
		return 0, nil, core.EncodeInvokeError(method, core.Errorf(core.CodeDenied, method, "capability required"))
	}
	ctx, cancel := core.ApplyBudget(context.Background(), budget)
	defer cancel()
	finish := func(error) {}
	if sc.Trace != 0 {
		// The broadcast to members derives from this ctx, so each member's
		// delivery round-trip shows up as a child rpc span.
		ctx = obs.ContextWithSpan(ctx, sc)
		ctx, finish = p.rt.Tracer().StartSpan(ctx, "replica.apply:"+method, p.rt.Where())
	}
	results, errPayload := p.applyWrite(ctx, req.From, method, args, req.Frame.Payload)
	if errPayload != nil {
		finish(core.DecodeInvokeError(errPayload))
		return 0, nil, errPayload
	}
	finish(nil)
	lowered, err := p.rt.LowerArgs(results)
	if err != nil {
		return 0, nil, core.EncodeInvokeError(method, core.Errorf(core.CodeInternal, method, "%s", err))
	}
	reply, err := core.EncodeResults(lowered)
	if err != nil {
		return 0, nil, core.EncodeInvokeError(method, core.Errorf(core.CodeInternal, method, "%s", err))
	}
	return kindWrite, reply, nil
}

// applyWrite runs one write at the primary and pushes it to every replica
// before returning. rawPayload is the already-encoded request, forwarded
// verbatim to replicas.
func (p *primary) applyWrite(ctx context.Context, from wire.Addr, method string, args []any, rawPayload []byte) ([]any, []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	results, err := p.svc.Invoke(core.WithCaller(ctx, from), method, args)
	if err != nil {
		return nil, core.EncodeInvokeError(method, err)
	}
	p.writes++
	if _, err := p.seq.Broadcast(ctx, rawPayload); err != nil {
		// The write is applied at the primary; a broadcast failure means
		// some replica may be behind. Fail loudly so the caller knows.
		return nil, core.EncodeInvokeError(method, core.Errorf(core.CodeUnavailable, method, "replica broadcast: %s", err))
	}
	return results, nil
}

// Replicas reports the current replica count (tests/benches).
func (p *primary) replicas() int { return p.seq.Members() }

// wrapped serves the standard invocation path (plain stub clients): reads
// hit the primary copy; writes enter the ordered write path, so stub
// writers and replicated readers stay coherent.
type wrapped struct {
	p *primary
}

// Invoke implements core.Service.
func (w *wrapped) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	if w.p.isRead(method) {
		return w.p.svc.Invoke(ctx, method, args)
	}
	from, _ := core.CallerFrom(ctx)
	lowered, err := w.p.rt.LowerArgs(args)
	if err != nil {
		return nil, core.Errorf(core.CodeInternal, method, "%s", err)
	}
	raw, err := core.EncodeRequest(w.p.cap, method, lowered)
	if err != nil {
		return nil, core.Errorf(core.CodeInternal, method, "%s", err)
	}
	results, errPayload := w.p.applyWrite(ctx, from, method, args, raw)
	if errPayload != nil {
		return nil, core.DecodeInvokeError(errPayload)
	}
	return results, nil
}
