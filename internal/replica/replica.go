// Package replica implements the replicated smart proxy: every proxy
// holds a full copy of the object and serves reads locally, while writes
// funnel through the primary, which applies them and pushes them to every
// copy in a single total order (state-machine replication over
// internal/group's sequenced broadcast).
//
// The client cannot tell a replicated proxy from a stub — identical
// Invoke interface, very different cost profile: reads are local calls
// (experiment E4 measures the scaling), writes pay a broadcast round.
//
// Consistency: writes are linearizable (the primary orders them and a
// write returns only after every replica has applied it); reads are
// served from the local replica, so a read concurrent with a write may
// see either side of it, and read-your-writes holds because the writer's
// own replica is updated before its write returns.
//
// Fault tolerance: the primary appends every ordered write to a
// write-ahead log (internal/persist) before acknowledging it, and each
// proxy runs a repair loop (heal.go) that rejoins after eviction, fetches
// missed state from the primary (log suffix or full snapshot), and — when
// the primary's node dies — promotes a deterministic successor under a
// new epoch that fences the deposed primary. A primary restarted on top
// of a durable log store reassumes the sequencer role at a fresh epoch.
// DESIGN.md's "Recovery" subsection documents the protocol and its
// single-failure guarantee.
package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/rpc"
	"repro/internal/session"
	"repro/internal/wire"
)

// Private protocol kinds between replica proxies and the primary.
const (
	// kindWrite submits a write to the primary's ordered path.
	kindWrite = wire.KindCustom + 40
	// kindSync is the repair/anti-entropy probe: a member reports its
	// position and gets back nothing (in sync), a log suffix, or a full
	// snapshot — and is re-added to the delivery set if it was evicted.
	kindSync = wire.KindCustom + 41
	// kindWhereIs asks a *member* (not the primary) who it believes the
	// primary is; the answer carries an epoch so stale beliefs lose.
	kindWhereIs = wire.KindCustom + 42
)

// StateMachine is a deterministic service whose full state can be
// snapshotted and restored: applying the same writes in the same order to
// the same starting snapshot must yield the same state everywhere.
// (Structurally identical to migrate.Migratable; the semantic contract —
// determinism — is what this name adds.)
type StateMachine interface {
	core.Service
	Snapshot() ([]byte, error)
	Restore(data []byte) error
}

// ErrNotStateMachine reports an export of a service that cannot be
// replicated.
var ErrNotStateMachine = errors.New("replica: service does not implement StateMachine")

// FactoryOption configures a Factory.
type FactoryOption func(*Factory)

// WithDeliverTimeout bounds how long a write waits for one replica to
// acknowledge before the primary suspects it dead and evicts it (default
// 5s; shrink it to trade write-latency tail for faster failover). An
// evicted replica that is merely slow, not dead, rejoins through the
// repair loop.
func WithDeliverTimeout(d time.Duration) FactoryOption {
	return func(f *Factory) { f.deliverTimeout = d }
}

// WithSyncInterval sets the repair-loop period: how often each proxy
// confirms it is still a member, fetches missed state, and probes the
// primary's liveness (default 1s; tests shrink it for fast failover).
func WithSyncInterval(d time.Duration) FactoryOption {
	return func(f *Factory) {
		if d > 0 {
			f.syncInterval = d
		}
	}
}

// WithWALStore supplies the durable store backing the write-ahead log of
// whichever node becomes primary (the exporter at first, a promoted
// successor later). The default is a fresh in-memory store per
// incarnation — appropriate on the simulated network, where netsim's
// Restart models in-memory state as durable. proxyd passes file-backed
// stores so a real restart reassumes the group.
func WithWALStore(fn func(node wire.Addr) persist.LogStore) FactoryOption {
	return func(f *Factory) { f.walStore = fn }
}

// WithSnapshotEvery sets how many writes the primary logs between
// full-state snapshots (which also truncate the log). Default 64.
func WithSnapshotEvery(n uint64) FactoryOption {
	return func(f *Factory) {
		if n > 0 {
			f.snapEvery = n
		}
	}
}

// WithName labels the group in the replica status service (proxyctl
// group). Default "replica".
func WithName(name string) FactoryOption {
	return func(f *Factory) { f.name = name }
}

// Factory is the replicated proxy factory. The service side constructs it
// with the read-method set and a constructor for fresh replicas; every
// runtime that imports the service registers the same factory.
// Implements core.ProxyFactory.
type Factory struct {
	reads          []string
	ctor           func() StateMachine
	deliverTimeout time.Duration
	syncInterval   time.Duration
	walStore       func(node wire.Addr) persist.LogStore
	snapEvery      uint64
	name           string
}

var _ core.ProxyFactory = (*Factory)(nil)

// NewFactory builds a replicating factory: readMethods are served from the
// local copy; everything else is a write ordered by the primary. ctor
// constructs the empty replica into which the bootstrap snapshot is
// restored.
func NewFactory(readMethods []string, ctor func() StateMachine, opts ...FactoryOption) *Factory {
	f := &Factory{
		reads:        append([]string(nil), readMethods...),
		ctor:         ctor,
		syncInterval: time.Second,
		walStore:     func(wire.Addr) persist.LogStore { return persist.NewMemStore(nil) },
		snapEvery:    64,
		name:         "replica",
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// repHint is the private bootstrap blob: the primary control object plus
// the read-method set.
type repHint struct {
	Ctrl  wire.ObjectID
	Reads []string
}

func (h repHint) encode() []byte {
	buf := wire.AppendUvarint(nil, uint64(h.Ctrl))
	buf = wire.AppendUvarint(buf, uint64(len(h.Reads)))
	for _, r := range h.Reads {
		buf = wire.AppendString(buf, r)
	}
	return buf
}

func decodeRepHint(src []byte) (repHint, error) {
	var h repHint
	ctrl, n, err := wire.Uvarint(src)
	if err != nil {
		return h, err
	}
	src = src[n:]
	h.Ctrl = wire.ObjectID(ctrl)
	count, n, err := wire.Uvarint(src)
	if err != nil {
		return h, err
	}
	src = src[n:]
	if count > uint64(len(src)) {
		return h, codec.ErrElementCount
	}
	for i := uint64(0); i < count; i++ {
		s, n, err := wire.String(src)
		if err != nil {
			return h, err
		}
		src = src[n:]
		h.Reads = append(h.Reads, s)
	}
	return h, nil
}

// Export implements the server half of core.ProxyFactory: it stands up
// the primary (sequencer +
// control object) for this service. If the factory's log store already
// holds a previous incarnation's write-ahead log, the primary reassumes
// the group: state is rebuilt from the last snapshot plus the logged
// suffix, and the sequencer restarts at the next epoch so any survivor of
// the old incarnation is fenced.
func (f *Factory) Export(rt *core.Runtime, svc core.Service, ref codec.Ref) (core.Service, []byte, error) {
	sm, ok := svc.(StateMachine)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %T", ErrNotStateMachine, svc)
	}
	wal, err := persist.OpenWAL(f.walStore(rt.Addr()))
	if err != nil {
		return nil, nil, fmt.Errorf("replica: open wal: %w", err)
	}
	tab := session.NewTable(session.Config{})
	epoch, startSeq := uint64(1), uint64(0)
	if le, ls := wal.Last(); le > 0 {
		// Reassume a crashed incarnation's group from its log. The dedup
		// table is rebuilt along with the state: the snapshot carries its
		// baseline, and replaying each logged write re-records its reply,
		// so a client retransmission that outlived the crash is recognized
		// by the reassumed incarnation instead of re-applied.
		if _, _, state, ok := wal.LastSnapshot(); ok {
			dedup, svcState := splitSnapshot(state)
			if dedup != nil {
				_ = tab.Restore(dedup)
			}
			if err := sm.Restore(svcState); err != nil {
				return nil, nil, fmt.Errorf("replica: restore wal snapshot: %w", err)
			}
		}
		for _, r := range wal.Records() {
			_, method, args, err := core.DecodeRequest(rt.Decoder(), r.Payload)
			if err != nil {
				continue
			}
			results, ierr := sm.Invoke(context.Background(), method, args)
			if sid, cseq, ok := wire.PeekSession(r.Payload); ok {
				commitApplied(rt, tab, sid, cseq, method, results, ierr)
			}
		}
		epoch, startSeq = le+1, ls
	}
	p := &primary{
		rt: rt, svc: sm, isRead: readSet(f.reads), cap: ref.Cap,
		wal: wal, tab: tab, name: f.name, snapEvery: f.snapEvery,
	}
	seqOpts := []group.SequencerOption{
		group.WithEpoch(epoch),
		group.WithStartSeq(startSeq),
		group.WithOnEvict(p.onEvict),
	}
	if f.deliverTimeout > 0 {
		seqOpts = append(seqOpts, group.WithDeliverTimeout(f.deliverTimeout))
	}
	p.seq = group.NewSequencer(rt, seqOpts...)
	// Stamp this incarnation's baseline into the log: recovery of *this*
	// incarnation starts here.
	if state, err := p.snapshotState(); err == nil {
		_ = wal.Snapshot(epoch, startSeq, state)
	}
	srv := rpc.NewServer(rpc.HandlerFunc(p.handle))
	p.id = rt.Kernel().Register(srv)
	registerStatus(rt, p)
	h := repHint{Ctrl: p.id, Reads: f.reads}
	return &wrapped{p: p}, h.encode(), nil
}

// New implements core.ProxyFactory: build the local replica, join the
// group, restore the snapshot, serve — and keep a repair loop running for
// the rest of the proxy's life.
func (f *Factory) New(rt *core.Runtime, ref codec.Ref) (core.Proxy, error) {
	h, err := decodeRepHint(ref.Hint)
	if err != nil {
		return nil, fmt.Errorf("replica: bad hint in %s: %w", ref, err)
	}
	if f.ctor == nil {
		return nil, fmt.Errorf("replica: factory has no constructor (importing runtime must register the service's factory)")
	}
	p := &Proxy{
		rt:     rt,
		f:      f,
		ref:    ref,
		ctrl:   wire.ObjAddr{Addr: ref.Target.Addr, Object: h.Ctrl},
		isRead: readSet(h.Reads),
		local:  f.ctor(),
		tab:    session.NewTable(session.Config{}),
		stop:   make(chan struct{}),
	}
	ctx, cancel := contextWithJoinTimeout()
	defer cancel()
	member, info, err := group.Join(ctx, rt, p.ctrl, p.apply, group.WithRequestHandler(p.handleRepair))
	if err != nil {
		return nil, fmt.Errorf("replica: join: %w", err)
	}
	dedup, boot := splitSnapshot(info.Boot)
	if dedup != nil {
		_ = p.tab.Restore(dedup)
	}
	if err := p.local.Restore(boot); err != nil {
		_ = member.Leave(ctx)
		return nil, fmt.Errorf("replica: restore bootstrap: %w", err)
	}
	p.member = member
	p.epoch = info.Epoch
	p.stateEpoch = info.Epoch
	p.appliedSeq.Store(info.BootSeq)
	if view, err := decodeView(info.Extra); err == nil {
		p.view = view
	}
	registerStatus(rt, p)
	go p.healLoop()
	return p, nil
}

func readSet(reads []string) func(string) bool {
	m := make(map[string]bool, len(reads))
	for _, r := range reads {
		m[r] = true
	}
	return func(s string) bool { return m[s] }
}

// primary owns the authoritative copy and the write order.
type primary struct {
	rt     *core.Runtime
	svc    StateMachine
	isRead func(string) bool
	seq    *group.Sequencer
	wal    *persist.WAL
	// tab is the exactly-once dedup table, replicated with the state
	// (see dedup.go). A promoted proxy passes its member table in, so
	// the new incarnation inherits every committed identity.
	tab *session.Table
	id  wire.ObjectID
	// cap mirrors the export's capability token for the private write path.
	cap       uint64
	name      string
	snapEvery uint64

	// mu serializes apply+log+broadcast for writes and snapshot+join for
	// joins, which is what makes the bootstrap sequence point exact.
	mu      sync.Mutex
	writes  uint64
	deposed bool

	// viewMu guards the join-ordered membership view. Separate from mu
	// because evictions are reported mid-Deliver, while mu is held.
	viewMu sync.Mutex
	view   []wire.ObjAddr
}

// errDeposed is the fencing verdict a deposed primary returns everywhere.
func errDeposed(method string) []byte {
	return core.EncodeInvokeError(method,
		core.Errorf(core.CodeFenced, method, "replica: primary deposed (a successor holds a newer epoch)"))
}

func (p *primary) handle(req *rpc.Request) (wire.Kind, []byte, []byte) {
	switch req.Kind {
	case group.KindJoin:
		member, _, err := wire.DecodeObjAddr(req.Frame.Payload)
		if err != nil {
			return 0, nil, core.EncodeInvokeError("join", err)
		}
		p.mu.Lock()
		if p.deposed {
			p.mu.Unlock()
			return 0, nil, errDeposed("join")
		}
		boot, err := p.snapshotState()
		if err != nil {
			p.mu.Unlock()
			return 0, nil, core.EncodeInvokeError("join", err)
		}
		bootSeq := p.seq.Seq()
		p.seq.AddMember(member, bootSeq)
		p.addToView(member)
		view := encodeView(p.snapshotView())
		p.mu.Unlock()
		reply, err := group.EncodeJoinReply(p.seq.Epoch(), bootSeq, boot, view)
		if err != nil {
			return 0, nil, core.EncodeInvokeError("join", err)
		}
		return group.KindJoin, reply, nil
	case group.KindLeave:
		member, _, err := wire.DecodeObjAddr(req.Frame.Payload)
		if err != nil {
			return 0, nil, core.EncodeInvokeError("leave", err)
		}
		p.seq.RemoveMember(member)
		p.removeFromView(member)
		return group.KindLeave, nil, nil
	case kindWrite:
		return p.handleWrite(req)
	case kindSync:
		return p.handleSync(req)
	default:
		return 0, nil, core.EncodeInvokeError("", core.Errorf(core.CodeInternal, "", "replica: unexpected kind %v", req.Kind))
	}
}

func (p *primary) handleWrite(req *rpc.Request) (wire.Kind, []byte, []byte) {
	sc, budget, cap, method, args, err := core.DecodeRequestFull(p.rt.Decoder(), req.Frame.Payload)
	if err != nil {
		return 0, nil, core.EncodeInvokeError("", core.Errorf(core.CodeInternal, "", "%s", err))
	}
	if p.cap != 0 && cap != p.cap {
		return 0, nil, core.EncodeInvokeError(method, core.Errorf(core.CodeDenied, method, "capability required"))
	}
	ctx, cancel := core.ApplyBudget(context.Background(), budget)
	defer cancel()
	finish := func(error) {}
	if sc.Trace != 0 {
		// The broadcast to members derives from this ctx, so each member's
		// delivery round-trip shows up as a child rpc span.
		ctx = obs.ContextWithSpan(ctx, sc)
		ctx, finish = p.rt.Tracer().StartSpan(ctx, "replica.apply:"+method, p.rt.Where())
	}
	results, errPayload := p.applyWrite(ctx, req.From, method, args, req.Frame.Payload)
	if errPayload != nil {
		finish(core.DecodeInvokeError(errPayload))
		return 0, nil, errPayload
	}
	finish(nil)
	lowered, err := p.rt.LowerArgs(results)
	if err != nil {
		return 0, nil, core.EncodeInvokeError(method, core.Errorf(core.CodeInternal, method, "%s", err))
	}
	reply, err := core.EncodeResults(lowered)
	if err != nil {
		return 0, nil, core.EncodeInvokeError(method, core.Errorf(core.CodeInternal, method, "%s", err))
	}
	return kindWrite, reply, nil
}

// applyWrite runs one write at the primary: dedup-check, apply to the
// authoritative copy, append to the write-ahead log (durability before
// acknowledgement), push to every replica, and only then return.
// rawPayload is the already-encoded request — session header included —
// logged and forwarded verbatim, so members and WAL replay see the same
// exactly-once identity the primary deduped on.
func (p *primary) applyWrite(ctx context.Context, from wire.Addr, method string, args []any, rawPayload []byte) ([]any, []byte) {
	sid, cseq, stamped := wire.PeekSession(rawPayload)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.deposed {
		return nil, errDeposed(method)
	}
	if stamped {
		switch verdict, ent := p.tab.Begin(sid, cseq); verdict {
		case session.Replay:
			// Already applied (possibly by a prior incarnation): answer
			// from the cached reply, no re-execution.
			if ent.IsErr {
				return nil, append([]byte(nil), ent.Payload...)
			}
			results, err := core.DecodeResults(p.rt.Decoder(), ent.Payload)
			if err != nil {
				return nil, core.EncodeInvokeError(method, core.Errorf(core.CodeInternal, method, "replica: replay decode: %s", err))
			}
			return results, nil
		case session.InFlight:
			// mu serializes writes, so a duplicate can only be observed in
			// flight across incarnations (an aborted mark that never
			// cleared). Retryable: the retry re-presents the identity.
			return nil, core.EncodeInvokeError(method, core.Errorf(core.CodeUnavailable, method, "replica: duplicate in flight"))
		case session.Expired:
			return nil, core.EncodeInvokeError(method, core.Errorf(core.CodeSessionExpired, method, "session expired: retry outlived the dedup window; outcome unknown"))
		}
		ctx = core.ContextWithSession(ctx, sid, cseq)
	}
	results, err := p.svc.Invoke(core.WithCaller(ctx, from), method, args)
	if err != nil {
		errPayload := core.EncodeInvokeError(method, err)
		if stamped {
			// The state machine rejected the write without it entering the
			// order: cache the verdict in memory only (nothing to log) so a
			// retransmission sees the same error instead of a re-execution.
			p.tab.Commit(sid, cseq, wire.KindError, true, errPayload)
		}
		return nil, errPayload
	}
	var replyPayload []byte
	if stamped {
		lowered, lerr := p.rt.LowerArgs(results)
		if lerr == nil {
			replyPayload, lerr = core.EncodeResults(lowered)
		}
		if lerr != nil {
			// Deterministically un-encodable reply: cache the failure — a
			// retry must NOT re-apply a write that did mutate state.
			errPayload := core.EncodeInvokeError(method, core.Errorf(core.CodeInternal, method, "%s", lerr))
			p.tab.Commit(sid, cseq, wire.KindError, true, errPayload)
			return nil, errPayload
		}
	}
	epoch, seq := p.seq.Reserve()
	if err := p.wal.Append(epoch, seq, rawPayload); err != nil {
		// Unlogged writes must not be acknowledged: a crash would lose them.
		if stamped {
			p.tab.Abort(sid, cseq)
		}
		return nil, core.EncodeInvokeError(method, core.Errorf(core.CodeUnavailable, method, "replica wal: %s", err))
	}
	if stamped {
		// Durability order: write record, then dedup record, then ack —
		// so an acked write's identity survives the crash that its state
		// does (via replay), and a successor refuses to re-apply it.
		_ = p.wal.AppendDedup(epoch, seq, sid, cseq, session.Digest(replyPayload))
		p.tab.Commit(sid, cseq, kindWrite, false, replyPayload)
	}
	if err := p.seq.Deliver(ctx, epoch, seq, rawPayload); err != nil {
		if errors.Is(err, group.ErrFenced) {
			// A member has seen a newer epoch: this primary was deposed.
			// Nothing it does from here on may be acknowledged.
			p.deposed = true
			return nil, errDeposed(method)
		}
		// The write is applied at the primary; a broadcast failure means
		// some replica may be behind. Fail loudly so the caller knows.
		// The dedup entry stays: the write is applied and durable here,
		// so a retry of the same identity is answered from cache (the
		// repair loop catches members up from the log).
		return nil, core.EncodeInvokeError(method, core.Errorf(core.CodeUnavailable, method, "replica broadcast: %s", err))
	}
	p.writes++
	if p.snapEvery > 0 && p.writes%p.snapEvery == 0 {
		if state, err := p.snapshotState(); err == nil {
			_ = p.wal.Snapshot(epoch, seq, state)
		}
	}
	return results, nil
}

// snapshotState captures the combined [dedup table][service state] blob
// every state transfer ships (see dedup.go). Caller need not hold mu for
// the table (it locks itself), but consistent captures take it under mu
// like every other snapshot.
func (p *primary) snapshotState() ([]byte, error) {
	svcState, err := p.svc.Snapshot()
	if err != nil {
		return nil, err
	}
	return combineSnapshot(p.tab.Snapshot(), svcState), nil
}

// Sync-reply transfer modes.
const (
	syncOK       = 0 // member is current; nothing to transfer
	syncRecords  = 1 // blob is a log suffix (encodeRecords)
	syncSnapshot = 2 // blob is a full state snapshot
)

// handleSync serves the repair probe: re-admit an evicted member and hand
// it whatever it is missing. Same-epoch members get the log suffix past
// their position when the log still has it; anything else — including
// every cross-epoch rejoin, where the member's tail may have diverged at
// the old epoch's end — gets a full snapshot.
func (p *primary) handleSync(req *rpc.Request) (wire.Kind, []byte, []byte) {
	_, payload := wire.SplitPriorityHeader(req.Frame.Payload)
	member, n, err := wire.DecodeObjAddr(payload)
	if err != nil {
		return 0, nil, core.EncodeInvokeError("sync", err)
	}
	payload = payload[n:]
	stateEpoch, n, err := wire.Uvarint(payload)
	if err != nil {
		return 0, nil, core.EncodeInvokeError("sync", err)
	}
	payload = payload[n:]
	appliedSeq, _, err := wire.Uvarint(payload)
	if err != nil {
		return 0, nil, core.EncodeInvokeError("sync", err)
	}

	p.mu.Lock()
	if p.deposed {
		p.mu.Unlock()
		return 0, nil, errDeposed("sync")
	}
	epoch := p.seq.Epoch()
	curSeq := p.seq.Seq()
	mode := byte(syncOK)
	var blob []byte
	switch {
	case stateEpoch == epoch && p.seq.HasMember(member):
		// Current member checking in.
	case stateEpoch == epoch:
		// Evicted (or silently dropped) at our own epoch: catch it up from
		// the log if compaction hasn't outrun it.
		if recs, err := p.wal.Suffix(appliedSeq); err == nil {
			mode, blob = syncRecords, encodeRecords(recs)
			p.seq.AddMember(member, appliedSeq)
			p.addToView(member)
			break
		}
		fallthrough
	default:
		state, err := p.snapshotState()
		if err != nil {
			p.mu.Unlock()
			return 0, nil, core.EncodeInvokeError("sync", err)
		}
		mode, blob = syncSnapshot, state
		p.seq.AddMember(member, curSeq)
		p.addToView(member)
	}
	view := encodeView(p.snapshotView())
	p.mu.Unlock()

	reply := []byte{mode}
	reply = wire.AppendUvarint(reply, epoch)
	reply = wire.AppendUvarint(reply, curSeq)
	reply = wire.AppendBytes(reply, blob)
	reply = append(reply, view...)
	return kindSync, reply, nil
}

// onEvict is the sequencer's eviction callback: drop the member from the
// successor-election view. It may run while mu is held by a write, so it
// only touches viewMu.
func (p *primary) onEvict(m wire.ObjAddr) { p.removeFromView(m) }

func (p *primary) addToView(m wire.ObjAddr) {
	p.viewMu.Lock()
	defer p.viewMu.Unlock()
	for _, v := range p.view {
		if v == m {
			return
		}
	}
	p.view = append(p.view, m)
}

func (p *primary) removeFromView(m wire.ObjAddr) {
	p.viewMu.Lock()
	defer p.viewMu.Unlock()
	for i, v := range p.view {
		if v == m {
			p.view = append(p.view[:i], p.view[i+1:]...)
			return
		}
	}
}

func (p *primary) snapshotView() []wire.ObjAddr {
	p.viewMu.Lock()
	defer p.viewMu.Unlock()
	return append([]wire.ObjAddr(nil), p.view...)
}

// replicas reports the current replica count (tests/benches).
func (p *primary) replicas() int { return p.seq.Members() }

// encodeView serializes a join-ordered membership view.
func encodeView(view []wire.ObjAddr) []byte {
	buf := wire.AppendUvarint(nil, uint64(len(view)))
	for _, m := range view {
		buf = wire.AppendObjAddr(buf, m)
	}
	return buf
}

func decodeView(src []byte) ([]wire.ObjAddr, error) {
	count, n, err := wire.Uvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[n:]
	if count > uint64(len(src)) {
		return nil, codec.ErrElementCount
	}
	view := make([]wire.ObjAddr, 0, count)
	for i := uint64(0); i < count; i++ {
		m, n, err := wire.DecodeObjAddr(src)
		if err != nil {
			return nil, err
		}
		src = src[n:]
		view = append(view, m)
	}
	return view, nil
}

// encodeRecords serializes a log suffix for a sync reply: count, then
// (seq, payload) per record. The epoch is implicit — a suffix is only
// ever served within one epoch.
func encodeRecords(recs []persist.Record) []byte {
	buf := wire.AppendUvarint(nil, uint64(len(recs)))
	for _, r := range recs {
		buf = wire.AppendUvarint(buf, r.Seq)
		buf = wire.AppendBytes(buf, r.Payload)
	}
	return buf
}

func decodeRecords(src []byte) ([]persist.Record, error) {
	count, n, err := wire.Uvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[n:]
	if count > uint64(len(src)) {
		return nil, codec.ErrElementCount
	}
	recs := make([]persist.Record, 0, count)
	for i := uint64(0); i < count; i++ {
		seq, n, err := wire.Uvarint(src)
		if err != nil {
			return nil, err
		}
		src = src[n:]
		payload, n2, err := wire.Bytes(src)
		if err != nil {
			return nil, err
		}
		src = src[n2:]
		recs = append(recs, persist.Record{Seq: seq, Payload: payload})
	}
	return recs, nil
}

// wrapped serves the standard invocation path (plain stub clients): reads
// hit the primary copy; writes enter the ordered write path, so stub
// writers and replicated readers stay coherent.
type wrapped struct {
	p *primary
}

// Invoke implements core.Service.
func (w *wrapped) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	return invokeOnPrimary(ctx, w.p, method, args)
}

// invokeOnPrimary is the in-process invocation path shared by the
// exporter's wrapped service and a promoted proxy.
func invokeOnPrimary(ctx context.Context, p *primary, method string, args []any) ([]any, error) {
	if p.isRead(method) {
		return p.svc.Invoke(ctx, method, args)
	}
	from, _ := core.CallerFrom(ctx)
	lowered, err := p.rt.LowerArgs(args)
	if err != nil {
		return nil, core.Errorf(core.CodeInternal, method, "%s", err)
	}
	raw, err := core.EncodeRequest(p.cap, method, lowered)
	if err != nil {
		return nil, core.Errorf(core.CodeInternal, method, "%s", err)
	}
	if sid, seq := core.SessionFromContext(ctx); sid != 0 {
		// The logged/broadcast payload must carry the identity the caller
		// stamped, so dedup holds across WAL replay and member delivery.
		raw = append(wire.AppendSessionHeader(nil, sid, seq), raw...)
	}
	results, errPayload := p.applyWrite(ctx, from, method, args, raw)
	if errPayload != nil {
		return nil, core.DecodeInvokeError(errPayload)
	}
	return results, nil
}
