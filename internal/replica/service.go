package replica

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
)

// TypeName is the proxy type the replica status service exports under.
// Like health.Service it has no custom factory: proxyctl reaches it
// through a plain stub.
const TypeName = "replica.Status"

// GroupStatus is one replica group's view from one runtime: either the
// primary's (authoritative membership) or a replica proxy's (its own
// position and who it believes the primary is).
type GroupStatus struct {
	Name    string
	Role    string // "primary" or "replica"
	Epoch   uint64
	Seq     uint64 // primary: sequence high-water mark; replica: applied seq
	Primary string // control-object address
	Members []MemberStatus
}

// MemberStatus is a primary's record of one member's acknowledged
// position.
type MemberStatus struct {
	Member string
	Acked  uint64
}

// statusSource is implemented by primaries and replica proxies; each
// export/import registers itself so the runtime's status service can
// enumerate live groups.
type statusSource interface {
	groupStatus() GroupStatus
}

var (
	statusMu  sync.Mutex
	statusReg = map[*core.Runtime][]statusSource{}
)

func registerStatus(rt *core.Runtime, s statusSource) {
	statusMu.Lock()
	defer statusMu.Unlock()
	statusReg[rt] = append(statusReg[rt], s)
}

func unregisterStatus(rt *core.Runtime, s statusSource) {
	statusMu.Lock()
	defer statusMu.Unlock()
	entries := statusReg[rt]
	for i, e := range entries {
		if e == s {
			statusReg[rt] = append(entries[:i], entries[i+1:]...)
			break
		}
	}
	if len(statusReg[rt]) == 0 {
		delete(statusReg, rt)
	}
}

// Status reports every replica group this runtime participates in.
func Status(rt *core.Runtime) []GroupStatus {
	statusMu.Lock()
	entries := append([]statusSource(nil), statusReg[rt]...)
	statusMu.Unlock()
	out := make([]GroupStatus, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.groupStatus())
	}
	return out
}

func (p *primary) groupStatus() GroupStatus {
	seqs := p.seq.MemberSeqs()
	members := make([]MemberStatus, 0, len(seqs))
	for m, acked := range seqs {
		members = append(members, MemberStatus{Member: m.String(), Acked: acked})
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Member < members[j].Member })
	p.mu.Lock()
	role := "primary"
	if p.deposed {
		role = "deposed"
	}
	p.mu.Unlock()
	return GroupStatus{
		Name:    p.name,
		Role:    role,
		Epoch:   p.seq.Epoch(),
		Seq:     p.seq.Seq(),
		Primary: fmt.Sprintf("%s/%d", p.rt.Addr(), p.id),
		Members: members,
	}
}

func (p *Proxy) groupStatus() GroupStatus {
	p.mu.Lock()
	prim := p.prim
	epoch, ctrl := p.epoch, p.ctrl
	p.mu.Unlock()
	if prim != nil {
		// Promoted: report the primary's authoritative view.
		return prim.groupStatus()
	}
	return GroupStatus{
		Name:    p.f.name,
		Role:    "replica",
		Epoch:   epoch,
		Seq:     p.appliedSeq.Load(),
		Primary: ctrl.String(),
	}
}

// Service exposes the runtime's replica groups over the ordinary
// invocation conventions so proxyctl can inspect membership, epochs, and
// per-member positions.
//
// Methods:
//
//	groups() -> text table of every group this runtime participates in
type Service struct {
	rt *core.Runtime
}

// ServiceOption configures a Service. None are defined yet; the
// parameter exists so future knobs never break call sites — see doc.go,
// constructor options.
type ServiceOption func(*Service)

// NewService builds the status service for one runtime.
func NewService(rt *core.Runtime, opts ...ServiceOption) *Service {
	s := &Service{rt: rt}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Invoke dispatches the status methods.
func (s *Service) Invoke(_ context.Context, method string, args []any) ([]any, error) {
	switch method {
	case "groups":
		groups := Status(s.rt)
		var b strings.Builder
		fmt.Fprintf(&b, "%-10s %-8s %-6s %-6s %s\n", "GROUP", "ROLE", "EPOCH", "SEQ", "PRIMARY")
		for _, g := range groups {
			fmt.Fprintf(&b, "%-10s %-8s %-6d %-6d %s\n", g.Name, g.Role, g.Epoch, g.Seq, g.Primary)
			for _, m := range g.Members {
				fmt.Fprintf(&b, "  member %-20s acked=%d\n", m.Member, m.Acked)
			}
		}
		if len(groups) == 0 {
			b.WriteString("(no replica groups)\n")
		}
		return []any{b.String()}, nil
	default:
		return nil, core.NoSuchMethod(method)
	}
}
