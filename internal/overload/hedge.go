package overload

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// DelayTracker decides when a hedged second attempt is worth sending: it
// tracks observed call latencies and answers their p95 (bounded below
// and above), so a hedge fires only when the first attempt has already
// taken longer than 95% of calls do. The p95 is recomputed lazily every
// refreshEvery observations and cached — Delay is called on the hot path
// of every hedged invocation. Safe for concurrent use; must not be
// copied after first use.
type DelayTracker struct {
	floor time.Duration
	cap   time.Duration

	hist     obs.Histogram
	sinceRef atomic.Uint64 // observations since the last refresh
	cached   atomic.Int64  // cached delay in nanoseconds
}

// refreshEvery is how many observations may accumulate before the
// cached p95 is recomputed.
const refreshEvery = 32

// NewDelayTracker builds a tracker whose delay is clamped to
// [floor, cap]. Until enough latencies have been observed the delay is
// the floor — hedging too eagerly on a cold cache is the safe failure
// mode only when the floor is meaningful, so pick one (e.g. 1ms).
func NewDelayTracker(floor, cap time.Duration) *DelayTracker {
	if floor <= 0 {
		floor = time.Millisecond
	}
	if cap <= 0 || cap < floor {
		cap = 100 * floor
	}
	t := &DelayTracker{floor: floor, cap: cap}
	t.cached.Store(int64(floor))
	return t
}

// Observe records one completed call's latency.
func (t *DelayTracker) Observe(d time.Duration) {
	t.hist.Observe(d)
	if t.sinceRef.Add(1) >= refreshEvery {
		t.sinceRef.Store(0)
		t.refresh()
	}
}

func (t *DelayTracker) refresh() {
	p95 := t.hist.Snapshot().P95
	if p95 < t.floor {
		p95 = t.floor
	}
	if p95 > t.cap {
		p95 = t.cap
	}
	t.cached.Store(int64(p95))
}

// Delay reports how long to wait before hedging: the cached p95 of
// observed latencies, clamped to [floor, cap].
func (t *DelayTracker) Delay() time.Duration {
	return time.Duration(t.cached.Load())
}
