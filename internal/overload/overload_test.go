package overload

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// fakeClock drives the controller's queue deadline and latency window
// deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// block is a handler that parks until released, so tests control when
// slots free up.
type block struct {
	started chan struct{}
	release chan struct{}
}

func newBlock() *block {
	return &block{started: make(chan struct{}), release: make(chan struct{})}
}

func (b *block) run() {
	close(b.started)
	<-b.release
}

func TestControllerAdmitsUnderLimit(t *testing.T) {
	c := NewController(Config{MinLimit: 2, MaxLimit: 2, InitialLimit: 2}, nil, "")
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		c.Submit(wire.PriorityNormal, func() { done <- struct{}{} }, nil)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(time.Second):
			t.Fatal("request was not admitted")
		}
	}
	if got := c.Status().Admitted; got != 2 {
		t.Errorf("admitted = %d, want 2", got)
	}
	if shed := c.Shed(); shed != 0 {
		t.Errorf("shed = %d, want 0", shed)
	}
}

func TestControllerQueuesThenRunsOnRelease(t *testing.T) {
	c := NewController(Config{MinLimit: 1, MaxLimit: 1, InitialLimit: 1, QueueDeadline: time.Minute}, nil, "")
	b := newBlock()
	c.Submit(wire.PriorityNormal, b.run, nil)
	<-b.started

	done := make(chan struct{})
	c.Submit(wire.PriorityNormal, func() { close(done) }, func(time.Duration) {
		t.Error("queued request was shed")
	})
	if got := c.Status().Queued; got != 1 {
		t.Fatalf("queued = %d, want 1", got)
	}
	close(b.release) // slot frees; the queued request must drain and run
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("queued request never ran")
	}
	if st := c.Status(); st.QueuedIn != 1 || st.Admitted != 2 {
		t.Errorf("status = %+v, want QueuedIn 1, Admitted 2", st)
	}
}

func TestControllerShedsQueueFullWithHint(t *testing.T) {
	c := NewController(Config{MinLimit: 1, MaxLimit: 1, InitialLimit: 1,
		QueueLimit: 1, QueueDeadline: time.Minute, RetryAfter: 10 * time.Millisecond}, nil, "")
	b := newBlock()
	c.Submit(wire.PriorityNormal, b.run, nil)
	<-b.started
	c.Submit(wire.PriorityNormal, func() {}, nil) // fills the queue

	var hint time.Duration
	shed := make(chan struct{})
	c.Submit(wire.PriorityNormal, func() { t.Error("overflow request ran") },
		func(retryAfter time.Duration) { hint = retryAfter; close(shed) })
	select {
	case <-shed:
	case <-time.After(time.Second):
		t.Fatal("overflow request was not shed")
	}
	if hint < 10*time.Millisecond {
		t.Errorf("retry-after hint = %s, want >= base 10ms", hint)
	}
	if got := c.shedFull.Load(); got != 1 {
		t.Errorf("shed.full = %d, want 1", got)
	}
	close(b.release)
}

func TestControllerNormalEvictsQueuedLow(t *testing.T) {
	c := NewController(Config{MinLimit: 1, MaxLimit: 1, InitialLimit: 1,
		QueueLimit: 1, QueueDeadline: time.Minute}, nil, "")
	b := newBlock()
	c.Submit(wire.PriorityNormal, b.run, nil)
	<-b.started

	lowShed := make(chan struct{})
	c.Submit(wire.PriorityLow, func() { t.Error("evicted low request ran") },
		func(time.Duration) { close(lowShed) })
	// A normal arrival against a full queue makes room by evicting the
	// queued low request rather than shedding itself.
	c.Submit(wire.PriorityNormal, func() {}, func(time.Duration) {
		t.Error("normal request was shed instead of queued")
	})
	select {
	case <-lowShed:
	case <-time.After(time.Second):
		t.Fatal("low-priority request was not evicted")
	}
	if got := c.shedEvict.Load(); got != 1 {
		t.Errorf("shed.evicted = %d, want 1", got)
	}
	close(b.release)
}

func TestControllerHighPriorityBypassesFullQueue(t *testing.T) {
	c := NewController(Config{MinLimit: 1, MaxLimit: 1, InitialLimit: 1,
		QueueLimit: 1, QueueDeadline: time.Minute}, nil, "")
	b := newBlock()
	c.Submit(wire.PriorityNormal, b.run, nil)
	<-b.started
	c.Submit(wire.PriorityNormal, func() {}, nil) // queue full

	done := make(chan struct{})
	c.Submit(wire.PriorityHigh, func() { close(done) }, func(time.Duration) {
		t.Error("high-priority request was shed")
	})
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("high-priority request did not bypass the limit")
	}
	if got := c.Status().Bypass; got != 1 {
		t.Errorf("bypass = %d, want 1", got)
	}
	close(b.release)
}

func TestControllerShedsExpiredQueueHeads(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{MinLimit: 1, MaxLimit: 1, InitialLimit: 1,
		QueueDeadline: 5 * time.Millisecond, now: clk.now}, nil, "")
	b := newBlock()
	c.Submit(wire.PriorityNormal, b.run, nil)
	<-b.started

	shed := make(chan struct{})
	c.Submit(wire.PriorityNormal, func() { t.Error("expired request ran") },
		func(time.Duration) { close(shed) })
	// The queued request's sojourn exceeds the deadline before a slot
	// frees: at drain time it must be shed even though a slot is open.
	clk.advance(10 * time.Millisecond)
	close(b.release)
	select {
	case <-shed:
	case <-time.After(time.Second):
		t.Fatal("expired request was not shed at drain")
	}
	if got := c.shedLate.Load(); got != 1 {
		t.Errorf("shed.late = %d, want 1", got)
	}
}

// runSerial pushes one request through the controller with the given
// simulated service time and waits for its completion.
func runSerial(t *testing.T, c *Controller, clk *fakeClock, dur time.Duration) {
	t.Helper()
	done := make(chan struct{})
	c.Submit(wire.PriorityNormal, func() {
		clk.advance(dur)
		close(done)
	}, func(time.Duration) { close(done) })
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("request did not complete")
	}
}

func TestControllerAIMDDecreaseOnLatencyGrowth(t *testing.T) {
	clk := newFakeClock()
	cfg := Config{MinLimit: 1, MaxLimit: 64, InitialLimit: 16, Window: 4,
		Tolerance: 2.0, QueueDeadline: time.Millisecond, now: clk.now}
	c := NewController(cfg, nil, "")
	// First window: 1ms service time establishes the baseline.
	for i := 0; i < 4; i++ {
		runSerial(t, c, clk, time.Millisecond)
	}
	start := c.Limit()
	// Next windows: latency far beyond baseline*tolerance+deadline must
	// cut the limit multiplicatively.
	for w := 0; w < 3; w++ {
		for i := 0; i < 4; i++ {
			runSerial(t, c, clk, 50*time.Millisecond)
		}
	}
	if got := c.Limit(); got >= start {
		t.Errorf("limit = %d after latency growth, want < %d", got, start)
	}
}

func TestControllerAdditiveIncreaseWhenSaturated(t *testing.T) {
	clk := newFakeClock()
	cfg := Config{MinLimit: 1, MaxLimit: 64, InitialLimit: 1, Window: 2,
		Tolerance: 2.0, QueueDeadline: time.Hour, now: clk.now}
	c := NewController(cfg, nil, "")
	start := c.Limit()

	// Saturate: with limit 1 busy, a second submit queues (marking the
	// window saturated), then both complete with flat latency.
	for w := 0; w < 3; w++ {
		b := newBlock()
		c.Submit(wire.PriorityNormal, b.run, nil)
		<-b.started
		done := make(chan struct{})
		c.Submit(wire.PriorityNormal, func() { close(done) }, nil)
		close(b.release)
		select {
		case <-done:
		case <-time.After(time.Second):
			t.Fatal("queued request never ran")
		}
	}
	if got := c.Limit(); got <= start {
		t.Errorf("limit = %d after saturated flat-latency windows, want > %d", got, start)
	}
}

func TestControllerNoStarvationInvariant(t *testing.T) {
	// Hammer a small controller from many goroutines; every request must
	// resolve (run or shed) — nothing may be left queued forever.
	c := NewController(Config{MinLimit: 2, MaxLimit: 4, InitialLimit: 2,
		QueueLimit: 8, QueueDeadline: 50 * time.Millisecond}, nil, "")
	const n = 200
	var resolved atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		pri := wire.PriorityNormal
		if i%3 == 0 {
			pri = wire.PriorityLow
		}
		go c.Submit(pri,
			func() { resolved.Add(1); wg.Done() },
			func(time.Duration) { resolved.Add(1); wg.Done() })
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d/%d requests resolved", resolved.Load(), n)
	}
	// Slot release trails the run callback; give the drain a moment.
	deadline := time.Now().Add(2 * time.Second)
	for c.Inflight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight = %d after drain, want 0", c.Inflight())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHintScalesWithQueuePressure(t *testing.T) {
	c := NewController(Config{MinLimit: 1, MaxLimit: 1, InitialLimit: 1,
		RetryAfter: 10 * time.Millisecond}, nil, "")
	c.mu.Lock()
	base := c.hintLocked()
	c.queued = 5
	loaded := c.hintLocked()
	c.queued = 10000
	capped := c.hintLocked()
	c.mu.Unlock()
	if base != 10*time.Millisecond {
		t.Errorf("base hint = %s, want 10ms", base)
	}
	if loaded <= base {
		t.Errorf("loaded hint = %s, want > %s", loaded, base)
	}
	if capped != 100*time.Millisecond {
		t.Errorf("capped hint = %s, want 10x base", capped)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.MinLimit != 4 || cfg.MaxLimit != 1024 || cfg.InitialLimit != 64 ||
		cfg.QueueLimit != 256 || cfg.QueueDeadline != 5*time.Millisecond ||
		cfg.Window != 64 || cfg.Tolerance != 2.0 || cfg.RetryAfter != 10*time.Millisecond {
		t.Errorf("defaults = %+v", cfg)
	}
	// Inverted bounds are repaired, not accepted.
	cfg = Config{MinLimit: 100, MaxLimit: 10, InitialLimit: 5000}.withDefaults()
	if cfg.MaxLimit != 100 || cfg.InitialLimit != 100 {
		t.Errorf("clamped = %+v", cfg)
	}
}

func TestBudgetSpendAndDeposit(t *testing.T) {
	b := NewBudget(0.5, 2)
	n := wire.NodeID(7)
	// Starts full: burst retries available immediately.
	if !b.Spend(n) || !b.Spend(n) {
		t.Fatal("full bucket refused a retry")
	}
	if b.Spend(n) {
		t.Fatal("empty bucket allowed a retry")
	}
	// Two fresh calls at ratio 0.5 earn one retry back.
	b.Deposit(n)
	b.Deposit(n)
	if !b.Spend(n) {
		t.Fatal("replenished bucket refused a retry")
	}
	// Deposits cap at burst.
	for i := 0; i < 100; i++ {
		b.Deposit(n)
	}
	if got := b.Tokens(n); got != 2 {
		t.Errorf("tokens = %v, want capped at burst 2", got)
	}
}

func TestBudgetPerDestinationIsolation(t *testing.T) {
	b := NewBudget(0, 0) // defaults
	a, z := wire.NodeID(1), wire.NodeID(2)
	for i := 0; i < DefaultRetryBurst; i++ {
		if !b.Spend(a) {
			t.Fatalf("spend %d against fresh bucket failed", i)
		}
	}
	if b.Spend(a) {
		t.Error("exhausted destination allowed a retry")
	}
	if !b.Spend(z) {
		t.Error("exhausting one destination drained another")
	}
}

func TestDelayTrackerTracksP95(t *testing.T) {
	tr := NewDelayTracker(time.Millisecond, time.Second)
	if got := tr.Delay(); got != time.Millisecond {
		t.Errorf("cold delay = %s, want floor", got)
	}
	for i := 0; i < 2*refreshEvery; i++ {
		tr.Observe(20 * time.Millisecond)
	}
	got := tr.Delay()
	if got < time.Millisecond || got > time.Second {
		t.Fatalf("delay = %s escaped [floor, cap]", got)
	}
	if got < 10*time.Millisecond {
		t.Errorf("delay = %s, want near observed 20ms", got)
	}
}

func TestDelayTrackerClamps(t *testing.T) {
	tr := NewDelayTracker(10*time.Millisecond, 50*time.Millisecond)
	for i := 0; i < refreshEvery; i++ {
		tr.Observe(time.Microsecond) // far below floor
	}
	if got := tr.Delay(); got != 10*time.Millisecond {
		t.Errorf("delay = %s, want clamped to floor", got)
	}
	for i := 0; i < 4*refreshEvery; i++ {
		tr.Observe(10 * time.Second) // far above cap
	}
	if got := tr.Delay(); got != 50*time.Millisecond {
		t.Errorf("delay = %s, want clamped to cap", got)
	}
	// Bad bounds select defaults.
	tr = NewDelayTracker(0, 0)
	if tr.floor != time.Millisecond || tr.cap != 100*time.Millisecond {
		t.Errorf("default bounds = %s/%s", tr.floor, tr.cap)
	}
}

func TestServiceStatus(t *testing.T) {
	svc := NewService(nil)
	res, err := svc.Invoke(nil, "status", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res[0].(string), "disabled") {
		t.Errorf("nil-controller status = %q", res[0])
	}

	reg := obs.NewRegistry()
	c := NewController(Config{InitialLimit: 8, MinLimit: 8, MaxLimit: 8}, reg, "")
	done := make(chan struct{})
	c.Submit(wire.PriorityHigh, func() { close(done) }, nil)
	<-done
	svc = NewService(c)
	res, err = svc.Invoke(nil, "status", nil)
	if err != nil {
		t.Fatal(err)
	}
	text := res[0].(string)
	for _, want := range []string{"(adaptive)", "bypass", "shed"} {
		if !strings.Contains(text, want) {
			t.Errorf("status text missing %q:\n%s", want, text)
		}
	}
	if _, err := svc.Invoke(nil, "nope", nil); err == nil {
		t.Error("unknown method did not error")
	}
	// The controller's metrics landed in the provided registry under the
	// overload scope.
	if reg.Counter("overload.bypass").Load() != 1 {
		t.Error("bypass counter not published to registry")
	}
}
