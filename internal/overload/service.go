package overload

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// TypeName is the proxy type the overload status service exports under.
// Like obs.Service and health.Service it has no custom factory:
// importers reach it through plain stubs.
const TypeName = "overload.Service"

// Status is a point-in-time view of a controller.
type Status struct {
	Limit    int
	Inflight int
	Queued   int
	Admitted uint64
	Bypass   uint64
	QueuedIn uint64
	ShedFull uint64
	ShedLate uint64
	Evicted  uint64
	Baseline time.Duration
}

// Status snapshots the controller.
func (c *Controller) Status() Status {
	c.mu.Lock()
	limit, inflight, queued, baseline := int(c.limit), c.inflight, c.queued, c.baseline
	c.mu.Unlock()
	return Status{
		Limit:    limit,
		Inflight: inflight,
		Queued:   queued,
		Admitted: c.admitted.Load(),
		Bypass:   c.bypass.Load(),
		QueuedIn: c.enqueued.Load(),
		ShedFull: c.shedFull.Load(),
		ShedLate: c.shedLate.Load(),
		Evicted:  c.shedEvict.Load(),
		Baseline: baseline,
	}
}

// Service exposes a Controller over the ordinary invocation conventions
// so proxyctl (or any remote client) can ask a daemon how its admission
// control is doing. It implements core.Service structurally (overload
// sits below core).
//
// Methods:
//
//	status() -> text summary of the controller's limit, queue, and sheds
type Service struct {
	c *Controller
}

// NewService wraps a controller for export.
func NewService(c *Controller) *Service { return &Service{c: c} }

// Invoke dispatches the overload methods.
func (s *Service) Invoke(_ context.Context, method string, _ []any) ([]any, error) {
	switch method {
	case "status":
		if s.c == nil {
			return []any{"overload: admission control disabled (-overload to enable)\n"}, nil
		}
		st := s.c.Status()
		var b strings.Builder
		fmt.Fprintf(&b, "limit     %d (adaptive)\n", st.Limit)
		fmt.Fprintf(&b, "inflight  %d\n", st.Inflight)
		fmt.Fprintf(&b, "queued    %d\n", st.Queued)
		fmt.Fprintf(&b, "baseline  %s\n", st.Baseline.Round(time.Microsecond))
		fmt.Fprintf(&b, "admitted  %d (+%d high-priority bypass, %d via queue)\n", st.Admitted, st.Bypass, st.QueuedIn)
		fmt.Fprintf(&b, "shed      %d (%d queue-full, %d past-deadline, %d evicted)\n",
			st.ShedFull+st.ShedLate+st.Evicted, st.ShedFull, st.ShedLate, st.Evicted)
		return []any{b.String()}, nil
	default:
		return nil, fmt.Errorf("overload: unknown method %q", method)
	}
}
