package overload

import (
	"sync"

	"repro/internal/wire"
)

// Budget is a per-destination retry budget: a token bucket that caps
// the ratio of retransmissions to fresh calls. Every fresh call deposits
// Ratio tokens toward its destination; every retransmission spends one
// whole token. With the default ratio of 0.1 a client can therefore
// sustain at most ~10% retries — enough to ride out sporadic loss, not
// enough to turn an outage into a retry storm (the Burst allowance
// covers short blips). Safe for concurrent use.
type Budget struct {
	ratio float64
	burst float64

	mu      sync.Mutex
	buckets map[wire.NodeID]*bucket
}

type bucket struct{ tokens float64 }

// DefaultRetryRatio is the conventional retry budget: one retry per ten
// fresh calls.
const DefaultRetryRatio = 0.1

// DefaultRetryBurst is the default bucket capacity: how many retries a
// destination's budget holds when full.
const DefaultRetryBurst = 10

// NewBudget builds a budget. Non-positive ratio or burst select the
// defaults. Buckets start full, so a fresh destination can absorb a
// burst of loss immediately.
func NewBudget(ratio, burst float64) *Budget {
	if ratio <= 0 {
		ratio = DefaultRetryRatio
	}
	if burst <= 0 {
		burst = DefaultRetryBurst
	}
	return &Budget{ratio: ratio, burst: burst, buckets: make(map[wire.NodeID]*bucket)}
}

func (b *Budget) bucketFor(n wire.NodeID) *bucket {
	bk, ok := b.buckets[n]
	if !ok {
		bk = &bucket{tokens: b.burst}
		b.buckets[n] = bk
	}
	return bk
}

// Deposit credits the destination's budget for one fresh call.
func (b *Budget) Deposit(n wire.NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	bk := b.bucketFor(n)
	bk.tokens += b.ratio
	if bk.tokens > b.burst {
		bk.tokens = b.burst
	}
}

// Spend takes one token for a retransmission toward the destination,
// reporting false (and taking nothing) when the budget is exhausted.
func (b *Budget) Spend(n wire.NodeID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	bk := b.bucketFor(n)
	if bk.tokens < 1 {
		return false
	}
	bk.tokens--
	return true
}

// Tokens reports the destination's current balance (tests, status).
func (b *Budget) Tokens(n wire.NodeID) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bucketFor(n).tokens
}

// Poorest reports the lowest balance across every destination the budget
// tracks, plus the number of destinations. The minimum is the number
// that matters operationally: it is the destination closest to tripping
// ErrRetryBudget. A budget with no traffic yet reports the full burst
// allowance and zero destinations.
func (b *Budget) Poorest() (tokens float64, dests int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	tokens = b.burst
	for _, bk := range b.buckets {
		if bk.tokens < tokens {
			tokens = bk.tokens
		}
	}
	return tokens, len(b.buckets)
}
