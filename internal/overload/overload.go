// Package overload is the shared admission-control and degradation
// layer: the machinery that lets a saturated node keep doing useful work
// instead of collapsing. The proxy principle puts the service — not the
// client — in charge of how it degrades, so the pieces live below core
// where every proxy kind inherits them:
//
//   - Controller: server-side admission. An adaptive concurrency limit
//     (AIMD, learned from observed handler latency) with a small
//     priority-aware queue in front of it; requests that would wait past
//     the queue deadline are shed immediately with a retry-after hint
//     (CoDel's insight: a standing queue is the failure, so fail fast
//     instead of letting every caller time out). The kernel consults it
//     per inbound frame (kernel.WithAdmission).
//   - Budget: client-side retry budget. A per-destination token bucket
//     that caps the retransmit ratio (~10%), so retries cannot amplify
//     an outage into a storm (rpc.WithRetryBudget).
//   - DelayTracker: the hedging trigger. Tracks observed call latency
//     and answers "how long before a second attempt is worth sending"
//     (the p95), for the stub's hedged reads.
//
// Wire artifacts (the priority header 0xF7, FlagPushback, the pushback
// payload) live in internal/wire so the kernel and rpc can read them
// without importing policy.
package overload

import (
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Config tunes a Controller. The zero value selects the defaults noted
// on each field.
type Config struct {
	// MinLimit and MaxLimit bound the adaptive concurrency limit
	// (defaults 4 and 1024). InitialLimit is where it starts (default
	// 64, clamped into [MinLimit, MaxLimit]).
	MinLimit     int
	MaxLimit     int
	InitialLimit int

	// QueueLimit bounds how many requests may wait for a slot, across
	// all sheddable classes (default 256). Arrivals beyond it are shed
	// immediately (a normal-priority arrival evicts a queued low-
	// priority request first).
	QueueLimit int

	// QueueDeadline is the longest a request may wait in the queue
	// before it is shed (default 5ms). This is the CoDel-style sojourn
	// bound: a request that waited longer is answered with pushback at
	// dequeue time rather than served late.
	QueueDeadline time.Duration

	// Window is how many completions one limit adjustment averages over
	// (default 64).
	Window int

	// Tolerance is the multiple of the latency baseline (a decayed
	// minimum of observed handler latency) the windowed average may
	// reach before the limit is cut multiplicatively (default 2.0).
	Tolerance float64

	// RetryAfter is the base retry-after hint carried in pushback
	// responses; the hint grows with queue pressure (default 10ms).
	RetryAfter time.Duration

	// now is a test hook; nil means time.Now.
	now func() time.Time
}

func (cfg Config) withDefaults() Config {
	if cfg.MinLimit <= 0 {
		cfg.MinLimit = 4
	}
	if cfg.MaxLimit <= 0 {
		cfg.MaxLimit = 1024
	}
	if cfg.MaxLimit < cfg.MinLimit {
		cfg.MaxLimit = cfg.MinLimit
	}
	if cfg.InitialLimit <= 0 {
		cfg.InitialLimit = 64
	}
	if cfg.InitialLimit < cfg.MinLimit {
		cfg.InitialLimit = cfg.MinLimit
	}
	if cfg.InitialLimit > cfg.MaxLimit {
		cfg.InitialLimit = cfg.MaxLimit
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 256
	}
	if cfg.QueueDeadline <= 0 {
		cfg.QueueDeadline = 5 * time.Millisecond
	}
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	if cfg.Tolerance <= 1 {
		cfg.Tolerance = 2.0
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 10 * time.Millisecond
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return cfg
}

// decreaseFactor is the multiplicative cut applied to the limit when a
// window's average latency exceeds the tolerated target (the MD in
// AIMD); the additive increase is one slot per saturated window.
const decreaseFactor = 0.9

// item is one request waiting for an admission slot.
type item struct {
	pri  wire.Priority
	enq  time.Time
	run  func()
	shed func(retryAfter time.Duration)
}

// Controller is the server-side admission controller. Submit either runs
// the request (now or after a bounded queue wait), or sheds it by
// invoking its shed callback with a retry-after hint. Safe for
// concurrent use.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	inflight int
	limit    float64
	queues   [2][]*item // index 0: normal, 1: low
	queued   int

	// latency window for the AIMD adjustment
	winCount  int
	winSum    time.Duration
	winMin    time.Duration
	baseline  time.Duration
	saturated bool

	admitted  *obs.Counter
	bypass    *obs.Counter
	enqueued  *obs.Counter
	shedFull  *obs.Counter
	shedLate  *obs.Counter
	shedEvict *obs.Counter
	limitG    *obs.Gauge
	inflightG *obs.Gauge
	depthG    *obs.Gauge
	latency   *obs.Histogram
	queueWait *obs.Histogram
}

// NewController builds a controller publishing its metrics under
// scope+"overload." in reg (a private registry is created when reg is
// nil, keeping the controller usable in tests without wiring).
func NewController(cfg Config, reg *obs.Registry, scope string) *Controller {
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	scope += "overload."
	c := &Controller{
		cfg:       cfg,
		limit:     float64(cfg.InitialLimit),
		admitted:  reg.Counter(scope + "admitted"),
		bypass:    reg.Counter(scope + "bypass"),
		enqueued:  reg.Counter(scope + "queued"),
		shedFull:  reg.Counter(scope + "shed.full"),
		shedLate:  reg.Counter(scope + "shed.late"),
		shedEvict: reg.Counter(scope + "shed.evicted"),
		limitG:    reg.Gauge(scope + "limit"),
		inflightG: reg.Gauge(scope + "inflight"),
		depthG:    reg.Gauge(scope + "queue.depth"),
		latency:   reg.Histogram(scope + "latency"),
		queueWait: reg.Histogram(scope + "queue.wait"),
	}
	c.limitG.Set(int64(cfg.InitialLimit))
	return c
}

// Limit reports the current adaptive concurrency limit.
func (c *Controller) Limit() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int(c.limit)
}

// Inflight reports how many admitted requests are currently running.
func (c *Controller) Inflight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight
}

// Shed reports the total number of requests shed so far (all causes).
func (c *Controller) Shed() uint64 {
	return c.shedFull.Load() + c.shedLate.Load() + c.shedEvict.Load()
}

// Submit offers one request for admission. run executes the request (the
// controller launches it on its own goroutine and measures its latency);
// shed, which may be nil, is called with a retry-after hint when the
// request is rejected instead. PriorityHigh requests are never shed —
// they bypass the limit (counted in flight, so their completions still
// feed the latency signal). Decisions are made and callbacks invoked
// without blocking the caller beyond a short critical section, so the
// kernel's receive pump can call this directly.
func (c *Controller) Submit(pri wire.Priority, run func(), shed func(retryAfter time.Duration)) {
	c.mu.Lock()
	if pri == wire.PriorityHigh {
		c.inflight++
		c.inflightG.Set(int64(c.inflight))
		c.mu.Unlock()
		c.bypass.Inc()
		go c.exec(run)
		return
	}
	if c.inflight < int(c.limit) && c.queued == 0 {
		c.inflight++
		c.inflightG.Set(int64(c.inflight))
		c.mu.Unlock()
		c.admitted.Inc()
		go c.exec(run)
		return
	}
	// No free slot: queue, evict, or shed.
	c.saturated = true
	var evicted *item
	if c.queued >= c.cfg.QueueLimit {
		if pri == wire.PriorityNormal && len(c.queues[1]) > 0 {
			// Make room for a normal request by shedding the newest
			// queued low-priority one.
			lq := c.queues[1]
			evicted = lq[len(lq)-1]
			c.queues[1] = lq[:len(lq)-1]
			c.queued--
		} else {
			hint := c.hintLocked()
			c.mu.Unlock()
			c.shedFull.Inc()
			if shed != nil {
				shed(hint)
			}
			return
		}
	}
	qi := 0
	if pri == wire.PriorityLow {
		qi = 1
	}
	c.queues[qi] = append(c.queues[qi], &item{pri: pri, enq: c.cfg.now(), run: run, shed: shed})
	c.queued++
	c.depthG.Set(int64(c.queued))
	var hint time.Duration
	if evicted != nil {
		hint = c.hintLocked()
	}
	c.mu.Unlock()
	c.enqueued.Inc()
	if evicted != nil {
		c.shedEvict.Inc()
		if evicted.shed != nil {
			evicted.shed(hint)
		}
	}
}

// hintLocked computes the retry-after hint under the lock: the base hint
// scaled up with queue pressure, capped at 10× base.
func (c *Controller) hintLocked() time.Duration {
	limit := int(c.limit)
	if limit < 1 {
		limit = 1
	}
	scale := 1 + c.queued/limit
	if scale > 10 {
		scale = 10
	}
	return c.cfg.RetryAfter * time.Duration(scale)
}

// exec runs one admitted request and feeds its completion back.
func (c *Controller) exec(run func()) {
	start := c.cfg.now()
	run()
	c.release(c.cfg.now().Sub(start))
}

// release returns a slot, records the completion latency, adjusts the
// limit, and drains the queue: expired waiters are shed, fresh ones run.
func (c *Controller) release(lat time.Duration) {
	c.latency.Observe(lat)
	now := c.cfg.now()

	c.mu.Lock()
	c.inflight--
	c.recordLocked(lat)

	// Drain: shed queue heads that waited past the deadline whether or
	// not a slot is free (serving them late helps nobody), then admit
	// fresh waiters — normal before low — while slots last.
	var toShed []*item
	var toRun []*item
	for qi := 0; qi < 2; qi++ {
		q := c.queues[qi]
		for len(q) > 0 {
			head := q[0]
			if now.Sub(head.enq) > c.cfg.QueueDeadline {
				q = q[1:]
				c.queued--
				toShed = append(toShed, head)
				continue
			}
			if c.inflight >= int(c.limit) {
				break
			}
			q = q[1:]
			c.queued--
			c.inflight++
			toRun = append(toRun, head)
		}
		c.queues[qi] = q
	}
	c.inflightG.Set(int64(c.inflight))
	c.depthG.Set(int64(c.queued))
	var hint time.Duration
	if len(toShed) > 0 {
		c.saturated = true
		hint = c.hintLocked()
	}
	c.mu.Unlock()

	for _, it := range toShed {
		c.shedLate.Inc()
		c.queueWait.Observe(now.Sub(it.enq))
		if it.shed != nil {
			it.shed(hint)
		}
	}
	for _, it := range toRun {
		c.admitted.Inc()
		c.queueWait.Observe(now.Sub(it.enq))
		go c.exec(it.run)
	}
}

// recordLocked feeds one completion latency into the AIMD window and
// adjusts the limit when the window fills: multiplicative decrease when
// the average exceeds the tolerated target, additive increase when the
// window actually saturated the limit (growing an idle limit just delays
// the reaction to the next burst).
func (c *Controller) recordLocked(lat time.Duration) {
	c.winCount++
	c.winSum += lat
	if c.winMin == 0 || lat < c.winMin {
		c.winMin = lat
	}
	if c.winCount < c.cfg.Window {
		return
	}
	avg := c.winSum / time.Duration(c.winCount)
	// The baseline chases the windowed minimum — the closest observable
	// proxy for the uncongested service time — with a slow EWMA so a
	// genuinely slower service re-baselines instead of being throttled
	// forever.
	if c.baseline == 0 {
		c.baseline = c.winMin
	} else {
		c.baseline += (c.winMin - c.baseline) / 4
	}
	target := time.Duration(float64(c.baseline)*c.cfg.Tolerance) + c.cfg.QueueDeadline
	switch {
	case avg > target:
		c.limit *= decreaseFactor
		if c.limit < float64(c.cfg.MinLimit) {
			c.limit = float64(c.cfg.MinLimit)
		}
	case c.saturated:
		c.limit++
		if c.limit > float64(c.cfg.MaxLimit) {
			c.limit = float64(c.cfg.MaxLimit)
		}
	}
	c.limitG.Set(int64(c.limit))
	c.winCount, c.winSum, c.winMin, c.saturated = 0, 0, 0, false
}
