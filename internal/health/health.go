// Package health is the failure-detection substrate every proxy kind
// shares. It has two pieces: a Monitor that tracks per-node liveness
// (alive → suspect → dead) from active pings and passive call outcomes,
// and per-destination circuit breakers (breaker.go) that stop traffic to
// destinations that keep timing out.
//
// The paper's argument is that fault tolerance is part of a service's
// private distribution strategy: clients hold a proxy and never see the
// machinery. This package is that machinery's shared half — stubs and
// smart proxies consult it, the invocation interface above never changes.
// It sits below internal/core (core imports health, not vice versa), so
// its exported Service implements core.Service structurally.
package health

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/wire"
)

// State is a node's liveness verdict.
type State int32

// Liveness states, ordered by increasing suspicion. StateDegraded sits
// between alive and suspect: the node is provably up — it answers
// something, or peers can reach it — but it is not healthy (slow, lossy,
// or reachable in only one direction).
const (
	StateAlive State = iota
	StateDegraded
	StateSuspect
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateDegraded:
		return "degraded"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return "unknown"
	}
}

// Direction qualifies a StateDegraded verdict: which half of the path
// between this monitor and the node is broken, as far as the evidence
// shows. A merely-slow node degrades with DirectionNone.
type Direction int32

// Degradation directions.
const (
	// DirectionNone: no asymmetry — both directions work (the node is
	// slow or lossy, not partitioned).
	DirectionNone Direction = iota
	// DirectionOutbound: we cannot complete a round trip to the node,
	// but we still hear its traffic — our outbound path to it is broken.
	DirectionOutbound
	// DirectionInbound: we cannot complete a round trip and hear nothing
	// from the node, yet peers reach it fine — the path from it (or to
	// it and back) is broken on the far side.
	DirectionInbound
)

func (d Direction) String() string {
	switch d {
	case DirectionOutbound:
		return "outbound"
	case DirectionInbound:
		return "inbound"
	default:
		return "-"
	}
}

// NodeStatus is one node's current standing.
type NodeStatus struct {
	Node     wire.NodeID
	State    State
	Missed   int       // consecutive failed probes/calls
	LastSeen time.Time // zero until the first success

	// Gray-failure evidence (see score.go for the model).
	Score     float64       // composite health score in [0,1]: 0 healthy, 1 awful
	RTT       time.Duration // EWMA round-trip estimate; 0 until the first timed sample
	Loss      float64       // EWMA failure rate in [0,1]
	Direction Direction     // asymmetry verdict when State == StateDegraded
}

// MonitorOption configures a Monitor.
type MonitorOption func(*Monitor)

// WithInterval sets the active probe period (default 500 ms). Zero
// disables active probing entirely: the monitor then learns only from
// ReportSuccess/ReportFailure calls made by the invocation path.
func WithInterval(d time.Duration) MonitorOption {
	return func(m *Monitor) {
		m.interval = d
		m.intervalSet = true
	}
}

// WithProbeTimeout bounds one ping round-trip (default half the interval,
// or 100 ms for passive monitors).
func WithProbeTimeout(d time.Duration) MonitorOption {
	return func(m *Monitor) {
		if d > 0 {
			m.timeout = d
		}
	}
}

// WithSuspectAfter sets how many consecutive misses mark a node suspect
// (default 2).
func WithSuspectAfter(n int) MonitorOption {
	return func(m *Monitor) {
		if n > 0 {
			m.suspectAfter = n
		}
	}
}

// WithDeadAfter sets how many consecutive misses mark a node dead
// (default 5).
func WithDeadAfter(n int) MonitorOption {
	return func(m *Monitor) {
		if n > 0 {
			m.deadAfter = n
		}
	}
}

// WithObserver routes the monitor's gauges and counters into a shared
// registry. Default: a private observer.
func WithObserver(o *obs.Observer) MonitorOption {
	return func(m *Monitor) {
		if o != nil {
			m.obs = o
		}
	}
}

// Monitor watches a set of nodes. Watched nodes are pinged every interval;
// any answer at all — including an error frame — proves the node is up.
// Misses accumulate; successes reset. The invocation path feeds passive
// evidence in through ReportSuccess/ReportFailure/ReportLatency, so a
// busy system detects failures faster than its probe period.
//
// Beyond the binary verdict, the monitor keeps a per-destination health
// score (EWMA RTT + loss, graded against the peer population's median
// RTT — see score.go) and runs SWIM-style indirect probes through peers
// when direct probes fail (prober.go), so a slow node or a one-way
// partition is classified StateDegraded — with direction — instead of
// being mistaken for dead or, worse, healthy.
type Monitor struct {
	ktx          *kernel.Context
	interval     time.Duration
	intervalSet  bool
	timeout      time.Duration
	suspectAfter int
	deadAfter    int

	// Gray-failure knobs (see score.go / prober.go for the model).
	rttAlpha      float64
	lossAlpha     float64
	outlierFactor float64
	degradeScore  float64
	degradeAfter  int
	indirectK     int
	indirectKSet  bool
	indirectTTL   time.Duration
	inboundWindow time.Duration

	obs          *obs.Observer
	scope        string
	probes       *obs.Counter
	probeFails   *obs.Counter
	transitions  *obs.Counter
	indirects    *obs.Counter
	indirectHits *obs.Counter

	mu     sync.Mutex
	nodes  map[wire.NodeID]*nodeHealth
	subs   []func(node wire.NodeID, from, to State)
	closed bool
	wg     sync.WaitGroup // in-flight indirect probe rounds

	proberOn  bool
	inboundOn bool

	stop chan struct{}
	done chan struct{}
}

type nodeHealth struct {
	watched  bool // actively probed (vs. passively discovered)
	state    State
	missed   int
	lastSeen time.Time
	gauge    *obs.Gauge

	// Gray-failure evidence.
	rtt          float64 // EWMA round-trip estimate, ns; 0 until first sample
	loss         float64 // EWMA failure rate in [0,1]
	score        float64
	streak       int // consecutive over-threshold score evaluations
	direction    Direction
	lastInbound  time.Time // last frame heard FROM the node (any kind)
	lastIndirect time.Time // last time a peer confirmed the node alive
	indirectBusy bool      // an indirect probe round is in flight
	scoreG       *obs.Gauge
	rttG         *obs.Gauge
	dirG         *obs.Gauge
}

// NewMonitor builds a monitor probing out of ktx. Close it when done.
func NewMonitor(ktx *kernel.Context, opts ...MonitorOption) *Monitor {
	m := &Monitor{
		ktx:           ktx,
		interval:      500 * time.Millisecond,
		suspectAfter:  2,
		deadAfter:     5,
		rttAlpha:      0.2,
		lossAlpha:     0.2,
		outlierFactor: 3.0,
		degradeScore:  0.5,
		degradeAfter:  3,
		indirectK:     2,
		nodes:         make(map[wire.NodeID]*nodeHealth),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	for _, o := range opts {
		o(m)
	}
	if m.obs == nil {
		m.obs = obs.NewObserver()
	}
	if m.timeout == 0 {
		if m.interval > 0 {
			m.timeout = m.interval / 2
		} else {
			m.timeout = 100 * time.Millisecond
		}
	}
	// Freshness windows for indirect-probe and inbound evidence scale
	// with the probe period: evidence older than a few rounds is stale.
	if base := m.interval; base > 0 {
		m.indirectTTL = 4 * base
		m.inboundWindow = 4 * base
	} else {
		m.indirectTTL = 2 * time.Second
		m.inboundWindow = 2 * time.Second
	}
	m.scope = "health[" + ktx.Addr().String() + "]."
	m.probes = m.obs.Registry.Counter(m.scope + "probes")
	m.probeFails = m.obs.Registry.Counter(m.scope + "probe_failures")
	m.transitions = m.obs.Registry.Counter(m.scope + "transitions")
	m.indirects = m.obs.Registry.Counter(m.scope + "indirect_probes")
	m.indirectHits = m.obs.Registry.Counter(m.scope + "indirect_alive")
	if m.indirectK > 0 {
		// Serve indirect probes for peers; tolerate another monitor on
		// this context already having claimed the well-known id.
		if err := ktx.RegisterAt(ProberObject, &prober{m: m}); err == nil {
			m.proberOn = true
		}
		// Passive inbound evidence (kernel-level: includes the pings the
		// kernel answers below the object layer) disambiguates which
		// direction of an asymmetric partition is broken.
		ktx.Node().SetInboundObserver(m.ObserveInbound)
		m.inboundOn = true
	}
	if m.interval > 0 {
		go m.loop()
	} else {
		close(m.done)
	}
	return m
}

// Watch adds a node to the active probe set.
func (m *Monitor) Watch(node wire.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entry(node).watched = true
}

// Unwatch stops probing a node and forgets its state.
func (m *Monitor) Unwatch(node wire.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h := m.nodes[node]; h != nil && h.gauge != nil {
		h.gauge.Set(int64(StateAlive))
	}
	delete(m.nodes, node)
}

// entry returns the node's record, creating it; m.mu must be held.
func (m *Monitor) entry(node wire.NodeID) *nodeHealth {
	h, ok := m.nodes[node]
	if !ok {
		h = &nodeHealth{
			gauge:  m.obs.Registry.Gauge(fmt.Sprintf("%snode.%d.state", m.scope, node)),
			scoreG: m.obs.Registry.Gauge(fmt.Sprintf("%snode.%d.score", m.scope, node)),
			rttG:   m.obs.Registry.Gauge(fmt.Sprintf("%snode.%d.rtt_us", m.scope, node)),
			dirG:   m.obs.Registry.Gauge(fmt.Sprintf("%snode.%d.direction", m.scope, node)),
		}
		m.nodes[node] = h
	}
	return h
}

// State reports the node's current verdict. Unknown nodes are presumed
// alive: suspicion requires evidence.
func (m *Monitor) State(node wire.NodeID) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.nodes[node]; ok {
		return h.state
	}
	return StateAlive
}

// Status reports the node's full standing, including its gray-failure
// evidence. Unknown nodes read as alive with a zero score.
func (m *Monitor) Status(node wire.NodeID) NodeStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.nodes[node]; ok {
		return statusOf(node, h)
	}
	return NodeStatus{Node: node, State: StateAlive}
}

// Score reports the node's health score in [0,1]: 0 is healthy, 1 is as
// bad as the model grades. Unknown nodes score 0 — suspicion requires
// evidence. Dead and suspect nodes score 1: routing preferences that
// sort by score then treat them as worst.
func (m *Monitor) Score(node wire.NodeID) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.nodes[node]
	if !ok {
		return 0
	}
	if h.state >= StateSuspect {
		return 1
	}
	return h.score
}

// Snapshot returns the status of every known node.
func (m *Monitor) Snapshot() []NodeStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeStatus, 0, len(m.nodes))
	for id, h := range m.nodes {
		out = append(out, statusOf(id, h))
	}
	return out
}

func statusOf(id wire.NodeID, h *nodeHealth) NodeStatus {
	return NodeStatus{
		Node: id, State: h.state, Missed: h.missed, LastSeen: h.lastSeen,
		Score: h.score, RTT: time.Duration(h.rtt), Loss: h.loss, Direction: h.direction,
	}
}

// Subscribe registers a callback fired on every state transition. The
// callback runs outside the monitor's lock; it must not block for long.
func (m *Monitor) Subscribe(fn func(node wire.NodeID, from, to State)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.subs = append(m.subs, fn)
}

// ReportSuccess feeds passive evidence that the node answered a call.
func (m *Monitor) ReportSuccess(node wire.NodeID) { m.observe(node, true, 0) }

// ReportFailure feeds passive evidence that a call to the node timed out.
func (m *Monitor) ReportFailure(node wire.NodeID) { m.observe(node, false, 0) }

// ReportLatency feeds passive evidence that the node answered a call in
// rtt: a success that also updates the EWMA round-trip estimate behind
// the node's health score. The invocation path (core.Runtime.GuardedCall)
// calls this for every timed answer, so scores track real traffic, not
// just probe pings.
func (m *Monitor) ReportLatency(node wire.NodeID, rtt time.Duration) {
	m.observe(node, true, rtt)
}

// ObserveInbound records that a frame from the node was just heard. The
// kernel's receive pump calls this for every inbound frame — including
// pings answered below the object layer — so a one-way partition where
// the node still reaches us is distinguishable (DirectionOutbound) from
// one where it does not (DirectionInbound). Unknown nodes are ignored:
// hearing from a stranger is not evidence anyone asked for.
func (m *Monitor) ObserveInbound(src wire.NodeID) {
	m.mu.Lock()
	if h, ok := m.nodes[src]; ok {
		h.lastInbound = time.Now()
	}
	m.mu.Unlock()
}

func (m *Monitor) observe(node wire.NodeID, ok bool, rtt time.Duration) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	h := m.entry(node)
	now := time.Now()
	if ok {
		h.missed = 0
		h.lastSeen = now
		h.loss *= 1 - m.lossAlpha
		if rtt > 0 {
			if h.rtt == 0 {
				h.rtt = float64(rtt)
			} else {
				h.rtt += m.rttAlpha * (float64(rtt) - h.rtt)
			}
		}
	} else {
		h.missed++
		h.loss += m.lossAlpha * (1 - h.loss)
	}
	launch := m.finishObservation(node, h, now)
	if launch != nil {
		launch()
	}
}

// finishObservation grades the node under m.mu, publishes gauges, fires
// subscriptions, and — when the node just went suspect with indirect
// probing enabled — returns the indirect round to launch. It unlocks
// m.mu. Callers invoke the returned launch function (if any) after it
// returns.
func (m *Monitor) finishObservation(node wire.NodeID, h *nodeHealth, now time.Time) func() {
	from := h.state
	m.grade(h, now)
	to := h.state
	var subs []func(wire.NodeID, State, State)
	if to != from {
		h.gauge.Set(int64(to))
		m.transitions.Inc()
		subs = append(subs, m.subs...)
	}
	h.scoreG.Set(int64(h.score * 1000))
	h.rttG.Set(int64(h.rtt) / 1000)
	h.dirG.Set(int64(h.direction))
	var launch func()
	if m.indirectK > 0 && !m.closed && h.missed >= m.suspectAfter && !h.indirectBusy &&
		now.Sub(h.lastIndirect) > m.indirectTTL/2 {
		if relays := m.relaysFor(node); len(relays) > 0 {
			h.indirectBusy = true
			m.wg.Add(1) // under m.mu, so Close cannot Wait before the Add
			launch = func() { go m.indirectRound(node, relays) }
		}
	}
	m.mu.Unlock()
	for _, fn := range subs {
		fn(node, from, to)
	}
	return launch
}

// Close stops the probe loop, waits out any in-flight indirect probe
// rounds, and releases the prober object and inbound hook. Idempotent.
func (m *Monitor) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	if m.inboundOn {
		m.ktx.Node().SetInboundObserver(nil)
	}
	if m.proberOn {
		m.ktx.Unregister(ProberObject)
	}
	close(m.stop)
	<-m.done
	m.wg.Wait()
	return nil
}

func (m *Monitor) loop() {
	defer close(m.done)
	ticker := time.NewTicker(m.interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			m.probeAll()
		}
	}
}

// probeAll pings every watched node concurrently and waits for the round
// to finish, so rounds never pile up on a slow network.
func (m *Monitor) probeAll() {
	m.mu.Lock()
	targets := make([]wire.NodeID, 0, len(m.nodes))
	for id, h := range m.nodes {
		if h.watched {
			targets = append(targets, id)
		}
	}
	m.mu.Unlock()
	var wg sync.WaitGroup
	for _, id := range targets {
		wg.Add(1)
		go func(id wire.NodeID) {
			defer wg.Done()
			m.probe(id)
		}(id)
	}
	wg.Wait()
}

func (m *Monitor) probe(node wire.NodeID) {
	ctx, cancel := context.WithTimeout(context.Background(), m.timeout)
	defer cancel()
	m.probes.Inc()
	start := time.Now()
	_, err := m.ktx.Call(ctx, wire.Addr{Node: node}, wire.KernelObject, wire.KindPing, 0, nil)
	// A RemoteError is still an answer: the node is up enough to complain.
	var re *kernel.RemoteError
	if err == nil || errors.As(err, &re) {
		m.observe(node, true, time.Since(start))
		return
	}
	m.probeFails.Inc()
	m.observe(node, false, 0)
}
