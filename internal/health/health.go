// Package health is the failure-detection substrate every proxy kind
// shares. It has two pieces: a Monitor that tracks per-node liveness
// (alive → suspect → dead) from active pings and passive call outcomes,
// and per-destination circuit breakers (breaker.go) that stop traffic to
// destinations that keep timing out.
//
// The paper's argument is that fault tolerance is part of a service's
// private distribution strategy: clients hold a proxy and never see the
// machinery. This package is that machinery's shared half — stubs and
// smart proxies consult it, the invocation interface above never changes.
// It sits below internal/core (core imports health, not vice versa), so
// its exported Service implements core.Service structurally.
package health

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/wire"
)

// State is a node's liveness verdict.
type State int32

// Liveness states, ordered by increasing suspicion.
const (
	StateAlive State = iota
	StateSuspect
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return "unknown"
	}
}

// NodeStatus is one node's current standing.
type NodeStatus struct {
	Node     wire.NodeID
	State    State
	Missed   int       // consecutive failed probes/calls
	LastSeen time.Time // zero until the first success
}

// MonitorOption configures a Monitor.
type MonitorOption func(*Monitor)

// WithInterval sets the active probe period (default 500 ms). Zero
// disables active probing entirely: the monitor then learns only from
// ReportSuccess/ReportFailure calls made by the invocation path.
func WithInterval(d time.Duration) MonitorOption {
	return func(m *Monitor) {
		m.interval = d
		m.intervalSet = true
	}
}

// WithProbeTimeout bounds one ping round-trip (default half the interval,
// or 100 ms for passive monitors).
func WithProbeTimeout(d time.Duration) MonitorOption {
	return func(m *Monitor) {
		if d > 0 {
			m.timeout = d
		}
	}
}

// WithSuspectAfter sets how many consecutive misses mark a node suspect
// (default 2).
func WithSuspectAfter(n int) MonitorOption {
	return func(m *Monitor) {
		if n > 0 {
			m.suspectAfter = n
		}
	}
}

// WithDeadAfter sets how many consecutive misses mark a node dead
// (default 5).
func WithDeadAfter(n int) MonitorOption {
	return func(m *Monitor) {
		if n > 0 {
			m.deadAfter = n
		}
	}
}

// WithObserver routes the monitor's gauges and counters into a shared
// registry. Default: a private observer.
func WithObserver(o *obs.Observer) MonitorOption {
	return func(m *Monitor) {
		if o != nil {
			m.obs = o
		}
	}
}

// Monitor watches a set of nodes. Watched nodes are pinged every interval;
// any answer at all — including an error frame — proves the node is up.
// Misses accumulate; successes reset. The invocation path feeds passive
// evidence in through ReportSuccess/ReportFailure, so a busy system
// detects failures faster than its probe period.
type Monitor struct {
	ktx          *kernel.Context
	interval     time.Duration
	intervalSet  bool
	timeout      time.Duration
	suspectAfter int
	deadAfter    int

	obs         *obs.Observer
	scope       string
	probes      *obs.Counter
	probeFails  *obs.Counter
	transitions *obs.Counter

	mu     sync.Mutex
	nodes  map[wire.NodeID]*nodeHealth
	subs   []func(node wire.NodeID, from, to State)
	closed bool

	stop chan struct{}
	done chan struct{}
}

type nodeHealth struct {
	watched  bool // actively probed (vs. passively discovered)
	state    State
	missed   int
	lastSeen time.Time
	gauge    *obs.Gauge
}

// NewMonitor builds a monitor probing out of ktx. Close it when done.
func NewMonitor(ktx *kernel.Context, opts ...MonitorOption) *Monitor {
	m := &Monitor{
		ktx:          ktx,
		interval:     500 * time.Millisecond,
		suspectAfter: 2,
		deadAfter:    5,
		nodes:        make(map[wire.NodeID]*nodeHealth),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	for _, o := range opts {
		o(m)
	}
	if m.obs == nil {
		m.obs = obs.NewObserver()
	}
	if m.timeout == 0 {
		if m.interval > 0 {
			m.timeout = m.interval / 2
		} else {
			m.timeout = 100 * time.Millisecond
		}
	}
	m.scope = "health[" + ktx.Addr().String() + "]."
	m.probes = m.obs.Registry.Counter(m.scope + "probes")
	m.probeFails = m.obs.Registry.Counter(m.scope + "probe_failures")
	m.transitions = m.obs.Registry.Counter(m.scope + "transitions")
	if m.interval > 0 {
		go m.loop()
	} else {
		close(m.done)
	}
	return m
}

// Watch adds a node to the active probe set.
func (m *Monitor) Watch(node wire.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entry(node).watched = true
}

// Unwatch stops probing a node and forgets its state.
func (m *Monitor) Unwatch(node wire.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h := m.nodes[node]; h != nil && h.gauge != nil {
		h.gauge.Set(int64(StateAlive))
	}
	delete(m.nodes, node)
}

// entry returns the node's record, creating it; m.mu must be held.
func (m *Monitor) entry(node wire.NodeID) *nodeHealth {
	h, ok := m.nodes[node]
	if !ok {
		h = &nodeHealth{
			gauge: m.obs.Registry.Gauge(fmt.Sprintf("%snode.%d.state", m.scope, node)),
		}
		m.nodes[node] = h
	}
	return h
}

// State reports the node's current verdict. Unknown nodes are presumed
// alive: suspicion requires evidence.
func (m *Monitor) State(node wire.NodeID) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.nodes[node]; ok {
		return h.state
	}
	return StateAlive
}

// Snapshot returns the status of every known node.
func (m *Monitor) Snapshot() []NodeStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeStatus, 0, len(m.nodes))
	for id, h := range m.nodes {
		out = append(out, NodeStatus{Node: id, State: h.state, Missed: h.missed, LastSeen: h.lastSeen})
	}
	return out
}

// Subscribe registers a callback fired on every state transition. The
// callback runs outside the monitor's lock; it must not block for long.
func (m *Monitor) Subscribe(fn func(node wire.NodeID, from, to State)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.subs = append(m.subs, fn)
}

// ReportSuccess feeds passive evidence that the node answered a call.
func (m *Monitor) ReportSuccess(node wire.NodeID) { m.observe(node, true) }

// ReportFailure feeds passive evidence that a call to the node timed out.
func (m *Monitor) ReportFailure(node wire.NodeID) { m.observe(node, false) }

func (m *Monitor) observe(node wire.NodeID, ok bool) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	h := m.entry(node)
	from := h.state
	if ok {
		h.missed = 0
		h.state = StateAlive
		h.lastSeen = time.Now()
	} else {
		h.missed++
		switch {
		case h.missed >= m.deadAfter:
			h.state = StateDead
		case h.missed >= m.suspectAfter:
			h.state = StateSuspect
		}
	}
	to := h.state
	var subs []func(wire.NodeID, State, State)
	if to != from {
		h.gauge.Set(int64(to))
		m.transitions.Inc()
		subs = append(subs, m.subs...)
	}
	m.mu.Unlock()
	for _, fn := range subs {
		fn(node, from, to)
	}
}

// Close stops the probe loop. Idempotent.
func (m *Monitor) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	close(m.stop)
	<-m.done
	return nil
}

func (m *Monitor) loop() {
	defer close(m.done)
	ticker := time.NewTicker(m.interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			m.probeAll()
		}
	}
}

// probeAll pings every watched node concurrently and waits for the round
// to finish, so rounds never pile up on a slow network.
func (m *Monitor) probeAll() {
	m.mu.Lock()
	targets := make([]wire.NodeID, 0, len(m.nodes))
	for id, h := range m.nodes {
		if h.watched {
			targets = append(targets, id)
		}
	}
	m.mu.Unlock()
	var wg sync.WaitGroup
	for _, id := range targets {
		wg.Add(1)
		go func(id wire.NodeID) {
			defer wg.Done()
			m.probe(id)
		}(id)
	}
	wg.Wait()
}

func (m *Monitor) probe(node wire.NodeID) {
	ctx, cancel := context.WithTimeout(context.Background(), m.timeout)
	defer cancel()
	m.probes.Inc()
	_, err := m.ktx.Call(ctx, wire.Addr{Node: node}, wire.KernelObject, wire.KindPing, 0, nil)
	// A RemoteError is still an answer: the node is up enough to complain.
	var re *kernel.RemoteError
	if err == nil || errors.As(err, &re) {
		m.observe(node, true)
		return
	}
	m.probeFails.Inc()
	m.observe(node, false)
}
