package health

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/wire"
)

// rig joins n kernel nodes (ids 1..n) on one simulated network and hands
// back their contexts.
type rig struct {
	net  *netsim.Network
	ktxs []*kernel.Context
}

func newRig(t *testing.T, n int, opts ...netsim.NetworkOption) *rig {
	t.Helper()
	r := &rig{net: netsim.New(opts...)}
	t.Cleanup(r.net.Close)
	for i := 1; i <= n; i++ {
		ep, err := r.net.Attach(wire.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		node := kernel.NewNode(ep)
		t.Cleanup(func() { node.Close() })
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		r.ktxs = append(r.ktxs, ktx)
	}
	return r
}

func TestStateString(t *testing.T) {
	for want, s := range map[string]State{
		"alive": StateAlive, "suspect": StateSuspect, "dead": StateDead, "unknown": State(99),
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestMonitorDetectsCrashAndRecovery(t *testing.T) {
	r := newRig(t, 2)
	m := NewMonitor(r.ktxs[0],
		WithInterval(10*time.Millisecond),
		WithProbeTimeout(5*time.Millisecond),
		WithSuspectAfter(2), WithDeadAfter(4))
	defer m.Close()
	m.Watch(2)

	waitState := func(want State, during string) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for m.State(2) != want {
			if time.Now().After(deadline) {
				t.Fatalf("node 2 never became %v %s (state %v)", want, during, m.State(2))
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	waitState(StateAlive, "while up")
	r.net.Crash(2)
	waitState(StateDead, "after crash")
	r.net.Restart(2)
	waitState(StateAlive, "after restart")

	if m.probes.Load() == 0 {
		t.Error("probe counter never incremented")
	}
	if m.transitions.Load() == 0 {
		t.Error("transition counter never incremented")
	}
}

func TestPassiveReportsDriveStates(t *testing.T) {
	r := newRig(t, 1)
	// Interval 0: passive only — no probe loop at all.
	m := NewMonitor(r.ktxs[0], WithSuspectAfter(2), WithDeadAfter(3), WithInterval(0))
	defer m.Close()

	var mu sync.Mutex
	var seen []State
	m.Subscribe(func(_ wire.NodeID, _, to State) {
		mu.Lock()
		seen = append(seen, to)
		mu.Unlock()
	})

	if st := m.State(9); st != StateAlive {
		t.Errorf("unknown node state = %v, want alive (suspicion needs evidence)", st)
	}
	m.ReportFailure(9)
	if st := m.State(9); st != StateAlive {
		t.Errorf("after 1 miss: %v, want alive", st)
	}
	m.ReportFailure(9)
	if st := m.State(9); st != StateSuspect {
		t.Errorf("after 2 misses: %v, want suspect", st)
	}
	m.ReportFailure(9)
	if st := m.State(9); st != StateDead {
		t.Errorf("after 3 misses: %v, want dead", st)
	}
	m.ReportSuccess(9)
	if st := m.State(9); st != StateAlive {
		t.Errorf("after success: %v, want alive", st)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []State{StateSuspect, StateDead, StateAlive}
	if len(seen) != len(want) {
		t.Fatalf("subscriber saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("subscriber saw %v, want %v", seen, want)
		}
	}
}

func TestSnapshotAndUnwatch(t *testing.T) {
	r := newRig(t, 1)
	m := NewMonitor(r.ktxs[0], WithInterval(0))
	defer m.Close()
	m.Watch(5)
	m.ReportSuccess(5)
	snap := m.Snapshot()
	if len(snap) != 1 || snap[0].Node != 5 || snap[0].State != StateAlive {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].LastSeen.IsZero() {
		t.Error("LastSeen zero after a success")
	}
	m.Unwatch(5)
	if len(m.Snapshot()) != 0 {
		t.Error("snapshot non-empty after Unwatch")
	}
}

func TestMonitorCloseIdempotentAndInert(t *testing.T) {
	r := newRig(t, 1)
	m := NewMonitor(r.ktxs[0], WithInterval(5*time.Millisecond))
	m.Watch(1)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Reports after Close are dropped, not recorded.
	m.ReportFailure(1)
	for _, st := range m.Snapshot() {
		if st.Missed != 0 {
			t.Errorf("report after Close recorded: %+v", st)
		}
	}
}

func TestMonitorSharedObserver(t *testing.T) {
	r := newRig(t, 1)
	o := obs.NewObserver()
	m := NewMonitor(r.ktxs[0], WithInterval(0), WithObserver(o))
	defer m.Close()
	m.ReportFailure(3)
	m.ReportFailure(3)
	found := false
	o.Registry.Each(func(_, name, _ string) {
		if strings.Contains(name, "node.3.state") {
			found = true
		}
	})
	if !found {
		t.Error("node state gauge not registered in shared observer")
	}
}

func TestServiceNodesAndState(t *testing.T) {
	r := newRig(t, 1)
	m := NewMonitor(r.ktxs[0], WithInterval(0), WithSuspectAfter(1))
	defer m.Close()
	svc := NewService(m)

	res, err := svc.Invoke(nil, "nodes", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res[0].(string), "no nodes tracked") {
		t.Errorf("empty monitor: %q", res[0])
	}

	m.Watch(4)
	m.ReportFailure(4)
	res, err = svc.Invoke(nil, "nodes", nil)
	if err != nil {
		t.Fatal(err)
	}
	table := res[0].(string)
	if !strings.Contains(table, "suspect") {
		t.Errorf("table missing suspect row:\n%s", table)
	}

	res, err = svc.Invoke(nil, "state", []any{int64(4)})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(string) != "suspect" {
		t.Errorf("state(4) = %q, want suspect", res[0])
	}

	if _, err := svc.Invoke(nil, "state", nil); err == nil {
		t.Error("state without args should error")
	}
	if _, err := svc.Invoke(nil, "state", []any{"four"}); err == nil {
		t.Error("state with string arg should error")
	}
	if _, err := svc.Invoke(nil, "bogus", nil); err == nil {
		t.Error("unknown method should error")
	}
}
