package health

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/wire"
)

// TypeName is the proxy type the health service exports under. Like
// obs.Service it has no custom factory: importers reach it through plain
// stubs.
const TypeName = "health.Service"

// Service exposes a Monitor over the ordinary invocation conventions so
// proxyctl (or any remote client) can ask a daemon who it thinks is alive.
// It implements core.Service structurally (health sits below core).
//
// Methods:
//
//	nodes()            -> text table of every known node's status
//	state(node int64)  -> the node's state as a string
type Service struct {
	m *Monitor
}

// NewService wraps a monitor for export.
func NewService(m *Monitor) *Service { return &Service{m: m} }

// Invoke dispatches the health methods.
func (s *Service) Invoke(_ context.Context, method string, args []any) ([]any, error) {
	switch method {
	case "nodes":
		statuses := s.m.Snapshot()
		sort.Slice(statuses, func(i, j int) bool { return statuses[i].Node < statuses[j].Node })
		var b strings.Builder
		fmt.Fprintf(&b, "%-6s %-8s %-7s %s\n", "NODE", "STATE", "MISSED", "LAST SEEN")
		for _, st := range statuses {
			last := "never"
			if !st.LastSeen.IsZero() {
				last = time.Since(st.LastSeen).Round(time.Millisecond).String() + " ago"
			}
			fmt.Fprintf(&b, "%-6d %-8s %-7d %s\n", st.Node, st.State, st.Missed, last)
		}
		if len(statuses) == 0 {
			b.WriteString("(no nodes tracked)\n")
		}
		return []any{b.String()}, nil

	case "state":
		if len(args) < 1 {
			return nil, fmt.Errorf("health: node id argument required")
		}
		n, ok := args[0].(int64)
		if !ok {
			return nil, fmt.Errorf("health: node id is %T, want int64", args[0])
		}
		return []any{s.m.State(wire.NodeID(n)).String()}, nil

	default:
		return nil, fmt.Errorf("health: unknown method %q", method)
	}
}
