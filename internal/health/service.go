package health

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/wire"
)

// TypeName is the proxy type the health service exports under. Like
// obs.Service it has no custom factory: importers reach it through plain
// stubs.
const TypeName = "health.Service"

// Service exposes a Monitor over the ordinary invocation conventions so
// proxyctl (or any remote client) can ask a daemon who it thinks is alive.
// It implements core.Service structurally (health sits below core).
//
// Methods:
//
//	nodes()            -> text table of every known node's status,
//	                      including gray-failure columns (RTT, score,
//	                      degradation direction)
//	state(node int64)  -> the node's state as a string
//	snapshot()         -> v2 machine-readable snapshot: one line per node,
//	                      "node state missed score rttNs loss direction"
type Service struct {
	m *Monitor
}

// NewService wraps a monitor for export.
func NewService(m *Monitor) *Service { return &Service{m: m} }

// Invoke dispatches the health methods.
func (s *Service) Invoke(_ context.Context, method string, args []any) ([]any, error) {
	switch method {
	case "nodes":
		statuses := s.m.Snapshot()
		sort.Slice(statuses, func(i, j int) bool { return statuses[i].Node < statuses[j].Node })
		var b strings.Builder
		fmt.Fprintf(&b, "%-6s %-9s %-7s %-9s %-6s %-4s %s\n", "NODE", "STATE", "MISSED", "RTT", "SCORE", "DIR", "LAST SEEN")
		for _, st := range statuses {
			last := "never"
			if !st.LastSeen.IsZero() {
				last = time.Since(st.LastSeen).Round(time.Millisecond).String() + " ago"
			}
			rtt := "-"
			if st.RTT > 0 {
				rtt = st.RTT.Round(time.Microsecond).String()
			}
			fmt.Fprintf(&b, "%-6d %-9s %-7d %-9s %-6.2f %-4s %s\n",
				st.Node, st.State, st.Missed, rtt, st.Score, st.Direction, last)
		}
		if len(statuses) == 0 {
			b.WriteString("(no nodes tracked)\n")
		}
		return []any{b.String()}, nil

	case "snapshot":
		// v2: space-separated fields, one node per line, stable across
		// column-width changes in the human table above.
		statuses := s.m.Snapshot()
		sort.Slice(statuses, func(i, j int) bool { return statuses[i].Node < statuses[j].Node })
		var b strings.Builder
		for _, st := range statuses {
			fmt.Fprintf(&b, "%d %s %d %.3f %d %.3f %s\n",
				st.Node, st.State, st.Missed, st.Score, int64(st.RTT), st.Loss, st.Direction)
		}
		return []any{b.String()}, nil

	case "state":
		if len(args) < 1 {
			return nil, fmt.Errorf("health: node id argument required")
		}
		n, ok := args[0].(int64)
		if !ok {
			return nil, fmt.Errorf("health: node id is %T, want int64", args[0])
		}
		return []any{s.m.State(wire.NodeID(n)).String()}, nil

	default:
		return nil, fmt.Errorf("health: unknown method %q", method)
	}
}
