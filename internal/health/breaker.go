package health

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

// The classic three-state breaker.
const (
	BreakerClosed   BreakerState = iota // traffic flows
	BreakerOpen                         // traffic rejected until cooldown ends
	BreakerHalfOpen                     // one probe call in flight
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig parameterizes a Breaker. Zero fields take defaults.
type BreakerConfig struct {
	// Threshold is how many consecutive transport-level failures open the
	// breaker (default 3).
	Threshold int
	// Cooldown is how long an open breaker rejects before letting one
	// probe through (default 1 s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	return c
}

// Breaker is a per-destination circuit breaker. Closed: calls flow, and
// consecutive failures are counted. Open: calls are rejected outright
// (failing fast instead of burning a retransmit budget against a dead
// node) until the cooldown expires. Then one caller is let through as a
// probe (half-open); its outcome snaps the breaker closed or open again.
// A probe that never reports — its caller crashed, or the call ended
// with no evidence either way — does not wedge the breaker: after one
// more cooldown the probe role passes to the next caller. Safe for
// concurrent use.
type Breaker struct {
	cfg   BreakerConfig
	now   func() time.Time // injectable for tests
	gauge *obs.Gauge       // may be nil

	mu          sync.Mutex
	state       BreakerState
	consecutive int
	pressure    int // soft-failure half-counts (see Pressure)
	// until is the next decision point: while open, when the next probe
	// is allowed; while half-open, when the outstanding probe is presumed
	// lost and the probe role may be handed to a new caller.
	until time.Time
}

// NewBreaker builds a breaker with the given config.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// Allow reports whether a call may proceed now; Admit additionally tells
// the caller whether it holds the probe role.
func (b *Breaker) Allow() bool {
	ok, _ := b.Admit()
	return ok
}

// Admit reports whether a call may proceed now and, when it may, whether
// the caller is the half-open probe. A probe caller must report the
// call's outcome: Success or Failure when there is evidence, Failure
// when the call ended without any (a ctx expiring mid-probe says nothing
// about the node, but leaving the probe unreported would stall recovery
// until the probe deadline passes).
func (b *Breaker) Admit() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if now.Before(b.until) {
			return false, false
		}
		b.set(BreakerHalfOpen)
		b.until = now.Add(b.cfg.Cooldown) // probe deadline
		return true, true
	default: // BreakerHalfOpen
		if now.Before(b.until) {
			return false, false // a probe is already out
		}
		// The outstanding probe never reported: presume it lost and hand
		// the probe role to this caller, so an unreported probe delays
		// recovery by one cooldown instead of wedging the breaker.
		b.until = now.Add(b.cfg.Cooldown)
		return true, true
	}
}

// Success records a completed call (any answer, including an application
// error, counts: the destination is reachable).
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.pressure = 0
	if b.state != BreakerClosed {
		b.set(BreakerClosed)
	}
}

// Pressure records a soft failure: the call completed — so the
// destination is reachable — but its health grade says it is badly
// degraded (sustained slowness or loss). Pressure weighs half a
// Failure: two pressures count as one consecutive failure, so a
// destination that stays strongly degraded trips its breaker after
// 2×Threshold bad-but-answered calls and traffic is ejected toward
// alternates, while one that recovers (a clean Success) resets the
// count as usual. A pressured half-open probe closes the breaker —
// the node does serve — but leaves it one failure from re-opening, so
// a still-degraded node cycles mostly-open instead of mostly-closed.
func (b *Breaker) Pressure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.set(BreakerClosed)
		b.consecutive = b.cfg.Threshold - 1
	case BreakerClosed:
		b.pressure++
		if b.pressure >= 2 {
			b.pressure = 0
			b.consecutive++
			if b.consecutive >= b.cfg.Threshold {
				b.set(BreakerOpen)
				b.until = b.now().Add(b.cfg.Cooldown)
			}
		}
	case BreakerOpen:
		// Stragglers from calls admitted before the trip; keep cooling.
	}
}

// Failure records a transport-level failure (no answer at all).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.set(BreakerOpen)
		b.until = b.now().Add(b.cfg.Cooldown)
	case BreakerClosed:
		b.consecutive++
		if b.consecutive >= b.cfg.Threshold {
			b.set(BreakerOpen)
			b.until = b.now().Add(b.cfg.Cooldown)
		}
	case BreakerOpen:
		// Stragglers from calls admitted before the trip; keep cooling.
	}
}

// State reports the breaker's position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// set transitions state and mirrors it to the gauge; b.mu must be held.
func (b *Breaker) set(s BreakerState) {
	b.state = s
	if s == BreakerClosed {
		b.consecutive = 0
		b.pressure = 0
	}
	if b.gauge != nil {
		b.gauge.Set(int64(s))
	}
}

// BreakerSet is a lazily populated map of breakers keyed by destination
// node, so every layer consulting "the breaker for that node" shares one
// instance and one failure history. The evidence a breaker counts (retry
// exhaustion, crashed or unknown node) is node-level, and contexts on a
// node share fate — so one failing node trips one breaker however many
// of its contexts the proxies here point at.
type BreakerSet struct {
	cfg   BreakerConfig
	reg   *obs.Registry // may be nil
	scope string

	mu sync.Mutex
	m  map[wire.NodeID]*Breaker
}

// NewBreakerSet builds a set; reg (optional) receives one state gauge per
// destination, named scope + "breaker.node<id>.state".
func NewBreakerSet(cfg BreakerConfig, reg *obs.Registry, scope string) *BreakerSet {
	return &BreakerSet{
		cfg:   cfg.withDefaults(),
		reg:   reg,
		scope: scope,
		m:     make(map[wire.NodeID]*Breaker),
	}
}

// For returns the breaker guarding node, creating it on first use.
func (s *BreakerSet) For(node wire.NodeID) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[node]
	if !ok {
		b = NewBreaker(s.cfg)
		if s.reg != nil {
			b.gauge = s.reg.Gauge(fmt.Sprintf("%sbreaker.node%d.state", s.scope, node))
		}
		s.m[node] = b
	}
	return b
}

// Each visits every breaker created so far.
func (s *BreakerSet) Each(fn func(node wire.NodeID, state BreakerState)) {
	s.mu.Lock()
	type entry struct {
		node wire.NodeID
		b    *Breaker
	}
	entries := make([]entry, 0, len(s.m))
	for n, b := range s.m {
		entries = append(entries, entry{n, b})
	}
	s.mu.Unlock()
	for _, e := range entries {
		fn(e.node, e.b.State())
	}
}
