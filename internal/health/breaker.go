package health

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

// The classic three-state breaker.
const (
	BreakerClosed   BreakerState = iota // traffic flows
	BreakerOpen                         // traffic rejected until cooldown ends
	BreakerHalfOpen                     // one probe call in flight
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig parameterizes a Breaker. Zero fields take defaults.
type BreakerConfig struct {
	// Threshold is how many consecutive transport-level failures open the
	// breaker (default 3).
	Threshold int
	// Cooldown is how long an open breaker rejects before letting one
	// probe through (default 1 s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	return c
}

// Breaker is a per-destination circuit breaker. Closed: calls flow, and
// consecutive failures are counted. Open: calls are rejected outright
// (failing fast instead of burning a retransmit budget against a dead
// node) until the cooldown expires. Then exactly one caller is let through
// as a probe (half-open); its outcome snaps the breaker closed or open
// again. Safe for concurrent use.
type Breaker struct {
	cfg   BreakerConfig
	now   func() time.Time // injectable for tests
	gauge *obs.Gauge       // may be nil

	mu          sync.Mutex
	state       BreakerState
	consecutive int
	until       time.Time // while open: when the next probe is allowed
}

// NewBreaker builds a breaker with the given config.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// Allow reports whether a call may proceed now. When it returns true from
// the open state, the caller is the half-open probe: it must report the
// outcome via Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Before(b.until) {
			return false
		}
		b.set(BreakerHalfOpen)
		return true
	default: // BreakerHalfOpen: a probe is already out
		return false
	}
}

// Success records a completed call (any answer, including an application
// error, counts: the destination is reachable).
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	if b.state != BreakerClosed {
		b.set(BreakerClosed)
	}
}

// Failure records a transport-level failure (no answer at all).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.set(BreakerOpen)
		b.until = b.now().Add(b.cfg.Cooldown)
	case BreakerClosed:
		b.consecutive++
		if b.consecutive >= b.cfg.Threshold {
			b.set(BreakerOpen)
			b.until = b.now().Add(b.cfg.Cooldown)
		}
	case BreakerOpen:
		// Stragglers from calls admitted before the trip; keep cooling.
	}
}

// State reports the breaker's position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// set transitions state and mirrors it to the gauge; b.mu must be held.
func (b *Breaker) set(s BreakerState) {
	b.state = s
	if s == BreakerClosed {
		b.consecutive = 0
	}
	if b.gauge != nil {
		b.gauge.Set(int64(s))
	}
}

// BreakerSet is a lazily populated map of breakers keyed by destination
// address, so every layer consulting "the breaker for that node/context"
// shares one instance and one failure history.
type BreakerSet struct {
	cfg   BreakerConfig
	reg   *obs.Registry // may be nil
	scope string

	mu sync.Mutex
	m  map[wire.Addr]*Breaker
}

// NewBreakerSet builds a set; reg (optional) receives one state gauge per
// destination, named scope + "breaker.<addr>.state".
func NewBreakerSet(cfg BreakerConfig, reg *obs.Registry, scope string) *BreakerSet {
	return &BreakerSet{
		cfg:   cfg.withDefaults(),
		reg:   reg,
		scope: scope,
		m:     make(map[wire.Addr]*Breaker),
	}
}

// For returns the breaker guarding addr, creating it on first use.
func (s *BreakerSet) For(addr wire.Addr) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[addr]
	if !ok {
		b = NewBreaker(s.cfg)
		if s.reg != nil {
			b.gauge = s.reg.Gauge(fmt.Sprintf("%sbreaker.%s.state", s.scope, addr))
		}
		s.m[addr] = b
	}
	return b
}

// Each visits every breaker created so far.
func (s *BreakerSet) Each(fn func(addr wire.Addr, state BreakerState)) {
	s.mu.Lock()
	type entry struct {
		addr wire.Addr
		b    *Breaker
	}
	entries := make([]entry, 0, len(s.m))
	for a, b := range s.m {
		entries = append(entries, entry{a, b})
	}
	s.mu.Unlock()
	for _, e := range entries {
		fn(e.addr, e.b.State())
	}
}
