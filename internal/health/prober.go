// SWIM-style indirect probes: when a node stops answering direct pings,
// the monitor asks K peers to ping it on our behalf. A relayed answer
// proves the node is alive and that only the path between us is broken —
// the difference between "dead" (promote a successor, re-route forever)
// and "asymmetrically partitioned" (degraded; route around it, expect it
// back). Every monitor serves relay requests through a prober object at
// a well-known id, so peers need no directory lookup to find it; the
// monitor assumes peers run their monitor in the same context id as its
// own (true for proxyd and the test harnesses, which put one runtime in
// the first context of each node).
package health

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/kernel"
	"repro/internal/wire"
)

// ProberObject is the well-known object id every monitor's indirect-probe
// relay listens on (within the monitor's own context).
const ProberObject wire.ObjectID = 0x48454C50 // "HELP"

// kindProbeReq asks a peer's prober to ping a third node: payload is the
// target node id (uvarint); the reply is one alive byte plus the relay's
// observed RTT (uvarint nanoseconds).
const kindProbeReq = wire.KindCustom + 60

// prober serves indirect-probe requests out of the monitor's context. It
// is a raw kernel handler (not an rpc server): probes are idempotent and
// loss-tolerant, so at-most-once machinery would buy nothing.
type prober struct{ m *Monitor }

// HandleFrame implements kernel.Handler: ping the requested target with
// the monitor's probe timeout and report whether it answered. Handlers
// run on their own dispatch goroutine, so blocking on the ping is fine.
func (p *prober) HandleFrame(ktx *kernel.Context, f *wire.Frame) {
	if f.Kind != kindProbeReq || f.Flags&wire.FlagResponse != 0 ||
		f.Flags&wire.FlagOneWay != 0 || f.Src.IsZero() {
		return
	}
	t, _, err := wire.Uvarint(f.Payload)
	if err != nil {
		return
	}
	target := wire.NodeID(t)
	alive, rtt := false, time.Duration(0)
	if target == ktx.Addr().Node {
		alive = true
	} else {
		ctx, cancel := context.WithTimeout(context.Background(), p.m.timeout)
		start := time.Now()
		_, cerr := ktx.Call(ctx, wire.Addr{Node: target}, wire.KernelObject, wire.KindPing, 0, nil)
		cancel()
		var re *kernel.RemoteError
		if cerr == nil || errors.As(cerr, &re) {
			alive, rtt = true, time.Since(start)
		}
	}
	resp := wire.GetFrame()
	resp.Kind = kindProbeReq
	resp.Flags = wire.FlagResponse
	resp.ReqID = f.ReqID
	resp.Dst = f.Src
	resp.Object = f.Object
	b := byte(0)
	if alive {
		b = 1
	}
	resp.Payload = wire.AppendUvarint(append(resp.Payload[:0], b), uint64(rtt))
	_ = ktx.Send(resp)
	resp.Release()
}

// relaysFor picks up to indirectK nodes to relay a probe to the target:
// watched peers the monitor currently believes it can reach (alive or
// merely slow — not suspect, dead, or asymmetric). m.mu must be held.
func (m *Monitor) relaysFor(target wire.NodeID) []wire.NodeID {
	var relays []wire.NodeID
	for id, h := range m.nodes {
		if id == target || id == m.ktx.Addr().Node {
			continue
		}
		if h.state == StateAlive || (h.state == StateDegraded && h.direction == DirectionNone) {
			relays = append(relays, id)
			if len(relays) == m.indirectK {
				break
			}
		}
	}
	return relays
}

// indirectRound asks each relay to ping the target, concurrently, and
// feeds any confirmation back into the grading model. The round owns the
// node's indirectBusy flag and a slot in m.wg.
func (m *Monitor) indirectRound(target wire.NodeID, relays []wire.NodeID) {
	defer m.wg.Done()
	peerCtx := m.ktx.Addr().Context
	payload := wire.AppendUvarint(nil, uint64(target))
	var inner sync.WaitGroup
	var mu sync.Mutex
	alive := false
	var relayRTT time.Duration
	for _, relay := range relays {
		inner.Add(1)
		go func(relay wire.NodeID) {
			defer inner.Done()
			m.indirects.Inc()
			// Two hops (us→relay, relay→target) plus slack.
			ctx, cancel := context.WithTimeout(context.Background(), 2*m.timeout+50*time.Millisecond)
			defer cancel()
			resp, err := m.ktx.Call(ctx, wire.Addr{Node: relay, Context: peerCtx},
				ProberObject, kindProbeReq, 0, payload)
			if err != nil || len(resp.Payload) < 1 || resp.Payload[0] == 0 {
				return
			}
			rtt, _, _ := wire.Uvarint(resp.Payload[1:])
			mu.Lock()
			alive = true
			if d := time.Duration(rtt); relayRTT == 0 || d < relayRTT {
				relayRTT = d
			}
			mu.Unlock()
		}(relay)
	}
	inner.Wait()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	h, ok := m.nodes[target]
	if !ok {
		m.mu.Unlock()
		return
	}
	h.indirectBusy = false
	if !alive {
		m.mu.Unlock()
		return
	}
	m.indirectHits.Inc()
	h.lastIndirect = time.Now()
	// Re-grade with the new evidence; finishObservation unlocks m.mu.
	// The launch hook cannot re-fire here: lastIndirect is fresh.
	if launch := m.finishObservation(target, h, h.lastIndirect); launch != nil {
		launch()
	}
}
