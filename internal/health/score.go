// Gray-failure scoring: the model that turns raw probe/call evidence
// into a per-destination health score and the StateDegraded verdict.
//
// Each node carries two EWMA estimates — round-trip time (fed by timed
// probes and ReportLatency) and loss rate (every observation is a
// success-or-failure sample). The score in [0,1] is the worse of:
//
//   - the loss EWMA itself, and
//   - an RTT outlier penalty: how far the node's EWMA RTT sits above the
//     peer population's median, scaled so the penalty reaches 1.0 at
//     outlierFactor× the median. Grading against the population rather
//     than an absolute threshold makes the model deployment-agnostic —
//     "slow" means slow *relative to its peers*, whether links run in
//     microseconds (netsim) or milliseconds (TCP).
//
// A node whose score stays at or above degradeScore for degradeAfter
// consecutive observations is marked StateDegraded (DirectionNone: it
// answers, it is just bad). A node that stops answering direct probes
// escalates toward suspect/dead as before — unless indirect probes
// through peers (prober.go) prove it alive, in which case it is held at
// StateDegraded with a direction verdict instead of being declared dead.
package health

import (
	"sort"
	"time"
)

// WithOutlierFactor sets how many multiples of the population's median
// RTT mark a node as a full outlier (default 3): the RTT penalty rises
// linearly from 0 at the median to 1 at factor× the median. Values ≤ 1
// disable RTT-based scoring.
func WithOutlierFactor(f float64) MonitorOption {
	return func(m *Monitor) { m.outlierFactor = f }
}

// WithDegradeScore sets the score at or above which a node is graded
// degraded (default 0.5). The exit threshold is half of it: hysteresis
// keeps a borderline node from flapping alive↔degraded.
func WithDegradeScore(s float64) MonitorOption {
	return func(m *Monitor) {
		if s > 0 {
			m.degradeScore = s
		}
	}
}

// WithDegradeAfter sets how many consecutive over-threshold observations
// mark a node degraded (default 3) — one slow answer is noise, a streak
// is a verdict.
func WithDegradeAfter(n int) MonitorOption {
	return func(m *Monitor) {
		if n > 0 {
			m.degradeAfter = n
		}
	}
}

// WithIndirectProbes sets how many peers are asked to ping a node whose
// direct probes fail (default 2). Zero disables indirect probing — and
// with it the prober object and the kernel inbound hook.
func WithIndirectProbes(k int) MonitorOption {
	return func(m *Monitor) {
		if k >= 0 {
			m.indirectK = k
			m.indirectKSet = true
		}
	}
}

// WithEWMAAlpha sets the smoothing factor for both the RTT and loss
// estimates (default 0.2): higher reacts faster, lower smooths harder.
func WithEWMAAlpha(a float64) MonitorOption {
	return func(m *Monitor) {
		if a > 0 && a <= 1 {
			m.rttAlpha = a
			m.lossAlpha = a
		}
	}
}

// grade recomputes the node's score and state from current evidence;
// m.mu must be held. now is the observation time.
func (m *Monitor) grade(h *nodeHealth, now time.Time) {
	// Score: worst of loss evidence and the RTT outlier penalty.
	penalty := 0.0
	if h.rtt > 0 && m.outlierFactor > 1 {
		if med := m.medianRTT(); med > 0 {
			if ratio := h.rtt / med; ratio > 1 {
				penalty = (ratio - 1) / (m.outlierFactor - 1)
				if penalty > 1 {
					penalty = 1
				}
			}
		}
	}
	score := h.loss
	if penalty > score {
		score = penalty
	}
	h.score = score

	// Streak with hysteresis: entering degraded takes degradeAfter
	// consecutive bad observations, leaving takes a score below half the
	// threshold.
	switch {
	case score >= m.degradeScore:
		h.streak++
	case score < m.degradeScore/2:
		h.streak = 0
	}

	switch {
	case h.missed >= m.deadAfter:
		h.state, h.direction = StateDead, DirectionNone
	case h.missed >= m.suspectAfter:
		h.state, h.direction = StateSuspect, DirectionNone
	case h.streak >= m.degradeAfter:
		h.state, h.direction = StateDegraded, DirectionNone
	default:
		h.state, h.direction = StateAlive, DirectionNone
	}

	// Indirect rescue: direct probes fail but a peer recently completed
	// a round trip to the node — it is not dead, the path between us is
	// broken. Hold it at degraded and say which half of the path the
	// evidence blames: if we still hear its frames, our outbound leg is
	// the broken one; if we hear nothing, the return leg (or both) is.
	if h.state >= StateSuspect && now.Sub(h.lastIndirect) <= m.indirectTTL {
		h.state = StateDegraded
		if now.Sub(h.lastInbound) <= m.inboundWindow {
			h.direction = DirectionOutbound
		} else {
			h.direction = DirectionInbound
		}
	}
}

// medianRTT returns the median EWMA RTT over every node with at least
// one timed sample, or 0 with fewer than two; m.mu must be held. The
// population is what "slow" is judged against.
func (m *Monitor) medianRTT() float64 {
	rtts := make([]float64, 0, len(m.nodes))
	for _, h := range m.nodes {
		if h.rtt > 0 {
			rtts = append(rtts, h.rtt)
		}
	}
	if len(rtts) < 2 {
		return 0
	}
	sort.Float64s(rtts)
	if n := len(rtts); n%2 == 1 {
		return rtts[n/2]
	} else {
		return (rtts[n/2-1] + rtts[n/2]) / 2
	}
}
