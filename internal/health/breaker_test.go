package health

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// fakeClock gives tests control over the breaker's notion of now.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(cfg BreakerConfig) (*Breaker, *fakeClock) {
	b := NewBreaker(cfg)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

func TestBreakerStateString(t *testing.T) {
	for want, s := range map[string]BreakerState{
		"closed": BreakerClosed, "open": BreakerOpen, "half-open": BreakerHalfOpen, "unknown": BreakerState(9),
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestBreakerTripAndRecover(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second})

	// Closed: calls flow; failures below threshold don't trip.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker rejected")
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %v", b.State())
	}

	// Third consecutive failure trips it.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold failures = %v", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call before cooldown")
	}

	// Cooldown elapses: exactly one probe gets through.
	clk.advance(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("no probe allowed after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe allowed in half-open")
	}

	// Probe succeeds: closed again.
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected after recovery")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second})
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v", b.State())
	}
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("failed probe left state %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("reopened breaker admitted a call immediately")
	}
	// A success reset the consecutive count even while open (another path
	// reached the node): snaps closed.
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after out-of-band success = %v", b.State())
	}
}

func TestBreakerProbeTimeoutReadmits(t *testing.T) {
	// A probe whose caller never reports an outcome (e.g. it died, or its
	// result was inconclusive and went unreported) must not wedge the
	// breaker half-open: after another cooldown the probe role is handed
	// to the next caller.
	b, clk := newTestBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second})
	b.Failure()
	clk.advance(2 * time.Second)
	ok, probe := b.Admit()
	if !ok || !probe {
		t.Fatalf("Admit after cooldown = %v, %v, want probe admitted", ok, probe)
	}
	// The probe vanishes without reporting. Until its deadline, no one
	// else gets in; after it, the next caller becomes the probe.
	if b.Allow() {
		t.Fatal("second caller admitted while probe outstanding")
	}
	clk.advance(time.Second + time.Millisecond)
	ok, probe = b.Admit()
	if !ok || !probe {
		t.Fatalf("Admit after probe deadline = %v, %v, want replacement probe", ok, probe)
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after replacement probe succeeded = %v", b.State())
	}
}

func TestBreakerSuccessResetsConsecutive(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Second})
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("interleaved failures tripped the breaker: %v", b.State())
	}
}

func TestBreakerDefaults(t *testing.T) {
	cfg := BreakerConfig{}.withDefaults()
	if cfg.Threshold != 3 || cfg.Cooldown != time.Second {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestBreakerSetSharesAndObserves(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Minute}, reg, "test.")
	n1, n2 := wire.NodeID(1), wire.NodeID(2)
	if s.For(n1) != s.For(n1) {
		t.Error("same node returned different breakers")
	}
	if s.For(n1) == s.For(n2) {
		t.Error("different nodes shared a breaker")
	}
	s.For(n1).Failure()

	states := make(map[wire.NodeID]BreakerState)
	s.Each(func(node wire.NodeID, st BreakerState) { states[node] = st })
	if states[n1] != BreakerOpen || states[n2] != BreakerClosed {
		t.Errorf("states = %v", states)
	}

	var gauges int
	reg.Each(func(kind, name, _ string) {
		if kind == "gauge" {
			gauges++
		}
	})
	if gauges != 2 {
		t.Errorf("registered %d breaker gauges, want 2", gauges)
	}
}
