package gen

import (
	"strings"
	"testing"
)

func generate(t *testing.T, src string) (string, error) {
	t.Helper()
	out, err := Generate("test.go", []byte(src))
	return string(out), err
}

const header = "package x\n\nimport \"context\"\n\n"

func TestGenerateBasic(t *testing.T) {
	out, err := generate(t, header+`
//proxygen:service
type Greeter interface {
	Greet(ctx context.Context, name string) (string, error)
}
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"type GreeterClient struct{ P core.Proxy }",
		"func (c GreeterClient) Greet(ctx context.Context, name string) (string, error)",
		"func NewGreeterDispatcher(impl Greeter) core.Service",
		`case "Greet":`,
		"core.NoSuchMethod(method)",
		"DO NOT EDIT",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestGenerateGroupedParamsAndMultiReturn(t *testing.T) {
	out, err := generate(t, header+`
//proxygen:service
type M interface {
	F(ctx context.Context, a, b int64) (int64, string, error)
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "F(ctx context.Context, a int64, b int64) (int64, string, error)") {
		t.Errorf("grouped params not flattened:\n%s", out)
	}
}

func TestGenerateUnnamedParams(t *testing.T) {
	out, err := generate(t, header+`
//proxygen:service
type M interface {
	F(context.Context, int64) (int64, error)
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "arg0 int64") {
		t.Errorf("unnamed param not synthesized:\n%s", out)
	}
}

func TestGenerateImportPropagation(t *testing.T) {
	out, err := generate(t, `package x

import (
	"context"
	"time"
)

//proxygen:service
type M interface {
	At(ctx context.Context, when time.Time) (time.Time, error)
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "\"time\"") {
		t.Errorf("time import not propagated:\n%s", out)
	}
}

func TestGenerateSkipsUnmarkedInterfaces(t *testing.T) {
	_, err := generate(t, header+`
type NotAService interface {
	F(ctx context.Context) error
}
`)
	if err == nil || !strings.Contains(err.Error(), "no interfaces marked") {
		t.Errorf("err = %v", err)
	}
}

func TestGenerateValidation(t *testing.T) {
	tests := []struct {
		name, body, wantErr string
	}{
		{"missing context", `F(a int64) error`, "context.Context as its first parameter"},
		{"missing error", `F(ctx context.Context) int64`, "error as its last result"},
		{"no results", `F(ctx context.Context)`, "error as its last result"},
		{"error not last", `F(ctx context.Context) (error, int64)`, "error as its last result"},
		{"mid error", `F(ctx context.Context) (int64, error, error)`, "only return error in the final position"},
		{"too many results", `F(ctx context.Context) (int64, int64, int64, int64, int64, error)`, "at most 4"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := generate(t, header+"//proxygen:service\ntype M interface {\n\t"+tt.body+"\n}\n")
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("err = %v, want contains %q", err, tt.wantErr)
			}
		})
	}
}

func TestGenerateRejectsEmbedded(t *testing.T) {
	_, err := generate(t, header+`
type Base interface {
	F(ctx context.Context) error
}

//proxygen:service
type M interface {
	Base
}
`)
	if err == nil || !strings.Contains(err.Error(), "embeds other interfaces") {
		t.Errorf("err = %v", err)
	}
}

func TestGenerateRejectsEmptyInterface(t *testing.T) {
	_, err := generate(t, header+`
//proxygen:service
type M interface{}
`)
	if err == nil || !strings.Contains(err.Error(), "no methods") {
		t.Errorf("err = %v", err)
	}
}

func TestGenerateParseError(t *testing.T) {
	if _, err := generate(t, "not go"); err == nil {
		t.Error("parse garbage succeeded")
	}
}

func TestQualifiersIn(t *testing.T) {
	tests := map[string][]string{
		"time.Time":        {"time"},
		"[]time.Time":      {"time"},
		"map[string]pkg.T": {"pkg"},
		"int64":            nil,
		"map[foo.K]bar.V":  {"foo", "bar"},
		"*big.Int":         {"big"},
	}
	for typ, want := range tests {
		got := qualifiersIn(typ)
		if len(got) != len(want) {
			t.Errorf("qualifiersIn(%q) = %v, want %v", typ, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("qualifiersIn(%q) = %v, want %v", typ, got, want)
			}
		}
	}
}
