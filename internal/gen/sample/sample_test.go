package sample

import (
	"context"
	"errors"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/kernel"
	"repro/internal/netsim"
)

// calcImpl is a real implementation of Calculator.
type calcImpl struct {
	mu    sync.Mutex
	total int64
}

func (c *calcImpl) Add(ctx context.Context, a, b int64) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total += a + b
	return a + b, nil
}

func (c *calcImpl) Concat(ctx context.Context, parts []string, sep string) (string, error) {
	if len(parts) == 0 {
		return "", errors.New("nothing to concat")
	}
	return strings.Join(parts, sep), nil
}

func (c *calcImpl) Translate(ctx context.Context, p Point, dx, dy int64) (Point, int64, error) {
	out := Point{X: p.X + dx, Y: p.Y + dy}
	norm := out.X + out.Y
	if norm < 0 {
		norm = -norm
	}
	return out, norm, nil
}

func (c *calcImpl) Reset(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total = 0
	return nil
}

func (c *calcImpl) Total(ctx context.Context) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total, nil
}

// client builds a generated client talking to a generated dispatcher over
// the simulated network.
func client(t *testing.T) CalculatorClient {
	t.Helper()
	net := netsim.New()
	t.Cleanup(net.Close)
	mk := func(id uint32) *core.Runtime {
		ep, err := net.Attach(wireNode(id))
		if err != nil {
			t.Fatal(err)
		}
		node := kernel.NewNode(ep)
		t.Cleanup(func() { node.Close() })
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		return core.NewRuntime(ktx)
	}
	server, cli := mk(1), mk(2)
	ref, err := server.Export(NewCalculatorDispatcher(&calcImpl{}), "Calculator")
	if err != nil {
		t.Fatal(err)
	}
	p, err := cli.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	return CalculatorClient{P: p}
}

func TestGeneratedRoundTrip(t *testing.T) {
	c := client(t)
	ctx := context.Background()

	sum, err := c.Add(ctx, 2, 40)
	if err != nil || sum != 42 {
		t.Fatalf("Add = %d, %v", sum, err)
	}
	s, err := c.Concat(ctx, []string{"a", "b", "c"}, "-")
	if err != nil || s != "a-b-c" {
		t.Fatalf("Concat = %q, %v", s, err)
	}
	pt, norm, err := c.Translate(ctx, Point{X: 1, Y: 2}, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if pt != (Point{X: 11, Y: 22}) || norm != 33 {
		t.Errorf("Translate = %+v, %d", pt, norm)
	}
	total, err := c.Total(ctx)
	if err != nil || total != 42 {
		t.Fatalf("Total = %d, %v", total, err)
	}
	if err := c.Reset(ctx); err != nil {
		t.Fatal(err)
	}
	total, err = c.Total(ctx)
	if err != nil || total != 0 {
		t.Fatalf("Total after Reset = %d, %v", total, err)
	}
}

func TestGeneratedErrorsPropagate(t *testing.T) {
	c := client(t)
	_, err := c.Concat(context.Background(), nil, "-")
	var ie *core.InvokeError
	if !errors.As(err, &ie) || ie.Code != core.CodeApp {
		t.Errorf("Concat error = %v", err)
	}
	// Unknown methods through the raw proxy hit the dispatcher's default.
	_, err = c.P.Invoke(context.Background(), "Quux")
	if !errors.As(err, &ie) || ie.Code != core.CodeNoSuchMethod {
		t.Errorf("Quux error = %v", err)
	}
	// Wrong arity is a BadArgs at the dispatcher.
	_, err = c.P.Invoke(context.Background(), "Add", int64(1))
	if !errors.As(err, &ie) || ie.Code != core.CodeBadArgs {
		t.Errorf("short Add error = %v", err)
	}
}

func TestGeneratedCodeIsCurrent(t *testing.T) {
	src, err := os.ReadFile("calc.go")
	if err != nil {
		t.Fatal(err)
	}
	want, err := gen.GenerateStatic("calc.go", src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("calc_gen.go")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("calc_gen.go is stale; rerun: go run ./cmd/proxygen -static -in internal/gen/sample/calc.go")
	}
}
