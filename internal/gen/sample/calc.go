// Package sample is the proxygen stub compiler's reference input: the
// Calculator interface below is annotated for generation, and calc_gen.go
// is the committed output (TestGeneratedCodeIsCurrent regenerates it and
// fails on drift).
package sample

import "context"

// Point exercises struct parameters and results through the generated
// stubs.
type Point struct {
	X int64
	Y int64
}

// Calculator is the sample service definition.
//
//proxygen:service
type Calculator interface {
	// Add sums two integers.
	Add(ctx context.Context, a, b int64) (int64, error)
	// Concat joins strings with a separator.
	Concat(ctx context.Context, parts []string, sep string) (string, error)
	// Translate shifts a point and also reports its manhattan norm.
	Translate(ctx context.Context, p Point, dx, dy int64) (Point, int64, error)
	// Reset clears the accumulator.
	Reset(ctx context.Context) error
	// Total reports the accumulator.
	Total(ctx context.Context) (int64, error)
}
