package sample

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/wire"
)

// wireNode converts a test-local uint32 into the wire node id type.
func wireNode(id uint32) wire.NodeID { return wire.NodeID(id) }

// TestStaticWireParity verifies the claim on which -static rests: an
// argument vector whose native values enter the payload as themselves
// (what a static client passes to Invoke) encodes to the same bytes as
// the reflect-lowered vector a dynamic client builds. If the codec's
// treatment of any native type diverged between the two paths, static and
// dynamic stubs would stop interoperating.
func TestStaticWireParity(t *testing.T) {
	when := time.Unix(1234567890, 42)
	ref := codec.Ref{
		Target: wire.ObjAddr{Addr: wire.Addr{Node: wireNode(3), Context: 7}, Object: 9},
		Type:   "sample.Calculator",
		Hint:   []byte{1, 2},
		Cap:    99,
	}
	cases := [][]any{
		{int64(-5), int64(12)},
		{true, false, "hello", ""},
		{uint64(1 << 60), float64(3.5)},
		{[]byte("raw"), []byte(nil), when, ref},
	}
	for i, args := range cases {
		lowered := make([]any, len(args))
		for j, a := range args {
			v, err := codec.Lower(a)
			if err != nil {
				t.Fatalf("case %d arg %d: %v", i, j, err)
			}
			lowered[j] = v
		}
		static, err := core.EncodeRequest(99, "M", args)
		if err != nil {
			t.Fatalf("case %d static: %v", i, err)
		}
		dynamic, err := core.EncodeRequest(99, "M", lowered)
		if err != nil {
			t.Fatalf("case %d dynamic: %v", i, err)
		}
		if !bytes.Equal(static, dynamic) {
			t.Errorf("case %d: static and dynamic payloads differ\nstatic:  %x\ndynamic: %x", i, static, dynamic)
		}
	}
}
