package sample

import "repro/internal/wire"

// wireNode converts a test-local uint32 into the wire node id type.
func wireNode(id uint32) wire.NodeID { return wire.NodeID(id) }
