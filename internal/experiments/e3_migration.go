package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/bench"
	"repro/internal/migrate"
)

// E3MigrationCrossover compares a stub proxy against a migratory proxy for
// access runs of increasing length: one client performing R consecutive
// operations on one object. Expected shape: for short runs the stub wins —
// migration is pure overhead (and below the pull threshold never happens);
// past the threshold the migratory proxy amortizes one state transfer and
// every further operation is a local call, so its curve flattens while the
// stub's grows linearly with R. The crossover sits shortly after the
// threshold.
func E3MigrationCrossover(w io.Writer, cfg Config) error {
	header(w, "E3", "migratory-proxy crossover")
	const threshold = 4
	runs := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	tab := bench.Table{Headers: []string{"run length", "stub total", "migratory total", "migrated", "winner"}}

	for _, r := range runs {
		stub, err := e3RunStub(cfg, r)
		if err != nil {
			return fmt.Errorf("stub R=%d: %w", r, err)
		}
		mig, migrated, err := e3RunMigratory(cfg, r, threshold)
		if err != nil {
			return fmt.Errorf("migratory R=%d: %w", r, err)
		}
		winner := "stub"
		if mig < stub {
			winner = "migratory"
		}
		tab.Add(r, stub.Round(time.Microsecond), mig.Round(time.Microsecond), migrated, winner)
	}
	tab.Print(w)
	fmt.Fprintf(w, "(pull threshold %d; object state ~16 keys)\n", threshold)
	return nil
}

func e3RunStub(cfg Config, runLen int) (time.Duration, error) {
	c, err := bench.NewCluster(2, cfg.netOpts()...)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	ref, err := c.RT(0).Export(e3Seed(), "KV")
	if err != nil {
		return 0, err
	}
	p, err := c.RT(1).Import(ref)
	if err != nil {
		return 0, err
	}
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < runLen; i++ {
		if _, err := p.Invoke(ctx, "incr", "hot"); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

func e3RunMigratory(cfg Config, runLen, threshold int) (time.Duration, bool, error) {
	c, err := bench.NewCluster(2, cfg.netOpts()...)
	if err != nil {
		return 0, false, err
	}
	defer c.Close()
	factory := migrate.NewFactory("KV", migrate.WithThreshold(threshold))
	for i, rt := range c.Runtimes {
		rt.RegisterProxyType("KV", factory)
		host := migrate.NewHost(rt)
		host.RegisterType("KV", func() migrate.Migratable { return bench.NewKV() })
		factory.AttachHost(rt, host)
		_ = i
	}
	ref, err := c.RT(0).Export(e3Seed(), "KV")
	if err != nil {
		return 0, false, err
	}
	p, err := c.RT(1).Import(ref)
	if err != nil {
		return 0, false, err
	}
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < runLen; i++ {
		if _, err := p.Invoke(ctx, "incr", "hot"); err != nil {
			return 0, false, err
		}
	}
	elapsed := time.Since(start)
	migrated := false
	if mp, ok := p.(*migrate.Proxy); ok {
		migrated = mp.IsLocal()
	}
	return elapsed, migrated, nil
}

// e3Seed builds the object with a little state so migration actually
// transfers something.
func e3Seed() *bench.KV {
	kv := bench.NewKV()
	for i := 0; i < 16; i++ {
		_, _ = kv.Invoke(context.Background(), "put", []any{fmt.Sprintf("k%d", i), int64(i)})
	}
	return kv
}
