package experiments

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// E7AtMostOnce sweeps message loss and checks the reliability machinery:
// calls keep succeeding (retransmission), each executes exactly once
// (duplicate suppression), and the ablation row with the reply cache
// disabled shows duplicate executions — why the cache exists. Expected
// shape: latency and retransmissions climb with loss; the "executed"
// column equals the op count in every cached row and exceeds it in the
// uncached ablation.
func E7AtMostOnce(w io.Writer, cfg Config) error {
	header(w, "E7", "at-most-once under loss")
	losses := []float64{0, 0.05, 0.10, 0.20}
	tab := bench.Table{Headers: []string{"loss%", "reply cache", "mean/op", "retransmits", "executed", "want"}}

	ops := cfg.Ops / 4 // lossy runs are slow; keep the suite snappy
	if ops < 50 {
		ops = 50
	}
	for _, loss := range losses {
		for _, cached := range []bool{true, false} {
			mean, retr, executed, err := e7Run(cfg, loss, cached, ops)
			if err != nil {
				return fmt.Errorf("loss=%v cached=%v: %w", loss, cached, err)
			}
			label := "on"
			if !cached {
				label = "off (ablation)"
			}
			tab.Add(fmt.Sprintf("%.0f", loss*100), label, mean, retr, executed, ops)
		}
	}
	tab.Print(w)
	fmt.Fprintln(w, "(executed > want in ablation rows = duplicate executions let through)")
	return nil
}

func e7Run(cfg Config, loss float64, replyCache bool, ops int) (time.Duration, uint64, int64, error) {
	net := netsim.New(
		netsim.WithDefaultLink(netsim.LinkConfig{Latency: cfg.Latency, LossRate: loss}),
		netsim.WithSeed(cfg.Seed),
	)
	defer net.Close()

	serverRT, clientRT, cleanup, err := e7Runtimes(net)
	if err != nil {
		return 0, 0, 0, err
	}
	defer cleanup()

	var executed atomic.Int64
	svc := core.ServiceFunc(func(ctx context.Context, method string, args []any) ([]any, error) {
		executed.Add(1)
		return nil, nil
	})

	exported, err := serverRT.Export(svc, "E7")
	if err != nil {
		return 0, 0, 0, err
	}
	// Server-side at-most-once is built into the export path; the ablation
	// reaches beneath it with a raw rpc server when replyCache is off.
	target := exported.Target
	if !replyCache {
		raw := rpc.NewServer(rpc.HandlerFunc(func(req *rpc.Request) (wire.Kind, []byte, []byte) {
			executed.Add(1)
			return wire.KindReply, nil, nil
		}), rpc.WithReplyCache(0))
		id := serverRT.Kernel().Register(raw)
		target = wire.ObjAddr{Addr: serverRT.Addr(), Object: id}
	}

	client := rpc.NewClient(clientRT.Kernel(),
		rpc.WithRetryInterval(5*time.Millisecond), rpc.WithMaxAttempts(200))
	ctx := context.Background()
	var timer bench.Timer
	for i := 0; i < ops; i++ {
		start := time.Now()
		var err error
		if replyCache {
			_, err = client.Call(ctx, target, wire.KindRequest, e7Request())
		} else {
			_, err = client.Call(ctx, target, wire.KindRequest, nil)
		}
		timer.Record(time.Since(start))
		if err != nil {
			return 0, 0, 0, fmt.Errorf("op %d: %w", i, err)
		}
	}
	return timer.Summary().Mean, client.Stats().Retransmits, executed.Load(), nil
}

// e7Request is the standard-path invocation payload for the no-op method.
func e7Request() []byte {
	buf, err := core.EncodeRequest(0, "x", nil)
	if err != nil {
		panic("unreachable: static request encode failed")
	}
	return buf
}

func e7Runtimes(net *netsim.Network) (server, client *core.Runtime, cleanup func(), err error) {
	mk := func(id wire.NodeID) (*core.Runtime, func(), error) {
		ep, err := net.Attach(id)
		if err != nil {
			return nil, nil, err
		}
		node := kernelNode(ep)
		ktx, err := node.NewContext()
		if err != nil {
			node.Close()
			return nil, nil, err
		}
		return core.NewRuntime(ktx), func() { node.Close() }, nil
	}
	server, c1, err := mk(1)
	if err != nil {
		return nil, nil, nil, err
	}
	client, c2, err := mk(2)
	if err != nil {
		c1()
		return nil, nil, nil, err
	}
	return server, client, func() { c1(); c2() }, nil
}
