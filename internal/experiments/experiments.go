// Package experiments implements the reproduction suite E1–E18 described
// in EXPERIMENTS.md: each experiment builds its world on the simulated
// network, runs the sweep, and renders the table or series the paper's
// claims predict. cmd/proxybench runs them all; the root bench_test.go
// exposes a testing.B benchmark per experiment.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/netsim"
)

// Config tunes the whole suite.
type Config struct {
	// Latency is the one-way link latency of the simulated LAN.
	Latency time.Duration
	// Ops is the per-measurement operation count.
	Ops int
	// Seed drives every random choice.
	Seed int64
}

// DefaultConfig is what cmd/proxybench uses.
func DefaultConfig() Config {
	return Config{
		Latency: 500 * time.Microsecond,
		Ops:     400,
		Seed:    1,
	}
}

func (c Config) netOpts() []netsim.NetworkOption {
	return []netsim.NetworkOption{
		netsim.WithDefaultLink(netsim.LinkConfig{Latency: c.Latency}),
		netsim.WithSeed(c.Seed),
	}
}

// Experiment is one runnable entry in the suite.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, cfg Config) error
}

// All returns the suite in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Invocation-cost ladder (local / bypass / cross-context / remote)", E1InvocationLadder},
		{"E2", "Caching proxy vs stub across read/write mix (crossover)", E2CacheCrossover},
		{"E3", "Migratory proxy vs stub across access-run length (crossover)", E3MigrationCrossover},
		{"E4", "Replicated proxy read scaling with client count", E4ReplicaScaling},
		{"E5", "Design-space: RPC vs smart proxies vs DSM on one workload", E5DesignSpace},
		{"E6", "Reference passing installs proxies (fan-out cost)", E6RefExport},
		{"E7", "At-most-once under message loss", E7AtMostOnce},
		{"E8", "Marshalling cost scales with payload", E8Marshalling},
		{"E9", "Forwarding chains after k migrations, with rebind compression", E9ForwardingChains},
		{"E10", "Invalidation cost vs sharer-set size (sync vs async)", E10InvalidationStorm},
		{"E11", "Batching-proxy amortization (extension)", E11BatchingAmortization},
		{"E12", "Pub/sub fan-out (extension)", E12PubSubFanout},
		{"E13", "Primary-crash recovery: failover gap and acked-write survival (extension)", E13Recovery},
		{"E14", "Sharded keyspace write scaling with shard count (extension)", E14Sharding},
		{"E15", "Overload shedding goodput and hedged-read tail latency (extension)", E15Overload},
		{"E16", "Gray failure: slow-peer scoring and outlier-ejection tail latency (extension)", E16GrayFailure},
		{"E17", "Frame-train coalescing: cross-context throughput under fan-in (extension)", E17FrameTrains},
		{"E18", "Exactly-once sessions: dedup-hit latency and failover duplicate audit (extension)", E18Sessions},
	}
}

// header prints a uniform experiment banner.
func header(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n=== %s: %s ===\n", id, title)
}
