package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/pubsub"
)

// E12PubSubFanout (extension): publishing through the observer layer is
// enqueue-and-return; delivery fans out through per-subscriber proxies in
// parallel. The sweep grows the subscriber count and reports (a) the
// publisher-visible latency, which should stay near-flat, and (b) the
// time until every subscriber has observed the event, which grows gently
// with fan-out (parallel one-hop notifies, not a serial chain).
func E12PubSubFanout(w io.Writer, cfg Config) error {
	header(w, "E12", "pub/sub fan-out (extension)")
	counts := []int{1, 2, 4, 8, 16, 32}
	tab := bench.Table{Headers: []string{"subscribers", "publish() latency", "all-delivered", "delivered"}}

	for _, n := range counts {
		pubLat, deliverLat, delivered, err := e12Run(cfg, n)
		if err != nil {
			return fmt.Errorf("n=%d: %w", n, err)
		}
		tab.Add(n, pubLat, deliverLat, delivered)
	}
	tab.Print(w)
	fmt.Fprintln(w, "(publish returns after enqueuing; delivery is parallel per subscriber)")
	return nil
}

func e12Run(cfg Config, subscribers int) (pubLat, deliverLat time.Duration, delivered uint64, err error) {
	c, err := bench.NewCluster(subscribers+2, cfg.netOpts()...)
	if err != nil {
		return 0, 0, 0, err
	}
	defer c.Close()

	topic := pubsub.NewTopic("bench")
	defer topic.Close()
	topicRef, err := c.RT(0).Export(topic, pubsub.TypeName)
	if err != nil {
		return 0, 0, 0, err
	}
	pubProxy, err := c.RT(1).Import(topicRef)
	if err != nil {
		return 0, 0, 0, err
	}
	client := pubsub.NewClient(pubProxy)
	ctx := context.Background()

	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		rt := c.RT(i + 2)
		cb := pubsub.NewCallback(func(string, any) { wg.Done() })
		cbRef, err := rt.Export(cb, pubsub.SubscriberType)
		if err != nil {
			return 0, 0, 0, err
		}
		cbProxy, err := rt.Import(cbRef)
		if err != nil {
			return 0, 0, 0, err
		}
		if _, err := client.Subscribe(ctx, cbProxy); err != nil {
			return 0, 0, 0, err
		}
	}

	const rounds = 20
	var pubTimer, deliverTimer bench.Timer
	for r := 0; r < rounds; r++ {
		wg.Add(subscribers)
		start := time.Now()
		if err := client.Publish(ctx, int64(r)); err != nil {
			return 0, 0, 0, err
		}
		pubTimer.Record(time.Since(start))
		wg.Wait()
		deliverTimer.Record(time.Since(start))
	}
	st := topic.Stats()
	return pubTimer.Summary().Mean, deliverTimer.Summary().Mean, st.Delivered, nil
}
