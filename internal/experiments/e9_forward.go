package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/bench"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/migrate"
)

// E9ForwardingChains migrates one object through k homes and then invokes
// it through a proxy still holding the *original* reference. Expected
// shape: the first invocation's latency grows linearly with k (it chases
// every tombstone), and because the stub rebinds as it goes, the second
// invocation is one hop regardless of k — chain compression. The
// no-compression ablation re-imports a fresh proxy for every call and
// pays the whole chain every time.
func E9ForwardingChains(w io.Writer, cfg Config) error {
	header(w, "E9", "forwarding chains and compression")
	hops := []int{0, 1, 2, 4, 8, 16, 32}
	tab := bench.Table{Headers: []string{"migrations", "1st call (chases chain)", "2nd call (rebound)", "no-compression call"}}

	for _, k := range hops {
		first, second, uncompressed, err := e9Run(cfg, k)
		if err != nil {
			return fmt.Errorf("k=%d: %w", k, err)
		}
		tab.Add(k, first, second, uncompressed)
	}
	tab.Print(w)
	fmt.Fprintln(w, "(stubs rebind on KindForward; re-imports pay the chain again)")
	return nil
}

func e9Run(cfg Config, k int) (first, second, uncompressed time.Duration, err error) {
	// k+2 nodes: the chain of homes plus a client.
	c, err := bench.NewCluster(k+2, cfg.netOpts()...)
	if err != nil {
		return 0, 0, 0, err
	}
	defer c.Close()

	hosts := make([]*migrate.Host, k+1)
	for i := 0; i <= k; i++ {
		hosts[i] = migrate.NewHost(c.RT(i))
		hosts[i].RegisterType("KV", func() migrate.Migratable { return bench.NewKV() })
	}

	svc := bench.NewKV()
	origRef, err := c.RT(0).Export(svc, "KV")
	if err != nil {
		return 0, 0, 0, err
	}
	ctx := context.Background()

	// Walk the object through k homes.
	var cur migrate.Migratable = svc
	curRT := c.RT(0)
	for hop := 1; hop <= k; hop++ {
		newRef, err := migrate.Move(ctx, curRT, cur, "KV", "KV", hosts[hop].Addr())
		if err != nil {
			return 0, 0, 0, fmt.Errorf("hop %d: %w", hop, err)
		}
		next, ok := c.RT(hop).LocalService(newRef)
		if !ok {
			return 0, 0, 0, fmt.Errorf("hop %d: instance not found", hop)
		}
		cur = next.(*bench.KV)
		curRT = c.RT(hop)
	}

	client := c.RT(k + 1)
	p, err := client.Import(origRef)
	if err != nil {
		return 0, 0, 0, err
	}
	start := time.Now()
	if _, err := p.Invoke(ctx, "noop"); err != nil {
		return 0, 0, 0, err
	}
	first = time.Since(start)
	start = time.Now()
	if _, err := p.Invoke(ctx, "noop"); err != nil {
		return 0, 0, 0, err
	}
	second = time.Since(start)

	// Ablation: a fresh stub per call never benefits from rebinding.
	fresh := core.NewStub(client, codec.Ref{Target: origRef.Target, Type: origRef.Type})
	start = time.Now()
	if _, err := fresh.Invoke(ctx, "noop"); err != nil {
		return 0, 0, 0, err
	}
	uncompressed = time.Since(start)
	return first, second, uncompressed, nil
}
