package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/session"
	"repro/internal/wire"
)

// E18Sessions measures the exactly-once layer from both ends.
//
// Part one is dedup-hit latency: a node with a session table answers a
// retransmitted (sid, seq) from the cached reply, skipping handler
// dispatch entirely. Against a handler with a deliberate 1ms apply cost,
// the fresh column pays RTT + handler while the dedup-hit column pays
// RTT alone — the gap IS the skipped dispatch, and the handler's apply
// count pins it (ops applies for 2*ops invocations).
//
// Part two is the failover duplicate audit: a replica group under
// session-stamped non-idempotent writes (each incr of its own key) loses
// its primary, the successor promotes, and every identity is then
// retransmitted. The promoted primary inherited the dedup state through
// the replicated log, so every retransmission must come back answered
// from cache — duplicates (a key at 2) and lost acked writes (a key at
// 0) must both read zero.
func E18Sessions(w io.Writer, cfg Config) error {
	header(w, "E18", "exactly-once sessions: dedup-hit latency and failover duplicate audit")

	fresh, hit, applies, ops, err := e18Latency(cfg)
	if err != nil {
		return fmt.Errorf("latency trial: %w", err)
	}
	lt := bench.Table{Headers: []string{"path", "p50", "p99", "handler applies"}}
	lt.Add("fresh apply", fresh.P50, fresh.P99, applies)
	lt.Add("dedup hit", hit.P50, hit.P99, 0)
	lt.Print(w)
	fmt.Fprintf(w, "(%d ops per path; the dedup hit skips the handler's 1ms apply — cached reply only)\n", ops)

	res, err := e18Failover(cfg)
	if err != nil {
		return fmt.Errorf("failover trial: %w", err)
	}
	ft := bench.Table{Headers: []string{"acked writes", "retransmissions", "cached replies", "duplicates", "lost"}}
	ft.Add(res.acked, res.retrans, res.cached, res.duplicates, res.lost)
	ft.Print(w)
	fmt.Fprintln(w, "(every identity retransmitted onto the promoted successor; duplicates and lost must be 0)")
	return nil
}

// e18SlowKV gives write methods a fixed apply cost so the latency table
// separates "executed the handler" from "answered from cache".
type e18SlowKV struct {
	kv    *bench.KV
	delay time.Duration
}

func (s *e18SlowKV) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	if method == "incr" || method == "put" {
		time.Sleep(s.delay)
	}
	return s.kv.Invoke(ctx, method, args)
}

// e18Latency times cfg.Ops fresh session-stamped incrs and then the same
// identities retransmitted against a kernel-level dedup table.
func e18Latency(cfg Config) (fresh, hit bench.Summary, applies, ops int, err error) {
	ops = cfg.Ops
	if ops > 250 {
		// Each fresh op pays the handler's 1ms apply; cap so the trial
		// stays bounded at any -ops setting.
		ops = 250
	}
	net := netsim.New(cfg.netOpts()...)
	defer net.Close()

	sep, err := net.Attach(1)
	if err != nil {
		return fresh, hit, 0, 0, err
	}
	// The reply window must cover the whole trial: every identity from
	// the fresh pass is retransmitted in the hit pass, so a default-sized
	// window (64) would expire the early ones.
	snode := kernel.NewNode(sep, kernel.WithSessions(session.NewTable(session.Config{RepliesPerSession: 2 * ops})))
	defer snode.Close()
	sktx, err := snode.NewContext()
	if err != nil {
		return fresh, hit, 0, 0, err
	}
	srv := core.NewRuntime(sktx)

	cep, err := net.Attach(2)
	if err != nil {
		return fresh, hit, 0, 0, err
	}
	cnode := kernelNode(cep)
	defer cnode.Close()
	cktx, err := cnode.NewContext()
	if err != nil {
		return fresh, hit, 0, 0, err
	}
	cli := core.NewRuntime(cktx)

	svc := &e18SlowKV{kv: bench.NewKV(), delay: time.Millisecond}
	ref, err := srv.Export(svc, "SlowKV")
	if err != nil {
		return fresh, hit, 0, 0, err
	}
	p, err := cli.Import(ref)
	if err != nil {
		return fresh, hit, 0, 0, err
	}

	ctx := context.Background()
	const sid = uint64(0xE18)
	run := func(t *bench.Timer) error {
		for i := 1; i <= ops; i++ {
			sctx := core.ContextWithSession(ctx, sid, uint64(i))
			start := time.Now()
			res, ierr := p.Invoke(sctx, "incr", fmt.Sprintf("k%d", i))
			if ierr != nil {
				return ierr
			}
			t.Record(time.Since(start))
			if res[0] != int64(1) {
				return fmt.Errorf("k%d = %v, want 1 (duplicate apply)", i, res[0])
			}
		}
		return nil
	}
	var ft, ht bench.Timer
	if err := run(&ft); err != nil {
		return fresh, hit, 0, 0, err
	}
	// Same identities again: every one is a dedup hit.
	if err := run(&ht); err != nil {
		return fresh, hit, 0, 0, err
	}
	return ft.Summary(), ht.Summary(), ops, ops, nil
}

// e18Result is the failover audit ledger.
type e18Result struct {
	acked, retrans, cached, duplicates, lost int
}

// e18Failover crashes a session-stamped replica group's primary and
// retransmits every identity onto the promoted successor.
func e18Failover(cfg Config) (e18Result, error) {
	var res e18Result
	net := netsim.New(cfg.netOpts()...)
	defer net.Close()
	var nodes []*kernel.Node
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	rts := make([]*core.Runtime, 3)
	for i := range rts {
		ep, aerr := net.Attach(wire.NodeID(i + 1))
		if aerr != nil {
			return res, aerr
		}
		node := kernel.NewNode(ep)
		nodes = append(nodes, node)
		ktx, cerr := node.NewContext()
		if cerr != nil {
			return res, cerr
		}
		rts[i] = core.NewRuntime(ktx, core.WithSessions(), core.WithClient(rpc.NewClient(ktx,
			rpc.WithRetryInterval(2*time.Millisecond), rpc.WithMaxAttempts(50))))
	}
	factory := replica.NewFactory(bench.KVReads(),
		func() replica.StateMachine { return bench.NewKV() },
		replica.WithDeliverTimeout(60*time.Millisecond),
		replica.WithSyncInterval(20*time.Millisecond))
	for _, rt := range rts {
		rt.RegisterProxyType("KV", factory)
	}
	defer func() {
		for _, rt := range rts {
			rt.CloseProxies()
		}
	}()
	ref, err := rts[0].Export(bench.NewKV(), "KV")
	if err != nil {
		return res, err
	}
	pp, err := rts[1].Import(ref)
	if err != nil {
		return res, err
	}
	p2 := pp.(*replica.Proxy)
	pp, err = rts[2].Import(ref)
	if err != nil {
		return res, err
	}
	p3 := pp.(*replica.Proxy)

	ctx := context.Background()
	const sidBase = uint64(0xE18) << 32
	key := func(i int) string { return fmt.Sprintf("w%d", i) }
	sctx := func(i int) context.Context { return core.ContextWithSession(ctx, sidBase+uint64(i), 1) }

	const writes = 20
	for i := 1; i <= writes; i++ {
		if _, err := p2.Invoke(sctx(i), "incr", key(i)); err != nil {
			return res, fmt.Errorf("pre-crash write %d: %w", i, err)
		}
		res.acked++
	}

	net.Crash(1)
	// One fresh identity retried until the successor promotes and
	// acknowledges it; the session retry loop keeps the identity stable
	// across every attempt, so this write too applies exactly once.
	start := time.Now()
	for {
		if _, err := p2.Invoke(sctx(writes+1), "incr", key(writes+1)); err == nil {
			res.acked++
			break
		}
		if time.Since(start) > 20*time.Second {
			return res, fmt.Errorf("no failover within 20s")
		}
	}

	// Retransmit every identity, alternating between the promoted
	// primary's in-process path and the surviving member's remote path.
	for i := 1; i <= writes+1; i++ {
		p := p2
		if i%2 == 0 {
			p = p3
		}
		out, err := p.Invoke(sctx(i), "incr", key(i))
		if err != nil {
			return res, fmt.Errorf("retransmission of %s: %w", key(i), err)
		}
		res.retrans++
		if out[0] == int64(1) {
			res.cached++
		}
	}

	// Audit both survivors: every acked key exactly once, nowhere twice.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && p3.AppliedSeq() < p2.AppliedSeq() {
		time.Sleep(5 * time.Millisecond)
	}
	for _, p := range []*replica.Proxy{p2, p3} {
		kv := p.Local().(*bench.KV)
		for i := 1; i <= writes+1; i++ {
			switch got := kv.Get(key(i)); {
			case got > 1:
				res.duplicates++
			case got == 0:
				res.lost++
			}
		}
	}
	return res, nil
}
