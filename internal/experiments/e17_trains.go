package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

// E17FrameTrains measures transparent per-destination coalescing on the
// hottest placement the ladder exposes: same-node cross-context
// invocations, where every call pays full wire cost (header, CRC, a
// simulated send) but no propagation delay hides it. As concurrent callers
// fan in on one destination, the coalescer packs their frames into
// KindTrain containers and one send carries the lot; the frames-per-op
// column is the simulated analogue of syscalls-per-op on a real socket.
// Expected shape: at fan-in 1 the train path tracks the plain path (a lone
// frame is never delayed), and from fan-in ~8 up trains fill, the
// frames-per-op ratio drops well below 1, and throughput pulls ahead.
func E17FrameTrains(w io.Writer, cfg Config) error {
	header(w, "E17", "frame-train coalescing under fan-in")
	fanins := []int{1, 2, 4, 8, 16}
	tab := bench.Table{Headers: []string{
		"fan-in", "plain ops/s", "train ops/s", "speedup",
		"plain frames/op", "train frames/op", "avg fill",
	}}
	var plainP50, trainP50 time.Duration
	for _, n := range fanins {
		plain, train, err := e17MedianPair(cfg, n)
		if err != nil {
			return fmt.Errorf("fan-in %d: %w", n, err)
		}
		if n == 1 {
			plainP50, trainP50 = plain.p50, train.p50
		}
		tab.Add(n,
			fmt.Sprintf("%.0f", plain.tput),
			fmt.Sprintf("%.0f", train.tput),
			fmt.Sprintf("%.2fx", train.tput/plain.tput),
			fmt.Sprintf("%.2f", plain.framesPerOp),
			fmt.Sprintf("%.2f", train.framesPerOp),
			fmt.Sprintf("%.1f", train.fill),
		)
	}
	tab.Print(w)
	fmt.Fprintf(w, "(single-caller p50: plain %v, train %v; frames/op counts request+reply)\n",
		plainP50, trainP50)
	return nil
}

type e17Result struct {
	tput        float64
	framesPerOp float64
	p50         time.Duration
	fill        float64
}

// e17MedianPair measures each fan-in as three adjacent (plain, train)
// pairs and keeps the pair with the median speedup. Pairing matters more
// than repetition here: on a shared machine the available CPU swings far
// more between measurement windows than the effect under test, so a
// plain run and a train run taken minutes apart compare machine states,
// not transports. Back-to-back pairs see (nearly) the same state, and
// the median pair is robust to one descheduled window in either
// direction.
func e17MedianPair(cfg Config, fanin int) (plain, train e17Result, err error) {
	type pair struct{ plain, train e17Result }
	pairs := make([]pair, 0, 3)
	for i := 0; i < 3; i++ {
		p, err := e17Run(cfg, fanin, false)
		if err != nil {
			return e17Result{}, e17Result{}, err
		}
		tr, err := e17Run(cfg, fanin, true)
		if err != nil {
			return e17Result{}, e17Result{}, err
		}
		pairs = append(pairs, pair{p, tr})
	}
	sort.Slice(pairs, func(i, j int) bool {
		return pairs[i].train.tput/pairs[i].plain.tput < pairs[j].train.tput/pairs[j].plain.tput
	})
	return pairs[1].plain, pairs[1].train, nil
}

func e17Run(cfg Config, fanin int, coalesce bool) (e17Result, error) {
	build := bench.NewCluster
	if coalesce {
		build = bench.NewCoalescedCluster
	}
	c, err := build(1, cfg.netOpts()...)
	if err != nil {
		return e17Result{}, err
	}
	defer c.Close()

	ref, err := c.RT(0).Export(bench.NewKV(), "KV")
	if err != nil {
		return e17Result{}, err
	}
	client, err := c.NewContextRuntime(0)
	if err != nil {
		return e17Result{}, err
	}
	proxies := make([]core.Proxy, fanin)
	for i := range proxies {
		if proxies[i], err = client.Import(ref); err != nil {
			return e17Result{}, err
		}
	}

	ctx := context.Background()
	// Warm up in the measured pattern — all callers concurrent — so pools
	// fill and the coalescer's load detector reaches its steady state
	// before timing starts.
	var warm sync.WaitGroup
	warmErrs := make(chan error, fanin)
	for _, p := range proxies {
		warm.Add(1)
		go func(p core.Proxy) {
			defer warm.Done()
			for i := 0; i < 100; i++ {
				if _, err := p.Invoke(ctx, "noop"); err != nil {
					warmErrs <- err
					return
				}
			}
		}(p)
	}
	warm.Wait()
	close(warmErrs)
	for err := range warmErrs {
		return e17Result{}, err
	}

	// Constant total work per measurement keeps the timing window the
	// same at every fan-in.
	ops := cfg.Ops * 128 / fanin
	before := c.Net.Snapshot().Sent
	var timer bench.Timer // sampled only at fan-in 1, where it is cheap and meaningful
	var wg sync.WaitGroup
	errs := make(chan error, fanin)
	start := time.Now()
	for _, p := range proxies {
		wg.Add(1)
		go func(p core.Proxy) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				if fanin == 1 {
					opStart := time.Now()
					_, err := p.Invoke(ctx, "noop")
					timer.Record(time.Since(opStart))
					if err != nil {
						errs <- err
						return
					}
					continue
				}
				if _, err := p.Invoke(ctx, "noop"); err != nil {
					errs <- err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return e17Result{}, err
	}

	total := fanin * ops
	res := e17Result{
		tput:        float64(total) / elapsed.Seconds(),
		framesPerOp: float64(c.Net.Snapshot().Sent-before) / float64(total),
		p50:         timer.Summary().P50,
	}
	if coalesce && len(c.Coalesced) > 0 {
		res.fill = c.Coalesced[0].Coalescer().Stats().AvgFill()
	}
	return res, nil
}
