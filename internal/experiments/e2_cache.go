package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/core"
)

// E2CacheCrossover runs the same seeded read/write mix through a stub
// proxy, a callback-invalidation caching proxy, and a lease caching proxy,
// sweeping the read fraction. Expected shape: the stub is flat (every op
// pays the wire); caching tracks it at write-heavy mixes (plus coherence
// overhead) and pulls away as reads dominate, with the crossover in the
// middle of the sweep; at 100% reads the caching designs approach local
// speed. The "wrong proxy" claim — why the *service* should choose — is
// visible at readFraction 0, where caching is strictly worse than the
// stub.
func E2CacheCrossover(w io.Writer, cfg Config) error {
	header(w, "E2", "caching-proxy crossover")
	fractions := []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}
	tab := bench.Table{Headers: []string{"read%", "stub", "cache(callback)", "cache(lease)", "best"}}

	for _, rf := range fractions {
		stub, err := e2RunDesign(cfg, rf, nil)
		if err != nil {
			return fmt.Errorf("stub rf=%v: %w", rf, err)
		}
		cb, err := e2RunDesign(cfg, rf, cache.NewFactory(bench.KVReads()))
		if err != nil {
			return fmt.Errorf("callback rf=%v: %w", rf, err)
		}
		lease, err := e2RunDesign(cfg, rf, cache.NewFactory(bench.KVReads(),
			cache.WithMode(cache.ModeLease), cache.WithLeaseTTL(50*time.Millisecond)))
		if err != nil {
			return fmt.Errorf("lease rf=%v: %w", rf, err)
		}
		best := "stub"
		switch {
		case cb <= stub && cb <= lease:
			best = "callback"
		case lease <= stub && lease <= cb:
			best = "lease"
		}
		tab.Add(fmt.Sprintf("%.0f", rf*100), perOp(stub, cfg.Ops), perOp(cb, cfg.Ops), perOp(lease, cfg.Ops), best)
	}
	tab.Print(w)
	fmt.Fprintln(w, "(per-operation mean; single client, 16-key store)")
	return nil
}

// e2RunDesign measures one (read-fraction, proxy design) cell. A nil
// factory means the plain stub.
func e2RunDesign(cfg Config, readFraction float64, factory *cache.Factory) (time.Duration, error) {
	c, err := bench.NewCluster(2, cfg.netOpts()...)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if factory != nil {
		c.RT(0).RegisterProxyType("KV", factory)
		c.RT(1).RegisterProxyType("KV", factory)
	}
	ref, err := c.RT(0).Export(bench.NewKV(), "KV")
	if err != nil {
		return 0, err
	}
	p, err := c.RT(1).Import(ref)
	if err != nil {
		return 0, err
	}
	wl := bench.Mixed{ReadFraction: readFraction, Ops: cfg.Ops, Keys: 16, Seed: cfg.Seed}
	return wl.Run(context.Background(), p)
}

func perOp(total time.Duration, ops int) time.Duration {
	if ops == 0 {
		return 0
	}
	return total / time.Duration(ops)
}

var _ core.Proxy = (*cache.Proxy)(nil)
