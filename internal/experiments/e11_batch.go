package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

// E11BatchingAmortization (extension): the batching proxy queues one-way
// invocations and ships them in single frames. Sweeping the batch size on
// a fixed stream of appends shows the wire cost amortizing: frames per
// operation fall as 2/batch (request + reply per flush) and so does the
// mean per-op time, approaching the pure marshalling floor. Batch size 1
// is the stub-equivalent baseline.
func E11BatchingAmortization(w io.Writer, cfg Config) error {
	header(w, "E11", "batching-proxy amortization (extension)")
	sizes := []int{1, 2, 4, 8, 16, 32, 64}
	tab := bench.Table{Headers: []string{"batch size", "total", "per op", "frames", "frames/op"}}

	const ops = 256
	for _, size := range sizes {
		total, frames, err := e11Run(cfg, size, ops)
		if err != nil {
			return fmt.Errorf("batch=%d: %w", size, err)
		}
		tab.Add(size, total, total/time.Duration(ops), frames, fmt.Sprintf("%.2f", float64(frames)/ops))
	}
	tab.Print(w)
	fmt.Fprintf(w, "(%d one-way appends per run; flush on size only)\n", ops)
	return nil
}

// e11LogService is an append sink.
type e11LogService struct {
	count int
}

func (s *e11LogService) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	switch method {
	case "append":
		s.count++
		return nil, nil
	case "count":
		return []any{int64(s.count)}, nil
	default:
		return nil, core.NoSuchMethod(method)
	}
}

func e11Run(cfg Config, batchSize, ops int) (time.Duration, uint64, error) {
	c, err := bench.NewCluster(2, cfg.netOpts()...)
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	factory := core.NewBatchFactory([]string{"append"},
		core.WithBatchSize(batchSize), core.WithBatchInterval(0))
	c.RT(1).RegisterProxyType("Log", factory)

	svc := &e11LogService{}
	ref, err := c.RT(0).Export(svc, "Log")
	if err != nil {
		return 0, 0, err
	}
	p, err := c.RT(1).Import(ref)
	if err != nil {
		return 0, 0, err
	}
	bp, ok := p.(*core.BatchProxy)
	if !ok {
		return 0, 0, fmt.Errorf("import produced %T", p)
	}

	before := c.Net.Snapshot().Sent
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < ops; i++ {
		if _, err := p.Invoke(ctx, "append", "entry"); err != nil {
			return 0, 0, err
		}
	}
	if err := bp.Flush(ctx); err != nil {
		return 0, 0, err
	}
	total := time.Since(start)
	frames := c.Net.Snapshot().Sent - before

	// Integrity: every append must have executed exactly once.
	res, err := core.Call1[int64](ctx, core.NewStub(c.RT(1), ref), "count")
	if err != nil {
		return 0, 0, err
	}
	if res != int64(ops) {
		return 0, 0, fmt.Errorf("server saw %d appends, want %d", res, ops)
	}
	return total, frames, nil
}
