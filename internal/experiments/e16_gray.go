package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/bench"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// E16GrayFailure measures the gray-failure story end to end: a KV node
// turns 10× slow — alive, answering, just wrong — and the same write
// workload runs against it twice. The scored client carries a health
// monitor (EWMA RTT vs the peer-population median, outlier grading) and
// ejects each call to a healthy alternate BEFORE send; its degraded-phase
// tail stays at the healthy baseline. The unscored control keeps calling
// the slow node and inherits its latency wholesale. The gap between the
// two degraded-phase p99 columns is what outlier ejection buys.
func E16GrayFailure(w io.Writer, cfg Config) error {
	header(w, "E16", "gray failure: slow-peer scoring and outlier ejection")

	scored, err := e16Trial(cfg, true)
	if err != nil {
		return fmt.Errorf("scored: %w", err)
	}
	unscored, err := e16Trial(cfg, false)
	if err != nil {
		return fmt.Errorf("unscored: %w", err)
	}

	round := func(d time.Duration) time.Duration { return d.Round(100 * time.Microsecond) }
	tab := bench.Table{Headers: []string{"client", "healthy p50", "healthy p99", "degraded p50", "degraded p99", "ejections"}}
	tab.Add("scored", round(scored.healthy.P50), round(scored.healthy.P99),
		round(scored.degraded.P50), round(scored.degraded.P99), scored.ejections)
	tab.Add("unscored", round(unscored.healthy.P50), round(unscored.healthy.P99),
		round(unscored.degraded.P50), round(unscored.degraded.P99), unscored.ejections)
	tab.Print(w)
	fmt.Fprintln(w, "(one node turns 10x slow mid-run; the scored client grades it an RTT")
	fmt.Fprintln(w, " outlier and steers every call to a healthy alternate pre-send, so its")
	fmt.Fprintln(w, " degraded p99 holds at baseline; the unscored control pays the slow node)")
	return nil
}

// e16Result is one client's view of the trial: latency quantiles for the
// healthy and degraded phases plus the pre-send ejection count.
type e16Result struct {
	healthy   bench.Summary
	degraded  bench.Summary
	ejections uint64
}

// e16Trial runs the workload on a 4-node cluster (slow KV, alternate KV,
// client, relay peer). With withHealth every node carries a monitor
// watching every peer — the proxyd shape, so the outlier model has an
// RTT population and indirect-probe relays; without, the cluster is the
// unprotected control.
func e16Trial(cfg Config, withHealth bool) (e16Result, error) {
	var res e16Result
	const monInterval = 40 * time.Millisecond // probe timeout 20ms > degraded RTT
	extra := 10 * cfg.Latency
	ops := cfg.Ops
	if ops > 120 {
		// The unscored degraded phase pays ~2*extra per op; cap so the
		// control finishes in bounded time at any -ops setting.
		ops = 120
	}

	net := netsim.New(cfg.netOpts()...)
	defer net.Close()
	obsv := obs.NewObserver()
	var nodes []*kernel.Node
	var mons []*health.Monitor
	defer func() {
		for _, m := range mons {
			m.Close()
		}
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	mk := func(id wire.NodeID) (*core.Runtime, error) {
		ep, aerr := net.Attach(id)
		if aerr != nil {
			return nil, aerr
		}
		node := kernel.NewNode(ep)
		nodes = append(nodes, node)
		ktx, cerr := node.NewContext()
		if cerr != nil {
			return nil, cerr
		}
		opts := []core.RuntimeOption{core.WithObserver(obsv),
			core.WithClient(rpc.NewClient(ktx, rpc.WithRetryInterval(50*time.Millisecond),
				rpc.WithMaxAttempts(4), rpc.WithObserver(obsv)))}
		if withHealth {
			mon := health.NewMonitor(ktx,
				health.WithInterval(monInterval),
				health.WithObserver(obsv),
				health.WithOutlierFactor(1.5),
				health.WithEWMAAlpha(0.4))
			mons = append(mons, mon)
			opts = append(opts, core.WithHealth(mon))
		}
		return core.NewRuntime(ktx, opts...), nil
	}

	const n = 4
	rts := make([]*core.Runtime, 0, n)
	for id := 1; id <= n; id++ {
		rt, err := mk(wire.NodeID(id))
		if err != nil {
			return res, err
		}
		rts = append(rts, rt)
	}
	for i, mon := range mons {
		for j := 1; j <= n; j++ {
			if j != i+1 {
				mon.Watch(wire.NodeID(j))
			}
		}
	}
	slow, alt, client := rts[0], rts[1], rts[2] // node 4 is a relay peer

	ref1, err := slow.Export(bench.NewKV(), "KV")
	if err != nil {
		return res, err
	}
	ref2, err := alt.Export(bench.NewKV(), "KV")
	if err != nil {
		return res, err
	}
	p, err := client.Import(ref1)
	if err != nil {
		return res, err
	}
	stub := p.(*core.Stub)
	stub.SetAlternates([]codec.Ref{ref1, ref2})
	// put stays non-idempotent on purpose: pre-send ejection happens
	// before anything leaves the client, so it needs no replay license —
	// gray-failure steering protects writes, not just reads.

	run := func(phase string) (bench.Summary, error) {
		var t bench.Timer
		for i := 0; i < ops; i++ {
			start := time.Now()
			if _, cerr := stub.Invoke(context.Background(), "put",
				fmt.Sprintf("%s%d", phase, i%8), int64(i)); cerr != nil {
				return bench.Summary{}, cerr
			}
			t.Record(time.Since(start))
		}
		return t.Summary(), nil
	}

	if res.healthy, err = run("h"); err != nil {
		return res, err
	}
	net.DegradeNode(1, netsim.LinkCond{ExtraLatency: extra})
	if withHealth {
		// Wait for the client's monitor to grade node 1: the EWMA RTT must
		// cross the outlier threshold against the peer-population median.
		mon := mons[2]
		converged := false
		for end := time.Now().Add(5 * time.Second); time.Now().Before(end); {
			if mon.Score(1) >= 0.75 {
				converged = true
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if !converged {
			return res, fmt.Errorf("monitor never scored the slow node: %+v", mon.Status(1))
		}
	}
	if res.degraded, err = run("d"); err != nil {
		return res, err
	}
	res.ejections = uint64(obsv.Registry.Counter("core[" + client.Addr().String() + "].invoke.ejections").Load())
	return res, nil
}
