package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/replica"
)

// E4ReplicaScaling measures aggregate read throughput as the client count
// grows, for stub proxies (every read crosses to the one server) versus
// replicated proxies (every read is local). Expected shape: the stub
// curve saturates — the server and its links are shared — while the
// replica curve grows near-linearly with the client count.
func E4ReplicaScaling(w io.Writer, cfg Config) error {
	header(w, "E4", "replica read scaling")
	counts := []int{1, 2, 4, 8, 16}
	tab := bench.Table{Headers: []string{"clients", "stub ops/s", "replica ops/s", "speedup"}}

	for _, n := range counts {
		stubTput, err := e4Run(cfg, n, false)
		if err != nil {
			return fmt.Errorf("stub n=%d: %w", n, err)
		}
		repTput, err := e4Run(cfg, n, true)
		if err != nil {
			return fmt.Errorf("replica n=%d: %w", n, err)
		}
		tab.Add(n, fmt.Sprintf("%.0f", stubTput), fmt.Sprintf("%.0f", repTput),
			fmt.Sprintf("%.0fx", repTput/stubTput))
	}
	tab.Print(w)
	fmt.Fprintf(w, "(read-only workload, %d ops per client)\n", cfg.Ops)
	return nil
}

func e4Run(cfg Config, clients int, replicated bool) (float64, error) {
	// Replica reads are local (nanoseconds); run enough of them that the
	// measurement dwarfs timer noise.
	ops := cfg.Ops
	if replicated {
		ops *= 500
	}
	c, err := bench.NewCluster(clients+1, cfg.netOpts()...)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if replicated {
		factory := replica.NewFactory(bench.KVReads(), func() replica.StateMachine { return bench.NewKV() })
		for _, rt := range c.Runtimes {
			rt.RegisterProxyType("KV", factory)
		}
	}
	kv := bench.NewKV()
	if _, err := kv.Invoke(context.Background(), "put", []any{"k", int64(1)}); err != nil {
		return 0, err
	}
	ref, err := c.RT(0).Export(kv, "KV")
	if err != nil {
		return 0, err
	}
	proxies := make([]core.Proxy, clients)
	for i := range proxies {
		p, err := c.RT(i + 1).Import(ref)
		if err != nil {
			return 0, err
		}
		proxies[i] = p
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for _, p := range proxies {
		wg.Add(1)
		go func(p core.Proxy) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				if _, err := p.Invoke(ctx, "get", "k"); err != nil {
					errs <- err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, err
	}
	return float64(clients*ops) / elapsed.Seconds(), nil
}
