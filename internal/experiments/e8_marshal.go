package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/bench"
	"repro/internal/codec"
	"repro/internal/core"
)

// E8Marshalling separates the cost of the proxy machinery from the cost of
// the bytes: encode/decode throughput of the codec alone, and end-to-end
// invocation latency as the payload grows. Expected shape: codec
// throughput is roughly constant in MB/s (linear cost in payload size),
// and end-to-end latency is the fixed protocol cost plus the linear byte
// cost — i.e. the marshalling layer, not the proxy indirection, is what
// scales with payload.
func E8Marshalling(w io.Writer, cfg Config) error {
	header(w, "E8", "marshalling cost vs payload")
	sizes := []int{16, 256, 4 << 10, 64 << 10}

	tab := bench.Table{Headers: []string{"payload", "encode+decode", "codec MB/s", "end-to-end call"}}
	c, err := bench.NewCluster(2, cfg.netOpts()...)
	if err != nil {
		return err
	}
	defer c.Close()
	echo := core.ServiceFunc(func(ctx context.Context, method string, args []any) ([]any, error) {
		return args, nil
	})
	ref, err := c.RT(0).Export(echo, "Echo")
	if err != nil {
		return err
	}
	p, err := c.RT(1).Import(ref)
	if err != nil {
		return err
	}
	ctx := context.Background()

	for _, size := range sizes {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i)
		}

		// Codec alone.
		iters := cfg.Ops
		start := time.Now()
		for i := 0; i < iters; i++ {
			buf, err := codec.EncodeArgs("echo", payload)
			if err != nil {
				return err
			}
			if _, err := codec.DecodeArgs(buf); err != nil {
				return err
			}
		}
		codecTotal := time.Since(start)
		perIter := codecTotal / time.Duration(iters)
		mbps := float64(size*iters) / codecTotal.Seconds() / (1 << 20)

		// End to end through the stub proxy.
		var timer bench.Timer
		calls := 50
		for i := 0; i < calls; i++ {
			s := time.Now()
			if _, err := p.Invoke(ctx, "echo", payload); err != nil {
				return err
			}
			timer.Record(time.Since(s))
		}
		tab.Add(fmtBytes(size), perIter, fmt.Sprintf("%.0f", mbps), timer.Summary().Mean)
	}
	tab.Print(w)
	return nil
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
