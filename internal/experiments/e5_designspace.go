package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dsm"
	"repro/internal/netsim"
	"repro/internal/replica"
)

// E5DesignSpace is the measured version of the design-space comparison:
// classic RPC stubs, caching proxies, replicated proxies, and page-based
// DSM all run the *same* seeded 90%-read workload from three concurrent
// clients. The table reports per-client mean op latency and the number of
// network frames each design consumed. Expected shape: the stub pays the
// wire on every operation (most frames, flat latency); the caching proxy
// and the replica serve reads locally and beat it handily on this
// read-dominated mix; DSM sits near the smart proxies while writes are
// scattered, but its page granularity makes it the most sensitive to
// write sharing.
func E5DesignSpace(w io.Writer, cfg Config) error {
	header(w, "E5", "design-space comparison")
	const clients = 3
	const readFraction = 0.9
	wl := bench.Mixed{ReadFraction: readFraction, Ops: cfg.Ops, Keys: 12, Seed: cfg.Seed}

	tab := bench.Table{Headers: []string{"design", "mean/op", "frames", "access method", "location strategy"}}

	stub, frames, err := e5RunProxies(cfg, clients, wl, nil, nil)
	if err != nil {
		return fmt.Errorf("stub: %w", err)
	}
	tab.Add("RPC stub", stub, frames, "request/reply", "leave at origin")

	cf := cache.NewFactory(bench.KVReads())
	cached, frames, err := e5RunProxies(cfg, clients, wl, func(rt *core.Runtime) {
		rt.RegisterProxyType("KV", cf)
	}, nil)
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tab.Add("caching proxy", cached, frames, "local cache + RPC", "cache at client")

	rf := replica.NewFactory(bench.KVReads(), func() replica.StateMachine { return bench.NewKV() })
	repl, frames, err := e5RunProxies(cfg, clients, wl, func(rt *core.Runtime) {
		rt.RegisterProxyType("KV", rf)
	}, nil)
	if err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	tab.Add("replicated proxy", repl, frames, "local replica", "replicate everywhere")

	dsmLat, frames, err := e5RunDSM(cfg, clients, wl)
	if err != nil {
		return fmt.Errorf("dsm: %w", err)
	}
	tab.Add("DSM (page)", dsmLat, frames, "local memory", "map into client")

	tab.Print(w)
	fmt.Fprintf(w, "(%d clients, %.0f%% reads, %d ops each, 12 keys)\n", clients, readFraction*100, cfg.Ops)
	return nil
}

// e5RunProxies measures one proxy-based design; register configures each
// runtime's factories (nil for stubs).
func e5RunProxies(cfg Config, clients int, wl bench.Mixed, register func(*core.Runtime), _ any) (time.Duration, uint64, error) {
	c, err := bench.NewCluster(clients+1, cfg.netOpts()...)
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	if register != nil {
		for _, rt := range c.Runtimes {
			register(rt)
		}
	}
	ref, err := c.RT(0).Export(bench.NewKV(), "KV")
	if err != nil {
		return 0, 0, err
	}
	proxies := make([]core.Proxy, clients)
	for i := range proxies {
		p, err := c.RT(i + 1).Import(ref)
		if err != nil {
			return 0, 0, err
		}
		proxies[i] = p
	}
	before := c.Net.Snapshot()

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	totals := make([]time.Duration, clients)
	for i, p := range proxies {
		wg.Add(1)
		go func(i int, p core.Proxy) {
			defer wg.Done()
			w := wl
			w.Seed += int64(i) // distinct but reproducible per client
			d, err := w.Run(ctx, p)
			if err != nil {
				errs <- err
				return
			}
			totals[i] = d
		}(i, p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return 0, 0, err
	}
	after := c.Net.Snapshot()
	return meanPerOp(totals, wl.Ops), after.Sent - before.Sent, nil
}

// e5RunDSM drives the identical op sequence against the DSM comparator:
// each key maps to its own page, a read is a page read, a write stores the
// value in the page's first eight bytes.
func e5RunDSM(cfg Config, clients int, wl bench.Mixed) (time.Duration, uint64, error) {
	c, err := bench.NewCluster(clients+1, cfg.netOpts()...)
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	manager := dsm.NewManager(c.RT(0), dsm.WithPageSize(64))
	agents := make([]*dsm.Agent, clients)
	for i := range agents {
		agents[i] = dsm.NewAgent(c.RT(i+1), manager.Addr())
	}
	before := c.Net.Snapshot()

	pageFor := func(key string) dsm.PageID {
		var h uint64 = 1469598103934665603
		for i := 0; i < len(key); i++ {
			h = (h ^ uint64(key[i])) * 1099511628211
		}
		return dsm.PageID(h % 64)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	totals := make([]time.Duration, clients)
	for i, ag := range agents {
		wg.Add(1)
		go func(i int, ag *dsm.Agent) {
			defer wg.Done()
			w := wl
			w.Seed += int64(i)
			d, err := w.RunFunc(ctx,
				func(ctx context.Context, key string) error {
					_, err := ag.Read(ctx, pageFor(key))
					return err
				},
				func(ctx context.Context, key string, v int64) error {
					return ag.Write(ctx, pageFor(key), func(p []byte) {
						p[0], p[1], p[2], p[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
					})
				})
			if err != nil {
				errs <- err
				return
			}
			totals[i] = d
		}(i, ag)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return 0, 0, err
	}
	after := c.Net.Snapshot()
	return meanPerOp(totals, wl.Ops), after.Sent - before.Sent, nil
}

func meanPerOp(totals []time.Duration, ops int) time.Duration {
	var sum time.Duration
	for _, d := range totals {
		sum += d
	}
	if len(totals) == 0 || ops == 0 {
		return 0
	}
	return sum / time.Duration(len(totals)*ops)
}

var _ = netsim.LinkConfig{}
