package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// E15Overload measures graceful degradation. Part one sweeps offered load
// from half capacity to 4x against a server behind a pinned admission
// limit: the expected shape is goodput that rises to capacity and then
// STAYS there — excess arrivals are shed with pushback instead of
// queueing everyone into timeouts, so the useful-work line is flat past
// the knee rather than collapsing. Part two measures hedged reads against
// a sporadically slow primary: the plain client's p99 sits at the stall,
// the hedged client's p99 collapses to the fast alternate's latency while
// the median stays untouched.
func E15Overload(w io.Writer, cfg Config) error {
	header(w, "E15", "overload shedding and hedged tail latency")

	const limit = 4
	const serviceTime = 2 * time.Millisecond
	tab := bench.Table{Headers: []string{"offered", "ok", "shed", "timeout", "goodput", "of capacity"}}
	for _, mult := range []int{1, 2, 4, 8} { // workers = mult*limit/2 → 0.5x..4x
		workers := mult * limit / 2
		ok, shed, timeouts, elapsed, mean, err := e15LoadTrial(cfg, limit, serviceTime, workers)
		if err != nil {
			return fmt.Errorf("workers=%d: %w", workers, err)
		}
		goodput := float64(ok) / elapsed.Seconds()
		// Capacity from the server's own measured handler latency, so the
		// denominator includes scheduler overshoot, not the nominal sleep.
		capacity := float64(limit) / mean.Seconds()
		tab.Add(fmt.Sprintf("%.1fx", float64(mult)/2), ok, shed, timeouts,
			fmt.Sprintf("%.0f ops/s", goodput), fmt.Sprintf("%.0f%%", 100*goodput/capacity))
	}
	tab.Print(w)
	fmt.Fprintln(w, "(pinned admission limit; past the knee the server sheds with pushback,")
	fmt.Fprintln(w, " so goodput holds at capacity instead of drowning in queued timeouts)")

	plain, hedged, launches, err := e15HedgeTrial(cfg)
	if err != nil {
		return fmt.Errorf("hedge trial: %w", err)
	}
	ht := bench.Table{Headers: []string{"client", "p50", "p99"}}
	ht.Add("plain", plain.P50.Round(time.Millisecond), plain.P99.Round(time.Millisecond))
	ht.Add("hedged", hedged.P50.Round(time.Millisecond), hedged.P99.Round(time.Millisecond))
	ht.Print(w)
	fmt.Fprintf(w, "(primary stalls every 10th read; %d hedges raced the alternate —\n", launches)
	fmt.Fprintln(w, " the tail collapses to the alternate's latency, the median is untouched)")
	return nil
}

// e15Svc burns a fixed service time per call.
type e15Svc struct{ d time.Duration }

func (s *e15Svc) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	select {
	case <-time.After(s.d):
		return []any{true}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func e15LoadTrial(cfg Config, limit int, serviceTime time.Duration, workers int) (ok, shed, timeouts uint64, elapsed time.Duration, mean time.Duration, err error) {
	net := netsim.New(cfg.netOpts()...)
	defer net.Close()
	reg := obs.NewRegistry()
	mk := func(id wire.NodeID, opts ...kernel.NodeOption) (*core.Runtime, *kernel.Node, error) {
		ep, aerr := net.Attach(id)
		if aerr != nil {
			return nil, nil, aerr
		}
		node := kernel.NewNode(ep, opts...)
		ktx, cerr := node.NewContext()
		if cerr != nil {
			node.Close()
			return nil, nil, cerr
		}
		return core.NewRuntime(ktx, core.WithClient(rpc.NewClient(ktx,
			rpc.WithRetryInterval(100*time.Millisecond)))), node, nil
	}
	adm := overload.NewController(overload.Config{
		MinLimit: limit, MaxLimit: limit, InitialLimit: limit,
		QueueLimit: 2 * limit, QueueDeadline: 2 * serviceTime,
	}, reg, "e15.")
	server, srvNode, err := mk(1, kernel.WithAdmission(adm))
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	defer srvNode.Close()
	client, cliNode, err := mk(2)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	defer cliNode.Close()

	ref, err := server.Export(&e15Svc{d: serviceTime}, "Busy")
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	p, err := client.Import(ref)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}

	var okN, shedN, toN atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				_, cerr := p.Invoke(ctx, "work")
				cancel()
				switch {
				case cerr == nil:
					okN.Add(1)
				case core.IsOverload(cerr):
					shedN.Add(1)
					time.Sleep(serviceTime / 2)
				case errors.Is(cerr, context.DeadlineExceeded):
					toN.Add(1)
				}
			}
		}()
	}
	start := time.Now()
	time.Sleep(600 * time.Millisecond)
	close(stop)
	wg.Wait()
	elapsed = time.Since(start)
	mean = reg.Histogram("e15.overload.latency").Snapshot().Mean
	if mean <= 0 {
		mean = serviceTime
	}
	return okN.Load(), shedN.Load(), toN.Load(), elapsed, mean, nil
}

// e15Tail answers instantly except every 10th call, which stalls.
type e15Tail struct {
	n       atomic.Uint64
	slowFor time.Duration
}

func (s *e15Tail) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	if s.slowFor > 0 && s.n.Add(1)%10 == 0 {
		select {
		case <-time.After(s.slowFor):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return []any{int64(1)}, nil
}

func e15HedgeTrial(cfg Config) (plain, hedged bench.Summary, launches uint64, err error) {
	const calls = 120
	const slowFor = 40 * time.Millisecond
	net := netsim.New(cfg.netOpts()...)
	defer net.Close()
	obsv := obs.NewObserver()
	var nodes []*kernel.Node
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	mk := func(id wire.NodeID, opts ...core.RuntimeOption) (*core.Runtime, error) {
		ep, aerr := net.Attach(id)
		if aerr != nil {
			return nil, aerr
		}
		node := kernel.NewNode(ep)
		nodes = append(nodes, node)
		ktx, cerr := node.NewContext()
		if cerr != nil {
			return nil, cerr
		}
		opts = append([]core.RuntimeOption{core.WithObserver(obsv),
			core.WithClient(rpc.NewClient(ktx, rpc.WithRetryInterval(100*time.Millisecond),
				rpc.WithMaxAttempts(5), rpc.WithObserver(obsv)))}, opts...)
		return core.NewRuntime(ktx, opts...), nil
	}
	primary, err := mk(1)
	if err != nil {
		return plain, hedged, 0, err
	}
	alternate, err := mk(2)
	if err != nil {
		return plain, hedged, 0, err
	}
	plainRT, err := mk(3)
	if err != nil {
		return plain, hedged, 0, err
	}
	hedgedRT, err := mk(4, core.WithHedging(core.HedgeConfig{
		MinDelay: 5 * time.Millisecond, MaxDelay: 10 * time.Millisecond}))
	if err != nil {
		return plain, hedged, 0, err
	}

	ref1, err := primary.Export(&e15Tail{slowFor: slowFor}, "Tail")
	if err != nil {
		return plain, hedged, 0, err
	}
	ref2, err := alternate.Export(&e15Tail{}, "Tail")
	if err != nil {
		return plain, hedged, 0, err
	}

	run := func(rt *core.Runtime, hedge bool) (bench.Summary, error) {
		p, ierr := rt.Import(ref1)
		if ierr != nil {
			return bench.Summary{}, ierr
		}
		if hedge {
			rt.RegisterIdempotent("Tail", "get")
			p.(*core.Stub).SetAlternates([]codec.Ref{ref1, ref2})
		}
		var t bench.Timer
		for i := 0; i < calls; i++ {
			start := time.Now()
			if _, cerr := p.Invoke(context.Background(), "get"); cerr != nil {
				return bench.Summary{}, cerr
			}
			t.Record(time.Since(start))
		}
		return t.Summary(), nil
	}
	if plain, err = run(plainRT, false); err != nil {
		return plain, hedged, 0, err
	}
	if hedged, err = run(hedgedRT, true); err != nil {
		return plain, hedged, 0, err
	}
	scope := "core[" + hedgedRT.Addr().String() + "]."
	launches = uint64(obsv.Registry.Counter(scope + "hedge.launches").Load())
	return plain, hedged, launches, nil
}
