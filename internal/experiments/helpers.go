package experiments

import (
	"repro/internal/kernel"
	"repro/internal/netsim"
)

// kernelNode wraps kernel.NewNode for experiment fixtures built outside
// bench.Cluster (those needing per-runtime client options).
func kernelNode(ep netsim.Endpoint) *kernel.Node {
	return kernel.NewNode(ep)
}
