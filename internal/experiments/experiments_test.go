package experiments

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

// tinyConfig keeps the suite fast enough for CI while still exercising
// every code path.
func tinyConfig() Config {
	return Config{
		Latency: 50 * time.Microsecond,
		Ops:     24,
		Seed:    1,
	}
}

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			if err := e.Run(io.Discard, tinyConfig()); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
		})
	}
}

func TestSuiteIsComplete(t *testing.T) {
	ids := make(map[string]bool)
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for i := 1; i <= 12; i++ {
		id := fmt.Sprintf("E%d", i)
		if !ids[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestExperimentOutputHasTable(t *testing.T) {
	var buf bytes.Buffer
	if err := E1InvocationLadder(&buf, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"=== E1", "placement", "direct call", "remote node"} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 output missing %q:\n%s", want, out)
		}
	}
}
