package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/core"
)

// E10InvalidationStorm grows the sharer set of a cached object and
// measures the cost of one write. Expected shape: with synchronous
// invalidation the write latency grows with the sharer count (every copy
// must acknowledge before the write returns); with asynchronous
// invalidation it stays near-flat, trading a staleness window for write
// speed — the design choice DESIGN.md calls out for ablation.
func E10InvalidationStorm(w io.Writer, cfg Config) error {
	header(w, "E10", "invalidation storm")
	sharerCounts := []int{1, 2, 4, 8, 16, 32}
	tab := bench.Table{Headers: []string{"sharers", "sync write", "async write", "invalidations sent"}}

	for _, n := range sharerCounts {
		syncLat, invs, err := e10Run(cfg, n, true)
		if err != nil {
			return fmt.Errorf("sync n=%d: %w", n, err)
		}
		asyncLat, _, err := e10Run(cfg, n, false)
		if err != nil {
			return fmt.Errorf("async n=%d: %w", n, err)
		}
		tab.Add(n, syncLat, asyncLat, invs)
	}
	tab.Print(w)
	fmt.Fprintln(w, "(one writer, n warm read-caching sharers; mean of repeated writes)")
	return nil
}

func e10Run(cfg Config, sharers int, sync bool) (time.Duration, uint64, error) {
	opts := []cache.FactoryOption{}
	if !sync {
		opts = append(opts, cache.WithAsyncInvalidation())
	}
	factory := cache.NewFactory(bench.KVReads(), opts...)

	c, err := bench.NewCluster(sharers+2, cfg.netOpts()...)
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	for _, rt := range c.Runtimes {
		rt.RegisterProxyType("KV", factory)
	}
	ref, err := c.RT(0).Export(bench.NewKV(), "KV")
	if err != nil {
		return 0, 0, err
	}
	ctx := context.Background()

	// Writer on node 1; sharers on nodes 2..n+1, each warmed with a read.
	writer, err := c.RT(1).Import(ref)
	if err != nil {
		return 0, 0, err
	}
	readers := make([]core.Proxy, sharers)
	for i := range readers {
		p, err := c.RT(i + 2).Import(ref)
		if err != nil {
			return 0, 0, err
		}
		readers[i] = p
	}

	warm := func() error {
		for _, p := range readers {
			if _, err := p.Invoke(ctx, "get", "hot"); err != nil {
				return err
			}
		}
		return nil
	}

	const writes = 20
	var timer bench.Timer
	for i := 0; i < writes; i++ {
		if err := warm(); err != nil {
			return 0, 0, err
		}
		start := time.Now()
		if _, err := writer.Invoke(ctx, "put", "hot", int64(i)); err != nil {
			return 0, 0, err
		}
		timer.Record(time.Since(start))
	}
	st, _ := factory.CoordinatorStatsFor(ref.Target)
	return timer.Summary().Mean, st.InvalidationsSent, nil
}
