package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/replica"
	"repro/internal/shard"
	"repro/internal/wire"
)

// E14Sharding measures aggregate write throughput against shard count.
// Each shard is a replica-backed member (primary plus one remote
// replica), so every write costs a full delivery round serialized at
// that member's primary — the bottleneck partitioning is supposed to
// remove. Concurrent clients drive random-key writes through sharded
// proxies; the expected shape is near-linear scaling, since disjoint key
// ranges serialize at disjoint primaries.
func E14Sharding(w io.Writer, cfg Config) error {
	header(w, "E14", "sharded keyspace write scaling")
	tab := bench.Table{Headers: []string{"shards", "writes", "elapsed", "throughput", "speedup"}}
	var base float64
	for _, shards := range []int{1, 2, 4} {
		ops, elapsed, err := e14Trial(cfg, shards)
		if err != nil {
			return fmt.Errorf("shards=%d: %w", shards, err)
		}
		thr := float64(ops) / elapsed.Seconds()
		if shards == 1 {
			base = thr
		}
		tab.Add(shards, ops, elapsed.Round(time.Millisecond),
			fmt.Sprintf("%.0f ops/s", thr), fmt.Sprintf("%.2fx", thr/base))
	}
	tab.Print(w)
	fmt.Fprintln(w, "(each shard = a replica group of 2; writes serialize at each primary,")
	fmt.Fprintln(w, " so disjoint key ranges buy near-linear aggregate write throughput)")
	return nil
}

func e14Trial(cfg Config, shards int) (ops int, elapsed time.Duration, err error) {
	net := netsim.New(cfg.netOpts()...)
	defer net.Close()
	nextID := wire.NodeID(1)
	var nodes []*kernel.Node
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	mk := func() (*core.Runtime, error) {
		ep, aerr := net.Attach(nextID)
		if aerr != nil {
			return nil, aerr
		}
		nextID++
		node := kernel.NewNode(ep)
		nodes = append(nodes, node)
		ktx, cerr := node.NewContext()
		if cerr != nil {
			return nil, cerr
		}
		return core.NewRuntime(ktx), nil
	}

	routerRT, err := mk()
	if err != nil {
		return 0, 0, err
	}
	spec := bench.KVShardSpec()
	sf := shard.NewFactory(spec, shard.WithName(fmt.Sprintf("e14-%d", shards)))
	router := shard.NewRouter(routerRT, sf)

	ctx := context.Background()
	for i := 0; i < shards; i++ {
		name := fmt.Sprintf("s%d", i)
		typeName := "KV." + name
		// The guard is the member's replicated state machine: handoff
		// steps and ownership state ride the group's WAL and delivery.
		rf := replica.NewFactory(bench.KVReads(), func() replica.StateMachine {
			return shard.NewGuard(name, spec, bench.NewKV())
		})
		primaryRT, merr := mk()
		if merr != nil {
			return 0, 0, merr
		}
		primaryRT.RegisterProxyType(typeName, rf)
		ref, xerr := primaryRT.Export(shard.NewGuard(name, spec, bench.NewKV()), typeName)
		if xerr != nil {
			return 0, 0, xerr
		}
		// One remote replica per member: every write now pays a delivery
		// round, serialized at this member's primary.
		replicaRT, rerr := mk()
		if rerr != nil {
			return 0, 0, rerr
		}
		replicaRT.RegisterProxyType(typeName, rf)
		if _, ierr := replicaRT.Import(ref); ierr != nil {
			return 0, 0, ierr
		}
		if aerr := router.AddMember(ctx, name, ref); aerr != nil {
			return 0, 0, aerr
		}
	}
	ref, err := routerRT.ExportVia(sf, router, "ShardedKV")
	if err != nil {
		return 0, 0, err
	}

	clientRT, err := mk()
	if err != nil {
		return 0, 0, err
	}
	clientRT.RegisterProxyType("ShardedKV", shard.NewFactory(shard.Spec{}))
	p, err := clientRT.Import(ref)
	if err != nil {
		return 0, 0, err
	}

	const workers = 8
	total := cfg.Ops
	if total < workers {
		total = workers
	}
	perWorker := total / workers
	ops = perWorker * workers

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	start := time.Now()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("w%d-%d", g, i)
				if _, werr := p.Invoke(ctx, "put", key, int64(i)); werr != nil {
					errs <- fmt.Errorf("write %s: %w", key, werr)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed = time.Since(start)
	close(errs)
	if werr := <-errs; werr != nil {
		return 0, 0, werr
	}
	return ops, elapsed, nil
}
