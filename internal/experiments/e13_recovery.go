package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// E13Recovery crashes a replica group's primary under write load and
// measures the failover gap — crash to the first write acknowledged by
// the self-promoted successor — across the repair loop's sync interval,
// together with the safety ledger: every write acknowledged before or
// after the crash must survive on every member (lost must read 0).
// Expected shape: the gap is dominated by the conclusive dead-evidence
// timeout (a probe's exhausted retry budget), so it is near-constant
// across sync cadences well below that timeout — and it is
// availability-only: safety never depends on timing, because a write is
// acknowledged only after the whole group applied it and the primary
// logged it.
func E13Recovery(w io.Writer, cfg Config) error {
	header(w, "E13", "primary-crash recovery")
	intervals := []time.Duration{10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond}
	tab := bench.Table{Headers: []string{"sync interval", "failover gap", "acked", "lost"}}
	for _, si := range intervals {
		gap, acked, lost, err := e13Trial(cfg, si)
		if err != nil {
			return fmt.Errorf("sync=%v: %w", si, err)
		}
		tab.Add(si, gap, acked, lost)
	}
	tab.Print(w)
	fmt.Fprintln(w, "(gap = primary crash → first write acked by the promoted successor;")
	fmt.Fprintln(w, " lost = acked writes missing from any surviving member, audited post-failover)")
	return nil
}

func e13Trial(cfg Config, syncInterval time.Duration) (gap time.Duration, acked, lost int, err error) {
	net := netsim.New(cfg.netOpts()...)
	defer net.Close()
	rts := make([]*core.Runtime, 3)
	for i := range rts {
		ep, aerr := net.Attach(wire.NodeID(i + 1))
		if aerr != nil {
			return 0, 0, 0, aerr
		}
		node := kernel.NewNode(ep)
		defer node.Close()
		ktx, cerr := node.NewContext()
		if cerr != nil {
			return 0, 0, 0, cerr
		}
		// The write retry budget must outlive the primary's delivery
		// timeout; dead-primary calls still fail conclusively within it.
		rts[i] = core.NewRuntime(ktx, core.WithClient(rpc.NewClient(ktx,
			rpc.WithRetryInterval(2*time.Millisecond), rpc.WithMaxAttempts(50))))
	}
	factory := replica.NewFactory(bench.KVReads(),
		func() replica.StateMachine { return bench.NewKV() },
		replica.WithDeliverTimeout(60*time.Millisecond),
		replica.WithSyncInterval(syncInterval))
	for _, rt := range rts {
		rt.RegisterProxyType("KV", factory)
	}
	ref, err := rts[0].Export(bench.NewKV(), "KV")
	if err != nil {
		return 0, 0, 0, err
	}
	imp := func(i int) (*replica.Proxy, error) {
		p, err := rts[i].Import(ref)
		if err != nil {
			return nil, err
		}
		return p.(*replica.Proxy), nil
	}
	p2, err := imp(1)
	if err != nil {
		return 0, 0, 0, err
	}
	p3, err := imp(2)
	if err != nil {
		return 0, 0, 0, err
	}

	ctx := context.Background()
	var keys []string
	var seq int64
	write := func(p *replica.Proxy) error {
		key := fmt.Sprintf("w%d", seq)
		_, werr := p.Invoke(ctx, "put", key, seq)
		if werr == nil {
			keys = append(keys, key)
		}
		seq++
		return werr
	}
	for i := 0; i < 20; i++ {
		if werr := write(p2); werr != nil {
			return 0, 0, 0, fmt.Errorf("pre-crash write: %w", werr)
		}
	}

	net.Crash(1)
	start := time.Now()
	for {
		if write(p2) == nil {
			gap = time.Since(start)
			break
		}
		if time.Since(start) > 20*time.Second {
			return 0, 0, 0, fmt.Errorf("no failover within 20s")
		}
	}
	for i := 0; i < 10; i++ {
		if werr := write(p2); werr != nil {
			return 0, 0, 0, fmt.Errorf("post-failover write: %w", werr)
		}
	}

	// Safety audit: every acknowledged write must be present on every
	// surviving member (give the non-promoted survivor a moment to sync).
	acked = len(keys)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && p3.AppliedSeq() < uint64(acked) {
		time.Sleep(5 * time.Millisecond)
	}
	for _, p := range []*replica.Proxy{p2, p3} {
		for i, key := range keys {
			vals, gerr := p.Local().Invoke(ctx, "get", []any{key})
			if gerr != nil || len(vals) != 1 || vals[0] == nil {
				lost++
				continue
			}
			if v, _ := vals[0].(int64); v != int64(keyToSeq(keys, i)) {
				lost++
			}
		}
	}
	return gap, acked, lost, nil
}

// keyToSeq recovers the sequence value written under keys[i]; keys are
// "w<seq>" in issue order, so the value is parsed back from the key.
func keyToSeq(keys []string, i int) int64 {
	var v int64
	fmt.Sscanf(keys[i], "w%d", &v)
	return v
}
