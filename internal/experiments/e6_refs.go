package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

// roomService is the Exportable object handed out by reference.
type e6Room struct {
	id int64
}

func (r *e6Room) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	if method == "id" {
		return []any{r.id}, nil
	}
	return nil, core.NoSuchMethod(method)
}

func (r *e6Room) ProxyType() string { return "E6Room" }

// e6Spawner returns n fresh rooms by reference in a single reply.
type e6Spawner struct {
	next int64
}

func (s *e6Spawner) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	if method != "spawn" {
		return nil, core.NoSuchMethod(method)
	}
	n, _ := args[0].(int64)
	out := make([]any, n)
	for i := range out {
		s.next++
		out[i] = &e6Room{id: s.next}
	}
	return []any{out}, nil
}

// E6RefExport measures the paper's Figure-2 mechanism quantitatively: a
// single invocation whose reply carries N object references, each of which
// the importing context turns into a live proxy. Expected shape: the cost
// is one round trip plus a small per-reference install cost that grows
// linearly in N; invoking any returned proxy immediately works.
func E6RefExport(w io.Writer, cfg Config) error {
	header(w, "E6", "reference passing installs proxies")
	fanouts := []int{1, 2, 4, 8, 16, 32, 64}
	tab := bench.Table{Headers: []string{"refs/reply", "total", "per ref over base", "first invoke"}}

	c, err := bench.NewCluster(2, cfg.netOpts()...)
	if err != nil {
		return err
	}
	defer c.Close()
	ref, err := c.RT(0).Export(&e6Spawner{}, "Spawner")
	if err != nil {
		return err
	}
	sp, err := c.RT(1).Import(ref)
	if err != nil {
		return err
	}
	ctx := context.Background()

	// Base: the fan-out-1 round trip, to isolate the per-ref increment.
	var base time.Duration
	for _, n := range fanouts {
		start := time.Now()
		res, err := sp.Invoke(ctx, "spawn", int64(n))
		elapsed := time.Since(start)
		if err != nil {
			return err
		}
		rooms := res[0].([]any)
		if len(rooms) != n {
			return fmt.Errorf("spawn(%d) returned %d rooms", n, len(rooms))
		}
		last, ok := rooms[n-1].(core.Proxy)
		if !ok {
			return fmt.Errorf("room is %T, want Proxy", rooms[n-1])
		}
		invStart := time.Now()
		if _, err := last.Invoke(ctx, "id"); err != nil {
			return err
		}
		firstInvoke := time.Since(invStart)
		if n == 1 {
			base = elapsed
		}
		perRef := "-"
		if n > 1 && elapsed > base {
			perRef = ((elapsed - base) / time.Duration(n-1)).Round(100 * time.Nanosecond).String()
		}
		tab.Add(n, elapsed.Round(time.Microsecond), perRef, firstInvoke.Round(time.Microsecond))
	}
	tab.Print(w)
	fmt.Fprintf(w, "(importer proxies installed: %d)\n", c.RT(1).ProxyCount())
	return nil
}
