package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

// E1InvocationLadder measures the null-invocation ("noop") latency at the
// four placements the paper's structure implies. Expected shape: each rung
// is orders of magnitude above the last, and the bypass proxy's rung is
// within a small constant of a plain function call — the proxy abstraction
// costs nothing when the object is co-located.
func E1InvocationLadder(w io.Writer, cfg Config) error {
	header(w, "E1", "invocation-cost ladder")
	c, err := bench.NewCluster(2, cfg.netOpts()...)
	if err != nil {
		return err
	}
	defer c.Close()
	ctx := context.Background()

	kv := bench.NewKV()
	ref, err := c.RT(0).Export(kv, "KV")
	if err != nil {
		return err
	}

	// Rung 0: plain function call on the object.
	var direct bench.Timer
	for i := 0; i < cfg.Ops; i++ {
		direct.Time(func() { _, _ = kv.Invoke(ctx, "noop", nil) })
	}

	// Rung 1: bypass proxy (same context).
	bypass, err := c.RT(0).Import(ref)
	if err != nil {
		return err
	}
	var bypassT bench.Timer
	if err := timeInvokes(&bypassT, ctx, bypass, cfg.Ops); err != nil {
		return err
	}

	// Rung 2: stub proxy across contexts on the same node.
	sameNode, err := c.NewContextRuntime(0)
	if err != nil {
		return err
	}
	crossCtx, err := sameNode.Import(ref)
	if err != nil {
		return err
	}
	var crossT bench.Timer
	if err := timeInvokes(&crossT, ctx, crossCtx, cfg.Ops); err != nil {
		return err
	}

	// Rung 3: stub proxy across the network.
	remote, err := c.RT(1).Import(ref)
	if err != nil {
		return err
	}
	var remoteT bench.Timer
	if err := timeInvokes(&remoteT, ctx, remote, cfg.Ops); err != nil {
		return err
	}

	base := direct.Summary().Mean
	tab := bench.Table{Headers: []string{"placement", "mean", "p95", "vs direct"}}
	for _, row := range []struct {
		name string
		t    *bench.Timer
	}{
		{"direct call", &direct},
		{"bypass proxy (same context)", &bypassT},
		{"stub proxy (same node, cross-context)", &crossT},
		{"stub proxy (remote node)", &remoteT},
	} {
		s := row.t.Summary()
		ratio := "1.0x"
		if base > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(s.Mean)/float64(base))
		}
		tab.Add(row.name, s.Mean, s.P95, ratio)
	}
	tab.Print(w)
	fmt.Fprintf(w, "(one-way link latency: %v)\n", cfg.Latency)
	return nil
}

func timeInvokes(t *bench.Timer, ctx context.Context, p core.Proxy, ops int) error {
	var err error
	for i := 0; i < ops; i++ {
		start := time.Now()
		_, err = p.Invoke(ctx, "noop")
		t.Record(time.Since(start))
		if err != nil {
			return err
		}
	}
	return nil
}
