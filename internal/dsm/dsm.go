// Package dsm implements the distributed-shared-memory comparator: a
// page-based single-writer/multiple-reader invalidation protocol with a
// central manager (a simplified Li–Hudak design). It is the third column
// of the paper's invocation design-space table — access by ordinary local
// reads/writes after mapping the page in, with relocation *as a necessity*
// rather than an optimisation — and experiment E5 measures it against
// stub-RPC and smart proxies on a common workload.
//
// Protocol summary. The manager tracks, per page: the current owner (the
// one node allowed to write) and the copyset (nodes holding read copies).
//
//   - Read fault: agent asks the manager; the manager downgrades the
//     owner (Exclusive → Shared, collecting its latest bytes), adds the
//     reader to the copyset, and replies with the page.
//   - Write fault: agent asks the manager; the manager recalls the page
//     from the owner and invalidates every copyset member, then grants
//     exclusive ownership to the writer.
//   - A node re-reading a Shared page or re-writing an Exclusive page
//     touches no wires at all — DSM's defining locality property.
package dsm

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/wire"
)

// PageID names one page of the shared address space.
type PageID uint64

// DefaultPageSize is used when no page size option is given.
const DefaultPageSize = 4096

// Private protocol kinds.
const (
	kindRead      = wire.KindCustom + 50 // agent → manager: read fault
	kindWrite     = wire.KindCustom + 51 // agent → manager: write fault
	kindRecall    = wire.KindCustom + 52 // manager → agent: surrender exclusive copy
	kindDowngrade = wire.KindCustom + 53 // manager → agent: demote to shared, return bytes
	kindInval     = wire.KindCustom + 54 // manager → agent: drop shared copy
)

// Errors returned by the DSM layer.
var (
	// ErrBadPage reports an out-of-range or malformed page reference.
	ErrBadPage = errors.New("dsm: bad page")
	// ErrPageSize reports a data buffer that does not match the page size.
	ErrPageSize = errors.New("dsm: wrong page size")
)

// state is an agent's view of one page.
type state uint8

const (
	stateInvalid state = iota
	stateShared
	stateExclusive
)

// String names the state.
func (s state) String() string {
	switch s {
	case stateInvalid:
		return "invalid"
	case stateShared:
		return "shared"
	case stateExclusive:
		return "exclusive"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// pageMsg encodes [page, data]; data may be empty for requests.
func pageMsg(page PageID, data []byte) []byte {
	buf := wire.AppendUvarint(nil, uint64(page))
	return wire.AppendBytes(buf, data)
}

func decodePageMsg(src []byte) (PageID, []byte, error) {
	p, n, err := wire.Uvarint(src)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: %s", ErrBadPage, err)
	}
	data, _, err := wire.Bytes(src[n:])
	if err != nil {
		return 0, nil, fmt.Errorf("%w: %s", ErrBadPage, err)
	}
	return PageID(p), data, nil
}

// Stats counts protocol activity on one side (agent or manager).
type Stats struct {
	ReadFaults    uint64
	WriteFaults   uint64
	LocalReads    uint64 // reads served with no messages
	LocalWrites   uint64 // writes served with no messages
	Recalls       uint64
	Downgrades    uint64
	Invalidations uint64
}

// statsCell is the lock-free accumulator behind Stats.
type statsCell struct {
	mu sync.Mutex
	s  Stats
}

func (c *statsCell) add(f func(*Stats)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(&c.s)
}

func (c *statsCell) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s
}
